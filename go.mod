module gadt

go 1.22
