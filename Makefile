# Developer entry points for the GADT reproduction.
#
#   make check      - formatting, vet, build, tests, fuzz + journal smokes
#   make build      - compile every package and command
#   make test       - run the test suite
#   make bench      - run the benchmark suite once
#   make bench-json - write BENCH_debug.json (queries + ns/op per strategy)
#   make bench-save    - record interpreter benchmarks to bench.old.txt
#   make bench-compare - re-run them and diff against bench.old.txt
#   make bench-interp  - write BENCH_interp.json (hot path vs recorded baseline)
#   make bench-vm      - write BENCH_vm.json (VM vs interpreter, 3x geomean gate)
#   make mutate     - run the full mutation campaign, write BENCH_mutation.json
#   make diff       - run the differential equivalence campaign, write BENCH_diff.json
#   make trace-smoke - record Chrome traces (gadt + pmut) and validate them
#   make serve-smoke - boot gadt-serve, drive a curl session, scrape /metrics
#   make lint       - run plint over the fixture and example programs
#   make staticcheck - run staticcheck when installed (CI pins its version)
#   make fmt        - rewrite sources with gofmt

GO ?= go
FUZZTIME ?= 5s
# Benchmarks tracked by bench-save / bench-compare; -count 3 gives the
# comparator (benchstat, or cmd/benchcmp as fallback) repeats to average.
BENCH_PATTERN ?= BenchmarkInterp|BenchmarkVM
BENCH_COUNT ?= 3

.PHONY: check build test bench bench-json bench-save bench-compare bench-interp bench-vm \
	mutate diff trace-smoke serve-smoke lint staticcheck fmt smoke-journal smoke-fuzz

# Where trace-smoke leaves its artifacts (CI uploads this directory).
TRACE_DIR ?= trace-out

check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) smoke-fuzz
	$(MAKE) smoke-journal

# Short coverage-guided fuzz runs: the lexer, the parser and the HTTP
# session API must survive arbitrary inputs without panicking, and the
# bytecode VM must agree with the interpreter on every generated
# program (one -fuzz pattern per package).
smoke-fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzLexer -fuzztime=$(FUZZTIME) ./internal/pascal/lexer
	$(GO) test -run='^$$' -fuzz=FuzzParser -fuzztime=$(FUZZTIME) ./internal/pascal/parser
	$(GO) test -run='^$$' -fuzz=FuzzSessionAPI -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzVMvsInterp -fuzztime=$(FUZZTIME) ./internal/pascal/vm

# Record a debugging session against the known-good reference, then
# replay it with stdin closed: both runs must localize the same unit and
# the replay must not need any interactive answer.
smoke-journal:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/gadt -reference testdata/sqrtest_fixed.pas -stats \
		-journal $$tmp/session.jsonl testdata/sqrtest.pas > $$tmp/record.out || exit 1; \
	$(GO) run ./cmd/gadt -replay $$tmp/session.jsonl testdata/sqrtest.pas \
		< /dev/null > $$tmp/replay.out || exit 1; \
	rec=$$(grep 'localized inside the body of' $$tmp/record.out); \
	rep=$$(grep 'localized inside the body of' $$tmp/replay.out); \
	if [ -z "$$rec" ] || [ "$$rec" != "$$rep" ]; then \
		echo "journal round-trip mismatch:"; \
		echo "  record: $$rec"; echo "  replay: $$rep"; exit 1; \
	fi; \
	queries=$$(grep -c '"kind":"query"' $$tmp/session.jsonl); \
	stats=$$(awk '$$1 == "debugger.oracle.queries" {print $$2}' $$tmp/record.out); \
	if [ "$$queries" != "$$stats" ]; then \
		echo "journal has $$queries queries but -stats counted $$stats"; exit 1; \
	fi; \
	rm -rf $$tmp; \
	echo "journal round-trip ok: $$rec ($$queries queries)"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

bench-json:
	$(GO) run ./cmd/gadt-bench -o BENCH_debug.json

# Perf workflow (see README "Performance"): record the current numbers
# before a change, then compare after it. Uses benchstat when installed,
# otherwise the in-repo comparator.
bench-save:
	$(GO) test -run='^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) . | tee bench.old.txt

bench-compare:
	$(GO) test -run='^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) . | tee bench.new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench.old.txt bench.new.txt; \
	else \
		$(GO) run ./cmd/benchcmp bench.old.txt bench.new.txt; \
	fi

# Hot-path report: current interpreter numbers against the committed
# pre-overhaul baseline (testdata/bench/baseline_interp.txt).
bench-interp:
	$(GO) run ./cmd/interp-bench -o BENCH_interp.json

# Backend report: bytecode VM vs the current interpreter on the gate
# workloads, timed in interleaved rounds (min-of-rounds per side, so a
# noisy host degrades both numbers instead of skewing the ratio). Fails
# below a 3x geometric-mean speedup — the VM's reason to exist.
bench-vm:
	$(GO) run ./cmd/interp-bench -vm -o BENCH_vm.json -gate 3.0

# Fault-injection evaluation: mutate every subject program, run each
# mutant through the debugger with the unmutated original as oracle.
# -gate fails the run if weighted divide-and-query's median question
# count regresses above plain divide-and-query's.
mutate:
	$(GO) run ./cmd/pmut -budget 240 -seed 1 -gate -json BENCH_mutation.json

# Differential equivalence campaign: every generated/corpus program is
# run untransformed and through every transformation stage combination;
# stdout and final global state must agree. Exit 1 on any divergence;
# minimized counterexamples land in testdata/diff/.
diff:
	$(GO) run ./cmd/pdiff -n 250 -seed 1 -dir testdata/diff -json BENCH_diff.json

# Record two Perfetto-loadable traces — a single-lane debugging session
# and a multi-lane mutation campaign — then validate both with
# cmd/tracecheck: well-formed JSON, balanced B/E per lane, nested spans,
# labeled thread_name lanes.
trace-smoke:
	mkdir -p $(TRACE_DIR)
	$(GO) run ./cmd/gadt -reference testdata/sqrtest_fixed.pas \
		-trace-out $(TRACE_DIR)/gadt.trace.json testdata/sqrtest.pas > /dev/null
	$(GO) run ./cmd/pmut -budget 12 -seed 1 -workers 2 -json "" \
		-trace-out $(TRACE_DIR)/pmut.trace.json > /dev/null
	$(GO) run ./cmd/tracecheck $(TRACE_DIR)/gadt.trace.json $(TRACE_DIR)/pmut.trace.json

# Where serve-smoke leaves its transcript (CI uploads this directory).
SERVE_SMOKE_DIR ?= serve-smoke-out

# End-to-end binary smoke: build and boot gadt-serve on an ephemeral
# port, replay the checked-in CLI journal over curl, require the
# decrement diagnosis and nonzero serve_* counters on /metrics.
serve-smoke:
	sh scripts/serve-smoke.sh $(SERVE_SMOKE_DIR)

lint:
	$(GO) run ./cmd/plint testdata/*.pas || true

# Static analysis beyond go vet. The tool is not vendored; install it
# with `go install honnef.co/go/tools/cmd/staticcheck@2023.1.7` (the
# version CI pins). Skips with a notice when the binary is absent so
# `make check` stays runnable offline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

fmt:
	gofmt -w .
