# Developer entry points for the GADT reproduction.
#
#   make check   - formatting, vet, build and the full test suite
#   make build   - compile every package and command
#   make test    - run the test suite
#   make bench   - run the benchmark suite once
#   make lint    - run plint over the fixture and example programs
#   make fmt     - rewrite sources with gofmt

GO ?= go

.PHONY: check build test bench lint fmt

check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

lint:
	$(GO) run ./cmd/plint testdata/*.pas || true

fmt:
	gofmt -w .
