# Developer entry points for the GADT reproduction.
#
#   make check      - formatting, vet, build, tests, fuzz + journal smokes
#   make build      - compile every package and command
#   make test       - run the test suite
#   make bench      - run the benchmark suite once
#   make bench-json - write BENCH_debug.json (queries + ns/op per strategy)
#   make mutate     - run the full mutation campaign, write BENCH_mutation.json
#   make diff       - run the differential equivalence campaign, write BENCH_diff.json
#   make lint       - run plint over the fixture and example programs
#   make fmt        - rewrite sources with gofmt

GO ?= go
FUZZTIME ?= 5s

.PHONY: check build test bench bench-json mutate diff lint fmt smoke-journal smoke-fuzz

check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) smoke-fuzz
	$(MAKE) smoke-journal

# Short coverage-guided fuzz runs: the lexer and parser must survive
# arbitrary inputs without panicking (one -fuzz pattern per package).
smoke-fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzLexer -fuzztime=$(FUZZTIME) ./internal/pascal/lexer
	$(GO) test -run='^$$' -fuzz=FuzzParser -fuzztime=$(FUZZTIME) ./internal/pascal/parser

# Record a debugging session against the known-good reference, then
# replay it with stdin closed: both runs must localize the same unit and
# the replay must not need any interactive answer.
smoke-journal:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/gadt -reference testdata/sqrtest_fixed.pas -stats \
		-journal $$tmp/session.jsonl testdata/sqrtest.pas > $$tmp/record.out || exit 1; \
	$(GO) run ./cmd/gadt -replay $$tmp/session.jsonl testdata/sqrtest.pas \
		< /dev/null > $$tmp/replay.out || exit 1; \
	rec=$$(grep 'localized inside the body of' $$tmp/record.out); \
	rep=$$(grep 'localized inside the body of' $$tmp/replay.out); \
	if [ -z "$$rec" ] || [ "$$rec" != "$$rep" ]; then \
		echo "journal round-trip mismatch:"; \
		echo "  record: $$rec"; echo "  replay: $$rep"; exit 1; \
	fi; \
	queries=$$(grep -c '"kind":"query"' $$tmp/session.jsonl); \
	stats=$$(awk '$$1 == "debugger.oracle.queries" {print $$2}' $$tmp/record.out); \
	if [ "$$queries" != "$$stats" ]; then \
		echo "journal has $$queries queries but -stats counted $$stats"; exit 1; \
	fi; \
	rm -rf $$tmp; \
	echo "journal round-trip ok: $$rec ($$queries queries)"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

bench-json:
	$(GO) run ./cmd/gadt-bench -o BENCH_debug.json

# Fault-injection evaluation: mutate every subject program, run each
# mutant through the debugger with the unmutated original as oracle.
mutate:
	$(GO) run ./cmd/pmut -budget 240 -seed 1 -json BENCH_mutation.json

# Differential equivalence campaign: every generated/corpus program is
# run untransformed and through every transformation stage combination;
# stdout and final global state must agree. Exit 1 on any divergence;
# minimized counterexamples land in testdata/diff/.
diff:
	$(GO) run ./cmd/pdiff -n 250 -seed 1 -dir testdata/diff -json BENCH_diff.json

lint:
	$(GO) run ./cmd/plint testdata/*.pas || true

fmt:
	gofmt -w .
