// Command tgen parses a T-GEN category-partition test specification and
// generates its test frames, grouped into scripts (Section 2 of the
// paper). With -subject it also executes one generated test case per
// frame against the named unit of a Pascal program, checking the outputs
// against an `expect` assertion, and writes the report database.
//
// Usage:
//
//	tgen spec.tgen                               # list frames
//	tgen -subject prog.pas -expect 'b = sum(a, n)' \
//	     -reports out.json spec.tgen             # run test cases
//
// Concrete test inputs are derived from each frame's match expressions
// by a small search over integer arguments (see -max).
package main

import (
	"flag"
	"fmt"
	"os"

	"gadt/internal/assertion"
	"gadt/internal/gadt"
	"gadt/internal/pascal/interp"
	"gadt/internal/tgen"
)

func main() {
	subject := flag.String("subject", "", "Pascal program containing the unit under test")
	expect := flag.String("expect", "", "assertion the outputs must satisfy (e.g. 'b = sum(a, n)')")
	reports := flag.String("reports", "", "write the report database to this JSON file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tgen [flags] spec.tgen")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *subject, *expect, *reports); err != nil {
		fmt.Fprintln(os.Stderr, "tgen:", err)
		os.Exit(1)
	}
}

func run(specFile, subject, expect, reports string) error {
	specSrc, err := os.ReadFile(specFile)
	if err != nil {
		return err
	}
	spec, err := tgen.ParseSpec(string(specSrc))
	if err != nil {
		return err
	}
	frames := spec.Generate()
	fmt.Printf("unit %s: %d categories, %d frames\n", spec.Unit, len(spec.Categories), len(frames))
	for _, f := range frames {
		fmt.Printf("  %-40s scripts=%v results=%v\n", f, f.Scripts, f.Results)
	}
	for name, fs := range tgen.FramesByScript(frames) {
		fmt.Printf("%s: %d frame(s)\n", name, len(fs))
	}
	if subject == "" {
		return nil
	}
	if expect == "" {
		return fmt.Errorf("-subject requires -expect")
	}
	src, err := os.ReadFile(subject)
	if err != nil {
		return err
	}
	sys, err := gadt.Load(subject, string(src))
	if err != nil {
		return err
	}
	check, err := assertion.Parse(spec.Unit, expect)
	if err != nil {
		return err
	}
	runner := &tgen.Runner{
		Info: sys.Info,
		Spec: spec,
		Gen:  tgen.SearchGenerator(sys.Info, spec, 5000),
		Chk: func(_ *tgen.Frame, ci *interp.CallInfo) bool {
			env := make(assertion.Env)
			for _, b := range ci.Ins {
				env["old_"+b.Name] = b.Value
				env[b.Name] = b.Value
			}
			for _, b := range ci.Outs {
				env[b.Name] = b.Value
			}
			if !ci.Result.IsUndef() {
				env["result"] = ci.Result
			}
			return check.Eval(env) == assertion.Holds
		},
	}
	db, err := runner.RunAll()
	if err != nil {
		return err
	}
	pass, total := db.PassCount()
	fmt.Printf("executed %d test case(s): %d passed, %d failed\n", total, pass, total-pass)
	for _, f := range frames {
		if db.Lookup(f.Code()) == nil {
			fmt.Printf("  SKIP %-40s no concrete input found (unsatisfiable or beyond search pool)\n", f.Code())
		}
	}
	for code, r := range db.Reports {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Printf("  %s %-40s in=%v out=%v %s\n", status, code, r.Inputs, r.Outputs, r.Note)
	}
	if reports != "" {
		if err := db.Save(reports); err != nil {
			return err
		}
		fmt.Printf("report database written to %s\n", reports)
	}
	return nil
}
