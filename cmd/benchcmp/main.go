// Command benchcmp compares two `go test -bench` output files and
// prints a per-benchmark delta table. It is the zero-dependency
// fallback `make bench-compare` uses when benchstat is not installed;
// unlike benchstat it does no significance testing — repeats are
// averaged, so pass -count 3 (or more) when recording either side.
//
// Usage:
//
//	benchcmp old.txt new.txt
//
// Exit status 1 if any benchmark present in old.txt is missing from
// new.txt (a renamed or deleted benchmark silently hides regressions).
package main

import (
	"bufio"
	"fmt"
	"os"

	"gadt/internal/benchparse"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp old.txt new.txt")
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Args[2]); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string) error {
	olds, err := benchparse.ParseFile(oldPath)
	if err != nil {
		return err
	}
	news, err := benchparse.ParseFile(newPath)
	if err != nil {
		return err
	}
	if len(olds) == 0 {
		return fmt.Errorf("%s contains no benchmark lines", oldPath)
	}
	newBy := benchparse.ByName(news)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-40s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	var missing []string
	for _, o := range olds {
		n, ok := newBy[o.Name]
		if !ok {
			missing = append(missing, o.Name)
			continue
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %7.1f%% %12.0f %12.0f %7.1f%%\n",
			o.Name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, pct(o.AllocsPerOp, n.AllocsPerOp))
	}
	for _, n := range news {
		if _, ok := benchparse.ByName(olds)[n.Name]; !ok {
			fmt.Fprintf(w, "%-40s %14s %14.0f %8s %12s %12.0f %8s\n",
				n.Name, "-", n.NsPerOp, "new", "-", n.AllocsPerOp, "new")
		}
	}
	if len(missing) > 0 {
		w.Flush()
		return fmt.Errorf("benchmarks missing from %s: %v", newPath, missing)
	}
	return nil
}

// pct is the relative change new vs old: negative is an improvement.
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}
