// Command gadt-serve hosts the GADT pipeline as a long-running
// HTTP/JSON service: submit a Pascal program plus its failing input,
// answer the oracle questions over the wire, and receive the localized
// diagnosis. Parse/sem/transform artifacts and execution traces are
// content-addressed and shared across sessions; every traced run is
// capped by fuel and depth budgets so hostile programs cannot hang a
// worker. The operations surface (/metrics, /metrics.json, /healthz,
// expvar, pprof) is mounted on the same listener.
//
// Usage:
//
//	gadt-serve [flags]
//
//	-addr string          listen address (default :8372; ":0" picks a port)
//	-port-file string     write the resolved host:port to this file (for scripts)
//	-workers int          pipeline worker pool size (default 4)
//	-fuel int             per-session statement budget (default 2000000)
//	-depth int            per-session call-depth budget (default 5000)
//	-idle-timeout dur     evict sessions idle this long (default 15m)
//	-max-body bytes       request body cap (default 1048576)
//	-max-sessions int     concurrent session cap (default 4096)
//	-cache-entries int    content-addressed cache cap (default 1024)
//
// The answer wire format is the `gadt -journal` JSONL entry, so a
// recorded journal replays against the server line by line; see the
// README "Serving" walkthrough.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gadt/internal/obs"
	"gadt/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address (\":0\" picks a free port)")
	portFile := flag.String("port-file", "", "write the resolved host:port to this file")
	workers := flag.Int("workers", 4, "pipeline worker pool size")
	fuel := flag.Int("fuel", 2_000_000, "per-session statement budget")
	depth := flag.Int("depth", 5_000, "per-session call-depth budget")
	idle := flag.Duration("idle-timeout", 15*time.Minute, "evict sessions idle this long")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	maxSessions := flag.Int("max-sessions", 4096, "concurrent session cap")
	cacheEntries := flag.Int("cache-entries", 1024, "content-addressed cache entry cap")
	flag.Parse()

	if err := run(*addr, *portFile, serve.Options{
		Workers:      *workers,
		Fuel:         *fuel,
		Depth:        *depth,
		IdleTimeout:  *idle,
		MaxBody:      *maxBody,
		MaxSessions:  *maxSessions,
		CacheEntries: *cacheEntries,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "gadt-serve:", err)
		os.Exit(1)
	}
}

func run(addr, portFile string, opts serve.Options) error {
	reg := obs.NewRegistry()
	srv := serve.NewServer(reg, opts)
	defer srv.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(resolved+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "gadt-serve: listening on http://%s (API + metrics + pprof)\n", resolved)

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "gadt-serve: %v, shutting down\n", s)
		return hs.Close()
	}
}
