// Command plint runs the dataflow anomaly diagnostics engine over
// Pascal programs: use-before-definition, dead stores, unused
// variables/parameters/routines, unreachable statements, var-parameter
// aliasing, unassigned function results, and anomalous gotos.
//
// Usage:
//
//	plint [flags] program.pas ...
//
//	-json           render findings as JSON
//	-codes list     comma-separated check codes to run (e.g. P001,P003)
//	-list           print the check registry and exit
//	-no-suppress    ignore `lint:ignore` comments
//	-pval           dump the per-point abstract values (the interval
//	                lattice behind P012..P015) instead of findings
//	-stats          print a metrics snapshot (findings by code) on exit
//	-trace-out f    write per-file lint spans as JSONL ("-" = stderr text)
//
// Exit status is 1 when any error-severity finding (or a parse/analysis
// failure) is reported, 0 otherwise.
//
// Findings can be suppressed in source with a comment on the offending
// line (or the line before):
//
//	x := 0; // lint:ignore P003 reset kept for clarity
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gadt/internal/analysis/absint"
	"gadt/internal/analysis/lint"
	"gadt/internal/obs"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func main() {
	jsonOut := flag.Bool("json", false, "render findings as JSON")
	codes := flag.String("codes", "", "comma-separated check codes to run (default all)")
	list := flag.Bool("list", false, "print the check registry and exit")
	noSuppress := flag.Bool("no-suppress", false, "ignore lint:ignore comments")
	pval := flag.Bool("pval", false, "dump per-point abstract values instead of findings")
	stats := flag.Bool("stats", false, "print a metrics snapshot on exit")
	traceOut := flag.String("trace-out", "", "write lint spans as JSONL to this file (\"-\" = stderr text)")
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%s  %-20s %s\n", c.Code, c.Name, c.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: plint [flags] program.pas ...")
		flag.Usage()
		os.Exit(2)
	}

	opts := lint.Options{NoSuppress: *noSuppress}
	if *codes != "" {
		for _, c := range strings.Split(*codes, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			chk := lint.LookupCheck(c)
			if chk == nil {
				fmt.Fprintf(os.Stderr, "plint: unknown check %q (try -list)\n", c)
				os.Exit(2)
			}
			opts.Codes = append(opts.Codes, chk.Code)
		}
	}

	reg, tracer, closeTrace, err := obs.Setup(*traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plint:", err)
		os.Exit(2)
	}

	if *pval {
		failed := false
		for _, file := range flag.Args() {
			src, err := os.ReadFile(file)
			if err != nil {
				fmt.Fprintln(os.Stderr, "plint:", err)
				failed = true
				continue
			}
			prog, err := parser.ParseProgram(file, string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "plint: %s: %v\n", file, err)
				failed = true
				continue
			}
			info, err := sem.Analyze(prog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "plint: %s: %v\n", file, err)
				failed = true
				continue
			}
			fmt.Printf("== %s ==\n", file)
			fmt.Print(absint.Analyze(info).Dump())
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	failed := false
	var all []lint.Diagnostic
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plint:", err)
			failed = true
			continue
		}
		sp := tracer.Start("lint " + file)
		diags, err := lint.Run(file, string(src), opts)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "plint: %s: %v\n", file, err)
			failed = true
			continue
		}
		lint.Record(reg, diags)
		reg.Counter("lint.files").Inc()
		if lint.HasErrors(diags) {
			failed = true
		}
		all = append(all, diags...)
	}
	if *jsonOut {
		if err := lint.JSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, "plint:", err)
			os.Exit(2)
		}
	} else {
		lint.Text(os.Stdout, all)
	}
	if *stats {
		fmt.Println("\nmetrics:")
		reg.Snapshot().WriteText(os.Stdout)
	}
	if err := closeTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "plint:", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
