// Command interp-bench measures the interpreter hot-path benchmarks
// (the same workloads as BenchmarkInterpIntLoop / BenchmarkInterpProgen
// in the repo benchmark suite) and writes BENCH_interp.json: current
// ns/op, B/op and allocs/op per workload, compared against the
// committed pre-overhaul baseline so the speedup from the slot-frame /
// unboxed-value design stays a tracked number rather than a claim.
//
// Usage:
//
//	interp-bench [-o BENCH_interp.json] [-baseline testdata/bench/baseline_interp.txt]
//
// The baseline file is ordinary `go test -bench` output recorded before
// the overhaul (dynamic map environments, boxed interface values). Pass
// -baseline "" to skip the comparison and record raw numbers only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gadt/internal/benchparse"
	"gadt/internal/perfbench"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// Baseline comparison, present when the benchmark appears in the
	// baseline file. Speedup is baseline ns/op over current ns/op;
	// AllocsReductionPct is the share of baseline allocations removed.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
	AllocsReductionPct  float64 `json:"allocs_reduction_pct,omitempty"`
}

type report struct {
	Generated    string  `json:"generated"`
	GoVersion    string  `json:"go_version"`
	GOOS         string  `json:"goos"`
	GOARCH       string  `json:"goarch"`
	NumCPU       int     `json:"num_cpu"`
	BaselineFile string  `json:"baseline_file,omitempty"`
	Benchmarks   []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_interp.json", "report destination (\"-\" = stdout)")
	baseline := flag.String("baseline", "testdata/bench/baseline_interp.txt",
		"pre-overhaul `go test -bench` output to compare against (\"\" = none)")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "interp-bench:", err)
		os.Exit(1)
	}
}

func run(out, baseline string) error {
	var base map[string]benchparse.Result
	if baseline != "" {
		rs, err := benchparse.ParseFile(baseline)
		if err != nil {
			return err
		}
		base = benchparse.ByName(rs)
	}

	workloads := []struct {
		name string
		body func(b *testing.B)
	}{
		{"BenchmarkInterpIntLoop", perfbench.IntLoop()},
	}
	for _, d := range perfbench.ProgenDepths {
		workloads = append(workloads, struct {
			name string
			body func(b *testing.B)
		}{fmt.Sprintf("BenchmarkInterpProgen/depth=%d", d), perfbench.Progen(d)})
	}

	rep := report{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		BaselineFile: baseline,
	}
	for _, w := range workloads {
		fmt.Fprintf(os.Stderr, "running %s...\n", w.name)
		r := testing.Benchmark(w.body)
		e := entry{
			Name:        w.name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
		}
		if b, ok := base[w.name]; ok {
			e.BaselineNsPerOp = b.NsPerOp
			e.BaselineAllocsPerOp = b.AllocsPerOp
			if e.NsPerOp > 0 {
				e.Speedup = b.NsPerOp / e.NsPerOp
			}
			if b.AllocsPerOp > 0 {
				e.AllocsReductionPct = 100 * (b.AllocsPerOp - e.AllocsPerOp) / b.AllocsPerOp
			}
			fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op (%.2fx vs baseline), %.0f allocs/op (-%.1f%%)\n",
				w.name, e.NsPerOp, e.Speedup, e.AllocsPerOp, e.AllocsReductionPct)
		} else {
			fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op, %.0f allocs/op\n", w.name, e.NsPerOp, e.AllocsPerOp)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	dst := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		dst = f
	}
	w := bufio.NewWriter(dst)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if out != "-" {
		if err := dst.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", out)
	}
	return nil
}
