// Command interp-bench measures the interpreter hot-path benchmarks
// (the same workloads as BenchmarkInterpIntLoop / BenchmarkInterpProgen
// in the repo benchmark suite) and writes BENCH_interp.json: current
// ns/op, B/op and allocs/op per workload, compared against the
// committed pre-overhaul baseline so the speedup from the slot-frame /
// unboxed-value design stays a tracked number rather than a claim.
//
// Usage:
//
//	interp-bench [-o BENCH_interp.json] [-baseline testdata/bench/baseline_interp.txt]
//	interp-bench -vm [-o BENCH_vm.json] [-gate 3.0]
//
// The baseline file is ordinary `go test -bench` output recorded before
// the overhaul (dynamic map environments, boxed interface values). Pass
// -baseline "" to skip the comparison and record raw numbers only.
//
// With -vm the tool instead measures the bytecode VM against the
// current interpreter on the same workloads and writes BENCH_vm.json.
// The two backends are timed in alternating rounds and each side keeps
// its fastest round, so load drift on a shared host degrades both
// numbers rather than whichever backend ran during the slow window.
// The headline number is the geometric-mean speedup over the gate
// workloads (IntLoop, Recursion); -gate N makes the tool exit nonzero
// when that geomean falls below N, which is how CI enforces the VM's
// reason to exist.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"gadt/internal/benchparse"
	"gadt/internal/perfbench"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// Baseline comparison, present when the benchmark appears in the
	// baseline file. Speedup is baseline ns/op over current ns/op;
	// AllocsReductionPct is the share of baseline allocations removed.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
	AllocsReductionPct  float64 `json:"allocs_reduction_pct,omitempty"`
}

type report struct {
	Generated    string  `json:"generated"`
	GoVersion    string  `json:"go_version"`
	GOOS         string  `json:"goos"`
	GOARCH       string  `json:"goarch"`
	NumCPU       int     `json:"num_cpu"`
	BaselineFile string  `json:"baseline_file,omitempty"`
	Benchmarks   []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "report destination (\"-\" = stdout; default BENCH_interp.json, or BENCH_vm.json with -vm)")
	baseline := flag.String("baseline", "testdata/bench/baseline_interp.txt",
		"pre-overhaul `go test -bench` output to compare against (\"\" = none)")
	vmMode := flag.Bool("vm", false, "measure the bytecode VM against the interpreter instead")
	gate := flag.Float64("gate", 0, "with -vm: fail unless the gate-workload geomean speedup reaches this (0 = report only)")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *vmMode {
		if *out == "" {
			*out = "BENCH_vm.json"
		}
		err = runVM(*out, *gate)
	} else {
		if *out == "" {
			*out = "BENCH_interp.json"
		}
		err = run(*out, *baseline)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "interp-bench:", err)
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------------
// VM-vs-interpreter mode

type vmEntry struct {
	Name          string  `json:"name"`
	InterpNsPerOp float64 `json:"interp_ns_per_op"`
	VMNsPerOp     float64 `json:"vm_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	Gated         bool    `json:"gated"` // counts toward the geomean gate
}

type vmReport struct {
	Generated      string    `json:"generated"`
	GoVersion      string    `json:"go_version"`
	GOOS           string    `json:"goos"`
	GOARCH         string    `json:"goarch"`
	NumCPU         int       `json:"num_cpu"`
	Rounds         int       `json:"rounds"`
	Gate           float64   `json:"gate,omitempty"`
	GeomeanSpeedup float64   `json:"geomean_speedup"`
	Workloads      []vmEntry `json:"workloads"`
}

const vmRounds = 10

// pairedSpeedup times the two runners in alternating rounds of roughly
// targetRound each and returns the fastest per-iteration time either
// side achieved. Interleaving plus min-of-rounds makes the ratio robust
// against machine-load drift: a slow window inflates some rounds of
// both backends, and the minimum discards it for both.
func pairedSpeedup(interpRun, vmRun func(int) time.Duration) (interpNs, vmNs float64) {
	const targetRound = 60 * time.Millisecond
	// Calibrate the per-round iteration counts on the first timing of
	// each side.
	calib := func(run func(int) time.Duration) int {
		iters := 1
		for {
			d := run(iters)
			if d >= targetRound/4 {
				n := int(float64(iters) * float64(targetRound) / float64(d))
				if n < 1 {
					n = 1
				}
				return n
			}
			iters *= 4
		}
	}
	vi, vv := calib(interpRun), calib(vmRun)
	minI, minV := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < vmRounds; r++ {
		if d := interpRun(vi); d < minI {
			minI = d
		}
		if d := vmRun(vv); d < minV {
			minV = d
		}
	}
	return float64(minI) / float64(vi), float64(minV) / float64(vv)
}

func runVM(out string, gate float64) error {
	workloads := []struct {
		name  string
		src   string
		gated bool
	}{
		{"IntLoop", perfbench.IntLoopSrc, true},
		{"Recursion", perfbench.RecursionSrc, true},
	}

	rep := vmReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Rounds:    vmRounds,
		Gate:      gate,
	}
	logGeo := 0.0
	ngated := 0
	for _, w := range workloads {
		fmt.Fprintf(os.Stderr, "running %s (interp vs vm, %d interleaved rounds)...\n", w.name, vmRounds)
		interpRun, vmRun, err := perfbench.PairedRunners(w.src)
		if err != nil {
			return fmt.Errorf("%s: %w", w.name, err)
		}
		interpNs, vmNs := pairedSpeedup(interpRun, vmRun)
		e := vmEntry{
			Name:          w.name,
			InterpNsPerOp: interpNs,
			VMNsPerOp:     vmNs,
			Speedup:       interpNs / vmNs,
			Gated:         w.gated,
		}
		fmt.Fprintf(os.Stderr, "  %s: interp %.0f ns/op, vm %.0f ns/op — %.2fx\n",
			w.name, e.InterpNsPerOp, e.VMNsPerOp, e.Speedup)
		if w.gated {
			logGeo += math.Log(e.Speedup)
			ngated++
		}
		rep.Workloads = append(rep.Workloads, e)
	}
	rep.GeomeanSpeedup = math.Exp(logGeo / float64(ngated))
	fmt.Fprintf(os.Stderr, "geomean speedup over gate workloads: %.2fx\n", rep.GeomeanSpeedup)

	if err := writeJSON(out, rep); err != nil {
		return err
	}
	if gate > 0 && rep.GeomeanSpeedup < gate {
		return fmt.Errorf("geomean speedup %.2fx below gate %.2fx", rep.GeomeanSpeedup, gate)
	}
	return nil
}

func writeJSON(out string, v any) error {
	dst := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		dst = f
	}
	w := bufio.NewWriter(dst)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if out != "-" {
		if err := dst.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", out)
	}
	return nil
}

func run(out, baseline string) error {
	var base map[string]benchparse.Result
	if baseline != "" {
		rs, err := benchparse.ParseFile(baseline)
		if err != nil {
			return err
		}
		base = benchparse.ByName(rs)
	}

	workloads := []struct {
		name string
		body func(b *testing.B)
	}{
		{"BenchmarkInterpIntLoop", perfbench.IntLoop()},
	}
	for _, d := range perfbench.ProgenDepths {
		workloads = append(workloads, struct {
			name string
			body func(b *testing.B)
		}{fmt.Sprintf("BenchmarkInterpProgen/depth=%d", d), perfbench.Progen(d)})
	}

	rep := report{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		BaselineFile: baseline,
	}
	for _, w := range workloads {
		fmt.Fprintf(os.Stderr, "running %s...\n", w.name)
		r := testing.Benchmark(w.body)
		e := entry{
			Name:        w.name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
		}
		if b, ok := base[w.name]; ok {
			e.BaselineNsPerOp = b.NsPerOp
			e.BaselineAllocsPerOp = b.AllocsPerOp
			if e.NsPerOp > 0 {
				e.Speedup = b.NsPerOp / e.NsPerOp
			}
			if b.AllocsPerOp > 0 {
				e.AllocsReductionPct = 100 * (b.AllocsPerOp - e.AllocsPerOp) / b.AllocsPerOp
			}
			fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op (%.2fx vs baseline), %.0f allocs/op (-%.1f%%)\n",
				w.name, e.NsPerOp, e.Speedup, e.AllocsPerOp, e.AllocsReductionPct)
		} else {
			fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op, %.0f allocs/op\n", w.name, e.NsPerOp, e.AllocsPerOp)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	return writeJSON(out, rep)
}
