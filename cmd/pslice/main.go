// Command pslice computes interprocedural static program slices
// (Section 4 of the paper / Weiser's slicing).
//
// Usage:
//
//	pslice -var mul program.pas             # slice on mul at program end
//	pslice -var s2 -routine partialsums -output program.pas
//
// With -output the criterion is the named output parameter (or function
// result) of the routine; otherwise the value of -var at the end of
// -routine (default: the program block). -summary suppresses the sliced
// source and prints statistics only; -stats prints the observability
// metrics snapshot (phase durations, slice sizes); -trace-out writes
// phase spans as JSONL.
package main

import (
	"flag"
	"fmt"
	"os"

	"gadt/internal/gadt"
	"gadt/internal/obs"
	"gadt/internal/slicing/static"
)

type options struct {
	varName  string
	routine  string
	onOutput bool
	summary  bool
	stats    bool
	traceOut string
}

func main() {
	var o options
	flag.StringVar(&o.varName, "var", "", "variable to slice on (required)")
	flag.StringVar(&o.routine, "routine", "", "routine context (default: program block)")
	flag.BoolVar(&o.onOutput, "output", false, "slice on the routine's output parameter -var")
	flag.BoolVar(&o.summary, "summary", false, "print slice statistics only")
	flag.BoolVar(&o.stats, "stats", false, "print a metrics snapshot on exit")
	flag.StringVar(&o.traceOut, "trace-out", "", "write phase-trace events as JSONL to this file (\"-\" = stderr text)")
	flag.Parse()

	if flag.NArg() != 1 || o.varName == "" {
		fmt.Fprintln(os.Stderr, "usage: pslice -var name [-routine r] [-output] program.pas")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), o); err != nil {
		fmt.Fprintln(os.Stderr, "pslice:", err)
		os.Exit(1)
	}
}

func run(file string, o options) (err error) {
	reg, tracer, closeTrace, err := obs.Setup(o.traceOut)
	if err != nil {
		return err
	}
	defer func() {
		if o.stats {
			fmt.Println("\nmetrics:")
			reg.Snapshot().WriteText(os.Stdout)
		}
		if cerr := closeTrace(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sys, err := gadt.LoadObserved(file, string(src), reg, tracer)
	if err != nil {
		return err
	}
	r := sys.Info.Main
	if o.routine != "" {
		if r = sys.Info.LookupRoutine(o.routine); r == nil {
			return fmt.Errorf("routine %s not found", o.routine)
		}
	}
	v := static.LookupVar(sys.Info, r, o.varName)
	if v == nil {
		return fmt.Errorf("variable %s not visible in %s", o.varName, r.Name)
	}
	sp := tracer.Start("slice")
	slicer := sys.StaticSlicer()
	var sl *static.Slice
	if o.onOutput {
		sl, err = slicer.OnOutput(r, v)
		if err != nil {
			sp.End()
			return err
		}
	} else {
		sl = slicer.OnVarAtEnd(r, v)
	}
	sp.End()
	reg.Gauge("slicing.static.kept.nodes").Set(int64(len(sl.Nodes)))
	fmt.Printf("slice on %s at %s: %s\n", o.varName, r.Name, sl.Describe())
	if !o.summary {
		fmt.Print(sl.Render())
	}
	return nil
}
