// Command pslice computes interprocedural static program slices
// (Section 4 of the paper / Weiser's slicing).
//
// Usage:
//
//	pslice -var mul program.pas             # slice on mul at program end
//	pslice -var s2 -routine partialsums -output program.pas
//
// With -output the criterion is the named output parameter (or function
// result) of the routine; otherwise the value of -var at the end of
// -routine (default: the program block).
package main

import (
	"flag"
	"fmt"
	"os"

	"gadt/internal/gadt"
	"gadt/internal/slicing/static"
)

func main() {
	varName := flag.String("var", "", "variable to slice on (required)")
	routine := flag.String("routine", "", "routine context (default: program block)")
	onOutput := flag.Bool("output", false, "slice on the routine's output parameter -var")
	stats := flag.Bool("stats", false, "print slice statistics only")
	flag.Parse()

	if flag.NArg() != 1 || *varName == "" {
		fmt.Fprintln(os.Stderr, "usage: pslice -var name [-routine r] [-output] program.pas")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *varName, *routine, *onOutput, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "pslice:", err)
		os.Exit(1)
	}
}

func run(file, varName, routine string, onOutput, stats bool) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sys, err := gadt.Load(file, string(src))
	if err != nil {
		return err
	}
	r := sys.Info.Main
	if routine != "" {
		if r = sys.Info.LookupRoutine(routine); r == nil {
			return fmt.Errorf("routine %s not found", routine)
		}
	}
	v := static.LookupVar(sys.Info, r, varName)
	if v == nil {
		return fmt.Errorf("variable %s not visible in %s", varName, r.Name)
	}
	slicer := sys.StaticSlicer()
	var sl *static.Slice
	if onOutput {
		sl, err = slicer.OnOutput(r, v)
		if err != nil {
			return err
		}
	} else {
		sl = slicer.OnVarAtEnd(r, v)
	}
	fmt.Printf("slice on %s at %s: %s\n", varName, r.Name, sl.Describe())
	if !stats {
		fmt.Print(sl.Render())
	}
	return nil
}
