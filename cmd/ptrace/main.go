// Command ptrace executes a Pascal program and prints its execution tree
// (the paper's tracing phase, Section 5.2).
//
// Usage:
//
//	ptrace [-input "1 2"] [-original] [-transformed-source] program.pas
//
// By default the program is transformed first (loop units, goto
// breaking, globals to parameters); -original traces the untouched
// program instead. -stats prints the metrics snapshot (statement and
// call counts, tree size, phase durations), -trace-out writes phase
// spans as JSONL, and -cpuprofile/-memprofile wire up pprof.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"gadt/internal/gadt"
	"gadt/internal/obs"
)

type options struct {
	input      string
	original   bool
	showSrc    bool
	stats      bool
	traceOut   string
	cpuprofile string
	memprofile string
}

func main() {
	var o options
	flag.StringVar(&o.input, "input", "", "program input")
	flag.BoolVar(&o.original, "original", false, "trace the untransformed program")
	flag.BoolVar(&o.showSrc, "transformed-source", false, "also print the transformed program")
	flag.BoolVar(&o.stats, "stats", false, "print a metrics snapshot on exit")
	flag.StringVar(&o.traceOut, "trace-out", "", "write phase-trace events as JSONL to this file (\"-\" = stderr text)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ptrace [flags] program.pas")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), o); err != nil {
		fmt.Fprintln(os.Stderr, "ptrace:", err)
		os.Exit(1)
	}
}

func run(file string, o options) (err error) {
	// Program output and the rendered tree can run to megabytes; one
	// buffered writer around stdout turns per-line syscalls into a few
	// large ones. The deferred flush runs after the stats snapshot.
	out := bufio.NewWriter(os.Stdout)
	defer func() {
		if ferr := out.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	reg, tracer, closeTrace, err := obs.Setup(o.traceOut)
	if err != nil {
		return err
	}
	stopProfiles, err := obs.StartProfiles(o.cpuprofile, o.memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
		if o.stats {
			fmt.Fprintln(out, "\nmetrics:")
			reg.Snapshot().WriteText(out)
		}
		if cerr := closeTrace(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sys, err := gadt.LoadObserved(file, string(src), reg, tracer)
	if err != nil {
		return err
	}
	var r *gadt.Run
	if o.original {
		r = sys.TraceOriginal(o.input)
	} else {
		r, err = sys.Trace(o.input)
		if err != nil {
			return err
		}
		if o.showSrc {
			xsrc, err := sys.TransformedSource()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "--- transformed program ---")
			fmt.Fprint(out, xsrc)
			fmt.Fprintln(out, "---")
		}
	}
	fmt.Fprintf(out, "program output:\n%s", r.Output)
	if r.RunErr != nil {
		fmt.Fprintf(out, "runtime error: %v\n", r.RunErr)
	}
	fmt.Fprintf(out, "execution tree (%d nodes, %d statements executed):\n", r.Tree.Size(), r.Steps)
	r.Tree.Render(out, nil, nil)
	return nil
}
