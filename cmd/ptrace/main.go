// Command ptrace executes a Pascal program and prints its execution tree
// (the paper's tracing phase, Section 5.2).
//
// Usage:
//
//	ptrace [-input "1 2"] [-original] [-transformed-source] program.pas
//
// By default the program is transformed first (loop units, goto
// breaking, globals to parameters); -original traces the untouched
// program instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"gadt/internal/gadt"
)

func main() {
	input := flag.String("input", "", "program input")
	original := flag.Bool("original", false, "trace the untransformed program")
	showSrc := flag.Bool("transformed-source", false, "also print the transformed program")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ptrace [flags] program.pas")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *input, *original, *showSrc); err != nil {
		fmt.Fprintln(os.Stderr, "ptrace:", err)
		os.Exit(1)
	}
}

func run(file, input string, original, showSrc bool) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sys, err := gadt.Load(file, string(src))
	if err != nil {
		return err
	}
	var r *gadt.Run
	if original {
		r = sys.TraceOriginal(input)
	} else {
		r, err = sys.Trace(input)
		if err != nil {
			return err
		}
		if showSrc {
			xsrc, err := sys.TransformedSource()
			if err != nil {
				return err
			}
			fmt.Println("--- transformed program ---")
			fmt.Print(xsrc)
			fmt.Println("---")
		}
	}
	fmt.Printf("program output:\n%s", r.Output)
	if r.RunErr != nil {
		fmt.Printf("runtime error: %v\n", r.RunErr)
	}
	fmt.Printf("execution tree (%d nodes, %d statements executed):\n", r.Tree.Size(), r.Steps)
	r.Tree.Render(os.Stdout, nil, nil)
	return nil
}
