// Command pmut runs a parallel mutation campaign: it plants faults into
// every subject program with classic mutation operators, pushes each
// mutant through the full GADT pipeline (transform, trace, algorithmic
// debugging), and answers every debugger query from the unmutated
// reference program — a fault-injection evaluation of bug localization
// with zero interactive oracle questions.
//
// Usage:
//
//	pmut [flags]
//
//	-seed n        campaign seed (mutant sampling; default 1)
//	-budget n      total mutants across all subjects (0 = all; default 240)
//	-workers n     worker pool size (0 = GOMAXPROCS)
//	-strategy s    comma list of top-down,divide,weighted,bottom-up, or "all"
//	-operators s   comma list of mutation operators, or "all"
//	-gate          exit non-zero if weighted D&Q's median question count
//	               exceeds plain divide-and-query's (CI regression gate)
//	-no-harvest    skip harvesting the reference run into call/assertion
//	               databases (every query then reaches the oracle)
//	-subject s     only subjects whose name contains s
//	-backend name  mutant execution engine: interp or vm (vm classifies
//	               untraced at bytecode speed, tracing only killed mutants)
//	-fuel n        per-execution statement budget
//	-depth n       per-execution call-depth budget
//	-timeout d     per-mutant wall-clock backstop
//	-json file     report destination ("-" = stdout; default BENCH_mutation.json)
//	-stats         print the obs metrics snapshot on exit
//	-ops addr      serve /metrics, /healthz, expvar and pprof on addr
//	-trace-out f   write a Perfetto-loadable Chrome trace (one lane per worker)
//	-progress      heartbeat lines on stderr (throughput, ETA, kills so far)
//	-v             per-subject and per-mutant progress
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"gadt/internal/campaign"
	"gadt/internal/debugger"
	"gadt/internal/mutate"
	"gadt/internal/obs"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "campaign seed")
		budget    = flag.Int("budget", 240, "total mutants across subjects (0 = all)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		strategy  = flag.String("strategy", "all", "comma list of top-down,divide,weighted,bottom-up, or all")
		gate      = flag.Bool("gate", false, "fail if weighted D&Q's median question count exceeds plain divide-and-query's")
		noHarvest = flag.Bool("no-harvest", false, "skip the reference-run call/assertion harvest")
		opsFlag   = flag.String("operators", "all", "comma list of mutation operators, or all")
		subject   = flag.String("subject", "", "only subjects whose name contains this")
		backendF  = flag.String("backend", "", "mutant execution engine: interp or vm")
		fuel      = flag.Int("fuel", 0, "per-execution statement budget (0 = default)")
		depth     = flag.Int("depth", 0, "per-execution call-depth budget (0 = default)")
		timeout   = flag.Duration("timeout", 0, "per-mutant wall-clock backstop (0 = default)")
		jsonOut   = flag.String("json", "BENCH_mutation.json", "report destination (\"-\" = stdout)")
		stats     = flag.Bool("stats", false, "print a metrics snapshot on exit")
		opsAddr   = flag.String("ops", "", "serve the live ops endpoint (/metrics, /healthz, pprof) on this address")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable; \".jsonl\" = raw events, \"-\" = stderr text)")
		progress  = flag.Bool("progress", false, "heartbeat lines on stderr (throughput, ETA, kills so far)")
		verbose   = flag.Bool("v", false, "per-subject progress")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(runOpts{
		seed: *seed, budget: *budget, workers: *workers,
		strategy: *strategy, opsFlag: *opsFlag, subject: *subject, backend: *backendF,
		fuel: *fuel, depth: *depth, timeout: *timeout, jsonOut: *jsonOut,
		stats: *stats, opsAddr: *opsAddr, traceOut: *traceOut,
		progress: *progress, verbose: *verbose, gate: *gate, noHarvest: *noHarvest,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "pmut:", err)
		os.Exit(1)
	}
}

func parseStrategies(s string) ([]debugger.Strategy, error) {
	if s == "" || s == "all" {
		return nil, nil
	}
	var out []debugger.Strategy
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		strat, ok := debugger.ParseStrategy(part)
		if !ok || part == "" {
			return nil, fmt.Errorf("unknown strategy %q", part)
		}
		out = append(out, strat)
	}
	return out, nil
}

func parseOps(s string) ([]mutate.Op, error) {
	if s == "" || s == "all" {
		return nil, nil
	}
	var out []mutate.Op
	for _, part := range strings.Split(s, ",") {
		op, ok := mutate.ParseOp(strings.TrimSpace(part))
		if !ok {
			return nil, fmt.Errorf("unknown mutation operator %q (have: %v)", part, mutate.AllOps())
		}
		out = append(out, op)
	}
	return out, nil
}

type runOpts struct {
	seed            int64
	budget, workers int
	strategy        string
	opsFlag         string
	subject         string
	backend         string
	fuel, depth     int
	timeout         time.Duration
	jsonOut         string
	stats           bool
	opsAddr         string
	traceOut        string
	progress        bool
	verbose         bool
	gate            bool
	noHarvest       bool
}

func run(o runOpts) (err error) {
	strategies, err := parseStrategies(o.strategy)
	if err != nil {
		return err
	}
	ops, err := parseOps(o.opsFlag)
	if err != nil {
		return err
	}
	var subjects []campaign.Subject
	if o.subject != "" {
		for _, s := range campaign.DefaultSubjects() {
			if strings.Contains(s.Name, o.subject) {
				subjects = append(subjects, s)
			}
		}
		if len(subjects) == 0 {
			return fmt.Errorf("no subject matches %q", o.subject)
		}
	}

	reg, tracer, closeTrace, err := obs.Setup(o.traceOut)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeTrace(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if o.opsAddr != "" {
		srv, serr := obs.ServeOps(o.opsAddr, reg)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pmut: ops endpoint on http://%s (metrics, healthz, pprof)\n", srv.Addr())
	}

	cfg := campaign.Config{
		Subjects:   subjects,
		Ops:        ops,
		Seed:       o.seed,
		Budget:     o.budget,
		Workers:    o.workers,
		Strategies: strategies,
		Fuel:       o.fuel,
		MaxDepth:   o.depth,
		Timeout:    o.timeout,
		Metrics:    reg,
		Tracer:     tracer,
		NoHarvest:  o.noHarvest,
		Backend:    o.backend,
	}
	if o.progress {
		cfg.Progress = os.Stderr
	}
	if o.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := campaign.Run(cfg)
	if err != nil {
		return err
	}

	if o.verbose {
		for _, oc := range rep.Outcomes {
			fmt.Fprintf(os.Stderr, "%-28s #%-4d %-10s %-16s %s\n",
				oc.Subject, oc.MutantID, oc.Status, oc.Op, oc.Description)
		}
	}
	// With the report going to stdout, keep stdout pure JSON (pipeable
	// into jq) and move the human summary to stderr. Both streams are
	// buffered and flushed once before exit.
	stdout := bufio.NewWriter(os.Stdout)
	summaryDst := stdout
	if o.jsonOut == "-" {
		summaryDst = bufio.NewWriter(os.Stderr)
	}
	defer func() {
		if ferr := summaryDst.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if ferr := stdout.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	summarize(summaryDst, rep)

	switch o.jsonOut {
	case "":
	case "-":
		if err := rep.WriteJSON(stdout); err != nil {
			return err
		}
	default:
		f, err := os.Create(o.jsonOut)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		if err := rep.WriteJSON(w); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(summaryDst, "report written to %s\n", o.jsonOut)
	}
	if o.stats {
		fmt.Fprintln(summaryDst, "\nmetrics:")
		reg.Snapshot().WriteText(summaryDst)
	}
	if o.gate {
		if err := gateMedians(rep); err != nil {
			return err
		}
		fmt.Fprintln(summaryDst, "gate: weighted D&Q median is within the plain divide-and-query bound")
	}
	return nil
}

// gateMedians is the CI regression gate: the weighted strategy's whole
// point is asking fewer questions, so its median must not drift above
// plain divide-and-query's.
func gateMedians(rep *campaign.Report) error {
	plain := rep.ByStrategy[debugger.DivideAndQuery.String()]
	weighted := rep.ByStrategy[debugger.WeightedDivideAndQuery.String()]
	if plain == nil || weighted == nil {
		return fmt.Errorf("gate: need both %s and %s in the campaign (got strategies: %v)",
			debugger.DivideAndQuery, debugger.WeightedDivideAndQuery, sortedKeys(rep.ByStrategy))
	}
	if weighted.MedianQuestions > plain.MedianQuestions {
		return fmt.Errorf("gate: weighted D&Q median questions %.1f exceeds plain divide-and-query's %.1f",
			weighted.MedianQuestions, plain.MedianQuestions)
	}
	return nil
}

func summarize(w io.Writer, rep *campaign.Report) {
	fmt.Fprintf(w, "mutation campaign: %d subjects, %d sites enumerated, %d mutants evaluated (seed %d, %d workers, %s)\n",
		rep.Subjects, rep.Enumerated, rep.Mutants, rep.Seed, rep.Workers,
		time.Duration(rep.ElapsedMS)*time.Millisecond)
	fmt.Fprintf(w, "  killed %d  survived %d  timeout %d  stillborn %d  panics %d  equivalent %d   kill rate %.1f%%\n",
		rep.Killed, rep.Survived, rep.Timeout, rep.Stillborn, rep.Panics, rep.Equivalent, 100*rep.KillRate())
	if rep.Equivalent > 0 {
		fmt.Fprintf(w, "  %d mutants proven equivalent by static triage (never executed, excluded from kill rate)\n", rep.Equivalent)
	}
	if rep.DebugSkipped > 0 {
		fmt.Fprintf(w, "  debug skipped on %d oversized trees\n", rep.DebugSkipped)
	}
	for _, msg := range rep.SubjectErrors {
		fmt.Fprintf(w, "  subject error: %s\n", msg)
	}

	fmt.Fprintf(w, "\n%-18s %8s %8s %8s %8s %8s %10s\n", "operator", "mutants", "killed", "survived", "timeout", "equiv", "kill rate")
	for _, op := range sortedKeys(rep.ByOperator) {
		st := rep.ByOperator[op]
		fmt.Fprintf(w, "%-18s %8d %8d %8d %8d %8d %9.1f%%\n",
			op, st.Mutants, st.Killed, st.Survived, st.Timeout, st.Equivalent, 100*st.KillRate)
	}

	fmt.Fprintf(w, "\n%-18s %9s %10s %11s %8s %8s %6s %8s %7s\n",
		"strategy", "sessions", "localized", "rate", "mean q", "med q", "max q", "asserts", "tests")
	for _, name := range sortedKeys(rep.ByStrategy) {
		st := rep.ByStrategy[name]
		fmt.Fprintf(w, "%-18s %9d %10d %10.1f%% %8.2f %8.1f %6d %8d %7d\n",
			name, st.Sessions, st.Localized, 100*st.LocalizationRate,
			st.MeanQuestions, st.MedianQuestions, st.MaxQuestions, st.ByAssertions, st.ByTests)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
