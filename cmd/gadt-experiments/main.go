// Command gadt-experiments regenerates every figure and session of the
// paper (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	gadt-experiments             # run everything
//	gadt-experiments -exp F8     # run one experiment
//	gadt-experiments -list       # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"gadt/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp != "" {
		e := experiments.Lookup(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(1)
		}
		out, err := e.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s ===\n%s", e.ID, e.Title, out)
		return
	}
	out, err := experiments.RunAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}
