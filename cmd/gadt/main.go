// Command gadt is the interactive generalized algorithmic debugger: it
// transforms a Pascal program, runs it building the execution tree, and
// guides the user through bug localization with yes/no/assertion
// answers, optionally consulting a T-GEN test-report database and
// pruning the tree by dynamic slicing.
//
// Usage:
//
//	gadt [flags] program.pas
//
//	-input string      program input (passed to read/readln)
//	-strategy string   top-down | divide | bottom-up (default top-down)
//	-no-slicing        disable dynamic slicing on "n <output>" answers
//	-no-transform      trace the original program (side-effect-free only)
//	-no-lint           skip the plint pre-flight (anomaly report + hints)
//	-reports file      T-GEN report database (JSON) to consult
//	-spec file         T-GEN specification matching -reports
//	-tree              print the execution tree before debugging
//
// Interactive replies: y(es), n(o), `n <output>` (wrong output →
// slicing), `a <expr>` (assertion), t(rust), d(ontknow).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gadt/internal/analysis/lint"
	"gadt/internal/assertion"
	"gadt/internal/debugger"
	"gadt/internal/gadt"
	"gadt/internal/pascal/interp"
	"gadt/internal/tgen"
)

// terminalChooser implements the paper's menu-based test-frame selection
// (Section 5.3.2) on stdin/stdout.
type terminalChooser struct{}

func (terminalChooser) Choose(unit string, cat *tgen.Category, eligible []*tgen.Choice, ins []interp.Binding) *tgen.Choice {
	var vals []string
	for _, b := range ins {
		vals = append(vals, b.String())
	}
	fmt.Printf("classify the call %s(%s)\n", unit, strings.Join(vals, ", "))
	fmt.Printf("  category %s:\n", cat.Name)
	for i, ch := range eligible {
		fmt.Printf("    %d) %s\n", i+1, ch.Name)
	}
	fmt.Printf("  choice (1-%d, empty to skip)> ", len(eligible))
	r := bufio.NewReader(os.Stdin)
	line, err := r.ReadString('\n')
	if err != nil {
		return nil
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	i, err := strconv.Atoi(line)
	if err != nil || i < 1 || i > len(eligible) {
		return nil
	}
	return eligible[i-1]
}

func main() {
	input := flag.String("input", "", "program input")
	strategy := flag.String("strategy", "top-down", "top-down | divide | bottom-up")
	noSlicing := flag.Bool("no-slicing", false, "disable dynamic slicing")
	noTransform := flag.Bool("no-transform", false, "trace the original program")
	noLint := flag.Bool("no-lint", false, "skip the plint pre-flight")
	reports := flag.String("reports", "", "T-GEN report database (JSON)")
	specFile := flag.String("spec", "", "T-GEN specification for -reports")
	showTree := flag.Bool("tree", false, "print the execution tree first")
	reference := flag.String("reference", "", "known-good reference program answering queries instead of the user")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gadt [flags] program.pas")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *input, *strategy, !*noSlicing, !*noTransform, !*noLint, *reports, *specFile, *showTree, *reference); err != nil {
		fmt.Fprintln(os.Stderr, "gadt:", err)
		os.Exit(1)
	}
}

func run(file, input, strategy string, slicing, doTransform, doLint bool, reports, specFile string, showTree bool, reference string) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sys, err := gadt.Load(file, string(src))
	if err != nil {
		return err
	}

	// Pre-flight: report static dataflow anomalies before spending any
	// oracle interaction, and convert them into suspiciousness hints so
	// the traversal asks about anomalous units first.
	var hints map[string]float64
	if doLint {
		if diags := sys.Lint(lint.Options{}); len(diags) > 0 {
			fmt.Printf("static anomalies (plint; these units are asked about first):\n")
			lint.Text(os.Stdout, diags)
			fmt.Println()
			hints = lint.Hints(diags)
		}
	}

	var run *gadt.Run
	if doTransform {
		run, err = sys.Trace(input)
		if err != nil {
			return err
		}
	} else {
		run = sys.TraceOriginal(input)
	}
	fmt.Printf("program output:\n%s", run.Output)
	if run.RunErr != nil {
		fmt.Printf("the program stopped with a runtime error: %v\n", run.RunErr)
	}
	if showTree {
		fmt.Printf("\nexecution tree (%d nodes):\n", run.Tree.Size())
		run.Tree.Render(os.Stdout, nil, nil)
	}

	cfg := gadt.DebugConfig{Slicing: slicing, Hints: hints}
	switch strategy {
	case "top-down", "":
		cfg.Strategy = debugger.TopDown
	case "divide":
		cfg.Strategy = debugger.DivideAndQuery
	case "bottom-up":
		cfg.Strategy = debugger.BottomUp
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	db := assertion.NewDB()
	cfg.Assertions = db

	if reports != "" {
		if specFile == "" {
			return fmt.Errorf("-reports requires -spec")
		}
		specSrc, err := os.ReadFile(specFile)
		if err != nil {
			return err
		}
		spec, err := tgen.ParseSpec(string(specSrc))
		if err != nil {
			return err
		}
		rdb, err := tgen.LoadReportDB(reports)
		if err != nil {
			return err
		}
		// When match expressions cannot classify a call, fall back to
		// the paper's menu-based frame selection on the terminal.
		cfg.Tests = &tgen.MenuLookup{
			Lookup:  tgen.Lookup{Spec: spec, DB: rdb},
			Chooser: terminalChooser{},
		}
	}

	var oracle debugger.Oracle
	if reference != "" {
		refSrc, err := os.ReadFile(reference)
		if err != nil {
			return err
		}
		if doTransform {
			oracle, err = gadt.IntendedOracle(string(refSrc))
		} else {
			oracle, err = gadt.IntendedOracleOriginal(string(refSrc))
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nanswering queries from the reference implementation %s\n", reference)
	} else {
		oracle = &debugger.InteractiveOracle{In: os.Stdin, Out: os.Stdout, DB: db}
		fmt.Println("\nstarting algorithmic debugging; reply y, n, n <output>, a <assertion>, t, d")
	}
	out, err := run.Debug(oracle, cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	if out.Localized() {
		fmt.Printf("%s.\n", out.Reason)
	} else {
		fmt.Println("no bug could be localized (all answers were 'correct').")
	}
	fmt.Printf("questions: %d  answered by tests: %d  by assertions: %d  remembered: %d  slices: %d\n",
		out.Questions, out.ByTests, out.ByAssertions, out.ByMemo, out.Slices)
	return nil
}
