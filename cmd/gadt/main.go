// Command gadt is the interactive generalized algorithmic debugger: it
// transforms a Pascal program, runs it building the execution tree, and
// guides the user through bug localization with yes/no/assertion
// answers, optionally consulting a T-GEN test-report database and
// pruning the tree by dynamic slicing.
//
// Usage:
//
//	gadt [flags] program.pas
//
//	-input string      program input (passed to read/readln)
//	-strategy string   top-down | divide | bottom-up (default top-down)
//	-no-slicing        disable dynamic slicing on "n <output>" answers
//	-no-transform      trace the original program (side-effect-free only)
//	-no-lint           skip the plint pre-flight (anomaly report + hints)
//	-reports file      T-GEN report database (JSON) to consult
//	-spec file         T-GEN specification matching -reports
//	-tree              print the execution tree before debugging
//	-stats             print a metrics snapshot on exit
//	-ops addr          serve /metrics, /healthz, expvar and pprof on addr
//	-trace-out file    write a Chrome trace-event JSON file (loads in
//	                   Perfetto / chrome://tracing; ".jsonl" suffix = raw
//	                   JSONL events, "-" = stderr text)
//	-journal file      record every oracle query/answer as JSONL
//	-replay file       re-answer a session from a recorded journal
//	-cpuprofile file   write a pprof CPU profile
//	-memprofile file   write a pprof heap profile on exit
//
// Interactive replies: y(es), n(o), `n <output>` (wrong output →
// slicing), `a <expr>` (assertion), t(rust), d(ontknow).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gadt/internal/analysis/lint"
	"gadt/internal/assertion"
	"gadt/internal/debugger"
	"gadt/internal/gadt"
	"gadt/internal/obs"
	"gadt/internal/pascal/interp"
	"gadt/internal/tgen"
)

// terminalChooser implements the paper's menu-based test-frame selection
// (Section 5.3.2) on stdin/stdout.
type terminalChooser struct{}

func (terminalChooser) Choose(unit string, cat *tgen.Category, eligible []*tgen.Choice, ins []interp.Binding) *tgen.Choice {
	var vals []string
	for _, b := range ins {
		vals = append(vals, b.String())
	}
	fmt.Printf("classify the call %s(%s)\n", unit, strings.Join(vals, ", "))
	fmt.Printf("  category %s:\n", cat.Name)
	for i, ch := range eligible {
		fmt.Printf("    %d) %s\n", i+1, ch.Name)
	}
	fmt.Printf("  choice (1-%d, empty to skip)> ", len(eligible))
	r := bufio.NewReader(os.Stdin)
	line, err := r.ReadString('\n')
	if err != nil {
		return nil
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	i, err := strconv.Atoi(line)
	if err != nil || i < 1 || i > len(eligible) {
		return nil
	}
	return eligible[i-1]
}

type options struct {
	input      string
	strategy   string
	slicing    bool
	transform  bool
	lint       bool
	reports    string
	specFile   string
	showTree   bool
	reference  string
	stats      bool
	ops        string
	traceOut   string
	journal    string
	replay     string
	cpuprofile string
	memprofile string
}

func main() {
	var o options
	flag.StringVar(&o.input, "input", "", "program input")
	flag.StringVar(&o.strategy, "strategy", "top-down", "top-down | divide | weighted | bottom-up")
	noSlicing := flag.Bool("no-slicing", false, "disable dynamic slicing")
	noTransform := flag.Bool("no-transform", false, "trace the original program")
	noLint := flag.Bool("no-lint", false, "skip the plint pre-flight")
	flag.StringVar(&o.reports, "reports", "", "T-GEN report database (JSON)")
	flag.StringVar(&o.specFile, "spec", "", "T-GEN specification for -reports")
	flag.BoolVar(&o.showTree, "tree", false, "print the execution tree first")
	flag.StringVar(&o.reference, "reference", "", "known-good reference program answering queries instead of the user")
	flag.BoolVar(&o.stats, "stats", false, "print a metrics snapshot on exit")
	flag.StringVar(&o.ops, "ops", "", "serve the live ops endpoint (/metrics, /healthz, pprof) on this address, e.g. :80 or :0")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable; \".jsonl\" = raw events, \"-\" = stderr text)")
	flag.StringVar(&o.journal, "journal", "", "record every oracle query/answer as JSONL to this file")
	flag.StringVar(&o.replay, "replay", "", "re-answer the session from a recorded journal")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()
	o.slicing = !*noSlicing
	o.transform = !*noTransform
	o.lint = !*noLint

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gadt [flags] program.pas")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), o); err != nil {
		fmt.Fprintln(os.Stderr, "gadt:", err)
		os.Exit(1)
	}
}

func run(file string, o options) (err error) {
	if o.replay != "" && o.reference != "" {
		return fmt.Errorf("-replay and -reference are mutually exclusive")
	}
	// Batch output (program output, lint report, tree render, summary)
	// goes through one buffered writer. The session is interactive, so
	// the buffer is flushed before any phase that prompts on stdin —
	// oracle queries and T-GEN menu selection stay on raw stdout.
	w := bufio.NewWriter(os.Stdout)
	defer func() {
		if ferr := w.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	reg, tracer, closeTrace, err := obs.Setup(o.traceOut)
	if err != nil {
		return err
	}
	stopProfiles, err := obs.StartProfiles(o.cpuprofile, o.memprofile)
	if err != nil {
		return err
	}
	if o.ops != "" {
		srv, serr := obs.ServeOps(o.ops, reg)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "gadt: ops endpoint on http://%s (metrics, healthz, pprof)\n", srv.Addr())
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
		if o.stats {
			fmt.Fprintln(w, "\nmetrics:")
			reg.Snapshot().WriteText(w)
		}
		if cerr := closeTrace(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	// The whole run is one root span: every pipeline phase started below
	// (parse, sem, transform, trace, debug) nests under it in the trace.
	session := tracer.Start("session")
	session.SetAttr("file", file)
	defer session.End()

	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	sys, err := gadt.LoadObserved(file, string(src), reg, tracer)
	if err != nil {
		return err
	}

	// Pre-flight: report static dataflow anomalies before spending any
	// oracle interaction, and convert them into suspiciousness hints so
	// the traversal asks about anomalous units first.
	var hints map[string]float64
	if o.lint {
		if diags := sys.Lint(lint.Options{}); len(diags) > 0 {
			fmt.Fprintf(w, "static anomalies (plint; these units are asked about first):\n")
			lint.Text(w, diags)
			fmt.Fprintln(w)
			hints = lint.Hints(diags)
		}
	}

	var run *gadt.Run
	if o.transform {
		run, err = sys.Trace(o.input)
		if err != nil {
			return err
		}
	} else {
		run = sys.TraceOriginal(o.input)
	}
	fmt.Fprintf(w, "program output:\n%s", run.Output)
	if run.RunErr != nil {
		fmt.Fprintf(w, "the program stopped with a runtime error: %v\n", run.RunErr)
	}
	if o.showTree {
		fmt.Fprintf(w, "\nexecution tree (%d nodes):\n", run.Tree.Size())
		run.Tree.Render(w, nil, nil)
	}

	cfg := gadt.DebugConfig{Slicing: o.slicing, Hints: hints}
	strat, ok := debugger.ParseStrategy(o.strategy)
	if !ok {
		return fmt.Errorf("unknown strategy %q", o.strategy)
	}
	cfg.Strategy = strat

	db := assertion.NewDB()
	cfg.Assertions = db

	if o.reports != "" {
		if o.specFile == "" {
			return fmt.Errorf("-reports requires -spec")
		}
		specSrc, err := os.ReadFile(o.specFile)
		if err != nil {
			return err
		}
		spec, err := tgen.ParseSpec(string(specSrc))
		if err != nil {
			return err
		}
		rdb, err := tgen.LoadReportDB(o.reports)
		if err != nil {
			return err
		}
		// When match expressions cannot classify a call, fall back to
		// the paper's menu-based frame selection on the terminal.
		cfg.Tests = &tgen.MenuLookup{
			Lookup:  tgen.Lookup{Spec: spec, DB: rdb},
			Chooser: terminalChooser{},
		}
	}

	var oracle debugger.Oracle
	var replayer *debugger.ReplayOracle
	switch {
	case o.replay != "":
		jf, err := os.Open(o.replay)
		if err != nil {
			return err
		}
		journal, err := debugger.LoadJournal(jf)
		jf.Close()
		if err != nil {
			return err
		}
		replayer = debugger.NewReplayOracle(journal)
		replayer.DB = db
		oracle = replayer
		fmt.Fprintf(w, "\nreplaying %d recorded answers from %s (no questions will be asked)\n",
			len(journal.Entries), o.replay)
	case o.reference != "":
		refSrc, err := os.ReadFile(o.reference)
		if err != nil {
			return err
		}
		if o.transform {
			oracle, err = gadt.IntendedOracle(string(refSrc))
		} else {
			oracle, err = gadt.IntendedOracleOriginal(string(refSrc))
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nanswering queries from the reference implementation %s\n", o.reference)
	default:
		oracle = &debugger.InteractiveOracle{In: os.Stdin, Out: os.Stdout, DB: db}
		fmt.Fprintln(w, "\nstarting algorithmic debugging; reply y, n, n <output>, a <assertion>, t, d")
	}

	if o.journal != "" {
		jf, err := os.Create(o.journal)
		if err != nil {
			return err
		}
		defer jf.Close()
		jw := debugger.NewJournalWriter(jf)
		if err := jw.WriteHeader(file, cfg.Strategy.String(), o.input); err != nil {
			return err
		}
		oracle = &debugger.JournalingOracle{Inner: oracle, Journal: jw}
	}

	// The debugging phase prompts on stdin: everything queued so far must
	// be visible before the first question.
	if err := w.Flush(); err != nil {
		return err
	}

	out, err := run.Debug(oracle, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if out.Localized() {
		fmt.Fprintf(w, "%s.\n", out.Reason)
	} else {
		fmt.Fprintln(w, "no bug could be localized (the answers were 'correct' or 'don't know' everywhere a bug could hide).")
	}
	fmt.Fprintf(w, "questions: %d  answered by tests: %d  by assertions: %d  remembered: %d  slices: %d\n",
		out.Questions, out.ByTests, out.ByAssertions, out.ByMemo, out.Slices)
	if replayer != nil && replayer.Remaining() > 0 {
		// Leftover recorded answers mean the replayed session traversed
		// the tree differently from the recorded one — a divergence, and
		// an error (not a log line): replay's whole point is determinism.
		return fmt.Errorf("replay divergence: %d recorded journal entries were never consulted (the session asked different questions than the recorded one)", replayer.Remaining())
	}
	return nil
}
