package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildGadt compiles the gadt command once per test run.
func buildGadt(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gadt")
	cmd := exec.Command("go", "build", "-o", bin, "gadt/cmd/gadt")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// record runs a non-interactive session against the known-good
// reference, writing the journal to path.
func record(t *testing.T, bin, journal string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-reference", "testdata/sqrtest_fixed.pas",
		"-journal", journal,
		"testdata/sqrtest.pas")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("record session: %v\n%s", err, out)
	}
}

func replay(bin, journal string) (string, error) {
	cmd := exec.Command(bin, "-replay", journal, "testdata/sqrtest.pas")
	cmd.Dir = "../.."
	cmd.Stdin = strings.NewReader("")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestReplayCLIDivergenceExitsNonZero records a session, then tampers
// with the journal both ways — removing an answer the session needs,
// and adding one it never consumes — and asserts the CLI reports a
// replay divergence with a non-zero exit code each time. The intact
// journal must still replay cleanly.
func TestReplayCLIDivergenceExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the CLI")
	}
	bin := buildGadt(t)
	journal := filepath.Join(t.TempDir(), "session.jsonl")
	record(t, bin, journal)

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	var queries []int
	for i, l := range lines {
		if strings.Contains(l, `"kind":"query"`) {
			queries = append(queries, i)
		}
	}
	if len(queries) < 2 {
		t.Fatalf("recorded session has %d queries, need at least 2", len(queries))
	}

	t.Run("intact journal replays cleanly", func(t *testing.T) {
		out, err := replay(bin, journal)
		if err != nil {
			t.Fatalf("replay failed: %v\n%s", err, out)
		}
		if !strings.Contains(out, "localized inside the body of") {
			t.Fatalf("replay did not localize:\n%s", out)
		}
	})

	t.Run("missing answer", func(t *testing.T) {
		truncated := filepath.Join(t.TempDir(), "truncated.jsonl")
		var kept []string
		for i, l := range lines {
			if i != queries[len(queries)-1] {
				kept = append(kept, l)
			}
		}
		if err := os.WriteFile(truncated, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := replay(bin, truncated)
		assertDivergence(t, out, err, "no answer for query")
	})

	t.Run("unconsumed answer", func(t *testing.T) {
		padded := filepath.Join(t.TempDir(), "padded.jsonl")
		dup := append([]string{}, lines...)
		dup = append(dup, lines[queries[len(queries)-1]])
		if err := os.WriteFile(padded, []byte(strings.Join(dup, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := replay(bin, padded)
		assertDivergence(t, out, err, "never consulted")
	})
}

func assertDivergence(t *testing.T, out string, err error, wantMsg string) {
	t.Helper()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected non-zero exit, got err=%v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "replay divergence") || !strings.Contains(out, wantMsg) {
		t.Fatalf("missing divergence message (want %q):\n%s", wantMsg, out)
	}
}
