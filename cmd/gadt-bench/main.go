// Command gadt-bench measures the end-to-end cost of algorithmic
// debugging on the seed subjects and writes a machine-readable summary.
// For every subject × traversal strategy it reports the oracle-question
// count (sourced from the obs metrics registry, the same counters
// `gadt -stats` prints) and ns/op, B/op and allocs/op of a full
// load → transform → trace → debug cycle measured with
// testing.Benchmark.
//
// Usage:
//
//	gadt-bench [-o BENCH_debug.json]
//
// The output feeds `make bench-json`; "-" writes to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"gadt/internal/debugger"
	"gadt/internal/gadt"
	"gadt/internal/obs"
	"gadt/internal/paper"
	"gadt/internal/progen"
)

type subject struct {
	name, buggy, fixed string
}

type result struct {
	Subject     string `json:"subject"`
	Strategy    string `json:"strategy"`
	Questions   int64  `json:"questions"`
	Localized   string `json:"localized"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

func main() {
	out := flag.String("o", "BENCH_debug.json", "output file (\"-\" = stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "gadt-bench:", err)
		os.Exit(1)
	}
}

func subjects() []subject {
	subs := []subject{{"sqrtest", paper.Sqrtest, paper.SqrtestFixed}}
	for _, shape := range []progen.Config{
		{Depth: 3, Fanout: 2, BugPath: []int{1, 0, 1}},
		{Depth: 4, Fanout: 3, BugPath: []int{2, 0, 1, 2}},
	} {
		p := progen.Generate(shape)
		subs = append(subs, subject{
			fmt.Sprintf("synth(d=%d,f=%d)", shape.Depth, shape.Fanout), p.Buggy, p.Fixed,
		})
	}
	return subs
}

// session runs one full debug cycle; when reg is non-nil the phases are
// observed and the question counters land in it.
func session(s subject, strat debugger.Strategy, reg *obs.Registry) (*debugger.Outcome, error) {
	sys, err := gadt.LoadObserved(s.name+".pas", s.buggy, reg, nil)
	if err != nil {
		return nil, err
	}
	run, err := sys.Trace("")
	if err != nil {
		return nil, err
	}
	oracle, err := gadt.IntendedOracle(s.fixed)
	if err != nil {
		return nil, err
	}
	return run.Debug(oracle, gadt.DebugConfig{Strategy: strat, Slicing: true})
}

func run(out string) error {
	var results []result
	for _, s := range subjects() {
		for _, strat := range []debugger.Strategy{debugger.TopDown, debugger.DivideAndQuery, debugger.BottomUp} {
			reg := obs.NewRegistry()
			outc, err := session(s, strat, reg)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", s.name, strat, err)
			}
			loc := "-"
			if outc.Localized() {
				loc = outc.Bug.Unit.Name
			}
			s, strat := s, strat
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := session(s, strat, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			results = append(results, result{
				Subject:     s.name,
				Strategy:    strat.String(),
				Questions:   reg.CounterVec("debugger.oracle.queries.strategy", "strategy").With(strat.String()).Value(),
				Localized:   loc,
				NsPerOp:     br.NsPerOp(),
				BytesPerOp:  br.AllocedBytesPerOp(),
				AllocsPerOp: br.AllocsPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%-18s %-14s %2d questions  %s\n",
				s.name, strat, results[len(results)-1].Questions, br)
		}
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
