// Command tracecheck validates a Chrome trace-event JSON file of the
// kind gadt/pmut/pdiff write with -trace-out: the same structural rules
// Perfetto and chrome://tracing rely on, enforced mechanically so CI can
// gate on them instead of a human loading the file in a browser.
//
// Usage:
//
//	tracecheck trace.json [trace2.json ...]
//
// Checks, per file:
//   - the file is one well-formed JSON array of event objects (an
//     unterminated array means a sink was never flushed);
//   - every event carries name, ph, ts, pid and tid;
//   - every ph is B, E or M, and B/E events balance per tid with E
//     timestamps never before their B;
//   - at least one span nests inside another (the whole point of
//     hierarchical tracing);
//   - thread_name metadata is present, so lanes are labeled.
//
// Exit status is 1 if any file fails, with one line per violation.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// event mirrors obs.chromeEvent; unknown fields are ignored so the
// checker stays valid if the writer grows attributes.
type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	TS   *float64        `json:"ts"`
	PID  *int            `json:"pid"`
	TID  *int            `json:"tid"`
	Args json.RawMessage `json:"args"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [trace2.json ...]")
		os.Exit(2)
	}
	failed := false
	for _, file := range os.Args[1:] {
		if errs := checkFile(file); len(errs) > 0 {
			failed = true
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "tracecheck: %s: %s\n", file, e)
			}
		} else {
			fmt.Printf("tracecheck: %s ok\n", file)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func checkFile(file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{err.Error()}
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		return []string{fmt.Sprintf("not a JSON event array (unflushed sink?): %v", err)}
	}
	return check(events)
}

func check(events []event) []string {
	var errs []string
	if len(events) == 0 {
		return []string{"trace has no events"}
	}

	// open tracks the B-event stack per (pid, tid) lane; depth>0 at a B
	// means the span nests.
	type lane struct{ pid, tid int }
	open := make(map[lane][]event)
	nested := false
	namedLanes := 0
	spans := 0

	for i, ev := range events {
		where := fmt.Sprintf("event %d (%q)", i, ev.Name)
		if ev.Name == "" {
			errs = append(errs, fmt.Sprintf("event %d: missing name", i))
		}
		if ev.TS == nil {
			errs = append(errs, where+": missing ts")
		}
		if ev.PID == nil || ev.TID == nil {
			errs = append(errs, where+": missing pid/tid")
			continue
		}
		l := lane{*ev.PID, *ev.TID}
		switch ev.Ph {
		case "B":
			spans++
			if len(open[l]) > 0 {
				nested = true
			}
			open[l] = append(open[l], ev)
		case "E":
			stack := open[l]
			if len(stack) == 0 {
				errs = append(errs, where+": E without matching B on its tid")
				continue
			}
			top := stack[len(stack)-1]
			open[l] = stack[:len(stack)-1]
			if top.Name != ev.Name {
				errs = append(errs, fmt.Sprintf("%s: closes %q (spans must nest strictly)", where, top.Name))
			}
			if top.TS != nil && ev.TS != nil && *ev.TS < *top.TS {
				errs = append(errs, fmt.Sprintf("%s: ends at ts=%v before its B at ts=%v", where, *ev.TS, *top.TS))
			}
		case "M":
			if ev.Name == "thread_name" {
				namedLanes++
			}
		default:
			errs = append(errs, fmt.Sprintf("%s: unknown phase %q", where, ev.Ph))
		}
	}

	for l, stack := range open {
		for _, ev := range stack {
			errs = append(errs, fmt.Sprintf("span %q on tid %d never ends", ev.Name, l.tid))
		}
	}
	if spans == 0 {
		errs = append(errs, "trace has no B/E spans")
	} else if !nested {
		errs = append(errs, "no span nests inside another (hierarchy lost)")
	}
	if namedLanes == 0 {
		errs = append(errs, "no thread_name metadata (lanes would be unlabeled)")
	}
	return errs
}
