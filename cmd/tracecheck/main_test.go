package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) []event {
	t.Helper()
	var evs []event
	if err := json.Unmarshal([]byte(src), &evs); err != nil {
		t.Fatalf("test fixture does not parse: %v", err)
	}
	return evs
}

const goodTrace = `[
 {"name":"thread_name","cat":"meta","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"main"}},
 {"name":"session","cat":"span","ph":"B","ts":0,"pid":1,"tid":0},
 {"name":"parse","cat":"span","ph":"B","ts":5,"pid":1,"tid":0},
 {"name":"parse","cat":"span","ph":"E","ts":9,"pid":1,"tid":0},
 {"name":"session","cat":"span","ph":"E","ts":12,"pid":1,"tid":0}
]`

func TestCheckGoodTrace(t *testing.T) {
	if errs := check(parse(t, goodTrace)); len(errs) != 0 {
		t.Fatalf("valid trace rejected: %v", errs)
	}
}

func TestCheckViolations(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", `[]`, "no events"},
		{"unbalanced", `[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0},
			{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
			{"name":"b","ph":"B","ts":1,"pid":1,"tid":0},
			{"name":"b","ph":"E","ts":2,"pid":1,"tid":0}]`, "never ends"},
		{"strayEnd", `[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0},
			{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
			{"name":"b","ph":"B","ts":1,"pid":1,"tid":0},
			{"name":"b","ph":"E","ts":2,"pid":1,"tid":0},
			{"name":"a","ph":"E","ts":3,"pid":1,"tid":0},
			{"name":"c","ph":"E","ts":4,"pid":1,"tid":0}]`, "without matching B"},
		{"crossed", `[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0},
			{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
			{"name":"b","ph":"B","ts":1,"pid":1,"tid":0},
			{"name":"a","ph":"E","ts":2,"pid":1,"tid":0},
			{"name":"b","ph":"E","ts":3,"pid":1,"tid":0}]`, "must nest strictly"},
		{"timeTravel", `[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0},
			{"name":"a","ph":"B","ts":10,"pid":1,"tid":0},
			{"name":"b","ph":"B","ts":11,"pid":1,"tid":0},
			{"name":"b","ph":"E","ts":4,"pid":1,"tid":0},
			{"name":"a","ph":"E","ts":12,"pid":1,"tid":0}]`, "before its B"},
		{"missingFields", `[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0},
			{"name":"a","ph":"B","pid":1,"tid":0},
			{"name":"a","ph":"E","ts":2,"pid":1,"tid":0},
			{"ph":"B","ts":0,"pid":1,"tid":0}]`, "missing ts"},
		{"flat", `[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0},
			{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
			{"name":"a","ph":"E","ts":1,"pid":1,"tid":0}]`, "no span nests"},
		{"noLanes", `[
			{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
			{"name":"b","ph":"B","ts":1,"pid":1,"tid":0},
			{"name":"b","ph":"E","ts":2,"pid":1,"tid":0},
			{"name":"a","ph":"E","ts":3,"pid":1,"tid":0}]`, "thread_name"},
		{"badPhase", `[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0},
			{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
			{"name":"x","ph":"Q","ts":1,"pid":1,"tid":0},
			{"name":"b","ph":"B","ts":1,"pid":1,"tid":0},
			{"name":"b","ph":"E","ts":2,"pid":1,"tid":0},
			{"name":"a","ph":"E","ts":3,"pid":1,"tid":0}]`, "unknown phase"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := check(parse(t, tc.src))
			found := false
			for _, e := range errs {
				if strings.Contains(e, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a violation containing %q, got %v", tc.want, errs)
			}
		})
	}
}

func TestCheckFileRejectsUnflushedArray(t *testing.T) {
	dir := t.TempDir()
	f := dir + "/trunc.json"
	// What a crashed run leaves behind: the array is never terminated.
	if err := os.WriteFile(f, []byte(`[{"name":"a","ph":"B","ts":0,"pid":1,"tid":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errs := checkFile(f)
	if len(errs) == 0 || !strings.Contains(errs[0], "unflushed") {
		t.Fatalf("truncated file accepted: %v", errs)
	}
}
