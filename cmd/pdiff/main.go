// Command pdiff runs a seeded differential-testing campaign over the
// transformation pipeline: every subject program is executed
// untransformed and after each transformation stage combination
// (globals-only, gotos+globals, loops+globals, full), and the two
// behaviors — stdout plus final global state — must agree. Any
// disagreement is a transformation bug; divergent subjects are shrunk
// to minimal counterexamples and written to a directory of standing
// regression tests.
//
// Usage:
//
//	pdiff [flags]
//
//	-n n           random programs to generate (default 250)
//	-backend name  execution backend: interp or vm; vm also adds the
//	               interpreter-vs-VM comparison axis to every subject
//	-seed n        generation seed; same seed, same campaign (default 1)
//	-corpus        also include corpus fixtures and progen shapes (default true)
//	-workers n     worker pool size (0 = GOMAXPROCS)
//	-fuel n        untransformed statement budget (transformed runs get 8x)
//	-timeout d     per-comparison wall-clock backstop
//	-shrink        minimize divergent programs (default true)
//	-dir d         write minimized counterexamples to d ("" = don't write)
//	-json file     report destination ("-" = stdout; default BENCH_diff.json)
//	-stats         print the obs metrics snapshot on exit
//	-ops addr      serve /metrics, /healthz, expvar and pprof on addr
//	-trace-out f   write a Perfetto-loadable Chrome trace (one lane per worker)
//	-progress      heartbeat lines on stderr (throughput, ETA, divergences so far)
//	-v             progress lines on stderr
//
// Exit status is 1 when any divergence (or pipeline panic) was found,
// so CI can gate on equivalence.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gadt/internal/diffharness"
	"gadt/internal/obs"
)

func main() {
	var (
		n        = flag.Int("n", 250, "random programs to generate")
		backendF = flag.String("backend", "", "execution backend: interp or vm (vm adds the interpreter-vs-VM comparison axis)")
		seed     = flag.Int64("seed", 1, "generation seed")
		corpus   = flag.Bool("corpus", true, "also include corpus fixtures and progen shapes")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		fuel     = flag.Int("fuel", 0, "untransformed statement budget (0 = default)")
		timeout  = flag.Duration("timeout", 0, "per-comparison wall-clock backstop (0 = default)")
		shrink   = flag.Bool("shrink", true, "minimize divergent programs")
		dir      = flag.String("dir", "", "write minimized counterexamples to this directory")
		jsonOut  = flag.String("json", "BENCH_diff.json", "report destination (\"-\" = stdout)")
		stats    = flag.Bool("stats", false, "print a metrics snapshot on exit")
		opsAddr  = flag.String("ops", "", "serve the live ops endpoint (/metrics, /healthz, pprof) on this address")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable; \".jsonl\" = raw events, \"-\" = stderr text)")
		progress = flag.Bool("progress", false, "heartbeat lines on stderr (throughput, ETA, divergences so far)")
		verbose  = flag.Bool("v", false, "progress lines on stderr")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	divergent, err := run(runOpts{
		n: *n, seed: *seed, corpus: *corpus, workers: *workers, backend: *backendF,
		fuel: *fuel, timeout: *timeout, shrink: *shrink, dir: *dir,
		jsonOut: *jsonOut, stats: *stats, opsAddr: *opsAddr,
		traceOut: *traceOut, progress: *progress, verbose: *verbose,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdiff:", err)
		os.Exit(1)
	}
	if divergent {
		fmt.Fprintln(os.Stderr, "pdiff: transformation divergences found")
		os.Exit(1)
	}
}

type runOpts struct {
	n        int
	backend  string
	seed     int64
	corpus   bool
	workers  int
	fuel     int
	timeout  time.Duration
	shrink   bool
	dir      string
	jsonOut  string
	stats    bool
	opsAddr  string
	traceOut string
	progress bool
	verbose  bool
}

func run(o runOpts) (divergent bool, err error) {
	reg, tracer, closeTrace, err := obs.Setup(o.traceOut)
	if err != nil {
		return false, err
	}
	defer func() {
		if cerr := closeTrace(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if o.opsAddr != "" {
		srv, serr := obs.ServeOps(o.opsAddr, reg)
		if serr != nil {
			return false, serr
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pdiff: ops endpoint on http://%s (metrics, healthz, pprof)\n", srv.Addr())
	}

	cfg := diffharness.Config{
		Programs: o.n,
		Backend:  o.backend,
		Seed:     o.seed,
		Corpus:   o.corpus,
		Workers:  o.workers,
		Fuel:     o.fuel,
		Timeout:  o.timeout,
		Shrink:   o.shrink,
		Metrics:  reg,
		Tracer:   tracer,
	}
	if o.progress {
		cfg.Progress = os.Stderr
	}
	if o.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := diffharness.Run(cfg)
	if err != nil {
		return false, err
	}

	// Buffer the summary (and, with -json -, the report itself): the
	// tables are written line by line and a campaign can emit thousands
	// of them; everything is flushed once before exit.
	summaryDst := bufio.NewWriter(os.Stdout)
	reportDst := summaryDst
	if o.jsonOut == "-" {
		summaryDst = bufio.NewWriter(os.Stderr)
	}
	defer func() {
		if ferr := summaryDst.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if ferr := reportDst.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	summarize(summaryDst, rep)

	if o.dir != "" && len(rep.Divergences) > 0 {
		if err := writeCounterexamples(o.dir, rep, summaryDst); err != nil {
			return false, err
		}
	}

	switch o.jsonOut {
	case "":
	case "-":
		if err := rep.WriteJSON(reportDst); err != nil {
			return false, err
		}
	default:
		f, err := os.Create(o.jsonOut)
		if err != nil {
			return false, err
		}
		w := bufio.NewWriter(f)
		if err := rep.WriteJSON(w); err != nil {
			f.Close()
			return false, err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return false, err
		}
		if err := f.Close(); err != nil {
			return false, err
		}
		fmt.Fprintf(summaryDst, "report written to %s\n", o.jsonOut)
	}
	if o.stats {
		fmt.Fprintln(summaryDst, "\nmetrics:")
		reg.Snapshot().WriteText(summaryDst)
	}
	return len(rep.Divergences) > 0, nil
}

// writeCounterexamples lands each divergence's (minimized) reproducer
// in dir as a self-describing .pas file; regress tests replay them.
func writeCounterexamples(dir string, rep *diffharness.Report, log io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, d := range rep.Divergences {
		src := d.Minimized
		if src == "" {
			src = d.Source
		}
		body := diffharness.EncodeCounterexample(d, src)
		name := filepath.Join(dir, fmt.Sprintf("diverge_%s_%d.pas", sanitize(d.Subject), i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(log, "counterexample written to %s\n", name)
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		}
		return '_'
	}, s)
}

func summarize(w io.Writer, rep *diffharness.Report) {
	fmt.Fprintf(w, "differential campaign: %d subjects x %d combos = %d comparisons (seed %d, %d workers, %s)\n",
		rep.Subjects, len(rep.Combos), rep.Compared, rep.Seed, rep.Workers,
		time.Duration(rep.ElapsedMS)*time.Millisecond)
	fmt.Fprintf(w, "  equivalent %d  divergent %d  rejected %d  inconclusive %d  panics %d  timeouts %d\n",
		rep.Equivalent, rep.Divergent, rep.Rejected, rep.Inconclusive, rep.Panics, rep.Timeouts)

	fmt.Fprintf(w, "\n%-22s %9s %11s %10s %9s %13s\n", "stages", "compared", "equivalent", "divergent", "rejected", "inconclusive")
	var keys []string
	for k := range rep.ByStages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := rep.ByStages[k]
		fmt.Fprintf(w, "%-22s %9d %11d %10d %9d %13d\n",
			k, st.Compared, st.Equivalent, st.Divergent, st.Rejected, st.Inconclusive)
	}

	for _, d := range rep.Divergences {
		fmt.Fprintf(w, "\nDIVERGENCE %s [%s] %s\n  %s\n", d.Subject, d.Stages, d.Kind, d.Detail)
	}
}
