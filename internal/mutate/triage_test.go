package mutate

import (
	"strings"
	"testing"
)

// triageSrc exercises every triage rule: a dead debug branch
// (unreachable sites), a comparison with a provable gap (rel-flip with
// identical outcome), an addition of a provable zero (arith-flip), a
// swap between two variables pinned to the same constant, and a
// zero-store into a zero-initialized variable (dead store).
const triageSrc = `
program triaged;
var a, b, zero, debug, out: integer;
begin
  zero := 0;
  debug := 0;
  a := 5;
  b := 5;
  out := 0;
  if debug > 0 then
    out := out * 99;
  if a < 100 then
    out := out + a + zero;
  out := out + b;
  writeln(out);
end.
`

func triaged(t *testing.T) []*Mutant {
	t.Helper()
	en, err := EnumerateProgram("triaged.pas", triageSrc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := TriageEquivalent(en)
	marked := 0
	for _, m := range en.Mutants {
		if m.Equivalent {
			marked++
			if m.EquivReason == "" {
				t.Errorf("mutant %d marked equivalent without a reason", m.ID)
			}
		}
	}
	if n != marked {
		t.Errorf("TriageEquivalent reported %d, %d mutants marked", n, marked)
	}
	return en.Mutants
}

func TestTriageRules(t *testing.T) {
	mutants := triaged(t)
	// wantRule maps a description fragment to the reason fragment the
	// triage verdict must cite.
	wantRule := map[string]string{
		"const-off-by-one 99": "unreachable",          // dead debug branch
		"rel-flip < -> <=":    "under both operators", // a in [5,5], gap to 100
		"arith-flip + -> -":   "both operators yield", // + zero vs - zero
		"var-swap b -> a":     "hold 5 at the site",   // both constant 5
		"drop-stmt `out := 0": "rewrites the 0",       // zero-init dead store
	}
	found := make(map[string]bool)
	for _, m := range mutants {
		if !m.Equivalent {
			continue
		}
		for frag, reason := range wantRule {
			if strings.Contains(m.Description, frag) {
				if !strings.Contains(m.EquivReason, reason) {
					t.Errorf("mutant %q: reason %q, want it to mention %q",
						m.Description, m.EquivReason, reason)
				}
				found[frag] = true
			}
		}
	}
	for frag := range wantRule {
		if !found[frag] {
			t.Errorf("no equivalent mutant matching %q; triage rule did not fire", frag)
		}
	}
}

// TestTriageConservative pins constructs that must NOT be classified
// equivalent: negations of live conditions, off-by-one on live
// constants, and drops of live stores.
func TestTriageConservative(t *testing.T) {
	for _, m := range triaged(t) {
		if !m.Equivalent {
			continue
		}
		for _, bad := range []string{
			"negate-cond if `a < 100`", // flips a taken branch
			"const-off-by-one 5 -> ",   // changes a live constant
			"drop-stmt `a := 5",        // drops a live store
		} {
			if strings.Contains(m.Description, bad) {
				t.Errorf("mutant %q wrongly classified equivalent (%s)", m.Description, m.EquivReason)
			}
		}
	}
}
