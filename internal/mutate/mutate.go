// Package mutate implements fault injection for the mutation campaign:
// it applies classic mutation operators to parsed Pascal programs,
// producing deterministic first-order mutants (exactly one planted
// fault each) together with the ground-truth unit the fault lives in.
// The campaign runner (package campaign) executes every mutant through
// the full GADT pipeline and checks that algorithmic debugging
// localizes the bug back to that unit.
//
// Operators (the classic selective set, cf. Offutt's sufficient
// operators):
//
//	rel-flip          relational operator replacement (<, <=, =, ...)
//	arith-flip        arithmetic operator replacement (+, -, *, div, ...)
//	const-off-by-one  integer literal n -> n±1
//	var-swap          reference to a variable replaced by another
//	                  same-type variable of the same declaration group
//	negate-cond       if/while/repeat condition wrapped in `not`
//	drop-stmt         assignment or call statement deleted
//
// Every candidate mutant is validated with the semantic analyzer;
// mutants that no longer type-check are discarded (stillborn), so the
// returned set contains only executable programs. Enumeration order,
// mutant IDs and sampling are fully deterministic for a given
// (source, Config) pair.
package mutate

import (
	"fmt"
	"math/rand"
	"sort"

	"gadt/internal/obs"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
)

// Op names a mutation operator.
type Op string

const (
	RelFlip       Op = "rel-flip"
	ArithFlip     Op = "arith-flip"
	ConstOffByOne Op = "const-off-by-one"
	VarSwap       Op = "var-swap"
	NegateCond    Op = "negate-cond"
	DropStmt      Op = "drop-stmt"
)

// AllOps lists every operator in canonical order.
func AllOps() []Op {
	return []Op{RelFlip, ArithFlip, ConstOffByOne, VarSwap, NegateCond, DropStmt}
}

// ParseOp recognizes an operator name.
func ParseOp(s string) (Op, bool) {
	for _, op := range AllOps() {
		if string(op) == s {
			return op, true
		}
	}
	return "", false
}

// Mutant is one validated first-order mutant.
type Mutant struct {
	// ID is the mutant's stable index in the full enumeration of its
	// subject (independent of sampling).
	ID int
	Op Op
	// Unit is the routine the fault was injected into (the program name
	// for faults in the main program body) — the localization ground
	// truth.
	Unit string
	// Pos is the source position of the mutated construct in the
	// original program.
	Pos token.Pos
	// Description is human-readable, e.g. `rel-flip < -> <= in isprime`.
	Description string
	// Source is the complete mutated program.
	Source string
	// Equivalent marks mutants that static triage proved
	// behaviour-preserving (see TriageEquivalent); the campaign reports
	// them without executing them.
	Equivalent bool
	// EquivReason names the triage rule that fired, e.g. `site
	// unreachable on all inputs`.
	EquivReason string

	// orig points at the mutation site in the original program, the
	// handle triage uses to consult the value analysis.
	orig *site
}

// Config controls enumeration.
type Config struct {
	// Ops enables a subset of operators (nil/empty = all).
	Ops []Op
	// Seed drives sampling when Max truncates the enumeration.
	Seed int64
	// Max caps the number of returned mutants (0 = all). Sampling is a
	// deterministic seed-driven choice from the full enumeration, so a
	// larger Max returns a superset ordering of stable IDs.
	Max int
	// Metrics, when non-nil, receives enumeration counters: the labeled
	// mutate.sites{op=...} series, mutate.stillborn (faults that do not
	// type-check), and mutate.mutants (viable mutants returned).
	Metrics *obs.Registry
}

// relAlts / arithAlts map an operator token to its replacement
// candidates. Two alternatives per relational operator cover both the
// boundary (off-by-one in the comparison) and the polarity fault
// classes.
var relAlts = map[token.Kind][]token.Kind{
	token.Eq:      {token.NotEq, token.LessEq},
	token.NotEq:   {token.Eq, token.Less},
	token.Less:    {token.LessEq, token.GreatEq},
	token.LessEq:  {token.Less, token.Greater},
	token.Greater: {token.GreatEq, token.LessEq},
	token.GreatEq: {token.Greater, token.Less},
}

var arithAlts = map[token.Kind][]token.Kind{
	token.Plus:  {token.Minus, token.Star},
	token.Minus: {token.Plus},
	token.Star:  {token.Plus},
	token.Div:   {token.Mod, token.Star},
	token.Mod:   {token.Div},
	token.Slash: {token.Star},
}

// site is one latent mutation: apply edits the cloned counterpart of
// the recorded original node(s).
type site struct {
	op    Op
	unit  string
	pos   token.Pos
	desc  string
	apply func(counterpart func(ast.Node) ast.Node) bool

	// Triage metadata. node is the original-program construct the
	// mutation edits (nil opts the site out of static triage); altOp and
	// altName record the replacement for flip and swap operators.
	node    ast.Node
	altOp   token.Kind
	altName string
}

// Enumeration couples the parsed original program with its validated
// mutants, so whole-program analyses of the original can classify them
// (see TriageEquivalent).
type Enumeration struct {
	Prog    *ast.Program
	Info    *sem.Info
	Mutants []*Mutant
}

// Enumerate parses source and returns every enabled, type-correct
// mutant (sampled down to cfg.Max when set).
func Enumerate(file, source string, cfg Config) ([]*Mutant, error) {
	en, err := EnumerateProgram(file, source, cfg)
	if err != nil {
		return nil, err
	}
	return en.Mutants, nil
}

// EnumerateProgram is Enumerate keeping the original program and its
// semantic info alongside the mutants.
func EnumerateProgram(file, source string, cfg Config) (*Enumeration, error) {
	prog, err := parser.ParseProgram(file, source)
	if err != nil {
		return nil, fmt.Errorf("mutate: %w", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return nil, fmt.Errorf("mutate: %w", err)
	}

	enabled := make(map[Op]bool)
	ops := cfg.Ops
	if len(ops) == 0 {
		ops = AllOps()
	}
	for _, op := range ops {
		enabled[op] = true
	}

	var sites []*site
	collectBlock(prog.Block, prog.Name, nil, enabled, &sites)
	siteVec := cfg.Metrics.CounterVec("mutate.sites", "op")
	for _, st := range sites {
		siteVec.With(string(st.op)).Inc()
	}

	var mutants []*Mutant
	for i, st := range sites {
		clone, cm := ast.Clone(prog)
		old2new := invert(cm)
		lookup := func(n ast.Node) ast.Node { return old2new[n] }
		if !st.apply(lookup) {
			continue
		}
		if _, err := sem.Analyze(clone); err != nil {
			cfg.Metrics.Counter("mutate.stillborn").Inc()
			continue // stillborn: the fault does not type-check
		}
		mutants = append(mutants, &Mutant{
			ID:          i,
			Op:          st.op,
			Unit:        st.unit,
			Pos:         st.pos,
			Description: st.desc,
			Source:      printer.Print(clone),
			orig:        st,
		})
	}

	if cfg.Max > 0 && len(mutants) > cfg.Max {
		rng := rand.New(rand.NewSource(cfg.Seed))
		rng.Shuffle(len(mutants), func(i, j int) {
			mutants[i], mutants[j] = mutants[j], mutants[i]
		})
		mutants = mutants[:cfg.Max]
		sort.Slice(mutants, func(i, j int) bool { return mutants[i].ID < mutants[j].ID })
	}
	cfg.Metrics.Counter("mutate.mutants").Add(int64(len(mutants)))
	return &Enumeration{Prog: prog, Info: info, Mutants: mutants}, nil
}

func invert(cm ast.CloneMap) map[ast.Node]ast.Node {
	inv := make(map[ast.Node]ast.Node, len(cm))
	for nw, old := range cm {
		inv[old] = nw
	}
	return inv
}

// collectBlock gathers mutation sites for the block's own body
// (attributed to unit) and recurses into nested routines. owner is the
// routine the block belongs to (nil for the program block); its
// parameter groups join the block's variable groups for var-swap.
func collectBlock(b *ast.Block, unit string, owner *ast.Routine, enabled map[Op]bool, sites *[]*site) {
	for _, r := range b.Routines {
		collectBlock(r.Block, r.Name, r, enabled, sites)
	}
	groups := varGroups(b)
	if owner != nil {
		paramGroups(owner, groups)
	}
	collectBody(b.Body, unit, groups, enabled, sites)
}

// varGroups returns, for each variable name declared in this block
// (params of the owning routine are declared in the enclosing Routine,
// so they are collected by the caller via the block's routine), the
// other names of its declaration group. Names sharing one VarDecl or
// one Param entry have identical declared types, making swaps
// type-safe by construction.
func varGroups(b *ast.Block) map[string][]string {
	groups := make(map[string][]string)
	add := func(names []string) {
		if len(names) < 2 {
			return
		}
		for _, n := range names {
			var others []string
			for _, m := range names {
				if m != n {
					others = append(others, m)
				}
			}
			groups[n] = others
		}
	}
	for _, d := range b.Vars {
		add(d.Names)
	}
	return groups
}

// paramGroups extends varGroups with the routine's parameter groups.
func paramGroups(r *ast.Routine, groups map[string][]string) {
	for _, p := range r.Params {
		if len(p.Names) < 2 {
			continue
		}
		for _, n := range p.Names {
			var others []string
			for _, m := range p.Names {
				if m != n {
					others = append(others, m)
				}
			}
			groups[n] = others
		}
	}
}

func collectBody(body ast.Stmt, unit string, groups map[string][]string, enabled map[Op]bool, sites *[]*site) {
	// Statement-level sites: dropped statements and negated conditions.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompoundStmt:
			collectDrops(n, n.Stmts, unit, enabled, sites)
		case *ast.RepeatStmt:
			collectDrops(n, n.Stmts, unit, enabled, sites)
			collectNegate(n, n.Cond, "until", unit, enabled, sites)
		case *ast.IfStmt:
			collectNegate(n, n.Cond, "if", unit, enabled, sites)
		case *ast.WhileStmt:
			collectNegate(n, n.Cond, "while", unit, enabled, sites)
		case *ast.BinaryExpr:
			collectOpFlip(n, unit, enabled, sites)
		case *ast.IntLit:
			collectOffByOne(n, unit, enabled, sites)
		case *ast.Ident:
			collectSwap(n, unit, groups, enabled, sites)
		}
		return true
	})
}

func collectDrops(parent ast.Node, stmts []ast.Stmt, unit string, enabled map[Op]bool, sites *[]*site) {
	if !enabled[DropStmt] {
		return
	}
	for i, s := range stmts {
		switch s.(type) {
		case *ast.AssignStmt, *ast.CallStmt:
		default:
			continue
		}
		i, s := i, s
		*sites = append(*sites, &site{
			op:   DropStmt,
			unit: unit,
			pos:  s.Pos(),
			desc: fmt.Sprintf("drop-stmt `%s` in %s", firstLine(printer.PrintStmt(s)), unit),
			node: s,
			apply: func(counterpart func(ast.Node) ast.Node) bool {
				switch p := counterpart(parent).(type) {
				case *ast.CompoundStmt:
					p.Stmts[i] = &ast.EmptyStmt{SemiPos: p.Stmts[i].Pos()}
					return true
				case *ast.RepeatStmt:
					p.Stmts[i] = &ast.EmptyStmt{SemiPos: p.Stmts[i].Pos()}
					return true
				}
				return false
			},
		})
	}
}

func collectNegate(stmt ast.Node, cond ast.Expr, kw, unit string, enabled map[Op]bool, sites *[]*site) {
	if !enabled[NegateCond] || cond == nil {
		return
	}
	*sites = append(*sites, &site{
		op:   NegateCond,
		unit: unit,
		pos:  cond.Pos(),
		desc: fmt.Sprintf("negate-cond %s `%s` in %s", kw, firstLine(printer.PrintExpr(cond)), unit),
		node: cond,
		apply: func(counterpart func(ast.Node) ast.Node) bool {
			negate := func(e *ast.Expr) {
				*e = &ast.UnaryExpr{OpPos: (*e).Pos(), Op: token.Not, X: *e}
			}
			switch s := counterpart(stmt).(type) {
			case *ast.IfStmt:
				negate(&s.Cond)
			case *ast.WhileStmt:
				negate(&s.Cond)
			case *ast.RepeatStmt:
				negate(&s.Cond)
			default:
				return false
			}
			return true
		},
	})
}

func collectOpFlip(e *ast.BinaryExpr, unit string, enabled map[Op]bool, sites *[]*site) {
	alts, op := relAlts[e.Op], RelFlip
	if len(alts) == 0 {
		alts, op = arithAlts[e.Op], ArithFlip
	}
	if len(alts) == 0 || !enabled[op] {
		return
	}
	for _, alt := range alts {
		alt := alt
		*sites = append(*sites, &site{
			op:    op,
			unit:  unit,
			pos:   e.Pos(),
			desc:  fmt.Sprintf("%s %s -> %s in %s", op, e.Op, alt, unit),
			node:  e,
			altOp: alt,
			apply: func(counterpart func(ast.Node) ast.Node) bool {
				b, ok := counterpart(e).(*ast.BinaryExpr)
				if !ok {
					return false
				}
				b.Op = alt
				return true
			},
		})
	}
}

func collectOffByOne(e *ast.IntLit, unit string, enabled map[Op]bool, sites *[]*site) {
	if !enabled[ConstOffByOne] {
		return
	}
	for _, delta := range []int64{1, -1} {
		delta := delta
		*sites = append(*sites, &site{
			op:   ConstOffByOne,
			unit: unit,
			pos:  e.Pos(),
			desc: fmt.Sprintf("const-off-by-one %d -> %d in %s", e.Value, e.Value+delta, unit),
			node: e,
			apply: func(counterpart func(ast.Node) ast.Node) bool {
				l, ok := counterpart(e).(*ast.IntLit)
				if !ok {
					return false
				}
				l.Value += delta
				return true
			},
		})
	}
}

func collectSwap(id *ast.Ident, unit string, groups map[string][]string, enabled map[Op]bool, sites *[]*site) {
	if !enabled[VarSwap] {
		return
	}
	others := groups[id.Name]
	if len(others) == 0 {
		return
	}
	// One alternative per occurrence keeps the site count linear: the
	// lexicographically smallest other member of the declaration group.
	alt := others[0]
	for _, o := range others[1:] {
		if o < alt {
			alt = o
		}
	}
	*sites = append(*sites, &site{
		op:      VarSwap,
		unit:    unit,
		pos:     id.Pos(),
		desc:    fmt.Sprintf("var-swap %s -> %s in %s", id.Name, alt, unit),
		node:    id,
		altName: alt,
		apply: func(counterpart func(ast.Node) ast.Node) bool {
			n, ok := counterpart(id).(*ast.Ident)
			if !ok {
				return false
			}
			n.Name = alt
			return true
		},
	})
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
