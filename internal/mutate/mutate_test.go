package mutate_test

import (
	"strings"
	"testing"

	"gadt/internal/mutate"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
)

const subject = `
program subj;
var a, b: integer;

function double(x: integer): integer;
begin
  double := x * 2;
end;

procedure tally(n: integer; var lo, hi: integer);
var i: integer;
begin
  lo := 0;
  hi := 0;
  for i := 1 to n do
    if i < 3 then
      lo := lo + 1
    else
      hi := hi + double(i);
end;

begin
  tally(5, a, b);
  writeln(a, b);
end.
`

func enumerate(t *testing.T, cfg mutate.Config) []*mutate.Mutant {
	t.Helper()
	ms, err := mutate.Enumerate("subj.pas", subject, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no mutants enumerated")
	}
	return ms
}

// TestEnumerateValidAndDistinct checks every mutant is a type-correct
// program that differs from the original.
func TestEnumerateValidAndDistinct(t *testing.T) {
	orig := printer.Print(parser.MustParse("subj.pas", subject))
	for _, m := range enumerate(t, mutate.Config{}) {
		prog, err := parser.ParseProgram("m.pas", m.Source)
		if err != nil {
			t.Fatalf("mutant %d (%s) does not parse: %v", m.ID, m.Description, err)
		}
		if _, err := sem.Analyze(prog); err != nil {
			t.Fatalf("mutant %d (%s) does not analyze: %v", m.ID, m.Description, err)
		}
		if m.Source == orig {
			t.Errorf("mutant %d (%s) is identical to the original", m.ID, m.Description)
		}
		if !m.Pos.IsValid() {
			t.Errorf("mutant %d (%s) has no source position", m.ID, m.Description)
		}
	}
}

// TestEnumerateDeterministic pins byte-for-byte reproducibility: same
// source and config, same mutants.
func TestEnumerateDeterministic(t *testing.T) {
	a := enumerate(t, mutate.Config{Seed: 7, Max: 10})
	b := enumerate(t, mutate.Config{Seed: 7, Max: 10})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Source != b[i].Source || a[i].Description != b[i].Description {
			t.Errorf("mutant %d differs between runs: %q vs %q", i, a[i].Description, b[i].Description)
		}
	}
	if c := enumerate(t, mutate.Config{Seed: 8, Max: 10}); sameIDs(a, c) {
		t.Log("note: different seeds picked the same sample (possible, not an error)")
	}
}

func sameIDs(a, b []*mutate.Mutant) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// TestSampleIsSubset: Max sampling picks from the full enumeration and
// keeps the stable IDs.
func TestSampleIsSubset(t *testing.T) {
	full := enumerate(t, mutate.Config{})
	byID := make(map[int]*mutate.Mutant, len(full))
	for _, m := range full {
		byID[m.ID] = m
	}
	sample := enumerate(t, mutate.Config{Seed: 3, Max: 8})
	if len(sample) != 8 {
		t.Fatalf("sample size = %d, want 8", len(sample))
	}
	for i, m := range sample {
		want, ok := byID[m.ID]
		if !ok {
			t.Fatalf("sampled mutant ID %d not in full enumeration", m.ID)
		}
		if m.Source != want.Source {
			t.Errorf("sampled mutant %d differs from enumeration", m.ID)
		}
		if i > 0 && sample[i-1].ID >= m.ID {
			t.Errorf("sample not sorted by ID: %d then %d", sample[i-1].ID, m.ID)
		}
	}
}

// TestOperatorCoverageAndAttribution checks each operator fires on the
// subject and faults are attributed to the right unit.
func TestOperatorCoverageAndAttribution(t *testing.T) {
	ms := enumerate(t, mutate.Config{})
	seen := make(map[mutate.Op]int)
	units := make(map[string]bool)
	for _, m := range ms {
		seen[m.Op]++
		units[m.Unit] = true
	}
	for _, op := range mutate.AllOps() {
		if seen[op] == 0 {
			t.Errorf("operator %s produced no mutants", op)
		}
	}
	for _, u := range []string{"double", "tally", "subj"} {
		if !units[u] {
			t.Errorf("no mutant attributed to unit %s", u)
		}
	}
	for _, m := range ms {
		if m.Unit != "double" && m.Unit != "tally" && m.Unit != "subj" {
			t.Errorf("mutant %d attributed to unknown unit %q", m.ID, m.Unit)
		}
	}
}

// TestOpsFilter restricts enumeration to one operator.
func TestOpsFilter(t *testing.T) {
	ms := enumerate(t, mutate.Config{Ops: []mutate.Op{mutate.NegateCond}})
	for _, m := range ms {
		if m.Op != mutate.NegateCond {
			t.Fatalf("mutant %d has op %s, want only %s", m.ID, m.Op, mutate.NegateCond)
		}
	}
	// The subject has exactly one if; for-loops have no negatable
	// condition, so expect exactly one negate-cond mutant.
	if len(ms) != 1 {
		t.Errorf("negate-cond mutants = %d, want 1", len(ms))
	}
	if !strings.Contains(ms[0].Description, "if") || ms[0].Unit != "tally" {
		t.Errorf("unexpected negate-cond mutant: %q in %q", ms[0].Description, ms[0].Unit)
	}
}

// TestVarSwapTypeSafe: swaps only happen inside one declaration group
// (same declared type), here lo/hi.
func TestVarSwapTypeSafe(t *testing.T) {
	ms := enumerate(t, mutate.Config{Ops: []mutate.Op{mutate.VarSwap}})
	for _, m := range ms {
		if !strings.Contains(m.Description, "lo -> hi") &&
			!strings.Contains(m.Description, "hi -> lo") &&
			!strings.Contains(m.Description, "a -> b") &&
			!strings.Contains(m.Description, "b -> a") {
			t.Errorf("unexpected var-swap: %s", m.Description)
		}
	}
	if len(ms) < 4 {
		t.Errorf("var-swap mutants = %d, want >= 4 (lo/hi occurrences)", len(ms))
	}
}

// TestParseOp round-trips operator names.
func TestParseOp(t *testing.T) {
	for _, op := range mutate.AllOps() {
		got, ok := mutate.ParseOp(string(op))
		if !ok || got != op {
			t.Errorf("ParseOp(%q) = %q, %v", op, got, ok)
		}
	}
	if _, ok := mutate.ParseOp("nope"); ok {
		t.Error("ParseOp accepted an unknown operator")
	}
}
