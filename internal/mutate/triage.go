// Static equivalent-mutant triage: classify mutants that provably
// cannot change observable behaviour on any input, using the abstract
// interpretation (package absint) of the ORIGINAL program only. Two
// rule families:
//
//   - unreachable site: the CFG node evaluating the mutated construct
//     can never execute, so the edit is invisible;
//   - same value: the original and mutated construct compute the
//     identical single value at every visit of the site — operator
//     flips with a definite outcome, var-swaps between variables
//     holding the same constant, and drops of stores that rewrite the
//     value already held.
//
// Every rule errs toward "not equivalent": a mutant is marked only
// when the abstract facts guarantee identical behaviour, including
// identical runtime faults (see the division guards below).
package mutate

import (
	"fmt"
	"math"

	"gadt/internal/analysis/absint"
	"gadt/internal/analysis/cfg"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
)

// TriageEquivalent runs the value analysis over the enumeration's
// original program and marks every mutant it can prove
// behaviour-preserving. Returns the number of mutants marked.
func TriageEquivalent(en *Enumeration) int {
	tr := &triager{
		info:   en.Info,
		res:    absint.Analyze(en.Info),
		writes: writePositions(en.Info),
	}
	marked := 0
	for _, m := range en.Mutants {
		if m.orig == nil || m.orig.node == nil {
			continue
		}
		if reason, ok := tr.equivalent(m.orig); ok {
			m.Equivalent, m.EquivReason = true, reason
			marked++
		}
	}
	return marked
}

type triager struct {
	info   *sem.Info
	res    *absint.Result
	writes map[*ast.Ident]bool
}

func (t *triager) equivalent(st *site) (string, bool) {
	n := t.res.CoveringNode(st.node)
	if n == nil {
		return "", false
	}
	if !t.res.Reachable(n) {
		// The edit sits in code no input reaches; control flow into the
		// site is decided by surrounding code the mutation left intact.
		return "site unreachable on all inputs", true
	}
	switch st.op {
	case RelFlip:
		return t.sameRel(n, st)
	case ArithFlip:
		return t.sameArith(n, st)
	case VarSwap:
		return t.sameVar(n, st)
	case DropStmt:
		return t.deadStore(n, st)
	}
	return "", false
}

// sameRel proves a relational flip equivalent when the comparison has
// the same definite outcome under both operators at every visit, e.g.
// `<` vs `<=` over operand intervals separated by a gap.
func (t *triager) sameRel(n *cfg.Node, st *site) (string, bool) {
	e := st.node.(*ast.BinaryExpr)
	vx, vy := t.res.EvalAt(n, e.X), t.res.EvalAt(n, e.Y)
	if !vx.IsInt() || !vy.IsInt() {
		return "", false
	}
	a, aok := relOutcome(e.Op, vx, vy)
	b, bok := relOutcome(st.altOp, vx, vy)
	if aok && bok && a == b {
		return fmt.Sprintf("comparison is %v under both operators", a), true
	}
	return "", false
}

func relOutcome(op token.Kind, x, y absint.Val) (bool, bool) {
	var v absint.Val
	switch op {
	case token.Eq:
		v = x.EqV(y)
	case token.NotEq:
		v = x.NeV(y)
	case token.Less:
		v = x.Lt(y)
	case token.LessEq:
		v = x.Le(y)
	case token.Greater:
		v = x.Gt(y)
	case token.GreatEq:
		v = x.Ge(y)
	default:
		return false, false
	}
	return v.ConstBool()
}

// sameArith proves an arithmetic flip equivalent when both operators
// yield the same exact constant on the operand intervals (2*2 vs 2+2).
// A div or mod on either side additionally needs the divisor provably
// nonzero, or the faulting behaviours could differ.
func (t *triager) sameArith(n *cfg.Node, st *site) (string, bool) {
	e := st.node.(*ast.BinaryExpr)
	vx, vy := t.res.EvalAt(n, e.X), t.res.EvalAt(n, e.Y)
	if !vx.IsInt() || !vy.IsInt() {
		return "", false
	}
	for _, op := range []token.Kind{e.Op, st.altOp} {
		if (op == token.Div || op == token.Mod) && !excludesZero(vy) {
			return "", false
		}
	}
	a, aok := arithOutcome(e.Op, vx, vy)
	b, bok := arithOutcome(st.altOp, vx, vy)
	if aok && bok && a == b {
		return fmt.Sprintf("both operators yield %d", a), true
	}
	return "", false
}

func arithOutcome(op token.Kind, x, y absint.Val) (int64, bool) {
	var v absint.Val
	switch op {
	case token.Plus:
		v = x.Add(y)
	case token.Minus:
		v = x.Sub(y)
	case token.Star:
		v = x.Mul(y)
	case token.Div:
		v = x.Div(y)
	case token.Mod:
		v = x.Mod(y)
	default:
		return 0, false
	}
	return exactConst(v)
}

// sameVar proves a var-swap equivalent when the identifier is a pure
// read and both variables provably hold the same constant at every
// visit of the site.
func (t *triager) sameVar(n *cfg.Node, st *site) (string, bool) {
	id := st.node.(*ast.Ident)
	if t.writes[id] {
		return "", false // write target: the swap redirects a store
	}
	v := t.info.VarOf(id)
	if v == nil || v.Owner == nil {
		return "", false
	}
	var w *sem.VarSym
	for _, cand := range v.Owner.AllVars() {
		if cand != v && cand.Name == st.altName {
			w = cand
			break
		}
	}
	if w == nil {
		return "", false
	}
	a, aok := exactConst(t.res.VarAt(n, v))
	b, bok := exactConst(t.res.VarAt(n, w))
	if aok && bok && a == b {
		return fmt.Sprintf("both variables hold %d at the site", a), true
	}
	return "", false
}

// deadStore proves a drop-stmt equivalent when the dropped statement
// is an assignment that rewrites the value the variable already holds,
// with a side-effect-free and fault-free right-hand side.
func (t *triager) deadStore(n *cfg.Node, st *site) (string, bool) {
	s, ok := st.node.(*ast.AssignStmt)
	if !ok {
		return "", false // dropping a call always loses its effects
	}
	id, ok := s.Lhs.(*ast.Ident)
	if !ok {
		return "", false // array/field stores are untracked
	}
	v := t.info.VarOf(id)
	if v == nil || !t.pureArith(s.Rhs) {
		return "", false
	}
	cur, cok := exactConst(t.res.VarAt(n, v))
	rhs, rok := exactConst(t.res.EvalAt(n, s.Rhs))
	if cok && rok && cur == rhs {
		return fmt.Sprintf("store rewrites the %d already held", cur), true
	}
	return "", false
}

// pureArith accepts expressions whose evaluation can neither fault nor
// have side effects: variable reads, integer literals, and +/-/* over
// them. Calls, division (may trap) and indexing (may be out of
// bounds) disqualify.
func (t *triager) pureArith(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		// A bare identifier may be a parameterless function call.
		return t.info.Calls[e] == nil && t.info.VarOf(e) != nil
	case *ast.IntLit:
		return true
	case *ast.UnaryExpr:
		return (e.Op == token.Plus || e.Op == token.Minus) && t.pureArith(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.Plus, token.Minus, token.Star:
			return t.pureArith(e.X) && t.pureArith(e.Y)
		}
	}
	return false
}

// exactConst returns the single finite integer v denotes. Saturated
// bounds are rejected: they summarize values the domain could not
// represent exactly, so they must not witness an equality proof.
func exactConst(v absint.Val) (int64, bool) {
	c, ok := v.ConstInt()
	if !ok || c == math.MinInt64 || c == math.MaxInt64 {
		return 0, false
	}
	return c, true
}

func excludesZero(v absint.Val) bool {
	lo, hi, ok := v.Bounds()
	return ok && (lo > 0 || hi < 0)
}

// writePositions collects every identifier occurrence that is a write
// target: assignment left-hand sides (the base variable of an indexed
// store), for-loop variables, read/readln arguments, and actuals bound
// to var-parameters. Swapping such an occurrence redirects a store, so
// value-based triage never applies to it.
func writePositions(info *sem.Info) map[*ast.Ident]bool {
	writes := make(map[*ast.Ident]bool)
	base := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				writes[x] = true
				return
			case *ast.IndexExpr:
				e = x.X
			case *ast.FieldExpr:
				e = x.X
			default:
				return
			}
		}
	}
	markCall := func(node ast.Node, args []ast.Expr) {
		if b := info.Builtin[node]; b != nil && (b.Code == sem.BuiltinRead || b.Code == sem.BuiltinReadln) {
			for _, a := range args {
				base(a)
			}
			return
		}
		r := info.Calls[node]
		if r == nil {
			return
		}
		for i, a := range args {
			if i < len(r.Params) && r.Params[i].IsByRef() {
				base(a)
			}
		}
	}
	ast.Inspect(info.Program, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			base(n.Lhs)
		case *ast.ForStmt:
			writes[n.Var] = true
		case *ast.CallStmt:
			markCall(n, n.Args)
		case *ast.CallExpr:
			markCall(n, n.Args)
		}
		return true
	})
	return writes
}
