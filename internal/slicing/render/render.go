// Package render turns a statement subset back into a printable program:
// given predicates for the atomic statements (and optionally the
// conditions) to retain, it clones the original AST, drops everything
// else, and removes routines that end up empty. Both the static slicer
// (Weiser's "slice is an independent program") and the dynamic slicer's
// statement-level slices use it.
package render

import (
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
)

// Filter selects the parts of a program to keep.
type Filter struct {
	Info *sem.Info

	// KeepStmt decides atomic statements (assignments, calls, gotos).
	KeepStmt func(ast.Stmt) bool

	// KeepCond decides whether a structured statement's condition is
	// itself relevant (nil: only keep structure around kept children).
	KeepCond func(ast.Stmt) bool

	// KeepRoutine decides which routines survive; nil keeps routines
	// containing at least one kept statement or condition.
	KeepRoutine func(*sem.Routine) bool
}

func (f *Filter) cond(s ast.Stmt) bool {
	return f.KeepCond != nil && f.KeepCond(s)
}

// keep reports whether statement s (possibly structured) is retained.
func (f *Filter) keep(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.CompoundStmt:
		for _, c := range s.Stmts {
			if f.keep(c) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		return f.cond(s) || f.keep(s.Then) || f.keep(s.Else)
	case *ast.WhileStmt:
		return f.cond(s) || f.keep(s.Body)
	case *ast.RepeatStmt:
		if f.cond(s) || f.KeepStmt(s) {
			return true
		}
		for _, c := range s.Stmts {
			if f.keep(c) {
				return true
			}
		}
		return false
	case *ast.ForStmt:
		return f.cond(s) || f.KeepStmt(s) || f.keep(s.Body)
	case *ast.CaseStmt:
		if f.cond(s) {
			return true
		}
		for _, arm := range s.Arms {
			if f.keep(arm.Body) {
				return true
			}
		}
		return f.keep(s.Else)
	case *ast.LabeledStmt:
		return f.KeepStmt(s) || f.keep(s.Stmt)
	case *ast.EmptyStmt:
		return false
	default:
		return f.KeepStmt(s)
	}
}

// routineHasKept reports whether any statement of r survives.
func (f *Filter) routineHasKept(r *sem.Routine) bool {
	if f.KeepRoutine != nil {
		return f.KeepRoutine(r)
	}
	return f.keep(r.Block.Body)
}

// Program builds the filtered program as a fresh AST; the original is
// not modified.
func (f *Filter) Program() *ast.Program {
	clone, cm := ast.Clone(f.Info.Program)
	orig := func(n ast.Node) ast.Node { return cm[n] }
	var filterBlock func(b *ast.Block, r *sem.Routine)
	filterBlock = func(b *ast.Block, r *sem.Routine) {
		var kept []*ast.Routine
		for _, rd := range b.Routines {
			ro, _ := orig(rd).(*ast.Routine)
			rsym := f.Info.RoutineOf[ro]
			if rsym != nil && f.routineHasKept(rsym) {
				filterBlock(rd.Block, rsym)
				kept = append(kept, rd)
			}
		}
		b.Routines = kept
		b.Body = f.filterStmt(b.Body, orig).(*ast.CompoundStmt)
	}
	filterBlock(clone.Block, f.Info.Main)
	return clone
}

// Render prints the filtered program.
func (f *Filter) Render() string {
	return printer.Print(f.Program())
}

// filterStmt rebuilds statement s (a clone) keeping only retained parts.
func (f *Filter) filterStmt(s ast.Stmt, orig func(ast.Node) ast.Node) ast.Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.CompoundStmt:
		var kept []ast.Stmt
		for _, c := range s.Stmts {
			oc, _ := orig(c).(ast.Stmt)
			if oc == nil || !f.keep(oc) {
				continue
			}
			kept = append(kept, f.filterStmt(c, orig))
		}
		s.Stmts = kept
		return s
	case *ast.IfStmt:
		s.Then = f.filterBranch(s.Then, orig)
		if s.Else != nil {
			oe, _ := orig(s.Else).(ast.Stmt)
			if oe != nil && f.keep(oe) {
				s.Else = f.filterStmt(s.Else, orig)
			} else {
				s.Else = nil
			}
		}
		return s
	case *ast.WhileStmt:
		s.Body = f.filterBranch(s.Body, orig)
		return s
	case *ast.RepeatStmt:
		var kept []ast.Stmt
		for _, c := range s.Stmts {
			oc, _ := orig(c).(ast.Stmt)
			if oc != nil && f.keep(oc) {
				kept = append(kept, f.filterStmt(c, orig))
			}
		}
		s.Stmts = kept
		return s
	case *ast.ForStmt:
		s.Body = f.filterBranch(s.Body, orig)
		return s
	case *ast.CaseStmt:
		for _, arm := range s.Arms {
			arm.Body = f.filterBranch(arm.Body, orig)
		}
		if s.Else != nil {
			s.Else = f.filterBranch(s.Else, orig)
		}
		return s
	case *ast.LabeledStmt:
		s.Stmt = f.filterBranch(s.Stmt, orig)
		return s
	default:
		return s
	}
}

func (f *Filter) filterBranch(s ast.Stmt, orig func(ast.Node) ast.Node) ast.Stmt {
	os, _ := orig(s).(ast.Stmt)
	if os == nil || !f.keep(os) {
		return &ast.EmptyStmt{SemiPos: s.Pos()}
	}
	return f.filterStmt(s, orig)
}
