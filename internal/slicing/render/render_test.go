package render_test

import (
	"strings"
	"testing"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/render"
)

func setup(t *testing.T, src string) *sem.Info {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// stmtsMatching collects atomic statements whose printed form contains
// one of the given fragments.
func keepByFragment(info *sem.Info, fragments ...string) func(ast.Stmt) bool {
	matches := func(s ast.Stmt) bool {
		var txt string
		switch st := s.(type) {
		case *ast.AssignStmt:
			if id, ok := st.Lhs.(*ast.Ident); ok {
				txt = id.Name
			}
		case *ast.CallStmt:
			txt = st.Name
		}
		for _, f := range fragments {
			if txt == f {
				return true
			}
		}
		return false
	}
	return matches
}

func TestSubsetKeepsStructure(t *testing.T) {
	info := setup(t, `
program t;
var a, b, c: integer;
begin
  a := 1;
  if a > 0 then begin
    b := 2;
    c := 3;
  end;
end.`)
	f := &render.Filter{Info: info, KeepStmt: keepByFragment(info, "b")}
	out := f.Render()
	if !strings.Contains(out, "b := 2") {
		t.Errorf("kept statement missing:\n%s", out)
	}
	if strings.Contains(out, "c := 3") || strings.Contains(out, "a := 1") {
		t.Errorf("dropped statements survived:\n%s", out)
	}
	// The if keeps its shell because a kept statement lives inside.
	if !strings.Contains(out, "if a > 0") {
		t.Errorf("structure around kept statement lost:\n%s", out)
	}
}

func TestSubsetDropsEmptyRoutines(t *testing.T) {
	info := setup(t, `
program t;
var x: integer;
procedure used;
begin
  x := 1;
end;
procedure unused;
begin
  x := 2;
end;
begin
  used;
  unused;
end.`)
	var keepAssign ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if lit, ok := as.Rhs.(*ast.IntLit); ok && lit.Value == 1 {
				keepAssign = as
			}
		}
		return true
	})
	f := &render.Filter{Info: info, KeepStmt: func(s ast.Stmt) bool {
		if s == keepAssign {
			return true
		}
		cs, ok := s.(*ast.CallStmt)
		return ok && cs.Name == "used"
	}}
	out := f.Render()
	if !strings.Contains(out, "procedure used") {
		t.Errorf("used routine missing:\n%s", out)
	}
	if strings.Contains(out, "procedure unused") {
		t.Errorf("empty routine survived:\n%s", out)
	}
}

func TestSubsetOutputReparses(t *testing.T) {
	info := setup(t, `
program t;
var i, s, u: integer;
begin
  s := 0;
  for i := 1 to 3 do begin
    s := s + i;
    u := u + 1;
  end;
  repeat
    s := s - 1;
  until s <= 0;
  case s of
    0: s := 100;
  else u := 5;
  end;
end.`)
	f := &render.Filter{Info: info, KeepStmt: keepByFragment(info, "s")}
	out := f.Render()
	if _, err := parser.ParseProgram("sub.pas", out); err != nil {
		t.Fatalf("filtered program does not reparse: %v\n%s", err, out)
	}
	if strings.Contains(out, "u :=") {
		t.Errorf("u statements survived:\n%s", out)
	}
}

func TestKeepCondRetainsBranchShell(t *testing.T) {
	info := setup(t, `
program t;
var a, b: integer;
begin
  if a > 0 then
    b := 1;
end.`)
	var ifStmt ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if s, ok := n.(*ast.IfStmt); ok {
			ifStmt = s
		}
		return true
	})
	f := &render.Filter{
		Info:     info,
		KeepStmt: func(ast.Stmt) bool { return false },
		KeepCond: func(s ast.Stmt) bool { return s == ifStmt },
	}
	out := f.Render()
	if !strings.Contains(out, "if a > 0") {
		t.Errorf("condition-only keep lost the if:\n%s", out)
	}
	if strings.Contains(out, "b := 1") {
		t.Errorf("body survived without being kept:\n%s", out)
	}
}
