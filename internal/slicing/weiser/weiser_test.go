package weiser_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"gadt/internal/analysis/pdg"
	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/static"
	"gadt/internal/slicing/weiser"
)

func setup(t *testing.T, src string) (*sem.Info, *weiser.Slicer) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info, &weiser.Slicer{Info: info}
}

// TestFigure2Weiser: the baseline reproduces Figure 2 as well.
func TestFigure2Weiser(t *testing.T) {
	info, w := setup(t, paper.SliceExample)
	mul := static.LookupVar(info, info.Main, "mul")
	sl, err := w.OnVarAtEnd(info.Main, mul)
	if err != nil {
		t.Fatal(err)
	}
	out := sl.Render()
	for _, want := range []string{"read(x, y)", "mul := 0", "mul := x * y", "if x <= 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("baseline slice missing %q:\n%s", want, out)
		}
	}
	for _, drop := range []string{"sum := 0", "sum := x + y", "read(z)"} {
		if strings.Contains(out, drop) {
			t.Errorf("baseline slice wrongly kept %q:\n%s", drop, out)
		}
	}
}

// TestDifferentialAgainstSDG: on intraprocedural criteria the Weiser
// baseline and the unpruned SDG slicer compute the same statement sets.
// Programs are generated from a small deterministic grammar driven by
// the quick fuzz inputs. The default (pruned) SDG is compared
// separately in TestPrunedSliceSubset, since value-based pruning makes
// its slices deliberately smaller.
func TestDifferentialAgainstSDG(t *testing.T) {
	prop := func(opsRaw []uint8, targetRaw uint8) bool {
		src, varNames := genProgram(opsRaw)
		prog, err := parser.ParseProgram("q.pas", src)
		if err != nil {
			t.Logf("generated program does not parse: %v\n%s", err, src)
			return false
		}
		info, err := sem.Analyze(prog)
		if err != nil {
			t.Logf("generated program does not analyze: %v\n%s", err, src)
			return false
		}
		target := varNames[int(targetRaw)%len(varNames)]
		v := static.LookupVar(info, info.Main, target)

		ws := &weiser.Slicer{Info: info}
		wsl, err := ws.OnVarAtEnd(info.Main, v)
		if err != nil {
			return false
		}
		ssl := (&static.Slicer{Info: info, SDG: pdg.BuildUnpruned(info)}).OnVarAtEnd(info.Main, v)

		// Compare atomic statement sets.
		var onlyW, onlyS []string
		ast.Inspect(info.Program, func(n ast.Node) bool {
			s, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			switch s.(type) {
			case *ast.AssignStmt, *ast.CallStmt:
				inW := wsl.Stmts[s]
				inS := ssl.IncludesStmt(s)
				if inW != inS {
					desc := fmt.Sprintf("%T@%s (weiser=%v sdg=%v)", s, s.Pos(), inW, inS)
					if inW {
						onlyW = append(onlyW, desc)
					} else {
						onlyS = append(onlyS, desc)
					}
				}
			}
			return true
		})
		if len(onlyW)+len(onlyS) > 0 {
			t.Logf("slices differ on %s:\nonly weiser: %v\nonly sdg: %v\nprogram:\n%s",
				target, onlyW, onlyS, src)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPrunedSliceSubset: the default SDG prunes control flow the value
// analysis proves infeasible, so over the same generated programs its
// slices must be subsets of the unpruned ones — and strictly smaller on
// at least one program, since the generator seeds every variable with a
// constant that decides some branches.
func TestPrunedSliceSubset(t *testing.T) {
	shrank := false
	prop := func(opsRaw []uint8, targetRaw uint8) bool {
		src, varNames := genProgram(opsRaw)
		prog, err := parser.ParseProgram("q.pas", src)
		if err != nil {
			return false
		}
		info, err := sem.Analyze(prog)
		if err != nil {
			return false
		}
		target := varNames[int(targetRaw)%len(varNames)]
		v := static.LookupVar(info, info.Main, target)

		full := (&static.Slicer{Info: info, SDG: pdg.BuildUnpruned(info)}).OnVarAtEnd(info.Main, v)
		pruned := static.New(info).OnVarAtEnd(info.Main, v)

		ok := true
		dropped := 0
		ast.Inspect(info.Program, func(n ast.Node) bool {
			s, isStmt := n.(ast.Stmt)
			if !isStmt {
				return true
			}
			switch s.(type) {
			case *ast.AssignStmt, *ast.CallStmt:
				inFull, inPruned := full.IncludesStmt(s), pruned.IncludesStmt(s)
				if inPruned && !inFull {
					t.Logf("pruned slice gained %T@%s on %s:\n%s", s, s.Pos(), target, src)
					ok = false
				}
				if inFull && !inPruned {
					dropped++
				}
			}
			return true
		})
		if dropped > 0 {
			shrank = true
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
	if !shrank {
		t.Error("pruning never shrank a slice over 120 generated programs")
	}
}

// genProgram builds a deterministic straight-line/branch/loop program
// over variables v0..v4 from fuzz bytes.
func genProgram(ops []uint8) (string, []string) {
	vars := []string{"v0", "v1", "v2", "v3", "v4"}
	var b strings.Builder
	b.WriteString("program q;\nvar v0, v1, v2, v3, v4: integer;\nbegin\n")
	vn := func(i uint8) string { return vars[int(i)%len(vars)] }
	emitAssign := func(d, s1, s2 uint8) {
		fmt.Fprintf(&b, "  %s := %s + %s;\n", vn(d), vn(s1), vn(s2))
	}
	i := 0
	next := func() uint8 {
		if i < len(ops) {
			i++
			return ops[i-1]
		}
		return 0
	}
	// Seed all variables.
	for j := range vars {
		fmt.Fprintf(&b, "  %s := %d;\n", vars[j], j+1)
	}
	steps := len(ops)/3 + 1
	if steps > 12 {
		steps = 12
	}
	for s := 0; s < steps; s++ {
		op := next()
		switch op % 4 {
		case 0, 1:
			emitAssign(next(), next(), next())
		case 2:
			fmt.Fprintf(&b, "  if %s > %s then\n  ", vn(next()), vn(next()))
			emitAssign(next(), next(), next())
		case 3:
			cv := vn(next())
			fmt.Fprintf(&b, "  while %s > 0 do begin\n", cv)
			emitAssign(next(), next(), next())
			fmt.Fprintf(&b, "  %s := %s - 1;\n  end;\n", cv, cv)
		}
	}
	b.WriteString("end.\n")
	return b.String(), vars
}

func TestBranchInclusion(t *testing.T) {
	info, w := setup(t, `
program t;
var c, x, y: integer;
begin
  read(c);
  x := 0;
  if c > 0 then
    x := 1;
  y := 5;
end.`)
	x := static.LookupVar(info, info.Main, "x")
	sl, err := w.OnVarAtEnd(info.Main, x)
	if err != nil {
		t.Fatal(err)
	}
	out := sl.Render()
	for _, want := range []string{"read(c)", "if c > 0", "x := 1", "x := 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "y := 5") {
		t.Errorf("kept irrelevant y:\n%s", out)
	}
}

func TestLoopRelevance(t *testing.T) {
	info, w := setup(t, `
program t;
var i, s, u: integer;
begin
  s := 0;
  u := 0;
  for i := 1 to 5 do begin
    s := s + i;
    u := u + 2;
  end;
end.`)
	s := static.LookupVar(info, info.Main, "s")
	sl, err := w.OnVarAtEnd(info.Main, s)
	if err != nil {
		t.Fatal(err)
	}
	out := sl.Render()
	if !strings.Contains(out, "s := s + i") || !strings.Contains(out, "for i := 1 to 5") {
		t.Errorf("loop chain missing:\n%s", out)
	}
	if strings.Contains(out, "u := u + 2") || strings.Contains(out, "u := 0") {
		t.Errorf("kept u:\n%s", out)
	}
}

func TestStmtCriterion(t *testing.T) {
	info, w := setup(t, `
program t;
var a, b: integer;
begin
  a := 1;
  b := a + 1;
  a := 99;
end.`)
	// Slice on a BEFORE the b assignment: only a := 1 matters.
	var bAssign ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs.(*ast.Ident); ok && id.Name == "b" {
				bAssign = as
			}
		}
		return true
	})
	a := static.LookupVar(info, info.Main, "a")
	sl, err := w.OnVarAtStmt(info.Main, bAssign, a)
	if err != nil {
		t.Fatal(err)
	}
	out := sl.Render()
	if !strings.Contains(out, "a := 1") {
		t.Errorf("missing a := 1:\n%s", out)
	}
	if strings.Contains(out, "a := 99") {
		t.Errorf("kept later assignment:\n%s", out)
	}
}
