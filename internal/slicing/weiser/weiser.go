// Package weiser implements Weiser's original intraprocedural slicing
// algorithm ([Weiser-84], the foundation the paper's Section 4 builds
// on) as an independent baseline: iterative relevant-variable
// propagation over the CFG plus branch inclusion through control
// influence, without any dependence graph.
//
// It serves two purposes: a baseline for the slicing experiments, and a
// differential check of the SDG-based slicer — on intraprocedural
// criteria both must compute the same statement sets.
package weiser

import (
	"fmt"

	"gadt/internal/analysis/cfg"
	"gadt/internal/analysis/dataflow"
	"gadt/internal/analysis/defuse"
	"gadt/internal/analysis/pdg"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/render"
)

// Slice is an intraprocedural Weiser slice of one routine.
type Slice struct {
	Info    *sem.Info
	Routine *sem.Routine

	// Stmts are the retained atomic statements; Conds the structured
	// statements whose predicate is in the slice.
	Stmts map[ast.Stmt]bool
	Conds map[ast.Stmt]bool
}

// StmtCount returns the slice size in statements plus predicates.
func (s *Slice) StmtCount() int { return len(s.Stmts) + len(s.Conds) }

// Render prints the sliced routine's program (other routines are kept
// untouched only if they host retained statements — for intraprocedural
// slices that means they are dropped).
func (s *Slice) Render() string {
	f := &render.Filter{
		Info:     s.Info,
		KeepStmt: func(st ast.Stmt) bool { return s.Stmts[st] },
		KeepCond: func(st ast.Stmt) bool { return s.Conds[st] },
	}
	return f.Render()
}

// varSet is a small set of variables.
type varSet map[*sem.VarSym]bool

func (v varSet) clone() varSet {
	out := make(varSet, len(v))
	for k := range v {
		out[k] = true
	}
	return out
}

// Slicer computes Weiser slices for one analyzed program. Call effects
// are treated through the side-effect resolver like the rest of the
// system, but the propagation itself never leaves the routine — this is
// deliberately the intraprocedural baseline.
type Slicer struct {
	Info *sem.Info
	Res  defuse.Resolver // may be nil (syntactic call handling)
}

// OnVarAtEnd slices routine r on the value of v at routine exit.
func (w *Slicer) OnVarAtEnd(r *sem.Routine, v *sem.VarSym) (*Slice, error) {
	g := cfg.Build(w.Info, r)
	return w.slice(r, g, g.Exit, varSet{v: true})
}

// OnVarAtStmt slices on the value of v immediately before stmt.
func (w *Slicer) OnVarAtStmt(r *sem.Routine, stmt ast.Stmt, v *sem.VarSym) (*Slice, error) {
	g := cfg.Build(w.Info, r)
	n := g.NodeOf[stmt]
	if n == nil {
		if cs := g.CondOf[stmt]; len(cs) > 0 {
			n = cs[0]
		}
	}
	if n == nil {
		return nil, fmt.Errorf("weiser: no CFG node for statement at %s", stmt.Pos())
	}
	return w.slice(r, g, n, varSet{v: true})
}

// slice runs the fixpoint: directly relevant variables, relevant
// statements, then branch inclusion with new criteria until stable.
func (w *Slicer) slice(r *sem.Routine, g *cfg.Graph, critNode *cfg.Node, critVars varSet) (*Slice, error) {
	// Per-node def/use.
	defs := make(map[*cfg.Node][]*sem.VarSym)
	uses := make(map[*cfg.Node][]*sem.VarSym)
	for _, n := range g.Nodes {
		d, u := defuse.Node(w.Info, n, w.Res)
		defs[n], uses[n] = d.Slice(), u.Slice()
	}
	infl := pdg.ControlDeps(g)

	// criteria: per node, variables relevant on entry to that node.
	seeds := map[*cfg.Node]varSet{critNode: critVars.clone()}
	inSlice := make(map[*cfg.Node]bool)
	branches := make(map[*cfg.Node]bool)

	for {
		relevant := w.propagate(g, defs, uses, seeds)

		// Statements defining a relevant variable join the slice.
		changedStmts := false
		for _, n := range g.Nodes {
			if inSlice[n] || n == g.Entry || n == g.Exit {
				continue
			}
			after := relevantAfter(n, relevant)
			for _, d := range defs[n] {
				if after[d] {
					inSlice[n] = true
					changedStmts = true
					break
				}
			}
		}

		// Branches whose influenced region intersects the slice join it,
		// contributing their referenced variables as new criteria.
		changedBranches := false
		for n, ctrls := range infl {
			if !inSlice[n] && !branches[n] {
				continue
			}
			for _, b := range ctrls {
				if b == g.Entry || branches[b] {
					continue
				}
				branches[b] = true
				changedBranches = true
				if seeds[b] == nil {
					seeds[b] = varSet{}
				}
				for _, u := range uses[b] {
					seeds[b][u] = true
				}
			}
		}
		if !changedBranches && !changedStmts {
			break
		}
		if !changedBranches {
			// No new criteria; the statement set is final.
			break
		}
	}

	out := &Slice{
		Info:    w.Info,
		Routine: r,
		Stmts:   make(map[ast.Stmt]bool),
		Conds:   make(map[ast.Stmt]bool),
	}
	for n := range inSlice {
		if n.Kind == cfg.Stmt {
			out.Stmts[n.Stmt] = true
		} else {
			out.Conds[n.Stmt] = true
		}
	}
	for b := range branches {
		out.Conds[b.Stmt] = true
	}
	return out, nil
}

// relevantAfter unions the entry-relevance of n's successors.
func relevantAfter(n *cfg.Node, relevant map[*cfg.Node]varSet) varSet {
	out := varSet{}
	for _, s := range n.Succs {
		for v := range relevant[s] {
			out[v] = true
		}
	}
	return out
}

// propagate runs the backward relevant-variable fixpoint: for each node
// m with successor-relevance S,
//
//	R(m) = (S \ KILL(m)) ∪ (REF(m) if DEF(m) ∩ S ≠ ∅) ∪ seed(m)
//
// where KILL is the must-defined subset of DEF.
func (w *Slicer) propagate(g *cfg.Graph, defs, uses map[*cfg.Node][]*sem.VarSym, seeds map[*cfg.Node]varSet) map[*cfg.Node]varSet {
	relevant := make(map[*cfg.Node]varSet, len(g.Nodes))
	for _, n := range g.Nodes {
		relevant[n] = varSet{}
		for v := range seeds[n] {
			relevant[n][v] = true
		}
	}
	work := append([]*cfg.Node(nil), g.Nodes...)
	inWork := make(map[*cfg.Node]bool, len(work))
	for _, n := range work {
		inWork[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n] = false

		after := relevantAfter(n, relevant)
		r := relevant[n]
		changed := false
		add := func(v *sem.VarSym) {
			if !r[v] {
				r[v] = true
				changed = true
			}
		}
		definesRelevant := false
		killed := varSet{}
		for _, d := range defs[n] {
			if after[d] {
				definesRelevant = true
			}
			if dataflow.MustDefine(w.Info, n, d) {
				killed[d] = true
			}
		}
		for v := range after {
			if !killed[v] {
				add(v)
			}
		}
		if definesRelevant {
			for _, u := range uses[n] {
				add(u)
			}
		}
		if changed {
			for _, p := range n.Preds {
				if !inWork[p] {
					inWork[p] = true
					work = append(work, p)
				}
			}
		}
	}
	return relevant
}
