// Package static provides interprocedural static program slicing on top
// of the system dependence graph, reproducing the paper's Section 4: a
// slice at program point p on variable v contains all statements and
// predicates that might affect the value of v at p.
package static

import (
	"fmt"
	"strings"

	"gadt/internal/analysis/cfg"
	"gadt/internal/analysis/pdg"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/render"
)

// Slicer wraps an SDG with slicing entry points.
type Slicer struct {
	Info *sem.Info
	SDG  *pdg.SDG
}

// New builds the SDG for an analyzed program.
func New(info *sem.Info) *Slicer {
	return &Slicer{Info: info, SDG: pdg.Build(info)}
}

// Slice is the result of a slicing request.
type Slice struct {
	Info  *sem.Info
	Nodes map[*pdg.Node]bool

	// stmts holds the original-AST statements retained by the slice.
	stmts map[ast.Stmt]bool
	// conds holds structured statements whose condition is in the slice.
	conds map[ast.Stmt]bool
	// routines holds routines with at least one retained node.
	routines map[*sem.Routine]bool
}

// OnVarAtEnd slices on the value of variable v at the end of routine r
// (the common criterion "v at the last line", as in Figure 2).
func (s *Slicer) OnVarAtEnd(r *sem.Routine, v *sem.VarSym) *Slice {
	g := s.SDG.CFGs[r]
	seeds := s.SDG.ReachingDefNodes(r, g.Exit, v)
	return s.run(seeds)
}

// OnVarAtStmt slices on the value of v immediately before statement
// stmt in routine r.
func (s *Slicer) OnVarAtStmt(r *sem.Routine, stmt ast.Stmt, v *sem.VarSym) (*Slice, error) {
	g := s.SDG.CFGs[r]
	c := g.NodeOf[stmt]
	if c == nil {
		if cs := g.CondOf[stmt]; len(cs) > 0 {
			c = cs[0]
		}
	}
	if c == nil {
		return nil, fmt.Errorf("static: statement at %s has no CFG node in %s", stmt.Pos(), r.Name)
	}
	return s.run(s.SDG.ReachingDefNodes(r, c, v)), nil
}

// OnOutput slices on an output of routine r: a var/out parameter, the
// function result, or a modified global. This is the criterion the
// debugger uses when the user flags an output value as wrong.
func (s *Slicer) OnOutput(r *sem.Routine, v *sem.VarSym) (*Slice, error) {
	fo := s.SDG.FormalOutOf(r, v)
	if fo == nil {
		return nil, fmt.Errorf("static: %s has no output %s", r.Name, v.Name)
	}
	return s.run([]*pdg.Node{fo}), nil
}

// ForwardFromStmt computes the forward slice from a statement: every
// statement potentially affected by it. The natural use is impact
// analysis before a fix ("what else does changing this line touch"),
// the forward companion Kamkar's overview describes.
func (s *Slicer) ForwardFromStmt(r *sem.Routine, stmt ast.Stmt) (*Slice, error) {
	g := s.SDG.CFGs[r]
	c := g.NodeOf[stmt]
	if c == nil {
		if cs := g.CondOf[stmt]; len(cs) > 0 {
			c = cs[0]
		}
	}
	if c == nil {
		return nil, fmt.Errorf("static: statement at %s has no CFG node in %s", stmt.Pos(), r.Name)
	}
	n := s.SDG.NodeForCFG(c)
	if n == nil {
		return nil, fmt.Errorf("static: no SDG node for statement at %s", stmt.Pos())
	}
	return s.collect(s.SDG.ForwardSlice([]*pdg.Node{n})), nil
}

func (s *Slicer) run(seeds []*pdg.Node) *Slice {
	return s.collect(s.SDG.BackwardSlice(seeds))
}

func (s *Slicer) collect(nodes map[*pdg.Node]bool) *Slice {
	sl := &Slice{
		Info:     s.Info,
		Nodes:    nodes,
		stmts:    make(map[ast.Stmt]bool),
		conds:    make(map[ast.Stmt]bool),
		routines: make(map[*sem.Routine]bool),
	}
	for n := range nodes {
		sl.routines[n.Routine] = true
		if n.Kind != pdg.StmtKind || n.CFG == nil {
			continue
		}
		c := n.CFG
		switch c.Kind {
		case cfg.Stmt:
			sl.stmts[c.Stmt] = true
		case cfg.Cond:
			sl.conds[c.Stmt] = true
		case cfg.ForInit, cfg.ForCond, cfg.ForIncr:
			sl.conds[c.Stmt] = true
		}
	}
	return sl
}

// IncludesStmt reports whether an atomic statement is in the slice.
func (sl *Slice) IncludesStmt(s ast.Stmt) bool { return sl.stmts[s] }

// IncludesRoutine reports whether any part of r is in the slice.
func (sl *Slice) IncludesRoutine(r *sem.Routine) bool { return sl.routines[r] }

// filter builds the shared subset renderer for this slice.
func (sl *Slice) filter() *render.Filter {
	return &render.Filter{
		Info:        sl.Info,
		KeepStmt:    func(s ast.Stmt) bool { return sl.stmts[s] },
		KeepCond:    func(s ast.Stmt) bool { return sl.conds[s] },
		KeepRoutine: func(r *sem.Routine) bool { return sl.routines[r] },
	}
}

// StmtCount returns the number of atomic statements and predicates
// retained (the paper's measure of slice size).
func (sl *Slice) StmtCount() int { return len(sl.stmts) + len(sl.conds) }

// Program returns the sliced program as a new AST: statements outside
// the slice are removed; routines with no retained statements are
// dropped entirely. The original program is not modified.
func (sl *Slice) Program() *ast.Program {
	return sl.filter().Program()
}

// Render prints the sliced program.
func (sl *Slice) Render() string {
	return sl.filter().Render()
}

// Describe returns a one-line summary useful in logs and experiments.
func (sl *Slice) Describe() string {
	var names []string
	for r := range sl.routines {
		names = append(names, r.Name)
	}
	return fmt.Sprintf("%d statements across %d routines (%s)",
		sl.StmtCount(), len(sl.routines), strings.Join(names, ", "))
}

// LookupVar finds a variable named name visible in routine r (its own
// params/locals/result first, then enclosing routines). Helper for CLIs
// and tests.
func LookupVar(info *sem.Info, r *sem.Routine, name string) *sem.VarSym {
	for ; r != nil; r = r.Parent {
		for _, v := range r.AllVars() {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}
