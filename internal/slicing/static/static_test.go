package static_test

import (
	"strings"
	"testing"

	"gadt/internal/analysis/pdg"
	"gadt/internal/corpus"
	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/static"
)

func slicer(t *testing.T, src string) (*sem.Info, *static.Slicer) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info, static.New(info)
}

// TestFigure2 reproduces the paper's Figure 2: slicing program p on
// variable mul at the last line keeps read(x,y), mul := 0 and the
// conditional assignment mul := x*y, and drops everything about sum and z.
func TestFigure2(t *testing.T) {
	info, s := slicer(t, paper.SliceExample)
	mul := static.LookupVar(info, info.Main, "mul")
	if mul == nil {
		t.Fatal("mul not found")
	}
	sl := s.OnVarAtEnd(info.Main, mul)
	out := sl.Render()

	for _, want := range []string{"read(x, y)", "mul := 0", "mul := x * y", "if x <= 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("slice missing %q:\n%s", want, out)
		}
	}
	for _, drop := range []string{"sum := 0", "sum := x + y", "read(z)"} {
		if strings.Contains(out, drop) {
			t.Errorf("slice wrongly kept %q:\n%s", drop, out)
		}
	}
	// Slice must be smaller than the program.
	full := len(strings.Split(strings.TrimSpace(paper.SliceExample), "\n"))
	got := len(strings.Split(strings.TrimSpace(out), "\n"))
	if got >= full {
		t.Errorf("slice (%d lines) not smaller than program (%d lines)", got, full)
	}
}

func TestSliceOnSum(t *testing.T) {
	info, s := slicer(t, paper.SliceExample)
	sum := static.LookupVar(info, info.Main, "sum")
	sl := s.OnVarAtEnd(info.Main, sum)
	out := sl.Render()
	for _, want := range []string{"read(x, y)", "sum := 0", "sum := x + y"} {
		if !strings.Contains(out, want) {
			t.Errorf("slice missing %q:\n%s", want, out)
		}
	}
	for _, drop := range []string{"mul := x * y", "read(z)"} {
		if strings.Contains(out, drop) {
			t.Errorf("slice wrongly kept %q:\n%s", drop, out)
		}
	}
}

// TestInterprocedural checks that slicing crosses call boundaries: the
// slice on sqrtest's output r1 excludes comput2/square but includes the
// sum1/sum2 chain.
func TestInterproceduralSliceOnR1(t *testing.T) {
	info, s := slicer(t, paper.Sqrtest)
	computs := info.LookupRoutine("computs")
	r1 := static.LookupVar(info, computs, "r1")
	if r1 == nil {
		t.Fatal("r1 not found in computs")
	}
	sl, err := s.OnOutput(computs, r1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"comput1", "partialsums", "sum1", "sum2", "increment", "decrement", "add"} {
		if r := info.LookupRoutine(want); r == nil || !sl.IncludesRoutine(r) {
			t.Errorf("slice on r1 must include routine %s", want)
		}
	}
	for _, drop := range []string{"comput2", "square", "test"} {
		if r := info.LookupRoutine(drop); r != nil && sl.IncludesRoutine(r) {
			t.Errorf("slice on r1 must exclude routine %s", drop)
		}
	}
	out := sl.Render()
	if strings.Contains(out, "square") {
		t.Errorf("rendered slice still mentions square:\n%s", out)
	}
	if _, err := parser.ParseProgram("slice.pas", out); err != nil {
		t.Errorf("sliced program does not reparse: %v\n%s", err, out)
	}
}

// TestSliceOnS2 mirrors the paper's second slicing step: slicing on
// partialsums' second output keeps sum2/decrement, drops sum1/increment.
func TestInterproceduralSliceOnS2(t *testing.T) {
	info, s := slicer(t, paper.Sqrtest)
	ps := info.LookupRoutine("partialsums")
	s2 := static.LookupVar(info, ps, "s2")
	sl, err := s.OnOutput(ps, s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sum2", "decrement"} {
		if r := info.LookupRoutine(want); !sl.IncludesRoutine(r) {
			t.Errorf("slice on s2 must include %s", want)
		}
	}
	for _, drop := range []string{"sum1", "increment", "add", "square", "comput2"} {
		if r := info.LookupRoutine(drop); sl.IncludesRoutine(r) {
			t.Errorf("slice on s2 must exclude %s", drop)
		}
	}
}

func TestSliceThroughGlobals(t *testing.T) {
	info, s := slicer(t, `
program t;
var g, h, result, noise: integer;

procedure setg;
begin
  g := h * 2;
end;

procedure compute;
begin
  setg;
  result := g + 1;
end;

begin
  h := 5;
  noise := 999;
  compute;
  writeln(result);
end.`)
	v := static.LookupVar(info, info.Main, "result")
	sl := s.OnVarAtEnd(info.Main, v)
	out := sl.Render()
	for _, want := range []string{"h := 5", "g := h * 2", "result := g + 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("slice missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "noise := 999") {
		t.Errorf("slice kept irrelevant statement:\n%s", out)
	}
}

// TestSummaryEdgesPreventOverTainting: slicing on one output of a called
// procedure with two independent outputs must not drag in the inputs of
// the other output (the calling-context problem HRB summary edges solve).
func TestSummaryEdgesContextSensitivity(t *testing.T) {
	info, s := slicer(t, `
program t;
var a, b, x, y: integer;

procedure both(ina, inb: integer; var outa, outb: integer);
begin
  outa := ina * 2;
  outb := inb * 3;
end;

begin
  read(a);
  read(b);
  both(a, b, x, y);
  writeln(x, y);
end.`)
	x := static.LookupVar(info, info.Main, "x")
	sl := s.OnVarAtEnd(info.Main, x)
	// The slice on x needs a (via ina/outa) but not b.
	foundA, foundB := false, false
	out := sl.Render()
	if strings.Contains(out, "read(a)") {
		foundA = true
	}
	if strings.Contains(out, "read(b)") {
		foundB = true
	}
	if !foundA {
		t.Errorf("slice on x must include read(a):\n%s", out)
	}
	if foundB {
		t.Errorf("slice on x must not include read(b):\n%s", out)
	}
}

func TestLoopSlice(t *testing.T) {
	info, s := slicer(t, `
program t;
var i, s1, s2: integer;
begin
  s1 := 0;
  s2 := 0;
  for i := 1 to 10 do begin
    s1 := s1 + i;
    s2 := s2 + i * i;
  end;
  writeln(s1, s2);
end.`)
	v := static.LookupVar(info, info.Main, "s1")
	sl := s.OnVarAtEnd(info.Main, v)
	out := sl.Render()
	if !strings.Contains(out, "s1 := s1 + i") || !strings.Contains(out, "for i := 1 to 10") {
		t.Errorf("slice on s1 lost loop structure:\n%s", out)
	}
	if strings.Contains(out, "s2 := s2 + i * i") {
		t.Errorf("slice on s1 kept s2 computation:\n%s", out)
	}
}

func TestConditionalControlDependence(t *testing.T) {
	info, s := slicer(t, `
program t;
var flag, x, y: integer;
begin
  read(flag);
  x := 0;
  y := 0;
  if flag > 0 then
    x := 1
  else
    y := 1;
  writeln(x);
end.`)
	v := static.LookupVar(info, info.Main, "x")
	sl := s.OnVarAtEnd(info.Main, v)
	out := sl.Render()
	// Control dependence: the branch and the flag read must stay.
	for _, want := range []string{"read(flag)", "if flag > 0", "x := 1", "x := 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("slice missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "y := 1") || strings.Contains(out, "y := 0") {
		t.Errorf("slice kept y statements:\n%s", out)
	}
}

func TestSliceOnOutputErrors(t *testing.T) {
	info, s := slicer(t, paper.Sqrtest)
	dec := info.LookupRoutine("decrement")
	// y is an In-parameter, not an output.
	y := dec.Params[0]
	if _, err := s.OnOutput(dec, y); err == nil {
		t.Error("expected error slicing on a value parameter as output")
	}
}

func TestFunctionResultSlice(t *testing.T) {
	info, s := slicer(t, paper.Sqrtest)
	dec := info.LookupRoutine("decrement")
	sl, err := s.OnOutput(dec, dec.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.IncludesRoutine(dec) {
		t.Error("slice on decrement result must include decrement")
	}
	// Callers feeding y matter: sum2, partialsums, comput1, computs,
	// sqrtest, arrsum (computes t) and main.
	for _, want := range []string{"sum2", "partialsums", "comput1", "computs", "sqrtest", "arrsum"} {
		if r := info.LookupRoutine(want); !sl.IncludesRoutine(r) {
			t.Errorf("slice on decrement's result must include %s (feeds its input)", want)
		}
	}
	for _, drop := range []string{"square", "comput2", "test", "sum1", "increment"} {
		if r := info.LookupRoutine(drop); sl.IncludesRoutine(r) {
			t.Errorf("slice on decrement's result must exclude %s", drop)
		}
	}
}

func TestOnVarAtStmt(t *testing.T) {
	info, s := slicer(t, `
program t;
var a, b: integer;
begin
  a := 1;
  b := a;
  a := 99;
  b := a;
end.`)
	// Criterion: value of a before the FIRST b := a.
	var firstUse ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && firstUse == nil {
			if id, ok := as.Lhs.(*ast.Ident); ok && id.Name == "b" {
				firstUse = as
			}
		}
		return true
	})
	a := static.LookupVar(info, info.Main, "a")
	sl, err := s.OnVarAtStmt(info.Main, firstUse, a)
	if err != nil {
		t.Fatal(err)
	}
	out := sl.Render()
	if !strings.Contains(out, "a := 1") {
		t.Errorf("missing a := 1:\n%s", out)
	}
	if strings.Contains(out, "a := 99") {
		t.Errorf("later definition leaked into slice at earlier point:\n%s", out)
	}
}

func TestOnVarAtStmtUnknownStmt(t *testing.T) {
	info, s := slicer(t, paper.SliceExample)
	foreign := &ast.EmptyStmt{}
	v := static.LookupVar(info, info.Main, "mul")
	if _, err := s.OnVarAtStmt(info.Main, foreign, v); err == nil {
		t.Error("expected error for a statement outside the program")
	}
}

func TestForwardSlice(t *testing.T) {
	info, s := slicer(t, `
program t;
var a, b, c, d: integer;
begin
  read(a);
  b := a + 1;
  c := b * 2;
  d := 42;
  writeln(c, d);
end.`)
	// Forward slice from `b := a + 1` must reach c's computation and the
	// writeln, but not d.
	var bAssign ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs.(*ast.Ident); ok && id.Name == "b" {
				bAssign = as
			}
		}
		return true
	})
	if bAssign == nil {
		t.Fatal("b assignment not found")
	}
	sl, err := s.ForwardFromStmt(info.Main, bAssign)
	if err != nil {
		t.Fatal(err)
	}
	var cAssign, dAssign ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs.(*ast.Ident); ok {
				switch id.Name {
				case "c":
					cAssign = as
				case "d":
					dAssign = as
				}
			}
		}
		return true
	})
	if !sl.IncludesStmt(bAssign) || !sl.IncludesStmt(cAssign) {
		t.Errorf("forward slice missing b/c chain: %s", sl.Describe())
	}
	if sl.IncludesStmt(dAssign) {
		t.Errorf("forward slice wrongly includes d := 42")
	}
}

func TestForwardSliceInterprocedural(t *testing.T) {
	info, s := slicer(t, `
program t;
var x, y, z: integer;

procedure double(v: integer; var r: integer);
begin
  r := v * 2;
end;

begin
  read(x);
  double(x, y);
  z := 5;
  writeln(y, z);
end.`)
	var readStmt ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if cs, ok := n.(*ast.CallStmt); ok && cs.Name == "read" {
			readStmt = cs
		}
		return true
	})
	sl, err := s.ForwardFromStmt(info.Main, readStmt)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.IncludesRoutine(info.LookupRoutine("double")) {
		t.Errorf("forward slice from read(x) must cross into double: %s", sl.Describe())
	}
	var zAssign ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs.(*ast.Ident); ok && id.Name == "z" {
				zAssign = as
			}
		}
		return true
	})
	if sl.IncludesStmt(zAssign) {
		t.Errorf("forward slice wrongly includes z := 5")
	}
}

func TestDescribeAndCount(t *testing.T) {
	info, s := slicer(t, paper.SliceExample)
	mul := static.LookupVar(info, info.Main, "mul")
	sl := s.OnVarAtEnd(info.Main, mul)
	if sl.StmtCount() == 0 {
		t.Error("empty slice")
	}
	if d := sl.Describe(); !strings.Contains(d, "statements") {
		t.Errorf("describe = %q", d)
	}
}

// TestInfeasiblePruningShrinksCorpusSlice pins the slice-pruning payoff
// on a real corpus program: checksum guards a debug branch with a
// constant-false condition, and the branch assigns to the criterion
// variable. The default (pruned) SDG must drop the dead branch and the
// guard chain; the unpruned SDG keeps both, and everything the pruned
// slice keeps must also be in the unpruned one.
func TestInfeasiblePruningShrinksCorpusSlice(t *testing.T) {
	var checksum corpus.Program
	for _, p := range corpus.All() {
		if p.Name == "checksum" {
			checksum = p
		}
	}
	if checksum.Source == "" {
		t.Fatal("checksum corpus program missing")
	}
	prog := parser.MustParse("checksum.pas", checksum.Source)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	acc := static.LookupVar(info, info.Main, "acc")

	pruned := static.New(info).OnVarAtEnd(info.Main, acc)
	full := (&static.Slicer{Info: info, SDG: pdg.BuildUnpruned(info)}).OnVarAtEnd(info.Main, acc)

	out := pruned.Render()
	for _, want := range []string{"acc := 7", "mix(value, acc)", "read(value)"} {
		if !strings.Contains(out, want) {
			t.Errorf("pruned slice missing live statement %q:\n%s", want, out)
		}
	}
	for _, dead := range []string{"acc := acc + 1000000", "debug := 0"} {
		if strings.Contains(out, dead) {
			t.Errorf("pruned slice kept dead-branch statement %q:\n%s", dead, out)
		}
		if !strings.Contains(full.Render(), dead) {
			t.Errorf("unpruned slice unexpectedly dropped %q — pinning the wrong thing", dead)
		}
	}
	if p, f := pruned.StmtCount(), full.StmtCount(); p >= f {
		t.Errorf("pruned slice has %d statements, unpruned %d; want strictly smaller", p, f)
	}
	// Subset check: pruning must only ever remove statements.
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			if pruned.IncludesStmt(s) && !full.IncludesStmt(s) {
				t.Errorf("pruned slice gained %T@%s", s, s.Pos())
			}
		}
		return true
	})
}
