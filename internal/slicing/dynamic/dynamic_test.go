package dynamic_test

import (
	"strings"
	"testing"

	"gadt/internal/exectree"
	"gadt/internal/paper"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/dynamic"
)

func traceWithDeps(t *testing.T, src, input string) (*exectree.TraceResult, *dynamic.Recorder) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	rec := dynamic.NewRecorder(info)
	res := exectree.Trace(info, input, rec)
	if res.Err != nil {
		t.Fatalf("trace: %v", res.Err)
	}
	return res, rec
}

func findNode(t *testing.T, tree *exectree.Tree, unit string) *exectree.Node {
	t.Helper()
	var out *exectree.Node
	tree.Walk(func(n *exectree.Node) bool {
		if out == nil && n.Unit.Name == unit {
			out = n
		}
		return true
	})
	if out == nil {
		t.Fatalf("node %s not found", unit)
	}
	return out
}

func keptNames(sl *dynamic.TreeSlice) map[string]bool {
	out := make(map[string]bool)
	for n := range sl.Kept {
		out[n.Unit.Name] = true
	}
	return out
}

// TestFigure8 reproduces the paper's first slicing step: slicing the
// execution tree on the first output (r1) of computs keeps the comput1
// subtree (partialsums, sum1, sum2, increment, decrement, add) and drops
// comput2/square and test.
func TestFigure8(t *testing.T) {
	res, rec := traceWithDeps(t, paper.Sqrtest, "")
	computs := findNode(t, res.Tree, "computs")
	sl, err := rec.SliceOnOutput(res.Tree, computs, "r1")
	if err != nil {
		t.Fatal(err)
	}
	names := keptNames(sl)
	for _, want := range []string{"computs", "comput1", "partialsums", "add", "sum1", "sum2", "increment", "decrement"} {
		if !names[want] {
			t.Errorf("slice on r1 must keep %s (kept: %v)", want, names)
		}
	}
	for _, drop := range []string{"comput2", "square", "test"} {
		if names[drop] {
			t.Errorf("slice on r1 must drop %s (kept: %v)", drop, names)
		}
	}
	// Upstream feeders of In y: 3 stay (arrsum computed the 3).
	if !names["arrsum"] || !names["sqrtest"] || !names["main"] {
		t.Errorf("slice lost the upstream context: %v", names)
	}
	// Figure 8 counts: 14-node tree minus test, comput2, square = 11.
	if sl.Size() != 11 {
		t.Errorf("slice size = %d, want 11 (kept %v)", sl.Size(), names)
	}
}

// TestFigure9 reproduces the second slicing step: slicing on the second
// output (s2) of partialsums keeps only sum2 → decrement below it.
func TestFigure9(t *testing.T) {
	res, rec := traceWithDeps(t, paper.Sqrtest, "")
	partial := findNode(t, res.Tree, "partialsums")
	sl, err := rec.SliceOnOutput(res.Tree, partial, "s2")
	if err != nil {
		t.Fatal(err)
	}
	names := keptNames(sl)
	for _, want := range []string{"partialsums", "sum2", "decrement"} {
		if !names[want] {
			t.Errorf("slice on s2 must keep %s (kept: %v)", want, names)
		}
	}
	for _, drop := range []string{"sum1", "increment", "add", "comput2", "square", "test"} {
		if names[drop] {
			t.Errorf("slice on s2 must drop %s (kept: %v)", drop, names)
		}
	}
}

func TestSuccessiveSlicesShrink(t *testing.T) {
	res, rec := traceWithDeps(t, paper.Sqrtest, "")
	computs := findNode(t, res.Tree, "computs")
	s1, err := rec.SliceOnOutput(res.Tree, computs, "r1")
	if err != nil {
		t.Fatal(err)
	}
	partial := findNode(t, res.Tree, "partialsums")
	s2, err := rec.SliceOnOutput(res.Tree, partial, "s2")
	if err != nil {
		t.Fatal(err)
	}
	both := dynamic.Intersect(s1, s2)
	if !(both.Size() <= s1.Size() && both.Size() <= s2.Size()) {
		t.Errorf("intersection grew: %d vs %d/%d", both.Size(), s1.Size(), s2.Size())
	}
	if full := res.Tree.Size(); s1.Size() >= full {
		t.Errorf("first slice did not shrink the tree (%d >= %d)", s1.Size(), full)
	}
}

func TestFunctionResultSlice(t *testing.T) {
	res, rec := traceWithDeps(t, paper.Sqrtest, "")
	dec := findNode(t, res.Tree, "decrement")
	sl, err := rec.SliceOnOutput(res.Tree, dec, "decrement")
	if err != nil {
		t.Fatal(err)
	}
	names := keptNames(sl)
	for _, want := range []string{"decrement", "sum2", "partialsums", "comput1", "computs", "sqrtest", "arrsum", "main"} {
		if !names[want] {
			t.Errorf("slice on decrement result must keep %s (kept: %v)", want, names)
		}
	}
	for _, drop := range []string{"sum1", "increment", "square", "comput2", "test", "add"} {
		if names[drop] {
			t.Errorf("slice on decrement result must drop %s", drop)
		}
	}
}

func TestSliceUnknownOutput(t *testing.T) {
	res, rec := traceWithDeps(t, paper.Sqrtest, "")
	computs := findNode(t, res.Tree, "computs")
	if _, err := rec.SliceOnOutput(res.Tree, computs, "nonexistent"); err == nil {
		t.Error("expected error for unknown output")
	}
}

func TestVarParamChainProvenance(t *testing.T) {
	// x flows a → b → c through var parameters; noise does not.
	res, rec := traceWithDeps(t, `
program t;
var x, noise: integer;

procedure c(var v: integer);
begin
  v := v + 1;
end;

procedure b(var v: integer);
begin
  c(v);
end;

procedure a(var v: integer);
begin
  v := 10;
  b(v);
end;

procedure irrelevant;
begin
  noise := 42;
end;

begin
  irrelevant;
  a(x);
  writeln(x);
end.`, "")
	an := findNode(t, res.Tree, "a")
	sl, err := rec.SliceOnOutput(res.Tree, an, "v")
	if err != nil {
		t.Fatal(err)
	}
	names := keptNames(sl)
	for _, want := range []string{"a", "b", "c"} {
		if !names[want] {
			t.Errorf("slice must keep %s (kept %v)", want, names)
		}
	}
	if names["irrelevant"] {
		t.Error("slice kept the irrelevant call")
	}
}

func TestArrayElementProvenance(t *testing.T) {
	// Writing one array element keeps the whole array's provenance
	// (whole-variable granularity: partial updates read the old value).
	res, rec := traceWithDeps(t, `
program t;
type arr = array [1 .. 3] of integer;
var a: arr;
    s: integer;

procedure init(var v: arr);
begin
  v[1] := 5;
end;

procedure bump(var v: arr);
begin
  v[2] := v[1] + 1;
end;

procedure total(v: arr; var r: integer);
begin
  r := v[1] + v[2] + v[3];
end;

begin
  init(a);
  bump(a);
  total(a, s);
  writeln(s);
end.`, "")
	tn := findNode(t, res.Tree, "total")
	sl, err := rec.SliceOnOutput(res.Tree, tn, "r")
	if err != nil {
		t.Fatal(err)
	}
	names := keptNames(sl)
	for _, want := range []string{"total", "bump", "init"} {
		if !names[want] {
			t.Errorf("slice must keep %s (kept %v)", want, names)
		}
	}
}

// TestControlDependenceKeepsDecidingCondition: a value assigned under a
// branch depends on the branch's condition and, transitively, on the
// unit that computed the condition's input — even though no data flows
// from it into the value.
func TestControlDependenceKeepsDecidingCondition(t *testing.T) {
	res, rec := traceWithDeps(t, `
program t;
var flag, out1, noise: integer;

procedure decide(var f: integer);
begin
  f := 1; (* suppose this is wrong *)
end;

procedure irrelevant;
begin
  noise := 9;
end;

procedure produce(f: integer; var r: integer);
begin
  if f = 1 then
    r := 100
  else
    r := 200;
end;

begin
  decide(flag);
  irrelevant;
  produce(flag, out1);
  writeln(out1);
end.`, "")
	pn := findNode(t, res.Tree, "produce")
	sl, err := rec.SliceOnOutput(res.Tree, pn, "r")
	if err != nil {
		t.Fatal(err)
	}
	names := keptNames(sl)
	if !names["decide"] {
		t.Errorf("slice on r must keep decide (controls which branch ran): %v", names)
	}
	if names["irrelevant"] {
		t.Errorf("slice kept irrelevant: %v", names)
	}
}

func TestEventsRecorded(t *testing.T) {
	_, rec := traceWithDeps(t, paper.Sqrtest, "")
	if rec.Events() == 0 {
		t.Error("no events recorded")
	}
}

// TestStatementLevelDynamicSlice checks the statement-level dynamic
// program slice: only statements that actually produced the criterion
// value survive in the rendered program.
func TestStatementLevelDynamicSlice(t *testing.T) {
	src := `
program t;
var a, b, c, noise: integer;

procedure mk(var r: integer);
begin
  r := 2;
  noise := 77;
end;

procedure dbl(v: integer; var r: integer);
begin
  r := v * 2;
end;

begin
  mk(a);
  dbl(a, b);
  c := 123;
  writeln(b, c);
end.`
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	rec := dynamic.NewRecorder(info)
	res := exectree.Trace(info, "", rec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	dn := findNode(t, res.Tree, "dbl")
	sl, err := rec.SliceOnOutput(res.Tree, dn, "r")
	if err != nil {
		t.Fatal(err)
	}
	if sl.StmtCount() == 0 {
		t.Fatal("no contributing statements recorded")
	}
	out := sl.RenderProgram(info)
	for _, want := range []string{"r := 2", "r := v * 2", "mk(a)", "dbl(a, b)"} {
		if !containsLine(out, want) {
			t.Errorf("dynamic program slice missing %q:\n%s", want, out)
		}
	}
	for _, drop := range []string{"noise := 77", "c := 123", "writeln"} {
		if containsLine(out, drop) {
			t.Errorf("dynamic program slice wrongly kept %q:\n%s", drop, out)
		}
	}
}

func containsLine(out, want string) bool {
	return strings.Contains(out, want)
}

func TestLoopCarriedDependence(t *testing.T) {
	res, rec := traceWithDeps(t, `
program t;
var i, acc, unused: integer;

procedure seed(var v: integer);
begin
  v := 2;
end;

procedure waste(var v: integer);
begin
  v := 123;
end;

begin
  seed(acc);
  waste(unused);
  for i := 1 to 3 do
    acc := acc * 2;
  writeln(acc);
end.`, "")
	// Slice on main's final acc: use the root's "output" indirectly by
	// slicing on seed's v then checking the forward picture via the
	// recorder: here we slice on seed's output and expect only seed.
	sn := findNode(t, res.Tree, "seed")
	sl, err := rec.SliceOnOutput(res.Tree, sn, "v")
	if err != nil {
		t.Fatal(err)
	}
	names := keptNames(sl)
	if names["waste"] {
		t.Error("waste contributed to seed's output")
	}
	if !names["seed"] {
		t.Error("seed missing from its own slice")
	}
}
