// Package dynamic implements interprocedural dynamic slicing at the
// execution-tree level (Section 7 of the paper; [Kamkar-91b]): during
// tracing, a Recorder builds a dynamic data-dependence graph over
// statement-execution events; slicing on an output variable of a unit
// invocation then prunes the execution tree to the invocations that
// actually contributed to that value — exactly the tree reductions shown
// in Figures 8 and 9.
//
// Dependences combine data flow (at whole-variable granularity, one
// memory location per variable like the rest of the system) with
// dynamic control dependences: each statement execution depends on the
// latest execution of its statically controlling predicate within the
// same frame, so a value produced under a wrong branch decision keeps
// the deciding condition — and everything it read — in the slice.
package dynamic

import (
	"fmt"

	"gadt/internal/analysis/cfg"
	"gadt/internal/analysis/pdg"
	"gadt/internal/exectree"
	"gadt/internal/obs"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/render"
)

// event is one statement execution.
type event struct {
	node int64 // invocation (CallInfo/exectree node) ID
	stmt ast.Stmt
	deps []int32
}

const noEvent = int32(-1)

// Recorder builds the dynamic dependence graph; it implements
// interp.EventSink and is meant to run alongside exectree.Builder via
// interp.MultiSink.
type Recorder struct {
	events    []event
	lastWrite map[interp.Loc]int32

	stack []*frameRec

	// outWriter[nodeID][outputName] = event that produced the final
	// value of that output (function results use the unit name).
	outWriter map[int64]map[string]int32

	// Control-dependence support (enabled when info is non-nil):
	// ctrl maps each statement to its statically controlling structured
	// statements, built lazily per routine from the CFG.
	info      *sem.Info
	ctrl      map[ast.Stmt][]ast.Stmt
	ctrlBuilt map[*sem.Routine]bool
}

type frameRec struct {
	id  int64
	cur int32 // current statement event, -1 before the first statement
	// lastByStmt records the latest event of each statement in this
	// frame, the anchor for dynamic control dependences.
	lastByStmt map[ast.Stmt]int32
}

// NewRecorder returns a Recorder with dynamic control dependences for
// the analyzed program info. Passing nil yields a data-flow-only
// recorder (the ablation variant; it can mis-attribute bugs that hide in
// branch or loop conditions).
func NewRecorder(info *sem.Info) *Recorder {
	return &Recorder{
		lastWrite: make(map[interp.Loc]int32),
		outWriter: make(map[int64]map[string]int32),
		info:      info,
		ctrl:      make(map[ast.Stmt][]ast.Stmt),
		ctrlBuilt: make(map[*sem.Routine]bool),
	}
}

// buildControl fills ctrl for routine r's statements.
func (r *Recorder) buildControl(rt *sem.Routine) {
	if r.info == nil || r.ctrlBuilt[rt] {
		return
	}
	r.ctrlBuilt[rt] = true
	g := cfg.Build(r.info, rt)
	for n, ctrls := range pdg.ControlDeps(g) {
		if n.Stmt == nil {
			continue
		}
		for _, c := range ctrls {
			if c.Stmt == nil || c == g.Entry || c.Stmt == n.Stmt {
				continue
			}
			dup := false
			for _, have := range r.ctrl[n.Stmt] {
				if have == c.Stmt {
					dup = true
				}
			}
			if !dup {
				r.ctrl[n.Stmt] = append(r.ctrl[n.Stmt], c.Stmt)
			}
		}
	}
}

var _ interp.EventSink = (*Recorder)(nil)

func (r *Recorder) top() *frameRec {
	if len(r.stack) == 0 {
		return nil
	}
	return r.stack[len(r.stack)-1]
}

// Stmt opens a fresh event for the executing frame, adding a dynamic
// control dependence on the latest execution of the statement's
// controlling predicate.
func (r *Recorder) Stmt(s ast.Stmt, rt *sem.Routine) {
	f := r.top()
	if f == nil {
		return
	}
	r.buildControl(rt)
	ev := event{node: f.id, stmt: s}
	for _, cs := range r.ctrl[s] {
		if ce, ok := f.lastByStmt[cs]; ok {
			ev.deps = append(ev.deps, ce)
		}
	}
	r.events = append(r.events, ev)
	f.cur = int32(len(r.events) - 1)
	if f.lastByStmt == nil {
		f.lastByStmt = make(map[ast.Stmt]int32)
	}
	f.lastByStmt[s] = f.cur
}

// Read attaches a dependence on the location's last writer to the
// current event.
func (r *Recorder) Read(loc interp.Loc, _ *sem.VarSym) {
	f := r.top()
	if f == nil || f.cur == noEvent {
		return
	}
	w, ok := r.lastWrite[loc]
	if !ok || w == f.cur {
		return
	}
	ev := &r.events[f.cur]
	for _, d := range ev.deps {
		if d == w {
			return
		}
	}
	ev.deps = append(ev.deps, w)
}

// Write marks the current event as the location's last writer.
func (r *Recorder) Write(loc interp.Loc, _ *sem.VarSym) {
	f := r.top()
	if f == nil || f.cur == noEvent {
		return
	}
	r.lastWrite[loc] = f.cur
}

// EnterCall pushes a frame and seeds value-parameter provenance: a value
// parameter's fresh cell inherits the caller's current event (which
// carries the argument-expression reads) as its writer.
func (r *Recorder) EnterCall(ci *interp.CallInfo) {
	caller := r.top()
	if caller != nil && caller.cur != noEvent {
		for i, b := range ci.Ins {
			if b.Mode == ast.Value && i < len(ci.ParamLocs) && ci.ParamLocs[i] != 0 {
				r.lastWrite[ci.ParamLocs[i]] = caller.cur
			}
		}
	}
	r.stack = append(r.stack, &frameRec{id: ci.ID, cur: noEvent})
	// The callee's events are control-dependent on the call statement:
	// without the caller reaching this call, nothing below runs. That is
	// captured transitively through value-parameter seeding and the
	// kept-ancestors closure, so no explicit edge is needed here.
}

// ExitCall records the writer of each output value and pops the frame.
func (r *Recorder) ExitCall(ci *interp.CallInfo) {
	locOf := make(map[*sem.VarSym]interp.Loc)
	for i, b := range ci.Ins {
		if i < len(ci.ParamLocs) {
			locOf[b.Sym] = ci.ParamLocs[i]
		}
	}
	m := make(map[string]int32)
	for _, b := range ci.Outs {
		if loc, ok := locOf[b.Sym]; ok {
			if w, ok := r.lastWrite[loc]; ok {
				m[b.Name] = w
			}
		}
	}
	if ci.ResultLoc != 0 {
		if w, ok := r.lastWrite[ci.ResultLoc]; ok {
			m[ci.Routine.Name] = w
		}
	}
	if len(m) > 0 {
		r.outWriter[ci.ID] = m
	}
	if len(r.stack) > 0 {
		r.stack = r.stack[:len(r.stack)-1]
	}
}

// Events reports the number of recorded statement events.
func (r *Recorder) Events() int { return len(r.events) }

// Edges reports the number of dependence edges in the recorded dynamic
// dependence graph (data-flow plus dynamic control dependences).
func (r *Recorder) Edges() int {
	total := 0
	for i := range r.events {
		total += len(r.events[i].deps)
	}
	return total
}

// RecordMetrics sets the recorder's graph-size gauges
// (slicing.dynamic.events, slicing.dynamic.edges). Nil-safe.
func (r *Recorder) RecordMetrics(m *obs.Registry) {
	if m == nil {
		return
	}
	m.Gauge("slicing.dynamic.events").Set(int64(r.Events()))
	m.Gauge("slicing.dynamic.edges").Set(int64(r.Edges()))
}

// ---------------------------------------------------------------------------
// Slicing

// TreeSlice is the result of a dynamic slice: the set of execution-tree
// nodes that contributed to the criterion value, closed under ancestors
// so it always forms a subtree rooted at the original root. Stmts
// additionally holds the contributing statement executions, giving a
// statement-level dynamic program slice in the sense of [Kamkar-91b]
// (executed statements that actually produced the criterion value).
type TreeSlice struct {
	Criterion *exectree.Node
	Variable  string
	Kept      map[*exectree.Node]bool
	Stmts     map[ast.Stmt]bool
}

// StmtCount returns the number of distinct contributing statements.
func (s *TreeSlice) StmtCount() int { return len(s.Stmts) }

// RenderProgram prints the statement-level dynamic slice as a program:
// only statements that contributed to the criterion value survive
// (structure is kept around them; conditions are not part of the
// data-flow slice). The info must describe the traced program.
func (s *TreeSlice) RenderProgram(info *sem.Info) string {
	f := &render.Filter{
		Info:     info,
		KeepStmt: func(st ast.Stmt) bool { return s.Stmts[st] },
	}
	return f.Render()
}

// Keep reports whether n survives the slice.
func (s *TreeSlice) Keep(n *exectree.Node) bool { return s.Kept[n] }

// Size returns the number of retained nodes.
func (s *TreeSlice) Size() int { return len(s.Kept) }

// SliceOnOutput computes the dynamic slice of the execution tree on the
// given output variable of invocation n (an Out binding name, or the
// unit name for a function result).
func (r *Recorder) SliceOnOutput(t *exectree.Tree, n *exectree.Node, output string) (*TreeSlice, error) {
	writers := r.outWriter[n.ID]
	seed, ok := writers[output]
	if !ok {
		return nil, fmt.Errorf("dynamic: %s has no recorded output %q", n.Unit.Name, output)
	}

	// Backward closure over event dependences.
	seen := make(map[int32]bool)
	stack := []int32{seed}
	contributing := make(map[int64]bool)
	stmts := make(map[ast.Stmt]bool)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[e] {
			continue
		}
		seen[e] = true
		ev := r.events[e]
		contributing[ev.node] = true
		if ev.stmt != nil {
			stmts[ev.stmt] = true
		}
		stack = append(stack, ev.deps...)
	}

	// Keep contributing invocations plus all their ancestors (and the
	// criterion node's own chain), so the result is a rooted subtree.
	kept := make(map[*exectree.Node]bool)
	keepChain := func(x *exectree.Node) {
		for ; x != nil; x = x.Parent {
			if kept[x] {
				return
			}
			kept[x] = true
		}
	}
	t.Walk(func(x *exectree.Node) bool {
		if contributing[x.ID] {
			keepChain(x)
		}
		return true
	})
	keepChain(n)
	// For executability of the statement-level slice, the call
	// statements of every kept invocation are part of the slice even
	// when the binding itself moved no data (var-parameter aliasing).
	for x := range kept {
		if cs, ok := x.CallSite.(ast.Stmt); ok {
			stmts[cs] = true
		}
	}
	return &TreeSlice{Criterion: n, Variable: output, Kept: kept, Stmts: stmts}, nil
}

// Intersect returns a slice keeping only nodes present in both slices
// (used when the debugger slices repeatedly on a shrinking tree).
func Intersect(a, b *TreeSlice) *TreeSlice {
	kept := make(map[*exectree.Node]bool)
	for n := range a.Kept {
		if b.Kept[n] {
			kept[n] = true
		}
	}
	return &TreeSlice{Criterion: b.Criterion, Variable: b.Variable, Kept: kept}
}
