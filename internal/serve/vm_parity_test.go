// VM budget parity against the service surface: gadt-serve classifies
// runaway programs into 422 codes by errors.Is over the typed
// interp.ErrFuelExhausted / ErrDepthExhausted sentinels (manager.go).
// The bytecode VM must produce errors that classify identically, so a
// deployment switching untraced runs to the vm backend keeps the same
// wire behavior for bombs.
package serve_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"gadt/internal/pascal/backend"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/serve"
)

// classify422 is the exact predicate serve's manager uses to map run
// errors to 422 codes.
func classify422(err error) string {
	switch {
	case errors.Is(err, interp.ErrFuelExhausted):
		return serve.CodeFuelExhausted
	case errors.Is(err, interp.ErrDepthExhausted):
		return serve.CodeDepthExhausted
	}
	return ""
}

func runBackend(t *testing.T, name, src string, cfg interp.Config) error {
	t.Helper()
	prog, err := parser.ParseProgram("bomb.pas", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.Select(name)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	cfg.Input = strings.NewReader("")
	cfg.Output = &out
	return b.NewRunner("", info, cfg).Run()
}

func TestVMBombsMatchServe422(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		cfg      interp.Config
		opts     serve.Options
		wantCode string
	}{
		{"fuel", fuelBomb, interp.Config{MaxSteps: 50_000, MaxDepth: 1_000_000},
			serve.Options{Fuel: 50_000, Depth: 1_000_000}, serve.CodeFuelExhausted},
		{"depth", depthBomb, interp.Config{MaxSteps: 100_000_000, MaxDepth: 100},
			serve.Options{Fuel: 100_000_000, Depth: 100}, serve.CodeDepthExhausted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ierr := runBackend(t, "interp", tc.src, tc.cfg)
			verr := runBackend(t, "vm", tc.src, tc.cfg)
			ic, vc := classify422(ierr), classify422(verr)
			if ic != tc.wantCode || vc != tc.wantCode {
				t.Fatalf("classification: interp=%q vm=%q, want both %q (interp err: %v; vm err: %v)",
					ic, vc, tc.wantCode, ierr, verr)
			}

			// The live server must agree with the offline classification.
			c, _, _ := newTestServer(t, tc.opts)
			status, raw := c.do("POST", "/v1/sessions", createBody(tc.src))
			if status != http.StatusUnprocessableEntity {
				t.Fatalf("server = %d, want 422\n%s", status, raw)
			}
			var resp serve.SessionResponse
			if err := json.Unmarshal(raw, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Error == nil || resp.Error.Code != tc.wantCode {
				t.Fatalf("server error=%+v, want code %q", resp.Error, tc.wantCode)
			}
		})
	}
}
