package serve

import (
	"gadt/internal/obs"
)

// pool is the execution backend: a fixed set of workers running the
// pipeline phases (artifact build + trace) for new sessions. The
// debugging question/answer loop does NOT occupy a worker — it blocks
// on human answers for arbitrarily long — so pool capacity bounds only
// the CPU-heavy phase, and a fuel bomb can at worst pin one worker for
// one bounded trace.
type pool struct {
	jobs  chan func()
	done  chan struct{}
	queue *obs.Gauge
}

// newPool starts n workers with a queue of cap qlen.
func newPool(n, qlen int, reg *obs.Registry) *pool {
	if n <= 0 {
		n = 4
	}
	if qlen <= 0 {
		qlen = n * 64
	}
	p := &pool{
		jobs:  make(chan func(), qlen),
		done:  make(chan struct{}),
		queue: reg.Gauge("serve.pool.queue"),
	}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	for {
		select {
		case job := <-p.jobs:
			p.queue.Add(-1)
			job()
		case <-p.done:
			return
		}
	}
}

// submit enqueues a job; it reports false when the queue is full (the
// caller maps that onto a 429).
func (p *pool) submit(job func()) bool {
	select {
	case p.jobs <- job:
		p.queue.Add(1)
		return true
	default:
		return false
	}
}

// close stops the workers. Queued jobs that never ran are dropped; the
// sessions they belonged to are torn down by the manager.
func (p *pool) close() { close(p.done) }
