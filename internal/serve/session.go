package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"

	"gadt/internal/assertion"
	"gadt/internal/debugger"
)

// State is a session's lifecycle position.
type State int

const (
	// StatePreparing: queued or running the pipeline (parse, sem,
	// transform, trace) on the worker pool.
	StatePreparing State = iota
	// StateDeciding: the debugger is between questions (an answer was
	// just delivered, or the first question is being selected).
	StateDeciding
	// StateWaiting: a question is pending; POST …/answer proceeds.
	StateWaiting
	// Terminal states.
	StateLocalized    // bug localized; diagnosis available
	StateInconclusive // search exhausted without localization
	StateFailed       // pipeline or debugging failed; error available
	StateClosed       // DELETEd by the client
	StateEvicted      // reaped by the idle timeout
)

func (s State) String() string {
	switch s {
	case StatePreparing:
		return "preparing"
	case StateDeciding:
		return "deciding"
	case StateWaiting:
		return "waiting"
	case StateLocalized:
		return "localized"
	case StateInconclusive:
		return "inconclusive"
	case StateFailed:
		return "failed"
	case StateClosed:
		return "closed"
	}
	return "evicted"
}

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool { return s >= StateLocalized }

// errSessionClosed aborts a blocked oracle Ask when the session is
// evicted, deleted, or the server shuts down.
var errSessionClosed = errors.New("serve: session closed")

// Session is one hosted debugging session. The channel-based oracle
// inverts the engine's synchronous Ask into the HTTP request/response
// cycle: the debug goroutine blocks in Ask until a client answer
// arrives over answerCh.
type Session struct {
	ID       string
	Created  time.Time
	Strategy debugger.Strategy
	Hash     string // program SHA-256
	Cache    CacheInfo

	db *assertion.DB // assertion answers land here, like the CLI's

	mu      sync.Mutex
	state   State
	touched time.Time
	changed chan struct{} // closed and replaced on every transition

	seq     int             // questions asked so far (== journal seq)
	pending *debugger.Query // non-nil exactly in StateWaiting
	output  string          // traced program output
	runErr  string          // runtime error of the traced execution
	outcome *debugger.Outcome
	failure *apiError // terminal failure (StateFailed)

	answerCh chan debugger.Answer
	quit     chan struct{}
	quitOnce sync.Once

	// onInactive runs once on the transition out of the active set
	// (terminal state reached); the manager decrements
	// serve.sessions.active with it.
	onInactive func()
	inactive   bool
}

func newSession(id string, strategy debugger.Strategy, hash string, onInactive func()) *Session {
	now := time.Now()
	return &Session{
		ID:         id,
		Created:    now,
		Strategy:   strategy,
		Hash:       hash,
		db:         assertion.NewDB(),
		state:      StatePreparing,
		touched:    now,
		changed:    make(chan struct{}),
		answerCh:   make(chan debugger.Answer, 1),
		quit:       make(chan struct{}),
		onInactive: onInactive,
	}
}

// setStateLocked transitions and wakes every waiter. Callers hold mu.
func (s *Session) setStateLocked(st State) {
	s.state = st
	if st.Terminal() && !s.inactive {
		s.inactive = true
		if s.onInactive != nil {
			s.onInactive()
		}
	}
	close(s.changed)
	s.changed = make(chan struct{})
}

// touch refreshes the idle-eviction clock.
func (s *Session) touch() {
	s.mu.Lock()
	s.touched = time.Now()
	s.mu.Unlock()
}

// Ask implements debugger.Oracle for the debug goroutine.
func (s *Session) Ask(q *debugger.Query) (debugger.Answer, error) {
	s.mu.Lock()
	if s.state.Terminal() {
		s.mu.Unlock()
		return debugger.Answer{}, errSessionClosed
	}
	s.seq++
	s.pending = q
	s.setStateLocked(StateWaiting)
	s.mu.Unlock()
	select {
	case a := <-s.answerCh:
		return a, nil
	case <-s.quit:
		return debugger.Answer{}, errSessionClosed
	}
}

// Deliver validates an answer against the pending question and hands it
// to the blocked oracle. The journal-entry echoes (seq, node, unit,
// query) are divergence-checked when present; a rejected answer leaves
// the session waiting so the client can correct and retry.
func (s *Session) Deliver(req AnswerRequest) *apiError {
	s.mu.Lock()
	switch s.state {
	case StateWaiting:
		// proceed
	case StateLocalized, StateInconclusive, StateFailed:
		st := s.state
		s.mu.Unlock()
		return errf(http.StatusConflict, CodeFinished, "session already finished (state %s)", st)
	case StateClosed:
		s.mu.Unlock()
		return errf(http.StatusGone, CodeClosed, "session was deleted")
	case StateEvicted:
		s.mu.Unlock()
		return errf(http.StatusGone, CodeEvicted, "session was evicted by the idle timeout")
	default:
		s.mu.Unlock()
		return errf(http.StatusConflict, CodeNotWaiting, "no pending question (state %s)", s.state)
	}
	q := s.pending
	seq := s.seq
	if apiErr := validateAnswer(req, q, seq); apiErr != nil {
		s.mu.Unlock()
		return apiErr
	}
	a, apiErr := toAnswer(req, q, s.db)
	if apiErr != nil {
		s.mu.Unlock()
		return apiErr
	}
	s.pending = nil
	s.setStateLocked(StateDeciding)
	s.mu.Unlock()
	// Exactly one Ask is outstanding per pending question and the
	// channel is buffered, so this never blocks.
	s.answerCh <- a
	return nil
}

// validateAnswer divergence-checks the journal-entry echoes.
func validateAnswer(req AnswerRequest, q *debugger.Query, seq int) *apiError {
	if req.Kind != "" && req.Kind != "query" {
		return errf(http.StatusBadRequest, CodeBadAnswer, "answer kind must be \"query\", got %q", req.Kind)
	}
	if req.Seq != 0 && req.Seq != seq {
		return errf(http.StatusConflict, CodeDivergence,
			"answer is for question %d but question %d is pending", req.Seq, seq)
	}
	if req.Node != 0 && req.Node != q.Node.ID {
		return errf(http.StatusConflict, CodeDivergence,
			"answer is for node %d but the pending question is about node %d", req.Node, q.Node.ID)
	}
	if req.Unit != "" && req.Unit != q.Node.Unit.Name {
		return errf(http.StatusConflict, CodeDivergence,
			"answer is for unit %q but the pending question is about %q", req.Unit, q.Node.Unit.Name)
	}
	if req.Query != "" && req.Query != q.Text {
		return errf(http.StatusConflict, CodeDivergence,
			"answer echoes query %q but the pending question is %q", req.Query, q.Text)
	}
	return nil
}

// toAnswer converts a validated request into an engine answer,
// mirroring the interactive oracle: assertions are parsed and stored,
// wrong-output names must name an output of the invocation.
func toAnswer(req AnswerRequest, q *debugger.Query, db *assertion.DB) (debugger.Answer, *apiError) {
	if req.Assertion != "" {
		a, err := assertion.Parse(q.Node.Unit.Name, req.Assertion)
		if err != nil {
			return debugger.Answer{}, errf(http.StatusBadRequest, CodeBadAnswer, "bad assertion: %v", err)
		}
		if db != nil {
			db.Add(a)
		}
		return debugger.Answer{Assertion: a}, nil
	}
	v, ok := debugger.ParseVerdict(req.Verdict)
	if !ok {
		return debugger.Answer{}, errf(http.StatusBadRequest, CodeBadAnswer,
			"verdict must be correct, incorrect or dont-know, got %q", req.Verdict)
	}
	if req.WrongOutput != "" {
		if v != debugger.Incorrect {
			return debugger.Answer{}, errf(http.StatusBadRequest, CodeBadAnswer,
				"wrong_output requires verdict \"incorrect\"")
		}
		found := false
		for _, name := range q.Outputs {
			if name == req.WrongOutput {
				found = true
			}
		}
		if !found {
			return debugger.Answer{}, errf(http.StatusBadRequest, CodeBadAnswer,
				"unknown output %q (outputs: %v)", req.WrongOutput, q.Outputs)
		}
	}
	return debugger.Answer{Verdict: v, WrongOutput: req.WrongOutput}, nil
}

// fail moves the session to StateFailed (no-op if already terminal).
func (s *Session) fail(e *apiError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return
	}
	s.failure = e
	s.setStateLocked(StateFailed)
}

// finish records the debugging outcome (or error) as the terminal
// state.
func (s *Session) finish(out *debugger.Outcome, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		// Evicted or deleted mid-session: keep that state.
		return
	}
	if err != nil {
		code, status := CodeDebugFailed, http.StatusInternalServerError
		switch {
		case isBudgetError(err):
			code, status = CodeQuestionsBudget, http.StatusConflict
		case strings.Contains(err.Error(), "nothing to search"):
			// A trivial or fully-pruned program leaves the debugger with
			// an empty search view — a property of the submission, not a
			// server fault.
			code, status = CodeNothingToDebug, http.StatusUnprocessableEntity
		}
		s.failure = errf(status, code, "debugging failed: %v", err)
		s.outcome = out
		s.setStateLocked(StateFailed)
		return
	}
	s.outcome = out
	if out.Localized() {
		s.setStateLocked(StateLocalized)
	} else {
		s.setStateLocked(StateInconclusive)
	}
}

// isBudgetError matches the engine's question-budget exhaustion.
func isBudgetError(err error) bool {
	return err != nil && strings.Contains(err.Error(), "question budget")
}

// closeWith tears the session down into a terminal state (Closed or
// Evicted), releasing a blocked debug goroutine.
func (s *Session) closeWith(st State) {
	s.mu.Lock()
	if !s.state.Terminal() {
		s.pending = nil
		s.setStateLocked(st)
	}
	s.mu.Unlock()
	s.quitOnce.Do(func() { close(s.quit) })
}

// awaitReady blocks until the session leaves the transient states
// (preparing/deciding) or ctx expires, then returns the snapshot.
func (s *Session) awaitReady(ctx context.Context) SessionResponse {
	for {
		s.mu.Lock()
		st := s.state
		ch := s.changed
		s.mu.Unlock()
		if st != StatePreparing && st != StateDeciding {
			break
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return s.Snapshot()
		}
	}
	return s.Snapshot()
}

// Snapshot renders the wire representation.
func (s *Session) Snapshot() SessionResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	cache := s.Cache
	resp := SessionResponse{
		ID:              s.ID,
		State:           s.state.String(),
		Strategy:        s.Strategy.String(),
		ProgramSHA256:   s.Hash,
		PipelineVersion: PipelineVersion,
		Cache:           &cache,
		Output:          s.output,
		RunError:        s.runErr,
		Questions:       s.seq,
	}
	if s.pending != nil {
		resp.Question = &Question{
			Seq:     s.seq,
			Node:    s.pending.Node.ID,
			Unit:    s.pending.Node.Unit.Name,
			Query:   s.pending.Text,
			Outputs: s.pending.Outputs,
		}
	}
	if s.outcome != nil && (s.state == StateLocalized || s.state == StateInconclusive) {
		d := &Diagnosis{
			Localized:    s.outcome.Localized(),
			Reason:       s.outcome.Reason,
			Questions:    s.outcome.Questions,
			ByMemo:       s.outcome.ByMemo,
			ByAssertions: s.outcome.ByAssertions,
			ByTests:      s.outcome.ByTests,
			Slices:       s.outcome.Slices,
		}
		if s.outcome.Bug != nil {
			d.Unit = s.outcome.Bug.Unit.Name
			d.Node = s.outcome.Bug.ID
		}
		resp.Diagnosis = d
	}
	if s.failure != nil {
		resp.Error = &ErrorBody{Code: s.failure.Code, Message: s.failure.Message}
	}
	return resp
}

// idleSince returns the last-touch time.
func (s *Session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.touched
}

// currentState returns the state under the lock.
func (s *Session) currentState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}
