// End-to-end API tests: full debugging sessions driven over HTTP with
// httptest, including byte-for-byte replay of a journal recorded by the
// gadt CLI (testdata/serve/sqrtest_session.jsonl).
package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"gadt/internal/corpus"
	"gadt/internal/debugger"
	"gadt/internal/gadt"
	"gadt/internal/obs"
	"gadt/internal/paper"
	"gadt/internal/serve"
)

// newTestServer starts the service on an httptest listener.
func newTestServer(t *testing.T, opts serve.Options) (*tclient, *obs.Registry, *serve.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := serve.NewServer(reg, opts)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return &tclient{t: t, base: hs.URL, hc: hs.Client()}, reg, srv
}

type tclient struct {
	t    *testing.T
	base string
	hc   *http.Client
}

// with rebinds the client to a subtest so failures land on it.
func (c *tclient) with(t *testing.T) *tclient {
	cp := *c
	cp.t = t
	return &cp
}

// doQuiet is do without *testing.T, safe to call from goroutines:
// transport errors come back as status 0.
func (c *tclient) doQuiet(method, path string, body []byte) (int, []byte) {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

// errf2 builds a plain error (fmt.Errorf alias for goroutine helpers).
func errf2(format string, args ...any) error { return fmt.Errorf(format, args...) }

// do issues a request and decodes the body.
func (c *tclient) do(method, path string, body []byte) (int, []byte) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

func (c *tclient) session(method, path string, body []byte, wantStatus int) serve.SessionResponse {
	c.t.Helper()
	status, raw := c.do(method, path, body)
	if status != wantStatus {
		c.t.Fatalf("%s %s = %d, want %d\nbody: %s", method, path, status, wantStatus, raw)
	}
	var sr serve.SessionResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		c.t.Fatalf("%s %s: bad JSON: %v\n%s", method, path, err, raw)
	}
	return sr
}

// create submits a program and waits for the first question.
func (c *tclient) create(program, input string) serve.SessionResponse {
	c.t.Helper()
	return c.createReq(serve.CreateRequest{Program: program, Input: input})
}

func (c *tclient) createReq(req serve.CreateRequest) serve.SessionResponse {
	c.t.Helper()
	body, _ := json.Marshal(req)
	return c.session("POST", "/v1/sessions", body, http.StatusCreated)
}

// answer posts one raw answer body (e.g. a verbatim journal line).
func (c *tclient) answer(id string, body []byte) serve.SessionResponse {
	c.t.Helper()
	return c.session("POST", "/v1/sessions/"+id+"/answer", body, http.StatusOK)
}

// recordJournal runs a local debugging session with the intended-
// semantics oracle under the same configuration the server applies
// (transform, lint hints, slicing, top-down) and returns the JSONL
// journal — the ground truth a served session must reproduce.
func recordJournal(t *testing.T, source, reference, input string) (lines []string, bugUnit string) {
	t.Helper()
	sys, err := gadt.Load("program.pas", source)
	if err != nil {
		t.Fatal(err)
	}
	hints := sys.LintHints()
	run, err := sys.Trace(input)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := gadt.IntendedOracle(reference)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	jw := debugger.NewJournalWriter(&buf)
	if err := jw.WriteHeader("program.pas", "top-down", input); err != nil {
		t.Fatal(err)
	}
	out, err := run.Debug(&debugger.JournalingOracle{Inner: oracle, Journal: jw},
		gadt.DebugConfig{Slicing: true, Hints: hints})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() {
		t.Fatal("local recording session did not localize")
	}
	for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		lines = append(lines, l)
	}
	return lines, out.Bug.Unit.Name
}

// replayJournal drives a served session by replaying journal lines
// verbatim as answer bodies, asserting zero divergence: every pending
// question must match the recorded entry byte for byte (seq, node,
// unit, query — the server additionally cross-checks the echoes).
func replayJournal(t *testing.T, c *tclient, file, program, input string, lines []string) serve.SessionResponse {
	t.Helper()
	resp := c.createReq(serve.CreateRequest{Program: program, Input: input, File: file})
	for _, line := range lines {
		var entry debugger.JournalEntry
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if entry.Kind != "query" {
			continue // header
		}
		if resp.State != "waiting" || resp.Question == nil {
			t.Fatalf("entry %d: session not waiting (state %s)", entry.Seq, resp.State)
		}
		q := resp.Question
		if q.Seq != entry.Seq || q.Node != entry.Node || q.Unit != entry.Unit || q.Query != entry.Query {
			t.Fatalf("divergence at question %d:\n  server: seq=%d node=%d unit=%q query=%q\n  journal: seq=%d node=%d unit=%q query=%q",
				entry.Seq, q.Seq, q.Node, q.Unit, q.Query, entry.Seq, entry.Node, entry.Unit, entry.Query)
		}
		resp = c.answer(resp.ID, []byte(line))
	}
	return resp
}

// TestReplayCLIJournal replays the checked-in journal recorded with
// `gadt -journal` against the server: same questions in the same
// order, zero divergences, same diagnosis. This is the acceptance
// criterion that the CLI journals and the server speak one protocol.
func TestReplayCLIJournal(t *testing.T) {
	program, err := os.ReadFile("../../testdata/sqrtest.pas")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile("../../testdata/serve/sqrtest_session.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	// The fixture must be a valid wire journal under the strict loader.
	j, err := debugger.LoadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("checked-in journal invalid: %v", err)
	}
	if len(j.Entries) == 0 {
		t.Fatal("checked-in journal has no entries")
	}
	if j.Header == nil {
		t.Fatal("checked-in journal has no session header")
	}

	c, _, _ := newTestServer(t, serve.Options{})
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	resp := replayJournal(t, c, j.Header.File, string(program), "", lines)

	if resp.State != "localized" || resp.Diagnosis == nil || !resp.Diagnosis.Localized {
		t.Fatalf("state = %s, diagnosis = %+v; want localized", resp.State, resp.Diagnosis)
	}
	if resp.Diagnosis.Unit != "decrement" {
		t.Errorf("localized %q, want decrement", resp.Diagnosis.Unit)
	}
	if resp.Questions != len(j.Entries) {
		t.Errorf("questions = %d, want %d (whole journal consumed, nothing extra)",
			resp.Questions, len(j.Entries))
	}
}

// TestCreateFixtureInSync pins the curl fixture used by `make
// serve-smoke` to the program it claims to contain.
func TestCreateFixtureInSync(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/serve/sqrtest_create.json")
	if err != nil {
		t.Fatal(err)
	}
	var req serve.CreateRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		t.Fatal(err)
	}
	program, err := os.ReadFile("../../testdata/sqrtest.pas")
	if err != nil {
		t.Fatal(err)
	}
	if req.Program != string(program) {
		t.Error("testdata/serve/sqrtest_create.json is out of sync with testdata/sqrtest.pas; regenerate with jq (see README)")
	}
}

// TestCorpusSessions runs a complete session for three subject
// programs: record a journal locally against the intended semantics,
// replay it over the API, and require the planted bug's unit in the
// diagnosis.
func TestCorpusSessions(t *testing.T) {
	subjects := []struct {
		name, buggy, fixed, input, bugUnit string
	}{
		{"sqrtest", paper.Sqrtest, paper.SqrtestFixed, "", "decrement"},
	}
	for _, p := range corpus.All() {
		if p.Buggy == "" {
			continue
		}
		subjects = append(subjects, struct {
			name, buggy, fixed, input, bugUnit string
		}{p.Name, p.Buggy, p.Source, p.Input, p.BugUnit})
	}
	if len(subjects) < 3 {
		t.Fatalf("want at least 3 subjects, have %d", len(subjects))
	}

	c, _, _ := newTestServer(t, serve.Options{})
	for _, sub := range subjects {
		sub := sub
		t.Run(sub.name, func(t *testing.T) {
			cc := c.with(t)
			lines, localUnit := recordJournal(t, sub.buggy, sub.fixed, sub.input)
			resp := replayJournal(t, cc, "program.pas", sub.buggy, sub.input, lines)
			if resp.State != "localized" || resp.Diagnosis == nil {
				t.Fatalf("state = %s, want localized", resp.State)
			}
			got := resp.Diagnosis.Unit
			if got != localUnit {
				t.Errorf("served diagnosis %q != local diagnosis %q", got, localUnit)
			}
			if got != sub.bugUnit && !strings.HasPrefix(got, sub.bugUnit+"_loop") {
				t.Errorf("localized %q, want %q (or its loop unit)", got, sub.bugUnit)
			}
		})
	}
}

// TestInteractiveSession drives a session with hand-written verdict
// answers (no journal, no echoes) and exercises GET, list and DELETE.
func TestInteractiveSession(t *testing.T) {
	c, _, _ := newTestServer(t, serve.Options{})

	// Units on the bug path of sqrtest answer "incorrect".
	onPath := map[string]bool{
		"sqrtest": true, "computs": true, "comput1": true,
		"partialsums": true, "sum2": true, "decrement": true,
	}
	resp := c.create(paper.Sqrtest, "")
	if resp.Output == "" {
		t.Error("create response missing traced program output")
	}
	for resp.State == "waiting" {
		verdict := "correct"
		if onPath[resp.Question.Unit] {
			verdict = "incorrect"
		}
		body, _ := json.Marshal(serve.AnswerRequest{Verdict: verdict})
		resp = c.answer(resp.ID, body)
	}
	if resp.State != "localized" || resp.Diagnosis == nil || resp.Diagnosis.Unit != "decrement" {
		t.Fatalf("state=%s diagnosis=%+v, want decrement localized", resp.State, resp.Diagnosis)
	}

	got := c.session("GET", "/v1/sessions/"+resp.ID, nil, http.StatusOK)
	if got.State != "localized" {
		t.Errorf("GET state = %s, want localized", got.State)
	}

	status, raw := c.do("GET", "/v1/sessions", nil)
	if status != http.StatusOK {
		t.Fatalf("list = %d", status)
	}
	var list serve.ListResponse
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 {
		t.Errorf("list has %d sessions, want 1", len(list.Sessions))
	}

	// Deleting a finished session is a 204 no-op: the terminal state is
	// kept (the tombstone stays inspectable until the janitor forgets it).
	if status, _ := c.do("DELETE", "/v1/sessions/"+resp.ID, nil); status != http.StatusNoContent {
		t.Errorf("DELETE finished = %d, want 204", status)
	}
	got = c.session("GET", "/v1/sessions/"+resp.ID, nil, http.StatusOK)
	if got.State != "localized" {
		t.Errorf("state after DELETE of finished session = %s, want localized kept", got.State)
	}

	// Deleting a waiting session closes it and unblocks the debugger.
	waiting := c.create(paper.Sqrtest, "")
	if waiting.State != "waiting" {
		t.Fatalf("second session state = %s, want waiting", waiting.State)
	}
	if status, _ := c.do("DELETE", "/v1/sessions/"+waiting.ID, nil); status != http.StatusNoContent {
		t.Errorf("DELETE waiting = %d, want 204", status)
	}
	got = c.session("GET", "/v1/sessions/"+waiting.ID, nil, http.StatusOK)
	if got.State != "closed" {
		t.Errorf("state after DELETE of waiting session = %s, want closed", got.State)
	}
}

// TestCacheSharing submits the same program twice and a different one
// once: the second submission must hit both cache layers.
func TestCacheSharing(t *testing.T) {
	c, reg, _ := newTestServer(t, serve.Options{})

	first := c.create(paper.Sqrtest, "")
	if first.Cache == nil || first.Cache.Artifact != "miss" || first.Cache.Trace != "miss" {
		t.Errorf("first session cache = %+v, want miss/miss", first.Cache)
	}
	second := c.create(paper.Sqrtest, "")
	if second.Cache == nil || second.Cache.Artifact != "hit" || second.Cache.Trace != "hit" {
		t.Errorf("second session cache = %+v, want hit/hit", second.Cache)
	}
	if first.ProgramSHA256 != second.ProgramSHA256 {
		t.Error("same program, different hashes")
	}
	third := c.create(paper.PQR, "")
	if third.Cache == nil || third.Cache.Artifact != "miss" {
		t.Errorf("different program cache = %+v, want artifact miss", third.Cache)
	}

	hits := reg.CounterVec("serve.cache.hits", "layer")
	misses := reg.CounterVec("serve.cache.misses", "layer")
	if got := misses.With("artifact").Value(); got != 2 {
		t.Errorf("artifact misses = %d, want 2", got)
	}
	if got := hits.With("artifact").Value(); got != 1 {
		t.Errorf("artifact hits = %d, want 1", got)
	}
	if got := misses.With("trace").Value(); got != 2 {
		t.Errorf("trace misses = %d, want 2", got)
	}
	if got := hits.With("trace").Value(); got != 1 {
		t.Errorf("trace hits = %d, want 1", got)
	}
}

// TestOpsSurfaceOnSameListener checks that /metrics and /healthz are
// served by the API listener and carry the per-endpoint counters.
func TestOpsSurfaceOnSameListener(t *testing.T) {
	c, _, _ := newTestServer(t, serve.Options{})
	c.create(paper.Sqrtest, "")

	status, body := c.do("GET", "/healthz", nil)
	if status != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz = %d %q", status, body)
	}
	status, body = c.do("GET", "/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("/metrics = %d", status)
	}
	for _, want := range []string{
		`serve_requests{endpoint="sessions.create"} 1`,
		"serve_sessions_active 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestStrategies runs the same subject under every traversal via the
// API (answers from locally recorded journals per strategy).
func TestStrategies(t *testing.T) {
	c, _, _ := newTestServer(t, serve.Options{})
	for _, strategy := range []string{"top-down", "divide", "weighted", "bottom-up"} {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			cc := c.with(t)
			// Record locally under this strategy.
			sys, err := gadt.Load("program.pas", paper.Sqrtest)
			if err != nil {
				t.Fatal(err)
			}
			run, err := sys.Trace("")
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := gadt.IntendedOracle(paper.SqrtestFixed)
			if err != nil {
				t.Fatal(err)
			}
			var buf strings.Builder
			jw := debugger.NewJournalWriter(&buf)
			st, ok := debugger.ParseStrategy(strategy)
			if !ok {
				t.Fatalf("unknown strategy %q", strategy)
			}
			out, err := run.Debug(&debugger.JournalingOracle{Inner: oracle, Journal: jw},
				gadt.DebugConfig{Strategy: st, Slicing: true, Hints: sys.LintHints()})
			if err != nil {
				t.Fatal(err)
			}

			// Replay over the API under the same strategy.
			body, _ := json.Marshal(serve.CreateRequest{Program: paper.Sqrtest, Strategy: strategy})
			resp := cc.session("POST", "/v1/sessions", body, http.StatusCreated)
			for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
				if resp.State != "waiting" {
					t.Fatalf("not waiting: %s", resp.State)
				}
				resp = cc.answer(resp.ID, []byte(line))
			}
			if resp.State != "localized" || resp.Diagnosis.Unit != out.Bug.Unit.Name {
				t.Fatalf("served %+v, local %q", resp.Diagnosis, out.Bug.Unit.Name)
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
