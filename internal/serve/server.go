package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gadt/internal/obs"
)

// Server is the HTTP front of the debugging service. One mux carries
// both the /v1 session API and the obs operations surface (/metrics,
// /healthz, pprof …), so a single listener serves traffic and
// observability.
type Server struct {
	reg *obs.Registry
	mgr *Manager
	mux *http.ServeMux

	requests *obs.CounterVec   // serve.requests{endpoint=…}
	statuses *obs.CounterVec   // serve.responses{status=…}
	duration *obs.HistogramVec // serve.request.duration{endpoint=…}
	maxBody  int64
}

// NewServer wires the API routes and the ops surface onto one handler.
func NewServer(reg *obs.Registry, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		reg:      reg,
		mgr:      NewManager(reg, opts),
		mux:      http.NewServeMux(),
		requests: reg.CounterVec("serve.requests", "endpoint"),
		statuses: reg.CounterVec("serve.responses", "status"),
		duration: reg.HistogramVec("serve.request.duration", "endpoint"),
		maxBody:  opts.MaxBody,
	}
	s.mux.HandleFunc("POST /v1/sessions", s.instrument("sessions.create", s.handleCreate))
	s.mux.HandleFunc("GET /v1/sessions", s.instrument("sessions.list", s.handleList))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("sessions.get", s.handleGet))
	s.mux.HandleFunc("POST /v1/sessions/{id}/answer", s.instrument("sessions.answer", s.handleAnswer))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("sessions.delete", s.handleDelete))
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	obs.RegisterOps(s.mux, reg)
	return s
}

// Handler returns the combined API + ops handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the session manager (tests drive eviction sweeps).
func (s *Server) Manager() *Manager { return s.mgr }

// Close shuts down the service core.
func (s *Server) Close() { s.mgr.Close() }

// instrument wraps a handler with the per-endpoint request counter and
// duration histogram, and the body-size cap.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.requests.With(endpoint)
	dur := s.duration.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		h(w, r)
		dur.Observe(time.Since(start))
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "gadt-serve: debugging as a service")
	fmt.Fprintln(w, "  POST   /v1/sessions             submit program + input, get the first question")
	fmt.Fprintln(w, "  GET    /v1/sessions             list sessions")
	fmt.Fprintln(w, "  GET    /v1/sessions/{id}        session state, pending question, diagnosis")
	fmt.Fprintln(w, "  POST   /v1/sessions/{id}/answer answer the pending question (journal-entry JSON)")
	fmt.Fprintln(w, "  DELETE /v1/sessions/{id}        end a session")
	for _, p := range obs.OpsPaths {
		fmt.Fprintf(w, "  GET    %s\n", p)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, apiErr := readBody(r)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	var req CreateRequest
	if apiErr := decodeJSON(body, &req); apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	sess, apiErr := s.mgr.Create(req)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.mgr.opts.PrepareWait)
	defer cancel()
	resp := sess.awaitReady(ctx)
	// A pipeline rejection (parse error, fuel bomb …) surfaces as the
	// session's terminal failure: answer with its status so the client
	// sees a clean 4xx, and keep the session id in the body for
	// inspection.
	if resp.State == StateFailed.String() && resp.Error != nil {
		s.writeJSON(w, statusForCode(resp.Error.Code), resp)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+sess.ID)
	s.writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, ListResponse{Sessions: s.mgr.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, apiErr := s.mgr.Get(r.PathValue("id"))
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	sess.touch()
	s.writeJSON(w, http.StatusOK, sess.Snapshot())
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	sess, apiErr := s.mgr.Get(r.PathValue("id"))
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	sess.touch()
	body, apiErr := readBody(r)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	var req AnswerRequest
	if apiErr := decodeJSON(body, &req); apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	if apiErr := sess.Deliver(req); apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.mgr.opts.AnswerWait)
	defer cancel()
	s.writeJSON(w, http.StatusOK, sess.awaitReady(ctx))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if apiErr := s.mgr.Delete(r.PathValue("id")); apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	s.statuses.With("204").Inc()
	w.WriteHeader(http.StatusNoContent)
}

// statusForCode maps a stable error code back onto its HTTP status for
// terminal-session responses.
func statusForCode(code string) int {
	switch code {
	case CodeParseError, CodeSemError, CodeTransformError,
		CodeFuelExhausted, CodeDepthExhausted, CodeEmptyTree, CodeNothingToDebug:
		return http.StatusUnprocessableEntity
	case CodeNotFound:
		return http.StatusNotFound
	case CodeEvicted, CodeClosed:
		return http.StatusGone
	case CodeFinished, CodeNotWaiting, CodeDivergence, CodeQuestionsBudget:
		return http.StatusConflict
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeBusy:
		return http.StatusTooManyRequests
	case CodeBadRequest, CodeBadAnswer:
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.statuses.With(fmt.Sprint(status)).Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func (s *Server) writeError(w http.ResponseWriter, e *apiError) {
	s.writeJSON(w, e.Status, struct {
		Error ErrorBody `json:"error"`
	}{ErrorBody{Code: e.Code, Message: e.Message}})
}

// readAll drains the request body (already wrapped by MaxBytesReader).
func readAll(r *http.Request) ([]byte, error) {
	return io.ReadAll(r.Body)
}
