// Package serve hosts the GADT pipeline as a long-running HTTP/JSON
// service: many simultaneous algorithmic-debugging sessions, each an
// oracle question/answer loop over the wire, backed by a worker pool
// with per-session fuel/depth budgets and a content-addressed cache
// that computes parse/sem/transform artifacts and execution traces
// once per (program hash, pipeline version) and shares them across
// sessions.
//
// The wire schema is the session-journal JSONL entry format from
// internal/debugger: every pending question is rendered as a journal
// "query" record, and an answer request accepts exactly a journal
// entry's fields — so a session recorded with `gadt -journal` replays
// against the server verbatim, line by line, with server-side
// divergence checking on the seq/node/unit/query echoes.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"gadt/internal/debugger"
)

// PipelineVersion is baked into every cache key: bumping it after a
// semantics-affecting change to parse/sem/transform/trace invalidates
// all cached artifacts at once.
const PipelineVersion = "gadt-pipeline/1"

// CreateRequest is the body of POST /v1/sessions.
type CreateRequest struct {
	// Program is the Pascal source of the misbehaving program.
	Program string `json:"program"`
	// File names the program in diagnostics and loop-query text
	// (default "program.pas"). Loop questions embed file:line, so when
	// replaying a CLI journal set this to the path in its session
	// header to keep the query echoes byte-for-byte identical.
	File string `json:"file,omitempty"`
	// Input is fed to read/readln during the traced execution.
	Input string `json:"input,omitempty"`
	// Strategy selects the traversal: "top-down" (default), "divide"
	// (alias "divide-and-query"), "weighted" (alias "weighted-dq",
	// "weighted-divide-and-query") or "bottom-up".
	Strategy string `json:"strategy,omitempty"`
	// The pipeline defaults mirror the gadt CLI: transformation on,
	// plint hints on, dynamic slicing on. A journal recorded by the CLI
	// with default flags therefore replays against a default session.
	NoTransform bool `json:"no_transform,omitempty"`
	NoLint      bool `json:"no_lint,omitempty"`
	NoSlicing   bool `json:"no_slicing,omitempty"`
	// MaxQuestions bounds oracle interactions (0 = engine default).
	MaxQuestions int `json:"max_questions,omitempty"`
}

// AnswerRequest is the body of POST /v1/sessions/{id}/answer. Its
// fields are exactly the journal-entry fields: a `gadt -journal` line
// is a valid answer body. Seq, Node, Unit and Query, when set, are
// echoes of the pending question; a mismatch is a replay divergence
// and rejected without consuming the answer.
type AnswerRequest struct {
	Kind        string `json:"kind,omitempty"` // "" or "query"
	Seq         int    `json:"seq,omitempty"`
	Node        int64  `json:"node,omitempty"`
	Unit        string `json:"unit,omitempty"`
	Query       string `json:"query,omitempty"`
	Verdict     string `json:"verdict,omitempty"`
	WrongOutput string `json:"wrong_output,omitempty"`
	Assertion   string `json:"assertion,omitempty"`
}

// Question is a pending oracle question, shaped like a journal entry.
type Question struct {
	Seq     int      `json:"seq"`
	Node    int64    `json:"node"`
	Unit    string   `json:"unit"`
	Query   string   `json:"query"`
	Outputs []string `json:"outputs,omitempty"`
}

// Diagnosis is the terminal result of a localized (or exhausted)
// session.
type Diagnosis struct {
	Localized    bool   `json:"localized"`
	Unit         string `json:"unit,omitempty"`
	Node         int64  `json:"node,omitempty"`
	Reason       string `json:"reason,omitempty"`
	Questions    int    `json:"questions"`
	ByMemo       int    `json:"by_memo,omitempty"`
	ByAssertions int    `json:"by_assertions,omitempty"`
	ByTests      int    `json:"by_tests,omitempty"`
	Slices       int    `json:"slices,omitempty"`
}

// CacheInfo reports, per layer, whether this session's pipeline work
// was shared ("hit") or computed ("miss").
type CacheInfo struct {
	Artifact string `json:"artifact,omitempty"`
	Trace    string `json:"trace,omitempty"`
}

// SessionResponse is the representation of a session returned by every
// session endpoint.
type SessionResponse struct {
	ID              string     `json:"id"`
	State           string     `json:"state"`
	Strategy        string     `json:"strategy"`
	ProgramSHA256   string     `json:"program_sha256"`
	PipelineVersion string     `json:"pipeline_version"`
	Cache           *CacheInfo `json:"cache,omitempty"`
	Output          string     `json:"output,omitempty"`
	RunError        string     `json:"run_error,omitempty"`
	Questions       int        `json:"questions"`
	Question        *Question  `json:"question,omitempty"`
	Diagnosis       *Diagnosis `json:"diagnosis,omitempty"`
	Error           *ErrorBody `json:"error,omitempty"`
}

// ListResponse is the body of GET /v1/sessions.
type ListResponse struct {
	Sessions []SessionResponse `json:"sessions"`
}

// ErrorBody is the JSON error envelope. Code is a stable
// machine-readable slug; clients switch on it, not on Message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stable error codes.
const (
	CodeBadRequest      = "bad_request"
	CodeBodyTooLarge    = "body_too_large"
	CodeParseError      = "parse_error"
	CodeSemError        = "sem_error"
	CodeTransformError  = "transform_error"
	CodeFuelExhausted   = "fuel_exhausted"
	CodeDepthExhausted  = "depth_exhausted"
	CodeEmptyTree       = "empty_tree"
	CodeNothingToDebug  = "nothing_to_debug"
	CodeNotFound        = "session_not_found"
	CodeFinished        = "session_finished"
	CodeEvicted         = "session_evicted"
	CodeClosed          = "session_closed"
	CodeNotWaiting      = "not_waiting"
	CodeDivergence      = "answer_divergence"
	CodeBadAnswer       = "bad_answer"
	CodeBusy            = "server_busy"
	CodeSessionLimit    = "session_limit"
	CodeDebugFailed     = "debug_failed"
	CodeQuestionsBudget = "question_budget_exhausted"
)

// apiError is an error carrying an HTTP status and a stable code.
type apiError struct {
	Status  int
	Code    string
	Message string
}

func (e *apiError) Error() string { return e.Code + ": " + e.Message }

func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// parseStrategy maps wire strategy names (the gadt CLI spelling and the
// journal-header spelling) onto engine strategies.
func parseStrategy(s string) (debugger.Strategy, *apiError) {
	if strat, ok := debugger.ParseStrategy(s); ok {
		return strat, nil
	}
	return 0, errf(http.StatusBadRequest, CodeBadRequest, "unknown strategy %q", s)
}

// decodeJSON strictly decodes a request body into v: unknown fields,
// trailing data and oversized bodies are errors. The returned apiError
// distinguishes body_too_large (413) from bad_request (400).
func decodeJSON(body []byte, v any) *apiError {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf(http.StatusBadRequest, CodeBadRequest, "invalid JSON body: %v", err)
	}
	// A second document (or non-whitespace trailing bytes) means the
	// body is not exactly one JSON object.
	if dec.More() {
		return errf(http.StatusBadRequest, CodeBadRequest, "trailing data after JSON body")
	}
	return nil
}

// readBody drains the (already size-capped) request body, mapping the
// over-limit error onto the stable 413 code.
func readBody(r *http.Request) ([]byte, *apiError) {
	body, err := readAll(r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, errf(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		}
		return nil, errf(http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
	}
	return body, nil
}
