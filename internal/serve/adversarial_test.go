// Adversarial tests: hostile programs and malformed requests must come
// back as clean, stable error codes — never a hung worker or a 500.
package serve_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"gadt/internal/paper"
	"gadt/internal/serve"
)

// fuelBomb loops forever without deep recursion: it exhausts the
// statement budget first.
const fuelBomb = `program bomb;
var x: integer;
begin
  x := 0;
  while x >= 0 do
    x := 1;
  writeln(x)
end.
`

// depthBomb recurses without bound: it exhausts the frame budget.
const depthBomb = `program bomb;
var r: integer;

procedure dig(n: integer; var r: integer);
begin
  dig(n + 1, r);
end;

begin
  dig(0, r);
  writeln(r)
end.
`

// errBody decodes the error envelope.
func errBody(t *testing.T, raw []byte) serve.ErrorBody {
	t.Helper()
	var e struct {
		Error serve.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body is not the envelope: %v\n%s", err, raw)
	}
	return e.Error
}

func createBody(program string) []byte {
	b, _ := json.Marshal(serve.CreateRequest{Program: program})
	return b
}

func TestFuelBombRejected(t *testing.T) {
	// A tiny fuel budget and a huge depth budget force the fuel
	// sentinel; the transformed program turns the while loop into
	// recursive loop units, so depth must not trip first.
	c, _, _ := newTestServer(t, serve.Options{Fuel: 50_000, Depth: 1_000_000})
	status, raw := c.do("POST", "/v1/sessions", createBody(fuelBomb))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("fuel bomb = %d, want 422\n%s", status, raw)
	}
	var resp serve.SessionResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.State != "failed" || resp.Error == nil || resp.Error.Code != serve.CodeFuelExhausted {
		t.Fatalf("state=%s error=%+v, want failed/fuel_exhausted", resp.State, resp.Error)
	}

	// Resubmission is served from the (negative) trace cache.
	status, raw = c.do("POST", "/v1/sessions", createBody(fuelBomb))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("fuel bomb resubmit = %d, want 422\n%s", status, raw)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cache == nil || resp.Cache.Trace != "hit" {
		t.Errorf("resubmitted bomb cache = %+v, want trace hit", resp.Cache)
	}
}

func TestDepthBombRejected(t *testing.T) {
	c, _, _ := newTestServer(t, serve.Options{Fuel: 100_000_000, Depth: 100})
	status, raw := c.do("POST", "/v1/sessions", createBody(depthBomb))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("depth bomb = %d, want 422\n%s", status, raw)
	}
	var resp serve.SessionResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.State != "failed" || resp.Error == nil || resp.Error.Code != serve.CodeDepthExhausted {
		t.Fatalf("state=%s error=%+v, want failed/depth_exhausted", resp.State, resp.Error)
	}
}

func TestMalformedBodies(t *testing.T) {
	c, _, _ := newTestServer(t, serve.Options{})
	cases := []struct {
		name, body string
		wantStatus int
		wantCode   string
	}{
		{"empty", ``, http.StatusBadRequest, serve.CodeBadRequest},
		{"not json", `this is not json`, http.StatusBadRequest, serve.CodeBadRequest},
		{"truncated", `{"program": "prog`, http.StatusBadRequest, serve.CodeBadRequest},
		{"unknown field", `{"program": "x", "exploit": true}`, http.StatusBadRequest, serve.CodeBadRequest},
		{"trailing data", `{"program": "x"} {"program": "y"}`, http.StatusBadRequest, serve.CodeBadRequest},
		{"wrong type", `{"program": 42}`, http.StatusBadRequest, serve.CodeBadRequest},
		{"empty program", `{}`, http.StatusBadRequest, serve.CodeBadRequest},
		{"bad strategy", `{"program": "x", "strategy": "quantum"}`, http.StatusBadRequest, serve.CodeBadRequest},
		{"unparsable program", `{"program": "not pascal"}`, http.StatusUnprocessableEntity, serve.CodeParseError},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			status, raw := c.with(t).do("POST", "/v1/sessions", []byte(tc.body))
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d\n%s", status, tc.wantStatus, raw)
			}
			code := ""
			if tc.wantStatus == http.StatusUnprocessableEntity {
				// Pipeline failures answer with the session body.
				var resp serve.SessionResponse
				if err := json.Unmarshal(raw, &resp); err != nil || resp.Error == nil {
					t.Fatalf("not a session body: %v\n%s", err, raw)
				}
				code = resp.Error.Code
			} else {
				code = errBody(t, raw).Code
			}
			if code != tc.wantCode {
				t.Errorf("code = %q, want %q", code, tc.wantCode)
			}
		})
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	c, _, _ := newTestServer(t, serve.Options{MaxBody: 4096})
	huge, _ := json.Marshal(serve.CreateRequest{Program: strings.Repeat("x", 64<<10)})
	status, raw := c.do("POST", "/v1/sessions", huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413\n%s", status, raw)
	}
	if code := errBody(t, raw).Code; code != serve.CodeBodyTooLarge {
		t.Errorf("code = %q, want %q", code, serve.CodeBodyTooLarge)
	}
}

// TestAnswerLifecycleCodes pins the stable error codes for answering
// sessions in every wrong state: unknown, finished, deleted, evicted.
func TestAnswerLifecycleCodes(t *testing.T) {
	c, _, srv := newTestServer(t, serve.Options{IdleTimeout: time.Hour})
	correct := []byte(`{"verdict":"correct"}`)

	status, raw := c.do("POST", "/v1/sessions/s-doesnotexist/answer", correct)
	if status != http.StatusNotFound || errBody(t, raw).Code != serve.CodeNotFound {
		t.Errorf("unknown id: %d %s, want 404 session_not_found", status, raw)
	}

	// Finish a session, then answer it again.
	resp := c.create(paper.Sqrtest, "")
	for resp.State == "waiting" {
		resp = c.answer(resp.ID, correct)
	}
	status, raw = c.do("POST", "/v1/sessions/"+resp.ID+"/answer", correct)
	if status != http.StatusConflict || errBody(t, raw).Code != serve.CodeFinished {
		t.Errorf("finished: %d %s, want 409 session_finished", status, raw)
	}

	// Delete a waiting session, then answer it.
	resp = c.create(paper.PQR, "")
	if status, _ := c.do("DELETE", "/v1/sessions/"+resp.ID, nil); status != http.StatusNoContent {
		t.Fatalf("DELETE = %d", status)
	}
	status, raw = c.do("POST", "/v1/sessions/"+resp.ID+"/answer", correct)
	if status != http.StatusGone || errBody(t, raw).Code != serve.CodeClosed {
		t.Errorf("deleted: %d %s, want 410 session_closed", status, raw)
	}

	// Evict a waiting session via a sweep at a future instant, then
	// answer it: 410 session_evicted. A much later sweep forgets the
	// tombstone entirely: 404.
	resp = c.create(paper.Sqrtest, "")
	srv.Manager().Sweep(time.Now().Add(2 * time.Hour))
	status, raw = c.do("POST", "/v1/sessions/"+resp.ID+"/answer", correct)
	if status != http.StatusGone || errBody(t, raw).Code != serve.CodeEvicted {
		t.Errorf("evicted: %d %s, want 410 session_evicted", status, raw)
	}
	srv.Manager().Sweep(time.Now().Add(48 * time.Hour))
	status, raw = c.do("POST", "/v1/sessions/"+resp.ID+"/answer", correct)
	if status != http.StatusNotFound || errBody(t, raw).Code != serve.CodeNotFound {
		t.Errorf("forgotten: %d %s, want 404 session_not_found", status, raw)
	}
}

// TestBadAnswers pins rejection of invalid answers and divergent
// echoes; the session stays waiting and remains answerable.
func TestBadAnswers(t *testing.T) {
	c, _, _ := newTestServer(t, serve.Options{})
	resp := c.create(paper.Sqrtest, "")
	if resp.State != "waiting" {
		t.Fatalf("state = %s", resp.State)
	}
	id, q := resp.ID, resp.Question

	cases := []struct {
		name, body string
		wantStatus int
		wantCode   string
	}{
		{"no verdict", `{}`, http.StatusBadRequest, serve.CodeBadAnswer},
		{"bad verdict", `{"verdict":"maybe"}`, http.StatusBadRequest, serve.CodeBadAnswer},
		{"bad kind", `{"kind":"session","verdict":"correct"}`, http.StatusBadRequest, serve.CodeBadAnswer},
		{"wrong_output without incorrect", `{"verdict":"correct","wrong_output":"x"}`, http.StatusBadRequest, serve.CodeBadAnswer},
		{"unknown wrong_output", `{"verdict":"incorrect","wrong_output":"nosuchvar"}`, http.StatusBadRequest, serve.CodeBadAnswer},
		{"bad assertion", `{"assertion":"not a valid assertion ((("}`, http.StatusBadRequest, serve.CodeBadAnswer},
		{"seq echo mismatch", `{"seq":99,"verdict":"correct"}`, http.StatusConflict, serve.CodeDivergence},
		{"node echo mismatch", `{"node":123456,"verdict":"correct"}`, http.StatusConflict, serve.CodeDivergence},
		{"unit echo mismatch", `{"unit":"nosuchunit","verdict":"correct"}`, http.StatusConflict, serve.CodeDivergence},
		{"query echo mismatch", `{"query":"wrong question?","verdict":"correct"}`, http.StatusConflict, serve.CodeDivergence},
	}
	for _, tc := range cases {
		status, raw := c.do("POST", "/v1/sessions/"+id+"/answer", []byte(tc.body))
		if status != tc.wantStatus || errBody(t, raw).Code != tc.wantCode {
			t.Errorf("%s: %d %s, want %d %s", tc.name, status, raw, tc.wantStatus, tc.wantCode)
		}
	}

	// None of that consumed the question: the same one is still pending
	// and a valid answer with full echoes goes through.
	got := c.session("GET", "/v1/sessions/"+id, nil, http.StatusOK)
	if got.State != "waiting" || got.Question == nil || got.Question.Seq != q.Seq || got.Question.Query != q.Query {
		t.Fatalf("session no longer waiting on the same question: %+v", got.Question)
	}
	ans, _ := json.Marshal(serve.AnswerRequest{
		Kind: "query", Seq: q.Seq, Node: q.Node, Unit: q.Unit, Query: q.Query, Verdict: "correct",
	})
	after := c.answer(id, ans)
	if after.Questions != q.Seq+1 && after.State == "waiting" {
		t.Errorf("valid answer after rejections did not advance: %+v", after)
	}
}

// TestQuestionBudget pins the max_questions bound.
func TestQuestionBudget(t *testing.T) {
	c, _, _ := newTestServer(t, serve.Options{})
	body, _ := json.Marshal(serve.CreateRequest{Program: paper.Sqrtest, MaxQuestions: 2})
	resp := c.session("POST", "/v1/sessions", body, http.StatusCreated)
	for resp.State == "waiting" {
		resp = c.answer(resp.ID, []byte(`{"verdict":"incorrect"}`))
	}
	if resp.State != "failed" || resp.Error == nil || resp.Error.Code != serve.CodeQuestionsBudget {
		t.Fatalf("state=%s error=%+v, want failed/question_budget_exhausted", resp.State, resp.Error)
	}
}
