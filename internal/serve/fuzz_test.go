package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"gadt/internal/obs"
	"gadt/internal/paper"
	"gadt/internal/serve"
)

// FuzzSessionAPI throws arbitrary create and answer bodies at the real
// handler. The invariants: the server never panics, never hangs, never
// answers a request with a 5xx (hostile input is always a clean 4xx),
// and every JSON endpoint returns a decodable body.
func FuzzSessionAPI(f *testing.F) {
	// Seeds: the checked-in curl fixture, a journal answer line, and a
	// sampler of malformed shapes the adversarial tests pin.
	if fixture, err := os.ReadFile("../../testdata/serve/sqrtest_create.json"); err == nil {
		f.Add(string(fixture), `{"verdict":"correct"}`)
	}
	if journal, err := os.ReadFile("../../testdata/serve/sqrtest_session.jsonl"); err == nil {
		lines := bytes.Split(bytes.TrimSpace(journal), []byte("\n"))
		f.Add(`{"program":"program x; begin writeln(1) end."}`, string(lines[len(lines)-1]))
	}
	f.Add(`{"program":"`+`program b; var x: integer; begin x:=0; while x>=0 do x:=1 end.`+`"}`,
		`{"verdict":"incorrect","wrong_output":"x"}`)
	f.Add(`{"program": 42}`, `null`)
	f.Add(`not json`, `{"seq":99,"verdict":"correct"}`)
	f.Add(`{"program":"x","exploit":true}`, `{"assertion":"((("}`)
	f.Add(``, ``)

	fixed, _ := json.Marshal(serve.CreateRequest{Program: paper.SqrtestFixed})

	f.Fuzz(func(t *testing.T, createBody, answerBody string) {
		reg := obs.NewRegistry()
		srv := serve.NewServer(reg, serve.Options{
			Fuel:        20_000,
			Depth:       200,
			MaxBody:     16 << 10,
			PrepareWait: 10 * time.Second,
			AnswerWait:  10 * time.Second,
		})
		defer srv.Close()
		h := srv.Handler()

		do := func(method, path string, body []byte) (int, []byte) {
			req := httptest.NewRequest(method, path, bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			return rec.Code, rec.Body.Bytes()
		}
		checkJSON := func(status int, raw []byte, what string) {
			if status >= 500 {
				t.Fatalf("%s: server error %d: %s", what, status, raw)
			}
			var v any
			if err := json.Unmarshal(raw, &v); err != nil {
				t.Fatalf("%s: status %d with undecodable body: %v\n%s", what, status, err, raw)
			}
		}

		status, raw := do("POST", "/v1/sessions", []byte(createBody))
		checkJSON(status, raw, "fuzzed create")
		if status == http.StatusCreated {
			var resp serve.SessionResponse
			if err := json.Unmarshal(raw, &resp); err != nil {
				t.Fatalf("created session body: %v\n%s", err, raw)
			}
			status, raw = do("POST", "/v1/sessions/"+resp.ID+"/answer", []byte(answerBody))
			checkJSON(status, raw, "fuzzed answer")
			status, raw = do("GET", "/v1/sessions/"+resp.ID, nil)
			checkJSON(status, raw, "get after fuzzed answer")
		}

		// A well-formed session against the same server must be
		// unaffected by whatever the fuzzed bodies did.
		status, raw = do("POST", "/v1/sessions", fixed)
		checkJSON(status, raw, "well-formed create")
		if status != http.StatusCreated {
			t.Fatalf("well-formed create = %d after fuzzed traffic: %s", status, raw)
		}
		var resp serve.SessionResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		status, raw = do("POST", "/v1/sessions/"+resp.ID+"/answer", []byte(answerBody))
		checkJSON(status, raw, "fuzzed answer to well-formed session")
		if status, _ := do("DELETE", "/v1/sessions/"+resp.ID, nil); status != http.StatusNoContent {
			t.Fatalf("delete = %d", status)
		}
	})
}
