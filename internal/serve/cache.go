package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"gadt/internal/analysis/lint"
	"gadt/internal/exectree"
	"gadt/internal/obs"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/dynamic"
	"gadt/internal/transform"
)

// The content-addressed cache has two layers, both keyed by the
// program's SHA-256 plus PipelineVersion plus the pipeline flags that
// change the result:
//
//	artifact  parse + sem + transform + lint hints   (input-independent)
//	trace     execution tree + dynamic-dependence recorder + output
//	          (adds the input hash and the fuel/depth budgets)
//
// Entries are built once under singleflight — concurrent sessions for
// the same program block on the first builder instead of duplicating
// work — and shared read-only afterwards: the debugger keeps all
// per-session state (view, memo, assertion DB) outside the tree, and
// dynamic.Recorder.SliceOnOutput only reads recorded events, so one
// trace can back any number of concurrent sessions. Build errors are
// cached too (they are deterministic for a given key), which makes
// hostile resubmission of a fuel bomb cost one lookup, not one trace.

// Artifact is the input-independent pipeline product for one program.
type Artifact struct {
	Hash string // hex SHA-256 of the source

	// Info is the semantic analysis of the ORIGINAL program; Transformed
	// is nil when the session asked for -no-transform.
	Info        *sem.Info
	Transformed *transform.Result

	// Hints are the plint suspiciousness scores (nil when lint is off);
	// LintDiags is kept for the session report.
	Hints     map[string]float64
	LintDiags []lint.Diagnostic
}

// TraceInfo returns the program analysis the tracing phase executes:
// the transformed program when transformation ran, the original
// otherwise.
func (a *Artifact) TraceInfo() *sem.Info {
	if a.Transformed != nil {
		return a.Transformed.Info
	}
	return a.Info
}

// TraceArtifact is one cached traced execution.
type TraceArtifact struct {
	Tree     *exectree.Tree
	Recorder *dynamic.Recorder
	Output   string
	RunErr   error
	Steps    int
}

// hashProgram returns the hex SHA-256 of the source text.
func hashProgram(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:])
}

// artifactKey addresses the input-independent layer. The file name is
// part of the key because it appears in loop-query text.
func artifactKey(hash, file string, transform, lint bool) string {
	return fmt.Sprintf("art:%s:%s:f=%s:t=%v:l=%v", PipelineVersion, hash, file, transform, lint)
}

// traceKey addresses one traced execution.
func traceKey(akey, input string, fuel, depth int) string {
	return fmt.Sprintf("trace:%s:in=%s:fuel=%d:depth=%d", akey, hashProgram(input), fuel, depth)
}

type cacheEntry struct {
	ready   chan struct{} // closed when val/err are set
	val     any
	err     error
	lastUse time.Time
}

// Cache is the two-layer content-addressed store with singleflight
// builds and hit/miss counter vecs per layer.
type Cache struct {
	mu         sync.Mutex
	entries    map[string]*cacheEntry
	maxEntries int

	hits   *obs.CounterVec
	misses *obs.CounterVec
}

// NewCache builds a cache bounded to maxEntries (<= 0 means 1024).
func NewCache(reg *obs.Registry, maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &Cache{
		entries:    make(map[string]*cacheEntry),
		maxEntries: maxEntries,
		hits:       reg.CounterVec("serve.cache.hits", "layer"),
		misses:     reg.CounterVec("serve.cache.misses", "layer"),
	}
}

// getOrBuild returns the cached value for key, building it with build
// on first use; concurrent callers for the same key wait for the first
// builder. The bool reports whether this call was a hit (shared a
// present or in-flight entry).
func (c *Cache) getOrBuild(layer, key string, build func() (any, error)) (any, error, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.lastUse = time.Now()
		c.mu.Unlock()
		c.hits.With(layer).Inc()
		<-e.ready
		return e.val, e.err, true
	}
	e = &cacheEntry{ready: make(chan struct{}), lastUse: time.Now()}
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()
	c.misses.With(layer).Inc()
	e.val, e.err = build()
	close(e.ready)
	return e.val, e.err, false
}

// evictLocked drops least-recently-used completed entries while over
// capacity. In-flight entries (ready open) are never dropped.
func (c *Cache) evictLocked() {
	for len(c.entries) > c.maxEntries {
		var oldestKey string
		var oldest time.Time
		for k, e := range c.entries {
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if oldestKey == "" || e.lastUse.Before(oldest) {
				oldestKey, oldest = k, e.lastUse
			}
		}
		if oldestKey == "" {
			return
		}
		delete(c.entries, oldestKey)
	}
}

// Len reports the number of cached entries (both layers).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Artifact returns (building if necessary) the artifact layer for the
// program under the given pipeline flags.
func (c *Cache) Artifact(file, src string, doTransform, doLint bool) (*Artifact, error, bool) {
	hash := hashProgram(src)
	key := artifactKey(hash, file, doTransform, doLint)
	v, err, hit := c.getOrBuild("artifact", key, func() (any, error) {
		return buildArtifact(hash, file, src, doTransform, doLint)
	})
	if err != nil {
		return nil, err, hit
	}
	return v.(*Artifact), nil, hit
}

// Trace returns (building if necessary) the traced execution of the
// artifact's program on input under the given budgets.
func (c *Cache) Trace(art *Artifact, file string, doTransform, doLint bool, input string, fuel, depth int) (*TraceArtifact, error, bool) {
	key := traceKey(artifactKey(art.Hash, file, doTransform, doLint), input, fuel, depth)
	v, err, hit := c.getOrBuild("trace", key, func() (any, error) {
		return buildTrace(art, input, fuel, depth), nil
	})
	if err != nil {
		return nil, err, hit
	}
	return v.(*TraceArtifact), nil, hit
}

// buildArtifact runs the input-independent pipeline phases. Errors are
// apiErrors so the session surfaces a stable code per failing phase.
func buildArtifact(hash, file, src string, doTransform, doLint bool) (*Artifact, error) {
	prog, err := parser.ParseProgram(file, src)
	if err != nil {
		return nil, errf(422, CodeParseError, "parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return nil, errf(422, CodeSemError, "sem: %v", err)
	}
	art := &Artifact{Hash: hash, Info: info}
	if doTransform {
		res, err := transform.Apply(info)
		if err != nil {
			return nil, errf(422, CodeTransformError, "transform: %v", err)
		}
		art.Transformed = res
	}
	if doLint {
		art.LintDiags = lint.RunInfo(info, src, lint.Options{})
		art.Hints = lint.Hints(art.LintDiags)
	}
	return art, nil
}

// buildTrace executes the program under budgets, recording the
// execution tree and the dynamic-dependence events for slicing. A
// runtime error still yields the partial tree — crashes are debuggable
// — so it is stored in the artifact, not returned.
func buildTrace(art *Artifact, input string, fuel, depth int) *TraceArtifact {
	info := art.TraceInfo()
	rec := dynamic.NewRecorder(info)
	tr := exectree.TraceWith(info, exectree.TraceOpts{
		Input:    input,
		Extra:    []interp.EventSink{rec},
		MaxSteps: fuel,
		MaxDepth: depth,
	})
	return &TraceArtifact{
		Tree:     tr.Tree,
		Recorder: rec,
		Output:   tr.Output,
		RunErr:   tr.Err,
		Steps:    tr.Steps,
	}
}
