package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net/http"
	"sync"
	"time"

	"gadt/internal/debugger"
	"gadt/internal/obs"
	"gadt/internal/pascal/interp"
)

// Options configures the service.
type Options struct {
	// Workers sizes the pipeline worker pool (default 4); QueueLen its
	// job queue (default Workers*64). A full queue answers 429.
	Workers  int
	QueueLen int

	// Fuel and Depth are the per-session execution budgets enforced on
	// every traced run (defaults 2_000_000 statements, 5_000 frames).
	// The interp.ErrFuelExhausted / ErrDepthExhausted sentinels make
	// hostile programs a clean 422 instead of a hung worker.
	Fuel  int
	Depth int

	// IdleTimeout evicts sessions not touched for this long (default
	// 15m); TombstoneTTL keeps terminal sessions addressable for stable
	// error codes before they are forgotten (default 2×IdleTimeout).
	IdleTimeout  time.Duration
	TombstoneTTL time.Duration

	// MaxBody caps request bodies in bytes (default 1 MiB).
	MaxBody int64
	// MaxSessions caps live (non-forgotten) sessions (default 4096).
	MaxSessions int
	// CacheEntries caps the content-addressed cache (default 1024).
	CacheEntries int

	// PrepareWait bounds how long POST /v1/sessions blocks for the
	// first question; AnswerWait bounds the wait for the next one
	// (default 30s each). On expiry the current snapshot is returned
	// and the client polls GET.
	PrepareWait time.Duration
	AnswerWait  time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Fuel <= 0 {
		o.Fuel = 2_000_000
	}
	if o.Depth <= 0 {
		o.Depth = 5_000
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 15 * time.Minute
	}
	if o.TombstoneTTL <= 0 {
		o.TombstoneTTL = 2 * o.IdleTimeout
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 4096
	}
	if o.PrepareWait <= 0 {
		o.PrepareWait = 30 * time.Second
	}
	if o.AnswerWait <= 0 {
		o.AnswerWait = 30 * time.Second
	}
	return o
}

// Manager owns the session registry, the worker pool and the cache,
// and runs the idle-eviction janitor.
type Manager struct {
	reg   *obs.Registry
	opts  Options
	cache *Cache
	pool  *pool

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	active  *obs.Gauge
	created *obs.Counter
	evicted *obs.Counter

	stop     chan struct{}
	stopOnce sync.Once
	janitor  sync.WaitGroup
}

// NewManager builds the service core. reg must be non-nil for the
// serve.* metrics contract (nil degrades to unobserved no-ops).
func NewManager(reg *obs.Registry, opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		reg:      reg,
		opts:     opts,
		cache:    NewCache(reg, opts.CacheEntries),
		pool:     newPool(opts.Workers, opts.QueueLen, reg),
		sessions: make(map[string]*Session),
		active:   reg.Gauge("serve.sessions.active"),
		created:  reg.Counter("serve.sessions.created"),
		evicted:  reg.Counter("serve.sessions.evicted"),
		stop:     make(chan struct{}),
	}
	m.janitor.Add(1)
	go m.runJanitor()
	return m
}

// Cache exposes the content-addressed cache (tests assert its size).
func (m *Manager) Cache() *Cache { return m.cache }

func newSessionID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: crypto/rand failed: " + err.Error())
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Create registers a session and enqueues its pipeline job on the
// worker pool. It does not wait for the first question — callers
// combine it with awaitReady.
func (m *Manager) Create(req CreateRequest) (*Session, *apiError) {
	if req.Program == "" {
		return nil, errf(http.StatusBadRequest, CodeBadRequest, "program must not be empty")
	}
	if req.File == "" {
		req.File = "program.pas"
	}
	strategy, apiErr := parseStrategy(req.Strategy)
	if apiErr != nil {
		return nil, apiErr
	}

	hash := hashProgram(req.Program)
	sess := newSession(newSessionID(), strategy, hash, func() { m.active.Add(-1) })

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errf(http.StatusServiceUnavailable, CodeBusy, "server is shutting down")
	}
	if len(m.sessions) >= m.opts.MaxSessions {
		m.mu.Unlock()
		return nil, errf(http.StatusTooManyRequests, CodeSessionLimit,
			"session limit (%d) reached", m.opts.MaxSessions)
	}
	m.sessions[sess.ID] = sess
	m.mu.Unlock()
	m.active.Add(1)
	m.created.Inc()

	if !m.pool.submit(func() { m.prepare(sess, req) }) {
		m.forget(sess.ID)
		sess.closeWith(StateClosed)
		return nil, errf(http.StatusTooManyRequests, CodeBusy, "execution queue is full")
	}
	return sess, nil
}

// prepare runs on a pool worker: builds (or shares) the pipeline
// artifacts, validates the traced run, then hands off to the debug
// goroutine. Every exit path leaves the session in a deterministic
// state.
func (m *Manager) prepare(sess *Session, req CreateRequest) {
	hitstr := func(hit bool) string {
		if hit {
			return "hit"
		}
		return "miss"
	}

	art, err, ahit := m.cache.Artifact(req.File, req.Program, !req.NoTransform, !req.NoLint)
	sess.mu.Lock()
	sess.Cache.Artifact = hitstr(ahit)
	sess.mu.Unlock()
	if err != nil {
		sess.fail(asAPIError(err))
		return
	}

	tr, err, thit := m.cache.Trace(art, req.File, !req.NoTransform, !req.NoLint, req.Input, m.opts.Fuel, m.opts.Depth)
	sess.mu.Lock()
	sess.Cache.Trace = hitstr(thit)
	sess.mu.Unlock()
	if err != nil {
		sess.fail(asAPIError(err))
		return
	}

	sess.mu.Lock()
	sess.output = tr.Output
	if tr.RunErr != nil {
		sess.runErr = tr.RunErr.Error()
	}
	sess.mu.Unlock()

	// Budget exhaustion is the signature of a hostile or runaway
	// program: reject the session cleanly instead of debugging a
	// gigantic partial tree. Other runtime errors (division by zero,
	// bad index) keep going — crashes are debuggable.
	switch {
	case errors.Is(tr.RunErr, interp.ErrFuelExhausted):
		sess.fail(errf(http.StatusUnprocessableEntity, CodeFuelExhausted,
			"execution exceeded the %d-statement fuel budget: %v", m.opts.Fuel, tr.RunErr))
		return
	case errors.Is(tr.RunErr, interp.ErrDepthExhausted):
		sess.fail(errf(http.StatusUnprocessableEntity, CodeDepthExhausted,
			"execution exceeded the %d-frame depth budget: %v", m.opts.Depth, tr.RunErr))
		return
	}
	if tr.Tree == nil || tr.Tree.Root == nil {
		sess.fail(errf(http.StatusUnprocessableEntity, CodeEmptyTree,
			"program produced no execution tree"))
		return
	}

	sess.mu.Lock()
	if sess.state.Terminal() { // evicted or deleted while tracing
		sess.mu.Unlock()
		return
	}
	sess.setStateLocked(StateDeciding)
	sess.mu.Unlock()

	// The question/answer loop runs on its own goroutine — it blocks on
	// client answers for arbitrarily long and must not pin a worker.
	go func() {
		out, derr := debugger.New(tr.Tree, sess, debugger.Options{
			Strategy:     sess.Strategy,
			Assertions:   sess.db,
			Slicing:      !req.NoSlicing,
			Recorder:     tr.Recorder,
			Meta:         art.Transformed,
			Hints:        art.Hints,
			MaxQuestions: req.MaxQuestions,
			Metrics:      m.reg,
		}).Run()
		if errors.Is(derr, errSessionClosed) {
			return // eviction/deletion already set the terminal state
		}
		sess.finish(out, derr)
	}()
}

// asAPIError normalizes cache/build errors onto the wire envelope.
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	return errf(http.StatusInternalServerError, "internal", "%v", err)
}

// Get returns a live or tombstoned session.
func (m *Manager) Get(id string) (*Session, *apiError) {
	m.mu.Lock()
	sess, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, errf(http.StatusNotFound, CodeNotFound, "no session %q", id)
	}
	return sess, nil
}

// Delete closes a session on client request. The tombstone stays
// addressable (answering returns session_closed) until the janitor
// forgets it.
func (m *Manager) Delete(id string) *apiError {
	sess, apiErr := m.Get(id)
	if apiErr != nil {
		return apiErr
	}
	sess.closeWith(StateClosed)
	return nil
}

// forget removes a session from the registry entirely.
func (m *Manager) forget(id string) {
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
}

// List snapshots every registered session.
func (m *Manager) List() []SessionResponse {
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	out := make([]SessionResponse, 0, len(all))
	for _, s := range all {
		out = append(out, s.Snapshot())
	}
	return out
}

// runJanitor periodically evicts idle sessions and forgets expired
// tombstones.
func (m *Manager) runJanitor() {
	defer m.janitor.Done()
	tick := m.opts.IdleTimeout / 4
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.sweep(time.Now())
		case <-m.stop:
			return
		}
	}
}

// Sweep applies the idle/tombstone policy as if the current time were
// now. The janitor calls it on its tick; tests call it with a future
// instant to exercise eviction deterministically.
func (m *Manager) Sweep(now time.Time) { m.sweep(now) }

// sweep applies the idle/tombstone policy at the given instant.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	var evict, forget []*Session
	for _, s := range m.sessions {
		idle := now.Sub(s.idleSince())
		if s.currentState().Terminal() {
			if idle > m.opts.TombstoneTTL {
				forget = append(forget, s)
			}
			continue
		}
		if idle > m.opts.IdleTimeout {
			evict = append(evict, s)
		}
	}
	for _, s := range forget {
		delete(m.sessions, s.ID)
	}
	m.mu.Unlock()
	for _, s := range evict {
		s.closeWith(StateEvicted)
		m.evicted.Inc()
	}
}

// Close shuts the service down: no new sessions, all live sessions
// closed, workers and janitor stopped.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	for _, s := range all {
		s.closeWith(StateClosed)
	}
	m.stopOnce.Do(func() { close(m.stop) })
	m.janitor.Wait()
	m.pool.close()
}
