// Concurrency test: 32 goroutines run complete debugging sessions for
// 4 distinct programs (8 sessions each) against one server. Run under
// -race this exercises the shared execution trees, the singleflight
// cache and the session registry; the counter assertions pin the
// deterministic cache accounting (in-flight shares count as hits, so
// exactly one miss per layer per distinct program).
package serve_test

import (
	"encoding/json"
	"sync"
	"testing"

	"gadt/internal/corpus"
	"gadt/internal/paper"
	"gadt/internal/serve"
)

func TestConcurrentSessions(t *testing.T) {
	var primes, digitstats corpus.Program
	for _, p := range corpus.All() {
		switch p.Name {
		case "primes":
			primes = p
		case "digitstats":
			digitstats = p
		}
	}
	if primes.Buggy == "" || digitstats.Buggy == "" {
		t.Fatal("corpus is missing the buggy primes/digitstats programs")
	}

	// Four distinct programs. The first three are buggy and replay a
	// locally recorded journal to a localized diagnosis; the fourth is
	// the corrected sqrtest, debugged interactively with all-correct
	// verdicts — the engine presumes the root incorrect, so a session
	// where every callee is correct blames the root unit.
	type subject struct {
		program, input string
		lines          []string // nil: answer "correct" until terminal
		wantState      string
		wantUnit       string
	}
	subjects := make([]subject, 0, 4)
	for _, s := range []struct {
		buggy, fixed, input string
	}{
		{paper.Sqrtest, paper.SqrtestFixed, ""},
		{primes.Buggy, primes.Source, primes.Input},
		{digitstats.Buggy, digitstats.Source, digitstats.Input},
	} {
		lines, unit := recordJournal(t, s.buggy, s.fixed, s.input)
		subjects = append(subjects, subject{
			program: s.buggy, input: s.input, lines: lines,
			wantState: "localized", wantUnit: unit,
		})
	}
	subjects = append(subjects, subject{
		program: paper.SqrtestFixed, wantState: "localized", wantUnit: "main",
	})

	const perProgram = 8
	c, reg, _ := newTestServer(t, serve.Options{})

	var wg sync.WaitGroup
	errs := make(chan error, len(subjects)*perProgram)
	for _, sub := range subjects {
		for g := 0; g < perProgram; g++ {
			wg.Add(1)
			go func(sub subject) {
				defer wg.Done()
				resp, err := runSession(c, sub.program, sub.input, sub.lines)
				if err != nil {
					errs <- err
					return
				}
				if resp.State != sub.wantState {
					errs <- errf2("state = %s, want %s", resp.State, sub.wantState)
					return
				}
				if sub.wantUnit != "" && (resp.Diagnosis == nil || resp.Diagnosis.Unit != sub.wantUnit) {
					errs <- errf2("diagnosis = %+v, want unit %q", resp.Diagnosis, sub.wantUnit)
				}
			}(sub)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	total := int64(len(subjects) * perProgram) // 32

	// Deterministic cache accounting: one miss per program per layer,
	// every other session shares (a wait on an in-flight build is a
	// hit), regardless of goroutine interleaving.
	hits := reg.CounterVec("serve.cache.hits", "layer")
	misses := reg.CounterVec("serve.cache.misses", "layer")
	for _, layer := range []string{"artifact", "trace"} {
		if got := misses.With(layer).Value(); got != int64(len(subjects)) {
			t.Errorf("%s misses = %d, want %d", layer, got, len(subjects))
		}
		if got := hits.With(layer).Value(); got != total-int64(len(subjects)) {
			t.Errorf("%s hits = %d, want %d", layer, got, total-int64(len(subjects)))
		}
	}

	if got := reg.Counter("serve.sessions.created").Value(); got != total {
		t.Errorf("sessions.created = %d, want %d", got, total)
	}
	// Every session reached a terminal state, so the active gauge must
	// have drained to zero.
	if got := reg.Gauge("serve.sessions.active").Value(); got != 0 {
		t.Errorf("sessions.active = %d, want 0 after all sessions finished", got)
	}
}

// runSession drives one full session without *testing.T (goroutine
// safe): journal replay when lines are given, all-correct verdicts
// otherwise.
func runSession(c *tclient, program, input string, lines []string) (serve.SessionResponse, error) {
	body, _ := json.Marshal(serve.CreateRequest{Program: program, Input: input, File: "program.pas"})
	status, raw := c.doQuiet("POST", "/v1/sessions", body)
	var resp serve.SessionResponse
	if status != 201 {
		return resp, errf2("create = %d: %s", status, raw)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return resp, err
	}
	if lines != nil {
		for _, line := range lines {
			var probe struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(line), &probe); err != nil {
				return resp, err
			}
			if probe.Kind != "query" {
				continue
			}
			if resp.State != "waiting" {
				return resp, errf2("expected waiting before %q, state %s", line, resp.State)
			}
			status, raw = c.doQuiet("POST", "/v1/sessions/"+resp.ID+"/answer", []byte(line))
			if status != 200 {
				return resp, errf2("answer = %d: %s", status, raw)
			}
			if err := json.Unmarshal(raw, &resp); err != nil {
				return resp, err
			}
		}
		return resp, nil
	}
	for resp.State == "waiting" {
		status, raw = c.doQuiet("POST", "/v1/sessions/"+resp.ID+"/answer",
			[]byte(`{"verdict":"correct"}`))
		if status != 200 {
			return resp, errf2("answer = %d: %s", status, raw)
		}
		if err := json.Unmarshal(raw, &resp); err != nil {
			return resp, err
		}
	}
	return resp, nil
}
