// Package perfbench defines the interpreter hot-path benchmark
// workloads shared by the repo-level benchmarks (bench_test.go) and
// cmd/interp-bench, so the numbers recorded in BENCH_interp.json and
// BENCH_vm.json are measured on exactly the subjects the benchmark
// suite tracks. Each workload has a tree-walking-interpreter body and a
// bytecode-VM body over the same source, making the VM speedup a
// per-workload apples-to-apples number.
package perfbench

import (
	"testing"
	"time"

	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/vm"
	"gadt/internal/progen"
)

// IntLoopSrc is the integer-heavy subject of the PERF experiment: a
// tight arithmetic loop whose cost is dominated by variable access,
// integer binary operators and assignment — exactly the interpreter
// paths the slot-frame/unboxed-value design targets (EXPERIMENTS.md,
// PERF).
const IntLoopSrc = `
program tight;
var i, s, t: integer;
begin
  s := 0;
  t := 1;
  for i := 1 to 20000 do
  begin
    s := s + i * i mod 97;
    if odd(s) then t := t + 1 else t := t - 1;
    while t > 50 do t := t - 7
  end;
  writeln(s, t)
end.
`

// RecursionSrc is the call-heavy subject: naive doubly-recursive
// Fibonacci, whose cost is dominated by frame setup, parameter passing
// and function-result plumbing — the paths the VM's compile-computed
// frame sizes and frame free list target.
const RecursionSrc = `
program fibber;
var r: integer;

function fib(n: integer): integer;
begin
  if n < 2 then
    fib := n
  else
    fib := fib(n - 1) + fib(n - 2)
end;

begin
  r := fib(21);
  writeln(r)
end.
`

// ProgenDepths are the graded sizes of the synthetic whole-program
// subjects.
var ProgenDepths = []int{3, 5, 7}

// IntLoop returns the benchmark body measuring raw interpreter
// throughput on the integer-heavy loop.
func IntLoop() func(b *testing.B) {
	return forSource(IntLoopSrc)
}

// Recursion returns the benchmark body measuring interpreter call
// overhead on the recursive Fibonacci workload.
func Recursion() func(b *testing.B) {
	return forSource(RecursionSrc)
}

// Progen returns the benchmark body for a seeded progen subject of the
// given call-tree depth, run without tracing sinks: the cost the
// mutation campaign and differential harness pay per evaluation.
func Progen(depth int) func(b *testing.B) {
	p := progen.Generate(progen.Config{Depth: depth, Fanout: 2, Loops: true})
	return forSource(p.Buggy)
}

// VMIntLoop is the bytecode-VM counterpart of IntLoop: same source,
// compiled once, executed per iteration.
func VMIntLoop() func(b *testing.B) {
	return forSourceVM(IntLoopSrc)
}

// VMRecursion is the bytecode-VM counterpart of Recursion.
func VMRecursion() func(b *testing.B) {
	return forSourceVM(RecursionSrc)
}

// VMProgen is the bytecode-VM counterpart of Progen: what the mutation
// campaign and differential harness pay per untraced evaluation when
// run with -backend vm (minus the one-time compile, which the
// content-addressed cache amortizes across mutants).
func VMProgen(depth int) func(b *testing.B) {
	p := progen.Generate(progen.Config{Depth: depth, Fanout: 2, Loops: true})
	return forSourceVM(p.Buggy)
}

// PairedRunners returns single-shot timing runners for the interpreter
// and the VM over the same analyzed source. Each runner executes the
// workload iters times and reports the wall-clock total. cmd/interp-bench
// alternates the two in rounds and keeps the per-side minimum, so
// machine-load drift during the measurement hits both sides instead of
// whichever happened to run in the slow window — the speedup ratio stays
// meaningful even on a noisy single-core host.
func PairedRunners(src string) (interpRun, vmRun func(iters int) time.Duration, err error) {
	prog := parser.MustParse("bench.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		return nil, nil, err
	}
	vprog, err := vm.Compile(info)
	if err != nil {
		return nil, nil, err
	}
	interpRun = func(iters int) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			it := interp.New(info, interp.Config{})
			if err := it.Run(); err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	}
	vmRun = func(iters int) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			m := vm.New(vprog, interp.Config{})
			if err := m.Run(); err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	}
	return interpRun, vmRun, nil
}

func forSource(src string) func(b *testing.B) {
	prog := parser.MustParse("bench.pas", src)
	info, err := sem.Analyze(prog)
	return func(b *testing.B) {
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := interp.New(info, interp.Config{})
			if err := it.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func forSourceVM(src string) func(b *testing.B) {
	prog := parser.MustParse("bench.pas", src)
	info, err := sem.Analyze(prog)
	var vprog *vm.Program
	if err == nil {
		vprog, err = vm.Compile(info)
	}
	return func(b *testing.B) {
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := vm.New(vprog, interp.Config{})
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
