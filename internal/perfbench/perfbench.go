// Package perfbench defines the interpreter hot-path benchmark
// workloads shared by the repo-level benchmarks (bench_test.go) and
// cmd/interp-bench, so the numbers recorded in BENCH_interp.json are
// measured on exactly the subjects the benchmark suite tracks.
package perfbench

import (
	"testing"

	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/progen"
)

// IntLoopSrc is the integer-heavy subject of the PERF experiment: a
// tight arithmetic loop whose cost is dominated by variable access,
// integer binary operators and assignment — exactly the interpreter
// paths the slot-frame/unboxed-value design targets (EXPERIMENTS.md,
// PERF).
const IntLoopSrc = `
program tight;
var i, s, t: integer;
begin
  s := 0;
  t := 1;
  for i := 1 to 20000 do
  begin
    s := s + i * i mod 97;
    if odd(s) then t := t + 1 else t := t - 1;
    while t > 50 do t := t - 7
  end;
  writeln(s, t)
end.
`

// ProgenDepths are the graded sizes of the synthetic whole-program
// subjects.
var ProgenDepths = []int{3, 5, 7}

// IntLoop returns the benchmark body measuring raw interpreter
// throughput on the integer-heavy loop.
func IntLoop() func(b *testing.B) {
	return forSource(IntLoopSrc)
}

// Progen returns the benchmark body for a seeded progen subject of the
// given call-tree depth, run without tracing sinks: the cost the
// mutation campaign and differential harness pay per evaluation.
func Progen(depth int) func(b *testing.B) {
	p := progen.Generate(progen.Config{Depth: depth, Fanout: 2, Loops: true})
	return forSource(p.Buggy)
}

func forSource(src string) func(b *testing.B) {
	prog := parser.MustParse("bench.pas", src)
	info, err := sem.Analyze(prog)
	return func(b *testing.B) {
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := interp.New(info, interp.Config{})
			if err := it.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
