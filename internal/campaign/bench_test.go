package campaign_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"gadt/internal/campaign"
)

// BenchmarkCampaignWorkers measures the same fixed-seed campaign under
// different pool sizes; the multi-worker rows should beat workers=1 on
// wall clock (ns/op) on any multi-core machine:
//
//	go test -bench=CampaignWorkers -benchtime=1x ./internal/campaign
func BenchmarkCampaignWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := campaign.Run(campaign.Config{
					Seed:    1,
					Budget:  48,
					Workers: workers,
					Timeout: time.Minute,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Mutants != 48 {
					b.Fatalf("evaluated %d mutants, want 48", rep.Mutants)
				}
			}
		})
	}
}
