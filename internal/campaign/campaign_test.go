package campaign_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gadt/internal/campaign"
	"gadt/internal/debugger"
	"gadt/internal/gadt"
	"gadt/internal/mutate"
	"gadt/internal/obs"
)

// loopSubject is crafted so the operator set provably produces all
// three interesting fates: output-diff kills (negated/flipped loop
// conditions exit early), crashes, and planted infinite loops
// (const-off-by-one turning `i + 1` into `i + 0`) that must classify as
// timeout instead of hanging the pool.
const loopSubject = `
program looper;
var i, s: integer;

procedure accumulate(n: integer; var total: integer);
var i: integer;
begin
  total := 0;
  i := 0;
  while i < n do begin
    total := total + i;
    i := i + 1;
  end;
end;

begin
  accumulate(5, s);
  writeln(s);
end.
`

func small(t *testing.T, cfg campaign.Config) *campaign.Report {
	t.Helper()
	rep, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCampaignLooperFates runs every mutant of the looper subject and
// checks the classifier: kills, timeouts (infinite loops stopped by
// fuel), consistent totals, and correct localization data.
func TestCampaignLooperFates(t *testing.T) {
	rep := small(t, campaign.Config{
		Subjects: []campaign.Subject{{Name: "looper", Source: loopSubject}},
		Seed:     1,
		Fuel:     20_000,
		Timeout:  time.Minute,
	})
	if rep.Mutants == 0 || rep.Mutants != rep.Enumerated {
		t.Fatalf("evaluated %d of %d mutants", rep.Mutants, rep.Enumerated)
	}
	if got := rep.Killed + rep.Survived + rep.Timeout + rep.Stillborn + rep.Panics + rep.Equivalent; got != rep.Mutants {
		t.Errorf("status totals %d != mutants %d", got, rep.Mutants)
	}
	if rep.Killed == 0 {
		t.Error("no mutants killed")
	}
	if rep.Timeout == 0 {
		t.Error("no timeout mutants: expected the i+0 infinite loop to exhaust fuel")
	}
	if rep.Panics != 0 {
		t.Errorf("%d pipeline panics", rep.Panics)
	}
	// Every killed-and-debugged mutant carries one score per strategy.
	wantScores := len(debugger.Strategies())
	for _, o := range rep.Outcomes {
		if o.Status == campaign.StatusKilled && len(o.Strategies) > 0 && len(o.Strategies) != wantScores {
			t.Errorf("mutant %d: %d strategy scores, want %d", o.MutantID, len(o.Strategies), wantScores)
		}
		for _, s := range o.Strategies {
			if s.Correct && s.Localized != o.Unit {
				t.Errorf("mutant %d marked correct but localized %q != unit %q", o.MutantID, s.Localized, o.Unit)
			}
		}
	}
	// The reference oracle must localize at least one fault correctly
	// per strategy on this simple subject. Queries answered out of the
	// harvested call/assertion databases don't reach the oracle, so the
	// sum of all answer sources is what must be nonzero.
	for name, st := range rep.ByStrategy {
		if st.Localized == 0 {
			t.Errorf("strategy %s never localized the injected fault", name)
		}
		if st.Questions == 0 && st.ByTests == 0 && st.ByAssertions == 0 {
			t.Errorf("strategy %s answered zero queries over %d sessions", name, st.Sessions)
		}
	}
	// This subject is simple enough that the reference-run harvest must
	// have answered at least some queries without the oracle.
	var harvested int
	for _, st := range rep.ByStrategy {
		harvested += st.ByTests + st.ByAssertions
	}
	if harvested == 0 {
		t.Error("harvested call/assertion databases never answered a query")
	}
}

// deadGuardSubject keeps a debug branch behind a constant-false guard:
// every mutant planted inside that branch is provably equivalent, while
// mutants in live code must still be executed and killed as usual.
const deadGuardSubject = `
program guarded;
var x, debug: integer;
begin
  debug := 0;
  x := 3;
  if debug > 0 then begin
    x := x + 7;
    writeln(x);
  end;
  writeln(x);
end.
`

// TestCampaignEquivalentTriage checks that static triage pulls
// dead-branch mutants out of the execution pool, reports them with
// their own status, and keeps them out of the kill rate.
func TestCampaignEquivalentTriage(t *testing.T) {
	rep := small(t, campaign.Config{
		Subjects: []campaign.Subject{{Name: "guarded", Source: deadGuardSubject}},
		Seed:     7,
		Fuel:     20_000,
		Timeout:  time.Minute,
	})
	if rep.Equivalent == 0 {
		t.Fatal("no mutants triaged as equivalent in the dead debug branch")
	}
	if rep.Killed == 0 {
		t.Error("live-code mutants should still be killed")
	}
	if got := rep.Killed + rep.Survived + rep.Timeout + rep.Stillborn + rep.Panics + rep.Equivalent; got != rep.Mutants {
		t.Errorf("status totals %d != mutants %d", got, rep.Mutants)
	}
	for _, o := range rep.Outcomes {
		if o.Status != campaign.StatusEquivalent {
			continue
		}
		if len(o.Strategies) != 0 {
			t.Errorf("mutant %d: equivalent mutants must not be debugged", o.MutantID)
		}
		if !strings.HasPrefix(o.Detail, "static triage:") {
			t.Errorf("mutant %d: detail %q does not name the triage rule", o.MutantID, o.Detail)
		}
	}
	// Kill rate only ranges over executed, decided mutants.
	if den := rep.Killed + rep.Survived; den > 0 {
		want := float64(rep.Killed) / float64(den)
		if got := rep.KillRate(); got != want {
			t.Errorf("KillRate() = %v, want %v", got, want)
		}
	}
	var equivOps int
	for _, op := range rep.ByOperator {
		equivOps += op.Equivalent
	}
	if equivOps != rep.Equivalent {
		t.Errorf("per-operator equivalent counts sum to %d, want %d", equivOps, rep.Equivalent)
	}
}

// TestCampaignDeterministic pins that two runs with one seed agree on
// every verdict (timing aside), regardless of worker interleaving.
func TestCampaignDeterministic(t *testing.T) {
	cfg := campaign.Config{
		Subjects: []campaign.Subject{{Name: "looper", Source: loopSubject}},
		Seed:     42,
		Budget:   12,
		Fuel:     20_000,
		Timeout:  time.Minute,
	}
	cfg2 := cfg
	cfg2.Workers = 1
	a, b := small(t, cfg), small(t, cfg2)
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i], b.Outcomes[i]
		if x.MutantID != y.MutantID || x.Status != y.Status || len(x.Strategies) != len(y.Strategies) {
			t.Errorf("outcome %d differs: %+v vs %+v", i, x, y)
			continue
		}
		for k := range x.Strategies {
			if x.Strategies[k] != y.Strategies[k] {
				t.Errorf("mutant %d strategy %s differs: %+v vs %+v",
					x.MutantID, x.Strategies[k].Strategy, x.Strategies[k], y.Strategies[k])
			}
		}
	}
}

// TestCampaignBackendParity: the same seeded campaign must reach
// identical per-mutant verdicts and localization results whether
// mutants classify via the traced interpreter or the two-phase VM
// path. This is the campaign-level face of the engines' budget parity.
func TestCampaignBackendParity(t *testing.T) {
	cfg := campaign.Config{
		Subjects: []campaign.Subject{{Name: "looper", Source: loopSubject}},
		Seed:     42,
		Budget:   12,
		Fuel:     20_000,
		Timeout:  time.Minute,
	}
	vmCfg := cfg
	vmCfg.Backend = "vm"
	a, b := small(t, cfg), small(t, vmCfg)
	if b.Backend != "vm" {
		t.Fatalf("report backend = %q, want vm", b.Backend)
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i], b.Outcomes[i]
		if x.MutantID != y.MutantID || x.Status != y.Status {
			t.Errorf("mutant %d: interp %s, vm %s (%s)", x.MutantID, x.Status, y.Status, y.Detail)
			continue
		}
		for k := range x.Strategies {
			if x.Strategies[k] != y.Strategies[k] {
				t.Errorf("mutant %d strategy %s differs across backends: %+v vs %+v",
					x.MutantID, x.Strategies[k].Strategy, x.Strategies[k], y.Strategies[k])
			}
		}
	}
	if _, err := campaign.Run(campaign.Config{Backend: "jit"}); err == nil {
		t.Fatal("unknown backend should fail fast")
	}
}

// TestCampaignBudgetAndOps: budget caps the evaluated set, ops filter
// restricts operators, and metrics land in the registry.
func TestCampaignBudgetAndOps(t *testing.T) {
	reg := obs.NewRegistry()
	rep := small(t, campaign.Config{
		Subjects:   []campaign.Subject{{Name: "looper", Source: loopSubject}},
		Ops:        []mutate.Op{mutate.RelFlip, mutate.ConstOffByOne},
		Seed:       5,
		Budget:     6,
		Fuel:       20_000,
		Timeout:    time.Minute,
		Strategies: []debugger.Strategy{debugger.TopDown},
		Metrics:    reg,
	})
	if rep.Mutants != 6 {
		t.Errorf("evaluated %d mutants, want budget 6", rep.Mutants)
	}
	if rep.Enumerated <= 6 {
		t.Errorf("enumerated %d, want more than budget", rep.Enumerated)
	}
	for op := range rep.ByOperator {
		if op != string(mutate.RelFlip) && op != string(mutate.ConstOffByOne) {
			t.Errorf("unexpected operator %s in filtered campaign", op)
		}
	}
	for _, o := range rep.Outcomes {
		for _, s := range o.Strategies {
			if s.Strategy != "top-down" {
				t.Errorf("unexpected strategy %s", s.Strategy)
			}
		}
	}
	if got := reg.Counter("campaign.mutants").Value(); got != 6 {
		t.Errorf("campaign.mutants metric = %d, want 6", got)
	}
}

// TestTriageEquivalentsSurviveExecution brute-force checks the triage
// verdicts over the full default subject set: every mutant marked
// equivalent must produce exactly the reference output when actually
// executed. A divergence here means the value analysis or a triage
// rule is unsound.
func TestTriageEquivalentsSurviveExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force triage validation is not short")
	}
	run := func(name, source, input string) (string, error) {
		sys, err := gadt.Load(name+".pas", source)
		if err != nil {
			return "", err
		}
		r, err := sys.TraceLimited(input, 60_000, 1000)
		if err != nil {
			return "", err
		}
		if r.RunErr != nil {
			return "", r.RunErr
		}
		return r.Output, nil
	}
	checked := 0
	for _, s := range campaign.DefaultSubjects() {
		want, err := run(s.Name, s.Source, s.Input)
		if err != nil {
			continue // campaign skips such subjects too
		}
		en, err := mutate.EnumerateProgram(s.Name+".pas", s.Source, mutate.Config{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		mutate.TriageEquivalent(en)
		for _, m := range en.Mutants {
			if !m.Equivalent {
				continue
			}
			checked++
			got, err := run(s.Name, m.Source, s.Input)
			if err != nil {
				t.Errorf("%s mutant %d (%s; %s): equivalent mutant failed: %v",
					s.Name, m.ID, m.Description, m.EquivReason, err)
				continue
			}
			if got != want {
				t.Errorf("%s mutant %d (%s; %s): output diverged despite equivalence proof",
					s.Name, m.ID, m.Description, m.EquivReason)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no equivalent mutants found across the default subjects")
	}
}

// TestCampaignCorpusSmoke runs a tiny budget over the full default
// subject set — the same shape `pmut` and CI use — and checks the JSON
// report round-trips.
func TestCampaignCorpusSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke is not short")
	}
	rep := small(t, campaign.Config{Seed: 1, Budget: 20, Timeout: time.Minute})
	// Statically triaged equivalents bypass the budget (their verdict is
	// free); the budget caps the executed remainder.
	if got := rep.Mutants - rep.Equivalent; got != 20 {
		t.Fatalf("executed %d mutants, want budget 20", got)
	}
	if rep.Enumerated < 200 {
		t.Errorf("default subjects enumerate only %d sites, want >= 200 for make mutate", rep.Enumerated)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back campaign.Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Mutants != rep.Mutants || len(back.Outcomes) != len(rep.Outcomes) {
		t.Errorf("round-trip mismatch: %d/%d vs %d/%d", back.Mutants, len(back.Outcomes), rep.Mutants, len(rep.Outcomes))
	}
	if !strings.Contains(buf.String(), "by_strategy") {
		t.Error("report JSON missing by_strategy")
	}
}
