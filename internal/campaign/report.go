package campaign

import (
	"encoding/json"
	"io"
	"math/rand"
	"sort"
	"time"

	"gadt/internal/obs"
)

// sample deterministically picks n jobs from the full list with the
// campaign seed, then restores enumeration order.
func sample(jobs []job, n int, seed int64) []job {
	picked := append([]job(nil), jobs...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(picked), func(i, j int) { picked[i], picked[j] = picked[j], picked[i] })
	picked = picked[:n]
	sort.Slice(picked, func(i, j int) bool {
		if picked[i].subject.Name != picked[j].subject.Name {
			return picked[i].subject.Name < picked[j].subject.Name
		}
		return picked[i].mutant.ID < picked[j].mutant.ID
	})
	return picked
}

// OperatorStats aggregates outcomes per mutation operator.
type OperatorStats struct {
	Mutants    int     `json:"mutants"`
	Killed     int     `json:"killed"`
	Survived   int     `json:"survived"`
	Timeout    int     `json:"timeout"`
	Equivalent int     `json:"equivalent"`
	KillRate   float64 `json:"kill_rate"`
}

// StrategyStats aggregates debugging sessions per traversal strategy,
// over the killed-and-debugged mutants.
type StrategyStats struct {
	Sessions int `json:"sessions"`
	// Localized counts sessions that blamed exactly the mutated unit.
	Localized        int     `json:"localized"`
	LocalizationRate float64 `json:"localization_rate"`
	Questions        int     `json:"questions"`
	MeanQuestions    float64 `json:"mean_questions"`
	MedianQuestions  float64 `json:"median_questions"`
	MaxQuestions     int     `json:"max_questions"`
	// ByAssertions and ByTests total the queries answered from the
	// harvested assertion DB / exact-call test database.
	ByAssertions int `json:"by_assertions"`
	ByTests      int `json:"by_tests"`
	Errors       int `json:"errors"`
}

// Report is the campaign summary written to BENCH_mutation.json.
type Report struct {
	Seed       int64  `json:"seed"`
	Budget     int    `json:"budget"`
	Workers    int    `json:"workers"`
	Fuel       int    `json:"fuel"`
	Backend    string `json:"backend,omitempty"`
	Subjects   int    `json:"subjects"`
	Enumerated int    `json:"enumerated_mutants"`
	Mutants    int    `json:"evaluated_mutants"`
	ElapsedMS  int64  `json:"elapsed_ms"`

	Killed    int `json:"killed"`
	Survived  int `json:"survived"`
	Timeout   int `json:"timeout"`
	Stillborn int `json:"stillborn"`
	Panics    int `json:"panics"`
	// Equivalent counts mutants the static value analysis proved
	// behaviour-preserving; they are reported but never executed.
	Equivalent int `json:"equivalent"`
	// DebugSkipped counts killed mutants whose tree exceeded the
	// debugging size cap.
	DebugSkipped int `json:"debug_skipped"`

	ByOperator map[string]*OperatorStats `json:"by_operator"`
	ByStrategy map[string]*StrategyStats `json:"by_strategy"`

	SubjectErrors []string        `json:"subject_errors,omitempty"`
	Outcomes      []MutantOutcome `json:"outcomes"`
}

// KillRate is killed / (killed + survived): proven-equivalent mutants
// are out of the denominator by construction, and timeouts and
// stillborns are excluded as possibly-equivalent or invalid.
func (r *Report) KillRate() float64 {
	den := r.Killed + r.Survived
	if den == 0 {
		return 0
	}
	return float64(r.Killed) / float64(den)
}

func aggregate(cfg Config, outcomes []MutantOutcome, enumerated int, subjectErrs []string, elapsed time.Duration) *Report {
	rep := &Report{
		Seed:          cfg.Seed,
		Budget:        cfg.Budget,
		Workers:       cfg.Workers,
		Fuel:          cfg.Fuel,
		Backend:       cfg.Backend,
		Subjects:      len(cfg.Subjects),
		Enumerated:    enumerated,
		Mutants:       len(outcomes),
		ElapsedMS:     elapsed.Milliseconds(),
		ByOperator:    make(map[string]*OperatorStats),
		ByStrategy:    make(map[string]*StrategyStats),
		SubjectErrors: subjectErrs,
		Outcomes:      outcomes,
	}
	questionCounts := make(map[string][]int)
	for _, o := range outcomes {
		op := rep.ByOperator[o.Op]
		if op == nil {
			op = &OperatorStats{}
			rep.ByOperator[o.Op] = op
		}
		op.Mutants++
		switch o.Status {
		case StatusKilled:
			rep.Killed++
			op.Killed++
			if len(o.Strategies) == 0 {
				rep.DebugSkipped++
			}
		case StatusSurvived:
			rep.Survived++
			op.Survived++
		case StatusTimeout:
			rep.Timeout++
			op.Timeout++
		case StatusStillborn:
			rep.Stillborn++
		case StatusPanic:
			rep.Panics++
		case StatusEquivalent:
			rep.Equivalent++
			op.Equivalent++
		}
		for _, s := range o.Strategies {
			st := rep.ByStrategy[s.Strategy]
			if st == nil {
				st = &StrategyStats{}
				rep.ByStrategy[s.Strategy] = st
			}
			st.Sessions++
			st.Questions += s.Questions
			questionCounts[s.Strategy] = append(questionCounts[s.Strategy], s.Questions)
			if s.Questions > st.MaxQuestions {
				st.MaxQuestions = s.Questions
			}
			st.ByAssertions += s.ByAssertions
			st.ByTests += s.ByTests
			if s.Correct {
				st.Localized++
			}
			if s.Error != "" {
				st.Errors++
			}
		}
	}
	for _, op := range rep.ByOperator {
		if den := op.Killed + op.Survived; den > 0 {
			op.KillRate = float64(op.Killed) / float64(den)
		}
	}
	for name, st := range rep.ByStrategy {
		if st.Sessions > 0 {
			st.LocalizationRate = float64(st.Localized) / float64(st.Sessions)
			st.MeanQuestions = float64(st.Questions) / float64(st.Sessions)
			st.MedianQuestions = median(questionCounts[name])
		}
	}
	return rep
}

// median returns the middle value of the counts (the mean of the two
// middle values for even lengths); 0 for an empty slice.
func median(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return float64(sorted[mid])
	}
	return float64(sorted[mid-1]+sorted[mid]) / 2
}

// record exports the campaign-specific end-of-run totals to the
// observability registry. Per-status tallies, in-flight/done gauges,
// per-job latency and pool size are recorded live by the shared
// obs.ReportRecorder in Run — only what the recorder cannot know lands
// here.
func record(m *obs.Registry, rep *Report) {
	if m == nil {
		return
	}
	m.Counter("campaign.mutants").Add(int64(rep.Mutants))
	m.Counter("campaign.enumerated").Add(int64(rep.Enumerated))
	sessions := m.CounterVec("campaign.sessions", "strategy")
	localized := m.CounterVec("campaign.localized", "strategy")
	questions := m.CounterVec("campaign.questions", "strategy")
	for name, st := range rep.ByStrategy {
		sessions.With(name).Add(int64(st.Sessions))
		localized.With(name).Add(int64(st.Localized))
		questions.With(name).Add(int64(st.Questions))
		// Campaign sessions run without per-session registries, so the
		// harvest hits are accounted here under the standard debugger
		// metric names.
		m.Counter("debugger.answers.assertions").Add(int64(st.ByAssertions))
		m.Counter("debugger.answers.tests").Add(int64(st.ByTests))
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
