// Package campaign runs parallel mutation campaigns: every mutant of
// every subject program is pushed through the full GADT pipeline —
// transform, trace, algorithmic debugging — against an automated
// reference oracle (the unmutated program re-executed per query), with
// zero human interaction. The campaign scores each mutant
// (killed / survived / timeout), and for killed mutants whether each
// traversal strategy localizes the fault back to the unit the mutation
// was injected into and how many oracle queries it spends. The
// aggregate report is the repo's standing fault-injection evaluation of
// the paper's central claim.
package campaign

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gadt/internal/assertion"
	"gadt/internal/corpus"
	"gadt/internal/debugger"
	"gadt/internal/gadt"
	"gadt/internal/mutate"
	"gadt/internal/obs"
	"gadt/internal/paper"
	"gadt/internal/pascal/backend"
	"gadt/internal/pascal/interp"
	"gadt/internal/progen"
	"gadt/internal/tgen"
)

// Subject is one base program to mutate. Its own (unmutated) execution
// defines the expected output and acts as the reference oracle.
type Subject struct {
	Name   string
	Source string
	Input  string
}

// DefaultSubjects returns the standing subject set: the paper's worked
// example, every corpus program, and a spread of progen shapes
// (parameter style, global style, loop units).
func DefaultSubjects() []Subject {
	subs := []Subject{{Name: "sqrtest", Source: paper.SqrtestFixed}}
	for _, p := range corpus.All() {
		subs = append(subs, Subject{Name: p.Name, Source: p.Source, Input: p.Input})
	}
	for _, shape := range []progen.Config{
		{Depth: 2, Fanout: 2},
		{Depth: 3, Fanout: 2},
		{Depth: 2, Fanout: 2, Style: progen.Globals},
		{Depth: 2, Fanout: 2, Loops: true},
	} {
		style := "params"
		if shape.Style == progen.Globals {
			style = "globals"
		}
		p := progen.Generate(shape)
		subs = append(subs, Subject{
			Name:   fmt.Sprintf("synth(d=%d,f=%d,%s,loops=%v)", shape.Depth, shape.Fanout, style, shape.Loops),
			Source: p.Fixed,
		})
	}
	return subs
}

// Mutant status values.
const (
	StatusKilled     = "killed"     // output diverged or the mutant crashed
	StatusSurvived   = "survived"   // identical output (not provably equivalent)
	StatusTimeout    = "timeout"    // fuel or wall-clock exhausted (possibly equivalent)
	StatusStillborn  = "stillborn"  // transformation/analysis of the mutant failed
	StatusPanic      = "panic"      // pipeline panicked (isolated to the mutant)
	StatusEquivalent = "equivalent" // static triage proved the mutant behaviour-preserving
)

// Config shapes a campaign run.
type Config struct {
	// Subjects to mutate (nil = DefaultSubjects).
	Subjects []Subject
	// Ops restricts the mutation operators (nil = all).
	Ops []mutate.Op
	// Seed drives mutant sampling; same seed, same campaign.
	Seed int64
	// Budget caps the total number of mutants across all subjects
	// (0 = every enumerated mutant).
	Budget int
	// Workers sizes the pool (<= 0 = GOMAXPROCS).
	Workers int
	// Strategies to evaluate per killed mutant (nil = all four).
	Strategies []debugger.Strategy
	// NoHarvest disables the assertion/test-database harvest: by default
	// every subject's reference run is harvested into an exact-call test
	// database plus generalized assertions, and debugging sessions
	// consult both before asking the oracle (the answers surface in the
	// per-strategy by_assertions / by_tests tallies).
	NoHarvest bool
	// Fuel is the per-execution statement budget (0 = 60000); mutants
	// that exhaust it are classified timeout, not hung.
	Fuel int
	// MaxDepth is the per-execution call-depth budget (0 = 1000).
	MaxDepth int
	// Timeout is the per-mutant wall-clock backstop (0 = 20s).
	Timeout time.Duration
	// MaxTreeNodes skips debugging of mutants whose execution tree grew
	// past this size (0 = 4000): even with the incremental selector a
	// pathological mutant's tree must not sink the campaign.
	MaxTreeNodes int
	// MaxQuestions bounds oracle queries per debugging session (0 = 2000).
	MaxQuestions int
	// Metrics, when non-nil, receives campaign.* counters, the live
	// campaign.inflight/campaign.done gauges, and the labeled
	// campaign.outcomes{status=...} series.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per mutant evaluation on a
	// per-worker lane (one Perfetto track per pool worker).
	Tracer *obs.Tracer
	// Progress, when non-nil, receives periodic heartbeat lines
	// (throughput, ETA, killed/survived so far) during the run.
	Progress io.Writer
	// Logf, when non-nil, receives one progress line per subject.
	Logf func(format string, args ...any)
	// Backend selects the mutant execution engine ("" or "interp" =
	// interpreter, "vm" = bytecode VM). Under "vm", evaluation is
	// two-phase: every mutant first runs untraced at VM speed for the
	// killed/survived/timeout classification, and only killed mutants
	// are re-run traced for debugging-phase localization. Reference
	// runs stay traced either way — they feed the assertion harvest.
	Backend string
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Subjects == nil {
		out.Subjects = DefaultSubjects()
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Strategies == nil {
		out.Strategies = debugger.Strategies()
	}
	if out.Fuel <= 0 {
		out.Fuel = 60_000
	}
	if out.MaxDepth <= 0 {
		out.MaxDepth = 1000
	}
	if out.Timeout <= 0 {
		out.Timeout = 20 * time.Second
	}
	if out.MaxTreeNodes <= 0 {
		out.MaxTreeNodes = 4000
	}
	if out.MaxQuestions <= 0 {
		out.MaxQuestions = 2000
	}
	return out
}

// StrategyScore is one debugging session over one killed mutant.
type StrategyScore struct {
	Strategy  string `json:"strategy"`
	Questions int    `json:"questions"`
	// Localized is the original-program unit the session blamed
	// (loop units are mapped back to their routine), "" when
	// inconclusive.
	Localized string `json:"localized,omitempty"`
	// Correct reports Localized == the unit the fault was injected in.
	Correct bool `json:"correct"`
	// ByAssertions and ByTests count queries the session answered from
	// the harvested assertion DB / exact-call test database instead of
	// the oracle.
	ByAssertions int    `json:"by_assertions,omitempty"`
	ByTests      int    `json:"by_tests,omitempty"`
	Error        string `json:"error,omitempty"`
}

// MutantOutcome is the campaign verdict on one mutant.
type MutantOutcome struct {
	Subject     string          `json:"subject"`
	MutantID    int             `json:"mutant_id"`
	Op          string          `json:"op"`
	Unit        string          `json:"unit"`
	Description string          `json:"description"`
	Status      string          `json:"status"`
	Detail      string          `json:"detail,omitempty"`
	Strategies  []StrategyScore `json:"strategies,omitempty"`
	ElapsedMS   int64           `json:"elapsed_ms"`
}

type job struct {
	subject Subject
	want    string // reference output
	mutant  *mutate.Mutant

	// Harvested from the subject's reference run, shared read-mostly by
	// every session over this subject's mutants (CallDB locks; the
	// assertion DB is never written after harvest — the reference oracle
	// supplies no new assertions).
	tests   *tgen.CallDB
	asserts *assertion.DB
}

// Run executes the campaign and returns the aggregated report.
func Run(cfg Config) (*Report, error) {
	if _, err := backend.Select(cfg.Backend); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()

	jobs, preclassified, subjectErrs, enumerated, err := buildJobs(cfg)
	if err != nil {
		return nil, err
	}

	rec := obs.NewReportRecorder(cfg.Metrics, "campaign")
	rec.Count(StatusEquivalent, int64(len(preclassified)))
	var hb *obs.Heartbeat
	if cfg.Progress != nil {
		hb = obs.StartHeartbeat(obs.HeartbeatConfig{
			W:     cfg.Progress,
			Label: "campaign",
			Total: int64(len(jobs)),
			Done:  rec.DoneCount,
			Extra: func() string {
				return fmt.Sprintf("killed=%d survived=%d",
					rec.StatusCount(StatusKilled), rec.StatusCount(StatusSurvived))
			},
		})
	}

	in := make(chan job)
	out := make(chan MutantOutcome, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lane := cfg.Tracer.Lane("campaign-worker-" + strconv.Itoa(id))
			// One "worker" span covers the lane's whole lifetime; the
			// per-mutant spans nest under it, so Perfetto shows both the
			// worker occupancy bar and the individual evaluations.
			wsp := lane.Start("worker")
			defer wsp.End()
			for j := range in {
				sp := lane.Start("mutant")
				sp.SetAttr("subject", j.subject.Name)
				sp.SetAttr("mutant", strconv.Itoa(j.mutant.ID))
				sp.SetAttr("op", string(j.mutant.Op))
				rec.JobStart()
				jobStart := time.Now()
				o := evalWithBackstop(cfg, j)
				rec.JobDone(o.Status, time.Since(jobStart))
				sp.SetAttr("status", o.Status)
				sp.End()
				out <- o
			}
		}(w)
	}
	for _, j := range jobs {
		in <- j
	}
	close(in)
	wg.Wait()
	close(out)
	rec.Finish(cfg.Workers)
	hb.Stop()

	outcomes := preclassified
	for o := range out {
		outcomes = append(outcomes, o)
	}
	sort.Slice(outcomes, func(i, j int) bool {
		if outcomes[i].Subject != outcomes[j].Subject {
			return outcomes[i].Subject < outcomes[j].Subject
		}
		return outcomes[i].MutantID < outcomes[j].MutantID
	})

	rep := aggregate(cfg, outcomes, enumerated, subjectErrs, time.Since(start))
	record(cfg.Metrics, rep)
	return rep, nil
}

// buildJobs enumerates mutants for every subject, triages the provably
// equivalent ones out of the execution pool, computes the reference
// outputs, and samples the remaining list down to Budget with the
// campaign seed. Equivalent mutants bypass the budget: their verdict is
// free, so they are always reported.
func buildJobs(cfg Config) (jobs []job, preclassified []MutantOutcome, subjectErrs []string, enumerated int, err error) {
	for _, s := range cfg.Subjects {
		ref, werr := referenceRun(s, cfg)
		if werr != nil {
			subjectErrs = append(subjectErrs, fmt.Sprintf("%s: %v", s.Name, werr))
			continue
		}
		want := ref.Output
		var tests *tgen.CallDB
		var asserts *assertion.DB
		if !cfg.NoHarvest {
			tests = tgen.NewCallDB().HarvestTree(ref.Tree)
			asserts = assertion.Generalize(ref.Tree.Nodes, assertion.GeneralizeOptions{})
			if asserts.Len() == 0 {
				asserts = nil
			}
		}
		en, merr := mutate.EnumerateProgram(s.Name+".pas", s.Source, mutate.Config{Ops: cfg.Ops, Metrics: cfg.Metrics})
		if merr != nil {
			subjectErrs = append(subjectErrs, fmt.Sprintf("%s: %v", s.Name, merr))
			continue
		}
		equivalents := triage(en)
		enumerated += len(en.Mutants)
		if cfg.Logf != nil {
			cfg.Logf("subject %-28s %4d mutation sites, %d provably equivalent",
				s.Name, len(en.Mutants), equivalents)
		}
		for _, m := range en.Mutants {
			if m.Equivalent {
				o := MutantOutcome{
					Subject:     s.Name,
					MutantID:    m.ID,
					Op:          string(m.Op),
					Unit:        m.Unit,
					Description: m.Description,
					Status:      StatusEquivalent,
					Detail:      "static triage: " + m.EquivReason,
				}
				preclassified = append(preclassified, o)
				continue
			}
			jobs = append(jobs, job{subject: s, want: want, mutant: m, tests: tests, asserts: asserts})
		}
	}
	if len(jobs) == 0 && len(preclassified) == 0 {
		return nil, nil, subjectErrs, 0, errors.New("campaign: no mutants enumerated")
	}
	if cfg.Budget > 0 && len(jobs) > cfg.Budget {
		jobs = sample(jobs, cfg.Budget, cfg.Seed)
	}
	return jobs, preclassified, subjectErrs, enumerated, nil
}

// triage classifies equivalent mutants with the value analysis of the
// original subject. It is advisory — a panic inside the analysis of an
// exotic subject must not sink the whole campaign, so it is isolated
// the same way mutant evaluation is.
func triage(en *mutate.Enumeration) (marked int) {
	defer func() {
		if r := recover(); r != nil {
			marked = 0
		}
	}()
	return mutate.TriageEquivalent(en)
}

// referenceRun runs the unmutated subject once under campaign budgets;
// its output is what mutants are compared against, and its execution
// tree is the harvest source for the exact-call test database and the
// generalized assertions.
func referenceRun(s Subject, cfg Config) (*gadt.Run, error) {
	sys, err := gadt.Load(s.Name+".pas", s.Source)
	if err != nil {
		return nil, err
	}
	run, err := sys.TraceLimited(s.Input, cfg.Fuel, cfg.MaxDepth)
	if err != nil {
		return nil, err
	}
	if run.RunErr != nil {
		return nil, fmt.Errorf("reference run failed: %w", run.RunErr)
	}
	return run, nil
}

// evalWithBackstop runs one mutant with panic isolation and a
// wall-clock watchdog. The evaluation goroutine is fuel-bounded, so an
// abandoned (timed-out) evaluation always terminates shortly after.
func evalWithBackstop(cfg Config, j job) MutantOutcome {
	ch := make(chan MutantOutcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				o := skeleton(j)
				o.Status = StatusPanic
				o.Detail = fmt.Sprint(r)
				ch <- o
			}
		}()
		ch <- eval(cfg, j)
	}()
	select {
	case o := <-ch:
		return o
	case <-time.After(cfg.Timeout):
		o := skeleton(j)
		o.Status = StatusTimeout
		o.Detail = fmt.Sprintf("wall-clock backstop (%s) exceeded", cfg.Timeout)
		o.ElapsedMS = cfg.Timeout.Milliseconds()
		return o
	}
}

func skeleton(j job) MutantOutcome {
	return MutantOutcome{
		Subject:     j.subject.Name,
		MutantID:    j.mutant.ID,
		Op:          string(j.mutant.Op),
		Unit:        j.mutant.Unit,
		Description: j.mutant.Description,
	}
}

// eval pushes one mutant through the pipeline. Under the vm backend it
// is two-phase: an untraced classification run first (VM speed, no
// event dispatch), then a traced re-run only for killed mutants that
// enter the debugging phase. Budget semantics are identical between
// the engines (same typed fuel/depth errors at the same statement
// counts), so the untraced verdict matches what the traced run would
// have concluded.
func eval(cfg Config, j job) MutantOutcome {
	start := time.Now()
	o := skeleton(j)
	defer func() { o.ElapsedMS = time.Since(start).Milliseconds() }()

	sys, err := gadt.Load(j.subject.Name+".pas", j.mutant.Source)
	if err != nil {
		o.Status, o.Detail = StatusStillborn, err.Error()
		return o
	}

	if cfg.Backend == "vm" {
		res, terr := sys.Transform()
		if terr != nil {
			o.Status, o.Detail = StatusStillborn, terr.Error()
			return o
		}
		be, _ := backend.Select(cfg.Backend)
		var out strings.Builder
		r := be.NewRunner("", res.Info, interp.Config{
			Input:    strings.NewReader(j.subject.Input),
			Output:   &out,
			MaxSteps: cfg.Fuel,
			MaxDepth: cfg.MaxDepth,
			Metrics:  cfg.Metrics,
		})
		runErr := r.Run()
		switch {
		case errors.Is(runErr, interp.ErrFuelExhausted), errors.Is(runErr, interp.ErrDepthExhausted):
			o.Status = StatusTimeout
			o.Detail = fmt.Sprintf("non-termination: %v (after %d steps)", runErr, r.Steps())
			return o
		case runErr == nil && out.String() == j.want:
			o.Status = StatusSurvived
			return o
		}
		// Killed (crash or output divergence): fall through to the
		// traced run, which the debugging phase needs anyway.
	}

	run, err := sys.TraceLimited(j.subject.Input, cfg.Fuel, cfg.MaxDepth)
	if err != nil {
		o.Status, o.Detail = StatusStillborn, err.Error()
		return o
	}

	switch {
	case errors.Is(run.RunErr, interp.ErrFuelExhausted), errors.Is(run.RunErr, interp.ErrDepthExhausted):
		// Transformed loops recurse, so a planted infinite loop trips
		// either the step or the call-depth budget: non-termination.
		o.Status = StatusTimeout
		o.Detail = fmt.Sprintf("non-termination: %v (after %d steps)", run.RunErr, run.Steps)
		return o
	case run.RunErr != nil:
		o.Status = StatusKilled
		o.Detail = "crash: " + run.RunErr.Error()
	case run.Output != j.want:
		o.Status = StatusKilled
		o.Detail = outputDiff(j.want, run.Output)
	default:
		o.Status = StatusSurvived
		return o
	}

	// Killed: evaluate bug localization per strategy, answering every
	// query from the unmutated reference — no human in the loop.
	if run.Tree.Size() > cfg.MaxTreeNodes {
		o.Detail += fmt.Sprintf("; debug skipped (tree %d nodes > %d)", run.Tree.Size(), cfg.MaxTreeNodes)
		return o
	}
	for _, strat := range cfg.Strategies {
		o.Strategies = append(o.Strategies, debugOne(cfg, j, run, strat))
	}
	return o
}

func debugOne(cfg Config, j job, run *gadt.Run, strat debugger.Strategy) StrategyScore {
	score := StrategyScore{Strategy: strat.String()}
	oracle, err := gadt.IntendedOracleLimited(j.subject.Source, cfg.Fuel)
	if err != nil {
		score.Error = err.Error()
		return score
	}
	dc := gadt.DebugConfig{
		Strategy:     strat,
		Slicing:      true,
		MaxQuestions: cfg.MaxQuestions,
		Assertions:   j.asserts,
	}
	if j.tests != nil {
		dc.Tests = j.tests
	}
	out, err := run.Debug(oracle, dc)
	if out != nil {
		score.Questions = out.Questions
		score.ByAssertions = out.ByAssertions
		score.ByTests = out.ByTests
	}
	if err != nil {
		score.Error = err.Error()
		return score
	}
	if out.Localized() {
		score.Localized = run.System.Transformed.OriginRoutine(out.Bug.Unit.Name)
		score.Correct = score.Localized == j.mutant.Unit
	}
	return score
}

// outputDiff summarizes the first divergence between want and got.
func outputDiff(want, got string) string {
	max := len(want)
	if len(got) < max {
		max = len(got)
	}
	i := 0
	for i < max && want[i] == got[i] {
		i++
	}
	lo := i - 12
	if lo < 0 {
		lo = 0
	}
	trunc := func(s string) string {
		hi := i + 12
		if hi > len(s) {
			hi = len(s)
		}
		return fmt.Sprintf("%q", s[lo:hi])
	}
	return fmt.Sprintf("output diverges at byte %d: want ...%s, got ...%s", i, trunc(want), trunc(got))
}
