// Package benchparse reads the standard `go test -bench` text format:
// one line per measurement,
//
//	BenchmarkName-8   153   7788402 ns/op   478554 B/op   59739 allocs/op
//
// and aggregates repeated runs (-count N) per benchmark by averaging.
// It backs cmd/benchcmp (the benchstat fallback) and cmd/interp-bench
// (the BENCH_interp.json generator), which compare current numbers
// against the committed baseline in testdata/bench/.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one aggregated benchmark: the mean over all parsed lines
// with the same name, with Runs recording how many lines contributed.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Parse reads benchmark lines from r, averaging repeats. Non-benchmark
// lines (goos/pkg headers, PASS, ok) are skipped. Names are normalized
// by stripping the -GOMAXPROCS suffix so runs from machines with
// different core counts compare.
func Parse(r io.Reader) ([]Result, error) {
	sums := make(map[string]*Result)
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid line: name, N, value, unit.
		if len(fields) < 4 {
			continue
		}
		name := normalizeName(fields[0])
		res := sums[name]
		if res == nil {
			res = &Result{Name: name}
			sums[name] = res
			order = append(order, name)
		}
		var ns, bytes, allocs float64
		var haveNs bool
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				ns, haveNs = v, true
			case "B/op":
				bytes = v
			case "allocs/op":
				allocs = v
			}
		}
		if !haveNs {
			continue
		}
		res.Runs++
		res.NsPerOp += ns
		res.BytesPerOp += bytes
		res.AllocsPerOp += allocs
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		r := sums[name]
		n := float64(r.Runs)
		out = append(out, Result{
			Name:        r.Name,
			Runs:        r.Runs,
			NsPerOp:     r.NsPerOp / n,
			BytesPerOp:  r.BytesPerOp / n,
			AllocsPerOp: r.AllocsPerOp / n,
		})
	}
	return out, nil
}

// ParseFile parses one benchmark output file.
func ParseFile(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// normalizeName strips the trailing -N GOMAXPROCS suffix Go appends to
// benchmark names ("BenchmarkX-8" → "BenchmarkX").
func normalizeName(s string) string {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s
	}
	if _, err := strconv.Atoi(s[i+1:]); err != nil {
		return s
	}
	return s[:i]
}

// ByName indexes results for lookup when comparing two files.
func ByName(rs []Result) map[string]Result {
	m := make(map[string]Result, len(rs))
	for _, r := range rs {
		m[r.Name] = r
	}
	return m
}
