// Shrinking: a divergent program is reduced to a minimal
// counterexample before it lands in testdata/diff/. The reducer runs
// mutate-style AST edits in reverse — instead of planting faults it
// deletes and simplifies, keeping an edit whenever the reduced program
// still diverges under the same stage combination.
package diffharness

import (
	"strings"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
)

// shrinkMaxChecks bounds the number of candidate re-executions per
// divergence: shrinking is best-effort and must not sink the campaign.
const shrinkMaxChecks = 600

// Shrink greedily minimizes a divergent program: statements are
// dropped, routines deleted, loop/if bodies hoisted, and integer
// literals minimized, as long as the reduction still diverges under
// the given combo — a transform stage combination, or a backend axis
// (interpreter vs VM). Returns the minimized source (or the input
// unchanged when no reduction survives).
func Shrink(source, input string, stagesStr string, cfg Config) string {
	cfg = cfg.withDefaults()
	checks := 0
	recheck := func(src string) *delta {
		s := Subject{Name: "shrink", Source: src, Input: input, ephemeral: true}
		if strings.HasPrefix(stagesStr, "backend:") {
			return diffBackends(cfg, s, strings.HasSuffix(stagesStr, "+full"))
		}
		return diff(cfg, s, parseStages(stagesStr))
	}
	diverges := func(src string) bool {
		if checks >= shrinkMaxChecks {
			return false
		}
		checks++
		d := recheck(src)
		return d != nil && d.kind != "invalid" && d.kind != "fuel" && d.kind != "rejected"
	}
	if !diverges(source) {
		return source // not reproducible in isolation; keep as-is
	}
	for {
		next, changed := shrinkPass(source, diverges)
		if !changed {
			return source
		}
		source = next
	}
}

// edit is one candidate reduction applied to a fresh clone; counterpart
// maps original nodes to their clones.
type edit func(counterpart func(ast.Node) ast.Node) bool

// shrinkPass greedily applies enumerated edits until none survives,
// re-enumerating after every accepted edit; reports whether any edit
// was taken.
func shrinkPass(source string, diverges func(string) bool) (string, bool) {
	prog, err := parser.ParseProgram("shrink.pas", source)
	if err != nil {
		return source, false
	}
	changed := false
	for {
		took := false
		for _, e := range enumerateEdits(prog) {
			clone, cm := ast.Clone(prog)
			old2new := make(map[ast.Node]ast.Node, len(cm))
			for nw, old := range cm {
				old2new[old] = nw
			}
			if !e(func(n ast.Node) ast.Node { return old2new[n] }) {
				continue
			}
			if _, err := sem.Analyze(clone); err != nil {
				continue
			}
			src := printer.Print(clone)
			if !diverges(src) {
				continue
			}
			prog, source = clone, src
			changed, took = true, true
			break
		}
		if !took {
			return source, changed
		}
	}
}

// enumerateEdits lists candidate reductions on prog, largest single
// reductions first: whole routines, then statements, then literals.
func enumerateEdits(prog *ast.Program) []edit {
	var edits []edit

	// Delete whole routines.
	var walkRoutines func(b *ast.Block)
	walkRoutines = func(b *ast.Block) {
		for i, r := range b.Routines {
			i, b := i, b
			edits = append(edits, func(counterpart func(ast.Node) ast.Node) bool {
				nb, ok := counterpart(b).(*ast.Block)
				if !ok || i >= len(nb.Routines) {
					return false
				}
				nb.Routines = append(nb.Routines[:i:i], nb.Routines[i+1:]...)
				return true
			})
			walkRoutines(r.Block)
		}
	}
	walkRoutines(prog.Block)

	// Drop statements from statement lists (replacement with the empty
	// statement — mutate's drop-stmt operator, run in reverse for
	// reduction instead of fault injection).
	drop := func(parent ast.Node, stmts []ast.Stmt) {
		for i, s := range stmts {
			if _, empty := s.(*ast.EmptyStmt); empty {
				continue
			}
			i := i
			edits = append(edits, func(counterpart func(ast.Node) ast.Node) bool {
				switch p := counterpart(parent).(type) {
				case *ast.CompoundStmt:
					if i < len(p.Stmts) {
						p.Stmts[i] = &ast.EmptyStmt{SemiPos: p.Stmts[i].Pos()}
						return true
					}
				case *ast.RepeatStmt:
					if i < len(p.Stmts) {
						p.Stmts[i] = &ast.EmptyStmt{SemiPos: p.Stmts[i].Pos()}
						return true
					}
				}
				return false
			})
		}
	}
	// Hoist a structured statement's body in place of the construct
	// (unwraps the loop/if/case shell around the culprit statement).
	hoist := func(node ast.Node, body ast.Stmt) {
		if body == nil {
			return
		}
		edits = append(edits, func(counterpart func(ast.Node) ast.Node) bool {
			root, _ := counterpart(prog).(*ast.Program)
			s, ok1 := counterpart(node).(ast.Stmt)
			r, ok2 := counterpart(body).(ast.Stmt)
			if root == nil || !ok1 || !ok2 {
				return false
			}
			return replaceInTree(root, s, r)
		})
	}
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompoundStmt:
			drop(n, n.Stmts)
		case *ast.RepeatStmt:
			drop(n, n.Stmts)
			if len(n.Stmts) > 0 {
				hoist(n, n.Stmts[0])
			}
		case *ast.IfStmt:
			hoist(n, n.Then)
			hoist(n, n.Else)
		case *ast.WhileStmt:
			hoist(n, n.Body)
		case *ast.ForStmt:
			hoist(n, n.Body)
		case *ast.CaseStmt:
			for _, arm := range n.Arms {
				hoist(n, arm.Body)
			}
			hoist(n, n.Else)
		}
		return true
	})

	// Minimize integer literals toward zero.
	ast.Inspect(prog, func(n ast.Node) bool {
		lit, ok := n.(*ast.IntLit)
		if !ok || lit.Value == 0 {
			return true
		}
		for _, v := range candidateValues(lit.Value) {
			v := v
			edits = append(edits, func(counterpart func(ast.Node) ast.Node) bool {
				nl, ok := counterpart(lit).(*ast.IntLit)
				if !ok {
					return false
				}
				nl.Value = v
				return true
			})
		}
		return true
	})
	return edits
}

func candidateValues(v int64) []int64 {
	var out []int64
	for _, c := range []int64{0, 1, v / 2} {
		if c != v {
			out = append(out, c)
		}
	}
	return out
}

// replaceInTree substitutes r for the statement s wherever it hangs in
// the tree rooted at root. Counterexamples are small, so a whole-tree
// scan per edit is cheap.
func replaceInTree(root ast.Node, s, r ast.Stmt) bool {
	done := false
	ast.Inspect(root, func(n ast.Node) bool {
		if done {
			return false
		}
		switch n := n.(type) {
		case *ast.CompoundStmt:
			for i := range n.Stmts {
				if n.Stmts[i] == s {
					n.Stmts[i], done = r, true
					return false
				}
			}
		case *ast.RepeatStmt:
			for i := range n.Stmts {
				if n.Stmts[i] == s {
					n.Stmts[i], done = r, true
					return false
				}
			}
		case *ast.IfStmt:
			if n.Then == s {
				n.Then, done = r, true
				return false
			}
			if n.Else == s {
				n.Else, done = r, true
				return false
			}
		case *ast.WhileStmt:
			if n.Body == s {
				n.Body, done = r, true
				return false
			}
		case *ast.ForStmt:
			if n.Body == s {
				n.Body, done = r, true
				return false
			}
		case *ast.CaseStmt:
			for _, arm := range n.Arms {
				if arm.Body == s {
					arm.Body, done = r, true
					return false
				}
			}
			if n.Else == s {
				n.Else, done = r, true
				return false
			}
		case *ast.LabeledStmt:
			if n.Stmt == s {
				n.Stmt, done = r, true
				return false
			}
		}
		return true
	})
	return done
}
