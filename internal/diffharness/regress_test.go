package diffharness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCounterexamplesStayEquivalent replays every minimized
// counterexample in testdata/diff/ — programs on which the
// transformation once changed behavior — and asserts the recorded
// stage combination is now semantics-preserving. A failure here means
// a fixed transformation bug has regressed.
func TestCounterexamplesStayEquivalent(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "diff", "*.pas"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no counterexamples in testdata/diff — the regression corpus is missing")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			text, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			c, err := ParseCounterexample(string(text))
			if err != nil {
				t.Fatalf("parse header: %v", err)
			}
			o := CompareByStages(Config{}, Subject{Name: c.Subject, Source: c.Source, Input: c.Input}, c.Stages)
			if o.Status != StatusEquivalent {
				t.Fatalf("stages %s: %s (%s)\nrecorded bug: %s", c.Stages, o.Status, o.Detail, c.Detail)
			}
			// The full pipeline (or, for backend counterexamples, the
			// transformed backend axis) must agree as well, whatever
			// subset the divergence was originally attributed to.
			full := "loops+gotos+globals"
			if strings.HasPrefix(c.Stages, "backend:") {
				full = AxisVMFull
			}
			o = CompareByStages(Config{}, Subject{Name: c.Subject, Source: c.Source, Input: c.Input}, full)
			if o.Status != StatusEquivalent {
				t.Fatalf("full pipeline: %s (%s)", o.Status, o.Detail)
			}
		})
	}
}
