package diffharness

import (
	"strings"
	"testing"

	"gadt/internal/progen"
	"gadt/internal/transform"
)

// TestSmallCampaignIsEquivalent runs a compact seeded campaign end to
// end: every generated program must be semantics-preserving under
// every stage combination.
func TestSmallCampaignIsEquivalent(t *testing.T) {
	rep, err := Run(Config{Programs: 12, Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compared != 12*len(Combos()) {
		t.Fatalf("compared %d, want %d", rep.Compared, 12*len(Combos()))
	}
	if rep.Divergent != 0 || rep.Panics != 0 {
		for _, d := range rep.Divergences {
			t.Errorf("divergence %s [%s] %s: %s", d.Subject, d.Stages, d.Kind, d.Detail)
		}
		t.Fatalf("divergent %d, panics %d", rep.Divergent, rep.Panics)
	}
	if rep.Equivalent == 0 {
		t.Fatal("no equivalent comparisons — campaign did not run")
	}
}

// TestBackendAxisCampaign runs a compact campaign under the vm backend:
// the transform comparisons execute on the VM (with interpreter
// fallback) and every subject additionally runs interpreter-vs-VM,
// untransformed and fully transformed. Any backend divergence is an
// engine bug.
func TestBackendAxisCampaign(t *testing.T) {
	rep, err := Run(Config{Programs: 10, Seed: 42, Workers: 2, Backend: "vm"})
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * (len(Combos()) + 2)
	if rep.Compared != want {
		t.Fatalf("compared %d, want %d (transform combos + 2 backend axes)", rep.Compared, want)
	}
	if rep.Divergent != 0 || rep.Panics != 0 {
		for _, d := range rep.Divergences {
			t.Errorf("divergence %s [%s] %s: %s", d.Subject, d.Stages, d.Kind, d.Detail)
		}
		t.Fatalf("divergent %d, panics %d", rep.Divergent, rep.Panics)
	}
	for _, axis := range []string{AxisVM, AxisVMFull} {
		st := rep.ByStages[axis]
		if st == nil || st.Compared != 10 {
			t.Fatalf("axis %s compared %+v, want 10", axis, st)
		}
		if st.Equivalent == 0 {
			t.Fatalf("axis %s produced no equivalent comparisons", axis)
		}
	}
}

// TestRunRejectsUnknownBackend: a typo'd backend name must fail fast,
// not silently compare interpreter against interpreter.
func TestRunRejectsUnknownBackend(t *testing.T) {
	if _, err := Run(Config{Programs: 1, Backend: "jit"}); err == nil {
		t.Fatal("Run with unknown backend should error")
	}
}

// TestCompareDetectsSeededOutputBug checks the harness actually fires:
// comparing a program against a transformation of a DIFFERENT program
// is simulated by checking that diff() reports ok on identity and that
// a status mismatch is caught via a program whose transformed run is
// compared under an absurdly small budget.
func TestCompareEquivalentProgram(t *testing.T) {
	o := Compare(Config{}, Subject{
		Name: "tiny",
		Source: `program tiny;
var g: integer;
procedure bump;
begin
  g := g + 1;
end;
begin
  g := 1;
  bump;
  writeln(g);
end.
`,
	}, transform.AllStages())
	if o.Status != StatusEquivalent {
		t.Fatalf("status %s (%s), want equivalent", o.Status, o.Detail)
	}
}

// TestCompareFlagsInvalidSubject: a program that does not compile is
// inconclusive, not divergent.
func TestCompareFlagsInvalidSubject(t *testing.T) {
	o := Compare(Config{}, Subject{Name: "bad", Source: "program bad; begin x := 1 end."}, transform.AllStages())
	if o.Status != StatusInconclusive {
		t.Fatalf("status %s, want inconclusive", o.Status)
	}
}

// TestRandomProgramsDeterministic: the generator is fully determined by
// its seed — the campaign's reproducibility rests on this.
func TestRandomProgramsDeterministic(t *testing.T) {
	a := progen.Random(progen.RandomConfig{Seed: 7, Gotos: true, Reads: true})
	b := progen.Random(progen.RandomConfig{Seed: 7, Gotos: true, Reads: true})
	if a.Source != b.Source || a.Input != b.Input {
		t.Fatal("same seed produced different programs")
	}
	c := progen.Random(progen.RandomConfig{Seed: 8, Gotos: true, Reads: true})
	if a.Source == c.Source {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestShrinkReducesCounterexample drives the shrinker with a synthetic
// "divergence" predicate (the program still assigns the magic constant
// 123) and checks the result is substantially smaller yet still
// contains the culprit.
func TestShrinkPreservesPredicate(t *testing.T) {
	p := progen.Random(progen.RandomConfig{Seed: 3})
	src := strings.Replace(p.Source, "begin\n", "begin\n  g0 := 123;\n", 1)
	// Shrink against the real differential predicate would find nothing
	// (the pipeline is equivalent), so exercise shrinkPass directly.
	keeps := func(s string) bool { return strings.Contains(s, "123") }
	min, changed := shrinkPass(src, keeps)
	for changed {
		min, changed = shrinkPass(min, keeps)
	}
	if !strings.Contains(min, "123") {
		t.Fatal("shrinking lost the predicate")
	}
	if len(min) >= len(src) {
		t.Fatalf("no reduction: %d -> %d bytes", len(src), len(min))
	}
	if got, want := len(strings.Split(min, "\n")), 15; got > want {
		t.Logf("minimized to %d lines:\n%s", got, min)
	}
}

// TestCounterexampleRoundTrip checks the testdata/diff file format.
func TestCounterexampleRoundTrip(t *testing.T) {
	d := Divergence{
		Subject: "rnd9",
		Stages:  "loops+globals",
		Kind:    "state",
		Input:   "3 4",
		Detail:  "global g0: original 5, transformed {6}",
	}
	text := EncodeCounterexample(d, "program p;\nbegin\nend.\n")
	c, err := ParseCounterexample(text)
	if err != nil {
		t.Fatal(err)
	}
	if c.Subject != "rnd9" || c.Kind != "state" || c.Input != "3 4" {
		t.Fatalf("round trip lost metadata: %+v", c)
	}
	if c.Stages != "loops+globals" {
		t.Fatalf("stages round trip: %q", c.Stages)
	}
	if c.Source != "program p;\nbegin\nend.\n" {
		t.Fatalf("source round trip: %q", c.Source)
	}
}
