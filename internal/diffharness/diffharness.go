// Package diffharness implements differential testing of the
// transformation pipeline: the GADT method rests on the claim that the
// Section 5.1/6 transformation is semantics-preserving, and this
// package checks that claim end-to-end. Every subject program is run
// untransformed and after each transformation stage combination; the
// two executions must agree on stdout and on the final values of the
// program's global variables. Any disagreement is a transformation (or
// interpreter) bug.
//
// Subjects come from three pools: the seeded random generator
// (progen.Random, exercising loops of all forms, nested routines,
// global communication and global gotos), the corpus fixtures, and a
// spread of progen shapes. Divergent subjects are shrunk to minimal
// counterexamples (see shrink.go) that land in testdata/diff/ as
// standing regression tests.
package diffharness

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gadt/internal/corpus"
	"gadt/internal/obs"
	"gadt/internal/pascal/backend"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/vm"
	"gadt/internal/progen"
	"gadt/internal/transform"
)

// Subject is one program whose transformed executions are compared
// against its untransformed execution.
type Subject struct {
	Name   string
	Source string
	Input  string
	// ephemeral marks shrinker candidates: one-shot sources that must
	// not populate the content-addressed compile cache.
	ephemeral bool
}

// Backend-axis combo names: interpreter-vs-VM comparisons on the
// untransformed subject and on its fully transformed pipeline output.
const (
	AxisVM     = "backend:vm"
	AxisVMFull = "backend:vm+full"
)

// Combos returns the stage combinations every subject runs through.
// Passes always execute in pipeline order; the subsets attribute an
// equivalence failure to the pass whose addition introduced it.
func Combos() []transform.Stages {
	return []transform.Stages{
		{Globals: true},
		{Gotos: true, Globals: true},
		{Loops: true, Globals: true},
		transform.AllStages(),
	}
}

// Comparison status values.
const (
	StatusEquivalent   = "equivalent"   // all comparisons agreed
	StatusDivergent    = "divergent"    // a transformation changed behavior: a bug
	StatusRejected     = "rejected"     // transformer refused the subject (known limitation)
	StatusInconclusive = "inconclusive" // fuel/depth budget exhausted on either side
	StatusPanic        = "panic"        // pipeline panicked (isolated to the subject)
	StatusTimeout      = "timeout"      // wall-clock backstop exceeded
)

// Config shapes a differential campaign.
type Config struct {
	// Programs is the number of random programs to generate (0 = 200).
	Programs int
	// Seed drives program generation; same seed, same campaign.
	Seed int64
	// Corpus additionally includes the corpus fixtures and progen shapes.
	Corpus bool
	// Workers sizes the pool (<= 0 = GOMAXPROCS).
	Workers int
	// Fuel is the untransformed run's statement budget (0 = 1e6).
	// Transformed runs get 8x: loop extraction multiplies statement
	// counts, and a fuel divergence must mean non-termination, not a
	// constant-factor slowdown.
	Fuel int
	// Timeout is the per-(subject, combo) wall-clock backstop (0 = 20s).
	Timeout time.Duration
	// Shrink minimizes divergent subjects to counterexamples.
	Shrink bool
	// Metrics, when non-nil, receives diff.* counters, the live
	// diff.inflight/diff.done gauges, and the labeled
	// diff.outcomes{status=...} series.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per comparison on a
	// per-worker lane (one Perfetto track per pool worker) and one span
	// per shrink.
	Tracer *obs.Tracer
	// Progress, when non-nil, receives periodic heartbeat lines
	// (throughput, ETA, divergences so far) during the run.
	Progress io.Writer
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Backend selects the execution engine for the transform
	// comparisons ("" or "interp" = interpreter, "vm" = bytecode VM
	// with transparent interpreter fallback). Selecting "vm" also adds
	// the backend comparison axis: every subject additionally runs
	// interpreter-vs-VM, untransformed (backend:vm) and fully
	// transformed (backend:vm+full), under the same
	// stdout/status/error-class/globals comparison and shrinker.
	Backend string

	// be is the resolved Backend, set by withDefaults.
	be backend.Backend
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Programs <= 0 {
		out.Programs = 200
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Fuel <= 0 {
		out.Fuel = 1_000_000
	}
	if out.Timeout <= 0 {
		out.Timeout = 20 * time.Second
	}
	if out.be == nil {
		be, err := backend.Select(out.Backend)
		if err != nil {
			// Run surfaces the unknown name; comparisons stay safe on
			// the interpreter.
			be, _ = backend.Select("")
		}
		out.be = be
	}
	return out
}

// Divergence describes one semantic disagreement between an
// untransformed and a transformed execution.
type Divergence struct {
	Subject string `json:"subject"`
	Stages  string `json:"stages"`
	// Kind classifies the disagreement: "output" (stdout differs),
	// "state" (final global values differ), "status" (one run errored
	// or ran out of fuel while the other completed), "error" (both
	// errored, differently), "transform" (the pipeline failed on a
	// valid program).
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	// Source/Input reproduce the divergence; Minimized is the shrunk
	// counterexample when shrinking ran (else "").
	Source    string `json:"source"`
	Input     string `json:"input,omitempty"`
	Minimized string `json:"minimized,omitempty"`
}

// Outcome is the verdict on one (subject, stage combination) pair.
type Outcome struct {
	Subject   string      `json:"subject"`
	Stages    string      `json:"stages"`
	Status    string      `json:"status"`
	Detail    string      `json:"detail,omitempty"`
	Div       *Divergence `json:"divergence,omitempty"`
	ElapsedMS int64       `json:"elapsed_ms"`
}

// Subjects builds the campaign subject pool for a config.
func Subjects(cfg Config) []Subject {
	cfg = cfg.withDefaults()
	var subs []Subject
	for i := 0; i < cfg.Programs; i++ {
		p := progen.Random(progen.RandomConfig{Seed: cfg.Seed + int64(i), Gotos: true, Reads: i%2 == 0})
		subs = append(subs, Subject{Name: p.Name, Source: p.Source, Input: p.Input})
	}
	if cfg.Corpus {
		for _, p := range corpus.All() {
			subs = append(subs, Subject{Name: p.Name, Source: p.Source, Input: p.Input})
		}
		for _, shape := range []progen.Config{
			{Depth: 2, Fanout: 2},
			{Depth: 3, Fanout: 2},
			{Depth: 2, Fanout: 2, Style: progen.Globals},
			{Depth: 2, Fanout: 2, Loops: true},
		} {
			style := "params"
			if shape.Style == progen.Globals {
				style = "globals"
			}
			p := progen.Generate(shape)
			subs = append(subs, Subject{
				Name:   fmt.Sprintf("synth(d=%d,f=%d,%s,loops=%v)", shape.Depth, shape.Fanout, style, shape.Loops),
				Source: p.Fixed,
			})
		}
	}
	return subs
}

type job struct {
	subject Subject
	stages  transform.Stages
	// axis, when non-empty, makes this job a backend comparison
	// (AxisVM or AxisVMFull) instead of a transform comparison.
	axis string
}

func (j job) stagesStr() string {
	if j.axis != "" {
		return j.axis
	}
	return j.stages.String()
}

// combosFor lists the combo names a config compares under.
func combosFor(cfg Config) []string {
	var combos []string
	for _, c := range Combos() {
		combos = append(combos, c.String())
	}
	if cfg.Backend == "vm" {
		combos = append(combos, AxisVM, AxisVMFull)
	}
	return combos
}

// Run executes the campaign and returns the aggregated report.
func Run(cfg Config) (*Report, error) {
	if _, err := backend.Select(cfg.Backend); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	subs := Subjects(cfg)

	var jobs []job
	for _, s := range subs {
		for _, st := range Combos() {
			jobs = append(jobs, job{subject: s, stages: st})
		}
		if cfg.Backend == "vm" {
			jobs = append(jobs,
				job{subject: s, axis: AxisVM},
				job{subject: s, axis: AxisVMFull})
		}
	}
	if cfg.Logf != nil {
		cfg.Logf("diff: %d subjects x %d combos = %d comparisons (%d workers)",
			len(subs), len(combosFor(cfg)), len(jobs), cfg.Workers)
	}

	rec := obs.NewReportRecorder(cfg.Metrics, "diff")
	var hb *obs.Heartbeat
	if cfg.Progress != nil {
		hb = obs.StartHeartbeat(obs.HeartbeatConfig{
			W:     cfg.Progress,
			Label: "diff",
			Total: int64(len(jobs)),
			Done:  rec.DoneCount,
			Extra: func() string {
				return fmt.Sprintf("equivalent=%d divergent=%d",
					rec.StatusCount(StatusEquivalent), rec.StatusCount(StatusDivergent))
			},
		})
	}

	in := make(chan job)
	out := make(chan Outcome, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lane := cfg.Tracer.Lane("diff-worker-" + strconv.Itoa(id))
			// One "worker" span covers the lane's whole lifetime; the
			// per-comparison spans nest under it, so Perfetto shows both
			// the worker occupancy bar and the individual comparisons.
			wsp := lane.Start("worker")
			defer wsp.End()
			for j := range in {
				sp := lane.Start("compare")
				sp.SetAttr("subject", j.subject.Name)
				sp.SetAttr("stages", j.stagesStr())
				rec.JobStart()
				jobStart := time.Now()
				o := compareWithBackstop(cfg, j)
				rec.JobDone(o.Status, time.Since(jobStart))
				sp.SetAttr("status", o.Status)
				sp.End()
				out <- o
			}
		}(w)
	}
	for _, j := range jobs {
		in <- j
	}
	close(in)
	wg.Wait()
	close(out)
	rec.Finish(cfg.Workers)
	hb.Stop()

	var outcomes []Outcome
	for o := range out {
		outcomes = append(outcomes, o)
	}
	sort.Slice(outcomes, func(i, j int) bool {
		if outcomes[i].Subject != outcomes[j].Subject {
			return outcomes[i].Subject < outcomes[j].Subject
		}
		return outcomes[i].Stages < outcomes[j].Stages
	})

	if cfg.Shrink {
		for i := range outcomes {
			o := &outcomes[i]
			if o.Status != StatusDivergent || o.Div == nil || o.Div.Kind == "transform" {
				continue
			}
			if cfg.Logf != nil {
				cfg.Logf("diff: shrinking %s [%s]", o.Subject, o.Stages)
			}
			sp := cfg.Tracer.Start("shrink")
			sp.SetAttr("subject", o.Subject)
			sp.SetAttr("stages", o.Stages)
			min := Shrink(o.Div.Source, o.Div.Input, o.Stages, cfg)
			o.Div.Minimized = min
			sp.End()
		}
	}

	rep := aggregate(cfg, len(subs), outcomes, time.Since(start))
	record(cfg.Metrics, rep)
	return rep, nil
}

// compareWithBackstop runs one comparison with panic isolation and a
// wall-clock watchdog; both runs are fuel-bounded, so an abandoned
// evaluation always terminates shortly after.
func compareWithBackstop(cfg Config, j job) Outcome {
	ch := make(chan Outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- Outcome{
					Subject: j.subject.Name, Stages: j.stagesStr(),
					Status: StatusPanic, Detail: fmt.Sprint(r),
					Div: &Divergence{
						Subject: j.subject.Name, Stages: j.stagesStr(),
						Kind: "panic", Detail: fmt.Sprint(r),
						Source: j.subject.Source, Input: j.subject.Input,
					},
				}
			}
		}()
		if j.axis != "" {
			ch <- CompareBackends(cfg, j.subject, j.axis == AxisVMFull)
		} else {
			ch <- Compare(cfg, j.subject, j.stages)
		}
	}()
	select {
	case o := <-ch:
		return o
	case <-time.After(cfg.Timeout):
		return Outcome{
			Subject: j.subject.Name, Stages: j.stagesStr(),
			Status: StatusTimeout,
			Detail: fmt.Sprintf("wall-clock backstop (%s) exceeded", cfg.Timeout),
		}
	}
}

// baseMaxDepth is the untransformed run's call-depth budget; the
// transformed run gets 10x (loops become recursion), still small
// enough that the interpreter's Go stack survives hitting it.
const baseMaxDepth = 2_000

// runResult is the observable behavior of one execution.
type runResult struct {
	status  string // "ok", "error", "fuel"
	output  string
	errMsg  string            // normalized runtime error text ("" unless status "error")
	globals map[string]string // final global values by name (only for "ok")
	steps   int               // statements executed
}

// exec runs a program via the given runner factory and snapshots its
// observable behavior. keep restricts the final-state snapshot to the
// given global names (the transformation introduces fresh helper
// variables that have no counterpart in the original program).
func exec(mk func(interp.Config) backend.Runner, input string, fuel, depth int, keep map[string]bool) *runResult {
	var out strings.Builder
	it := mk(interp.Config{
		Input:    strings.NewReader(input),
		Output:   &out,
		MaxSteps: fuel,
		MaxDepth: depth,
	})
	err := it.Run()
	r := &runResult{output: out.String(), steps: it.Steps()}
	switch {
	case err == nil:
		r.status = "ok"
		r.globals = make(map[string]string)
		for _, b := range it.Globals() {
			if keep[b.Name] {
				r.globals[b.Name] = interp.FormatValue(b.Value)
			}
		}
	case errors.Is(err, interp.ErrFuelExhausted), errors.Is(err, interp.ErrDepthExhausted):
		r.status = "fuel"
	default:
		r.status = "error"
		r.errMsg = normalizeErr(err)
	}
	return r
}

// onBackend builds a runner factory for one analyzed program on the
// campaign's configured backend. key is the content address for the
// VM's compile cache ("" disables caching — used for shrink candidates).
func onBackend(be backend.Backend, key string, info *sem.Info) func(interp.Config) backend.Runner {
	return func(c interp.Config) backend.Runner { return be.NewRunner(key, info, c) }
}

// normalizeErr strips source positions from a runtime error so the
// original and the transformed program (whose positions differ) can be
// compared by failure kind.
func normalizeErr(err error) string {
	var re *interp.RuntimeError
	if errors.As(err, &re) {
		return re.Msg
	}
	return err.Error()
}

// globalNames collects the names of the program block's variables: the
// observable final state both executions must agree on.
func globalNames(info *sem.Info) map[string]bool {
	names := make(map[string]bool)
	for _, v := range info.Main.Locals {
		names[v.Name] = true
	}
	return names
}

// outcomeFromDelta classifies a comparison verdict into an Outcome.
func outcomeFromDelta(s Subject, stagesStr string, d *delta) Outcome {
	o := Outcome{Subject: s.Name, Stages: stagesStr}
	if d == nil {
		o.Status = StatusEquivalent
		return o
	}
	switch d.kind {
	case "invalid":
		o.Status = StatusInconclusive
		o.Detail = "subject does not compile: " + d.detail
		return o
	case "rejected":
		o.Status = StatusRejected
		o.Detail = d.detail
		return o
	case "fuel":
		o.Status = StatusInconclusive
		o.Detail = d.detail
		return o
	}
	o.Status = StatusDivergent
	o.Detail = fmt.Sprintf("%s: %s", d.kind, d.detail)
	o.Div = &Divergence{
		Subject: s.Name, Stages: stagesStr,
		Kind: d.kind, Detail: d.detail,
		Source: s.Source, Input: s.Input,
	}
	return o
}

// Compare runs one subject untransformed and through one stage
// combination, and compares the two behaviors.
func Compare(cfg Config, s Subject, stages transform.Stages) Outcome {
	cfg = cfg.withDefaults()
	start := time.Now()
	o := outcomeFromDelta(s, stages.String(), diff(cfg, s, stages))
	o.ElapsedMS = time.Since(start).Milliseconds()
	return o
}

// CompareBackends runs one subject on both the interpreter and the VM
// — untransformed, or (full) on its fully transformed pipeline output
// — and compares the two executions with the same criteria as the
// transform comparisons, plus exact statement-count parity.
func CompareBackends(cfg Config, s Subject, full bool) Outcome {
	cfg = cfg.withDefaults()
	start := time.Now()
	axis := AxisVM
	if full {
		axis = AxisVMFull
	}
	o := outcomeFromDelta(s, axis, diffBackends(cfg, s, full))
	o.ElapsedMS = time.Since(start).Milliseconds()
	return o
}

// CompareByStages replays a comparison from its recorded combo name:
// a transform stage combination, or a backend axis.
func CompareByStages(cfg Config, s Subject, stagesStr string) Outcome {
	if strings.HasPrefix(stagesStr, "backend:") {
		return CompareBackends(cfg, s, strings.HasSuffix(stagesStr, "+full"))
	}
	return Compare(cfg, s, parseStages(stagesStr))
}

// delta is an internal comparison verdict (nil = equivalent).
type delta struct {
	kind   string
	detail string
}

// diff performs the actual differential comparison for one subject and
// stage combination; nil means the behaviors agree. The shrinker calls
// this directly to re-check candidate reductions.
func diff(cfg Config, s Subject, stages transform.Stages) *delta {
	prog, err := parser.ParseProgram(s.Name+".pas", s.Source)
	if err != nil {
		return &delta{kind: "invalid", detail: err.Error()}
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return &delta{kind: "invalid", detail: err.Error()}
	}
	keep := globalNames(info)

	// Content-address the compile cache only for pool subjects on the
	// VM backend; shrink candidates are one-shot and skip it.
	var baseKey, transKey string
	if cfg.Backend == "vm" && !s.ephemeral {
		baseKey = vm.SourceKey(s.Source)
		transKey = baseKey + "|" + stages.String()
	}

	base := exec(onBackend(cfg.be, baseKey, info), s.Input, cfg.Fuel, baseMaxDepth, keep)
	if base.status == "fuel" {
		return &delta{kind: "fuel", detail: "untransformed run exhausted its budget"}
	}

	res, err := transform.ApplyStages(info, stages)
	if err != nil {
		if strings.Contains(err.Error(), "non-local goto") {
			// The paper's transformation cannot break a goto that exits
			// a function (Section 6): a documented rejection, not a bug.
			return &delta{kind: "rejected", detail: err.Error()}
		}
		return &delta{kind: "transform", detail: err.Error()}
	}

	// 8x fuel and 10x call depth: loop extraction turns iteration into
	// recursion, multiplying both counters by a constant factor. The
	// depth cap stays far below the Go stack limit so an introduced
	// infinite recursion degrades into ErrDepthExhausted, not a crash.
	trans := exec(onBackend(cfg.be, transKey, res.Info), s.Input, 8*cfg.Fuel, 10*baseMaxDepth, keep)
	if trans.status == "fuel" {
		// The untransformed run finished within 1x budget, so at 8x this
		// is overwhelmingly a transformation-introduced loop — but it
		// cannot be told apart from a pathological slowdown, so it is
		// reported as its own kind rather than folded into "status".
		return &delta{kind: "status", detail: "transformed run exhausted 8x budget while original completed"}
	}

	if base.status != trans.status {
		return &delta{kind: "status", detail: fmt.Sprintf(
			"original %s (%s) but transformed %s (%s)",
			describeStatus(base), base.errMsg, describeStatus(trans), trans.errMsg)}
	}
	if base.output != trans.output {
		return &delta{kind: "output", detail: outputDiff(base.output, trans.output)}
	}
	if base.status == "error" {
		if base.errMsg != trans.errMsg {
			return &delta{kind: "error", detail: fmt.Sprintf(
				"original failed with %q, transformed with %q", base.errMsg, trans.errMsg)}
		}
		return nil // same failure, same output up to the failure point
	}
	if d := stateDiff(base.globals, trans.globals); d != "" {
		return &delta{kind: "state", detail: d}
	}
	return nil
}

// diffBackends compares the interpreter and the VM on the same
// analyzed program (untransformed, or the full pipeline output). Both
// sides run under identical budgets, so the comparison is strict:
// status (fuel exhaustion included), stdout, normalized error message,
// statement count and final globals must all match exactly. Programs
// the bytecode compiler refuses (non-local gotos) are rejected — that
// is the documented interpreter-fallback territory, not a divergence.
func diffBackends(cfg Config, s Subject, full bool) *delta {
	prog, err := parser.ParseProgram(s.Name+".pas", s.Source)
	if err != nil {
		return &delta{kind: "invalid", detail: err.Error()}
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return &delta{kind: "invalid", detail: err.Error()}
	}

	runInfo, fuel, depth := info, cfg.Fuel, baseMaxDepth
	if full {
		res, terr := transform.ApplyStages(info, transform.AllStages())
		if terr != nil {
			if strings.Contains(terr.Error(), "non-local goto") {
				return &delta{kind: "rejected", detail: terr.Error()}
			}
			return &delta{kind: "transform", detail: terr.Error()}
		}
		runInfo, fuel, depth = res.Info, 8*cfg.Fuel, 10*baseMaxDepth
	}
	keep := globalNames(runInfo)

	vprog, cerr := vm.Compile(runInfo)
	if cerr != nil {
		if errors.Is(cerr, vm.ErrUnsupported) {
			return &delta{kind: "rejected", detail: cerr.Error()}
		}
		return &delta{kind: "compile", detail: cerr.Error()}
	}

	base := exec(func(c interp.Config) backend.Runner {
		return interp.New(runInfo, c)
	}, s.Input, fuel, depth, keep)
	got := exec(func(c interp.Config) backend.Runner {
		return vm.New(vprog, c)
	}, s.Input, fuel, depth, keep)

	if base.status != got.status {
		return &delta{kind: "status", detail: fmt.Sprintf(
			"interpreter %s (%s) but vm %s (%s)",
			describeStatus(base), base.errMsg, describeStatus(got), got.errMsg)}
	}
	if base.output != got.output {
		return &delta{kind: "output", detail: outputDiff(base.output, got.output)}
	}
	if base.status == "error" && base.errMsg != got.errMsg {
		return &delta{kind: "error", detail: fmt.Sprintf(
			"interpreter failed with %q, vm with %q", base.errMsg, got.errMsg)}
	}
	if base.steps != got.steps {
		return &delta{kind: "steps", detail: fmt.Sprintf(
			"interpreter executed %d statements, vm %d", base.steps, got.steps)}
	}
	if base.status == "ok" {
		if d := stateDiff(base.globals, got.globals); d != "" {
			return &delta{kind: "state", detail: d}
		}
	}
	return nil
}

func describeStatus(r *runResult) string {
	switch r.status {
	case "ok":
		return "completed"
	case "error":
		return "failed"
	}
	return r.status
}

// stateDiff reports the first differing global ("" when equal).
func stateDiff(base, trans map[string]string) string {
	var names []string
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		got, ok := trans[n]
		if !ok {
			return fmt.Sprintf("global %s missing after transformation", n)
		}
		if got != base[n] {
			return fmt.Sprintf("global %s: original %s, transformed %s", n, base[n], got)
		}
	}
	return ""
}

// outputDiff summarizes the first stdout divergence.
func outputDiff(want, got string) string {
	max := len(want)
	if len(got) < max {
		max = len(got)
	}
	i := 0
	for i < max && want[i] == got[i] {
		i++
	}
	lo := i - 16
	if lo < 0 {
		lo = 0
	}
	trunc := func(s string) string {
		hi := i + 16
		if hi > len(s) {
			hi = len(s)
		}
		return fmt.Sprintf("%q", s[lo:hi])
	}
	return fmt.Sprintf("stdout diverges at byte %d: original ...%s, transformed ...%s", i, trunc(want), trunc(got))
}

// parseStages inverts Stages.String.
func parseStages(s string) transform.Stages {
	var st transform.Stages
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "loops":
			st.Loops = true
		case "gotos":
			st.Gotos = true
		case "globals":
			st.Globals = true
		}
	}
	return st
}
