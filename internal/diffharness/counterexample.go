package diffharness

import (
	"fmt"
	"strings"
)

// Counterexample is the header metadata of a testdata/diff reproducer:
// enough to replay the comparison that once diverged. Stages is the
// combo name as recorded — a transform stage combination like
// "loops+globals", or a backend axis like "backend:vm" — and replays
// through CompareByStages.
type Counterexample struct {
	Subject string
	Stages  string
	Kind    string
	Input   string
	Detail  string
	Source  string // the program itself (header stripped)
}

// EncodeCounterexample renders a divergence as a self-describing Pascal
// file: a leading comment block with the replay metadata, then the
// (minimized) program. The file is itself valid Pascal.
func EncodeCounterexample(d Divergence, source string) string {
	clean := func(s string) string {
		s = strings.ReplaceAll(s, "}", ")")
		s = strings.ReplaceAll(s, "\n", " ")
		return s
	}
	var b strings.Builder
	b.WriteString("{ pdiff minimized counterexample\n")
	fmt.Fprintf(&b, "  subject: %s\n", clean(d.Subject))
	fmt.Fprintf(&b, "  stages: %s\n", d.Stages)
	fmt.Fprintf(&b, "  kind: %s\n", clean(d.Kind))
	fmt.Fprintf(&b, "  input: %s\n", clean(d.Input))
	fmt.Fprintf(&b, "  detail: %s\n", clean(d.Detail))
	b.WriteString("}\n")
	b.WriteString(source)
	return b.String()
}

// ParseCounterexample reads a file produced by EncodeCounterexample.
func ParseCounterexample(text string) (*Counterexample, error) {
	if !strings.HasPrefix(text, "{ pdiff") {
		return nil, fmt.Errorf("not a pdiff counterexample (missing header)")
	}
	end := strings.Index(text, "}")
	if end < 0 {
		return nil, fmt.Errorf("unterminated header comment")
	}
	c := &Counterexample{Source: strings.TrimPrefix(text[end+1:], "\n")}
	for _, line := range strings.Split(text[:end], "\n") {
		key, val, ok := strings.Cut(strings.TrimSpace(line), ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "subject":
			c.Subject = val
		case "stages":
			c.Stages = val
		case "kind":
			c.Kind = val
		case "input":
			c.Input = val
		case "detail":
			c.Detail = val
		}
	}
	return c, nil
}
