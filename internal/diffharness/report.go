package diffharness

import (
	"encoding/json"
	"io"
	"time"

	"gadt/internal/obs"
)

// StageStats aggregates outcomes per stage combination.
type StageStats struct {
	Compared     int `json:"compared"`
	Equivalent   int `json:"equivalent"`
	Divergent    int `json:"divergent"`
	Rejected     int `json:"rejected"`
	Inconclusive int `json:"inconclusive"`
	Panics       int `json:"panics"`
	Timeouts     int `json:"timeouts"`
}

// Report is the campaign summary written to BENCH_diff.json.
type Report struct {
	Seed      int64    `json:"seed"`
	Programs  int      `json:"programs"`
	Subjects  int      `json:"subjects"`
	Combos    []string `json:"combos"`
	Workers   int      `json:"workers"`
	Fuel      int      `json:"fuel"`
	Backend   string   `json:"backend,omitempty"`
	ElapsedMS int64    `json:"elapsed_ms"`

	Compared     int `json:"compared"`
	Equivalent   int `json:"equivalent"`
	Divergent    int `json:"divergent"`
	Rejected     int `json:"rejected"`
	Inconclusive int `json:"inconclusive"`
	Panics       int `json:"panics"`
	Timeouts     int `json:"timeouts"`

	ByStages map[string]*StageStats `json:"by_stages"`

	// Divergences carries every disagreement with its (possibly
	// minimized) reproducer — the campaign's actionable output.
	Divergences []Divergence `json:"divergences,omitempty"`

	Outcomes []Outcome `json:"outcomes"`
}

func aggregate(cfg Config, subjects int, outcomes []Outcome, elapsed time.Duration) *Report {
	combos := combosFor(cfg)
	rep := &Report{
		Seed:      cfg.Seed,
		Programs:  cfg.Programs,
		Subjects:  subjects,
		Combos:    combos,
		Workers:   cfg.Workers,
		Fuel:      cfg.Fuel,
		Backend:   cfg.Backend,
		ElapsedMS: elapsed.Milliseconds(),
		ByStages:  make(map[string]*StageStats),
		Outcomes:  outcomes,
	}
	for _, o := range outcomes {
		st := rep.ByStages[o.Stages]
		if st == nil {
			st = &StageStats{}
			rep.ByStages[o.Stages] = st
		}
		rep.Compared++
		st.Compared++
		switch o.Status {
		case StatusEquivalent:
			rep.Equivalent++
			st.Equivalent++
		case StatusDivergent:
			rep.Divergent++
			st.Divergent++
			if o.Div != nil {
				rep.Divergences = append(rep.Divergences, *o.Div)
			}
		case StatusRejected:
			rep.Rejected++
			st.Rejected++
		case StatusInconclusive:
			rep.Inconclusive++
			st.Inconclusive++
		case StatusPanic:
			rep.Panics++
			st.Panics++
			if o.Div != nil {
				rep.Divergences = append(rep.Divergences, *o.Div)
			}
		case StatusTimeout:
			rep.Timeouts++
			st.Timeouts++
		}
	}
	return rep
}

// record exports the harness-specific end-of-run totals to the
// observability registry. Per-status tallies, in-flight/done gauges,
// per-job latency and pool size are recorded live by the shared
// obs.ReportRecorder in Run — only what the recorder cannot know lands
// here.
func record(m *obs.Registry, rep *Report) {
	if m == nil {
		return
	}
	m.Counter("diff.compared").Add(int64(rep.Compared))
	m.Counter("diff.subjects").Add(int64(rep.Subjects))
	m.Counter("diff.shrunk").Add(int64(len(rep.Divergences)))
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
