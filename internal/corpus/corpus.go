// Package corpus holds a collection of realistic Pascal subject programs
// beyond the paper's own examples, each exercising a different
// combination of language features. The corpus test matrix runs every
// program through the full pipeline: interpretation, transformation
// equivalence, tracing, and (for entries with planted bugs) debugging.
package corpus

// Program is one corpus entry.
type Program struct {
	Name   string
	Source string
	// Input is fed to read/readln.
	Input string
	// Want is the expected output.
	Want string
	// Buggy optionally holds a variant with a planted bug, and BugUnit
	// the unit the debugger must localize it in.
	Buggy   string
	BugUnit string
}

// All returns the corpus.
func All() []Program {
	return []Program{
		{
			Name: "bubblesort",
			Source: `
program bubblesort;
type arr = array [1 .. 8] of integer;
var a: arr;
    n, i: integer;

procedure swap(var x, y: integer);
var t: integer;
begin
  t := x;
  x := y;
  y := t;
end;

procedure sort(var v: arr; n: integer);
var i, j: integer;
begin
  for i := 1 to n - 1 do
    for j := 1 to n - i do
      if v[j] > v[j + 1] then
        swap(v[j], v[j + 1]);
end;

begin
  n := 6;
  for i := 1 to n do
    read(a[i]);
  sort(a, n);
  for i := 1 to n do begin
    write(a[i]);
    write(' ');
  end;
  writeln('');
end.`,
			Input: "5 3 8 1 9 2",
			Want:  "1 2 3 5 8 9 \n",
		},
		{
			Name: "gcdlcm",
			Source: `
program gcdlcm;
var a, b: integer;

function gcd(x, y: integer): integer;
var t: integer;
begin
  while y <> 0 do begin
    t := x mod y;
    x := y;
    y := t;
  end;
  gcd := x;
end;

function lcm(x, y: integer): integer;
begin
  lcm := x div gcd(x, y) * y;
end;

begin
  read(a, b);
  writeln(gcd(a, b), lcm(a, b));
end.`,
			Input: "12 18",
			Want:  "6 36\n",
		},
		{
			Name: "statemachine",
			Source: `
program statemachine;
var state, input, steps: integer;

procedure step(sym: integer; var st: integer);
begin
  case st of
    0: if sym = 1 then st := 1 else st := 0;
    1: if sym = 0 then st := 2 else st := 1;
    2: if sym = 1 then st := 3 else st := 0;
  else st := 3;
  end;
end;

begin
  state := 0;
  steps := 0;
  read(input);
  while input >= 0 do begin
    step(input, state);
    steps := steps + 1;
    read(input);
  end;
  writeln(state, steps);
end.`,
			Input: "1 0 1 -1",
			Want:  "3 3\n",
		},
		{
			Name: "banking",
			Source: `
program banking;
type account = record id, balance: integer end;
type book = array [1 .. 4] of account;
var accounts: book;
    i, op, acct, amount: integer;

procedure deposit(var a: account; amt: integer);
begin
  a.balance := a.balance + amt;
end;

procedure withdraw(var a: account; amt: integer; var ok: boolean);
begin
  ok := a.balance >= amt;
  if ok then
    a.balance := a.balance - amt;
end;

var ok: boolean;
begin
  for i := 1 to 4 do begin
    accounts[i].id := i;
    accounts[i].balance := 100;
  end;
  read(op);
  while op > 0 do begin
    read(acct, amount);
    if op = 1 then
      deposit(accounts[acct], amount)
    else begin
      withdraw(accounts[acct], amount, ok);
      if not ok then
        writeln('insufficient', acct);
    end;
    read(op);
  end;
  for i := 1 to 4 do begin
    write(accounts[i].balance);
    write(' ');
  end;
  writeln('');
end.`,
			Input: "1 2 50 2 3 170 2 1 30 0",
			Want:  "insufficient 3\n70 150 100 100 \n",
		},
		{
			Name: "collatz",
			Source: `
program collatz;
var n, steps, peak: integer;

procedure bump(var current, peak: integer);
begin
  if current > peak then
    peak := current;
end;

begin
  read(n);
  steps := 0;
  peak := n;
  while n <> 1 do begin
    if odd(n) then
      n := 3 * n + 1
    else
      n := n div 2;
    bump(n, peak);
    steps := steps + 1;
  end;
  writeln(steps, peak);
end.`,
			Input: "27",
			Want:  "111 9232\n",
		},
		{
			Name: "strings",
			Source: `
program strings;
var word, acc: string;
    count: integer;

procedure glue(w: string; var target: string; var n: integer);
begin
  if target = '' then
    target := w
  else
    target := target + '-' + w;
  n := n + 1;
end;

begin
  acc := '';
  count := 0;
  read(word);
  while word <> 'stop' do begin
    glue(word, acc, count);
    read(word);
  end;
  writeln(acc, count);
end.`,
			Input: "alpha beta gamma stop",
			Want:  "alpha-beta-gamma 3\n",
		},
		{
			Name: "matrixtrace",
			Source: `
program matrixtrace;
type row = array [1 .. 3] of integer;
type mat = array [1 .. 3] of row;
var m: mat;
    i, j, tr, total: integer;

procedure fill(var mm: mat);
var i, j: integer;
begin
  for i := 1 to 3 do
    for j := 1 to 3 do
      mm[i][j] := i * 10 + j;
end;

procedure sums(mm: mat; var diag, all: integer);
var i, j: integer;
begin
  diag := 0;
  all := 0;
  for i := 1 to 3 do begin
    diag := diag + mm[i][i];
    for j := 1 to 3 do
      all := all + mm[i][j];
  end;
end;

begin
  fill(m);
  sums(m, tr, total);
  writeln(tr, total);
end.`,
			Want: "66 198\n",
		},
		{
			Name: "primes",
			Source: `
program primes;
var limit, n, count: integer;

function isprime(n: integer): boolean;
var d: integer;
    composite: boolean;
begin
  composite := n < 2;
  d := 2;
  while (d * d <= n) and not composite do begin
    if n mod d = 0 then
      composite := true;
    d := d + 1;
  end;
  isprime := not composite;
end;

begin
  read(limit);
  count := 0;
  for n := 2 to limit do
    if isprime(n) then
      count := count + 1;
  writeln(count);
end.`,
			Input: "100",
			Want:  "25\n",
			Buggy: `
program primes;
var limit, n, count: integer;

function isprime(n: integer): boolean;
var d: integer;
    composite: boolean;
begin
  composite := n < 2;
  d := 2;
  while (d * d < n) and not composite do begin
    if n mod d = 0 then
      composite := true;
    d := d + 1;
  end;
  isprime := not composite;
end;

begin
  read(limit);
  count := 0;
  for n := 2 to limit do
    if isprime(n) then
      count := count + 1;
  writeln(count);
end.`,
			BugUnit: "isprime", // d*d < n misses perfect squares (4, 9, 25, 49)
		},
		{
			Name: "fibmemo",
			Source: `
program fibmemo;
type cache = array [0 .. 30] of integer;
var memo: cache;
    n: integer;

function fib(n: integer): integer;
var t: integer;
begin
  if memo[n] >= 0 then
    fib := memo[n]
  else begin
    t := fib(n - 1) + fib(n - 2);
    memo[n] := t;
    fib := t;
  end;
end;

var i: integer;
begin
  for i := 0 to 30 do
    memo[i] := -1;
  memo[0] := 0;
  memo[1] := 1;
  read(n);
  writeln(fib(n));
end.`,
			Input: "25",
			Want:  "75025\n",
		},
		{
			Name: "digitstats",
			Source: `
program digitstats;
var n, digits, sum, m: integer;

procedure analyze(value: integer; var d, s: integer);
begin
  d := 0;
  s := 0;
  if value = 0 then
    d := 1;
  while value > 0 do begin
    d := d + 1;
    s := s + value mod 10;
    value := value div 10;
  end;
end;

begin
  read(n);
  analyze(n, digits, sum);
  m := digits * 100 + sum;
  writeln(digits, sum, m);
end.`,
			Input: "90817",
			Want:  "5 25 525\n",
			Buggy: `
program digitstats;
var n, digits, sum, m: integer;

procedure analyze(value: integer; var d, s: integer);
begin
  d := 0;
  s := 0;
  if value = 0 then
    d := 1;
  while value > 9 do begin
    d := d + 1;
    s := s + value mod 10;
    value := value div 10;
  end;
end;

begin
  read(n);
  analyze(n, digits, sum);
  m := digits * 100 + sum;
  writeln(digits, sum, m);
end.`,
			BugUnit: "analyze", // drops the most significant digit
		},
		{
			// checksum keeps a debug branch behind a constant-false
			// guard: the value analysis proves it dead, which the
			// equivalent-mutant triage and slice pruning both exploit.
			Name: "checksum",
			Source: `
program checksum;
var n, value, acc, debug, i: integer;

procedure mix(v: integer; var a: integer);
begin
  a := (a * 31 + v) mod 65536;
end;

begin
  debug := 0;
  acc := 7;
  read(n);
  for i := 1 to n do begin
    read(value);
    mix(value, acc);
    if debug > 0 then begin
      acc := acc + 1000000;
      writeln('mix', i, acc);
    end;
  end;
  writeln(acc);
end.`,
			Input: "3 10 20 30",
			Want:  "22189\n",
		},
	}
}
