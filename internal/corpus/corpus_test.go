package corpus_test

import (
	"strings"
	"testing"

	"gadt/internal/corpus"
	"gadt/internal/gadt"
)

// TestCorpusMatrix runs every corpus program through interpretation,
// transformation equivalence, and tracing.
func TestCorpusMatrix(t *testing.T) {
	for _, p := range corpus.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			sys, err := gadt.Load(p.Name+".pas", p.Source)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			orig := sys.TraceOriginal(p.Input)
			if orig.RunErr != nil {
				t.Fatalf("run: %v", orig.RunErr)
			}
			if orig.Output != p.Want {
				t.Fatalf("output = %q, want %q", orig.Output, p.Want)
			}
			run, err := sys.Trace(p.Input)
			if err != nil {
				t.Fatalf("transform+trace: %v", err)
			}
			if run.RunErr != nil {
				t.Fatalf("transformed run: %v", run.RunErr)
			}
			if run.Output != p.Want {
				t.Errorf("transformed output = %q, want %q", run.Output, p.Want)
			}
			if run.Tree.Size() < 2 {
				t.Errorf("trace too small: %d nodes", run.Tree.Size())
			}
		})
	}
}

// TestCorpusBugsLocalized debugs the corpus entries with planted bugs.
func TestCorpusBugsLocalized(t *testing.T) {
	for _, p := range corpus.All() {
		if p.Buggy == "" {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			sys, err := gadt.Load(p.Name+"-buggy.pas", p.Buggy)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			run, err := sys.Trace(p.Input)
			if err != nil {
				t.Fatal(err)
			}
			if run.Output == p.Want {
				t.Fatalf("planted bug has no symptom (output %q)", run.Output)
			}
			oracle, err := gadt.IntendedOracle(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			out, err := run.Debug(oracle, gadt.DebugConfig{Slicing: true})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Localized() {
				t.Fatal("bug not localized")
			}
			got := out.Bug.Unit.Name
			if got != p.BugUnit && !strings.HasPrefix(got, p.BugUnit+"_loop") {
				t.Errorf("localized %s, want %s (or its loop unit)", got, p.BugUnit)
			}
		})
	}
}

// TestCorpusHasPlantedBugs makes sure the corpus keeps debuggable
// entries.
func TestCorpusHasPlantedBugs(t *testing.T) {
	n := 0
	for _, p := range corpus.All() {
		if p.Buggy != "" {
			if p.BugUnit == "" {
				t.Errorf("%s: buggy variant without BugUnit", p.Name)
			}
			n++
		}
	}
	if n < 2 {
		t.Errorf("only %d buggy corpus entries", n)
	}
}
