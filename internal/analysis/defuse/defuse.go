// Package defuse classifies variable occurrences in statements and
// expressions as definitions or uses, at whole-variable granularity
// (array/record elements count as their base variable, the granularity
// the paper's slicing uses).
//
// Call effects are pluggable: a Resolver (normally the interprocedural
// side-effect analysis) supplies the variables a call site defines and
// uses from the caller's perspective. With a nil Resolver, calls
// contribute only the uses syntactically present in their argument
// expressions — that syntactic-only mode is what the side-effect
// analysis itself bootstraps from.
package defuse

import (
	"gadt/internal/analysis/cfg"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// Resolver supplies interprocedural call effects.
type Resolver interface {
	// CallDefs returns the caller-visible variables the call at site may
	// modify (bound var/out actuals plus global side effects).
	CallDefs(site ast.Node) []*sem.VarSym
	// CallUses returns the caller-visible variables the call may read
	// beyond its syntactic value-argument expressions (referenced
	// globals plus var actuals whose formals are read).
	CallUses(site ast.Node) []*sem.VarSym
}

// Set is an insertion-ordered set of variable symbols.
type Set struct {
	order []*sem.VarSym
	seen  map[*sem.VarSym]bool
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{seen: make(map[*sem.VarSym]bool)} }

// Add inserts v; nil symbols are ignored.
func (s *Set) Add(v *sem.VarSym) {
	if v == nil || s.seen[v] {
		return
	}
	s.seen[v] = true
	s.order = append(s.order, v)
}

// AddAll inserts every element of vs.
func (s *Set) AddAll(vs []*sem.VarSym) {
	for _, v := range vs {
		s.Add(v)
	}
}

// Has reports membership.
func (s *Set) Has(v *sem.VarSym) bool { return s.seen[v] }

// Slice returns the elements in insertion order.
func (s *Set) Slice() []*sem.VarSym { return s.order }

// Len returns the cardinality.
func (s *Set) Len() int { return len(s.order) }

// ExprUses collects the base variables read by expression e, including
// call effects via res, into uses; variables defined by embedded calls
// (function var parameters) go into defs.
func ExprUses(info *sem.Info, e ast.Expr, res Resolver, defs, uses *Set) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		switch sym := info.Uses[e].(type) {
		case *sem.VarSym:
			uses.Add(sym)
			return
		case *sem.ConstSym:
			return
		default:
			_ = sym
		}
		// Parameterless function call.
		if callee := info.Calls[e]; callee != nil {
			callEffects(info, e, nil, callee, res, defs, uses)
		}
	case *ast.IntLit, *ast.RealLit, *ast.StringLit:
		return
	case *ast.BinaryExpr:
		ExprUses(info, e.X, res, defs, uses)
		ExprUses(info, e.Y, res, defs, uses)
	case *ast.UnaryExpr:
		ExprUses(info, e.X, res, defs, uses)
	case *ast.IndexExpr:
		ExprUses(info, e.X, res, defs, uses)
		for _, ie := range e.Indices {
			ExprUses(info, ie, res, defs, uses)
		}
	case *ast.FieldExpr:
		ExprUses(info, e.X, res, defs, uses)
	case *ast.CallExpr:
		if b := info.Builtin[e]; b != nil {
			for _, a := range e.Args {
				ExprUses(info, a, res, defs, uses)
			}
			return
		}
		callEffects(info, e, e.Args, info.Calls[e], res, defs, uses)
	case *ast.SetLit:
		for _, el := range e.Elems {
			ExprUses(info, el, res, defs, uses)
		}
	}
}

// ExprUsesShallow collects uses like ExprUses but treats user-routine
// calls as opaque leaves: their arguments and effects are skipped. The
// SDG builder uses it so that call statements do not aggregate argument
// uses (those belong to actual-in nodes).
func ExprUsesShallow(info *sem.Info, e ast.Expr, uses *Set) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if sym, ok := info.Uses[e].(*sem.VarSym); ok {
			uses.Add(sym)
		}
	case *ast.BinaryExpr:
		ExprUsesShallow(info, e.X, uses)
		ExprUsesShallow(info, e.Y, uses)
	case *ast.UnaryExpr:
		ExprUsesShallow(info, e.X, uses)
	case *ast.IndexExpr:
		ExprUsesShallow(info, e.X, uses)
		for _, ie := range e.Indices {
			ExprUsesShallow(info, ie, uses)
		}
	case *ast.FieldExpr:
		ExprUsesShallow(info, e.X, uses)
	case *ast.CallExpr:
		if info.Builtin[e] != nil {
			for _, a := range e.Args {
				ExprUsesShallow(info, a, uses)
			}
		}
		// User calls are opaque here.
	case *ast.SetLit:
		for _, el := range e.Elems {
			ExprUsesShallow(info, el, uses)
		}
	}
}

// callEffects adds the defs/uses of a user-routine call.
func callEffects(info *sem.Info, site ast.Node, args []ast.Expr, callee *sem.Routine, res Resolver, defs, uses *Set) {
	if callee == nil {
		for _, a := range args {
			ExprUses(info, a, res, defs, uses)
		}
		return
	}
	for i, a := range args {
		var mode ast.ParamMode
		if i < len(callee.Params) {
			mode = callee.Params[i].Mode
		}
		if mode == ast.Value {
			ExprUses(info, a, res, defs, uses)
			continue
		}
		// var/out argument: binding itself reads only the index
		// expressions of the designator; base-variable reads and writes
		// come from the resolver.
		designatorIndexUses(info, a, res, defs, uses)
	}
	if res != nil {
		defs.AddAll(res.CallDefs(site))
		uses.AddAll(res.CallUses(site))
	}
}

// designatorIndexUses collects uses appearing in index positions of a
// designator (the base variable itself is not a use).
func designatorIndexUses(info *sem.Info, e ast.Expr, res Resolver, defs, uses *Set) {
	switch e := e.(type) {
	case *ast.IndexExpr:
		designatorIndexUses(info, e.X, res, defs, uses)
		for _, ie := range e.Indices {
			ExprUses(info, ie, res, defs, uses)
		}
	case *ast.FieldExpr:
		designatorIndexUses(info, e.X, res, defs, uses)
	}
}

// Assign computes the defs/uses of an assignment statement.
func Assign(info *sem.Info, s *ast.AssignStmt, res Resolver) (defs, uses *Set) {
	defs, uses = NewSet(), NewSet()
	ExprUses(info, s.Rhs, res, defs, uses)
	base := info.VarOf(s.Lhs)
	// Index expressions of the target are uses; a partial update also
	// uses the old value of the base.
	if _, isIdent := s.Lhs.(*ast.Ident); !isIdent {
		designatorIndexUses(info, s.Lhs, res, defs, uses)
		uses.Add(base)
	}
	defs.Add(base)
	return defs, uses
}

// CallStmt computes the defs/uses of a procedure call statement,
// including read/write builtins.
func CallStmt(info *sem.Info, s *ast.CallStmt, res Resolver) (defs, uses *Set) {
	defs, uses = NewSet(), NewSet()
	if b := info.Builtin[s]; b != nil {
		switch b.Name {
		case "read", "readln":
			for _, a := range s.Args {
				designatorIndexUses(info, a, res, defs, uses)
				if base := info.VarOf(a); base != nil {
					if _, isIdent := a.(*ast.Ident); !isIdent {
						uses.Add(base) // partial update
					}
					defs.Add(base)
				}
			}
		default: // write, writeln
			for _, a := range s.Args {
				ExprUses(info, a, res, defs, uses)
			}
		}
		return defs, uses
	}
	callEffects(info, s, s.Args, info.Calls[s], res, defs, uses)
	return defs, uses
}

// Node computes the defs/uses of a CFG node. Entry/Exit nodes return
// empty sets; the dataflow layer adds parameter and liveness boundary
// effects itself.
func Node(info *sem.Info, n *cfg.Node, res Resolver) (defs, uses *Set) {
	switch n.Kind {
	case cfg.Stmt:
		switch s := n.Stmt.(type) {
		case *ast.AssignStmt:
			return Assign(info, s, res)
		case *ast.CallStmt:
			return CallStmt(info, s, res)
		}
	case cfg.Cond:
		defs, uses = NewSet(), NewSet()
		ExprUses(info, n.Cond, res, defs, uses)
		return defs, uses
	case cfg.ForInit:
		fs := n.Stmt.(*ast.ForStmt)
		defs, uses = NewSet(), NewSet()
		ExprUses(info, fs.From, res, defs, uses)
		defs.Add(info.VarOf(fs.Var))
		return defs, uses
	case cfg.ForCond:
		fs := n.Stmt.(*ast.ForStmt)
		defs, uses = NewSet(), NewSet()
		uses.Add(info.VarOf(fs.Var))
		ExprUses(info, fs.Limit, res, defs, uses)
		return defs, uses
	case cfg.ForIncr:
		fs := n.Stmt.(*ast.ForStmt)
		defs, uses = NewSet(), NewSet()
		v := info.VarOf(fs.Var)
		uses.Add(v)
		defs.Add(v)
		return defs, uses
	}
	return NewSet(), NewSet()
}
