package defuse_test

import (
	"sort"
	"testing"

	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/defuse"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func setup(t *testing.T, src string) (*sem.Info, *sideeffect.Result) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info, sideeffect.Analyze(info, callgraph.Build(info))
}

func names(s *defuse.Set) []string {
	var out []string
	for _, v := range s.Slice() {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}

func firstAssign(info *sem.Info) *ast.AssignStmt {
	var out *ast.AssignStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && out == nil {
			out = as
		}
		return true
	})
	return out
}

func eq(t *testing.T, got, want []string, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", what, got, want)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s = %v, want %v", what, got, want)
			return
		}
	}
}

func TestAssignWholeVar(t *testing.T) {
	info, _ := setup(t, `program t; var x, y, z: integer; begin x := y + z; end.`)
	defs, uses := defuse.Assign(info, firstAssign(info), nil)
	eq(t, names(defs), []string{"x"}, "defs")
	eq(t, names(uses), []string{"y", "z"}, "uses")
}

func TestAssignArrayElementIsPartial(t *testing.T) {
	info, _ := setup(t, `
program t;
type arr = array [1 .. 3] of integer;
var a: arr; i, v: integer;
begin
  a[i] := v;
end.`)
	defs, uses := defuse.Assign(info, firstAssign(info), nil)
	eq(t, names(defs), []string{"a"}, "defs")
	// Partial update: uses the index, the value, and the old array.
	eq(t, names(uses), []string{"a", "i", "v"}, "uses")
}

func TestReadBuiltin(t *testing.T) {
	info, _ := setup(t, `program t; var x, y: integer; begin read(x, y); end.`)
	var call *ast.CallStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if cs, ok := n.(*ast.CallStmt); ok {
			call = cs
		}
		return true
	})
	defs, uses := defuse.CallStmt(info, call, nil)
	eq(t, names(defs), []string{"x", "y"}, "defs")
	eq(t, names(uses), nil, "uses")
}

func TestWriteBuiltin(t *testing.T) {
	info, _ := setup(t, `program t; var x: integer; begin writeln(x + 1); end.`)
	var call *ast.CallStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if cs, ok := n.(*ast.CallStmt); ok {
			call = cs
		}
		return true
	})
	defs, uses := defuse.CallStmt(info, call, nil)
	eq(t, names(defs), nil, "defs")
	eq(t, names(uses), []string{"x"}, "uses")
}

func TestCallWithResolver(t *testing.T) {
	info, se := setup(t, `
program t;
var g, x, out1: integer;

procedure p(a: integer; var r: integer);
begin
  r := a + g;
end;

begin
  g := 1;
  x := 2;
  p(x, out1);
end.`)
	var call *ast.CallStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if cs, ok := n.(*ast.CallStmt); ok && cs.Name == "p" {
			call = cs
		}
		return true
	})
	defs, uses := defuse.CallStmt(info, call, se)
	eq(t, names(defs), []string{"out1"}, "defs")
	// x from the value argument, g from the callee's REF set; out1's
	// formal r is written before read, so r ∉ RefFormals.
	eq(t, names(uses), []string{"g", "x"}, "uses")
}

func TestCallWithoutResolverSyntacticOnly(t *testing.T) {
	info, _ := setup(t, `
program t;
var x, out1: integer;
procedure p(a: integer; var r: integer);
begin
  r := a;
end;
begin
  p(x + 1, out1);
end.`)
	var call *ast.CallStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if cs, ok := n.(*ast.CallStmt); ok && cs.Name == "p" {
			call = cs
		}
		return true
	})
	defs, uses := defuse.CallStmt(info, call, nil)
	eq(t, names(defs), nil, "defs (no resolver)")
	eq(t, names(uses), []string{"x"}, "uses (value arg only)")
}

func TestVarArgIndexUses(t *testing.T) {
	info, se := setup(t, `
program t;
type arr = array [1 .. 3] of integer;
var a: arr; i: integer;
procedure p(var r: integer);
begin
  r := 1;
end;
begin
  i := 2;
  p(a[i]);
end.`)
	var call *ast.CallStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if cs, ok := n.(*ast.CallStmt); ok && cs.Name == "p" {
			call = cs
		}
		return true
	})
	defs, uses := defuse.CallStmt(info, call, se)
	eq(t, names(defs), []string{"a"}, "defs (element var-arg defines base)")
	eq(t, names(uses), []string{"i"}, "uses (index expression)")
}

func TestExprUsesShallowSkipsCallArgs(t *testing.T) {
	info, _ := setup(t, `
program t;
var x, y: integer;
function f(a: integer): integer;
begin
  f := a;
end;
begin
  y := x + f(y);
end.`)
	as := firstAssign(info) // inside f: f := a ... careful: first assign is f := a
	_ = as
	var target *ast.AssignStmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			if id, ok := a.Lhs.(*ast.Ident); ok && id.Name == "y" {
				target = a
			}
		}
		return true
	})
	uses := defuse.NewSet()
	defuse.ExprUsesShallow(info, target.Rhs, uses)
	eq(t, names(uses), []string{"x"}, "shallow uses (f's args skipped)")
}

func TestSetOps(t *testing.T) {
	info, _ := setup(t, `program t; var x: integer; begin x := 1; end.`)
	v := info.Main.Locals[0]
	s := defuse.NewSet()
	s.Add(v)
	s.Add(v)   // dedup
	s.Add(nil) // ignored
	if s.Len() != 1 || !s.Has(v) {
		t.Errorf("set = %v", names(s))
	}
	s2 := defuse.NewSet()
	s2.AddAll(s.Slice())
	if s2.Len() != 1 {
		t.Error("AddAll")
	}
}
