// Package sideeffect computes interprocedural side effects in the style
// of Banning (POPL'79), as required by the paper's transformation phase
// (Section 6): for every routine, the non-local variables it may modify
// (MOD) or reference (REF) — directly or through calls, including effects
// that flow through var-parameter bindings — plus its exit side effects
// (gotos that transfer control out of the routine).
package sideeffect

import (
	"sort"

	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/defuse"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// Effects summarizes one routine.
type Effects struct {
	Routine *sem.Routine

	// ModGlobals / RefGlobals hold non-local variables (declared in a
	// proper ancestor routine) that the routine may modify / reference.
	ModGlobals map[*sem.VarSym]bool
	RefGlobals map[*sem.VarSym]bool

	// ModFormals / RefFormals hold the routine's own by-reference
	// formals that may be modified / referenced.
	ModFormals map[*sem.VarSym]bool
	RefFormals map[*sem.VarSym]bool

	// ExitTargets holds labels in proper ancestors that a goto inside
	// the routine (or its callees) may jump to — Banning's exit side
	// effects.
	ExitTargets map[*sem.LabelInfo]bool
}

// HasGlobalEffects reports whether the routine touches any non-local
// variable or can exit non-locally.
func (e *Effects) HasGlobalEffects() bool {
	return len(e.ModGlobals) > 0 || len(e.RefGlobals) > 0 || len(e.ExitTargets) > 0
}

// SortedMod returns ModGlobals sorted by name (then owner nesting level).
func (e *Effects) SortedMod() []*sem.VarSym { return sortVars(e.ModGlobals) }

// SortedRef returns RefGlobals sorted by name.
func (e *Effects) SortedRef() []*sem.VarSym { return sortVars(e.RefGlobals) }

// SortedExits returns ExitTargets sorted by label name.
func (e *Effects) SortedExits() []*sem.LabelInfo {
	out := make([]*sem.LabelInfo, 0, len(e.ExitTargets))
	for li := range e.ExitTargets {
		out = append(out, li)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Routine.Name < out[j].Routine.Name
	})
	return out
}

func sortVars(m map[*sem.VarSym]bool) []*sem.VarSym {
	out := make([]*sem.VarSym, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Owner.Level < out[j].Owner.Level
	})
	return out
}

// Result holds the analysis for a whole program and implements
// defuse.Resolver.
type Result struct {
	Info *sem.Info
	CG   *callgraph.Graph
	Of   map[*sem.Routine]*Effects

	siteArgs map[ast.Node]*callgraph.Site
}

// Analyze runs the fixpoint over the call graph.
func Analyze(info *sem.Info, cg *callgraph.Graph) *Result {
	res := &Result{
		Info:     info,
		CG:       cg,
		Of:       make(map[*sem.Routine]*Effects, len(info.Routines)),
		siteArgs: make(map[ast.Node]*callgraph.Site),
	}
	for _, r := range info.Routines {
		res.Of[r] = &Effects{
			Routine:     r,
			ModGlobals:  make(map[*sem.VarSym]bool),
			RefGlobals:  make(map[*sem.VarSym]bool),
			ModFormals:  make(map[*sem.VarSym]bool),
			RefFormals:  make(map[*sem.VarSym]bool),
			ExitTargets: make(map[*sem.LabelInfo]bool),
		}
	}
	for _, sites := range cg.Sites {
		for _, s := range sites {
			res.siteArgs[s.Node] = s
		}
	}

	// Phase 1: direct effects.
	for _, r := range info.Routines {
		res.direct(r)
	}

	// Phase 2: propagate through calls to a fixpoint. Post-order makes
	// the common (non-recursive) case converge in one sweep.
	order := cg.PostOrder(info.Main)
	for changed := true; changed; {
		changed = false
		for _, r := range order {
			if res.propagate(r) {
				changed = true
			}
		}
	}
	return res
}

// classify adds variable v, accessed inside routine r, to the right
// bucket of e (formal of r, non-local, or ignored local).
func classify(e *Effects, r *sem.Routine, v *sem.VarSym, write bool) {
	if v == nil {
		return
	}
	if v.Owner == r {
		if v.Kind == sem.ParamVar && v.Mode != ast.Value {
			if write {
				e.ModFormals[v] = true
			} else {
				e.RefFormals[v] = true
			}
		}
		return
	}
	// Non-local.
	if write {
		e.ModGlobals[v] = true
	} else {
		e.RefGlobals[v] = true
	}
}

// direct computes the routine's own (call-free) effects.
func (res *Result) direct(r *sem.Routine) {
	e := res.Of[r]
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
			return
		case *ast.CompoundStmt:
			for _, c := range s.Stmts {
				walkStmt(c)
			}
		case *ast.AssignStmt:
			defs, uses := defuse.Assign(res.Info, s, nil)
			for _, v := range defs.Slice() {
				classify(e, r, v, true)
			}
			for _, v := range uses.Slice() {
				classify(e, r, v, false)
			}
		case *ast.CallStmt:
			defs, uses := defuse.CallStmt(res.Info, s, nil)
			for _, v := range defs.Slice() {
				classify(e, r, v, true)
			}
			for _, v := range uses.Slice() {
				classify(e, r, v, false)
			}
		case *ast.IfStmt:
			res.exprDirect(e, r, s.Cond)
			walkStmt(s.Then)
			walkStmt(s.Else)
		case *ast.WhileStmt:
			res.exprDirect(e, r, s.Cond)
			walkStmt(s.Body)
		case *ast.RepeatStmt:
			for _, c := range s.Stmts {
				walkStmt(c)
			}
			res.exprDirect(e, r, s.Cond)
		case *ast.ForStmt:
			classify(e, r, res.Info.VarOf(s.Var), true)
			classify(e, r, res.Info.VarOf(s.Var), false)
			res.exprDirect(e, r, s.From)
			res.exprDirect(e, r, s.Limit)
			walkStmt(s.Body)
		case *ast.CaseStmt:
			res.exprDirect(e, r, s.Expr)
			for _, arm := range s.Arms {
				walkStmt(arm.Body)
			}
			walkStmt(s.Else)
		case *ast.GotoStmt:
			if li := res.Info.GotoTgt[s]; li != nil && li.Routine != r {
				e.ExitTargets[li] = true
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt)
		}
	}
	walkStmt(r.Block.Body)
}

func (res *Result) exprDirect(e *Effects, r *sem.Routine, x ast.Expr) {
	defs, uses := defuse.NewSet(), defuse.NewSet()
	defuse.ExprUses(res.Info, x, nil, defs, uses)
	for _, v := range defs.Slice() {
		classify(e, r, v, true)
	}
	for _, v := range uses.Slice() {
		classify(e, r, v, false)
	}
}

// propagate folds callee effects into caller r; reports change.
func (res *Result) propagate(r *sem.Routine) bool {
	e := res.Of[r]
	changed := false
	set := func(m map[*sem.VarSym]bool, v *sem.VarSym) {
		if !m[v] {
			m[v] = true
			changed = true
		}
	}
	for _, site := range res.CG.Sites[r] {
		ce := res.Of[site.Callee]
		// Global effects of the callee that are not r's own locals.
		for v := range ce.ModGlobals {
			if v.Owner == r {
				if v.Kind == sem.ParamVar && v.Mode != ast.Value {
					set(e.ModFormals, v)
				}
				continue
			}
			set(e.ModGlobals, v)
		}
		for v := range ce.RefGlobals {
			if v.Owner == r {
				if v.Kind == sem.ParamVar && v.Mode != ast.Value {
					set(e.RefFormals, v)
				}
				continue
			}
			set(e.RefGlobals, v)
		}
		// Effects through by-reference parameter bindings.
		for i, p := range site.Callee.Params {
			if p.Mode == ast.Value || i >= len(site.Args) {
				continue
			}
			base := res.Info.VarOf(site.Args[i])
			if base == nil {
				continue
			}
			if ce.ModFormals[p] {
				if base.Owner == r {
					if base.Kind == sem.ParamVar && base.Mode != ast.Value {
						set(e.ModFormals, base)
					}
				} else {
					set(e.ModGlobals, base)
				}
			}
			if ce.RefFormals[p] {
				if base.Owner == r {
					if base.Kind == sem.ParamVar && base.Mode != ast.Value {
						set(e.RefFormals, base)
					}
				} else {
					set(e.RefGlobals, base)
				}
			}
		}
		// Exit side effects.
		for li := range ce.ExitTargets {
			if li.Routine == r {
				continue // the jump terminates inside r
			}
			if !e.ExitTargets[li] {
				e.ExitTargets[li] = true
				changed = true
			}
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// defuse.Resolver implementation

var _ defuse.Resolver = (*Result)(nil)

// CallDefs returns the caller-visible variables modified by the call at
// site: var/out actuals whose formals are modified, plus the callee's
// modified globals (excluding the caller's own locals, which are not
// visible effects at the caller's *statement* level — they are exactly
// the definitions the dataflow layer needs, so locals of the caller ARE
// included here).
func (res *Result) CallDefs(site ast.Node) []*sem.VarSym {
	s := res.siteArgs[site]
	if s == nil {
		return nil
	}
	ce := res.Of[s.Callee]
	out := defuse.NewSet()
	for i, p := range s.Callee.Params {
		if p.Mode == ast.Value || i >= len(s.Args) {
			continue
		}
		if ce.ModFormals[p] {
			out.Add(res.Info.VarOf(s.Args[i]))
		}
	}
	for v := range ce.ModGlobals {
		out.Add(v)
	}
	return out.Slice()
}

// CallUses returns caller-visible variables read by the call beyond its
// value-argument expressions.
func (res *Result) CallUses(site ast.Node) []*sem.VarSym {
	s := res.siteArgs[site]
	if s == nil {
		return nil
	}
	ce := res.Of[s.Callee]
	out := defuse.NewSet()
	for i, p := range s.Callee.Params {
		if p.Mode == ast.Value || i >= len(s.Args) {
			continue
		}
		if ce.RefFormals[p] {
			out.Add(res.Info.VarOf(s.Args[i]))
		}
	}
	for v := range ce.RefGlobals {
		out.Add(v)
	}
	return out.Slice()
}
