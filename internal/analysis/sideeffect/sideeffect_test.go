package sideeffect_test

import (
	"testing"

	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/paper"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func analyze(t *testing.T, src string) (*sem.Info, *sideeffect.Result) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	cg := callgraph.Build(info)
	return info, sideeffect.Analyze(info, cg)
}

func names(vs []*sem.VarSym) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

func TestDirectGlobalEffects(t *testing.T) {
	info, res := analyze(t, paper.GlobalSideEffects)
	p := info.LookupRoutine("p")
	e := res.Of[p]
	if got := names(e.SortedMod()); len(got) != 1 || got[0] != "z" {
		t.Errorf("MOD(p) = %v, want [z]", got)
	}
	if got := names(e.SortedRef()); len(got) != 1 || got[0] != "x" {
		t.Errorf("REF(p) = %v, want [x]", got)
	}
	if !e.HasGlobalEffects() {
		t.Error("p must have global effects")
	}
}

func TestTransitiveGlobalEffects(t *testing.T) {
	info, res := analyze(t, `
program t;
var g, h: integer;

procedure leaf;
begin
  g := h + 1;
end;

procedure mid;
begin
  leaf;
end;

procedure top;
begin
  mid;
end;

begin
  top;
  writeln(g);
end.`)
	for _, name := range []string{"leaf", "mid", "top"} {
		e := res.Of[info.LookupRoutine(name)]
		if got := names(e.SortedMod()); len(got) != 1 || got[0] != "g" {
			t.Errorf("MOD(%s) = %v, want [g]", name, got)
		}
		if got := names(e.SortedRef()); len(got) != 1 || got[0] != "h" {
			t.Errorf("REF(%s) = %v, want [h]", name, got)
		}
	}
	// The program block itself modifies g only locally: g is Main's own
	// local, so Main has no *global* effects.
	if res.Of[info.Main].HasGlobalEffects() {
		t.Error("program block must have no global effects")
	}
}

func TestVarParamBindingPropagation(t *testing.T) {
	info, res := analyze(t, `
program t;
var g: integer;

procedure setit(var x: integer);
begin
  x := 1;
end;

procedure viaglobal;
begin
  setit(g);
end;

procedure viaparam(var y: integer);
begin
  setit(y);
end;

begin
  viaglobal;
  viaparam(g);
end.`)
	setit := res.Of[info.LookupRoutine("setit")]
	if len(setit.ModFormals) != 1 {
		t.Errorf("MODF(setit) = %v, want {x}", setit.ModFormals)
	}
	if len(setit.ModGlobals) != 0 {
		t.Errorf("MODG(setit) = %v, want empty", setit.ModGlobals)
	}
	via := res.Of[info.LookupRoutine("viaglobal")]
	if got := names(via.SortedMod()); len(got) != 1 || got[0] != "g" {
		t.Errorf("MOD(viaglobal) = %v, want [g]: binding a global to a modified var formal", got)
	}
	vp := res.Of[info.LookupRoutine("viaparam")]
	if len(vp.ModFormals) != 1 {
		t.Errorf("MODF(viaparam) = %v, want {y}: modification flows through formal chain", vp.ModFormals)
	}
	if len(vp.ModGlobals) != 0 {
		t.Errorf("MODG(viaparam) = %v, want empty", vp.ModGlobals)
	}
}

func TestRefThroughVarParam(t *testing.T) {
	info, res := analyze(t, `
program t;
var g, out1: integer;

procedure getit(var x: integer; var r: integer);
begin
  r := x;
end;

procedure use;
begin
  getit(g, out1);
end;

begin
  use;
end.`)
	use := res.Of[info.LookupRoutine("use")]
	if got := names(use.SortedRef()); len(got) != 1 || got[0] != "g" {
		t.Errorf("REF(use) = %v, want [g]", got)
	}
	if got := names(use.SortedMod()); len(got) != 1 || got[0] != "out1" {
		t.Errorf("MOD(use) = %v, want [out1]", got)
	}
}

func TestRecursionFixpoint(t *testing.T) {
	info, res := analyze(t, `
program t;
var g: integer;

procedure a(n: integer);
  procedure b(m: integer);
  begin
    if m > 0 then a(m - 1);
    g := g + 1;
  end;
begin
  if n > 0 then b(n);
end;

begin
  a(3);
end.`)
	for _, name := range []string{"a", "b"} {
		e := res.Of[info.LookupRoutine(name)]
		if got := names(e.SortedMod()); len(got) != 1 || got[0] != "g" {
			t.Errorf("MOD(%s) = %v, want [g]", name, got)
		}
	}
}

func TestExitSideEffects(t *testing.T) {
	info, res := analyze(t, paper.GlobalGoto)
	q := res.Of[info.LookupRoutine("q")]
	exits := q.SortedExits()
	if len(exits) != 1 || exits[0].Name != "9" || exits[0].Routine.Name != "p" {
		t.Fatalf("EXIT(q) = %v, want label 9 in p", exits)
	}
	// p contains the label itself, so the jump is not an exit effect of p.
	p := res.Of[info.LookupRoutine("p")]
	if len(p.ExitTargets) != 0 {
		t.Errorf("EXIT(p) = %v, want empty (label 9 is local to p)", p.SortedExits())
	}
	// q also modifies the program-level v.
	if got := names(q.SortedMod()); len(got) != 1 || got[0] != "v" {
		t.Errorf("MOD(q) = %v, want [v]", got)
	}
}

func TestTransitiveExitEffect(t *testing.T) {
	info, res := analyze(t, `
program t;
label 5;
var v: integer;

procedure inner;
begin
  goto 5;
end;

procedure outer;
begin
  inner;
end;

begin
  outer;
  v := 1;
  5: writeln(v);
end.`)
	for _, name := range []string{"inner", "outer"} {
		e := res.Of[info.LookupRoutine(name)]
		exits := e.SortedExits()
		if len(exits) != 1 || exits[0].Name != "5" {
			t.Errorf("EXIT(%s) = %v, want label 5", name, exits)
		}
	}
	if len(res.Of[info.Main].ExitTargets) != 0 {
		t.Error("program block has exit effects but owns the label")
	}
}

func TestSqrtestHasNoGlobalEffects(t *testing.T) {
	// Every routine in Figure 4 communicates through parameters only.
	info, res := analyze(t, paper.Sqrtest)
	for _, r := range info.Routines {
		if r == info.Main {
			continue
		}
		if e := res.Of[r]; e.HasGlobalEffects() {
			t.Errorf("%s unexpectedly has global effects: MOD=%v REF=%v",
				r.Name, names(e.SortedMod()), names(e.SortedRef()))
		}
	}
}

func TestCallDefsUses(t *testing.T) {
	info, res := analyze(t, paper.PQR)
	cg := res.CG
	var qSite, rSite *callgraph.Site
	for _, s := range cg.Sites[info.LookupRoutine("p")] {
		switch s.Callee.Name {
		case "q":
			qSite = s
		case "r":
			rSite = s
		}
	}
	if qSite == nil || rSite == nil {
		t.Fatal("call sites in p not found")
	}
	if got := names(res.CallDefs(qSite.Node)); len(got) != 1 || got[0] != "b" {
		t.Errorf("CallDefs(q(a,b)) = %v, want [b]", got)
	}
	if got := names(res.CallDefs(rSite.Node)); len(got) != 1 || got[0] != "d" {
		t.Errorf("CallDefs(r(c,d)) = %v, want [d]", got)
	}
}

func TestValueParamNotModEffect(t *testing.T) {
	info, res := analyze(t, `
program t;
var g: integer;
procedure p(x: integer);
begin
  x := x + 1;
end;
begin
  g := 1;
  p(g);
end.`)
	p := res.Of[info.LookupRoutine("p")]
	if len(p.ModFormals) != 0 || len(p.ModGlobals) != 0 {
		t.Errorf("modifying a value formal leaked: MODF=%v MODG=%v", p.ModFormals, p.ModGlobals)
	}
}
