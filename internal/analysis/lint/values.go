package lint

import (
	"fmt"
	"math"

	"gadt/internal/analysis/absint"
	"gadt/internal/analysis/cfg"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/token"
	"gadt/internal/pascal/types"
)

// The P012–P015 checks consult the abstract-interpretation result: they
// report only facts the interval/constant analysis proves on every
// execution, so unlike the dataflow anomalies they carry no "may"
// hedging — a finding here is a definite property of the program.

// readsVariable reports whether the expression reads at least one
// variable. Conditions built purely from literals and named constants
// (`while true do`) are deliberate idiom, not derived facts worth
// reporting.
func readsVariable(cx *Context, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && cx.Info.VarOf(id) != nil {
			found = true
		}
		return !found
	})
	return found
}

// describeVal renders a proven integer value for messages: "5" for a
// singleton, "5..9" for a wider interval.
func describeVal(v absint.Val) string {
	if b, ok := v.ConstBool(); ok {
		return fmt.Sprintf("%v", b)
	}
	lo, hi, _ := v.Bounds()
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d..%d", lo, hi)
}

// provenInt returns the finite bounds of a proven integer value; ok is
// false for ⊤/⊥/booleans and for intervals whose ends are the
// saturation sentinels (those encode "at least/at most", not a proof).
func provenInt(v absint.Val) (lo, hi int64, ok bool) {
	lo, hi, ok = v.Bounds()
	if !ok || lo == math.MinInt64 || hi == math.MaxInt64 {
		return 0, 0, false
	}
	return lo, hi, true
}

// ---------------------------------------------------------------------------
// P012 — constant branch conditions

// checkConstCond flags branch and loop conditions the value analysis
// proves always take the same way. The for-loop's synthetic bound check
// is excluded: a counted loop legitimately runs a fixed number of
// times.
func checkConstCond(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		for _, n := range cx.Graphs[r].Nodes {
			if n.Kind != cfg.Cond || !cx.Values.Reachable(n) {
				continue
			}
			if !readsVariable(cx, n.Cond) {
				continue
			}
			b, ok := cx.Values.EvalAt(n, n.Cond).ConstBool()
			if !ok {
				continue
			}
			out = append(out, Diagnostic{
				Pos: n.Cond.Pos(), End: maxPos(n.Cond), Severity: Warning, Code: "P012",
				Message: fmt.Sprintf("condition %s is always %v", printer.PrintExpr(n.Cond), b),
				Routine: r.Name,
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// P013 — provably out-of-range array indices

// checkIndexRange flags index expressions whose proven interval lies
// entirely outside the declared array bounds: the access faults on
// every execution that reaches it.
func checkIndexRange(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		if r.Block == nil {
			continue
		}
		ast.Inspect(r.Block.Body, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			e, ok := m.(*ast.IndexExpr)
			if !ok {
				return true
			}
			n := cx.Values.CoveringNode(e)
			if n == nil || !cx.Values.Reachable(n) {
				return true
			}
			t := cx.Info.TypeOf[e.X]
			for _, idx := range e.Indices {
				arr, ok := t.(*types.Array)
				if !ok {
					break
				}
				t = arr.Elem
				v := cx.Values.EvalAt(n, idx)
				lo, hi, ok := provenInt(v)
				if !ok || (hi >= arr.Lo && lo <= arr.Hi) {
					continue
				}
				out = append(out, Diagnostic{
					Pos: idx.Pos(), End: maxPos(idx), Severity: Error, Code: "P013",
					Message: fmt.Sprintf("index %s is always %s, outside the array bounds %d..%d",
						printer.PrintExpr(idx), describeVal(v), arr.Lo, arr.Hi),
					Routine: r.Name,
				})
			}
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// P014 — guaranteed division by zero

// checkDivByZero flags div/mod expressions whose right operand is
// provably zero: the expression faults on every execution that reaches
// it.
func checkDivByZero(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		if r.Block == nil {
			continue
		}
		ast.Inspect(r.Block.Body, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			e, ok := m.(*ast.BinaryExpr)
			if !ok || (e.Op != token.Div && e.Op != token.Mod) {
				return true
			}
			n := cx.Values.CoveringNode(e)
			if n == nil || !cx.Values.Reachable(n) {
				return true
			}
			if c, ok := cx.Values.EvalAt(n, e.Y).ConstInt(); ok && c == 0 {
				out = append(out, Diagnostic{
					Pos: e.Pos(), End: maxPos(e), Severity: Error, Code: "P014",
					Message: fmt.Sprintf("right operand of %s is always zero", e.Op),
					Routine: r.Name,
				})
			}
			return true
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// P015 — stores proven to rewrite the value already held

// checkRedundantStore flags whole-variable assignments whose right-hand
// side provably equals the value the variable already holds at that
// point, so the store cannot change the state. This complements P003:
// a store can be live (the variable is read later) yet still redundant.
func checkRedundantStore(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		fl := cx.Flows[r]
		for _, n := range cx.Graphs[r].Nodes {
			if n.Kind != cfg.Stmt || !cx.Values.Reachable(n) {
				continue
			}
			s, ok := n.Stmt.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if _, whole := s.Lhs.(*ast.Ident); !whole {
				continue
			}
			v := cx.Info.VarOf(s.Lhs)
			if v == nil {
				continue
			}
			// A store reached only by the synthetic initial definition is
			// an initializer: it "rewrites" the runtime's zero value, but
			// spelling the initial value out is good style, not an anomaly.
			if fl.SyntheticOnly(n, v) {
				continue
			}
			cur := cx.Values.VarAt(n, v)
			next := cx.Values.EvalAt(n, s.Rhs)
			same := false
			if lo, hi, ok := provenInt(cur); ok && lo == hi && cur.Equal(next) {
				same = true
			} else if b, ok := cur.ConstBool(); ok {
				if b2, ok2 := next.ConstBool(); ok2 && b == b2 {
					same = true
				}
			}
			if !same {
				continue
			}
			out = append(out, Diagnostic{
				Pos: s.Pos(), End: maxPos(s), Severity: Info, Code: "P015",
				Message: fmt.Sprintf("%s already holds %s here: the store cannot change it",
					v.Name, describeVal(next)),
				Routine: r.Name,
			})
		}
	}
	return out
}
