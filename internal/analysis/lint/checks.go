package lint

import (
	"fmt"

	"gadt/internal/analysis/cfg"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
)

// nodePos returns the source position of a CFG node's construct.
func nodePos(n *cfg.Node) token.Pos {
	switch {
	case n.Stmt != nil:
		return n.Stmt.Pos()
	case n.Cond != nil:
		return n.Cond.Pos()
	}
	return token.Pos{}
}

// maxPos returns the largest position of any node in the subtree rooted
// at n — an approximation of the construct's end.
func maxPos(n ast.Node) token.Pos {
	var end token.Pos
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if p := c.Pos(); p.IsValid() && end.Before(p) {
			end = p
		}
		return true
	})
	return end
}

// localOf reports whether v is a plain local variable of r (not a
// parameter, not the function result). Program-level variables are
// excluded throughout the use-before-definition checks: the program
// block is the input boundary, and the runtime zero-initializes them
// (see interp.ZeroValue), so their first read is state, not anomaly.
func localOf(r *sem.Routine, v *sem.VarSym) bool {
	return v.Owner == r && v.Kind == sem.LocalVar && !r.IsProgram()
}

// ---------------------------------------------------------------------------
// P001 / P002 — use before definition

// checkUseBeforeDef flags uses of a routine's local variables that no
// real assignment can reach: every reaching definition is the synthetic
// initial definition planted at Entry by the reaching-defs analysis.
func checkUseBeforeDef(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		g, fl := cx.Graphs[r], cx.Flows[r]
		for _, n := range g.Nodes {
			if n == g.Entry || n == g.Exit {
				continue
			}
			for _, v := range fl.UsesAt[n] {
				if !localOf(r, v) || !cx.Observed[n][v] || !fl.SyntheticOnly(n, v) {
					continue
				}
				out = append(out, Diagnostic{
					Pos: nodePos(n), Severity: Error, Code: "P001",
					Message: fmt.Sprintf("variable %s is used but never assigned", v.Name),
					Routine: r.Name,
					Related: []Related{{Pos: v.Pos, Message: fmt.Sprintf("%s declared here", v.Name)}},
				})
			}
		}
	}
	return out
}

// checkMaybeUninit flags uses reachable on at least one path that
// bypasses every definition of the variable, while other paths do
// define it — the classic "ur" dataflow anomaly.
func checkMaybeUninit(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		if r.IsProgram() {
			continue
		}
		g, fl := cx.Graphs[r], cx.Flows[r]
		uninit := maybeUninit(cx, r)
		for _, n := range g.Nodes {
			if n == g.Entry || n == g.Exit {
				continue
			}
			for _, v := range fl.UsesAt[n] {
				if !localOf(r, v) || !cx.Observed[n][v] || !uninit[n][v] || fl.SyntheticOnly(n, v) {
					continue
				}
				out = append(out, Diagnostic{
					Pos: nodePos(n), Severity: Warning, Code: "P002",
					Message: fmt.Sprintf("variable %s may be used before it is assigned", v.Name),
					Routine: r.Name,
					Related: []Related{{Pos: v.Pos, Message: fmt.Sprintf("%s declared here", v.Name)}},
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// P003 — dead stores

// checkDeadStores flags whole-variable assignments whose value is not
// live out of the assigning node: no execution can observe it. Variables
// that are never read anywhere are left to P004 (one finding instead of
// one per store), and unreachable assignments to P006.
func checkDeadStores(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		g, live := cx.Graphs[r], cx.Lives[r]
		reach := g.Reachable()
		for _, n := range g.Nodes {
			if n.Kind != cfg.Stmt || !reach[n] {
				continue
			}
			s, ok := n.Stmt.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if _, whole := s.Lhs.(*ast.Ident); !whole {
				continue // partial updates keep the rest of the value observable
			}
			v := cx.Info.VarOf(s.Lhs)
			if v == nil || !cx.usedAnywhere[v] || live.LiveOut(n, v) {
				continue
			}
			out = append(out, Diagnostic{
				Pos: s.Pos(), End: maxPos(s), Severity: Warning, Code: "P003",
				Message: fmt.Sprintf("value assigned to %s is never used", v.Name),
				Routine: r.Name,
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// P004 / P005 — unused variables and parameters

func checkUnusedVars(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		for _, v := range r.Locals {
			if cx.usedAnywhere[v] {
				continue
			}
			msg := fmt.Sprintf("variable %s is declared but never used", v.Name)
			if cx.definedAnywhere[v] {
				msg = fmt.Sprintf("variable %s is assigned but its value is never used", v.Name)
			}
			out = append(out, Diagnostic{
				Pos: v.Pos, Severity: Warning, Code: "P004",
				Message: msg, Routine: r.Name,
			})
		}
	}
	return out
}

func checkUnusedParams(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		for _, p := range r.Params {
			if cx.usedAnywhere[p] || cx.definedAnywhere[p] {
				continue
			}
			out = append(out, Diagnostic{
				Pos: p.Pos, Severity: Warning, Code: "P005",
				Message: fmt.Sprintf("parameter %s of %s is never used", p.Name, r.Name),
				Routine: r.Name,
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// P006 — unreachable statements

// checkUnreachable reports maximal syntactic statements none of whose
// CFG nodes are reachable from Entry. Reporting the outermost dead
// statement keeps one finding per dead region instead of one per line.
func checkUnreachable(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		g := cx.Graphs[r]
		reach := g.Reachable()

		// stmtAlive: some CFG node of the statement subtree is reachable.
		stmtAlive := func(s ast.Stmt) (alive, hasNodes bool) {
			ast.Inspect(s, func(n ast.Node) bool {
				c, ok := n.(ast.Stmt)
				if !ok {
					return true
				}
				if nd := g.NodeOf[c]; nd != nil {
					hasNodes = true
					if reach[nd] {
						alive = true
					}
				}
				for _, nd := range g.CondOf[c] {
					hasNodes = true
					if reach[nd] {
						alive = true
					}
				}
				return !alive
			})
			return alive, hasNodes
		}

		report := func(s ast.Stmt) {
			out = append(out, Diagnostic{
				Pos: s.Pos(), End: maxPos(s), Severity: Warning, Code: "P006",
				Message: "unreachable statement", Routine: r.Name,
			})
		}
		// Report a maximal dead statement once and do not descend into
		// it; descend into partially-live statements.
		var top func(s ast.Stmt)
		top = func(s ast.Stmt) {
			if s == nil {
				return
			}
			if alive, has := stmtAlive(s); has && !alive {
				report(s)
				return
			}
			switch s := s.(type) {
			case *ast.CompoundStmt:
				for _, c := range s.Stmts {
					top(c)
				}
			case *ast.IfStmt:
				top(s.Then)
				top(s.Else)
			case *ast.WhileStmt:
				top(s.Body)
			case *ast.ForStmt:
				top(s.Body)
			case *ast.RepeatStmt:
				for _, c := range s.Stmts {
					top(c)
				}
			case *ast.CaseStmt:
				for _, arm := range s.Arms {
					top(arm.Body)
				}
				top(s.Else)
			case *ast.LabeledStmt:
				top(s.Stmt)
			}
		}
		top(r.Block.Body)
	}
	return out
}

// ---------------------------------------------------------------------------
// P007 — unused routines

// checkUnusedRoutines flags routines unreachable from the program block
// in the call graph (including routines called only by other unreachable
// routines).
func checkUnusedRoutines(cx *Context) []Diagnostic {
	reachable := map[*sem.Routine]bool{cx.Info.Main: true}
	work := []*sem.Routine{cx.Info.Main}
	for len(work) > 0 {
		r := work[0]
		work = work[1:]
		for _, c := range cx.CG.Callees[r] {
			if !reachable[c] {
				reachable[c] = true
				work = append(work, c)
			}
		}
	}
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		if reachable[r] || r.IsProgram() {
			continue
		}
		out = append(out, Diagnostic{
			Pos: r.SymPos(), Severity: Warning, Code: "P007",
			Message: fmt.Sprintf("%s %s is never called", r.Kind, r.Name),
			Routine: r.Name,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// P008 — var-parameter aliasing

// checkVarAliasing flags call sites where the same designator is bound
// to two by-reference formals, and whole variables bound by reference to
// a routine that also accesses them as non-locals — exactly the aliasing
// the Banning-style MOD/REF propagation (and the paper's transformation
// phase) assumes away. Distinct designators over the same base variable
// (v[j] vs v[j+1]) are may-aliases at this granularity and are not
// reported.
func checkVarAliasing(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		for _, site := range cx.CG.Sites[r] {
			callee := site.Callee
			type binding struct {
				formal *sem.VarSym
				arg    ast.Expr
				base   *sem.VarSym
				print  string
			}
			var byref []binding
			for i, p := range callee.Params {
				if p.Mode == ast.Value || i >= len(site.Args) {
					continue
				}
				base := cx.Info.VarOf(site.Args[i])
				if base == nil {
					continue
				}
				byref = append(byref, binding{p, site.Args[i], base, printer.PrintExpr(site.Args[i])})
			}
			for i := 0; i < len(byref); i++ {
				for j := i + 1; j < len(byref); j++ {
					a, b := byref[i], byref[j]
					if a.base != b.base || a.print != b.print {
						continue
					}
					out = append(out, Diagnostic{
						Pos: site.Node.Pos(), Severity: Error, Code: "P008",
						Message: fmt.Sprintf("%s is bound to both var parameters %s and %s of %s: writes through one alias are visible through the other",
							a.print, a.formal.Name, b.formal.Name, callee.Name),
						Routine: callee.Name,
						Related: []Related{
							{Pos: a.formal.Pos, Message: fmt.Sprintf("var parameter %s declared here", a.formal.Name)},
							{Pos: b.formal.Pos, Message: fmt.Sprintf("var parameter %s declared here", b.formal.Name)},
						},
					})
				}
			}
			// Whole variable by reference + non-local access by the callee.
			ce := cx.Side.Of[callee]
			for _, bnd := range byref {
				if _, whole := bnd.arg.(*ast.Ident); !whole {
					continue
				}
				if !ce.ModGlobals[bnd.base] && !ce.RefGlobals[bnd.base] {
					continue
				}
				out = append(out, Diagnostic{
					Pos: site.Node.Pos(), Severity: Error, Code: "P008",
					Message: fmt.Sprintf("%s is bound to var parameter %s of %s, which also accesses %s as a non-local",
						bnd.base.Name, bnd.formal.Name, callee.Name, bnd.base.Name),
					Routine: callee.Name,
					Related: []Related{{Pos: bnd.formal.Pos, Message: fmt.Sprintf("var parameter %s declared here", bnd.formal.Name)}},
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// P009 — function result never/maybe unassigned

// checkResultUnassigned flags functions with Entry→Exit paths on which
// the result variable is never assigned: the synthetic initial
// definition of the result still reaches Exit.
func checkResultUnassigned(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		if r.Result == nil {
			continue
		}
		fl := cx.Flows[r]
		if fl.DefinitelyAssigns(r.Result) {
			continue
		}
		hasReal := false
		for _, d := range fl.Defs {
			if d.Var == r.Result && !d.Synthetic {
				hasReal = true
				break
			}
		}
		d := Diagnostic{
			Pos: r.SymPos(), Severity: Error, Code: "P009",
			Message: fmt.Sprintf("function %s never assigns its result", r.Name),
			Routine: r.Name,
		}
		if hasReal {
			d.Severity = Warning
			d.Message = fmt.Sprintf("function %s may return without assigning its result", r.Name)
		}
		out = append(out, d)
	}
	return out
}

// ---------------------------------------------------------------------------
// P010 — goto into a loop body

// checkGotoIntoLoop flags local gotos whose target label sits inside a
// loop that does not enclose the goto: iteration state (the for-loop
// counter in particular) is live at the target but bypasses the loop's
// initialization.
func checkGotoIntoLoop(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		gotoLoops := make(map[*ast.GotoStmt][]ast.Stmt)
		labelLoops := make(map[*ast.LabeledStmt][]ast.Stmt)
		var gotos []*ast.GotoStmt

		var loops []ast.Stmt
		var walk func(s ast.Stmt)
		walk = func(s ast.Stmt) {
			switch s := s.(type) {
			case nil:
			case *ast.CompoundStmt:
				for _, c := range s.Stmts {
					walk(c)
				}
			case *ast.IfStmt:
				walk(s.Then)
				walk(s.Else)
			case *ast.WhileStmt:
				loops = append(loops, s)
				walk(s.Body)
				loops = loops[:len(loops)-1]
			case *ast.ForStmt:
				loops = append(loops, s)
				walk(s.Body)
				loops = loops[:len(loops)-1]
			case *ast.RepeatStmt:
				loops = append(loops, s)
				for _, c := range s.Stmts {
					walk(c)
				}
				loops = loops[:len(loops)-1]
			case *ast.CaseStmt:
				for _, arm := range s.Arms {
					walk(arm.Body)
				}
				walk(s.Else)
			case *ast.LabeledStmt:
				labelLoops[s] = append([]ast.Stmt(nil), loops...)
				walk(s.Stmt)
			case *ast.GotoStmt:
				gotoLoops[s] = append([]ast.Stmt(nil), loops...)
				gotos = append(gotos, s)
			}
		}
		walk(r.Block.Body)

		for _, g := range gotos {
			li := cx.Info.GotoTgt[g]
			if li == nil || li.Routine != r || li.Placement == nil {
				continue // escaping gotos are P011's business
			}
			encloses := func(loop ast.Stmt) bool {
				for _, l := range gotoLoops[g] {
					if l == loop {
						return true
					}
				}
				return false
			}
			for _, loop := range labelLoops[li.Placement] {
				if encloses(loop) {
					continue
				}
				kind := "while"
				switch loop.(type) {
				case *ast.ForStmt:
					kind = "for"
				case *ast.RepeatStmt:
					kind = "repeat"
				}
				out = append(out, Diagnostic{
					Pos: g.Pos(), Severity: Warning, Code: "P010",
					Message: fmt.Sprintf("goto %s jumps into the body of a %s loop", g.Label, kind),
					Routine: r.Name,
					Related: []Related{{Pos: li.Placement.Pos(), Message: fmt.Sprintf("label %s declared here", g.Label)}},
				})
				break // one finding per goto, innermost-independent
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// P011 — non-local exits

// checkNonlocalExit reports routines that may transfer control out of
// their own body — directly (the CFG's escaping gotos, reported at the
// goto) or transitively through a callee (the Banning exit side effects
// accumulated by the side-effect analysis, reported at the routine).
func checkNonlocalExit(cx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range cx.Info.Routines {
		if r.IsProgram() {
			continue
		}
		direct := make(map[*sem.LabelInfo]bool)
		for _, g := range cx.Graphs[r].EscapingGotos {
			li := cx.Info.GotoTgt[g]
			if li != nil {
				direct[li] = true
			}
			target := "?"
			owner := ""
			if li != nil {
				target = li.Name
				owner = li.Routine.Name
			}
			d := Diagnostic{
				Pos: g.Pos(), Severity: Warning, Code: "P011",
				Message: fmt.Sprintf("goto %s transfers control out of %s (non-local exit into %s)", target, r.Name, owner),
				Routine: r.Name,
			}
			if li != nil && li.Placement != nil {
				d.Related = []Related{{Pos: li.Placement.Pos(), Message: fmt.Sprintf("label %s declared here", li.Name)}}
			}
			out = append(out, d)
		}
		// Exit side effects inherited from callees only.
		for _, li := range cx.Side.Of[r].SortedExits() {
			if direct[li] {
				continue
			}
			d := Diagnostic{
				Pos: r.SymPos(), Severity: Warning, Code: "P011",
				Message: fmt.Sprintf("%s %s may exit non-locally through a call (goto %s in %s)", r.Kind, r.Name, li.Name, li.Routine.Name),
				Routine: r.Name,
			}
			if li.Placement != nil {
				d.Related = []Related{{Pos: li.Placement.Pos(), Message: fmt.Sprintf("label %s declared here", li.Name)}}
			}
			out = append(out, d)
		}
	}
	return out
}
