package lint

import (
	"gadt/internal/analysis/cfg"
	"gadt/internal/pascal/sem"
)

// maybeUninit computes, for every CFG node of r, the set of r's local
// variables that are possibly uninitialized at node entry: there exists
// a path from Entry on which no definition of the variable occurs.
//
// Unlike reaching definitions — where call effects and partial updates
// are may-definitions that do not kill the synthetic initial def — this
// forward analysis clears a variable on ANY definition. A call binding a
// local to a var parameter initializes it on the path through that call;
// whether the callee assigns unconditionally is already folded in by the
// side-effect resolver (a callee that never writes its formal produces
// no definition at the site at all). The asymmetry is deliberate:
// reaching definitions must over-approximate for slicing soundness,
// while the anomaly report must under-approximate to avoid crying wolf.
func maybeUninit(cx *Context, r *sem.Routine) map[*cfg.Node]map[*sem.VarSym]bool {
	g, fl := cx.Graphs[r], cx.Flows[r]

	// Track plain locals only; parameters are caller-initialized and the
	// function result is P009's business.
	tracked := make(map[*sem.VarSym]bool, len(r.Locals))
	for _, v := range r.Locals {
		tracked[v] = true
	}

	in := make(map[*cfg.Node]map[*sem.VarSym]bool, len(g.Nodes))
	out := make(map[*cfg.Node]map[*sem.VarSym]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		in[n] = make(map[*sem.VarSym]bool)
		out[n] = make(map[*sem.VarSym]bool)
	}
	for v := range tracked {
		out[g.Entry][v] = true
	}

	transfer := func(n *cfg.Node) map[*sem.VarSym]bool {
		res := make(map[*sem.VarSym]bool, len(in[n]))
		for v := range in[n] {
			res[v] = true
		}
		for _, d := range fl.DefsAt[n] {
			if !d.Synthetic {
				delete(res, d.Var)
			}
		}
		return res
	}

	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n == g.Entry {
				continue
			}
			inN := in[n]
			for _, p := range n.Preds {
				for v := range out[p] {
					if !inN[v] {
						inN[v] = true
						changed = true
					}
				}
			}
			newOut := transfer(n)
			for v := range newOut {
				if !out[n][v] {
					out[n][v] = true
					changed = true
				}
			}
		}
	}
	return in
}
