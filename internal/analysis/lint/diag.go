// Package lint is a structured diagnostics engine over analyzed Pascal
// programs: a registry of dataflow-powered checks (use before
// definition, dead stores, unreachable code, var-parameter aliasing,
// unassigned function results, anomalous gotos, ...) built on the CFG,
// reaching-definitions, liveness, call-graph and side-effect layers.
//
// The paper's machinery (Sections 5-7) exists to reduce oracle
// interactions during bug localization; the cheapest oracle question is
// the one never asked because the bug was flagged statically. Findings
// are Diagnostics with stable codes (P001...), deterministic ordering,
// text and JSON renderers, `// lint:ignore P00x` suppression, and a
// Hints aggregation that biases the algorithmic debugger toward
// execution-tree nodes whose unit carries a static anomaly.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gadt/internal/pascal/token"
)

// Severity ranks findings. Error-severity findings make cmd/plint exit
// non-zero.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the lower-case severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = Error
	case "warning":
		*s = Warning
	case "info":
		*s = Info
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Related is a secondary location attached to a diagnostic (the label a
// goto jumps to, the parameter an argument aliases, ...).
type Related struct {
	Pos     token.Pos `json:"pos"`
	Message string    `json:"message"`
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Pos `json:"pos"`
	// End is the (approximate) position of the last token of the
	// offending construct; the zero Pos when unknown.
	End      token.Pos `json:"end,omitempty"`
	Severity Severity  `json:"severity"`
	// Code is the stable check identifier, e.g. "P001".
	Code    string `json:"code"`
	Message string `json:"message"`
	// Routine names the routine whose body or interface carries the
	// anomaly (the program pseudo-routine for program-level findings);
	// the debugger's hint layer aggregates by this name.
	Routine string    `json:"routine,omitempty"`
	Related []Related `json:"related,omitempty"`
}

func (d *Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Pos, d.Severity, d.Message, d.Code)
}

// Sort orders diagnostics deterministically: by position, then code,
// then message.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := &diags[i], &diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any finding has Error severity.
func HasErrors(diags []Diagnostic) bool {
	for i := range diags {
		if diags[i].Severity == Error {
			return true
		}
	}
	return false
}

// Text renders the findings one per line, related locations indented,
// in the classic file:line:col compiler format.
func Text(w io.Writer, diags []Diagnostic) {
	for i := range diags {
		d := &diags[i]
		fmt.Fprintf(w, "%s\n", d.String())
		for _, r := range d.Related {
			fmt.Fprintf(w, "\t%s: %s\n", r.Pos, r.Message)
		}
	}
}

// JSON renders the findings as an indented JSON array (round-trippable
// through ParseJSON).
func JSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// ParseJSON decodes a JSON rendering produced by JSON.
func ParseJSON(r io.Reader) ([]Diagnostic, error) {
	var diags []Diagnostic
	if err := json.NewDecoder(r).Decode(&diags); err != nil {
		return nil, err
	}
	return diags, nil
}

// Hints aggregates findings into per-routine suspiciousness scores for
// the debugger's node selection: error-severity anomalies weigh 3,
// warnings 2, infos 1, summed per routine. A unit invocation whose
// routine scores higher is asked about earlier.
func Hints(diags []Diagnostic) map[string]float64 {
	hints := make(map[string]float64)
	for i := range diags {
		d := &diags[i]
		if d.Routine == "" {
			continue
		}
		switch d.Severity {
		case Error:
			hints[d.Routine] += 3
		case Warning:
			hints[d.Routine] += 2
		default:
			hints[d.Routine] += 1
		}
	}
	return hints
}
