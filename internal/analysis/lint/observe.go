package lint

import (
	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/cfg"
	"gadt/internal/analysis/defuse"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// The side-effect analysis is flow-insensitive: a by-reference actual
// counts as a use whenever the callee reads its formal ANYWHERE, even
// when every read follows a write (arrsum's `b := 0; b := b + a[i]`
// reads b, yet the caller's actual is pure output). That
// over-approximation is what slicing wants, but reported verbatim it
// turns every output parameter into a use-before-definition anomaly.
//
// observeResolver refines call uses to OBSERVING uses: a by-reference
// actual (or a non-local the callee touches) is read by the call only if
// the variable is upward-exposed in the callee — some path through the
// callee reads it before any definition. Upward exposure is itself
// computed from observed uses, so the refinement is a least fixpoint
// over the call graph: starting from "nothing is observed", a formal
// becomes exposed only when a syntactic read (or an already-exposed
// nested binding) is reachable from the callee's Entry with the
// synthetic initial definition still live.
type observeResolver struct {
	cx    *Context
	sites map[ast.Node]*callgraph.Site
	// exposed[r][v]: routine r may read v's incoming value. Keyed by every
	// variable for uniformity; only by-reference formals and non-locals
	// are ever consulted.
	exposed map[*sem.Routine]map[*sem.VarSym]bool
}

func (o *observeResolver) CallDefs(site ast.Node) []*sem.VarSym {
	return o.cx.Side.CallDefs(site)
}

func (o *observeResolver) CallUses(site ast.Node) []*sem.VarSym {
	s := o.sites[site]
	if s == nil {
		return nil
	}
	ce, ex := o.cx.Side.Of[s.Callee], o.exposed[s.Callee]
	out := defuse.NewSet()
	for i, p := range s.Callee.Params {
		if p.Mode == ast.Value || i >= len(s.Args) {
			continue
		}
		if ce.RefFormals[p] && ex[p] {
			out.Add(o.cx.Info.VarOf(s.Args[i]))
		}
	}
	for v := range ce.RefGlobals {
		if ex[v] {
			out.Add(v)
		}
	}
	return out.Slice()
}

// computeObserved fills cx.Observed with the observing uses of every CFG
// node and returns when the exposure fixpoint is stable. Exposure only
// grows and observed uses grow with it, so iteration terminates.
func computeObserved(cx *Context) {
	res := &observeResolver{
		cx:      cx,
		sites:   make(map[ast.Node]*callgraph.Site),
		exposed: make(map[*sem.Routine]map[*sem.VarSym]bool, len(cx.Info.Routines)),
	}
	for _, sites := range cx.CG.Sites {
		for _, s := range sites {
			res.sites[s.Node] = s
		}
	}
	for _, r := range cx.Info.Routines {
		res.exposed[r] = make(map[*sem.VarSym]bool)
	}

	for changed := true; changed; {
		changed = false
		cx.Observed = make(map[*cfg.Node]map[*sem.VarSym]bool)
		for _, r := range cx.Info.Routines {
			g, fl := cx.Graphs[r], cx.Flows[r]
			for _, n := range g.Nodes {
				if n == g.Entry || n == g.Exit {
					continue
				}
				_, uses := defuse.Node(cx.Info, n, res)
				obs := make(map[*sem.VarSym]bool, uses.Len())
				for _, v := range uses.Slice() {
					obs[v] = true
					if fl.SyntheticReaches(n, v) && !res.exposed[r][v] {
						res.exposed[r][v] = true
						changed = true
					}
				}
				cx.Observed[n] = obs
			}
		}
	}
}
