package lint

import "strings"

// suppression is one parsed lint:ignore marker.
type suppression struct {
	line  int             // line the marker applies to
	codes map[string]bool // suppressed codes; "all" suppresses everything
}

// parseSuppressions scans the raw source for `lint:ignore` markers in
// any comment form:
//
//	x := 0; // lint:ignore P003 kept for symmetry
//	{ lint:ignore P001 P002 }
//	(* lint:ignore all *)
//
// A marker on a line that holds code applies to that line; a marker on a
// comment-only line applies to the next line. Codes are separated by
// spaces or commas; the word "all" suppresses every check.
func parseSuppressions(src string) []suppression {
	var out []suppression
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		idx := strings.Index(line, "lint:ignore")
		if idx < 0 {
			continue
		}
		rest := line[idx+len("lint:ignore"):]
		codes := make(map[string]bool)
		for _, f := range strings.FieldsFunc(rest, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		}) {
			f = strings.TrimSuffix(strings.TrimSuffix(f, "}"), "*)")
			if f == "all" {
				codes["all"] = true
				continue
			}
			if validCode(f) {
				codes[f] = true
			} else {
				break // prose after the code list
			}
		}
		if len(codes) == 0 {
			continue
		}
		target := i + 1 // 1-based line of the marker itself
		if commentOnly(line[:idx]) {
			target++ // standalone comment: applies to the next line
		}
		out = append(out, suppression{line: target, codes: codes})
	}
	return out
}

// validCode reports whether s looks like a diagnostic code (P followed
// by digits).
func validCode(s string) bool {
	if len(s) < 2 || (s[0] != 'P' && s[0] != 'p') {
		return false
	}
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// commentOnly reports whether the text before the marker contains only
// whitespace and comment openers — i.e. the line carries no code.
func commentOnly(prefix string) bool {
	trimmed := strings.TrimLeft(prefix, " \t")
	for _, open := range []string{"//", "{", "(*"} {
		if strings.HasPrefix(trimmed, open) {
			return true
		}
	}
	return trimmed == ""
}

// applySuppressions drops findings matched by a lint:ignore marker.
func applySuppressions(src string, diags []Diagnostic) []Diagnostic {
	sups := parseSuppressions(src)
	if len(sups) == 0 {
		return diags
	}
	byLine := make(map[int][]suppression)
	for _, s := range sups {
		byLine[s.line] = append(byLine[s.line], s)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range byLine[d.Pos.Line] {
			if s.codes["all"] || s.codes[d.Code] || s.codes[strings.ToLower(d.Code)] {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
