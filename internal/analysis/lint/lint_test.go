package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gadt/internal/analysis/lint"
	"gadt/internal/corpus"
)

// runFile lints a testdata file, keeping the repo-relative name in
// positions so output matches what plint prints from the repo root.
func runFile(t *testing.T, name string, opts lint.Options) []lint.Diagnostic {
	t.Helper()
	rel := filepath.Join("testdata", name)
	src, err := os.ReadFile(filepath.Join("..", "..", "..", rel))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(rel, string(src), opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return diags
}

// TestGolden pins the exact findings — codes, positions, messages and
// related notes — for the seeded-anomaly fixture.
func TestGolden(t *testing.T) {
	diags := runFile(t, "lint_anomalies.pas", lint.Options{})

	var buf bytes.Buffer
	lint.Text(&buf, diags)
	want, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "lint_anomalies.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}

	// Every registered check must be exercised by the fixture.
	fired := make(map[string]bool)
	for _, d := range diags {
		fired[d.Code] = true
	}
	for _, c := range lint.Checks() {
		if !fired[c.Code] {
			t.Errorf("check %s (%s) fires nowhere in lint_anomalies.pas", c.Code, c.Name)
		}
	}
	if !lint.HasErrors(diags) {
		t.Error("fixture should contain error-severity findings")
	}
}

// TestCleanPrograms asserts zero false positives on anomaly-free inputs:
// the dedicated clean fixture and the paper's own subject programs.
func TestCleanPrograms(t *testing.T) {
	for _, name := range []string{"lint_clean.pas", "sqrtest.pas", "arrsum.pas"} {
		if diags := runFile(t, name, lint.Options{}); len(diags) > 0 {
			var buf bytes.Buffer
			lint.Text(&buf, diags)
			t.Errorf("%s: want no findings, got:\n%s", name, buf.String())
		}
	}
}

// TestCorpus lints every corpus program (working and buggy variants).
// The corpus is executable and correct, so anything beyond the one known
// benign finding (matrixtrace's shadowed program-level i, j) is a false
// positive.
func TestCorpus(t *testing.T) {
	for _, p := range corpus.All() {
		for _, v := range []struct{ tag, src string }{{"ok", p.Source}, {"buggy", p.Buggy}} {
			if v.src == "" {
				continue
			}
			diags, err := lint.Run(p.Name, v.src, lint.Options{})
			if err != nil {
				t.Errorf("%s %s: %v", p.Name, v.tag, err)
				continue
			}
			if p.Name == "matrixtrace" {
				if len(diags) != 2 || diags[0].Code != "P004" || diags[1].Code != "P004" {
					t.Errorf("matrixtrace: want exactly the two shadowed-variable P004 findings, got %+v", diags)
				}
				continue
			}
			if p.Name == "checksum" {
				// The constant-false debug guard is planted: P012 must
				// prove it, and nothing else may fire.
				if len(diags) != 1 || diags[0].Code != "P012" ||
					!strings.Contains(diags[0].Message, "always false") {
					t.Errorf("checksum: want exactly the planted P012 always-false finding, got %+v", diags)
				}
				continue
			}
			if len(diags) > 0 {
				var buf bytes.Buffer
				lint.Text(&buf, diags)
				t.Errorf("%s %s: unexpected findings:\n%s", p.Name, v.tag, buf.String())
			}
		}
	}
}

// deadStoreProgram seeds one P003 at line 5 and one P004 (variable w)
// and lets tests inject comment text around the store.
const deadStoreProgram = `program s;
var g: integer;
procedure p(var r: integer);
var d, w: integer;
begin
  d := 1;%s
  d := 2;%s
  w := d;
  r := d;
end;
begin
  p(g);
  writeln(g);
end.
`

func TestSuppressions(t *testing.T) {
	tests := []struct {
		name      string
		sameLine  string // appended to the d := 1 line
		nextLine  string // inserted as the d := 2 line suffix (unused by most)
		opts      lint.Options
		wantCodes []string
	}{
		{
			name:      "none",
			wantCodes: []string{"P004", "P003"},
		},
		{
			name:      "same line slash comment",
			sameLine:  " // lint:ignore P003 first write kept",
			wantCodes: []string{"P004"},
		},
		{
			name:      "same line brace comment",
			sameLine:  " { lint:ignore P003 }",
			wantCodes: []string{"P004"},
		},
		{
			name:      "wrong code does not suppress",
			sameLine:  " { lint:ignore P001 }",
			wantCodes: []string{"P004", "P003"},
		},
		{
			name:      "all keyword",
			sameLine:  " (* lint:ignore all *)",
			wantCodes: []string{"P004"},
		},
		{
			name:      "multiple codes comma separated",
			sameLine:  " // lint:ignore P001, P003",
			wantCodes: []string{"P004"},
		},
		{
			name:      "NoSuppress keeps the finding",
			sameLine:  " // lint:ignore P003",
			opts:      lint.Options{NoSuppress: true},
			wantCodes: []string{"P004", "P003"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := strings.Replace(deadStoreProgram, "%s", tt.sameLine, 1)
			src = strings.Replace(src, "%s", tt.nextLine, 1)
			diags, err := lint.Run("s.pas", src, tt.opts)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, d := range diags {
				got = append(got, d.Code)
			}
			if !reflect.DeepEqual(got, tt.wantCodes) {
				t.Errorf("got codes %v, want %v", got, tt.wantCodes)
			}
		})
	}
}

// TestSuppressionPreviousLine covers a standalone comment applying to the
// line after it.
func TestSuppressionPreviousLine(t *testing.T) {
	src := `program s;
var g: integer;
procedure p(var r: integer);
var d, w: integer;
begin
  { lint:ignore P003 }
  d := 1;
  d := 2;
  w := d;
  r := d;
end;
begin
  p(g);
  writeln(g);
end.
`
	diags, err := lint.Run("s.pas", src, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Code != "P004" {
		t.Errorf("want only P004 after suppressing P003 from the previous line, got %+v", diags)
	}
}

func TestCodesFilter(t *testing.T) {
	diags := runFile(t, "lint_anomalies.pas", lint.Options{Codes: []string{"P001", "P009"}})
	for _, d := range diags {
		if d.Code != "P001" && d.Code != "P009" {
			t.Errorf("filter leaked code %s", d.Code)
		}
	}
	if len(diags) != 3 { // one P001, two P009 flavors
		t.Errorf("want 3 filtered findings, got %d", len(diags))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	diags := runFile(t, "lint_anomalies.pas", lint.Options{})
	var buf bytes.Buffer
	if err := lint.JSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	back, err := lint.ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Errorf("JSON round trip changed findings:\n got %+v\nwant %+v", back, diags)
	}

	// Empty runs must encode as [], not null.
	buf.Reset()
	if err := lint.JSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty JSON = %q, want []", buf.String())
	}
}

// TestVarAliasing drives P008 through direct calls and nested chains.
func TestVarAliasing(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int // number of P008 findings
	}{
		{
			name: "direct two formals",
			src: `program a;
var x: integer;
procedure both(var p, q: integer);
begin
  p := p + q;
  q := q - p;
end;
begin
  x := 1;
  both(x, x);
  writeln(x);
end.
`,
			want: 1,
		},
		{
			name: "two calls deep through a var formal",
			src: `program a;
var gv: integer;
procedure leaf(var p: integer);
begin
  p := p + gv;
end;
procedure mid(var u: integer);
begin
  leaf(u);
end;
begin
  gv := 1;
  mid(gv);
  writeln(gv);
end.
`,
			want: 1, // reported once, at the mid(gv) site where the overlap is created
		},
		{
			name: "distinct variables are fine",
			src: `program a;
var x, y: integer;
procedure both(var p, q: integer);
begin
  p := p + q;
  q := q - p;
end;
begin
  x := 1;
  y := 2;
  both(x, y);
  writeln(x, y);
end.
`,
			want: 0,
		},
		{
			name: "same base distinct elements not reported",
			src: `program a;
type arr = array [1 .. 4] of integer;
var v: arr;
procedure both(var p, q: integer);
begin
  p := p + q;
  q := q - p;
end;
begin
  v[1] := 1;
  v[2] := 2;
  both(v[1], v[2]);
  writeln(v[1], v[2]);
end.
`,
			want: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			diags, err := lint.Run("a.pas", tt.src, lint.Options{Codes: []string{"P008"}})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != tt.want {
				var buf bytes.Buffer
				lint.Text(&buf, diags)
				t.Errorf("want %d P008 findings, got %d:\n%s", tt.want, len(diags), buf.String())
			}
		})
	}
}

func TestHints(t *testing.T) {
	diags := []lint.Diagnostic{
		{Code: "P001", Severity: lint.Error, Routine: "f"},
		{Code: "P003", Severity: lint.Warning, Routine: "f"},
		{Code: "P004", Severity: lint.Warning, Routine: "g"},
		{Code: "P011", Severity: lint.Info, Routine: ""},
	}
	hints := lint.Hints(diags)
	want := map[string]float64{"f": 5, "g": 2}
	if !reflect.DeepEqual(hints, want) {
		t.Errorf("Hints = %v, want %v", hints, want)
	}
}

func TestLookupCheck(t *testing.T) {
	if c := lint.LookupCheck("P003"); c == nil || c.Name != "dead-store" {
		t.Errorf("LookupCheck(P003) = %+v", c)
	}
	if c := lint.LookupCheck("dead-store"); c == nil || c.Code != "P003" {
		t.Errorf("LookupCheck(dead-store) = %+v", c)
	}
	if c := lint.LookupCheck("nope"); c != nil {
		t.Errorf("LookupCheck(nope) = %+v, want nil", c)
	}
}

// TestValueChecks exercises the abstract-interpretation-backed checks
// P012..P015 on both firing and deliberately-near-miss programs: each
// check must report only facts that hold on every execution.
func TestValueChecks(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // codes that must fire
		ban  []string // codes that must stay silent
	}{
		{
			name: "dead guard",
			src: `program p;
var mode, x: integer;
begin
  mode := 0;
  x := 1;
  if mode > 0 then
    x := 2;
  writeln(x);
end.`,
			want: []string{"P012"},
		},
		{
			name: "live guard reads input",
			src: `program p;
var mode, x: integer;
begin
  read(mode);
  x := 1;
  if mode > 0 then
    x := 2;
  writeln(x);
end.`,
			ban: []string{"P012"},
		},
		{
			name: "literal condition is idiom",
			src: `program p;
var x: integer;
begin
  x := 0;
  while true do begin
    x := x + 1;
    if x > 3 then
      x := 0;
  end;
end.`,
			ban: []string{"P012"},
		},
		{
			name: "index always past the end",
			src: `program p;
var a: array [1 .. 4] of integer;
    i: integer;
begin
  i := 9;
  a[i] := 1;
  writeln(a[1]);
end.`,
			want: []string{"P013"},
		},
		{
			name: "index interval overlaps bounds",
			src: `program p;
var a: array [1 .. 4] of integer;
    i: integer;
begin
  read(i);
  a[i] := 1;
  writeln(a[1]);
end.`,
			ban: []string{"P013"},
		},
		{
			name: "index narrowed by loop stays inside",
			src: `program p;
var a: array [1 .. 4] of integer;
    i: integer;
begin
  for i := 1 to 4 do
    a[i] := i;
  writeln(a[2]);
end.`,
			ban: []string{"P013"},
		},
		{
			name: "divisor pinned to zero",
			src: `program p;
var z, n: integer;
begin
  read(n);
  z := 0;
  writeln(n div z);
end.`,
			want: []string{"P014"},
		},
		{
			name: "divisor only maybe zero",
			src: `program p;
var z, n: integer;
begin
  read(n);
  z := n - 1;
  writeln(n div z, n mod z);
end.`,
			ban: []string{"P014"},
		},
		{
			name: "store rewrites held constant",
			src: `program p;
var k: integer;
begin
  k := 4;
  writeln(k);
  k := 2 + 2;
  writeln(k);
end.`,
			want: []string{"P015"},
		},
		{
			name: "initializer stores are style",
			src: `program p;
var k: integer;
begin
  k := 0;
  writeln(k);
end.`,
			ban: []string{"P015"},
		},
		{
			name: "store changes the value",
			src: `program p;
var k: integer;
begin
  k := 4;
  writeln(k);
  k := 5;
  writeln(k);
end.`,
			ban: []string{"P015"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags, err := lint.Run("p.pas", tc.src, lint.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fired := make(map[string]bool)
			for _, d := range diags {
				fired[d.Code] = true
			}
			for _, code := range tc.want {
				if !fired[code] {
					var buf bytes.Buffer
					lint.Text(&buf, diags)
					t.Errorf("%s did not fire; findings:\n%s", code, buf.String())
				}
			}
			for _, code := range tc.ban {
				if fired[code] {
					var buf bytes.Buffer
					lint.Text(&buf, diags)
					t.Errorf("%s fired on a near-miss; findings:\n%s", code, buf.String())
				}
			}
		})
	}
}

// TestJSONGolden pins the exact -json rendering of the fixture — the
// machine-readable contract plint exposes to CI and gadt-serve clients.
func TestJSONGolden(t *testing.T) {
	diags := runFile(t, "lint_anomalies.pas", lint.Options{})
	var buf bytes.Buffer
	if err := lint.JSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "lint_anomalies.json"))
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("JSON golden mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}
