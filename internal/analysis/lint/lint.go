package lint

import (
	"gadt/internal/analysis/absint"
	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/cfg"
	"gadt/internal/analysis/dataflow"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/obs"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

// Context carries the shared analysis results every check reads. It is
// built once per Run: the checks themselves are pure functions over it.
type Context struct {
	Info *sem.Info
	// Src is the raw source text (used for suppression comments); may be
	// empty, in which case no suppressions apply.
	Src string

	CG     *callgraph.Graph
	Side   *sideeffect.Result
	Graphs map[*sem.Routine]*cfg.Graph
	Flows  map[*sem.Routine]*dataflow.Result
	Lives  map[*sem.Routine]*dataflow.Live
	// Values is the abstract-interpretation result backing the provable
	// checks P012–P015.
	Values *absint.Result

	// Observed holds, per CFG node, the variables whose incoming value the
	// node may actually read — Flows' UsesAt with flow-insensitive call
	// uses refined to upward-exposed ones (see observe.go). The
	// use-before-definition checks consult this instead of UsesAt so that
	// pure output arguments are not reported as reads.
	Observed map[*cfg.Node]map[*sem.VarSym]bool

	// usedAnywhere / definedAnywhere record, across every routine's
	// graph, the variables with at least one use / one real (non-
	// synthetic) definition. Nested routines touching an outer local
	// count: a variable only read by an inner routine is not unused.
	usedAnywhere    map[*sem.VarSym]bool
	definedAnywhere map[*sem.VarSym]bool
}

// NewContext runs the shared analyses over an analyzed program.
func NewContext(info *sem.Info, src string) *Context {
	cx := &Context{
		Info:            info,
		Src:             src,
		Graphs:          make(map[*sem.Routine]*cfg.Graph, len(info.Routines)),
		Flows:           make(map[*sem.Routine]*dataflow.Result, len(info.Routines)),
		Lives:           make(map[*sem.Routine]*dataflow.Live, len(info.Routines)),
		usedAnywhere:    make(map[*sem.VarSym]bool),
		definedAnywhere: make(map[*sem.VarSym]bool),
	}
	cx.CG = callgraph.Build(info)
	cx.Side = sideeffect.Analyze(info, cx.CG)
	for _, r := range info.Routines {
		g := cfg.Build(info, r)
		cx.Graphs[r] = g
		// Reaching definitions with interprocedural call effects: a call
		// that may define a variable through a var parameter or a global
		// counts as a definition, exactly like in the slicing layer.
		fl := dataflow.ReachingDefs(info, g, cx.Side)
		cx.Flows[r] = fl
		cx.Lives[r] = fl.Liveness()
		for _, d := range fl.Defs {
			if !d.Synthetic {
				cx.definedAnywhere[d.Var] = true
			}
		}
	}
	// The value analysis shares the CFGs built above.
	cx.Values = absint.AnalyzeGraphs(info, cx.Graphs, cx.CG, cx.Side)
	// Observing uses need every routine's flow results, so this runs after
	// the per-routine loop. usedAnywhere counts observing uses only: a
	// variable that is merely overwritten through var-parameter bindings
	// is write-only, not used.
	computeObserved(cx)
	for _, obs := range cx.Observed {
		for v := range obs {
			cx.usedAnywhere[v] = true
		}
	}
	return cx
}

// Check is one registered analysis pass.
type Check struct {
	// Code is the stable identifier, e.g. "P001".
	Code string
	// Name is a short slug, e.g. "use-before-def".
	Name string
	// Doc is a one-line description for -codes listings and the README
	// table.
	Doc string
	// Run produces the findings. Implementations must be deterministic.
	Run func(cx *Context) []Diagnostic
}

// Checks returns the full registry in code order.
func Checks() []Check {
	return []Check{
		{"P001", "use-before-def", "local variable is used but no assignment reaches the use", checkUseBeforeDef},
		{"P002", "maybe-uninitialized", "local variable may be used before assignment on some path", checkMaybeUninit},
		{"P003", "dead-store", "assigned value is never used", checkDeadStores},
		{"P004", "unused-variable", "variable is declared but never used", checkUnusedVars},
		{"P005", "unused-parameter", "parameter is never used by the routine", checkUnusedParams},
		{"P006", "unreachable", "statement can never execute", checkUnreachable},
		{"P007", "unused-routine", "routine is never called", checkUnusedRoutines},
		{"P008", "var-alias", "same variable bound to two var parameters at a call", checkVarAliasing},
		{"P009", "result-unassigned", "function has paths that never assign its result", checkResultUnassigned},
		{"P010", "goto-into-loop", "goto jumps into the body of a loop", checkGotoIntoLoop},
		{"P011", "nonlocal-exit", "routine may exit non-locally via goto", checkNonlocalExit},
		{"P012", "constant-condition", "branch condition always evaluates the same way", checkConstCond},
		{"P013", "index-out-of-range", "array index is provably outside the declared bounds", checkIndexRange},
		{"P014", "div-by-zero", "right operand of div/mod is provably zero", checkDivByZero},
		{"P015", "redundant-store", "assignment provably stores the value the variable already holds", checkRedundantStore},
	}
}

// LookupCheck finds a registry entry by code ("P003") or name
// ("dead-store"); nil when unknown.
func LookupCheck(key string) *Check {
	for _, c := range Checks() {
		if c.Code == key || c.Name == key {
			c := c
			return &c
		}
	}
	return nil
}

// Options configures a run.
type Options struct {
	// Codes restricts the run to the given check codes (empty = all).
	Codes []string
	// NoSuppress disables `lint:ignore` comment processing.
	NoSuppress bool
}

// RunInfo lints an analyzed program, returning findings in deterministic
// order with suppressions applied.
func RunInfo(info *sem.Info, src string, opts Options) []Diagnostic {
	cx := NewContext(info, src)
	keep := func(code string) bool {
		if len(opts.Codes) == 0 {
			return true
		}
		for _, c := range opts.Codes {
			if c == code {
				return true
			}
		}
		return false
	}
	var diags []Diagnostic
	for _, c := range Checks() {
		if !keep(c.Code) {
			continue
		}
		diags = append(diags, c.Run(cx)...)
	}
	if !opts.NoSuppress {
		diags = applySuppressions(src, diags)
	}
	Sort(diags)
	return dedup(diags)
}

// dedup collapses findings identical in position, code and message — one
// statement can expand to several CFG nodes (a for loop's ForCond and
// ForIncr both read the counter) that each report the same anomaly.
func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := diags[i-1]
			if p.Pos == d.Pos && p.Code == d.Code && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// Record counts findings in a metrics registry: lint.findings overall
// plus lint.findings.<code> per check code. Nil-safe on the registry.
func Record(m *obs.Registry, diags []Diagnostic) {
	if m == nil {
		return
	}
	m.Counter("lint.findings").Add(int64(len(diags)))
	for _, d := range diags {
		m.Counter("lint.findings." + d.Code).Inc()
	}
}

// Run parses, analyzes and lints a source file in one step.
func Run(file, src string, opts Options) ([]Diagnostic, error) {
	prog, err := parser.ParseProgram(file, src)
	if err != nil {
		return nil, err
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}
	return RunInfo(info, src, opts), nil
}
