package absint

import (
	"fmt"
	"sort"
	"strings"

	"gadt/internal/analysis/cfg"
	"gadt/internal/pascal/sem"
)

// Dump renders the per-program-point stores as text, one routine per
// section in declaration order, one line per CFG node:
//
//	n3   cond i < n              {i: [1..10], n: 10}
//
// Unreachable nodes print {unreachable}. The format is a debugging aid
// for the analysis itself (plint -pval), not a stable interface.
func (r *Result) Dump() string {
	var sb strings.Builder
	for _, rt := range r.Info.Routines {
		g := r.Graphs[rt]
		if g == nil {
			continue
		}
		fmt.Fprintf(&sb, "%s %s:\n", rt.Kind, rt.Name)
		for _, n := range g.Nodes {
			fmt.Fprintf(&sb, "  n%-3d %-28s %s\n", n.ID, clip(n.String(), 28), r.describeEnv(rt, n))
		}
	}
	return sb.String()
}

func clip(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) > n {
		return s[:n-3] + "..."
	}
	return s
}

// describeEnv renders the tracked variables of rt (own scalars plus the
// program globals) at node n, sorted by name; ⊤ entries are elided.
func (r *Result) describeEnv(rt *sem.Routine, n *cfg.Node) string {
	env := r.At(n)
	if !env.Reachable() {
		return "{unreachable}"
	}
	vars := append([]*sem.VarSym(nil), rt.AllVars()...)
	if rt != r.Info.Main {
		vars = append(vars, r.Info.Main.Locals...)
	}
	var parts []string
	for _, v := range vars {
		val := env.Lookup(v)
		if val.IsTop() {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s: %s", v.Name, val))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
