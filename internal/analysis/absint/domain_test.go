package absint

import "testing"

func TestIntervalArith(t *testing.T) {
	tests := []struct {
		name string
		got  Val
		want Val
	}{
		{"add", IntRange(1, 2).Add(IntRange(10, 20)), IntRange(11, 22)},
		{"sub", IntRange(1, 2).Sub(IntRange(10, 20)), IntRange(-19, -8)},
		{"mul-sign", IntRange(-2, 3).Mul(IntRange(4, 5)), IntRange(-10, 15)},
		{"neg", IntRange(-3, 7).Neg(), IntRange(-7, 3)},
		{"div-pos", IntRange(10, 20).Div(IntConst(3)), IntRange(3, 6)},
		{"div-neg-trunc", IntRange(-7, -7).Div(IntConst(2)), IntConst(-3)},
		{"div-span-zero-divisor", IntConst(10).Div(IntRange(-2, 2)), IntRange(-10, 10)},
		{"div-by-zero-only", IntConst(1).Div(IntConst(0)), Bot()},
		{"mod", IntRange(0, 100).Mod(IntConst(7)), IntRange(0, 6)},
		{"mod-neg-dividend", IntRange(-5, -1).Mod(IntConst(3)), IntRange(-2, 0)},
		{"abs", IntRange(-3, 2).Abs(), IntRange(0, 3)},
		{"add-overflow", IntConst(posInf - 1).Add(IntConst(posInf - 1)), IntConst(posInf)},
		{"join", IntRange(0, 1).Join(IntRange(5, 9)), IntRange(0, 9)},
		{"meet-disjoint", IntRange(0, 1).Meet(IntRange(5, 9)), Bot()},
		{"meet", IntRange(0, 7).Meet(IntRange(5, 9)), IntRange(5, 7)},
		{"widen-hi", IntRange(0, 1).Widen(IntRange(0, 2)), IntRange(0, posInf)},
		{"widen-lo-threshold", IntRange(5, 9).Widen(IntRange(2, 9)), IntRange(0, 9)},
		{"bot-absorbs", Bot().Add(IntConst(1)), Bot()},
		{"top-degrades", Top().Add(IntConst(1)), AnyInt()},
	}
	for _, tc := range tests {
		if !tc.got.Equal(tc.want) {
			t.Errorf("%s: got %s, want %s", tc.name, tc.got, tc.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	tests := []struct {
		name string
		got  Val
		want Val
	}{
		{"lt-definite", IntRange(0, 4).Lt(IntRange(5, 9)), BoolConst(true)},
		{"lt-overlap", IntRange(0, 5).Lt(IntRange(5, 9)), AnyBool()},
		{"ge-definite-false", IntRange(0, 4).Ge(IntRange(5, 9)), BoolConst(false)},
		{"eq-disjoint", IntConst(1).EqV(IntConst(2)), BoolConst(false)},
		{"eq-same-const", IntConst(3).EqV(IntConst(3)), BoolConst(true)},
		{"eq-overlap", IntRange(0, 5).EqV(IntConst(3)), AnyBool()},
		{"ne", IntConst(1).NeV(IntConst(2)), BoolConst(true)},
		{"and", BoolConst(true).And(AnyBool()), AnyBool()},
		{"and-false", BoolConst(false).And(AnyBool()), BoolConst(false)},
		{"or-true", BoolConst(true).Or(AnyBool()), BoolConst(true)},
		{"not", BoolConst(true).Not(), BoolConst(false)},
		{"odd-const", IntConst(-3).Odd(), BoolConst(true)},
		{"odd-range", IntRange(0, 3).Odd(), AnyBool()},
	}
	for _, tc := range tests {
		if !tc.got.Equal(tc.want) {
			t.Errorf("%s: got %s, want %s", tc.name, tc.got, tc.want)
		}
	}
}
