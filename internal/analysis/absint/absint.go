package absint

import (
	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/cfg"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
	"gadt/internal/pascal/types"
)

// Env is the abstract store at one program point: a map from tracked
// variables to lattice values, plus a reachability flag. An unreachable
// Env maps every variable to ⊥; in a reachable Env a missing variable is
// ⊤ (untracked). Envs are immutable from the caller's perspective —
// mutating operations clone.
type Env struct {
	vals      map[*sem.VarSym]Val
	reachable bool
}

// Reachable reports whether the program point can execute at all.
func (e Env) Reachable() bool { return e.reachable }

// Lookup returns the abstract value of v at this point.
func (e Env) Lookup(v *sem.VarSym) Val {
	if !e.reachable {
		return Bot()
	}
	if val, ok := e.vals[v]; ok {
		return val
	}
	return Top()
}

func botEnv() Env { return Env{} }

func (e Env) clone() Env {
	out := Env{vals: make(map[*sem.VarSym]Val, len(e.vals)), reachable: e.reachable}
	for k, v := range e.vals {
		out.vals[k] = v
	}
	return out
}

// set stores val for v, normalizing explicit ⊤ to absence. Mutates e in
// place: callers own a fresh clone.
func (e Env) set(v *sem.VarSym, val Val) {
	if val.IsTop() {
		delete(e.vals, v)
		return
	}
	e.vals[v] = val
}

// join returns the pointwise least upper bound.
func (e Env) join(o Env) Env {
	if !e.reachable {
		return o
	}
	if !o.reachable {
		return e
	}
	out := Env{vals: make(map[*sem.VarSym]Val), reachable: true}
	for k, v := range e.vals {
		if w, ok := o.vals[k]; ok {
			j := v.Join(w)
			if !j.IsTop() {
				out.vals[k] = j
			}
		}
	}
	return out
}

// widen extrapolates o relative to the previous iterate e.
func (e Env) widen(o Env) Env {
	if !e.reachable || !o.reachable {
		return e.join(o)
	}
	out := Env{vals: make(map[*sem.VarSym]Val), reachable: true}
	for k, v := range e.vals {
		if w, ok := o.vals[k]; ok {
			j := v.Widen(w)
			if !j.IsTop() {
				out.vals[k] = j
			}
		}
	}
	return out
}

func (e Env) equal(o Env) bool {
	if e.reachable != o.reachable {
		return false
	}
	if len(e.vals) != len(o.vals) {
		return false
	}
	for k, v := range e.vals {
		if w, ok := o.vals[k]; !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// Result holds the analysis output for a whole program.
type Result struct {
	Info   *sem.Info
	Graphs map[*sem.Routine]*cfg.Graph

	// in maps each CFG node to the abstract store holding immediately
	// before the node executes.
	in map[*cfg.Node]Env

	entry   map[*sem.Routine]Env
	exitEnv map[*sem.Routine]Env

	// untracked lists, per routine, variables excluded from its abstract
	// store because a var-parameter may alias them (see computeUntracked).
	// An untracked variable reads as ⊤ at every point of that routine.
	untracked map[*sem.Routine]map[*sem.VarSym]bool

	// forVarMod caches, per for-statement, whether its body may write the
	// loop variable (degrading the loop model, see refineFor).
	forVarMod map[*ast.ForStmt]bool

	// covering lazily maps every evaluated AST node to the CFG node that
	// evaluates it (see CoveringNode).
	covering map[ast.Node]*cfg.Node

	side *sideeffect.Result
	cg   *callgraph.Graph
}

// Edge is one CFG edge, identified by its endpoints.
type Edge struct {
	From, To *cfg.Node
}

// At returns the abstract store before node n executes (the bottom store
// when n is unreachable).
func (r *Result) At(n *cfg.Node) Env { return r.in[n] }

// Reachable reports whether node n can execute.
func (r *Result) Reachable(n *cfg.Node) bool { return r.in[n].reachable }

// EvalAt evaluates expression e in the store before node n, conservatively
// accounting for side effects of any calls inside n's statement (a call
// earlier in the same statement may change variables e reads).
func (r *Result) EvalAt(n *cfg.Node, e ast.Expr) Val {
	env := r.in[n]
	if !env.reachable {
		return Bot()
	}
	a := &analyzer{res: r}
	env = a.havocCalls(env, nodeRoots(n))
	return a.eval(env, e)
}

// VarAt returns the abstract value variable v holds at node n, like
// EvalAt conservatively accounting for calls inside n's statement. It
// serves clients asking about a variable that does not occur in the
// node's own text (e.g. a var-swap replacement candidate).
func (r *Result) VarAt(n *cfg.Node, v *sem.VarSym) Val {
	env := r.in[n]
	if !env.reachable {
		return Bot()
	}
	a := &analyzer{res: r}
	env = a.havocCalls(env, nodeRoots(n))
	return env.Lookup(v)
}

// CoveringNode returns the CFG node that evaluates the given AST node —
// the atomic statement or condition whose subtree contains it — or nil
// for nodes outside any evaluated subtree (declarations, case-arm
// labels, compound shells). When a subtree is evaluated by more than
// one node (a for-loop limit is captured at init and re-checked by the
// header), the first evaluation wins, matching the moment the
// interpreter reads the expression's operands.
func (r *Result) CoveringNode(m ast.Node) *cfg.Node {
	if r.covering == nil {
		r.covering = make(map[ast.Node]*cfg.Node)
		for _, g := range r.Graphs {
			for _, n := range g.Nodes {
				for _, root := range nodeRoots(n) {
					n := n
					ast.Inspect(root, func(x ast.Node) bool {
						if x == nil {
							return false
						}
						if _, seen := r.covering[x]; !seen {
							r.covering[x] = n
						}
						return true
					})
				}
			}
		}
	}
	return r.covering[m]
}

// nodeRoots returns the AST subtrees node n evaluates.
func nodeRoots(n *cfg.Node) []ast.Node {
	switch n.Kind {
	case cfg.Stmt:
		if n.Stmt != nil {
			return []ast.Node{n.Stmt}
		}
	case cfg.Cond:
		if n.Cond != nil {
			return []ast.Node{n.Cond}
		}
	case cfg.ForInit:
		fs := n.Stmt.(*ast.ForStmt)
		return []ast.Node{fs.From, fs.Limit}
	case cfg.ForCond:
		fs := n.Stmt.(*ast.ForStmt)
		return []ast.Node{fs.Limit}
	}
	return nil
}

// InfeasibleEdges returns the branch edges the analysis proves can never
// be taken: the condition has a definite value and the edge carries the
// opposite outcome. Edges out of unreachable nodes are not listed (whole
// nodes are reported through Reachable).
func (r *Result) InfeasibleEdges(g *cfg.Graph) []Edge {
	a := &analyzer{res: r}
	var out []Edge
	for _, n := range g.Nodes {
		env := r.in[n]
		if !env.reachable {
			continue
		}
		if n.Kind != cfg.Cond && n.Kind != cfg.ForCond {
			continue
		}
		post := a.transfer(g, n, env, false)
		for _, s := range n.Succs {
			br := g.Label(n, s)
			if br != cfg.BranchTrue && br != cfg.BranchFalse {
				continue
			}
			if !a.refineEdge(g, n, post, br).reachable {
				out = append(out, Edge{From: n, To: s})
			}
		}
	}
	return out
}

// Analyze runs the abstract interpretation over freshly built CFGs.
func Analyze(info *sem.Info) *Result {
	cg := callgraph.Build(info)
	return AnalyzeGraphs(info, cfg.BuildAll(info), cg, sideeffect.Analyze(info, cg))
}

// AnalyzeGraphs runs the analysis over caller-provided CFGs and
// supporting analyses, so clients that already built them (the SDG
// builder, the linter) do not pay for them twice.
func AnalyzeGraphs(info *sem.Info, graphs map[*sem.Routine]*cfg.Graph, cg *callgraph.Graph, side *sideeffect.Result) *Result {
	res := &Result{
		Info:      info,
		Graphs:    graphs,
		in:        make(map[*cfg.Node]Env),
		entry:     make(map[*sem.Routine]Env),
		exitEnv:   make(map[*sem.Routine]Env),
		untracked: computeUntracked(info, cg, side),
		forVarMod: make(map[*ast.ForStmt]bool),
		side:      side,
		cg:        cg,
	}
	a := &analyzer{res: res, entryJoins: make(map[*sem.Routine]int), exitJoins: make(map[*sem.Routine]int)}

	// Main's entry store: the interpreter zero-initializes every frame
	// slot, so all globals start at 0 / false (implementation semantics,
	// not ISO Pascal).
	main := info.Main
	env := Env{vals: make(map[*sem.VarSym]Val), reachable: true}
	for _, v := range main.AllVars() {
		if val, ok := zeroValue(v.Type); ok {
			env.set(v, val)
		}
	}
	res.entry[main] = env

	// Interprocedural fixpoint: re-analyze a routine when its entry store
	// grows, and its callers when its exit summary grows. Entry and exit
	// joins widen after a few updates, bounding the chain; the sweep cap
	// is a defensive backstop (widening makes it unreachable in practice).
	dirty := []*sem.Routine{main}
	inDirty := map[*sem.Routine]bool{main: true}
	for rounds := 0; len(dirty) > 0 && rounds < 64*len(info.Routines); rounds++ {
		r := dirty[0]
		dirty = dirty[1:]
		inDirty[r] = false
		changed := a.analyzeRoutine(r)
		for _, cr := range changed {
			if !inDirty[cr] {
				inDirty[cr] = true
				dirty = append(dirty, cr)
			}
		}
	}
	return res
}

// zeroValue returns the abstract zero-initialized value for a declared
// type (ok=false for untracked types).
func zeroValue(t types.Type) (Val, bool) {
	b, ok := t.(*types.Basic)
	if !ok {
		return Top(), false
	}
	switch b.Kind {
	case types.Int:
		return IntConst(0), true
	case types.Bool:
		return BoolConst(false), true
	}
	return Top(), false
}

// tracked reports whether v participates in the abstract store of a
// routine: integer/boolean scalars only.
func trackedType(v *sem.VarSym) bool {
	_, ok := zeroValue(v.Type)
	return ok
}

// computeUntracked handles var-parameter aliasing. A write through a
// by-reference formal mutates its actual mid-call, so a routine whose
// formal may be bound to a variable the routine can also name directly
// (a global, its own variable under recursion) would otherwise carry
// stale facts about that variable. The store keeps strong updates and
// instead drops the entangled names: within such a routine the aliased
// variable is untracked (always ⊤), and the formal too when the routine
// may also write the variable under its own name.
//
// carriers(f) is the set of root variables a by-ref formal f may be
// bound to across all call sites, propagated transitively through
// formal-to-formal forwarding (fixpoint over the call graph). A by-ref
// actual that is not a plain variable (an array element, say) makes the
// formal's binding unanalyzable and the formal itself untracked.
func computeUntracked(info *sem.Info, cg *callgraph.Graph, side *sideeffect.Result) map[*sem.Routine]map[*sem.VarSym]bool {
	carriers := make(map[*sem.VarSym]map[*sem.VarSym]bool)
	unknown := make(map[*sem.VarSym]bool)
	add := func(p, v *sem.VarSym) bool {
		if carriers[p][v] {
			return false
		}
		if carriers[p] == nil {
			carriers[p] = make(map[*sem.VarSym]bool)
		}
		carriers[p][v] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, sites := range cg.Sites {
			for _, site := range sites {
				for i, p := range site.Callee.Params {
					if !p.IsByRef() || i >= len(site.Args) {
						continue
					}
					var v *sem.VarSym
					if _, isIdent := site.Args[i].(*ast.Ident); isIdent {
						v = info.VarOf(site.Args[i])
					}
					if v == nil {
						if !unknown[p] {
							unknown[p] = true
							changed = true
						}
						continue
					}
					if add(p, v) {
						changed = true
					}
					if v.IsByRef() {
						for t := range carriers[v] {
							if add(p, t) {
								changed = true
							}
						}
						if unknown[v] && !unknown[p] {
							unknown[p] = true
							changed = true
						}
					}
				}
			}
		}
	}

	un := make(map[*sem.Routine]map[*sem.VarSym]bool)
	mark := func(r *sem.Routine, v *sem.VarSym) {
		if un[r] == nil {
			un[r] = make(map[*sem.VarSym]bool)
		}
		un[r][v] = true
	}
	for _, r := range info.Routines {
		var refs []*sem.VarSym
		for _, p := range r.Params {
			if p.IsByRef() {
				refs = append(refs, p)
			}
		}
		eff := side.Of[r]
		for _, p := range refs {
			if unknown[p] {
				mark(r, p)
			}
			for t := range carriers[p] {
				if trackedType(t) && (t.Owner == info.Main || t.Owner == r) {
					mark(r, t)
				}
				// The routine (or a callee) may write t under its own
				// name while the formal still claims the old value.
				if t.Owner == r || (eff != nil && eff.ModGlobals[t]) {
					mark(r, p)
				}
			}
		}
		// Two formals bound to the same root alias each other.
		for i, p := range refs {
			for _, q := range refs[i+1:] {
				for t := range carriers[p] {
					if carriers[q][t] {
						mark(r, p)
						mark(r, q)
						break
					}
				}
			}
		}
	}
	return un
}

type analyzer struct {
	res        *Result
	entryJoins map[*sem.Routine]int
	exitJoins  map[*sem.Routine]int

	// pending accumulates routines whose entry store grew during the
	// registration pass of analyzeRoutine.
	pending []*sem.Routine
}

const (
	maxSweeps        = 60 // intraprocedural widened-iteration backstop
	narrowSweeps     = 2  // bounded decreasing iterations after the fixpoint
	joinsBeforeWiden = 3  // interprocedural joins before switching to widening
)

// analyzeRoutine runs the intraprocedural fixpoint for r under its
// current entry store and callee summaries, updates Result.in for r's
// nodes, and returns the routines whose stores changed as a consequence
// (callees with grown entries, callers when r's exit summary grew).
func (a *analyzer) analyzeRoutine(r *sem.Routine) []*sem.Routine {
	res := a.res
	g := res.Graphs[r]
	if g == nil {
		return nil
	}
	order := rpo(g)
	in := make(map[*cfg.Node]Env, len(g.Nodes))
	heads := loopHeads(g, order)

	recompute := func(n *cfg.Node) Env {
		if n == g.Entry {
			return res.entry[r]
		}
		cur := botEnv()
		for _, p := range n.Preds {
			pe, ok := in[p]
			if !ok || !pe.reachable {
				continue
			}
			out := a.transfer(g, p, pe, false)
			cur = cur.join(a.refineEdge(g, p, out, g.Label(p, n)))
		}
		return cur
	}

	converged := false
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for _, n := range order {
			next := recompute(n)
			old, seen := in[n]
			if heads[n] && seen && sweep > 0 {
				next = old.widen(next)
			}
			if !seen || !old.equal(next) {
				in[n] = next
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		// Defensive: widening at every cycle head makes the cap
		// unreachable, but if it ever trips, degrade to the sound
		// everything-unknown store rather than publish a non-fixpoint.
		for _, n := range g.Nodes {
			in[n] = Env{vals: map[*sem.VarSym]Val{}, reachable: true}
		}
	}
	// Narrowing: a short decreasing iteration recovers precision the
	// widening jumps lost (loop exits know their bounds again). Plain
	// recomputation from a post-fixpoint stays above the least fixpoint,
	// so any cutoff is sound.
	if converged {
		for sweep := 0; sweep < narrowSweeps; sweep++ {
			for _, n := range order {
				in[n] = recompute(n)
			}
		}
	}

	for _, n := range g.Nodes {
		if _, ok := in[n]; !ok {
			in[n] = botEnv()
		}
		res.in[n] = in[n]
	}

	// Registration pass: with the routine's stores final for this round,
	// fold call-site argument/global values into callee entry stores.
	a.pending = a.pending[:0]
	for _, n := range g.Nodes {
		if env := in[n]; env.reachable {
			a.transfer(g, n, env, true)
		}
	}
	changed := append([]*sem.Routine(nil), a.pending...)

	// Publish the exit summary; join-monotone across re-analyses so the
	// interprocedural iteration terminates.
	newExit := res.exitEnv[r].join(in[g.Exit])
	if a.exitJoins[r] > joinsBeforeWiden {
		newExit = res.exitEnv[r].widen(in[g.Exit])
	}
	if !newExit.equal(res.exitEnv[r]) {
		res.exitEnv[r] = newExit
		a.exitJoins[r]++
		changed = append(changed, res.cg.Callers[r]...)
	}
	return changed
}

// rpo returns the nodes in reverse postorder from Entry; unreached nodes
// (dead code) follow in ID order so they still receive (bottom) stores.
func rpo(g *cfg.Graph) []*cfg.Node {
	seen := make(map[*cfg.Node]bool, len(g.Nodes))
	var post []*cfg.Node
	var walk func(n *cfg.Node)
	walk = func(n *cfg.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, s := range n.Succs {
			walk(s)
		}
		post = append(post, n)
	}
	walk(g.Entry)
	out := make([]*cfg.Node, 0, len(g.Nodes))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, n := range g.Nodes {
		if !seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// loopHeads marks widening points: targets of retreating edges under the
// reverse postorder.
func loopHeads(g *cfg.Graph, order []*cfg.Node) map[*cfg.Node]bool {
	idx := make(map[*cfg.Node]int, len(order))
	for i, n := range order {
		idx[n] = i
	}
	heads := make(map[*cfg.Node]bool)
	for _, n := range order {
		for _, s := range n.Succs {
			if idx[s] <= idx[n] {
				heads[s] = true
			}
		}
	}
	return heads
}

// ---------------------------------------------------------------------------
// Transfer functions

// transfer computes the store after node n executes, from the store env
// before it. When register is true, call sites additionally fold their
// entry stores into callees (the registration pass).
func (a *analyzer) transfer(g *cfg.Graph, n *cfg.Node, env Env, register bool) Env {
	if !env.reachable {
		return env
	}
	r := g.Routine
	switch n.Kind {
	case cfg.Entry, cfg.Exit:
		return env
	case cfg.Cond:
		// Condition evaluation can call functions with side effects.
		return a.havocCalls(env, nodeRoots(n), registerOpt(register)...)
	case cfg.ForInit:
		fs := n.Stmt.(*ast.ForStmt)
		env = a.havocCalls(env, []ast.Node{fs.From, fs.Limit}, registerOpt(register)...)
		if !env.reachable {
			return env
		}
		if v := a.res.Info.VarOf(fs.Var); v != nil && a.trackedIn(r, v) {
			env = env.clone()
			env.set(v, a.eval(env, fs.From))
		}
		return env
	case cfg.ForCond:
		return env
	case cfg.ForIncr:
		fs := n.Stmt.(*ast.ForStmt)
		if v := a.res.Info.VarOf(fs.Var); v != nil && a.trackedIn(r, v) && !a.loopVarWritten(fs, v) {
			env = env.clone()
			one := IntConst(1)
			if fs.Down {
				env.set(v, env.Lookup(v).Sub(one))
			} else {
				env.set(v, env.Lookup(v).Add(one))
			}
		}
		return env
	}
	switch s := n.Stmt.(type) {
	case *ast.AssignStmt:
		env = a.havocCalls(env, []ast.Node{s.Rhs, s.Lhs}, registerOpt(register)...)
		if !env.reachable {
			return env
		}
		val := a.eval(env, s.Rhs)
		if lhs, ok := s.Lhs.(*ast.Ident); ok {
			if v := a.res.Info.VarOf(lhs); v != nil && a.trackedIn(r, v) {
				env = env.clone()
				env.set(v, val)
			}
		}
		// Index/field stores touch untracked aggregates: no effect on
		// the scalar store.
		return env
	case *ast.CallStmt:
		return a.callStmt(env, r, s, register)
	}
	return env
}

func registerOpt(register bool) []bool {
	if register {
		return []bool{true}
	}
	return nil
}

// trackedIn reports whether v is part of routine r's abstract store:
// r's own variables plus the program globals, scalars only, minus the
// names a by-ref parameter of r may alias.
func (a *analyzer) trackedIn(r *sem.Routine, v *sem.VarSym) bool {
	if !trackedType(v) {
		return false
	}
	if v.Owner != r && v.Owner != a.res.Info.Main {
		return false
	}
	return !a.res.untracked[r][v]
}

// callStmt models a direct procedure/function-statement call: argument
// evaluation, entry registration, then the callee's exit summary applied
// to modified globals and by-reference actuals.
func (a *analyzer) callStmt(env Env, r *sem.Routine, s *ast.CallStmt, register bool) Env {
	info := a.res.Info
	callee := info.CallAt(s.UID, s)
	if callee == nil {
		// Builtin procedure: read/readln havoc their targets; the write
		// family evaluates arguments (nested calls included).
		env = a.havocCalls(env, exprNodes(s.Args), registerOpt(register)...)
		if !env.reachable {
			return env
		}
		b := info.BuiltinAt(s.UID, s)
		if b != nil && (b.Code == sem.BuiltinRead || b.Code == sem.BuiltinReadln) {
			env = env.clone()
			for _, arg := range s.Args {
				if v := info.VarOf(arg); v != nil && a.trackedIn(r, v) {
					if _, isIdent := arg.(*ast.Ident); isIdent {
						env.set(v, topOfType(v.Type))
					}
				}
			}
		}
		return env
	}

	// Nested calls inside the arguments run first.
	env = a.havocCalls(env, exprNodes(s.Args), registerOpt(register)...)
	if !env.reachable {
		return env
	}
	if register {
		a.registerCall(env, callee, s.Args)
	}
	exit := a.res.exitEnv[callee]
	if !exit.reachable {
		// As currently known the callee never returns; a later summary
		// growth re-queues this routine.
		return botEnv()
	}
	env = env.clone()
	// Modified non-locals take their summary exit values (Top when the
	// callee does not track them, e.g. an enclosing routine's local).
	for g := range a.res.side.Of[callee].ModGlobals {
		if a.trackedIn(r, g) {
			env.set(g, exit.Lookup(g))
		}
	}
	// By-reference actuals take the formal's exit value.
	for i, p := range callee.Params {
		if i >= len(s.Args) || !p.IsByRef() {
			continue
		}
		if v := info.VarOf(s.Args[i]); v != nil && a.trackedIn(r, v) {
			if _, isIdent := s.Args[i].(*ast.Ident); isIdent {
				env.set(v, exit.Lookup(p))
			}
		}
	}
	return env
}

// registerCall folds one call site's entry store into the callee.
func (a *analyzer) registerCall(env Env, callee *sem.Routine, args []ast.Expr) {
	info := a.res.Info
	centry := Env{vals: make(map[*sem.VarSym]Val), reachable: true}
	for i, p := range callee.Params {
		if !a.trackedIn(callee, p) {
			continue
		}
		if i < len(args) {
			centry.set(p, a.eval(env, args[i]))
		}
	}
	if callee.Result != nil && a.trackedIn(callee, callee.Result) {
		if z, ok := zeroValue(callee.Result.Type); ok {
			centry.set(callee.Result, z)
		}
	}
	for _, l := range callee.Locals {
		if !a.trackedIn(callee, l) {
			continue
		}
		if z, ok := zeroValue(l.Type); ok {
			centry.set(l, z)
		}
	}
	for _, gv := range info.Main.Locals {
		if a.trackedIn(callee, gv) {
			centry.set(gv, env.Lookup(gv))
		}
	}
	old := a.res.entry[callee]
	next := old.join(centry)
	if a.entryJoins[callee] > joinsBeforeWiden {
		next = old.widen(centry)
	}
	if !next.equal(old) {
		a.res.entry[callee] = next
		a.entryJoins[callee]++
		a.pending = append(a.pending, callee)
	}
}

func exprNodes(es []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// havocCalls conservatively accounts for user calls embedded anywhere in
// the given subtrees: every variable a callee may modify is joined with
// its summary exit value, so reads before, between and after the calls
// are all over-approximated. Entry stores are registered when requested.
// Returns the bottom store when a callee provably never returns.
func (a *analyzer) havocCalls(env Env, roots []ast.Node, register ...bool) Env {
	if !env.reachable {
		return env
	}
	reg := len(register) > 0 && register[0]
	info := a.res.Info
	var refs []callRef
	for _, root := range roots {
		a.collectCalls(root, &refs)
	}
	for _, ref := range refs {
		callee := ref.callee
		if !env.reachable {
			return env
		}
		if reg {
			a.registerCall(env, callee, ref.args)
		}
		exit := a.res.exitEnv[callee]
		if !exit.reachable {
			return botEnv()
		}
		env = env.clone()
		// A variable absent from the store is already ⊤ and needs no
		// join; only present entries weaken.
		for g := range a.res.side.Of[callee].ModGlobals {
			if val, ok := env.vals[g]; ok {
				env.set(g, val.Join(exit.Lookup(g)))
			}
		}
		for i, p := range callee.Params {
			if i >= len(ref.args) || !p.IsByRef() {
				continue
			}
			if v := info.VarOf(ref.args[i]); v != nil {
				if val, ok := env.vals[v]; ok {
					env.set(v, val.Join(exit.Lookup(p)))
				}
			}
		}
	}
	return env
}

// callRef is one user-routine call occurrence: a CallExpr, a CallStmt,
// or a bare identifier invoking a parameterless function.
type callRef struct {
	callee *sem.Routine
	args   []ast.Expr
}

// collectCalls gathers user calls under n in evaluation order (builtins
// are pure or handled separately and are skipped).
func (a *analyzer) collectCalls(n ast.Node, out *[]callRef) {
	info := a.res.Info
	switch x := n.(type) {
	case nil:
		return
	case *ast.Ident:
		if callee := info.CallAt(x.UID, x); callee != nil {
			*out = append(*out, callRef{callee: callee})
		}
	case *ast.CallExpr:
		for _, arg := range x.Args {
			a.collectCalls(arg, out)
		}
		if callee := info.CallAt(x.UID, x); callee != nil {
			*out = append(*out, callRef{callee: callee, args: x.Args})
		}
	case *ast.CallStmt:
		for _, arg := range x.Args {
			a.collectCalls(arg, out)
		}
		if callee := info.CallAt(x.UID, x); callee != nil {
			*out = append(*out, callRef{callee: callee, args: x.Args})
		}
	case *ast.AssignStmt:
		collect2(a, out, x.Lhs, x.Rhs)
	case *ast.BinaryExpr:
		collect2(a, out, x.X, x.Y)
	case *ast.UnaryExpr:
		a.collectCalls(x.X, out)
	case *ast.IndexExpr:
		a.collectCalls(x.X, out)
		for _, i := range x.Indices {
			a.collectCalls(i, out)
		}
	case *ast.FieldExpr:
		a.collectCalls(x.X, out)
	case *ast.SetLit:
		for _, e := range x.Elems {
			a.collectCalls(e, out)
		}
	}
}

func collect2(a *analyzer, out *[]callRef, x, y ast.Node) {
	a.collectCalls(x, out)
	a.collectCalls(y, out)
}

func topOfType(t types.Type) Val {
	b, ok := t.(*types.Basic)
	if !ok {
		return Top()
	}
	switch b.Kind {
	case types.Int:
		return AnyInt()
	case types.Bool:
		return AnyBool()
	}
	return Top()
}

// ---------------------------------------------------------------------------
// Expression evaluation

// eval computes the abstract value of e in env. Calls embedded in e are
// read through their summaries; their side effects must have been applied
// to env beforehand (havocCalls).
func (a *analyzer) eval(env Env, e ast.Expr) Val {
	if !env.reachable {
		return Bot()
	}
	info := a.res.Info
	switch x := e.(type) {
	case *ast.IntLit:
		return IntConst(x.Value)
	case *ast.Ident:
		// A bare identifier can invoke a parameterless function.
		if callee := info.CallAt(x.UID, x); callee != nil {
			if callee.Result == nil {
				return Top()
			}
			return a.res.exitEnv[callee].Lookup(callee.Result)
		}
		switch sym := info.UseOf(x).(type) {
		case *sem.ConstSym:
			switch v := sym.Value.(type) {
			case int64:
				return IntConst(v)
			case bool:
				return BoolConst(v)
			}
			return Top()
		case *sem.VarSym:
			return env.Lookup(sym)
		}
		return Top()
	case *ast.UnaryExpr:
		v := a.eval(env, x.X)
		switch x.Op {
		case token.Plus:
			return v
		case token.Minus:
			return v.Neg()
		case token.Not:
			return v.Not()
		}
		return Top()
	case *ast.BinaryExpr:
		return a.evalBinary(env, x)
	case *ast.CallExpr:
		return a.evalCall(env, x)
	}
	// RealLit, StringLit, IndexExpr, FieldExpr, SetLit: untracked.
	return Top()
}

func (a *analyzer) evalBinary(env Env, e *ast.BinaryExpr) Val {
	info := a.res.Info
	x := a.eval(env, e.X)
	y := a.eval(env, e.Y)
	switch e.Op {
	case token.Plus, token.Minus, token.Star, token.Div, token.Mod:
		// Integer arithmetic only; `+` over reals (or a mistyped tree)
		// falls back to ⊤.
		if t, ok := info.TypeOf[e].(*types.Basic); !ok || t.Kind != types.Int {
			return Top()
		}
		switch e.Op {
		case token.Plus:
			return x.Add(y)
		case token.Minus:
			return x.Sub(y)
		case token.Star:
			return x.Mul(y)
		case token.Div:
			return x.Div(y)
		case token.Mod:
			return x.Mod(y)
		}
	case token.Slash:
		return Top() // real division
	case token.Eq:
		return x.EqV(y)
	case token.NotEq:
		return x.NeV(y)
	case token.Less:
		return intOnlyCmp(info, e, x.Lt(y))
	case token.LessEq:
		return intOnlyCmp(info, e, x.Le(y))
	case token.Greater:
		return intOnlyCmp(info, e, x.Gt(y))
	case token.GreatEq:
		return intOnlyCmp(info, e, x.Ge(y))
	case token.And:
		return x.And(y)
	case token.Or:
		return x.Or(y)
	}
	return Top()
}

// intOnlyCmp guards ordered comparisons: the interval reasoning is only
// meaningful when both operands are integers (reals and strings compare
// through ⊤ operands, but a real-typed literal tree would otherwise leak
// int conclusions).
func intOnlyCmp(info *sem.Info, e *ast.BinaryExpr, v Val) Val {
	tx, okx := info.TypeOf[e.X].(*types.Basic)
	ty, oky := info.TypeOf[e.Y].(*types.Basic)
	if okx && oky && tx.Kind == types.Int && ty.Kind == types.Int {
		return v
	}
	return AnyBool()
}

func (a *analyzer) evalCall(env Env, e *ast.CallExpr) Val {
	info := a.res.Info
	if callee := info.CallAt(e.UID, e); callee != nil {
		if callee.Result == nil {
			return Top()
		}
		return a.res.exitEnv[callee].Lookup(callee.Result)
	}
	b := info.BuiltinAt(e.UID, e)
	if b == nil || len(e.Args) != 1 {
		return Top()
	}
	arg := a.eval(env, e.Args[0])
	argInt := false
	if t, ok := info.TypeOf[e.Args[0]].(*types.Basic); ok && t.Kind == types.Int {
		argInt = true
	}
	switch b.Code {
	case sem.BuiltinAbs:
		if argInt {
			return arg.Abs()
		}
	case sem.BuiltinSqr:
		if argInt {
			return arg.Mul(arg)
		}
	case sem.BuiltinOdd:
		return arg.Odd()
	case sem.BuiltinTrunc, sem.BuiltinRound:
		return AnyInt()
	}
	return Top()
}

// ---------------------------------------------------------------------------
// Branch refinement

// refineEdge narrows the post-store of node p along an outgoing edge
// with branch label br.
func (a *analyzer) refineEdge(g *cfg.Graph, p *cfg.Node, env Env, br cfg.Branch) Env {
	if br != cfg.BranchTrue && br != cfg.BranchFalse {
		return env
	}
	want := br == cfg.BranchTrue
	switch p.Kind {
	case cfg.Cond:
		if _, isCase := p.Stmt.(*ast.CaseStmt); isCase {
			return env // selector edges carry no boolean outcome
		}
		// A call embedded in the condition may change a variable after
		// its operand value was already read (evaluation is left to
		// right), so the comparison constrains the value read, not the
		// value held at the branch point. Such variables must not be
		// clamped.
		return a.refine(env, g.Routine, p.Cond, want, a.condModSet(p.Cond))
	case cfg.ForCond:
		return a.refineFor(env, g.Routine, p.Stmt.(*ast.ForStmt), want)
	}
	return env
}

// condModSet returns the variables that calls embedded in cond may
// modify (nil when the condition is call-free).
func (a *analyzer) condModSet(cond ast.Expr) map[*sem.VarSym]bool {
	var refs []callRef
	a.collectCalls(cond, &refs)
	if len(refs) == 0 {
		return nil
	}
	mods := make(map[*sem.VarSym]bool)
	for _, ref := range refs {
		if eff := a.res.side.Of[ref.callee]; eff != nil {
			for g := range eff.ModGlobals {
				mods[g] = true
			}
		}
		for i, p := range ref.callee.Params {
			if p.IsByRef() && i < len(ref.args) {
				if v := a.res.Info.VarOf(ref.args[i]); v != nil {
					mods[v] = true
				}
			}
		}
	}
	return mods
}

// refineFor narrows the loop variable along the ForCond edges. The
// interpreter captures `from` and `limit` once at loop entry, steps an
// internal counter, and copies it to the loop variable only when the
// bounds check passes — so the variable never runs past the limit: at
// the exit edge it holds either the captured `from` (zero iterations,
// possible only when from lies beyond the limit) or the captured limit
// itself (at least one iteration, possible only when from started on
// the near side). Since the store at ForCond joins the entry path, the
// intervals of both expressions here over-approximate the captured
// values, so clamping against their bounds is sound.
func (a *analyzer) refineFor(env Env, r *sem.Routine, fs *ast.ForStmt, want bool) Env {
	if !env.reachable {
		return env
	}
	v := a.res.Info.VarOf(fs.Var)
	if v == nil || !a.trackedIn(r, v) {
		return env
	}
	from := a.eval(env, fs.From)
	limit := a.eval(env, fs.Limit)
	flo, fhi, fok := from.Bounds()
	llo, lhi, lok := limit.Bounds()
	if !fok || !lok {
		return botEnv()
	}
	cur := env.Lookup(v)
	var met Val
	if a.loopVarWritten(fs, v) {
		// The body may overwrite the variable, so it no longer mirrors
		// the counter. On the body edge the iteration-top write v := i
		// still applies (counter within the captured bounds); on the
		// exit edge the variable keeps whatever the last body pass (or
		// the init, on zero iterations) left — no refinement possible.
		if !want {
			return env
		}
		if fs.Down {
			met = IntRange(llo, fhi)
		} else {
			met = IntRange(flo, lhi)
		}
	} else if want {
		// Body entry: the variable mirrors the counter, still in range.
		var clamp Val
		if fs.Down {
			clamp = IntRange(llo, posInf) // v >= limit
		} else {
			clamp = IntRange(negInf, lhi) // v <= limit
		}
		met = cur.Meet(clamp)
	} else {
		var skipped, finished Val
		if fs.Down {
			skipped = from.Meet(IntRange(negInf, satSub(lhi, 1)))
			finished = limit.Meet(IntRange(negInf, fhi))
		} else {
			skipped = from.Meet(IntRange(satAdd(llo, 1), posInf))
			finished = limit.Meet(IntRange(flo, posInf))
		}
		met = cur.Meet(skipped.Join(finished))
	}
	if met.IsBot() {
		return botEnv()
	}
	if met.Equal(cur) {
		return env
	}
	env = env.clone()
	env.set(v, met)
	return env
}

// loopVarWritten reports whether the body of fs may write its loop
// variable: a direct assignment, a read into it, an inner for loop
// driving it, passing it by reference, or calling a routine that may
// modify it as a non-local.
func (a *analyzer) loopVarWritten(fs *ast.ForStmt, v *sem.VarSym) bool {
	if mod, ok := a.res.forVarMod[fs]; ok {
		return mod
	}
	info := a.res.Info
	mod := false
	isV := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && info.VarOf(id) == v
	}
	calleeMods := func(callee *sem.Routine, args []ast.Expr) bool {
		if callee == nil {
			return false
		}
		if eff := a.res.side.Of[callee]; eff != nil && eff.ModGlobals[v] {
			return true
		}
		for i, p := range callee.Params {
			if p.IsByRef() && i < len(args) && isV(args[i]) {
				return true
			}
		}
		return false
	}
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if mod {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			mod = mod || isV(x.Lhs)
		case *ast.ForStmt:
			mod = mod || isV(x.Var)
		case *ast.CallStmt:
			if b := info.BuiltinAt(x.UID, x); b != nil && (b.Code == sem.BuiltinRead || b.Code == sem.BuiltinReadln) {
				for _, arg := range x.Args {
					mod = mod || isV(arg)
				}
			}
			mod = mod || calleeMods(info.CallAt(x.UID, x), x.Args)
		case *ast.CallExpr:
			mod = mod || calleeMods(info.CallAt(x.UID, x), x.Args)
		case *ast.Ident:
			if callee := info.CallAt(x.UID, x); callee != nil {
				mod = mod || calleeMods(callee, nil)
			}
		}
		return !mod
	})
	a.res.forVarMod[fs] = mod
	return mod
}

// refine narrows env under the assumption that boolean expression e
// evaluates to want. Returns the bottom store when the assumption is
// contradictory.
func (a *analyzer) refine(env Env, r *sem.Routine, e ast.Expr, want bool, skip map[*sem.VarSym]bool) Env {
	if !env.reachable || e == nil {
		return env
	}
	if b, ok := a.eval(env, e).ConstBool(); ok && b != want {
		return botEnv()
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v := a.res.Info.VarOf(x); v != nil && a.trackedIn(r, v) && !skip[v] {
			cur := env.Lookup(v)
			met := cur.Meet(BoolConst(want))
			if met.IsBot() {
				return botEnv()
			}
			if !met.Equal(cur) {
				env = env.clone()
				env.set(v, met)
			}
		}
		return env
	case *ast.UnaryExpr:
		if x.Op == token.Not {
			return a.refine(env, r, x.X, !want, skip)
		}
		return env
	case *ast.BinaryExpr:
		switch x.Op {
		case token.And:
			if want {
				return a.refine(a.refine(env, r, x.X, true, skip), r, x.Y, true, skip)
			}
			return a.refine(env, r, x.X, false, skip).join(a.refine(env, r, x.Y, false, skip))
		case token.Or:
			if !want {
				return a.refine(a.refine(env, r, x.X, false, skip), r, x.Y, false, skip)
			}
			return a.refine(env, r, x.X, true, skip).join(a.refine(env, r, x.Y, true, skip))
		case token.Eq, token.NotEq, token.Less, token.LessEq, token.Greater, token.GreatEq:
			return a.refineRel(env, r, x, want, skip)
		}
	}
	return env
}

// refineRel narrows the variables of a relational comparison.
func (a *analyzer) refineRel(env Env, r *sem.Routine, e *ast.BinaryExpr, want bool, skip map[*sem.VarSym]bool) Env {
	info := a.res.Info
	op := e.Op
	if !want {
		op = negateRel(op)
	}
	// Integer ordering only (equality over booleans is handled by the
	// definite-value check in refine).
	tx, okx := info.TypeOf[e.X].(*types.Basic)
	ty, oky := info.TypeOf[e.Y].(*types.Basic)
	if !okx || !oky || tx.Kind != types.Int || ty.Kind != types.Int {
		return env
	}
	env = a.clampVar(env, r, e.X, op, a.eval(env, e.Y), skip)
	if !env.reachable {
		return env
	}
	return a.clampVar(env, r, e.Y, flipRel(op), a.eval(env, e.X), skip)
}

// clampVar narrows `x op bound` when x is a tracked variable.
func (a *analyzer) clampVar(env Env, r *sem.Routine, x ast.Expr, op token.Kind, bound Val, skip map[*sem.VarSym]bool) Env {
	id, ok := x.(*ast.Ident)
	if !ok {
		return env
	}
	v := a.res.Info.VarOf(id)
	if v == nil || !a.trackedIn(r, v) || skip[v] {
		return env
	}
	lo, hi, bok := bound.Bounds()
	if !bok {
		return botEnv()
	}
	var clamp Val
	switch op {
	case token.Less:
		clamp = IntRange(negInf, satSub(hi, 1))
	case token.LessEq:
		clamp = IntRange(negInf, hi)
	case token.Greater:
		clamp = IntRange(satAdd(lo, 1), posInf)
	case token.GreatEq:
		clamp = IntRange(lo, posInf)
	case token.Eq:
		clamp = IntRange(lo, hi)
	case token.NotEq:
		// Only edge exclusion of a singleton bound is expressible.
		cur := env.Lookup(v)
		clo, chi, cok := cur.Bounds()
		if c, isC := bound.ConstInt(); isC && cok {
			if clo == c && chi == c {
				return botEnv()
			}
			if clo == c {
				clamp = IntRange(satAdd(c, 1), posInf)
			} else if chi == c {
				clamp = IntRange(negInf, satSub(c, 1))
			} else {
				return env
			}
		} else {
			return env
		}
	default:
		return env
	}
	cur := env.Lookup(v)
	met := cur.Meet(clamp)
	if met.IsBot() {
		return botEnv()
	}
	if met.Equal(cur) {
		return env
	}
	env = env.clone()
	env.set(v, met)
	return env
}

func negateRel(op token.Kind) token.Kind {
	switch op {
	case token.Eq:
		return token.NotEq
	case token.NotEq:
		return token.Eq
	case token.Less:
		return token.GreatEq
	case token.LessEq:
		return token.Greater
	case token.Greater:
		return token.LessEq
	case token.GreatEq:
		return token.Less
	}
	return op
}

// flipRel mirrors the relation for the swapped operand order.
func flipRel(op token.Kind) token.Kind {
	switch op {
	case token.Less:
		return token.Greater
	case token.LessEq:
		return token.GreatEq
	case token.Greater:
		return token.Less
	case token.GreatEq:
		return token.LessEq
	}
	return op // Eq, NotEq symmetric
}
