package absint

// Soundness differential test: run the abstract interpreter over seeded
// generated programs, execute each with the real interpreter, and assert
// that every concrete value observed at every program point lies inside
// the predicted abstract value. Any violation is an analysis bug — an
// unsound fact here would let the campaign misclassify killable mutants
// as equivalent and the slicer drop feasible edges.

import (
	"fmt"
	"strings"
	"testing"

	"gadt/internal/corpus"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/progen"
)

// soundSink checks, at every executed statement, each in-scope tracked
// variable against the abstract store at the matching CFG node.
type soundSink struct {
	interp.NopSink
	it         *interp.Interp
	res        *Result
	violations []string
}

func (s *soundSink) Stmt(st ast.Stmt, r *sem.Routine) {
	g := s.res.Graphs[r]
	if g == nil {
		return
	}
	// Map the statement to the CFG node that executes first for it:
	// atomic statements (and repeat/for headers) via NodeOf, structured
	// conditions via CondOf. Compound/empty statements have no node.
	n := g.NodeOf[st]
	if n == nil {
		if cs := g.CondOf[st]; len(cs) > 0 {
			n = cs[0]
		}
	}
	if n == nil {
		return
	}
	env := s.res.At(n)
	if !env.Reachable() {
		s.report(fmt.Sprintf("%s: node n%d (%s) executed but predicted unreachable", r.Name, n.ID, n))
		return
	}
	vars := r.AllVars()
	if r != s.res.Info.Main {
		vars = append(vars, s.res.Info.Main.Locals...)
	}
	for _, v := range vars {
		if !trackedType(v) {
			continue
		}
		cv, ok := s.it.Peek(v)
		if !ok {
			continue
		}
		abs := env.Lookup(v)
		if !contains(abs, cv) {
			s.report(fmt.Sprintf("%s: at n%d (%s), %s = %s outside predicted %s",
				r.Name, n.ID, n, v.Name, interp.FormatValue(cv), abs))
		}
	}
}

func (s *soundSink) report(msg string) {
	if len(s.violations) < 5 {
		s.violations = append(s.violations, msg)
	}
}

// contains reports whether concrete value cv lies in abstract value abs.
func contains(abs Val, cv interp.Value) bool {
	if i, ok := cv.AsInt(); ok {
		lo, hi, bok := abs.Bounds()
		return bok && lo <= i && i <= hi
	}
	if b, ok := cv.AsBool(); ok {
		if abs.IsBot() {
			return false
		}
		if c, def := abs.ConstBool(); def {
			return c == b
		}
		return true // AnyBool or Top
	}
	return true // untracked kinds carry no claim
}

func checkSoundness(t *testing.T, name, source, input string) {
	t.Helper()
	prog, err := parser.ParseProgram(name+".pas", source)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("%s: sem: %v", name, err)
	}
	res := Analyze(info)
	sink := &soundSink{res: res}
	it := interp.New(info, interp.Config{
		Input:    strings.NewReader(input),
		MaxSteps: 200_000,
		MaxDepth: 2_000,
		Sink:     sink,
	})
	sink.it = it
	_ = it.Run() // runtime errors and fuel exhaustion are fine; events up to that point still count
	for _, v := range sink.violations {
		t.Errorf("%s: %s", name, v)
	}
}

// TestSoundnessDifferential is the main soundness gate: 200 seeded
// random programs (mixing gotos, loops of all forms, nested routines,
// reads) plus the corpus fixtures and a spread of synthetic call-tree
// shapes. Under -short a reduced slice keeps `make check` fast.
func TestSoundnessDifferential(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 25
	}
	for i := 0; i < n; i++ {
		p := progen.Random(progen.RandomConfig{Seed: 9000 + int64(i), Gotos: true, Reads: i%2 == 0})
		checkSoundness(t, p.Name, p.Source, p.Input)
	}
	for _, c := range corpus.All() {
		checkSoundness(t, c.Name, c.Source, c.Input)
		if c.Buggy != "" {
			checkSoundness(t, c.Name+"-buggy", c.Buggy, c.Input)
		}
	}
	for _, shape := range []progen.Config{
		{Depth: 2, Fanout: 2},
		{Depth: 3, Fanout: 2},
		{Depth: 2, Fanout: 2, Style: progen.Globals},
		{Depth: 2, Fanout: 2, Loops: true},
	} {
		p := progen.Generate(shape)
		checkSoundness(t, fmt.Sprintf("synth-d%d-f%d", shape.Depth, shape.Fanout), p.Fixed, "")
		checkSoundness(t, fmt.Sprintf("synth-d%d-f%d-buggy", shape.Depth, shape.Fanout), p.Buggy, "")
	}
}

// TestSoundnessAcrossBranchShapes pins tricky refinement shapes with
// hand-written programs (compound conditions, repeat, downto, mod).
func TestSoundnessAcrossBranchShapes(t *testing.T) {
	const src = `
program shapes;
var a, b, i, acc: integer;
    flag: boolean;
begin
  read(a);
  read(b);
  if (a > 0) and (b < 10) then acc := a + b else acc := 0;
  if (a = 5) or not (b <> 3) then acc := acc + 1;
  flag := a >= b;
  while flag and (acc < 50) do
  begin
    acc := acc + 7;
    flag := acc mod 2 = 0
  end;
  for i := 10 downto b do acc := acc - 1;
  repeat
    acc := acc + 1
  until acc >= 0
end.`
	for _, input := range []string{"5 3\n", "0 0\n", "-7 12\n", "5 11\n"} {
		checkSoundness(t, "shapes", src, input)
	}
}
