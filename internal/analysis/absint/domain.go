// Package absint implements a flow-sensitive, interprocedural abstract
// interpreter over the Pascal-subset CFGs. Per program point it computes
// an abstract store mapping integer and boolean variables to values of a
// constant/interval lattice, with widening at loop heads, a bounded
// narrowing pass, branch refinement on conditions, and callgraph-ordered
// procedure summaries that reuse the sideeffect MOD/REF sets.
//
// The facts feed four consumers: equivalent-mutant triage in the
// mutation campaign, the provable lint checks P012–P015, infeasible-edge
// pruning before SDG construction, and the plint -pval dump.
package absint

import (
	"fmt"
	"math"
)

// negInf/posInf are the interval infinity sentinels. Saturating
// arithmetic keeps every computed bound inside [negInf, posInf].
const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

type valKind uint8

const (
	botVal  valKind = iota // unreachable / no value
	intVal                 // integer interval [Lo, Hi]
	boolVal                // boolean with may-true / may-false flags
	topVal                 // unknown value of any type
)

// Val is one element of the value lattice: ⊥, an integer interval, a
// boolean (possibly half-known), or ⊤. The zero Val is ⊥.
type Val struct {
	kind       valKind
	lo, hi     int64 // intVal only
	mayT, mayF bool  // boolVal only
}

// Constructors.

// Bot returns ⊥.
func Bot() Val { return Val{} }

// Top returns ⊤ (a value of unknown type).
func Top() Val { return Val{kind: topVal} }

// IntConst returns the singleton interval [v, v].
func IntConst(v int64) Val { return Val{kind: intVal, lo: v, hi: v} }

// IntRange returns the interval [lo, hi]; lo > hi yields ⊥.
func IntRange(lo, hi int64) Val {
	if lo > hi {
		return Bot()
	}
	return Val{kind: intVal, lo: lo, hi: hi}
}

// AnyInt returns the full integer interval.
func AnyInt() Val { return Val{kind: intVal, lo: negInf, hi: posInf} }

// BoolConst returns the definite boolean b.
func BoolConst(b bool) Val { return Val{kind: boolVal, mayT: b, mayF: !b} }

// AnyBool returns the unknown boolean.
func AnyBool() Val { return Val{kind: boolVal, mayT: true, mayF: true} }

// Predicates.

// IsBot reports v == ⊥.
func (v Val) IsBot() bool { return v.kind == botVal }

// IsTop reports v == ⊤.
func (v Val) IsTop() bool { return v.kind == topVal }

// IsInt reports whether v is an integer interval.
func (v Val) IsInt() bool { return v.kind == intVal }

// ConstInt returns the integer constant v denotes, if it is a singleton
// interval.
func (v Val) ConstInt() (int64, bool) {
	if v.kind == intVal && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

// ConstBool returns the boolean constant v denotes, if definite.
func (v Val) ConstBool() (bool, bool) {
	if v.kind == boolVal && v.mayT != v.mayF {
		return v.mayT, true
	}
	return false, false
}

// Singleton reports whether v denotes exactly one concrete value.
func (v Val) Singleton() bool {
	_, iok := v.ConstInt()
	_, bok := v.ConstBool()
	return iok || bok
}

// Bounds returns the interval bounds of an integer value (the full range
// when v is not an interval; ⊥ has no bounds and reports false).
func (v Val) Bounds() (lo, hi int64, ok bool) {
	switch v.kind {
	case intVal:
		return v.lo, v.hi, true
	case botVal:
		return 0, 0, false
	}
	return negInf, posInf, true
}

// Lattice operations.

// Join returns the least upper bound of v and w.
func (v Val) Join(w Val) Val {
	switch {
	case v.kind == botVal:
		return w
	case w.kind == botVal:
		return v
	case v.kind != w.kind:
		return Top()
	}
	switch v.kind {
	case intVal:
		return Val{kind: intVal, lo: min64(v.lo, w.lo), hi: max64(v.hi, w.hi)}
	case boolVal:
		return Val{kind: boolVal, mayT: v.mayT || w.mayT, mayF: v.mayF || w.mayF}
	}
	return Top()
}

// Widen returns a sound extrapolation of old ∇ new: unstable interval
// bounds jump to the 0 threshold first, then to infinity, bounding every
// ascending chain.
func (v Val) Widen(w Val) Val {
	j := v.Join(w)
	if v.kind != intVal || j.kind != intVal {
		return j
	}
	out := j
	if j.lo < v.lo {
		if j.lo >= 0 {
			out.lo = 0
		} else {
			out.lo = negInf
		}
	}
	if j.hi > v.hi {
		if j.hi <= 0 {
			out.hi = 0
		} else {
			out.hi = posInf
		}
	}
	return out
}

// Meet returns the greatest lower bound (⊥ when disjoint). Used by
// branch refinement to intersect a variable with a condition-derived
// bound.
func (v Val) Meet(w Val) Val {
	switch {
	case v.kind == botVal || w.kind == botVal:
		return Bot()
	case v.kind == topVal:
		return w
	case w.kind == topVal:
		return v
	case v.kind != w.kind:
		return Bot()
	}
	switch v.kind {
	case intVal:
		return IntRange(max64(v.lo, w.lo), min64(v.hi, w.hi))
	case boolVal:
		out := Val{kind: boolVal, mayT: v.mayT && w.mayT, mayF: v.mayF && w.mayF}
		if !out.mayT && !out.mayF {
			return Bot()
		}
		return out
	}
	return Top()
}

// Equal reports lattice equality.
func (v Val) Equal(w Val) bool { return v == w }

// String renders the value for dumps: ⊥/⊤, "3", "[0..9]", "true",
// "bool" (unknown boolean).
func (v Val) String() string {
	switch v.kind {
	case botVal:
		return "bot"
	case topVal:
		return "top"
	case boolVal:
		if b, ok := v.ConstBool(); ok {
			return fmt.Sprintf("%v", b)
		}
		return "bool"
	}
	if c, ok := v.ConstInt(); ok {
		return fmt.Sprintf("%d", c)
	}
	return fmt.Sprintf("[%s..%s]", boundStr(v.lo), boundStr(v.hi))
}

func boundStr(b int64) string {
	switch b {
	case negInf:
		return "-inf"
	case posInf:
		return "+inf"
	}
	return fmt.Sprintf("%d", b)
}

// ---------------------------------------------------------------------------
// Saturating interval arithmetic

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// satAdd adds with ±inf absorption and overflow saturation.
func satAdd(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	// Overflow iff operands share a sign the sum lost.
	if a > 0 && b > 0 && s < 0 {
		return posInf
	}
	if a < 0 && b < 0 && s >= 0 {
		return negInf
	}
	return s
}

func satNeg(a int64) int64 {
	switch a {
	case negInf:
		return posInf
	case posInf:
		return negInf
	}
	return -a
}

func satSub(a, b int64) int64 { return satAdd(a, satNeg(b)) }

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a == negInf || a == posInf || b == negInf || b == posInf {
		if neg {
			return negInf
		}
		return posInf
	}
	p := a * b
	if p/b != a {
		if neg {
			return negInf
		}
		return posInf
	}
	return p
}

// satDiv truncates toward zero (Pascal div) for a finite-sign-safe pair;
// b must be nonzero.
func satDiv(a, b int64) int64 {
	if b == negInf || b == posInf {
		return 0 // |a/b| < 1 truncates to 0 for finite a; ±inf/±inf handled by caller corners
	}
	switch a {
	case negInf:
		if b < 0 {
			return posInf
		}
		return negInf
	case posInf:
		if b < 0 {
			return negInf
		}
		return posInf
	}
	if a == math.MinInt64 && b == -1 {
		return posInf
	}
	return a / b
}

// Arithmetic on values. Non-interval operands degrade to the full range;
// ⊥ is absorbing.

func liftInt(v Val) (Val, bool) {
	switch v.kind {
	case botVal:
		return Bot(), false
	case intVal:
		return v, true
	}
	return AnyInt(), true
}

func arith2(v, w Val, f func(a, b Val) Val) Val {
	a, ok := liftInt(v)
	if !ok {
		return Bot()
	}
	b, ok := liftInt(w)
	if !ok {
		return Bot()
	}
	return f(a, b)
}

// Add returns v + w.
func (v Val) Add(w Val) Val {
	return arith2(v, w, func(a, b Val) Val {
		return Val{kind: intVal, lo: satAdd(a.lo, b.lo), hi: satAdd(a.hi, b.hi)}
	})
}

// Sub returns v - w.
func (v Val) Sub(w Val) Val {
	return arith2(v, w, func(a, b Val) Val {
		return Val{kind: intVal, lo: satSub(a.lo, b.hi), hi: satSub(a.hi, b.lo)}
	})
}

// Neg returns -v.
func (v Val) Neg() Val {
	a, ok := liftInt(v)
	if !ok {
		return Bot()
	}
	return Val{kind: intVal, lo: satNeg(a.hi), hi: satNeg(a.lo)}
}

// Mul returns v * w.
func (v Val) Mul(w Val) Val {
	return arith2(v, w, func(a, b Val) Val {
		c1, c2 := satMul(a.lo, b.lo), satMul(a.lo, b.hi)
		c3, c4 := satMul(a.hi, b.lo), satMul(a.hi, b.hi)
		return Val{kind: intVal,
			lo: min64(min64(c1, c2), min64(c3, c4)),
			hi: max64(max64(c1, c2), max64(c3, c4))}
	})
}

// Div returns v div w (truncating). Division by zero is a runtime trap,
// so the result describes the executions that survive: the divisor is
// restricted to its nonzero part, and an all-zero divisor yields ⊥.
func (v Val) Div(w Val) Val {
	return arith2(v, w, func(a, b Val) Val {
		var out Val
		out = Bot()
		for _, d := range splitNonzero(b) {
			c1, c2 := satDiv(a.lo, d.lo), satDiv(a.lo, d.hi)
			c3, c4 := satDiv(a.hi, d.lo), satDiv(a.hi, d.hi)
			q := Val{kind: intVal,
				lo: min64(min64(c1, c2), min64(c3, c4)),
				hi: max64(max64(c1, c2), max64(c3, c4))}
			// ±inf dividends cover the whole range through a sign flip.
			if a.lo == negInf || a.hi == posInf {
				if d.lo == negInf || d.hi == posInf || d.lo < 0 != (d.hi < 0) {
					q = AnyInt()
				}
			}
			out = out.Join(q)
		}
		return out
	})
}

// Mod returns v mod w (sign follows the dividend, as the interpreter
// implements it). An all-zero divisor yields ⊥.
func (v Val) Mod(w Val) Val {
	return arith2(v, w, func(a, b Val) Val {
		var out Val
		out = Bot()
		for _, d := range splitNonzero(b) {
			m := max64(satSub(absBound(d.lo), 1), satSub(absBound(d.hi), 1))
			lo := max64(satNeg(m), min64(a.lo, 0))
			hi := min64(m, max64(a.hi, 0))
			out = out.Join(IntRange(lo, hi))
		}
		return out
	})
}

func absBound(b int64) int64 {
	if b == negInf || b == posInf {
		return posInf
	}
	if b < 0 {
		return satNeg(b)
	}
	return b
}

// splitNonzero returns the sign-homogeneous nonzero parts of an interval
// divisor (at most two).
func splitNonzero(b Val) []Val {
	var parts []Val
	if b.lo <= -1 {
		parts = append(parts, IntRange(b.lo, min64(b.hi, -1)))
	}
	if b.hi >= 1 {
		parts = append(parts, IntRange(max64(b.lo, 1), b.hi))
	}
	return parts
}

// Abs returns |v|.
func (v Val) Abs() Val {
	a, ok := liftInt(v)
	if !ok {
		return Bot()
	}
	if a.lo >= 0 {
		return a
	}
	if a.hi <= 0 {
		return a.Neg()
	}
	return Val{kind: intVal, lo: 0, hi: max64(satNeg(a.lo), a.hi)}
}

// Odd returns odd(v) as an abstract boolean.
func (v Val) Odd() Val {
	if v.kind == botVal {
		return Bot()
	}
	if c, ok := v.ConstInt(); ok {
		return BoolConst(c%2 != 0)
	}
	return AnyBool()
}

// Comparisons produce abstract booleans; a definite answer requires the
// intervals to be fully ordered or disjoint.

func cmpVals(v, w Val, lt, eq, gt bool) Val {
	a, ok := liftInt(v)
	if !ok {
		return Bot()
	}
	b, ok := liftInt(w)
	if !ok {
		return Bot()
	}
	mayLt := a.lo < b.hi
	mayEq := a.lo <= b.hi && b.lo <= a.hi
	mayGt := a.hi > b.lo
	mayT := lt && mayLt || eq && mayEq || gt && mayGt
	mayF := !lt && mayLt || !eq && mayEq || !gt && mayGt
	if !mayT {
		return BoolConst(false)
	}
	if !mayF {
		return BoolConst(true)
	}
	return AnyBool()
}

// Lt returns v < w as an abstract boolean; the remaining comparisons
// follow the same convention.
func (v Val) Lt(w Val) Val { return cmpVals(v, w, true, false, false) }
func (v Val) Le(w Val) Val { return cmpVals(v, w, true, true, false) }
func (v Val) Gt(w Val) Val { return cmpVals(v, w, false, false, true) }
func (v Val) Ge(w Val) Val { return cmpVals(v, w, false, true, true) }
func (v Val) EqV(w Val) Val {
	if v.kind == boolVal && w.kind == boolVal {
		vb, vok := v.ConstBool()
		wb, wok := w.ConstBool()
		if vok && wok {
			return BoolConst(vb == wb)
		}
		return AnyBool()
	}
	return cmpVals(v, w, false, true, false)
}
func (v Val) NeV(w Val) Val { return v.EqV(w).Not() }

// Boolean connectives.

func liftBool(v Val) (Val, bool) {
	switch v.kind {
	case botVal:
		return Bot(), false
	case boolVal:
		return v, true
	}
	return AnyBool(), true
}

// Not returns the boolean negation.
func (v Val) Not() Val {
	b, ok := liftBool(v)
	if !ok {
		return Bot()
	}
	return Val{kind: boolVal, mayT: b.mayF, mayF: b.mayT}
}

// And returns the conjunction.
func (v Val) And(w Val) Val {
	a, ok := liftBool(v)
	if !ok {
		return Bot()
	}
	b, ok := liftBool(w)
	if !ok {
		return Bot()
	}
	return Val{kind: boolVal, mayT: a.mayT && b.mayT, mayF: a.mayF || b.mayF}
}

// Or returns the disjunction.
func (v Val) Or(w Val) Val {
	a, ok := liftBool(v)
	if !ok {
		return Bot()
	}
	b, ok := liftBool(w)
	if !ok {
		return Bot()
	}
	return Val{kind: boolVal, mayT: a.mayT || b.mayT, mayF: a.mayF && b.mayF}
}
