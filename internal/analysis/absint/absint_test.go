package absint

import (
	"testing"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func analyzeSrc(t *testing.T, src string) (*sem.Info, *Result) {
	t.Helper()
	prog, err := parser.ParseProgram("t.pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return info, Analyze(info)
}

func globalVar(t *testing.T, info *sem.Info, name string) *sem.VarSym {
	t.Helper()
	for _, v := range info.Main.Locals {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no global %q", name)
	return nil
}

func exitEnvOf(res *Result, r *sem.Routine) Env {
	return res.At(res.Graphs[r].Exit)
}

func wantConst(t *testing.T, env Env, v *sem.VarSym, c int64) {
	t.Helper()
	got, ok := env.Lookup(v).ConstInt()
	if !ok || got != c {
		t.Fatalf("%s = %s, want constant %d", v.Name, env.Lookup(v), c)
	}
}

func TestConstantPropagation(t *testing.T) {
	info, res := analyzeSrc(t, `
program p;
var x, y: integer;
begin
  x := 2;
  y := x * 3 + 1
end.`)
	env := exitEnvOf(res, info.Main)
	wantConst(t, env, globalVar(t, info, "x"), 2)
	wantConst(t, env, globalVar(t, info, "y"), 7)
}

func TestBranchRefinement(t *testing.T) {
	info, res := analyzeSrc(t, `
program p;
var x, y: integer;
begin
  read(x);
  if x > 10 then
    y := 1
  else
    y := 0
end.`)
	// Inside the then branch, x must be clamped to [11, +inf).
	var thenAssign ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if s, ok := n.(*ast.IfStmt); ok {
			thenAssign = s.Then
		}
		return true
	})
	g := res.Graphs[info.Main]
	node := g.NodeOf[thenAssign]
	if node == nil {
		t.Fatal("no CFG node for then-branch assignment")
	}
	lo, _, ok := res.At(node).Lookup(globalVar(t, info, "x")).Bounds()
	if !ok || lo != 11 {
		t.Fatalf("x in then branch = %s, want lower bound 11", res.At(node).Lookup(globalVar(t, info, "x")))
	}
	// After the join, y is [0..1].
	env := exitEnvOf(res, info.Main)
	ylo, yhi, _ := env.Lookup(globalVar(t, info, "y")).Bounds()
	if ylo != 0 || yhi != 1 {
		t.Fatalf("y at exit = %s, want [0..1]", env.Lookup(globalVar(t, info, "y")))
	}
}

func TestWhileLoopWidenNarrow(t *testing.T) {
	info, res := analyzeSrc(t, `
program p;
var i: integer;
begin
  i := 0;
  while i < 10 do
    i := i + 1
end.`)
	// Widening blows the loop counter to [0, +inf); narrowing plus the
	// false-branch clamp must recover i = 10 exactly at exit.
	wantConst(t, exitEnvOf(res, info.Main), globalVar(t, info, "i"), 10)
}

func TestForLoopBounds(t *testing.T) {
	info, res := analyzeSrc(t, `
program p;
var i, acc: integer;
begin
  acc := 0;
  for i := 1 to 5 do
    acc := acc + i
end.`)
	// The interpreter only writes the loop variable while the bounds
	// check passes, so after the loop i holds the limit, not limit+1.
	env := exitEnvOf(res, info.Main)
	wantConst(t, env, globalVar(t, info, "i"), 5)
	lo, _, ok := env.Lookup(globalVar(t, info, "acc")).Bounds()
	if !ok || lo < 0 {
		t.Fatalf("acc at exit = %s, want nonnegative interval", env.Lookup(globalVar(t, info, "acc")))
	}
}

func TestInterproceduralSummaries(t *testing.T) {
	info, res := analyzeSrc(t, `
program p;
var r0: integer;

function double(x: integer): integer;
begin
  double := x * 2
end;

procedure setit(var o: integer);
begin
  o := 42
end;

begin
  r0 := double(3);
  setit(r0)
end.`)
	env := exitEnvOf(res, info.Main)
	wantConst(t, env, globalVar(t, info, "r0"), 42)

	// Before the setit call, the function summary gives r0 = 6.
	var call ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if s, ok := n.(*ast.CallStmt); ok && s.Name == "setit" {
			call = s
		}
		return true
	})
	node := res.Graphs[info.Main].NodeOf[call]
	wantConst(t, res.At(node), globalVar(t, info, "r0"), 6)
}

func TestInfeasibleBranch(t *testing.T) {
	info, res := analyzeSrc(t, `
program p;
var mode, x: integer;
begin
  mode := 0;
  if mode > 0 then
    x := 1
  else
    x := 2
end.`)
	g := res.Graphs[info.Main]
	edges := res.InfeasibleEdges(g)
	if len(edges) != 1 {
		t.Fatalf("infeasible edges = %d, want 1", len(edges))
	}
	var thenAssign, elseAssign ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if s, ok := n.(*ast.IfStmt); ok {
			thenAssign, elseAssign = s.Then, s.Else
		}
		return true
	})
	if !res.Reachable(g.NodeOf[elseAssign]) {
		t.Fatal("else branch should be reachable")
	}
	if res.Reachable(g.NodeOf[thenAssign]) {
		t.Fatal("then branch should be unreachable")
	}
	wantConst(t, exitEnvOf(res, info.Main), globalVar(t, info, "x"), 2)
}

func TestRepeatLoop(t *testing.T) {
	info, res := analyzeSrc(t, `
program p;
var i: integer;
begin
  i := 0;
  repeat
    i := i + 1
  until i >= 3
end.`)
	env := exitEnvOf(res, info.Main)
	lo, _, ok := env.Lookup(globalVar(t, info, "i")).Bounds()
	if !ok || lo < 3 {
		t.Fatalf("i at exit = %s, want lower bound >= 3", env.Lookup(globalVar(t, info, "i")))
	}
}

func TestEvalAtAccountsForCalls(t *testing.T) {
	// g is read inside the same statement that calls bump, which
	// modifies g: EvalAt must not claim g is still exactly 1.
	info, res := analyzeSrc(t, `
program p;
var g, x: integer;

function bump: integer;
begin
  g := g + 100;
  bump := 1
end;

begin
  g := 1;
  x := bump + g
end.`)
	var assign ast.Stmt
	ast.Inspect(info.Program, func(n ast.Node) bool {
		if s, ok := n.(*ast.AssignStmt); ok {
			if id, isID := s.Lhs.(*ast.Ident); isID && id.Name == "x" {
				assign = s
			}
		}
		return true
	})
	node := res.Graphs[info.Main].NodeOf[assign]
	rhs := assign.(*ast.AssignStmt).Rhs.(*ast.BinaryExpr)
	v := res.EvalAt(node, rhs.Y) // the `g` operand
	if _, isConst := v.ConstInt(); isConst {
		t.Fatalf("g during call-carrying statement = %s, want non-singleton", v)
	}
}

func TestDumpRenders(t *testing.T) {
	_, res := analyzeSrc(t, `
program p;
var x: integer;
begin
  x := 1
end.`)
	out := res.Dump()
	if out == "" {
		t.Fatal("empty dump")
	}
}
