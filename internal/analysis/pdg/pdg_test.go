package pdg

import (
	"testing"

	"gadt/internal/analysis/cfg"
	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func buildCFG(t *testing.T, src, routine string) (*sem.Info, *cfg.Graph) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := info.Main
	if routine != "" {
		r = info.LookupRoutine(routine)
	}
	return info, cfg.Build(info, r)
}

func TestPostDomStraightLine(t *testing.T) {
	_, g := buildCFG(t, `
program t;
var x: integer;
begin
  x := 1;
  x := 2;
end.`, "")
	ipdom := postDoms(g)
	// Every node's ipdom chain reaches Exit.
	for _, n := range g.Nodes {
		cur, ok := n, true
		for cur != g.Exit {
			cur, ok = ipdom[cur], true
			if !ok || cur == nil {
				t.Fatalf("node %v has no postdominator chain to exit", n)
			}
		}
	}
}

func TestPostDomDiamond(t *testing.T) {
	_, g := buildCFG(t, `
program t;
var x: integer;
begin
  if x > 0 then x := 1 else x := 2;
  x := 3;
end.`, "")
	ipdom := postDoms(g)
	var cond, join *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Cond {
			cond = n
		}
		if n.Kind == cfg.Stmt {
			if as, ok := n.Stmt.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs.(*ast.IntLit); ok && lit.Value == 3 {
					join = n
				}
			}
		}
	}
	if cond == nil || join == nil {
		t.Fatal("nodes missing")
	}
	if ipdom[cond] != join {
		t.Errorf("ipdom(cond) = %v, want the join node", ipdom[cond])
	}
}

func TestControlDepsIf(t *testing.T) {
	_, g := buildCFG(t, `
program t;
var x, y: integer;
begin
  if x > 0 then
    y := 1
  else
    y := 2;
  y := 3;
end.`, "")
	cd := controlDeps(g)
	var cond *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Cond {
			cond = n
		}
	}
	for _, n := range g.Nodes {
		if n.Kind != cfg.Stmt {
			continue
		}
		as, ok := n.Stmt.(*ast.AssignStmt)
		if !ok {
			continue
		}
		lit := as.Rhs.(*ast.IntLit)
		deps := cd[n]
		switch lit.Value {
		case 1, 2:
			if len(deps) != 1 || deps[0] != cond {
				t.Errorf("y := %d control deps = %v, want the condition", lit.Value, deps)
			}
		case 3:
			if len(deps) != 1 || deps[0] != g.Entry {
				t.Errorf("y := 3 control deps = %v, want entry", deps)
			}
		}
	}
}

func TestControlDepsWhileBody(t *testing.T) {
	_, g := buildCFG(t, `
program t;
var i: integer;
begin
  while i < 3 do
    i := i + 1;
end.`, "")
	cd := controlDeps(g)
	var cond, body *cfg.Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case cfg.Cond:
			cond = n
		case cfg.Stmt:
			if _, ok := n.Stmt.(*ast.AssignStmt); ok {
				body = n
			}
		}
	}
	deps := cd[body]
	if len(deps) != 1 || deps[0] != cond {
		t.Errorf("loop body control deps = %v, want the loop condition", deps)
	}
}

func TestSDGNodeKinds(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(info)
	counts := map[NodeKind]int{}
	for _, n := range s.Nodes {
		counts[n.Kind]++
	}
	if counts[EntryKind] != len(info.Routines) {
		t.Errorf("entry nodes = %d, want %d", counts[EntryKind], len(info.Routines))
	}
	if counts[FormalIn] == 0 || counts[FormalOut] == 0 || counts[ActualIn] == 0 || counts[ActualOut] == 0 {
		t.Errorf("parameter nodes missing: %v", counts)
	}
	// Every actual-in has a param-in edge to a formal-in.
	for _, n := range s.Nodes {
		if n.Kind != ActualIn {
			continue
		}
		found := false
		for _, e := range s.Succs(n) {
			if e.Kind == ParamIn && e.To.Kind == FormalIn {
				found = true
			}
		}
		if !found {
			t.Errorf("actual-in %v lacks param-in edge", n)
		}
	}
}

func TestSummaryEdgesExist(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(info)
	summaries := 0
	for _, n := range s.Nodes {
		for _, e := range s.Succs(n) {
			if e.Kind == Summary {
				summaries++
				if e.From.Kind != ActualIn || e.To.Kind != ActualOut {
					t.Errorf("summary edge between %v and %v", e.From.Kind, e.To.Kind)
				}
				if e.From.Site != e.To.Site {
					t.Error("summary edge crosses call sites")
				}
			}
		}
	}
	if summaries == 0 {
		t.Error("no summary edges computed")
	}
}

func TestSummaryEdgesRecursive(t *testing.T) {
	prog := parser.MustParse("t.pas", `
program t;
var x: integer;
function fact(n: integer): integer;
begin
  if n <= 1 then fact := 1 else fact := n * fact(n - 1);
end;
begin
  x := fact(4);
  writeln(x);
end.`)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(info)
	// fact's result must (transitively) depend on its formal n, creating
	// a summary edge at both call sites.
	summaries := 0
	for _, n := range s.Nodes {
		for _, e := range s.Succs(n) {
			if e.Kind == Summary {
				summaries++
			}
		}
	}
	if summaries < 2 {
		t.Errorf("summary edges = %d, want >= 2 (outer call + recursive call)", summaries)
	}
}

func TestEdgeDedup(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.SliceExample)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(info)
	type key struct {
		from, to *Node
		kind     EdgeKind
	}
	seen := map[key]bool{}
	for _, n := range s.Nodes {
		for _, e := range s.Succs(n) {
			k := key{e.From, e.To, e.Kind}
			if seen[k] {
				t.Fatalf("duplicate edge %v -> %v (%v)", e.From, e.To, e.Kind)
			}
			seen[k] = true
		}
	}
}

func TestPredsSuccsConsistent(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(info)
	fwd, bwd := 0, 0
	for _, n := range s.Nodes {
		fwd += len(s.Succs(n))
		bwd += len(s.Preds(n))
	}
	if fwd != bwd || fwd == 0 {
		t.Errorf("edge counts inconsistent: %d succs vs %d preds", fwd, bwd)
	}
}

// TestPostDomUnreachableBlock: a goto jumps over a block, leaving nodes
// that cannot reach Exit forwards but are still in Nodes. Reachable
// nodes must keep a postdominator chain to Exit; the analysis must not
// loop or panic on the dead region.
func TestPostDomUnreachableBlock(t *testing.T) {
	_, g := buildCFG(t, `
program t;
label 10;
var x: integer;
begin
  goto 10;
  x := 99;
  10: x := 1;
end.`, "")
	ipdom := postDoms(g)
	reach := g.Reachable()
	for _, n := range g.Nodes {
		if !reach[n] || n == g.Exit {
			continue
		}
		cur := n
		for steps := 0; cur != g.Exit; steps++ {
			next, ok := ipdom[cur]
			if !ok || next == nil || steps > len(g.Nodes) {
				t.Fatalf("reachable node n%d has no postdominator chain to exit", n.ID)
			}
			cur = next
		}
	}
	if deps := controlDeps(g); len(deps) == 0 {
		t.Fatal("no control dependences computed")
	}
}

// TestPostDomMultiExit: an escaping goto gives the routine two edges
// into Exit. The branch condition's immediate postdominator is then
// Exit itself, and both arms are control-dependent on the condition.
func TestPostDomMultiExit(t *testing.T) {
	_, g := buildCFG(t, `
program t;
label 99;
procedure p(n: integer);
begin
  if n < 0 then
    goto 99;
  writeln(n);
end;
begin
  p(3);
  99: writeln(0);
end.`, "p")
	if len(g.EscapingGotos) != 1 {
		t.Fatalf("want 1 escaping goto, got %d", len(g.EscapingGotos))
	}
	ipdom := postDoms(g)
	var cond *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Cond {
			cond = n
		}
	}
	if cond == nil {
		t.Fatal("condition node missing")
	}
	if ipdom[cond] != g.Exit {
		t.Errorf("ipdom(cond) = %v, want Exit: neither arm rejoins before the routine ends", ipdom[cond])
	}
	deps := controlDeps(g)
	for _, n := range g.Nodes {
		if n.Kind != cfg.Stmt {
			continue
		}
		found := false
		for _, d := range deps[n] {
			if d == cond {
				found = true
			}
		}
		if !found {
			t.Errorf("node n%d (%v) not control-dependent on the branch", n.ID, n.Stmt)
		}
	}
}

// TestPostDomSelfLoop: a goto targeting its own label is a self-loop
// that never reaches Exit. postDoms must terminate, leave the trapped
// node without an ipdom entry, and controlDeps must still attribute the
// loop entry to the guarding condition.
func TestPostDomSelfLoop(t *testing.T) {
	_, g := buildCFG(t, `
program t;
label 10;
var x: integer;
begin
  x := 1;
  if x > 5 then
    10: goto 10;
  writeln(x);
end.`, "")
	ipdom := postDoms(g)
	var cond *cfg.Node
	var cycle []*cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Cond {
			cond = n
		}
		// The trapped cycle is a self-edge or the two-node join<->goto
		// loop the labeled goto expands to.
		for _, s := range n.Succs {
			if s == n {
				cycle = append(cycle, n)
				continue
			}
			for _, s2 := range s.Succs {
				if s2 == n && n != g.Exit {
					cycle = append(cycle, n)
				}
			}
		}
	}
	if len(cycle) == 0 || cond == nil {
		t.Fatal("self-loop or condition node missing")
	}
	deps := controlDeps(g)
	found := false
	for _, n := range cycle {
		if _, ok := ipdom[n]; ok {
			t.Errorf("trapped node n%d should have no postdominator (it never reaches Exit)", n.ID)
		}
		for _, d := range deps[n] {
			if d == cond {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no node of the trapped cycle is control-dependent on its guard")
	}
}

// TestPostDomPrunedGraph drives postDoms and controlDeps over a graph
// mutated exactly the way pruneInfeasible does: a branch edge removed
// and the orphaned arm disconnected. The surviving nodes must keep
// postdominator chains and the one-armed condition must control
// nothing.
func TestPostDomPrunedGraph(t *testing.T) {
	_, g := buildCFG(t, `
program t;
var x: integer;
begin
  x := 0;
  if x > 0 then
    x := 1
  else
    x := 2;
  writeln(x);
end.`, "")
	var cond, thenN *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Cond {
			cond = n
		}
		if n.Kind == cfg.Stmt {
			if as, ok := n.Stmt.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs.(*ast.IntLit); ok && lit.Value == 1 {
					thenN = n
				}
			}
		}
	}
	if cond == nil || thenN == nil {
		t.Fatal("nodes missing")
	}
	g.RemoveEdge(cond, thenN)
	g.Disconnect(thenN)

	ipdom := postDoms(g)
	reach := g.Reachable()
	for _, n := range g.Nodes {
		if !reach[n] || n == g.Exit {
			continue
		}
		cur := n
		for steps := 0; cur != g.Exit; steps++ {
			next, ok := ipdom[cur]
			if !ok || next == nil || steps > len(g.Nodes) {
				t.Fatalf("node n%d lost its postdominator chain after pruning", n.ID)
			}
			cur = next
		}
	}
	deps := controlDeps(g)
	for n, ds := range deps {
		for _, d := range ds {
			if d == cond {
				t.Errorf("node n%d still control-dependent on the one-armed condition", n.ID)
			}
		}
	}
}
