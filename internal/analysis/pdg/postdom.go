// Package pdg builds program dependence graphs (control + data
// dependence) per routine and links them into a system dependence graph
// (SDG) with summary edges, in the style of Horwitz, Reps and Binkley —
// the machinery behind the paper's interprocedural slicing (Section 4).
package pdg

import (
	"gadt/internal/analysis/cfg"
)

// postDoms computes the immediate postdominator of every CFG node that
// can reach Exit, using the iterative dominance algorithm of Cooper,
// Harvey and Kennedy on the reverse graph.
func postDoms(g *cfg.Graph) map[*cfg.Node]*cfg.Node {
	// Reverse post-order of the reverse CFG (i.e. order from Exit).
	var order []*cfg.Node
	index := make(map[*cfg.Node]int)
	seen := make(map[*cfg.Node]bool)
	var dfs func(n *cfg.Node)
	dfs = func(n *cfg.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, p := range n.Preds {
			dfs(p)
		}
		order = append(order, n)
	}
	dfs(g.Exit)
	// order is post-order of reverse graph; reverse it for RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, n := range order {
		index[n] = i
	}

	ipdom := make(map[*cfg.Node]*cfg.Node)
	ipdom[g.Exit] = g.Exit

	intersect := func(a, b *cfg.Node) *cfg.Node {
		for a != b {
			for index[a] > index[b] {
				a = ipdom[a]
			}
			for index[b] > index[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if n == g.Exit {
				continue
			}
			var newIdom *cfg.Node
			for _, s := range n.Succs {
				if _, ok := ipdom[s]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom == nil {
				continue
			}
			if ipdom[n] != newIdom {
				ipdom[n] = newIdom
				changed = true
			}
		}
	}
	return ipdom
}

// ControlDeps exposes the control-dependence relation for external
// consumers (the Weiser-baseline slicer); see controlDeps.
func ControlDeps(g *cfg.Graph) map[*cfg.Node][]*cfg.Node {
	return controlDeps(g)
}

// controlDeps computes, for each CFG node, the set of condition nodes it
// is control-dependent on (Ferrante–Ottenstein–Warren): for an edge
// A→B where B does not postdominate A, every node on the postdominator
// path from B up to (but excluding) ipdom(A) is control-dependent on A.
// Nodes with no controlling condition depend on Entry.
func controlDeps(g *cfg.Graph) map[*cfg.Node][]*cfg.Node {
	ipdom := postDoms(g)
	deps := make(map[*cfg.Node][]*cfg.Node)
	add := func(n, on *cfg.Node) {
		if n == on {
			return
		}
		for _, d := range deps[n] {
			if d == on {
				return
			}
		}
		deps[n] = append(deps[n], on)
	}

	for _, a := range g.Nodes {
		if len(a.Succs) < 2 {
			continue
		}
		stop := ipdom[a]
		for _, b := range a.Succs {
			// Walk the postdominator chain from b to ipdom(a).
			for cur := b; cur != nil && cur != stop; {
				add(cur, a)
				next, ok := ipdom[cur]
				if !ok || next == cur {
					break
				}
				cur = next
			}
		}
	}

	// Nodes without a controller are controlled by Entry.
	for _, n := range g.Nodes {
		if n == g.Entry {
			continue
		}
		if len(deps[n]) == 0 {
			deps[n] = []*cfg.Node{g.Entry}
		}
	}
	return deps
}
