package pdg

import (
	"fmt"

	"gadt/internal/analysis/absint"
	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/cfg"
	"gadt/internal/analysis/dataflow"
	"gadt/internal/analysis/defuse"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// NodeKind classifies SDG nodes.
type NodeKind int

const (
	EntryKind NodeKind = iota
	StmtKind           // wraps a CFG node (statements, conditions, calls)
	FormalIn
	FormalOut
	ActualIn
	ActualOut
)

func (k NodeKind) String() string {
	switch k {
	case EntryKind:
		return "entry"
	case FormalIn:
		return "formal-in"
	case FormalOut:
		return "formal-out"
	case ActualIn:
		return "actual-in"
	case ActualOut:
		return "actual-out"
	}
	return "stmt"
}

// Node is one SDG node.
type Node struct {
	ID      int
	Kind    NodeKind
	Routine *sem.Routine
	CFG     *cfg.Node       // StmtKind and EntryKind
	Var     *sem.VarSym     // Formal*/Actual*: formal param, result var, or global
	Site    *callgraph.Site // Actual*
}

func (n *Node) String() string {
	switch n.Kind {
	case EntryKind:
		return "entry " + n.Routine.Name
	case StmtKind:
		return fmt.Sprintf("%s: %s", n.Routine.Name, n.CFG)
	case FormalIn, FormalOut:
		return fmt.Sprintf("%s %s.%s", n.Kind, n.Routine.Name, n.Var.Name)
	default:
		return fmt.Sprintf("%s %s->%s.%s", n.Kind, n.Routine.Name, n.Site.Callee.Name, n.Var.Name)
	}
}

// EdgeKind classifies SDG edges.
type EdgeKind int

const (
	ControlDep EdgeKind = iota
	FlowDep
	CallEdge
	ParamIn
	ParamOut
	Summary
)

func (k EdgeKind) String() string {
	switch k {
	case ControlDep:
		return "control"
	case FlowDep:
		return "flow"
	case CallEdge:
		return "call"
	case ParamIn:
		return "param-in"
	case ParamOut:
		return "param-out"
	}
	return "summary"
}

// Edge is a directed dependence edge.
type Edge struct {
	From, To *Node
	Kind     EdgeKind
}

// SDG is the system dependence graph of a program.
type SDG struct {
	Info *sem.Info
	CG   *callgraph.Graph
	SE   *sideeffect.Result
	// Values is the abstract-interpretation result used to prune
	// statically infeasible CFG edges before dependence construction.
	Values *absint.Result

	Nodes []*Node

	preds map[*Node][]Edge
	succs map[*Node][]Edge
	edges map[[3]int]bool // dedup: fromID, toID, kind

	EntryOf   map[*sem.Routine]*Node
	CFGs      map[*sem.Routine]*cfg.Graph
	Flows     map[*sem.Routine]*dataflow.Result
	nodeOfCFG map[*cfg.Node]*Node

	formalIns  map[*sem.Routine]map[*sem.VarSym]*Node
	formalOuts map[*sem.Routine]map[*sem.VarSym]*Node
	actualIns  map[*callgraph.Site]map[*sem.VarSym]*Node
	actualOuts map[*callgraph.Site]map[*sem.VarSym]*Node
	// actualOutByCallerVar indexes a site's actual-out nodes by the
	// caller-side variable they define.
	actualOutByCallerVar map[*callgraph.Site]map[*sem.VarSym][]*Node
	// sitesAt lists call sites whose call occurs inside a CFG node.
	sitesAt map[*cfg.Node][]*callgraph.Site
}

// Preds returns the incoming edges of n.
func (s *SDG) Preds(n *Node) []Edge { return s.preds[n] }

// Succs returns the outgoing edges of n.
func (s *SDG) Succs(n *Node) []Edge { return s.succs[n] }

// NodeForCFG returns the SDG node wrapping a CFG node (nil for Exit).
func (s *SDG) NodeForCFG(c *cfg.Node) *Node { return s.nodeOfCFG[c] }

// FormalOutOf returns the formal-out node of routine r for v (a var/out
// parameter, the function result variable, or a modified global), or nil.
func (s *SDG) FormalOutOf(r *sem.Routine, v *sem.VarSym) *Node { return s.formalOuts[r][v] }

// FormalInOf returns the formal-in node of routine r for v, or nil.
func (s *SDG) FormalInOf(r *sem.Routine, v *sem.VarSym) *Node { return s.formalIns[r][v] }

func (s *SDG) newNode(n *Node) *Node {
	n.ID = len(s.Nodes)
	s.Nodes = append(s.Nodes, n)
	return n
}

func (s *SDG) addEdge(from, to *Node, kind EdgeKind) {
	if from == nil || to == nil || from == to {
		return
	}
	key := [3]int{from.ID, to.ID, int(kind)}
	if s.edges[key] {
		return
	}
	s.edges[key] = true
	e := Edge{From: from, To: to, Kind: kind}
	s.succs[from] = append(s.succs[from], e)
	s.preds[to] = append(s.preds[to], e)
}

// Build constructs the SDG of an analyzed program: per-routine PDGs
// (control + flow dependence), parameter linkage at call sites, and
// HRB summary edges. Control flow the value analysis proves infeasible
// is pruned first, so slices never include dead branches.
func Build(info *sem.Info) *SDG {
	return build(info, true)
}

// BuildUnpruned constructs the SDG without infeasible-edge pruning.
// Differential tests use it to compare against value-blind baselines
// such as the Weiser slicer; regular clients want Build.
func BuildUnpruned(info *sem.Info) *SDG {
	return build(info, false)
}

func build(info *sem.Info, prune bool) *SDG {
	cg := callgraph.Build(info)
	se := sideeffect.Analyze(info, cg)
	s := &SDG{
		Info:                 info,
		CG:                   cg,
		SE:                   se,
		preds:                make(map[*Node][]Edge),
		succs:                make(map[*Node][]Edge),
		edges:                make(map[[3]int]bool),
		EntryOf:              make(map[*sem.Routine]*Node),
		CFGs:                 make(map[*sem.Routine]*cfg.Graph),
		Flows:                make(map[*sem.Routine]*dataflow.Result),
		nodeOfCFG:            make(map[*cfg.Node]*Node),
		formalIns:            make(map[*sem.Routine]map[*sem.VarSym]*Node),
		formalOuts:           make(map[*sem.Routine]map[*sem.VarSym]*Node),
		actualIns:            make(map[*callgraph.Site]map[*sem.VarSym]*Node),
		actualOuts:           make(map[*callgraph.Site]map[*sem.VarSym]*Node),
		actualOutByCallerVar: make(map[*callgraph.Site]map[*sem.VarSym][]*Node),
		sitesAt:              make(map[*cfg.Node][]*callgraph.Site),
	}

	// Build every CFG first, then let the value analysis prune branches
	// it proves untakeable: a dependence can only arise along an edge
	// some execution follows, so dropping infeasible edges (and the
	// nodes they orphan) shrinks every downstream slice soundly.
	for _, r := range info.Routines {
		s.CFGs[r] = cfg.Build(info, r)
	}
	if prune {
		s.pruneInfeasible()
	}
	for _, r := range info.Routines {
		s.buildRoutineSkeleton(r)
	}
	for _, r := range info.Routines {
		s.buildCallLinkage(r)
	}
	for _, r := range info.Routines {
		s.buildFlowEdges(r)
	}
	s.computeSummaryEdges()
	return s
}

// pruneInfeasible removes CFG edges the abstract interpretation proves
// can never be taken, then fully detaches nodes left unreachable (by
// the analysis or by the edge removal), so control and flow dependence
// never route through dead branches.
func (s *SDG) pruneInfeasible() {
	res := absint.AnalyzeGraphs(s.Info, s.CFGs, s.CG, s.SE)
	s.Values = res
	for _, r := range s.Info.Routines {
		g := s.CFGs[r]
		for _, e := range res.InfeasibleEdges(g) {
			g.RemoveEdge(e.From, e.To)
		}
		reach := g.Reachable()
		for _, n := range g.Nodes {
			if n == g.Entry || n == g.Exit {
				continue
			}
			if !reach[n] || !res.Reachable(n) {
				g.Disconnect(n)
			}
		}
	}
}

// buildRoutineSkeleton creates the routine's nodes and control edges.
func (s *SDG) buildRoutineSkeleton(r *sem.Routine) {
	g := s.CFGs[r]
	s.Flows[r] = dataflow.ReachingDefs(s.Info, g, s.SE)

	entry := s.newNode(&Node{Kind: EntryKind, Routine: r, CFG: g.Entry})
	s.EntryOf[r] = entry
	s.nodeOfCFG[g.Entry] = entry
	for _, c := range g.Nodes {
		if c == g.Entry || c == g.Exit {
			continue
		}
		s.nodeOfCFG[c] = s.newNode(&Node{Kind: StmtKind, Routine: r, CFG: c})
	}

	// Formal parameter nodes.
	fins := make(map[*sem.VarSym]*Node)
	fouts := make(map[*sem.VarSym]*Node)
	s.formalIns[r], s.formalOuts[r] = fins, fouts
	for _, p := range r.Params {
		fins[p] = s.newNode(&Node{Kind: FormalIn, Routine: r, Var: p})
		if p.Mode != ast.Value {
			fouts[p] = s.newNode(&Node{Kind: FormalOut, Routine: r, Var: p})
		}
	}
	if r.Result != nil {
		fouts[r.Result] = s.newNode(&Node{Kind: FormalOut, Routine: r, Var: r.Result})
	}
	// Globals the routine touches are modeled as hidden parameters.
	eff := s.SE.Of[r]
	for v := range eff.RefGlobals {
		if fins[v] == nil {
			fins[v] = s.newNode(&Node{Kind: FormalIn, Routine: r, Var: v})
		}
	}
	for v := range eff.ModGlobals {
		if fins[v] == nil { // a modified global's old value may survive (may-def)
			fins[v] = s.newNode(&Node{Kind: FormalIn, Routine: r, Var: v})
		}
		fouts[v] = s.newNode(&Node{Kind: FormalOut, Routine: r, Var: v})
	}
	for _, n := range fins {
		s.addEdge(entry, n, ControlDep)
	}
	for _, n := range fouts {
		s.addEdge(entry, n, ControlDep)
	}

	// Control dependence edges.
	cd := controlDeps(g)
	for _, c := range g.Nodes {
		if c == g.Entry || c == g.Exit {
			continue
		}
		for _, ctrl := range cd[c] {
			s.addEdge(s.nodeOfCFG[ctrl], s.nodeOfCFG[c], ControlDep)
		}
	}
}

// callASTs returns the call-expression ASTs syntactically owned by a CFG
// node (not descending into nested statements).
func ownedExprs(c *cfg.Node) []ast.Node {
	switch c.Kind {
	case cfg.Cond:
		return []ast.Node{c.Cond}
	case cfg.ForInit:
		return []ast.Node{c.Stmt.(*ast.ForStmt).From}
	case cfg.ForCond:
		return []ast.Node{c.Stmt.(*ast.ForStmt).Limit}
	case cfg.Stmt:
		switch st := c.Stmt.(type) {
		case *ast.AssignStmt:
			return []ast.Node{st.Lhs, st.Rhs}
		case *ast.CallStmt:
			return []ast.Node{st}
		}
	}
	return nil
}

// buildCallLinkage creates actual parameter nodes and the call/param
// edges for every call site in r.
func (s *SDG) buildCallLinkage(r *sem.Routine) {
	g := s.CFGs[r]
	// Map call-site ASTs to CFG nodes.
	siteByAST := make(map[ast.Node]*callgraph.Site)
	for _, site := range s.CG.Sites[r] {
		siteByAST[site.Node] = site
	}
	siteCFG := make(map[*callgraph.Site]*cfg.Node)
	for _, c := range g.Nodes {
		for _, root := range ownedExprs(c) {
			c := c
			ast.Inspect(root, func(n ast.Node) bool {
				if site, ok := siteByAST[n]; ok {
					siteCFG[site] = c
					s.sitesAt[c] = append(s.sitesAt[c], site)
				}
				return true
			})
		}
	}

	for _, site := range s.CG.Sites[r] {
		c := siteCFG[site]
		if c == nil {
			continue // unreachable or malformed
		}
		callNode := s.nodeOfCFG[c]
		callee := site.Callee
		s.addEdge(callNode, s.EntryOf[callee], CallEdge)

		ains := make(map[*sem.VarSym]*Node)
		aouts := make(map[*sem.VarSym]*Node)
		byCallerVar := make(map[*sem.VarSym][]*Node)
		s.actualIns[site], s.actualOuts[site] = ains, aouts
		s.actualOutByCallerVar[site] = byCallerVar

		for i, p := range callee.Params {
			ain := s.newNode(&Node{Kind: ActualIn, Routine: r, Var: p, Site: site})
			ains[p] = ain
			s.addEdge(callNode, ain, ControlDep)
			s.addEdge(ain, s.formalIns[callee][p], ParamIn)
			if p.Mode != ast.Value {
				aout := s.newNode(&Node{Kind: ActualOut, Routine: r, Var: p, Site: site})
				aouts[p] = aout
				s.addEdge(callNode, aout, ControlDep)
				if fo := s.formalOuts[callee][p]; fo != nil {
					s.addEdge(fo, aout, ParamOut)
				}
				if i < len(site.Args) {
					if base := s.Info.VarOf(site.Args[i]); base != nil {
						byCallerVar[base] = append(byCallerVar[base], aout)
					}
				}
			}
		}
		// Function result.
		if callee.Result != nil {
			aout := s.newNode(&Node{Kind: ActualOut, Routine: r, Var: callee.Result, Site: site})
			aouts[callee.Result] = aout
			s.addEdge(callNode, aout, ControlDep)
			if fo := s.formalOuts[callee][callee.Result]; fo != nil {
				s.addEdge(fo, aout, ParamOut)
			}
			// The result flows into the statement consuming the call.
			s.addEdge(aout, callNode, FlowDep)
		}
		// Hidden parameters for the callee's global effects.
		eff := s.SE.Of[callee]
		for v := range eff.RefGlobals {
			ain := s.newNode(&Node{Kind: ActualIn, Routine: r, Var: v, Site: site})
			ains[v] = ain
			s.addEdge(callNode, ain, ControlDep)
			s.addEdge(ain, s.formalIns[callee][v], ParamIn)
		}
		for v := range eff.ModGlobals {
			if ains[v] == nil {
				ain := s.newNode(&Node{Kind: ActualIn, Routine: r, Var: v, Site: site})
				ains[v] = ain
				s.addEdge(callNode, ain, ControlDep)
				s.addEdge(ain, s.formalIns[callee][v], ParamIn)
			}
			aout := s.newNode(&Node{Kind: ActualOut, Routine: r, Var: v, Site: site})
			aouts[v] = aout
			s.addEdge(callNode, aout, ControlDep)
			if fo := s.formalOuts[callee][v]; fo != nil {
				s.addEdge(fo, aout, ParamOut)
			}
			byCallerVar[v] = append(byCallerVar[v], aout)
		}
	}
}

// defSources maps a reaching definition to the SDG nodes that act as its
// source: formal-in nodes for entry definitions, actual-out nodes for
// call effects, the statement node otherwise.
func (s *SDG) defSources(r *sem.Routine, d *dataflow.Def) []*Node {
	g := s.CFGs[r]
	if d.Node == g.Entry {
		if fi := s.formalIns[r][d.Var]; fi != nil {
			return []*Node{fi}
		}
		return []*Node{s.EntryOf[r]}
	}
	var out []*Node
	own := false
	switch d.Node.Kind {
	case cfg.ForInit, cfg.ForIncr:
		own = true
	case cfg.Stmt:
		switch st := d.Node.Stmt.(type) {
		case *ast.AssignStmt:
			if s.Info.VarOf(st.Lhs) == d.Var {
				own = true
			}
		case *ast.CallStmt:
			if b := s.Info.Builtin[st]; b != nil {
				own = true // read/readln define their targets directly
			}
		}
	}
	for _, site := range s.sitesAt[d.Node] {
		for _, aout := range s.actualOutByCallerVar[site][d.Var] {
			out = append(out, aout)
		}
	}
	if own || len(out) == 0 {
		out = append(out, s.nodeOfCFG[d.Node])
	}
	return out
}

// buildFlowEdges adds intraprocedural flow dependences, including edges
// into actual-in and formal-out nodes.
func (s *SDG) buildFlowEdges(r *sem.Routine) {
	g := s.CFGs[r]
	df := s.Flows[r]

	// Entry definitions of non-local variables flow from their hidden
	// formal-in nodes; those of locals from the entry node (handled by
	// defSources). For every node's uses, connect reaching defs.
	for _, c := range g.Nodes {
		if c == g.Entry || c == g.Exit {
			continue
		}
		target := s.nodeOfCFG[c]
		for _, u := range s.nodeLevelUses(c, df) {
			for _, d := range df.ReachingAt(c, u) {
				for _, src := range s.defSources(r, d) {
					s.addEdge(src, target, FlowDep)
				}
			}
		}
		// Per-argument flow into actual-in nodes.
		for _, site := range s.sitesAt[c] {
			for i, p := range site.Callee.Params {
				ain := s.actualIns[site][p]
				if ain == nil || i >= len(site.Args) {
					continue
				}
				arg := site.Args[i]
				uses := defuse.NewSet()
				if p.Mode == ast.Value {
					defs := defuse.NewSet()
					defuse.ExprUses(s.Info, arg, nil, defs, uses)
				} else {
					// By-reference argument: the callee may read the
					// bound variable; index expressions are read at
					// binding time.
					if base := s.Info.VarOf(arg); base != nil {
						uses.Add(base)
					}
					idx := defuse.NewSet()
					defuse.ExprUses(s.Info, arg, nil, defuse.NewSet(), idx)
					for _, v := range idx.Slice() {
						if v != s.Info.VarOf(arg) {
							uses.Add(v)
						}
					}
				}
				for _, u := range uses.Slice() {
					for _, d := range df.ReachingAt(c, u) {
						for _, src := range s.defSources(r, d) {
							s.addEdge(src, ain, FlowDep)
						}
					}
				}
			}
			// Hidden global actual-ins read the global at the call.
			for v, ain := range s.actualIns[site] {
				if v.Kind == sem.ParamVar && v.Owner == site.Callee {
					continue // formal param, handled above
				}
				for _, d := range df.ReachingAt(c, v) {
					for _, src := range s.defSources(r, d) {
						s.addEdge(src, ain, FlowDep)
					}
				}
			}
		}
	}

	// Formal-out nodes read the final value of their variable at Exit.
	for v, fo := range s.formalOuts[r] {
		for _, d := range df.ReachingAt(g.Exit, v) {
			for _, src := range s.defSources(r, d) {
				s.addEdge(src, fo, FlowDep)
			}
		}
	}
}

// nodeLevelUses returns the uses attributed to the statement node
// itself. For nodes containing user-routine calls, argument uses and
// callee effects belong to the call's actual-in nodes, so only the
// "shallow" uses outside call arguments remain at the node; other nodes
// keep their full use set.
func (s *SDG) nodeLevelUses(c *cfg.Node, df *dataflow.Result) []*sem.VarSym {
	if len(s.sitesAt[c]) == 0 {
		return df.UsesAt[c]
	}
	uses := defuse.NewSet()
	switch c.Kind {
	case cfg.Cond:
		defuse.ExprUsesShallow(s.Info, c.Cond, uses)
	case cfg.ForInit:
		defuse.ExprUsesShallow(s.Info, c.Stmt.(*ast.ForStmt).From, uses)
	case cfg.ForCond:
		fs := c.Stmt.(*ast.ForStmt)
		uses.Add(s.Info.VarOf(fs.Var))
		defuse.ExprUsesShallow(s.Info, fs.Limit, uses)
	case cfg.Stmt:
		switch st := c.Stmt.(type) {
		case *ast.AssignStmt:
			defuse.ExprUsesShallow(s.Info, st.Rhs, uses)
			if _, whole := st.Lhs.(*ast.Ident); !whole {
				if idx, ok := st.Lhs.(*ast.IndexExpr); ok {
					for _, ie := range idx.Indices {
						defuse.ExprUsesShallow(s.Info, ie, uses)
					}
				}
				uses.Add(s.Info.VarOf(st.Lhs))
			}
		case *ast.CallStmt:
			if b := s.Info.Builtin[st]; b != nil && b.Name != "read" && b.Name != "readln" {
				for _, a := range st.Args {
					defuse.ExprUsesShallow(s.Info, a, uses)
				}
			}
			// User procedure calls: arguments are actual-in uses.
		}
	}
	return uses.Slice()
}

// computeSummaryEdges adds HRB summary edges (actual-in → actual-out)
// describing transitive dependences through each call, iterating to a
// fixpoint so recursion is handled.
func (s *SDG) computeSummaryEdges() {
	// known[fo] = set of formal-in IDs already recorded for fo.
	known := make(map[*Node]map[*Node]bool)

	work := make([]*sem.Routine, len(s.Info.Routines))
	copy(work, s.Info.Routines)
	inWork := make(map[*sem.Routine]bool)
	for _, r := range work {
		inWork[r] = true
	}

	for len(work) > 0 {
		r := work[0]
		work = work[1:]
		inWork[r] = false

		changedCallers := false
		for _, fo := range s.formalOuts[r] {
			reached := s.intraBackward(fo)
			for fi := range reached {
				if fi.Kind != FormalIn || fi.Routine != r {
					continue
				}
				if known[fo] == nil {
					known[fo] = make(map[*Node]bool)
				}
				if known[fo][fi] {
					continue
				}
				known[fo][fi] = true
				// New (formal-in → formal-out) dependence: add summary
				// edges at every call site of r.
				for _, caller := range s.CG.Callers[r] {
					for _, site := range s.CG.Sites[caller] {
						if site.Callee != r {
							continue
						}
						ain := s.actualIns[site][fi.Var]
						aout := s.actualOuts[site][fo.Var]
						if ain != nil && aout != nil {
							s.addEdge(ain, aout, Summary)
							changedCallers = true
							if !inWork[caller] {
								inWork[caller] = true
								work = append(work, caller)
							}
						}
					}
				}
			}
		}
		_ = changedCallers
	}
}

// intraBackward walks backward from n over intraprocedural edges
// (control, flow, summary) staying inside n's routine, returning all
// reached nodes.
func (s *SDG) intraBackward(n *Node) map[*Node]bool {
	seen := map[*Node]bool{n: true}
	stack := []*Node{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range s.preds[cur] {
			switch e.Kind {
			case ControlDep, FlowDep, Summary:
				if e.From.Routine == n.Routine && !seen[e.From] {
					seen[e.From] = true
					stack = append(stack, e.From)
				}
			}
		}
	}
	return seen
}

// ---------------------------------------------------------------------------
// Two-phase backward slicing

// BackwardSlice computes the interprocedural backward slice from the
// criterion nodes using the Horwitz–Reps–Binkley two-phase algorithm.
func (s *SDG) BackwardSlice(criterion []*Node) map[*Node]bool {
	phase1 := s.traverse(criterion, func(k EdgeKind) bool { return k != ParamOut })
	var seeds []*Node
	for n := range phase1 {
		seeds = append(seeds, n)
	}
	phase2 := s.traverse(seeds, func(k EdgeKind) bool { return k != CallEdge && k != ParamIn })
	for n := range phase1 {
		phase2[n] = true
	}
	return phase2
}

func (s *SDG) traverse(start []*Node, follow func(EdgeKind) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, n := range start {
		if n != nil && !seen[n] {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range s.preds[cur] {
			if !follow(e.Kind) || seen[e.From] {
				continue
			}
			seen[e.From] = true
			stack = append(stack, e.From)
		}
	}
	return seen
}

// ForwardSlice computes the interprocedural forward slice from the
// criterion nodes (all nodes potentially affected by them), the dual of
// BackwardSlice: phase 1 stays at the criterion's level or ascends into
// callers (no ParamIn/Call edges), phase 2 descends (no ParamOut edges).
func (s *SDG) ForwardSlice(criterion []*Node) map[*Node]bool {
	phase1 := s.traverseFwd(criterion, func(k EdgeKind) bool { return k != ParamIn && k != CallEdge })
	var seeds []*Node
	for n := range phase1 {
		seeds = append(seeds, n)
	}
	phase2 := s.traverseFwd(seeds, func(k EdgeKind) bool { return k != ParamOut })
	for n := range phase1 {
		phase2[n] = true
	}
	return phase2
}

func (s *SDG) traverseFwd(start []*Node, follow func(EdgeKind) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, n := range start {
		if n != nil && !seen[n] {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range s.succs[cur] {
			if !follow(e.Kind) || seen[e.To] {
				continue
			}
			seen[e.To] = true
			stack = append(stack, e.To)
		}
	}
	return seen
}

// ReachingDefNodes returns the SDG nodes acting as sources of the
// definitions of v that reach CFG node c in routine r — the usual way to
// seed a slice on "variable v at point p".
func (s *SDG) ReachingDefNodes(r *sem.Routine, c *cfg.Node, v *sem.VarSym) []*Node {
	df := s.Flows[r]
	var out []*Node
	for _, d := range df.ReachingAt(c, v) {
		out = append(out, s.defSources(r, d)...)
	}
	return out
}
