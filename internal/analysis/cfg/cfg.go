// Package cfg builds per-routine control-flow graphs for the GADT Pascal
// subset.
//
// Nodes are atomic statements (assignments, calls, I/O) plus synthetic
// condition nodes for structured control and synthetic init/incr nodes
// for for-loops. Local gotos become edges; gotos that leave the routine
// (the paper's "exit side-effects") become edges to the routine's Exit
// node and are recorded in Graph.EscapingGotos.
package cfg

import (
	"fmt"
	"strings"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
)

// Kind classifies CFG nodes.
type Kind int

const (
	Entry Kind = iota
	Exit
	Stmt    // assignment, call, goto, empty
	Cond    // branch condition of if/while/repeat/case
	ForInit // synthetic: v := from
	ForCond // synthetic: v <= limit (or >= for downto)
	ForIncr // synthetic: v := v ± 1
)

func (k Kind) String() string {
	switch k {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Cond:
		return "cond"
	case ForInit:
		return "for-init"
	case ForCond:
		return "for-cond"
	case ForIncr:
		return "for-incr"
	}
	return "stmt"
}

// Branch labels an edge with the condition outcome that takes it. Edges
// out of Cond/ForCond nodes carry BranchTrue or BranchFalse; when both
// outcomes of a condition reach the same node (an empty branch) the
// merged edge is BranchBoth. All other edges are BranchAlways.
type Branch int

const (
	BranchAlways Branch = iota // unconditional flow
	BranchTrue                 // taken when the condition holds
	BranchFalse                // taken when the condition fails
	BranchBoth                 // true and false outcomes merge here
)

func (br Branch) String() string {
	switch br {
	case BranchTrue:
		return "true"
	case BranchFalse:
		return "false"
	case BranchBoth:
		return "both"
	}
	return "always"
}

// mergeBranch combines the labels of two parallel edges between the same
// node pair (the builder dedups such edges into one).
func mergeBranch(a, b Branch) Branch {
	if a == b {
		return a
	}
	if a == BranchAlways || b == BranchAlways {
		return BranchAlways
	}
	return BranchBoth
}

// Node is one CFG node.
type Node struct {
	ID   int
	Kind Kind

	// Stmt is set for Stmt nodes and for the For* synthetic nodes (the
	// enclosing *ast.ForStmt); Cond carries the branch expression for
	// Cond nodes (the selector expression for case).
	Stmt ast.Stmt
	Cond ast.Expr

	Succs []*Node
	Preds []*Node
}

// String renders a short human-readable description of the node.
func (n *Node) String() string {
	switch n.Kind {
	case Entry, Exit:
		return n.Kind.String()
	case Cond:
		return "cond " + printer.PrintExpr(n.Cond)
	case ForInit, ForCond, ForIncr:
		fs := n.Stmt.(*ast.ForStmt)
		return fmt.Sprintf("%s %s", n.Kind, fs.Var.Name)
	}
	s := printer.PrintStmt(n.Stmt)
	return strings.TrimRight(s, "\n")
}

// Graph is the CFG of one routine.
type Graph struct {
	Routine *sem.Routine
	Entry   *Node
	Exit    *Node
	Nodes   []*Node

	// EscapingGotos lists goto statements whose target label is declared
	// in an enclosing routine (global gotos).
	EscapingGotos []*ast.GotoStmt

	// NodeOf maps an atomic source statement to its CFG node. Synthetic
	// condition nodes are reachable through CondOf.
	NodeOf map[ast.Stmt]*Node
	// CondOf maps a structured statement to its condition node(s).
	CondOf map[ast.Stmt][]*Node

	// labels records the branch label of every edge, keyed by the
	// (from, to) node-ID pair.
	labels map[[2]int]Branch
}

// Label returns the branch label of the from→to edge (BranchAlways when
// the edge does not exist or carries no condition outcome).
func (g *Graph) Label(from, to *Node) Branch {
	return g.labels[[2]int{from.ID, to.ID}]
}

// RemoveEdge deletes the from→to edge, if present. Used by clients that
// prune statically infeasible branches before dependence analysis.
func (g *Graph) RemoveEdge(from, to *Node) {
	for i, s := range from.Succs {
		if s == to {
			from.Succs = append(from.Succs[:i], from.Succs[i+1:]...)
			break
		}
	}
	for i, p := range to.Preds {
		if p == from {
			to.Preds = append(to.Preds[:i], to.Preds[i+1:]...)
			break
		}
	}
	delete(g.labels, [2]int{from.ID, to.ID})
}

// Disconnect removes every edge touching n, detaching it from the graph
// (the node itself stays in Nodes so IDs remain stable).
func (g *Graph) Disconnect(n *Node) {
	for _, s := range append([]*Node(nil), n.Succs...) {
		g.RemoveEdge(n, s)
	}
	for _, p := range append([]*Node(nil), n.Preds...) {
		g.RemoveEdge(p, n)
	}
}

// Build constructs the CFG of routine r using resolved goto targets from
// info.
func Build(info *sem.Info, r *sem.Routine) *Graph {
	b := &builder{
		info: info,
		g: &Graph{
			Routine: r,
			NodeOf:  make(map[ast.Stmt]*Node),
			CondOf:  make(map[ast.Stmt][]*Node),
			labels:  make(map[[2]int]Branch),
		},
		labels: make(map[string]*Node),
	}
	b.g.Entry = b.newNode(Entry)
	b.g.Exit = b.newNode(Exit)

	exits := b.stmt(r.Block.Body, []flow{{b.g.Entry, BranchAlways}})
	for _, f := range exits {
		b.edge(f.n, b.g.Exit, f.br)
	}
	// Wire pending local gotos now that all labels are known.
	for _, pg := range b.pendingGotos {
		target, ok := b.labels[pg.label]
		if !ok {
			// Label exists per sem but was not seen: defensive fallback.
			b.edge(pg.node, b.g.Exit, BranchAlways)
			continue
		}
		b.edge(pg.node, target, BranchAlways)
	}
	return b.g
}

// BuildAll constructs CFGs for every routine of an analyzed program.
func BuildAll(info *sem.Info) map[*sem.Routine]*Graph {
	out := make(map[*sem.Routine]*Graph, len(info.Routines))
	for _, r := range info.Routines {
		out[r] = Build(info, r)
	}
	return out
}

type pendingGoto struct {
	node  *Node
	label string
}

type builder struct {
	info         *sem.Info
	g            *Graph
	labels       map[string]*Node
	pendingGotos []pendingGoto
}

func (b *builder) newNode(k Kind) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: k}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// flow is a dangling edge source awaiting its target: the node control
// leaves from, plus the branch outcome that leaves it.
type flow struct {
	n  *Node
	br Branch
}

func (b *builder) edge(from, to *Node, br Branch) {
	key := [2]int{from.ID, to.ID}
	for _, s := range from.Succs {
		if s == to {
			b.g.labels[key] = mergeBranch(b.g.labels[key], br)
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
	b.g.labels[key] = br
}

func (b *builder) connect(preds []flow, to *Node) {
	for _, p := range preds {
		b.edge(p.n, to, p.br)
	}
}

// stmt adds nodes for s with the given predecessors and returns the set
// of dangling flows whose fall-through continues after s. Nodes that
// transfer control elsewhere (goto) return no exits.
func (b *builder) stmt(s ast.Stmt, preds []flow) []flow {
	switch s := s.(type) {
	case nil:
		return preds
	case *ast.CompoundStmt:
		cur := preds
		for _, c := range s.Stmts {
			cur = b.stmt(c, cur)
		}
		return cur
	case *ast.EmptyStmt:
		return preds
	case *ast.AssignStmt, *ast.CallStmt:
		n := b.newNode(Stmt)
		n.Stmt = s
		b.g.NodeOf[s] = n
		b.connect(preds, n)
		return []flow{{n, BranchAlways}}
	case *ast.GotoStmt:
		n := b.newNode(Stmt)
		n.Stmt = s
		b.g.NodeOf[s] = n
		b.connect(preds, n)
		li := b.info.GotoTgt[s]
		if li == nil || li.Routine != b.g.Routine {
			// Escaping goto: control leaves this routine.
			b.g.EscapingGotos = append(b.g.EscapingGotos, s)
			b.edge(n, b.g.Exit, BranchAlways)
		} else {
			b.pendingGotos = append(b.pendingGotos, pendingGoto{node: n, label: s.Label})
		}
		return nil
	case *ast.LabeledStmt:
		// The label attaches to the first node of the inner statement;
		// introduce a join node so backward gotos have a stable target
		// even when the inner statement is structured.
		join := b.newNode(Stmt)
		join.Stmt = &ast.EmptyStmt{SemiPos: s.Pos()}
		b.g.NodeOf[s] = join
		b.labels[s.Label] = join
		b.connect(preds, join)
		return b.stmt(s.Stmt, []flow{{join, BranchAlways}})
	case *ast.IfStmt:
		cond := b.newNode(Cond)
		cond.Cond = s.Cond
		cond.Stmt = s
		b.g.CondOf[s] = append(b.g.CondOf[s], cond)
		b.connect(preds, cond)
		thenExits := b.stmt(s.Then, []flow{{cond, BranchTrue}})
		if s.Else == nil {
			return append(thenExits, flow{cond, BranchFalse})
		}
		elseExits := b.stmt(s.Else, []flow{{cond, BranchFalse}})
		return append(thenExits, elseExits...)
	case *ast.WhileStmt:
		cond := b.newNode(Cond)
		cond.Cond = s.Cond
		cond.Stmt = s
		b.g.CondOf[s] = append(b.g.CondOf[s], cond)
		b.connect(preds, cond)
		bodyExits := b.stmt(s.Body, []flow{{cond, BranchTrue}})
		b.connect(bodyExits, cond)
		return []flow{{cond, BranchFalse}}
	case *ast.RepeatStmt:
		// Body executes at least once; condition tested after.
		first := b.newNode(Stmt)
		first.Stmt = &ast.EmptyStmt{SemiPos: s.Pos()}
		b.g.NodeOf[s] = first
		b.connect(preds, first)
		cur := []flow{{first, BranchAlways}}
		for _, c := range s.Stmts {
			cur = b.stmt(c, cur)
		}
		cond := b.newNode(Cond)
		cond.Cond = s.Cond
		cond.Stmt = s
		b.g.CondOf[s] = append(b.g.CondOf[s], cond)
		b.connect(cur, cond)
		b.edge(cond, first, BranchFalse) // loop back when condition false
		return []flow{{cond, BranchTrue}}
	case *ast.ForStmt:
		init := b.newNode(ForInit)
		init.Stmt = s
		b.g.NodeOf[s] = init
		b.connect(preds, init)
		cond := b.newNode(ForCond)
		cond.Stmt = s
		b.g.CondOf[s] = append(b.g.CondOf[s], cond)
		b.edge(init, cond, BranchAlways)
		bodyExits := b.stmt(s.Body, []flow{{cond, BranchTrue}})
		incr := b.newNode(ForIncr)
		incr.Stmt = s
		b.connect(bodyExits, incr)
		b.edge(incr, cond, BranchAlways)
		return []flow{{cond, BranchFalse}}
	case *ast.CaseStmt:
		cond := b.newNode(Cond)
		cond.Cond = s.Expr
		cond.Stmt = s
		b.g.CondOf[s] = append(b.g.CondOf[s], cond)
		b.connect(preds, cond)
		var exits []flow
		for _, arm := range s.Arms {
			exits = append(exits, b.stmt(arm.Body, []flow{{cond, BranchAlways}})...)
		}
		if s.Else != nil {
			exits = append(exits, b.stmt(s.Else, []flow{{cond, BranchAlways}})...)
		} else {
			exits = append(exits, flow{cond, BranchAlways}) // no matching arm falls through
		}
		return exits
	}
	// Unknown statement: treat as opaque.
	n := b.newNode(Stmt)
	n.Stmt = s
	b.g.NodeOf[s] = n
	b.connect(preds, n)
	return []flow{{n, BranchAlways}}
}

// Reachable returns the set of nodes reachable from Entry.
func (g *Graph) Reachable() map[*Node]bool {
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, s := range n.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// Dot renders the graph in Graphviz format (debugging aid).
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Routine.Name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, fmt.Sprintf("%d: %s", n.ID, n))
	}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			if br := g.Label(n, s); br != BranchAlways {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n", n.ID, s.ID, br)
				continue
			}
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, s.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
