package cfg_test

import (
	"testing"

	"gadt/internal/analysis/cfg"
	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func build(t *testing.T, src, routine string) (*sem.Info, *cfg.Graph) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var r *sem.Routine
	if routine == "" {
		r = info.Main
	} else if r = info.LookupRoutine(routine); r == nil {
		t.Fatalf("routine %s not found", routine)
	}
	return info, cfg.Build(info, r)
}

func TestStraightLine(t *testing.T) {
	_, g := build(t, `
program t;
var x: integer;
begin
  x := 1;
  x := 2;
  x := 3;
end.`, "")
	// entry -> s1 -> s2 -> s3 -> exit
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(g.Nodes))
	}
	if len(g.Entry.Succs) != 1 || len(g.Exit.Preds) != 1 {
		t.Errorf("entry succs = %d, exit preds = %d", len(g.Entry.Succs), len(g.Exit.Preds))
	}
	n := g.Entry
	for i := 0; i < 4; i++ {
		if len(n.Succs) != 1 {
			t.Fatalf("node %d has %d succs", n.ID, len(n.Succs))
		}
		n = n.Succs[0]
	}
	if n != g.Exit {
		t.Errorf("chain does not end at exit")
	}
}

func TestIfElseDiamond(t *testing.T) {
	_, g := build(t, `
program t;
var x: integer;
begin
  if x > 0 then x := 1 else x := 2;
  x := 3;
end.`, "")
	var cond *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Cond {
			cond = n
		}
	}
	if cond == nil {
		t.Fatal("no cond node")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2", len(cond.Succs))
	}
	// Both branches must converge on the x := 3 node.
	join := cond.Succs[0].Succs[0]
	if cond.Succs[1].Succs[0] != join {
		t.Error("branches do not join")
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	_, g := build(t, `
program t;
var x: integer;
begin
  if x > 0 then x := 1;
  x := 3;
end.`, "")
	var cond *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Cond {
			cond = n
		}
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2 (then + fall-through)", len(cond.Succs))
	}
}

func TestWhileLoopBackEdge(t *testing.T) {
	_, g := build(t, `
program t;
var i: integer;
begin
  while i < 10 do i := i + 1;
end.`, "")
	var cond, body *cfg.Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case cfg.Cond:
			cond = n
		case cfg.Stmt:
			if _, ok := n.Stmt.(*ast.AssignStmt); ok {
				body = n
			}
		}
	}
	if cond == nil || body == nil {
		t.Fatal("missing nodes")
	}
	found := false
	for _, s := range body.Succs {
		if s == cond {
			found = true
		}
	}
	if !found {
		t.Error("no back edge from body to condition")
	}
}

func TestForLoopNodes(t *testing.T) {
	_, g := build(t, `
program t;
var i, s: integer;
begin
  for i := 1 to 10 do s := s + i;
end.`, "")
	var kinds []cfg.Kind
	for _, n := range g.Nodes {
		kinds = append(kinds, n.Kind)
	}
	has := func(k cfg.Kind) bool {
		for _, x := range kinds {
			if x == k {
				return true
			}
		}
		return false
	}
	for _, k := range []cfg.Kind{cfg.ForInit, cfg.ForCond, cfg.ForIncr} {
		if !has(k) {
			t.Errorf("missing %v node", k)
		}
	}
}

func TestRepeatAtLeastOnce(t *testing.T) {
	_, g := build(t, `
program t;
var i: integer;
begin
  repeat i := i + 1 until i > 3;
end.`, "")
	// Entry must reach the body without passing the condition first:
	// entry -> first(empty) -> assign -> cond.
	n := g.Entry.Succs[0]
	steps := 0
	for n.Kind != cfg.Cond && steps < 10 {
		n = n.Succs[0]
		steps++
	}
	if n.Kind != cfg.Cond {
		t.Fatal("condition unreachable")
	}
	if steps < 2 {
		t.Errorf("condition reached after %d steps; body should precede it", steps)
	}
}

func TestLocalGotoEdge(t *testing.T) {
	_, g := build(t, `
program t;
label 9;
var x: integer;
begin
  goto 9;
  x := 1;
  9: x := 2;
end.`, "")
	if len(g.EscapingGotos) != 0 {
		t.Errorf("local goto misclassified as escaping")
	}
	var gnode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Stmt {
			if _, ok := n.Stmt.(*ast.GotoStmt); ok {
				gnode = n
			}
		}
	}
	if gnode == nil {
		t.Fatal("goto node missing")
	}
	if len(gnode.Succs) != 1 {
		t.Fatalf("goto succs = %d, want 1", len(gnode.Succs))
	}
	if gnode.Succs[0] == g.Exit {
		t.Error("local goto wired to exit")
	}
	// x := 1 must be unreachable.
	reach := g.Reachable()
	for _, n := range g.Nodes {
		if n.Kind != cfg.Stmt {
			continue
		}
		if as, ok := n.Stmt.(*ast.AssignStmt); ok {
			if lit, ok := as.Rhs.(*ast.IntLit); ok && lit.Value == 1 {
				if reach[n] {
					t.Error("statement after unconditional goto is reachable")
				}
			}
		}
	}
}

func TestEscapingGoto(t *testing.T) {
	info, _ := build(t, paper.GlobalGoto, "")
	q := info.LookupRoutine("q")
	g := cfg.Build(info, q)
	if len(g.EscapingGotos) != 1 {
		t.Fatalf("escaping gotos in q = %d, want 1", len(g.EscapingGotos))
	}
	// The escaping goto must be wired to exit.
	gn := g.NodeOf[g.EscapingGotos[0]]
	if gn == nil || len(gn.Succs) != 1 || gn.Succs[0] != g.Exit {
		t.Error("escaping goto not wired to exit")
	}
}

func TestBackwardGotoLoop(t *testing.T) {
	_, g := build(t, `
program t;
label 1;
var i: integer;
begin
  i := 0;
  1: i := i + 1;
  if i < 3 then goto 1;
end.`, "")
	// There must be a cycle: the goto node's successor appears earlier.
	var gnode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Stmt {
			if _, ok := n.Stmt.(*ast.GotoStmt); ok {
				gnode = n
			}
		}
	}
	if gnode == nil || len(gnode.Succs) != 1 {
		t.Fatal("goto node malformed")
	}
	if gnode.Succs[0].ID >= gnode.ID {
		t.Error("backward goto does not point backward")
	}
}

func TestCaseBranches(t *testing.T) {
	_, g := build(t, `
program t;
var x, y: integer;
begin
  case x of
    1: y := 1;
    2: y := 2;
  else y := 0;
  end;
end.`, "")
	var cond *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Cond {
			cond = n
		}
	}
	if cond == nil {
		t.Fatal("no selector node")
	}
	if len(cond.Succs) != 3 {
		t.Errorf("selector succs = %d, want 3 (two arms + else)", len(cond.Succs))
	}
}

func TestBuildAllRoutines(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	graphs := cfg.BuildAll(info)
	if len(graphs) != len(info.Routines) {
		t.Fatalf("graphs = %d, want %d", len(graphs), len(info.Routines))
	}
	for r, g := range graphs {
		reach := g.Reachable()
		if !reach[g.Exit] {
			t.Errorf("%s: exit unreachable", r.Name)
		}
	}
}

func TestDotOutput(t *testing.T) {
	_, g := build(t, `program t; var x: integer; begin x := 1; end.`, "")
	dot := g.Dot()
	if len(dot) == 0 || dot[0] != 'd' {
		t.Errorf("dot output malformed: %q", dot)
	}
}
