// Package callgraph computes the static call graph of an analyzed
// program: which routines each routine may call, and at which sites.
package callgraph

import (
	"sort"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// Site is one call site inside a routine.
type Site struct {
	Caller *sem.Routine
	Callee *sem.Routine
	// Node is the *ast.CallStmt, *ast.CallExpr or *ast.Ident of the call.
	Node ast.Node
	// Args are the syntactic arguments (nil for parameterless calls).
	Args []ast.Expr
}

// Graph is the call graph.
type Graph struct {
	// Callees maps each routine to its distinct callees.
	Callees map[*sem.Routine][]*sem.Routine
	// Callers is the inverse relation.
	Callers map[*sem.Routine][]*sem.Routine
	// Sites lists every call site per caller, in source order.
	Sites map[*sem.Routine][]*Site
}

// Build walks every routine body and records resolved user-routine
// calls (builtins are not part of the graph).
func Build(info *sem.Info) *Graph {
	g := &Graph{
		Callees: make(map[*sem.Routine][]*sem.Routine),
		Callers: make(map[*sem.Routine][]*sem.Routine),
		Sites:   make(map[*sem.Routine][]*Site),
	}
	for _, r := range info.Routines {
		g.Callees[r] = nil
	}
	for _, r := range info.Routines {
		r := r
		ast.Inspect(r.Block.Body, func(n ast.Node) bool {
			var site *Site
			switch n := n.(type) {
			case *ast.CallStmt:
				if callee := info.Calls[n]; callee != nil {
					site = &Site{Caller: r, Callee: callee, Node: n, Args: n.Args}
				}
			case *ast.CallExpr:
				if callee := info.Calls[n]; callee != nil {
					site = &Site{Caller: r, Callee: callee, Node: n, Args: n.Args}
				}
			case *ast.Ident:
				if callee := info.Calls[n]; callee != nil {
					site = &Site{Caller: r, Callee: callee, Node: n}
				}
			}
			if site != nil {
				g.Sites[r] = append(g.Sites[r], site)
				g.addEdge(r, site.Callee)
			}
			return true
		})
	}
	return g
}

func (g *Graph) addEdge(caller, callee *sem.Routine) {
	for _, c := range g.Callees[caller] {
		if c == callee {
			return
		}
	}
	g.Callees[caller] = append(g.Callees[caller], callee)
	g.Callers[callee] = append(g.Callers[callee], caller)
}

// PostOrder returns routines so that callees come before callers where
// possible (cycles broken arbitrarily), starting from the program block.
func (g *Graph) PostOrder(main *sem.Routine) []*sem.Routine {
	var order []*sem.Routine
	state := make(map[*sem.Routine]int) // 0 unseen, 1 visiting, 2 done
	var visit func(r *sem.Routine)
	visit = func(r *sem.Routine) {
		if state[r] != 0 {
			return
		}
		state[r] = 1
		callees := append([]*sem.Routine(nil), g.Callees[r]...)
		sort.Slice(callees, func(i, j int) bool { return callees[i].Name < callees[j].Name })
		for _, c := range callees {
			visit(c)
		}
		state[r] = 2
		order = append(order, r)
	}
	visit(main)
	// Include unreachable routines too, for completeness of analyses.
	rest := make([]*sem.Routine, 0)
	for r := range g.Callees {
		if state[r] == 0 {
			rest = append(rest, r)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	for _, r := range rest {
		visit(r)
	}
	return order
}

// Recursive reports whether r can (transitively) call itself.
func (g *Graph) Recursive(r *sem.Routine) bool {
	seen := make(map[*sem.Routine]bool)
	var walk func(c *sem.Routine) bool
	walk = func(c *sem.Routine) bool {
		for _, n := range g.Callees[c] {
			if n == r {
				return true
			}
			if !seen[n] {
				seen[n] = true
				if walk(n) {
					return true
				}
			}
		}
		return false
	}
	return walk(r)
}
