package callgraph_test

import (
	"testing"

	"gadt/internal/analysis/callgraph"
	"gadt/internal/paper"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func build(t *testing.T, src string) (*sem.Info, *callgraph.Graph) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info, callgraph.Build(info)
}

func TestSqrtestEdges(t *testing.T) {
	info, g := build(t, paper.Sqrtest)
	want := map[string][]string{
		"main":        {"sqrtest"},
		"sqrtest":     {"arrsum", "computs", "test"},
		"computs":     {"comput1", "comput2"},
		"comput1":     {"partialsums", "add"},
		"partialsums": {"sum1", "sum2"},
		"sum1":        {"increment"},
		"sum2":        {"decrement"},
		"comput2":     {"square"},
		"decrement":   {},
		"test":        {},
	}
	for name, callees := range want {
		r := info.LookupRoutine(name)
		if name == "main" {
			r = info.Main
		}
		got := g.Callees[r]
		if len(got) != len(callees) {
			t.Errorf("%s callees = %v, want %v", name, names(got), callees)
			continue
		}
		for i, c := range callees {
			if got[i].Name != c {
				t.Errorf("%s callee %d = %s, want %s", name, i, got[i].Name, c)
			}
		}
	}
	// Callers inverse relation.
	dec := info.LookupRoutine("decrement")
	if len(g.Callers[dec]) != 1 || g.Callers[dec][0].Name != "sum2" {
		t.Errorf("callers(decrement) = %v", names(g.Callers[dec]))
	}
}

func names(rs []*sem.Routine) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

func TestSitesRecorded(t *testing.T) {
	info, g := build(t, paper.Sqrtest)
	sum2 := info.LookupRoutine("sum2")
	sites := g.Sites[sum2]
	if len(sites) != 1 || sites[0].Callee.Name != "decrement" {
		t.Fatalf("sites(sum2) = %v", sites)
	}
	if len(sites[0].Args) != 1 {
		t.Errorf("decrement call args = %d, want 1", len(sites[0].Args))
	}
}

func TestPostOrderCalleesFirst(t *testing.T) {
	info, g := build(t, paper.Sqrtest)
	order := g.PostOrder(info.Main)
	pos := map[string]int{}
	for i, r := range order {
		pos[r.Name] = i
	}
	if len(order) != len(info.Routines) {
		t.Fatalf("order covers %d of %d routines", len(order), len(info.Routines))
	}
	for caller, callees := range g.Callees {
		for _, callee := range callees {
			if pos[callee.Name] > pos[caller.Name] {
				t.Errorf("callee %s after caller %s in post-order", callee.Name, caller.Name)
			}
		}
	}
}

func TestRecursiveDetection(t *testing.T) {
	info, g := build(t, `
program t;
var x: integer;

function fact(n: integer): integer;
begin
  if n <= 1 then fact := 1 else fact := n * fact(n - 1);
end;

procedure plain;
begin
  x := fact(3);
end;

begin
  plain;
end.`)
	if !g.Recursive(info.LookupRoutine("fact")) {
		t.Error("fact not detected as recursive")
	}
	if g.Recursive(info.LookupRoutine("plain")) {
		t.Error("plain wrongly detected as recursive")
	}
}

func TestMutualRecursionDetection(t *testing.T) {
	info, g := build(t, `
program t;
function isodd(n: integer): boolean;
function iseven(n: integer): boolean;
begin
  if n = 0 then iseven := true else iseven := isodd(n - 1);
end;
begin
  if n = 0 then isodd := false else isodd := iseven(n - 1);
end;
begin
  writeln(isodd(3));
end.`)
	for _, name := range []string{"isodd", "iseven"} {
		if !g.Recursive(info.LookupRoutine(name)) {
			t.Errorf("%s not detected as recursive", name)
		}
	}
}

func TestParameterlessFunctionCallSite(t *testing.T) {
	info, g := build(t, `
program t;
var x: integer;
function five: integer;
begin
  five := 5;
end;
begin
  x := five;
end.`)
	five := info.LookupRoutine("five")
	if len(g.Callers[five]) != 1 {
		t.Fatalf("callers(five) = %v (ident-style call missed)", names(g.Callers[five]))
	}
}

func TestUnreachableRoutineInPostOrder(t *testing.T) {
	info, g := build(t, `
program t;
procedure unused;
begin
end;
begin
end.`)
	order := g.PostOrder(info.Main)
	found := false
	for _, r := range order {
		if r.Name == "unused" {
			found = true
		}
	}
	if !found {
		t.Error("unreachable routine missing from post-order")
	}
}
