package dataflow_test

import (
	"testing"
	"testing/quick"

	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/cfg"
	"gadt/internal/analysis/dataflow"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func analyzeRoutine(t *testing.T, src, routine string) (*sem.Info, *cfg.Graph, *dataflow.Result) {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	r := info.Main
	if routine != "" {
		r = info.LookupRoutine(routine)
		if r == nil {
			t.Fatalf("routine %s missing", routine)
		}
	}
	g := cfg.Build(info, r)
	se := sideeffect.Analyze(info, callgraph.Build(info))
	df := dataflow.ReachingDefs(info, g, se)
	return info, g, df
}

func findVar(info *sem.Info, r *sem.Routine, name string) *sem.VarSym {
	for ; r != nil; r = r.Parent {
		for _, v := range r.AllVars() {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

func TestStraightLineKills(t *testing.T) {
	info, g, df := analyzeRoutine(t, `
program t;
var x, y: integer;
begin
  x := 1;
  x := 2;
  y := x;
end.`, "")
	x := findVar(info, info.Main, "x")
	// At exit, only the second definition of x reaches.
	defs := df.ReachingAt(g.Exit, x)
	if len(defs) != 1 {
		t.Fatalf("defs of x at exit = %d, want 1", len(defs))
	}
	as, ok := defs[0].Node.Stmt.(*ast.AssignStmt)
	if !ok {
		t.Fatalf("def node = %v", defs[0].Node)
	}
	if lit, ok := as.Rhs.(*ast.IntLit); !ok || lit.Value != 2 {
		t.Errorf("reaching def is %v, want x := 2", as.Rhs)
	}
}

func TestBranchMerge(t *testing.T) {
	info, g, df := analyzeRoutine(t, `
program t;
var c, x: integer;
begin
  read(c);
  if c > 0 then
    x := 1
  else
    x := 2;
  c := x;
end.`, "")
	x := findVar(info, info.Main, "x")
	defs := df.ReachingAt(g.Exit, x)
	if len(defs) != 2 {
		t.Fatalf("defs of x at exit = %d, want 2 (both branches)", len(defs))
	}
}

func TestLoopCarried(t *testing.T) {
	info, g, df := analyzeRoutine(t, `
program t;
var i, s: integer;
begin
  s := 0;
  for i := 1 to 3 do
    s := s + i;
end.`, "")
	s := findVar(info, info.Main, "s")
	// Inside the loop, both s := 0 and s := s + i reach the use of s.
	var bodyNode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Stmt {
			if as, ok := n.Stmt.(*ast.AssignStmt); ok {
				if _, isBin := as.Rhs.(*ast.BinaryExpr); isBin {
					bodyNode = n
				}
			}
		}
	}
	if bodyNode == nil {
		t.Fatal("loop body assignment not found")
	}
	defs := df.ReachingAt(bodyNode, s)
	if len(defs) != 2 {
		t.Fatalf("defs of s at loop body = %d, want 2 (init + loop-carried)", len(defs))
	}
}

func TestEntryDefsForParamsAndNonlocals(t *testing.T) {
	info, g, df := analyzeRoutine(t, paper.GlobalSideEffects, "p")
	p := info.LookupRoutine("p")
	y := findVar(info, p, "y")
	x := findVar(info, info.Main, "x")
	// y (param) and x (non-local) have synthetic entry definitions.
	foundY, foundX := false, false
	for _, d := range df.Defs {
		if d.Node == g.Entry {
			if d.Var == y {
				foundY = true
			}
			if d.Var == x {
				foundX = true
			}
		}
	}
	if !foundY {
		t.Error("no entry def for parameter y")
	}
	if !foundX {
		t.Error("no entry def for non-local x")
	}
}

func TestCallDefsAreMay(t *testing.T) {
	info, g, df := analyzeRoutine(t, `
program t;
var x: integer;
procedure maybe(var v: integer);
begin
  if v > 0 then v := 0;
end;
begin
  x := 5;
  maybe(x);
  writeln(x);
end.`, "")
	x := findVar(info, info.Main, "x")
	// After the call, both x := 5 and the call's definition reach.
	defs := df.ReachingAt(g.Exit, x)
	if len(defs) != 2 {
		t.Fatalf("defs of x at exit = %d, want 2 (assign + may-def call)", len(defs))
	}
}

func TestPartialArrayUpdateIsMay(t *testing.T) {
	info, g, df := analyzeRoutine(t, `
program t;
type arr = array [1 .. 3] of integer;
var a: arr;
    i: integer;
begin
  a[1] := 10;
  read(i);
  a[i] := 20;
  writeln(a[1]);
end.`, "")
	a := findVar(info, info.Main, "a")
	defs := df.ReachingAt(g.Exit, a)
	// Entry def killed? No: element assignments are may-defs, so entry,
	// a[1] := 10 and a[i] := 20 all reach.
	if len(defs) != 3 {
		t.Fatalf("defs of a at exit = %d, want 3", len(defs))
	}
}

func TestFlowDeps(t *testing.T) {
	_, g, df := analyzeRoutine(t, `
program t;
var x, y: integer;
begin
  x := 1;
  y := x + 2;
end.`, "")
	var yAssign *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.Stmt {
			if as, ok := n.Stmt.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs.(*ast.Ident); ok && id.Name == "y" {
					yAssign = n
				}
			}
		}
	}
	deps := df.FlowDeps(yAssign)
	if len(deps) != 1 {
		t.Fatalf("flow deps of y := x + 2: %d, want 1", len(deps))
	}
}

// TestQuickBitSet checks BitSet operations against a map-based model.
func TestQuickBitSet(t *testing.T) {
	const n = 130 // cross the word boundary
	prop := func(aBits, bBits []uint8) bool {
		a, b := dataflow.NewBitSet(n), dataflow.NewBitSet(n)
		am, bm := map[int]bool{}, map[int]bool{}
		for _, x := range aBits {
			i := int(x) % n
			a.Set(i)
			am[i] = true
		}
		for _, x := range bBits {
			i := int(x) % n
			b.Set(i)
			bm[i] = true
		}
		u := a.Clone()
		u.UnionWith(b)
		d := a.Clone()
		d.DiffWith(b)
		for i := 0; i < n; i++ {
			if u.Has(i) != (am[i] || bm[i]) {
				return false
			}
			if d.Has(i) != (am[i] && !bm[i]) {
				return false
			}
			if a.Has(i) != am[i] { // Clone must not share storage
				return false
			}
		}
		if !a.Equal(a.Clone()) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// findStmtNode returns the CFG node for the first assignment to name.
func findAssign(g *cfg.Graph, name string) *cfg.Node {
	for _, n := range g.Nodes {
		if n.Kind == cfg.Stmt {
			if as, ok := n.Stmt.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs.(*ast.Ident); ok && id.Name == name {
					return n
				}
			}
		}
	}
	return nil
}

// TestSyntheticQueries drives SyntheticReaches / SyntheticOnly /
// DefinitelyAssigns through the three situations the lint checks
// distinguish: definitely-assigned, maybe-assigned, and never-assigned
// before a use.
func TestSyntheticQueries(t *testing.T) {
	info, g, df := analyzeRoutine(t, `
program t;
var g: integer;
procedure p(c: integer; var r: integer);
var a, b, u: integer;
begin
  a := 1;
  if c > 0 then
    b := 2;
  r := a + b + u;
end;
begin
  read(g);
  p(g, g);
  writeln(g);
end.`, "p")
	p := info.LookupRoutine("p")
	use := findAssign(g, "r")
	if use == nil {
		t.Fatal("r := ... not found")
	}
	tests := []struct {
		name                      string
		reaches, only, definitely bool
	}{
		{"a", false, false, true}, // assigned on every path
		{"b", true, false, false}, // assigned on one branch only
		{"u", true, true, false},  // never assigned
	}
	for _, tt := range tests {
		v := findVar(info, p, tt.name)
		if got := df.SyntheticReaches(use, v); got != tt.reaches {
			t.Errorf("SyntheticReaches(%s) = %v, want %v", tt.name, got, tt.reaches)
		}
		if got := df.SyntheticOnly(use, v); got != tt.only {
			t.Errorf("SyntheticOnly(%s) = %v, want %v", tt.name, got, tt.only)
		}
		if got := df.DefinitelyAssigns(v); got != tt.definitely {
			t.Errorf("DefinitelyAssigns(%s) = %v, want %v", tt.name, got, tt.definitely)
		}
	}
}

// TestLivenessDeadStore checks that an overwritten-before-read value is
// dead at its store while the surviving one is live.
func TestLivenessDeadStore(t *testing.T) {
	info, g, df := analyzeRoutine(t, `
program t;
var x, y: integer;
begin
  x := 1;
  x := 2;
  y := x;
  writeln(y);
end.`, "")
	x := findVar(info, info.Main, "x")
	live := df.Liveness()
	var first, second *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind != cfg.Stmt {
			continue
		}
		if as, ok := n.Stmt.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs.(*ast.Ident); ok && id.Name == "x" {
				if first == nil {
					first = n
				} else {
					second = n
				}
			}
		}
	}
	if first == nil || second == nil {
		t.Fatal("assignments to x not found")
	}
	if live.LiveOut(first, x) {
		t.Error("x := 1 should be dead (overwritten before any read)")
	}
	if !live.LiveOut(second, x) {
		t.Error("x := 2 should be live (read by y := x)")
	}
}
