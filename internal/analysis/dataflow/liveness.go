// Live-variable analysis over the CFG, the backward companion of
// reaching definitions. The lint layer uses it to detect dead stores:
// a must-definition whose variable is not live out of the defining node
// computes a value no execution can observe.
package dataflow

import (
	"gadt/internal/analysis/cfg"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// Live holds live-variable sets for one routine's CFG.
type Live struct {
	Graph *cfg.Graph
	// In is the set of variables live at node entry; Out at node exit.
	In  map[*cfg.Node]map[*sem.VarSym]bool
	Out map[*cfg.Node]map[*sem.VarSym]bool
}

// LiveOut reports whether v is live immediately after n.
func (l *Live) LiveOut(n *cfg.Node, v *sem.VarSym) bool { return l.Out[n][v] }

// Liveness computes live variables over the graph of r, reusing the
// per-node def/use sets already collected by ReachingDefs. Live at Exit
// are the routine's outputs (var/out parameters and the function result,
// recorded in UsesAt[Exit]) plus every non-local variable the routine
// defines: those values are visible to callers after the call returns.
func (r *Result) Liveness() *Live {
	g := r.Graph
	l := &Live{
		Graph: g,
		In:    make(map[*cfg.Node]map[*sem.VarSym]bool, len(g.Nodes)),
		Out:   make(map[*cfg.Node]map[*sem.VarSym]bool, len(g.Nodes)),
	}
	for _, n := range g.Nodes {
		l.In[n] = make(map[*sem.VarSym]bool)
		l.Out[n] = make(map[*sem.VarSym]bool)
	}

	// Boundary condition at Exit: declared outputs plus defined
	// non-locals (their final values escape to the caller's environment).
	exitLive := l.In[g.Exit]
	for _, v := range r.UsesAt[g.Exit] {
		exitLive[v] = true
	}
	for _, d := range r.Defs {
		if d.Synthetic {
			continue
		}
		if d.Var.Owner != g.Routine {
			exitLive[d.Var] = true
		}
	}

	// kills: variables whose whole value a node overwrites. Only must
	// definitions kill liveness; may definitions (partial updates, call
	// effects) leave the incoming value observable.
	kills := func(n *cfg.Node) []*sem.VarSym {
		var out []*sem.VarSym
		for _, d := range r.DefsAt[n] {
			if d.Must && !d.Synthetic {
				out = append(out, d.Var)
			}
		}
		return out
	}

	// Iterate to a fixpoint, walking nodes in reverse allocation order so
	// the common reducible case converges in a couple of sweeps.
	for changed := true; changed; {
		changed = false
		for i := len(g.Nodes) - 1; i >= 0; i-- {
			n := g.Nodes[i]
			out := l.Out[n]
			for _, s := range n.Succs {
				for v := range l.In[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := l.In[n]
			live := make(map[*sem.VarSym]bool, len(out))
			for v := range out {
				live[v] = true
			}
			for _, v := range kills(n) {
				delete(live, v)
			}
			for _, v := range r.UsesAt[n] {
				live[v] = true
			}
			for v := range live {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return l
}

// SyntheticReaches reports whether the synthetic initial definition of v
// reaches the entry of n — i.e. some path from Entry arrives at n without
// passing a real whole-variable assignment of v.
func (r *Result) SyntheticReaches(n *cfg.Node, v *sem.VarSym) bool {
	for _, d := range r.ReachingAt(n, v) {
		if d.Synthetic {
			return true
		}
	}
	return false
}

// SyntheticOnly reports whether every definition of v reaching the entry
// of node n is the synthetic Entry definition — i.e. no real assignment
// of v can reach n on any path.
func (r *Result) SyntheticOnly(n *cfg.Node, v *sem.VarSym) bool {
	defs := r.ReachingAt(n, v)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if !d.Synthetic {
			return false
		}
	}
	return true
}

// DefinitelyAssigns reports whether the routine assigns variable v on
// every path from Entry to Exit (the synthetic initial definition of v
// does not reach Exit). For a callee's var/out formal this is the
// interprocedural must-assign fact the lint layer's definite-assignment
// analysis consumes at call sites.
func (r *Result) DefinitelyAssigns(v *sem.VarSym) bool {
	for _, d := range r.ReachingAt(r.Graph.Exit, v) {
		if d.Synthetic {
			return false
		}
	}
	return true
}

// IsRoutineOutput reports whether v is an output of the graph's routine
// (var/out parameter or function result), i.e. a variable whose value at
// Exit is observable by the caller.
func IsRoutineOutput(g *cfg.Graph, v *sem.VarSym) bool {
	if v.Owner != g.Routine {
		return false
	}
	if v == g.Routine.Result {
		return true
	}
	return v.Kind == sem.ParamVar && v.Mode != ast.Value
}
