package debugger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"gadt/internal/assertion"
)

// This file implements replayable session journals: every oracle
// interaction of a debugging session is appended to a JSONL stream, and
// a ReplayOracle re-answers a later session from that stream with zero
// user interaction — any interactive bug report becomes a reproducible
// test case.
//
// Schema (one JSON object per line):
//
//	{"kind":"session","file":"bug.pas","strategy":"top-down","input":""}
//	{"kind":"query","seq":1,"node":3,"unit":"computs",
//	 "query":"computs(In y: 3, ...)?","verdict":"incorrect",
//	 "wrong_output":"r1","assertion":""}
//
// The session header is optional and informational; replay matches
// query entries by rendered query text (which encodes the node's unit,
// inputs and outputs), falling back to journal order, so journals
// survive strategy-independent reordering as long as the trace is
// deterministic.

// JournalHeader is the optional first line of a journal.
type JournalHeader struct {
	Kind     string `json:"kind"` // "session"
	File     string `json:"file,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Input    string `json:"input,omitempty"`
}

// JournalEntry is one recorded oracle interaction.
type JournalEntry struct {
	Kind        string `json:"kind"` // "query"
	Seq         int    `json:"seq"`
	Node        int64  `json:"node"`
	Unit        string `json:"unit"`
	Query       string `json:"query"`
	Verdict     string `json:"verdict"`
	WrongOutput string `json:"wrong_output,omitempty"`
	Assertion   string `json:"assertion,omitempty"`
}

// JournalWriter appends session entries to a JSONL stream.
type JournalWriter struct {
	w       io.Writer
	entries int
}

// NewJournalWriter wraps w.
func NewJournalWriter(w io.Writer) *JournalWriter {
	return &JournalWriter{w: w}
}

// WriteHeader emits the session header line.
func (j *JournalWriter) WriteHeader(file, strategy, input string) error {
	return j.writeJSON(JournalHeader{Kind: "session", File: file, Strategy: strategy, Input: input})
}

// Record appends one query/answer pair.
func (j *JournalWriter) Record(q *Query, a Answer) error {
	j.entries++
	e := JournalEntry{
		Kind:        "query",
		Seq:         j.entries,
		Node:        q.Node.ID,
		Unit:        q.Node.Unit.Name,
		Query:       q.Text,
		Verdict:     a.Verdict.Key(),
		WrongOutput: a.WrongOutput,
	}
	if a.Assertion != nil {
		e.Assertion = a.Assertion.Text
	}
	return j.writeJSON(e)
}

// Entries reports the number of query entries written.
func (j *JournalWriter) Entries() int { return j.entries }

func (j *JournalWriter) writeJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = j.w.Write(append(b, '\n'))
	return err
}

// JournalingOracle records every answer of the inner oracle. Failed
// interactions (input closed, budget errors) are not journaled.
type JournalingOracle struct {
	Inner   Oracle
	Journal *JournalWriter
}

// Ask implements Oracle.
func (o *JournalingOracle) Ask(q *Query) (Answer, error) {
	a, err := o.Inner.Ask(q)
	if err != nil {
		return a, err
	}
	if jerr := o.Journal.Record(q, a); jerr != nil {
		return a, fmt.Errorf("debugger: journal write failed: %w", jerr)
	}
	return a, nil
}

// Journal is a loaded session journal.
type Journal struct {
	Header  *JournalHeader // nil when the stream had no header line
	Entries []JournalEntry
}

// LoadJournal parses and validates a JSONL journal stream. The journal
// is the wire format of gadt-serve as well as the -replay input, so the
// loader is strict: every non-blank line must be a JSON object whose
// "kind" is either "session" (at most once, before any query) or
// "query" with a recognized verdict. Anything else — truncated JSON
// from a crashed writer, bare nulls, unknown kinds, shell output
// appended after the last entry — is an error, not a skip.
func LoadJournal(r io.Reader) (*Journal, error) {
	j := &Journal{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var probe struct {
			Kind *string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", lineNo, err)
		}
		if probe.Kind == nil {
			return nil, fmt.Errorf("journal line %d: not a journal record (missing \"kind\")", lineNo)
		}
		switch *probe.Kind {
		case "session":
			var h JournalHeader
			if err := json.Unmarshal([]byte(line), &h); err != nil {
				return nil, fmt.Errorf("journal line %d: %w", lineNo, err)
			}
			if j.Header != nil {
				return nil, fmt.Errorf("journal line %d: duplicate session header", lineNo)
			}
			if len(j.Entries) > 0 {
				return nil, fmt.Errorf("journal line %d: session header after query entries", lineNo)
			}
			j.Header = &h
		case "query":
			var e JournalEntry
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				return nil, fmt.Errorf("journal line %d: %w", lineNo, err)
			}
			if _, ok := ParseVerdict(e.Verdict); !ok && e.Assertion == "" {
				return nil, fmt.Errorf("journal line %d: unknown verdict %q", lineNo, e.Verdict)
			}
			j.Entries = append(j.Entries, e)
		default:
			return nil, fmt.Errorf("journal line %d: unknown record kind %q", lineNo, *probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return j, nil
}

// ReplayOracle answers queries from a recorded journal, deterministic
// and interaction-free. Matching is by exact query text — the text
// encodes unit name, input values and output values, so a match implies
// the same invocation behavior — consuming each entry at most once;
// when several invocations render identically they are consumed in
// journal order. A query absent from the journal is an error: replay
// only makes sense when trace and traversal are reproducible.
type ReplayOracle struct {
	// DB, when non-nil, receives assertions stored during the recorded
	// session, mirroring the InteractiveOracle's side effect.
	DB *assertion.DB

	byText map[string][]int // query text -> entry indexes, FIFO
	all    []JournalEntry
}

// NewReplayOracle indexes a loaded journal.
func NewReplayOracle(j *Journal) *ReplayOracle {
	o := &ReplayOracle{byText: make(map[string][]int), all: j.Entries}
	for i, e := range j.Entries {
		o.byText[e.Query] = append(o.byText[e.Query], i)
	}
	return o
}

// Remaining reports how many journal entries have not been consumed.
func (o *ReplayOracle) Remaining() int {
	total := 0
	for _, idx := range o.byText {
		total += len(idx)
	}
	return total
}

// Ask implements Oracle.
func (o *ReplayOracle) Ask(q *Query) (Answer, error) {
	idx, ok := o.byText[q.Text]
	if !ok || len(idx) == 0 {
		return Answer{}, fmt.Errorf("debugger: replay divergence: journal has no answer for query %q (re-record the session?)", q.Text)
	}
	e := o.all[idx[0]]
	if len(idx) == 1 {
		delete(o.byText, q.Text)
	} else {
		o.byText[q.Text] = idx[1:]
	}
	if e.Assertion != "" {
		a, err := assertion.Parse(e.Unit, e.Assertion)
		if err != nil {
			return Answer{}, fmt.Errorf("debugger: journal assertion %q: %w", e.Assertion, err)
		}
		if o.DB != nil {
			o.DB.Add(a)
		}
		return Answer{Assertion: a}, nil
	}
	v, _ := ParseVerdict(e.Verdict)
	return Answer{Verdict: v, WrongOutput: e.WrongOutput}, nil
}
