package debugger_test

import (
	"strings"
	"testing"

	"gadt/internal/assertion"
	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/paper"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/slicing/dynamic"
	"gadt/internal/transform"
)

func analyze(t *testing.T, src string) *sem.Info {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func traceIt(t *testing.T, src string) (*exectree.TraceResult, *dynamic.Recorder) {
	t.Helper()
	info := analyze(t, src)
	rec := dynamic.NewRecorder(info)
	res := exectree.Trace(info, "", rec)
	if res.Err != nil {
		t.Fatalf("trace: %v", res.Err)
	}
	return res, rec
}

// TestSection3Session reproduces the paper's Section 3 interaction:
// P? no, Q? yes, R? no → error localized inside the body of R.
func TestSection3Session(t *testing.T) {
	res, _ := traceIt(t, paper.PQR)
	oracle := &debugger.ScriptedOracle{
		ByUnit: map[string]debugger.Answer{
			"p": {Verdict: debugger.Incorrect},
			"q": {Verdict: debugger.Correct},
			"r": {Verdict: debugger.Incorrect},
		},
	}
	sess := debugger.New(res.Tree, oracle, debugger.Options{})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "r" {
		t.Fatalf("bug = %v, want r", out.Bug)
	}
	if out.Questions != 3 {
		t.Errorf("questions = %d, want 3 (p, q, r)", out.Questions)
	}
	if !strings.Contains(out.Reason, "r") {
		t.Errorf("reason = %q", out.Reason)
	}
}

func TestPureADTopDownSqrtest(t *testing.T) {
	res, _ := traceIt(t, paper.Sqrtest)
	oracle := &debugger.IntendedOracle{Ref: analyze(t, paper.SqrtestFixed)}
	sess := debugger.New(res.Tree, oracle, debugger.Options{Strategy: debugger.TopDown})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement", out.Bug)
	}
	// Pure top-down: sqrtest, arrsum, computs, comput1, partialsums,
	// sum1, sum2, decrement.
	if out.Questions != 8 {
		t.Errorf("questions = %d, want 8\n%s", out.Questions, transcript(out))
	}
}

func TestSlicingReducesQuestions(t *testing.T) {
	res, rec := traceIt(t, paper.Sqrtest)
	ref := analyze(t, paper.SqrtestFixed)

	pure := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{})
	pureOut, err := pure.Run()
	if err != nil {
		t.Fatal(err)
	}

	sliced := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{
		Slicing: true, Recorder: rec,
	})
	slicedOut, err := sliced.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !slicedOut.Localized() || slicedOut.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement", slicedOut.Bug)
	}
	if slicedOut.Questions >= pureOut.Questions {
		t.Errorf("slicing did not reduce questions: %d vs %d", slicedOut.Questions, pureOut.Questions)
	}
	if slicedOut.Questions != 7 {
		t.Errorf("questions with slicing = %d, want 7\n%s", slicedOut.Questions, transcript(slicedOut))
	}
	if slicedOut.Slices == 0 {
		t.Error("no slice events recorded")
	}
}

// fakeTests simulates the test-case lookup: arrsum is covered by a
// passing test report.
type fakeTests struct{}

func (fakeTests) Judge(n *exectree.Node) debugger.Verdict {
	if n.Unit.Name == "arrsum" {
		return debugger.Correct
	}
	return debugger.DontKnow
}

// TestSection8GADTSession: with test lookup for arrsum plus slicing, the
// arrsum query is never shown to the user (the paper's Step 1) and the
// bug is localized in decrement with 6 user interactions.
func TestSection8GADTSession(t *testing.T) {
	res, rec := traceIt(t, paper.Sqrtest)
	ref := analyze(t, paper.SqrtestFixed)
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{
		Slicing: true, Recorder: rec, Tests: fakeTests{},
	})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement", out.Bug)
	}
	if out.Questions != 6 {
		t.Errorf("questions = %d, want 6\n%s", out.Questions, transcript(out))
	}
	if out.ByTests != 1 {
		t.Errorf("test-answered = %d, want 1 (arrsum)", out.ByTests)
	}
	// The arrsum query must not appear among user questions.
	for _, ev := range out.Transcript {
		if ev.Kind == debugger.EvQuestion && ev.Node.Unit.Name == "arrsum" {
			t.Error("arrsum was asked despite the test database")
		}
	}
}

func TestDivideAndQuery(t *testing.T) {
	res, _ := traceIt(t, paper.Sqrtest)
	ref := analyze(t, paper.SqrtestFixed)
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{
		Strategy: debugger.DivideAndQuery,
	})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement\n%s", out.Bug, transcript(out))
	}
	if out.Questions > 8 {
		t.Errorf("divide-and-query asked %d questions, expected <= 8", out.Questions)
	}
}

func TestBottomUp(t *testing.T) {
	res, _ := traceIt(t, paper.Sqrtest)
	ref := analyze(t, paper.SqrtestFixed)
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{
		Strategy: debugger.BottomUp,
	})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement\n%s", out.Bug, transcript(out))
	}
}

func TestAssertionsAnswerQueries(t *testing.T) {
	res, _ := traceIt(t, paper.Sqrtest)
	db := assertion.NewDB()
	if err := db.AddText("arrsum", "b = sum(a, n)"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddText("increment", "result = y + 1"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddText("decrement", "result = y - 1"); err != nil {
		t.Fatal(err)
	}
	ref := analyze(t, paper.SqrtestFixed)
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{
		Assertions: db,
	})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement", out.Bug)
	}
	if out.ByAssertions < 2 {
		t.Errorf("assertion-answered = %d, want >= 2 (arrsum + decrement)", out.ByAssertions)
	}
	// decrement's violated assertion answers the final query, so the
	// user is asked strictly fewer than the pure 8.
	if out.Questions >= 8 {
		t.Errorf("questions = %d, want < 8\n%s", out.Questions, transcript(out))
	}
}

func TestMemoizationAvoidsRepeatQuestions(t *testing.T) {
	// f is called twice with the same arguments; the second query must
	// be answered from memory.
	res, _ := traceIt(t, `
program t;
var a, b: integer;

function f(x: integer): integer;
begin
  f := x * 2; (* bug: should be x * 3 *)
end;

procedure p1(var r: integer);
begin
  r := f(5);
end;

procedure p2(var r: integer);
begin
  r := f(5);
end;

begin
  p1(a);
  p2(b);
  writeln(a, b);
end.`)
	ref := analyze(t, `
program t;
var a, b: integer;

function f(x: integer): integer;
begin
  f := x * 3;
end;

procedure p1(var r: integer);
begin
  r := f(5);
end;

procedure p2(var r: integer);
begin
  r := f(5);
end;

begin
  p1(a);
  p2(b);
  writeln(a, b);
end.`)
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "f" {
		t.Fatalf("bug = %v, want f", out.Bug)
	}
	// p1? no, f? no → localized; p2/f never re-asked.
	if out.Questions != 2 {
		t.Errorf("questions = %d, want 2\n%s", out.Questions, transcript(out))
	}
}

func TestTransformedProgramDebugging(t *testing.T) {
	// Full pipeline: transform buggy and reference programs, trace the
	// transformed buggy one, debug with slicing.
	buggy := analyze(t, paper.Sqrtest)
	tbuggy, err := transform.Apply(buggy)
	if err != nil {
		t.Fatal(err)
	}
	fixed := analyze(t, paper.SqrtestFixed)
	tfixed, err := transform.Apply(fixed)
	if err != nil {
		t.Fatal(err)
	}
	rec := dynamic.NewRecorder(tbuggy.Info)
	res := exectree.Trace(tbuggy.Info, "", rec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: tfixed.Info}, debugger.Options{
		Slicing: true, Recorder: rec, Meta: tbuggy,
	})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement\n%s", out.Bug, transcript(out))
	}
}

func TestLoopUnitQueryRendering(t *testing.T) {
	info := analyze(t, paper.ArrsumProgram)
	tres, err := transform.Apply(info)
	if err != nil {
		t.Fatal(err)
	}
	res := traceTransformed(t, tres, "2 ")
	// Find a loop-unit query text via a scripted session that answers
	// everything correct (inconclusive outcome is fine).
	oracle := &capturingOracle{}
	sess := debugger.New(res.Tree, oracle, debugger.Options{Meta: tres})
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	var loopQuery string
	for _, q := range oracle.queries {
		if strings.Contains(q, "for-loop in arrsum") {
			loopQuery = q
		}
	}
	if loopQuery == "" {
		t.Fatalf("no loop-unit query rendered; queries:\n%s", strings.Join(oracle.queries, "\n"))
	}
	if !strings.Contains(loopQuery, "iteration") {
		t.Errorf("loop query lacks iteration info: %q", loopQuery)
	}
}

func traceTransformed(t *testing.T, tres *transform.Result, input string) *exectree.TraceResult {
	t.Helper()
	res := exectree.Trace(tres.Info, input)
	if res.Err != nil {
		t.Fatalf("trace: %v", res.Err)
	}
	return res
}

type capturingOracle struct {
	queries []string
}

func (o *capturingOracle) Ask(q *debugger.Query) (debugger.Answer, error) {
	o.queries = append(o.queries, q.Text)
	// Answer "incorrect" down one spine to force traversal, then stop.
	return debugger.Answer{Verdict: debugger.Incorrect}, nil
}

// TestExitConditionRendering: the non-local goto appears in queries as
// one of the unit's results ("Exit: goto label 9 in p"), per Section 6.1.
func TestExitConditionRendering(t *testing.T) {
	info := analyze(t, paper.GlobalGoto)
	tres, err := transform.Apply(info)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(tres.Info, "")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	oracle := &capturingOracle{}
	sess := debugger.New(res.Tree, oracle, debugger.Options{Meta: tres})
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	var exitQuery string
	for _, q := range oracle.queries {
		if strings.Contains(q, "Exit:") {
			exitQuery = q
		}
	}
	if exitQuery == "" {
		t.Fatalf("no exit-condition query rendered; queries:\n%s", strings.Join(oracle.queries, "\n"))
	}
	if !strings.Contains(exitQuery, "goto label 9 in p") {
		t.Errorf("exit rendering = %q, want decoded label", exitQuery)
	}
}

// TestGlobalDisplayedAsIn: a global passed by reference for alias safety
// still renders as an In parameter (its logical mode).
func TestGlobalDisplayedAsIn(t *testing.T) {
	info := analyze(t, paper.GlobalSideEffects)
	tres, err := transform.Apply(info)
	if err != nil {
		t.Fatal(err)
	}
	res := exectree.Trace(tres.Info, "")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	oracle := &capturingOracle{}
	sess := debugger.New(res.Tree, oracle, debugger.Options{Meta: tres})
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	var pQuery string
	for _, q := range oracle.queries {
		if strings.HasPrefix(q, "p(") {
			pQuery = q
		}
	}
	if pQuery == "" {
		t.Fatalf("no query for p; got %v", oracle.queries)
	}
	// x is REF-only: displayed as In with its entry value (10) and no
	// Out row; z is an Out global (y aliases x, so z = 11 - 11 = 0).
	if !strings.Contains(pQuery, "In x: 10") {
		t.Errorf("query %q lacks 'In x: 10' (logical in-mode display)", pQuery)
	}
	if strings.Contains(pQuery, "Out x:") {
		t.Errorf("query %q shows an Out row for the logical-in global x", pQuery)
	}
	if !strings.Contains(pQuery, "Out z: 0") {
		t.Errorf("query %q lacks 'Out z: 0'", pQuery)
	}
}

func TestQueryTextMatchesPaperStyle(t *testing.T) {
	res, _ := traceIt(t, paper.Sqrtest)
	oracle := &capturingOracle{}
	sess := debugger.New(res.Tree, oracle, debugger.Options{})
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, q := range oracle.queries {
		if q == "sqrtest(In ary: [1, 2], In n: 2, Out isok: false)?" {
			found = true
		}
	}
	if !found {
		t.Errorf("paper-style query not found; got:\n%s", strings.Join(oracle.queries, "\n"))
	}
}

func TestAllCorrectProgramBehavior(t *testing.T) {
	res, _ := traceIt(t, paper.SqrtestFixed)
	ref := analyze(t, paper.SqrtestFixed)
	// With the symptom premise (default), a fully correct tree pins the
	// "bug" on the program body — the only place left.
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || !out.Bug.IsRoot() {
		t.Errorf("bug = %v, want the program body under the symptom premise", out.Bug)
	}
	// Without the premise the search is inconclusive.
	sess2 := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{NoRootAssumption: true})
	out2, err := sess2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out2.Localized() {
		t.Errorf("localized %v in a correct program without the premise", out2.Bug.Unit.Name)
	}
}

func TestQuestionBudget(t *testing.T) {
	res, _ := traceIt(t, paper.Sqrtest)
	ref := analyze(t, paper.SqrtestFixed)
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{MaxQuestions: 2})
	_, err := sess.Run()
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v, want question-budget error", err)
	}
}

func TestInteractiveOracle(t *testing.T) {
	res, _ := traceIt(t, paper.PQR)
	db := assertion.NewDB()
	input := strings.NewReader("no\nzzz\nyes\nn d\n")
	var outBuf strings.Builder
	oracle := &debugger.InteractiveOracle{In: input, Out: &outBuf, DB: db}
	sess := debugger.New(res.Tree, oracle, debugger.Options{Assertions: db})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "r" {
		t.Fatalf("bug = %v, want r", out.Bug)
	}
	if !strings.Contains(outBuf.String(), "p(In a: 5, In c: 7, Out b: 10, Out d: 6)?") {
		t.Errorf("prompt missing:\n%s", outBuf.String())
	}
	// The invalid reply "zzz" must produce a usage hint.
	if !strings.Contains(outBuf.String(), "reply y, n") {
		t.Errorf("no usage hint after invalid input:\n%s", outBuf.String())
	}
}

func TestDontKnowSkipsSubtree(t *testing.T) {
	// The user cannot judge computs; top-down then treats it as
	// not-incorrect and moves on — with everything else correct the
	// search falls back to the symptom premise (bug in the parent body).
	res, _ := traceIt(t, paper.Sqrtest)
	oracle := &debugger.ScriptedOracle{
		ByUnit: map[string]debugger.Answer{
			"sqrtest": {Verdict: debugger.Incorrect},
			"computs": {Verdict: debugger.DontKnow},
		},
		Default: debugger.Answer{Verdict: debugger.Correct},
	}
	sess := debugger.New(res.Tree, oracle, debugger.Options{})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "sqrtest" {
		t.Errorf("bug = %v, want sqrtest (computs unjudgable)", out.Bug)
	}
}

func TestScriptedOracleByText(t *testing.T) {
	res, _ := traceIt(t, paper.PQR)
	oracle := &debugger.ScriptedOracle{
		ByText: map[string]debugger.Answer{
			"p(In a: 5, In c: 7, Out b: 10, Out d: 6)?": {Verdict: debugger.Incorrect},
			"q(In a: 5, Out b: 10)?":                    {Verdict: debugger.Correct},
			"r(In c: 7, Out d: 6)?":                     {Verdict: debugger.Incorrect, WrongOutput: "d"},
		},
	}
	sess := debugger.New(res.Tree, oracle, debugger.Options{})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "r" {
		t.Errorf("bug = %v", out.Bug)
	}
}

func TestDivideAndQueryWithSlicing(t *testing.T) {
	res, rec := traceIt(t, paper.Sqrtest)
	ref := analyze(t, paper.SqrtestFixed)
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{
		Strategy: debugger.DivideAndQuery,
		Slicing:  true, Recorder: rec,
	})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement\n%s", out.Bug, transcript(out))
	}
}

func TestBottomUpWithSlicing(t *testing.T) {
	res, rec := traceIt(t, paper.Sqrtest)
	ref := analyze(t, paper.SqrtestFixed)
	sess := debugger.New(res.Tree, &debugger.IntendedOracle{Ref: ref}, debugger.Options{
		Strategy: debugger.BottomUp,
		Slicing:  true, Recorder: rec,
	})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "decrement" {
		t.Fatalf("bug = %v, want decrement", out.Bug)
	}
}

func TestVerdictStrings(t *testing.T) {
	if debugger.Correct.String() != "yes" || debugger.Incorrect.String() != "no" ||
		debugger.DontKnow.String() != "don't know" {
		t.Error("verdict strings")
	}
	if debugger.TopDown.String() != "top-down" ||
		debugger.DivideAndQuery.String() != "divide-and-query" ||
		debugger.BottomUp.String() != "bottom-up" {
		t.Error("strategy strings")
	}
}

func transcript(o *debugger.Outcome) string {
	var b strings.Builder
	for _, ev := range o.Transcript {
		b.WriteString(ev.Kind.String())
		b.WriteString(": ")
		b.WriteString(ev.Text)
		if ev.Kind == debugger.EvQuestion || ev.Kind == debugger.EvMemo {
			b.WriteString(" -> ")
			b.WriteString(ev.Verdict.String())
			if ev.Detail != "" {
				b.WriteString(" (" + ev.Detail + ")")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
