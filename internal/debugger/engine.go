package debugger

import (
	"fmt"
	"sort"
	"strings"

	"gadt/internal/assertion"
	"gadt/internal/exectree"
	"gadt/internal/obs"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/slicing/dynamic"
	"gadt/internal/transform"
)

// Strategy selects the execution-tree traversal order. The paper notes
// the method is traversal-agnostic ("generally it doesn't matter which
// traversal method is used"); the traversals differ only in how many
// questions they spend. WeightedDivideAndQuery is the Insa–Silva
// refinement ("Optimal Divide and Query"): nodes are weighted by
// execution cost and the query minimizing the worst-case remaining
// suspect weight is selected.
type Strategy int

const (
	TopDown Strategy = iota
	DivideAndQuery
	BottomUp
	WeightedDivideAndQuery
)

func (s Strategy) String() string {
	switch s {
	case DivideAndQuery:
		return "divide-and-query"
	case BottomUp:
		return "bottom-up"
	case WeightedDivideAndQuery:
		return "weighted-dq"
	}
	return "top-down"
}

// ParseStrategy maps the CLI/wire spellings (and their aliases) onto
// strategies; it reports whether the input was recognized. The empty
// string is the default traversal, top-down.
func ParseStrategy(s string) (Strategy, bool) {
	switch s {
	case "", "top-down":
		return TopDown, true
	case "divide", "divide-and-query":
		return DivideAndQuery, true
	case "weighted", "weighted-divide", "weighted-dq", "weighted-divide-and-query":
		return WeightedDivideAndQuery, true
	case "bottom-up":
		return BottomUp, true
	}
	return TopDown, false
}

// Strategies lists every traversal in report order.
func Strategies() []Strategy {
	return []Strategy{TopDown, DivideAndQuery, WeightedDivideAndQuery, BottomUp}
}

// TestLookup is the debugging-phase interface to the category-partition
// test database (Section 5.3.2). Implemented by package tgen.
type TestLookup interface {
	// Judge classifies the call and consults the test reports: Correct
	// when a matching frame has a passing report, Incorrect when the
	// matching frame's report failed, DontKnow otherwise.
	Judge(n *exectree.Node) Verdict
}

// Options configures a debugging session.
type Options struct {
	Strategy Strategy

	// Assertions, when non-nil, is consulted before the test database
	// and the oracle; assertions given by the oracle during the session
	// are added to it.
	Assertions *assertion.DB

	// Tests, when non-nil, is consulted before the oracle.
	Tests TestLookup

	// Slicing enables execution-tree pruning on "error on output X"
	// answers. Requires Recorder.
	Slicing  bool
	Recorder *dynamic.Recorder

	// Meta, when non-nil, improves query rendering for transformed
	// programs (logical parameter modes, loop-unit presentation,
	// exit-condition decoding).
	Meta *transform.Result

	// MaxQuestions bounds user interactions (0 = 10000).
	MaxQuestions int

	// Weights, when non-nil, overrides the per-node weight used by
	// WeightedDivideAndQuery (values < 1 are clamped to 1). When nil the
	// weighted strategy uses 1 + Node.Steps — the invocation's recorded
	// execution cost. Plain DivideAndQuery always weighs every node 1.
	Weights func(n *exectree.Node) int64

	// Hints maps unit names to static suspiciousness scores (package
	// lint's Hints aggregation: routines carrying dataflow anomalies
	// score higher). Traversals ask about higher-scored units first —
	// top-down and bottom-up reorder sibling visits, divide-and-query
	// breaks weight ties toward the suspicious node. Hints only reorder
	// questions; the verdicts still decide where the bug is localized.
	Hints map[string]float64

	// Metrics, when non-nil, receives the session's observability
	// counters: debugger.oracle.queries (plus the labeled
	// debugger.oracle.queries.verdict{verdict=...} and
	// debugger.oracle.queries.strategy{strategy=...} breakdowns),
	// debugger.answers.{memo,assertions,tests}, debugger.slices, the
	// debugger.slice.kept.nodes gauge, and the sessions.active gauge.
	Metrics *obs.Registry

	// NoRootAssumption disables the premise that the program block
	// itself misbehaved. By default the root is assumed incorrect (the
	// user invoked the debugger because of an observable symptom), so
	// when every child of the program block is judged correct the bug is
	// localized in the main program body — the paper's answer to the
	// misnamed-argument question in Section 5.3.3. With the assumption
	// disabled such a search ends inconclusive instead.
	NoRootAssumption bool
}

// EventKind classifies transcript entries.
type EventKind int

const (
	EvQuestion  EventKind = iota // answered by the oracle (a user interaction)
	EvMemo                       // answered from remembered answers
	EvAssertion                  // answered by the assertion database
	EvTest                       // answered by the test-case lookup
	EvSlice                      // tree sliced on a flagged output
	EvLocalized                  // bug localized
)

func (k EventKind) String() string {
	switch k {
	case EvMemo:
		return "memo"
	case EvAssertion:
		return "assertion"
	case EvTest:
		return "test-db"
	case EvSlice:
		return "slice"
	case EvLocalized:
		return "localized"
	}
	return "question"
}

// Event is one transcript entry.
type Event struct {
	Kind    EventKind
	Node    *exectree.Node
	Text    string
	Verdict Verdict
	Detail  string
}

// Outcome is the result of a session.
type Outcome struct {
	// Bug is the unit invocation the error was localized in; nil when
	// the search was inconclusive (e.g. everything judged correct).
	Bug *exectree.Node
	// Reason explains the localization.
	Reason string

	// Interaction statistics.
	Questions    int // oracle interactions
	ByMemo       int
	ByAssertions int
	ByTests      int
	Slices       int

	Transcript []Event
}

// Localized reports whether a bug was found.
func (o *Outcome) Localized() bool { return o.Bug != nil }

// Session is one debugging run over an execution tree.
type Session struct {
	Tree   *exectree.Tree
	Oracle Oracle
	Opts   Options

	view map[*exectree.Node]bool // nil = full tree
	memo map[string]Answer
	out  *Outcome

	// Instrument handles resolved once at session start so judge — the
	// per-question hot path — never takes the registry lookup lock.
	mQueries    *obs.Counter
	mByVerdict  *obs.CounterVec
	mByStrategy *obs.Counter
	mMemo       *obs.Counter
	mAssertions *obs.Counter
	mTests      *obs.Counter
}

// New prepares a session.
func New(tree *exectree.Tree, oracle Oracle, opts Options) *Session {
	if opts.MaxQuestions <= 0 {
		opts.MaxQuestions = 10000
	}
	m := opts.Metrics
	return &Session{
		Tree:   tree,
		Oracle: oracle,
		Opts:   opts,
		memo:   make(map[string]Answer),
		out:    &Outcome{},

		mQueries:    m.Counter("debugger.oracle.queries"),
		mByVerdict:  m.CounterVec("debugger.oracle.queries.verdict", "verdict"),
		mByStrategy: m.CounterVec("debugger.oracle.queries.strategy", "strategy").With(opts.Strategy.String()),
		mMemo:       m.Counter("debugger.answers.memo"),
		mAssertions: m.Counter("debugger.answers.assertions"),
		mTests:      m.Counter("debugger.answers.tests"),
	}
}

// kept reports whether n survives the current view.
func (s *Session) kept(n *exectree.Node) bool {
	return s.view == nil || s.view[n]
}

// children returns n's children retained by the current view, most
// suspicious first when hints are present (stable otherwise: execution
// order).
func (s *Session) children(n *exectree.Node) []*exectree.Node {
	var out []*exectree.Node
	for _, c := range n.Children {
		if s.kept(c) {
			out = append(out, c)
		}
	}
	if len(s.Opts.Hints) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			return s.hintOf(out[i]) > s.hintOf(out[j])
		})
	}
	return out
}

// hintOf returns the static suspiciousness of n's unit. Loop units
// inherit the score of the routine their loop was extracted from.
func (s *Session) hintOf(n *exectree.Node) float64 {
	if h, ok := s.Opts.Hints[n.Unit.Name]; ok {
		return h
	}
	if s.Opts.Meta != nil {
		if u, ok := s.Opts.Meta.Units[n.Unit.Name]; ok && u.Kind == transform.LoopUnit {
			return s.Opts.Hints[u.RoutineName]
		}
	}
	return 0
}

// subtreeSize counts retained nodes in n's subtree (including n).
func (s *Session) subtreeSize(n *exectree.Node) int {
	if !s.kept(n) {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += s.subtreeSize(c)
	}
	return total
}

func (s *Session) record(ev Event) {
	s.out.Transcript = append(s.out.Transcript, ev)
}

// judge determines the verdict for a node, consulting (in order)
// remembered answers, the assertion database, the test-case lookup, and
// finally the oracle. Section 5.3.1: "Before interacting with the user,
// the pure algorithmic debugger checks with two existing sources of
// information."
func (s *Session) judge(n *exectree.Node) (Answer, error) {
	q := s.query(n)
	if a, ok := s.memo[q.Text]; ok {
		s.out.ByMemo++
		s.mMemo.Inc()
		s.record(Event{Kind: EvMemo, Node: n, Text: q.Text, Verdict: a.Verdict})
		return a, nil
	}
	if db := s.Opts.Assertions; db != nil {
		switch db.Judge(n) {
		case assertion.Holds:
			a := Answer{Verdict: Correct}
			s.memo[q.Text] = a
			s.out.ByAssertions++
			s.mAssertions.Inc()
			s.record(Event{Kind: EvAssertion, Node: n, Text: q.Text, Verdict: Correct})
			return a, nil
		case assertion.Violated:
			a := Answer{Verdict: Incorrect}
			s.memo[q.Text] = a
			s.out.ByAssertions++
			s.mAssertions.Inc()
			s.record(Event{Kind: EvAssertion, Node: n, Text: q.Text, Verdict: Incorrect})
			return a, nil
		}
	}
	if tl := s.Opts.Tests; tl != nil {
		switch tl.Judge(n) {
		case Correct:
			a := Answer{Verdict: Correct}
			s.memo[q.Text] = a
			s.out.ByTests++
			s.mTests.Inc()
			s.record(Event{Kind: EvTest, Node: n, Text: q.Text, Verdict: Correct})
			return a, nil
		case Incorrect:
			a := Answer{Verdict: Incorrect}
			s.memo[q.Text] = a
			s.out.ByTests++
			s.mTests.Inc()
			s.record(Event{Kind: EvTest, Node: n, Text: q.Text, Verdict: Incorrect})
			return a, nil
		}
	}
	if s.out.Questions >= s.Opts.MaxQuestions {
		return Answer{Verdict: DontKnow}, fmt.Errorf("debugger: question budget (%d) exhausted", s.Opts.MaxQuestions)
	}
	a, err := s.Oracle.Ask(q)
	if err != nil {
		return a, err
	}
	s.out.Questions++
	// An assertion given as the answer is stored and evaluated now. The
	// engine owns the insertion — every oracle (interactive, scripted,
	// HTTP, journal replay) funnels through here, and the DB de-dups, so
	// an oracle that also writes to the same DB is harmless.
	if a.Assertion != nil {
		if s.Opts.Assertions == nil {
			s.Opts.Assertions = assertion.NewDB()
		}
		s.Opts.Assertions.Add(a.Assertion)
		switch a.Assertion.Eval(assertion.EnvFor(n)) {
		case assertion.Holds:
			a.Verdict = Correct
		case assertion.Violated:
			a.Verdict = Incorrect
		}
	}
	s.memo[q.Text] = a
	s.mQueries.Inc()
	s.mByVerdict.With(a.Verdict.Key()).Inc()
	s.mByStrategy.Inc()
	detail := ""
	if a.WrongOutput != "" {
		detail = "error on output " + a.WrongOutput
	}
	s.record(Event{Kind: EvQuestion, Node: n, Text: q.Text, Verdict: a.Verdict, Detail: detail})
	return a, nil
}

// applySlice prunes the view to the dynamic slice on (n, output); it
// reports whether the view actually changed (so divide-and-query knows
// to rebuild its weight memo).
func (s *Session) applySlice(n *exectree.Node, output string) bool {
	if !s.Opts.Slicing || s.Opts.Recorder == nil || output == "" {
		return false
	}
	sl, err := s.Opts.Recorder.SliceOnOutput(s.Tree, n, output)
	if err != nil {
		return false // conservatively keep the full view
	}
	if s.view == nil {
		s.view = sl.Kept
	} else {
		merged := make(map[*exectree.Node]bool)
		for k := range s.view {
			if sl.Kept[k] {
				merged[k] = true
			}
		}
		s.view = merged
	}
	s.out.Slices++
	s.Opts.Metrics.Counter("debugger.slices").Inc()
	s.Opts.Metrics.Gauge("debugger.slice.kept.nodes").Set(int64(len(s.view)))
	before := s.Tree.Size()
	s.record(Event{
		Kind: EvSlice, Node: n,
		Text:   fmt.Sprintf("slice on output %s of %s", output, s.renderUnitName(n)),
		Detail: fmt.Sprintf("execution tree pruned to %d of %d nodes", len(s.view), before),
	})
	return true
}

// Run performs the search and returns the outcome. The program-block
// root is assumed incorrect (the user invoked the debugger because of an
// observable symptom).
func (s *Session) Run() (*Outcome, error) {
	s.Opts.Metrics.Counter("debugger.sessions").Inc()
	active := s.Opts.Metrics.Gauge("sessions.active")
	active.Add(1)
	defer active.Add(-1)
	var bug *exectree.Node
	var err error
	switch s.Opts.Strategy {
	case DivideAndQuery:
		bug, err = s.runDivideAndQuery(false)
	case WeightedDivideAndQuery:
		bug, err = s.runDivideAndQuery(true)
	case BottomUp:
		bug, err = s.runBottomUp()
	default:
		bug, err = s.runTopDown()
	}
	if err != nil {
		return s.out, err
	}
	s.out.Bug = bug
	if bug != nil {
		s.out.Reason = fmt.Sprintf("an error has been localized inside the body of %s", s.renderUnitName(bug))
		s.record(Event{Kind: EvLocalized, Node: bug, Text: s.out.Reason})
		s.Opts.Metrics.Counter("debugger.localized").Inc()
	}
	return s.out, nil
}

// runTopDown is the paper's traversal: descend into the first incorrect
// child; when no retained child is incorrect, the current unit is buggy.
func (s *Session) runTopDown() (*exectree.Node, error) {
	current := s.Tree.Root
	if current == nil {
		return nil, fmt.Errorf("debugger: empty execution tree")
	}
	for {
		descended := false
		for _, c := range s.children(current) {
			a, err := s.judge(c)
			if err != nil {
				return nil, err
			}
			if a.Verdict != Incorrect {
				continue
			}
			if a.WrongOutput != "" {
				s.applySlice(c, a.WrongOutput)
			}
			current = c
			descended = true
			break
		}
		if !descended {
			if current.IsRoot() && len(s.children(current)) == 0 {
				return nil, fmt.Errorf("debugger: nothing to search (empty view)")
			}
			if current.IsRoot() && s.Opts.NoRootAssumption {
				// Every child of the program block was judged correct
				// and the symptom premise is disabled: inconclusive.
				return nil, nil
			}
			return current, nil
		}
	}
}

// dqState is the incremental suspect-region bookkeeping shared by the
// two divide-and-query variants. Subtree weights are memoized once per
// view and patched along the ancestor path when a Correct verdict
// removes a subtree — O(depth) per verdict and one O(region) scan per
// selection, replacing the old full weight recomputation per candidate
// per question (quadratic in the region size).
type dqState struct {
	s        *Session
	weighted bool
	suspect  *exectree.Node
	w        map[*exectree.Node]int64 // retained, uncut subtree weight
	cut      map[*exectree.Node]bool  // roots of correct-judged subtrees
	unq      map[*exectree.Node]bool  // don't-know nodes: still suspect, never re-asked
}

func newDQState(s *Session, weighted bool) *dqState {
	d := &dqState{
		s:        s,
		weighted: weighted,
		suspect:  s.Tree.Root,
		cut:      make(map[*exectree.Node]bool),
		unq:      make(map[*exectree.Node]bool),
	}
	d.rebuild()
	return d
}

// indiv is the node's own weight: 1 for plain divide-and-query; for the
// weighted variant the caller-supplied weight, defaulting to the
// invocation's recorded execution cost (1 + direct statement count).
func (d *dqState) indiv(n *exectree.Node) int64 {
	if !d.weighted {
		return 1
	}
	if f := d.s.Opts.Weights; f != nil {
		if w := f(n); w > 0 {
			return w
		}
		return 1
	}
	return 1 + n.Steps
}

// rebuild recomputes every memoized subtree weight (at session start,
// and whenever a slice changes the view under the memo).
func (d *dqState) rebuild() {
	d.w = make(map[*exectree.Node]int64, len(d.s.Tree.Nodes))
	var rec func(n *exectree.Node) int64
	rec = func(n *exectree.Node) int64 {
		if !d.s.kept(n) || d.cut[n] {
			return 0
		}
		w := d.indiv(n)
		for _, c := range n.Children {
			w += rec(c)
		}
		d.w[n] = w
		return w
	}
	rec(d.s.Tree.Root)
}

// remove cuts a correct-judged subtree out of the suspect region,
// patching the memoized weights on the ancestor path.
func (d *dqState) remove(n *exectree.Node) {
	delta := d.w[n]
	d.cut[n] = true
	for p := n; p != nil; p = p.Parent {
		d.w[p] -= delta
	}
}

// residue is the suspect-region weight strictly below the suspect node.
// Once no queryable candidate remains, a nonzero residue is exactly the
// weight of surviving don't-know subtrees.
func (d *dqState) residue() int64 {
	var below int64
	for _, c := range d.suspect.Children {
		below += d.w[c]
	}
	return below
}

// selectQuery scans the suspect region for the next node to ask: the
// proper descendant whose retained subtree weight best bisects the
// remaining suspect weight W. Plain divide-and-query keeps Shapiro's
// rule (weight closest to half the candidate weight); the weighted
// variant uses the Insa–Silva rule, minimizing the worst-case remaining
// weight max(w(n), W−w(n)). Don't-know nodes are never candidates again
// but their subtrees stay in the scan — the bug may still be inside.
// Ties break toward the unit a static anomaly hint marks as suspicious,
// then (weighted only) toward the heavier subtree, then pre-order.
func (d *dqState) selectQuery() *exectree.Node {
	W := d.w[d.suspect]
	var target int64
	if !d.weighted {
		below := W - 1
		target = (below + 1) / 2
	}
	var best *exectree.Node
	bestScore := int64(1) << 62
	var scan func(n *exectree.Node)
	scan = func(n *exectree.Node) {
		if !d.s.kept(n) || d.cut[n] {
			return
		}
		if n != d.suspect && !d.unq[n] {
			var score int64
			if d.weighted {
				if down, up := d.w[n], W-d.w[n]; down > up {
					score = down
				} else {
					score = up
				}
			} else {
				score = d.w[n] - target
				if score < 0 {
					score = -score
				}
			}
			better := score < bestScore
			if !better && score == bestScore && best != nil {
				hn, hb := d.s.hintOf(n), d.s.hintOf(best)
				better = hn > hb || (hn == hb && d.weighted && d.w[n] > d.w[best])
			}
			if better {
				bestScore = score
				best = n
			}
		}
		for _, c := range n.Children {
			scan(c)
		}
	}
	scan(d.suspect)
	return best
}

// runDivideAndQuery implements Shapiro's divide-and-query (weighted =
// false) and the Insa–Silva weighted refinement (weighted = true):
// repeatedly ask the descendant that best bisects the suspect region's
// weight. Don't-know answers are handled soundly: the node's subtree
// stays in the suspect set (only the node itself becomes unqueryable),
// so a session whose region cannot be narrowed past unanswered nodes
// ends inconclusive instead of blaming the suspect.
func (s *Session) runDivideAndQuery(weighted bool) (*exectree.Node, error) {
	if s.Tree.Root == nil {
		return nil, fmt.Errorf("debugger: empty execution tree")
	}
	d := newDQState(s, weighted)
	for {
		best := d.selectQuery()
		if best == nil {
			if d.residue() > 0 {
				// Don't-know subtrees survive in the region: the bug may
				// be in any of their bodies, so pinning the suspect would
				// be unsound. Inconclusive.
				return nil, nil
			}
			if d.suspect.IsRoot() && s.Opts.NoRootAssumption {
				return nil, nil
			}
			return d.suspect, nil
		}
		a, err := s.judge(best)
		if err != nil {
			return nil, err
		}
		switch a.Verdict {
		case Incorrect:
			if a.WrongOutput != "" && s.applySlice(best, a.WrongOutput) {
				d.rebuild()
			}
			d.suspect = best
		case Correct:
			d.remove(best)
		default: // DontKnow: still suspect, just not askable again.
			d.unq[best] = true
		}
	}
}

// runBottomUp asks in post-order: the first incorrect node all of whose
// retained children were judged correct is the bug.
func (s *Session) runBottomUp() (*exectree.Node, error) {
	var bug *exectree.Node
	var walk func(n *exectree.Node) (allCorrect bool, err error)
	walk = func(n *exectree.Node) (bool, error) {
		childrenCorrect := true
		for _, c := range s.children(n) {
			if bug != nil {
				return false, nil
			}
			ok, err := walk(c)
			if err != nil {
				return false, err
			}
			if !ok {
				childrenCorrect = false
			}
		}
		if bug != nil {
			return false, nil
		}
		if n.IsRoot() {
			return false, nil
		}
		a, err := s.judge(n)
		if err != nil {
			return false, err
		}
		if a.Verdict == Incorrect {
			if a.WrongOutput != "" {
				s.applySlice(n, a.WrongOutput)
			}
			if childrenCorrect {
				bug = n
			}
			return false, nil
		}
		return true, nil
	}
	if s.Tree.Root == nil {
		return nil, fmt.Errorf("debugger: empty execution tree")
	}
	if _, err := walk(s.Tree.Root); err != nil {
		return nil, err
	}
	if bug == nil && !s.Opts.NoRootAssumption {
		// No unit below the program block misbehaved; under the symptom
		// premise the error is in the main program body itself.
		bug = s.Tree.Root
	}
	return bug, nil
}

// ---------------------------------------------------------------------------
// Query rendering

// query renders the question for a node, using transformation metadata
// when available (Section 6.1: the user sees original constructs).
func (s *Session) query(n *exectree.Node) *Query {
	modes := s.displayModes(n)
	var parts []string
	for _, b := range n.Ins {
		mode := b.Mode
		if m, ok := modes[b.Name]; ok {
			mode = m
		}
		if mode == ast.Value {
			parts = append(parts, fmt.Sprintf("In %s: %s", b.Name, formatVal(b.Value)))
		}
	}
	for _, b := range n.Outs {
		if s.isExitCond(n, b.Name) {
			parts = append(parts, "Exit: "+s.exitDescription(b))
			continue
		}
		// Globals passed by reference only for alias safety are
		// logically inputs; suppress their exit value.
		if m, ok := modes[b.Name]; ok && m == ast.Value {
			continue
		}
		parts = append(parts, fmt.Sprintf("Out %s: %s", b.Name, formatVal(b.Value)))
	}
	text := s.renderUnitName(n)
	if len(parts) > 0 {
		text += "(" + strings.Join(parts, ", ") + ")"
	}
	if n.Unit.Kind == ast.FuncKind {
		text += " = " + formatVal(n.Result)
	}
	text += "?"
	return &Query{Node: n, Text: text, Outputs: n.OutputNames()}
}

func formatVal(v interp.Value) string {
	return interp.FormatValue(v)
}

// renderUnitName presents loop units as their original loop construct.
func (s *Session) renderUnitName(n *exectree.Node) string {
	if s.Opts.Meta == nil {
		return n.Unit.Name
	}
	u, ok := s.Opts.Meta.Units[n.Unit.Name]
	if !ok || u.Kind != transform.LoopUnit {
		return n.Unit.Name
	}
	kind := "loop"
	switch u.Loop.(type) {
	case *ast.ForStmt:
		kind = "for-loop"
	case *ast.WhileStmt:
		kind = "while-loop"
	case *ast.RepeatStmt:
		kind = "repeat-loop"
	}
	// Count which iteration this is: 1 + number of loop-unit ancestors
	// of the same unit.
	iter := 1
	for p := n.Parent; p != nil && p.Unit == n.Unit; p = p.Parent {
		iter++
	}
	pos := ""
	if u.Loop != nil && u.Loop.Pos().IsValid() {
		pos = fmt.Sprintf(" at %s", u.Loop.Pos())
	}
	return fmt.Sprintf("%s in %s%s, iteration %d", kind, u.RoutineName, pos, iter)
}

// displayModes returns logical parameter modes from the transformation
// metadata (globals passed by reference for alias reasons still display
// as `in`).
func (s *Session) displayModes(n *exectree.Node) map[string]ast.ParamMode {
	if s.Opts.Meta == nil {
		return nil
	}
	added := s.Opts.Meta.Added[n.Unit.Name]
	if len(added) == 0 {
		return nil
	}
	m := make(map[string]ast.ParamMode, len(added))
	for _, a := range added {
		m[a.Name] = a.Display
	}
	return m
}

// isExitCond reports whether the named output is the unit's synthetic
// exit-condition parameter.
func (s *Session) isExitCond(n *exectree.Node, name string) bool {
	if s.Opts.Meta == nil {
		return false
	}
	for _, a := range s.Opts.Meta.Added[n.Unit.Name] {
		if a.Name == name && a.ExitCond {
			return true
		}
	}
	return false
}

// exitDescription decodes an exit-condition value ("none" or the target
// label), per Section 6.1: "the non-local goto is treated as one of the
// results from the procedure call".
func (s *Session) exitDescription(b interp.Binding) string {
	code, ok := b.Value.AsInt()
	if !ok || code == 0 {
		return "none"
	}
	if s.Opts.Meta != nil {
		if desc, ok := s.Opts.Meta.EscapeCodes[int(code)]; ok {
			return "goto " + desc
		}
	}
	return fmt.Sprintf("code %d", code)
}
