package debugger_test

import (
	"strings"
	"testing"

	"gadt/internal/assertion"
	"gadt/internal/debugger"
	"gadt/internal/obs"
	"gadt/internal/paper"
)

// TestJournalRoundTrip records a session against the intended-semantics
// oracle, then replays it: the replayed session must ask the same
// questions, localize the same node, and consume the whole journal.
func TestJournalRoundTrip(t *testing.T) {
	res, rec := traceIt(t, paper.Sqrtest)
	oracle := &debugger.IntendedOracle{Ref: analyze(t, paper.SqrtestFixed)}

	var buf strings.Builder
	jw := debugger.NewJournalWriter(&buf)
	if err := jw.WriteHeader("sqrtest.pas", "top-down", ""); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	live, err := debugger.New(res.Tree, &debugger.JournalingOracle{Inner: oracle, Journal: jw},
		debugger.Options{Slicing: true, Recorder: rec, Metrics: reg}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !live.Localized() || live.Bug.Unit.Name != "decrement" {
		t.Fatalf("live bug = %v, want decrement", live.Bug)
	}
	if jw.Entries() != live.Questions {
		t.Errorf("journal entries = %d, want %d (one per oracle question)", jw.Entries(), live.Questions)
	}
	if got := reg.Counter("debugger.oracle.queries").Value(); got != int64(jw.Entries()) {
		t.Errorf("obs counter = %d, journal entries = %d; must match", got, jw.Entries())
	}

	j, err := debugger.LoadJournal(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if j.Header == nil || j.Header.File != "sqrtest.pas" {
		t.Errorf("header = %+v", j.Header)
	}
	if len(j.Entries) != live.Questions {
		t.Fatalf("loaded %d entries, want %d", len(j.Entries), live.Questions)
	}

	// Replay on a fresh trace of the same program.
	res2, rec2 := traceIt(t, paper.Sqrtest)
	replayed, err := debugger.New(res2.Tree, debugger.NewReplayOracle(j),
		debugger.Options{Slicing: true, Recorder: rec2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Localized() || replayed.Bug.Unit.Name != live.Bug.Unit.Name {
		t.Fatalf("replayed bug = %v, want %s", replayed.Bug, live.Bug.Unit.Name)
	}
	if replayed.Bug.ID != live.Bug.ID {
		t.Errorf("replayed node ID = %d, want %d (tree identity must be stable)", replayed.Bug.ID, live.Bug.ID)
	}
	if replayed.Questions != live.Questions {
		t.Errorf("replayed questions = %d, want %d", replayed.Questions, live.Questions)
	}
}

// TestJournalAssertionRoundTrip checks that `a <expr>` answers survive
// the journal: the assertion text is re-parsed on replay and lands in
// the replaying session's DB.
func TestJournalAssertionRoundTrip(t *testing.T) {
	res, _ := traceIt(t, paper.PQR)

	var buf strings.Builder
	jw := debugger.NewJournalWriter(&buf)
	scripted := &debugger.ScriptedOracle{
		ByUnit: map[string]debugger.Answer{
			"p": {Verdict: debugger.Incorrect},
			"q": {Assertion: assertion.MustParse("q", "result = result")},
			"r": {Verdict: debugger.Incorrect},
		},
	}
	live, err := debugger.New(res.Tree, &debugger.JournalingOracle{Inner: scripted, Journal: jw},
		debugger.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}

	j, err := debugger.LoadJournal(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	db := assertion.NewDB()
	res2, _ := traceIt(t, paper.PQR)
	ro := debugger.NewReplayOracle(j)
	ro.DB = db
	replayed, err := debugger.New(res2.Tree, ro, debugger.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Bug == nil || live.Bug == nil || replayed.Bug.Unit.Name != live.Bug.Unit.Name {
		t.Fatalf("replayed = %v, live = %v", replayed.Bug, live.Bug)
	}
	if db.Len() == 0 {
		t.Error("replayed assertion did not reach the DB")
	}
	if ro.Remaining() != 0 {
		t.Errorf("journal not fully consumed: %d left", ro.Remaining())
	}
}

// TestReplayMissingQuery ensures replay fails loudly rather than
// guessing when the session diverges from the recording.
func TestReplayMissingQuery(t *testing.T) {
	j := &debugger.Journal{}
	o := debugger.NewReplayOracle(j)
	res, _ := traceIt(t, paper.PQR)
	_, err := debugger.New(res.Tree, o, debugger.Options{}).Run()
	if err == nil || !strings.Contains(err.Error(), "no answer for query") {
		t.Errorf("err = %v, want journal-miss error", err)
	}
}

// TestLoadJournalRejectsGarbage pins the strict wire-format contract:
// the journal is gadt-serve's answer schema, so the loader must reject
// every malformed line instead of skipping it — in particular trailing
// garbage after the last entry, which the pre-server loader accepted.
func TestLoadJournalRejectsGarbage(t *testing.T) {
	valid := `{"kind":"session","file":"b.pas"}` + "\n" +
		`{"kind":"query","seq":1,"node":1,"unit":"p","query":"p?","verdict":"correct"}` + "\n"
	if j, err := debugger.LoadJournal(strings.NewReader(valid)); err != nil || len(j.Entries) != 1 {
		t.Fatalf("valid journal: j=%+v err=%v", j, err)
	}

	bad := []struct{ name, tail string }{
		{"malformed line", "{not json\n"},
		{"unknown verdict", `{"kind":"query","verdict":"maybe"}` + "\n"},
		{"unknown kind", `{"kind":"future-thing"}` + "\n"},
		{"missing kind", "{}\n"},
		{"null record", "null\n"},
		{"non-object", `"done"` + "\n"},
		{"truncated entry", `{"kind":"query","seq":2` + "\n"},
		{"duplicate header", `{"kind":"session","file":"b.pas"}` + "\n"},
		{"shell noise", "session complete\n"},
	}
	for _, tc := range bad {
		if _, err := debugger.LoadJournal(strings.NewReader(valid + tc.tail)); err == nil {
			t.Errorf("%s: trailing garbage %q accepted, want error", tc.name, tc.tail)
		}
	}

	// A header is only valid before the first query entry.
	outOfOrder := `{"kind":"query","seq":1,"node":1,"unit":"p","query":"p?","verdict":"correct"}` + "\n" +
		`{"kind":"session","file":"b.pas"}` + "\n"
	if _, err := debugger.LoadJournal(strings.NewReader(outOfOrder)); err == nil {
		t.Error("header after query entries accepted, want error")
	}
}
