package debugger_test

import (
	"strings"
	"testing"

	"gadt/internal/assertion"
	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/pascal/sem"
)

func interactiveQuery() *debugger.Query {
	return &debugger.Query{
		Node:    &exectree.Node{Unit: &sem.Routine{Name: "computs"}},
		Text:    "computs(In y: 3, Out r1: 12, Out r2: 9)?",
		Outputs: []string{"r1", "r2"},
	}
}

// askInteractive feeds the given stdin transcript to an
// InteractiveOracle and returns the answer plus everything printed.
func askInteractive(t *testing.T, input string, db *assertion.DB) (debugger.Answer, string, error) {
	t.Helper()
	var out strings.Builder
	o := &debugger.InteractiveOracle{In: strings.NewReader(input), Out: &out, DB: db}
	a, err := o.Ask(interactiveQuery())
	return a, out.String(), err
}

func TestInteractiveOracleReplies(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  debugger.Answer
	}{
		{"yes short", "y\n", debugger.Answer{Verdict: debugger.Correct}},
		{"yes long", "yes\n", debugger.Answer{Verdict: debugger.Correct}},
		{"yes mixed case", "YES\n", debugger.Answer{Verdict: debugger.Correct}},
		{"no short", "n\n", debugger.Answer{Verdict: debugger.Incorrect}},
		{"no long", "no\n", debugger.Answer{Verdict: debugger.Incorrect}},
		{"no with output", "n r1\n", debugger.Answer{Verdict: debugger.Incorrect, WrongOutput: "r1"}},
		{"no long with output", "no r2\n", debugger.Answer{Verdict: debugger.Incorrect, WrongOutput: "r2"}},
		{"output case folded", "n R1\n", debugger.Answer{Verdict: debugger.Incorrect, WrongOutput: "r1"}},
		{"dontknow short", "d\n", debugger.Answer{Verdict: debugger.DontKnow}},
		{"dontknow long", "dontknow\n", debugger.Answer{Verdict: debugger.DontKnow}},
		{"dontknow question mark", "?\n", debugger.Answer{Verdict: debugger.DontKnow}},
		{"trust answers correct", "t\n", debugger.Answer{Verdict: debugger.Correct}},
		{"whitespace tolerated", "  y  \n", debugger.Answer{Verdict: debugger.Correct}},
		{"last line without newline", "y", debugger.Answer{Verdict: debugger.Correct}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, _, err := askInteractive(t, tc.input, nil)
			if err != nil {
				t.Fatal(err)
			}
			if a.Verdict != tc.want.Verdict || a.WrongOutput != tc.want.WrongOutput {
				t.Errorf("answer = %+v, want %+v", a, tc.want)
			}
		})
	}
}

// TestInteractiveOracleCanonicalOutputName pins the regression where a
// case-folded reply was handed onward as typed: the slice lookup keys
// on exact binding names, so the oracle must return the canonical
// spelling, not the user's.
func TestInteractiveOracleCanonicalOutputName(t *testing.T) {
	q := &debugger.Query{
		Node:    &exectree.Node{Unit: &sem.Routine{Name: "mixy"}},
		Text:    "mixy(Out Res1: 7)?",
		Outputs: []string{"Res1"},
	}
	for _, reply := range []string{"n res1\n", "n RES1\n", "no Res1\n"} {
		var out strings.Builder
		o := &debugger.InteractiveOracle{In: strings.NewReader(reply), Out: &out}
		a, err := o.Ask(q)
		if err != nil {
			t.Fatalf("%q: %v", reply, err)
		}
		if a.Verdict != debugger.Incorrect || a.WrongOutput != "Res1" {
			t.Errorf("%q: answer = %+v, want Incorrect on canonical Res1", reply, a)
		}
	}
}

func TestInteractiveOracleBadOutputReprompts(t *testing.T) {
	a, out, err := askInteractive(t, "n bogus\ny\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != debugger.Correct {
		t.Errorf("answer = %+v, want Correct after reprompt", a)
	}
	if !strings.Contains(out, `unknown output "bogus"`) || !strings.Contains(out, "r1, r2") {
		t.Errorf("missing output diagnostics:\n%s", out)
	}
}

func TestInteractiveOracleGarbageReprompts(t *testing.T) {
	a, out, err := askInteractive(t, "whatever\nmaybe\nd\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != debugger.DontKnow {
		t.Errorf("answer = %+v, want DontKnow", a)
	}
	if strings.Count(out, "reply y, n,") != 2 {
		t.Errorf("want 2 reprompts:\n%s", out)
	}
}

func TestInteractiveOracleAssertion(t *testing.T) {
	db := assertion.NewDB()
	a, _, err := askInteractive(t, "a r1 = y * 4\n", db)
	if err != nil {
		t.Fatal(err)
	}
	if a.Assertion == nil || a.Assertion.Unit != "computs" || a.Assertion.Text != "r1 = y * 4" {
		t.Errorf("assertion = %+v", a.Assertion)
	}
	if db.Len() != 1 {
		t.Errorf("db has %d assertions, want 1", db.Len())
	}
}

func TestInteractiveOracleBadAssertionReprompts(t *testing.T) {
	db := assertion.NewDB()
	a, out, err := askInteractive(t, "a ((broken\ny\n", db)
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != debugger.Correct || db.Len() != 0 {
		t.Errorf("answer = %+v, db len = %d", a, db.Len())
	}
	if !strings.Contains(out, "bad assertion") {
		t.Errorf("missing bad-assertion message:\n%s", out)
	}
}

func TestInteractiveOracleTrustRecordsUnit(t *testing.T) {
	db := assertion.NewDB()
	if _, _, err := askInteractive(t, "t\n", db); err != nil {
		t.Fatal(err)
	}
	// Trusted units judge every invocation as Holds.
	n := &exectree.Node{Unit: &sem.Routine{Name: "computs"}}
	if v := db.Judge(n); v != assertion.Holds {
		t.Errorf("trusted judge = %v, want Holds", v)
	}
}

func TestInteractiveOracleEOF(t *testing.T) {
	_, _, err := askInteractive(t, "", nil)
	if err == nil || !strings.Contains(err.Error(), "oracle input closed") {
		t.Errorf("err = %v, want input-closed error", err)
	}
}

func TestVerdictStringsAndKeys(t *testing.T) {
	cases := []struct {
		v      debugger.Verdict
		s, key string
	}{
		{debugger.Correct, "yes", "correct"},
		{debugger.Incorrect, "no", "incorrect"},
		{debugger.DontKnow, "don't know", "dont-know"},
		{debugger.Verdict(99), "don't know", "dont-know"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.s {
			t.Errorf("Verdict(%d).String() = %q, want %q", tc.v, got, tc.s)
		}
		if got := tc.v.Key(); got != tc.key {
			t.Errorf("Verdict(%d).Key() = %q, want %q", tc.v, got, tc.key)
		}
	}
	for _, in := range []string{"correct", "yes", "incorrect", "no", "dont-know", "don't know"} {
		if _, ok := debugger.ParseVerdict(in); !ok {
			t.Errorf("ParseVerdict(%q) not recognized", in)
		}
	}
	if _, ok := debugger.ParseVerdict("maybe"); ok {
		t.Error("ParseVerdict accepted garbage")
	}
}
