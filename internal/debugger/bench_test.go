package debugger_test

import (
	"testing"

	"gadt/internal/debugger"
	"gadt/internal/exectree"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/progen"
)

// benchTree traces a generated call tree for the divide-and-query
// benchmarks: depth 6 / fanout 3 yields several hundred invocations.
func benchTree(b *testing.B) *exectree.Tree {
	b.Helper()
	p := progen.Generate(progen.Config{Depth: 6, Fanout: 3, BugPath: []int{1, 0, 2, 1, 0, 2}})
	prog := parser.MustParse("bench.pas", p.Buggy)
	info, err := sem.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	res := exectree.Trace(info, "")
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	return res.Tree
}

// BenchmarkDivideAndQuery measures one full session over a large tree
// under the all-correct oracle — the worst case for the selector, which
// must re-scan the suspect region after every verdict. It guards the
// incremental weight memo: the pre-refactor engine recomputed every
// subtree weight per candidate per question (quadratic in region size)
// and regresses this benchmark by an order of magnitude.
func BenchmarkDivideAndQuery(b *testing.B) {
	for _, strat := range []debugger.Strategy{debugger.DivideAndQuery, debugger.WeightedDivideAndQuery} {
		b.Run(strat.String(), func(b *testing.B) {
			tree := benchTree(b)
			oracle := &debugger.ScriptedOracle{Default: debugger.Answer{Verdict: debugger.Correct}}
			b.ReportMetric(float64(tree.Size()), "nodes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess := debugger.New(tree, oracle, debugger.Options{Strategy: strat, MaxQuestions: 1 << 30})
				if _, err := sess.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWeightedNoWorseThanPlainOnGeneratedTrees compares the two
// divide-and-query variants over a spread of generated shapes with a
// perfect oracle: the weighted strategy exists to spend fewer (never
// more, on these uniform-cost trees) questions than plain D&Q in
// aggregate.
func TestWeightedNoWorseThanPlainOnGeneratedTrees(t *testing.T) {
	shapes := []progen.Config{
		{Depth: 3, Fanout: 2, BugPath: []int{1, 0, 1}},
		{Depth: 4, Fanout: 2, BugPath: []int{0, 1, 1, 0}},
		{Depth: 4, Fanout: 3, BugPath: []int{2, 0, 1, 2}},
		{Depth: 5, Fanout: 2, BugPath: []int{1, 1, 0, 1, 0}},
	}
	totalPlain, totalWeighted := 0, 0
	for _, shape := range shapes {
		p := progen.Generate(shape)
		questions := func(strat debugger.Strategy) int {
			res, _ := traceIt(t, p.Buggy)
			oracle := &debugger.IntendedOracle{Ref: analyze(t, p.Fixed)}
			sess := debugger.New(res.Tree, oracle, debugger.Options{Strategy: strat})
			out, err := sess.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !out.Localized() {
				t.Fatalf("%v/%+v: inconclusive", strat, shape)
			}
			return out.Questions
		}
		plain := questions(debugger.DivideAndQuery)
		weighted := questions(debugger.WeightedDivideAndQuery)
		totalPlain += plain
		totalWeighted += weighted
		t.Logf("depth=%d fanout=%d: plain=%d weighted=%d", shape.Depth, shape.Fanout, plain, weighted)
	}
	if totalWeighted > totalPlain {
		t.Errorf("weighted D&Q asked %d questions in total, plain asked %d — the refinement must not cost questions",
			totalWeighted, totalPlain)
	}
}
