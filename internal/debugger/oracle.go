// Package debugger implements the algorithmic debugging engine of
// Sections 3, 5.3 and 7: it traverses the execution tree asking an
// oracle about the expected behavior of each unit, consults assertions
// and the category-partition test database before bothering the user,
// and prunes the tree with dynamic slicing when the user points at a
// specific erroneous output variable. The search ends when a unit is
// incorrect while all its (retained) children are correct — the bug is
// localized in that unit's body.
package debugger

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gadt/internal/assertion"
	"gadt/internal/exectree"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/sem"
)

// Verdict is a judgement about one unit invocation.
type Verdict int

const (
	DontKnow Verdict = iota
	Correct
	Incorrect
)

func (v Verdict) String() string {
	switch v {
	case Correct:
		return "yes"
	case Incorrect:
		return "no"
	}
	return "don't know"
}

// Key returns the verdict's stable machine-readable slug, used for
// metric label segments and the session-journal encoding.
func (v Verdict) Key() string {
	switch v {
	case Correct:
		return "correct"
	case Incorrect:
		return "incorrect"
	}
	return "dont-know"
}

// ParseVerdict inverts Key (and accepts String forms); it reports
// whether the input was recognized.
func ParseVerdict(s string) (Verdict, bool) {
	switch s {
	case "correct", "yes":
		return Correct, true
	case "incorrect", "no":
		return Incorrect, true
	case "dont-know", "don't know":
		return DontKnow, true
	}
	return DontKnow, false
}

// Answer is an oracle's reply to a query.
type Answer struct {
	Verdict Verdict
	// WrongOutput names the specific erroneous output (an Out binding
	// name, or the unit name for a wrong function result). Setting it
	// activates program slicing (Section 5.3.3).
	WrongOutput string
	// Assertion optionally supplies a new assertion to store (Section 3);
	// it is evaluated immediately to answer the current query.
	Assertion *assertion.Assertion
}

// Query is one question put to an oracle.
type Query struct {
	Node *exectree.Node
	// Text is the rendered question, e.g.
	// `computs(In y: 3, Out r1: 12, Out r2: 9)?`.
	Text string
	// Outputs lists the node's output names, for "error on output X"
	// replies.
	Outputs []string
}

// Oracle answers queries about intended behavior.
type Oracle interface {
	Ask(q *Query) (Answer, error)
}

// ---------------------------------------------------------------------------
// Scripted oracle

// ScriptedOracle answers from a map keyed by unit name (simplest) or by
// full query text (most specific wins). Used by tests and experiments.
type ScriptedOracle struct {
	// ByText maps full query text to answers.
	ByText map[string]Answer
	// ByUnit maps unit names to answers.
	ByUnit map[string]Answer
	// Default is used when nothing matches.
	Default Answer
}

// Ask implements Oracle.
func (o *ScriptedOracle) Ask(q *Query) (Answer, error) {
	if a, ok := o.ByText[q.Text]; ok {
		return a, nil
	}
	if a, ok := o.ByUnit[q.Node.Unit.Name]; ok {
		return a, nil
	}
	return o.Default, nil
}

// ---------------------------------------------------------------------------
// Intended-semantics oracle

// IntendedOracle answers queries by re-executing the same unit of a
// reference ("intended") implementation on the recorded inputs and
// comparing the outputs. It automatically reports the first differing
// output, activating slicing — this models an ideal user and makes the
// paper's interaction-count experiments deterministic.
type IntendedOracle struct {
	Ref *sem.Info // analyzed reference program (transformed if the tree is)
	// MaxSteps bounds each replay (defaults to 1e6).
	MaxSteps int
}

// Ask implements Oracle.
func (o *IntendedOracle) Ask(q *Query) (Answer, error) {
	n := q.Node
	target := o.Ref.LookupRoutine(n.Unit.Name)
	if target == nil {
		return Answer{Verdict: DontKnow}, nil
	}
	if len(target.Params) != len(n.Ins) {
		return Answer{Verdict: DontKnow}, nil
	}
	args := make([]interp.Value, len(n.Ins))
	for i, b := range n.Ins {
		args[i] = b.Value
	}
	steps := o.MaxSteps
	if steps <= 0 {
		steps = 1_000_000
	}
	it := interp.New(o.Ref, interp.Config{MaxSteps: steps})
	ci, err := it.CallUnit(target, args)
	if err != nil {
		return Answer{Verdict: DontKnow}, nil
	}
	// Compare outputs in declaration order; report the first mismatch.
	for _, want := range ci.Outs {
		got, ok := n.OutBinding(want.Name)
		if !ok {
			return Answer{Verdict: DontKnow}, nil
		}
		if !interp.ValuesEqual(got.Value, want.Value) {
			return Answer{Verdict: Incorrect, WrongOutput: want.Name}, nil
		}
	}
	if n.Unit.Result != nil {
		if !interp.ValuesEqual(n.Result, ci.Result) {
			return Answer{Verdict: Incorrect, WrongOutput: n.Unit.Name}, nil
		}
	}
	return Answer{Verdict: Correct}, nil
}

// ---------------------------------------------------------------------------
// Interactive oracle

// InteractiveOracle asks a human on the given reader/writer. Accepted
// replies:
//
//	y / yes              — behavior is correct
//	n / no               — behavior is incorrect
//	n <output>           — incorrect, the named output is wrong (slicing)
//	a <boolean expr>     — store an assertion for this unit
//	d / dontknow         — no judgement
//	t / trust            — trust this unit from now on
type InteractiveOracle struct {
	In  io.Reader
	Out io.Writer

	DB *assertion.DB // assertion store for `a` and `t` replies

	r *bufio.Reader
}

// Ask implements Oracle.
func (o *InteractiveOracle) Ask(q *Query) (Answer, error) {
	if o.r == nil {
		o.r = bufio.NewReader(o.In)
	}
	for {
		fmt.Fprintf(o.Out, "%s\n> ", q.Text)
		line, err := o.r.ReadString('\n')
		if err != nil && line == "" {
			return Answer{}, fmt.Errorf("oracle input closed: %w", err)
		}
		line = strings.TrimSpace(line)
		lower := strings.ToLower(line)
		switch {
		case lower == "y" || lower == "yes":
			return Answer{Verdict: Correct}, nil
		case lower == "n" || lower == "no":
			return Answer{Verdict: Incorrect}, nil
		case strings.HasPrefix(lower, "n ") || strings.HasPrefix(lower, "no "):
			out := strings.TrimSpace(line[strings.Index(line, " ")+1:])
			// Match the reply case-insensitively but hand the canonical
			// binding name to the engine: WrongOutput keys the dynamic
			// slice, which compares exact binding names.
			canonical := ""
			for _, name := range q.Outputs {
				if strings.EqualFold(name, out) {
					canonical = name
					break
				}
			}
			if canonical == "" {
				fmt.Fprintf(o.Out, "unknown output %q (outputs: %s)\n", out, strings.Join(q.Outputs, ", "))
				continue
			}
			return Answer{Verdict: Incorrect, WrongOutput: canonical}, nil
		case strings.HasPrefix(lower, "a "):
			text := strings.TrimSpace(line[2:])
			a, err := assertion.Parse(q.Node.Unit.Name, text)
			if err != nil {
				fmt.Fprintf(o.Out, "bad assertion: %v\n", err)
				continue
			}
			if o.DB != nil {
				o.DB.Add(a)
			}
			return Answer{Assertion: a}, nil
		case lower == "t" || lower == "trust":
			if o.DB != nil {
				o.DB.Trust(q.Node.Unit.Name)
			}
			return Answer{Verdict: Correct}, nil
		case lower == "d" || lower == "dontknow" || lower == "?":
			return Answer{Verdict: DontKnow}, nil
		default:
			fmt.Fprintf(o.Out, "reply y, n, n <output>, a <assertion>, t(rust) or d(ontknow)\n")
		}
	}
}
