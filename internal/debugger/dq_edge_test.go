package debugger_test

import (
	"testing"

	"gadt/internal/debugger"
)

// TestDivideAndQueryEdgeCases pins divide-and-query on degenerate tree
// shapes: a single-node tree must localize the program body without a
// single question, an all-correct fringe must fall back to the root
// after exhausting every candidate, and on a linear chain the strategy
// must probe the midpoint first (not walk the chain top-down).
func TestDivideAndQueryEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		oracle *debugger.ScriptedOracle
		// wantUnit is the localized unit, wantQuestions the exact count,
		// wantFirst the unit of the first oracle question ("" = none).
		wantUnit      string
		wantQuestions int
		wantFirst     string
	}{
		{
			// The tree is just the program node: weight-1 candidates are
			// exhausted immediately and the symptom premise pins the body.
			name: "single-node tree",
			src: `
program solo;
var x: integer;
begin
  x := 2;
  writeln(x);
end.`,
			oracle:        &debugger.ScriptedOracle{},
			wantUnit:      "solo",
			wantQuestions: 0,
		},
		{
			// Three equal-weight children: each bisection attempt judges
			// one child correct and cuts it, so all three are asked and
			// the root is left as the only suspect.
			name: "all children correct",
			src: `
program trip;
var a, b, c: integer;

procedure p1(var r: integer);
begin
  r := 1;
end;

procedure p2(var r: integer);
begin
  r := 2;
end;

procedure p3(var r: integer);
begin
  r := 3;
end;

begin
  p1(a);
  p2(b);
  p3(c);
  writeln(a, b, c);
end.`,
			oracle:        &debugger.ScriptedOracle{Default: debugger.Answer{Verdict: debugger.Correct}},
			wantUnit:      "trip",
			wantQuestions: 3,
		},
		{
			// Chain main -> a -> b -> c with the fault in a's body. The
			// weights are a:3, b:2, c:1 against target 2, so the first
			// probe must be the midpoint b (correct, cutting b and c),
			// then a (incorrect) — two questions, never touching c.
			name: "deep chain bisects",
			src: `
program chain;
var r: integer;

function c(x: integer): integer;
begin
  c := x + 1;
end;

function b(x: integer): integer;
begin
  b := c(x) * 2;
end;

function a(x: integer): integer;
begin
  a := b(x) - 1;
end;

begin
  r := a(3);
  writeln(r);
end.`,
			oracle: &debugger.ScriptedOracle{
				ByUnit: map[string]debugger.Answer{
					"a": {Verdict: debugger.Incorrect},
					"b": {Verdict: debugger.Correct},
					"c": {Verdict: debugger.Correct},
				},
			},
			wantUnit:      "a",
			wantQuestions: 2,
			wantFirst:     "b",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, _ := traceIt(t, tc.src)
			sess := debugger.New(res.Tree, tc.oracle, debugger.Options{
				Strategy: debugger.DivideAndQuery,
			})
			out, err := sess.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !out.Localized() || out.Bug.Unit.Name != tc.wantUnit {
				t.Fatalf("bug = %v, want %s\n%s", out.Bug, tc.wantUnit, transcript(out))
			}
			if out.Questions != tc.wantQuestions {
				t.Errorf("questions = %d, want %d\n%s", out.Questions, tc.wantQuestions, transcript(out))
			}
			var first string
			for _, ev := range out.Transcript {
				if ev.Kind == debugger.EvQuestion {
					first = ev.Node.Unit.Name
					break
				}
			}
			if tc.wantFirst != "" && first != tc.wantFirst {
				t.Errorf("first question went to %q, want %q\n%s", first, tc.wantFirst, transcript(out))
			}
		})
	}
}
