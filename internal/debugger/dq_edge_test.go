package debugger_test

import (
	"testing"

	"gadt/internal/debugger"
	"gadt/internal/exectree"
)

// TestDivideAndQueryEdgeCases pins divide-and-query on degenerate tree
// shapes: a single-node tree must localize the program body without a
// single question, an all-correct fringe must fall back to the root
// after exhausting every candidate, and on a linear chain the strategy
// must probe the midpoint first (not walk the chain top-down).
func TestDivideAndQueryEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		oracle *debugger.ScriptedOracle
		// wantUnit is the localized unit, wantQuestions the exact count,
		// wantFirst the unit of the first oracle question ("" = none).
		wantUnit      string
		wantQuestions int
		wantFirst     string
	}{
		{
			// The tree is just the program node: weight-1 candidates are
			// exhausted immediately and the symptom premise pins the body.
			name: "single-node tree",
			src: `
program solo;
var x: integer;
begin
  x := 2;
  writeln(x);
end.`,
			oracle:        &debugger.ScriptedOracle{},
			wantUnit:      "solo",
			wantQuestions: 0,
		},
		{
			// Three equal-weight children: each bisection attempt judges
			// one child correct and cuts it, so all three are asked and
			// the root is left as the only suspect.
			name: "all children correct",
			src: `
program trip;
var a, b, c: integer;

procedure p1(var r: integer);
begin
  r := 1;
end;

procedure p2(var r: integer);
begin
  r := 2;
end;

procedure p3(var r: integer);
begin
  r := 3;
end;

begin
  p1(a);
  p2(b);
  p3(c);
  writeln(a, b, c);
end.`,
			oracle:        &debugger.ScriptedOracle{Default: debugger.Answer{Verdict: debugger.Correct}},
			wantUnit:      "trip",
			wantQuestions: 3,
		},
		{
			// Chain main -> a -> b -> c with the fault in a's body. The
			// weights are a:3, b:2, c:1 against target 2, so the first
			// probe must be the midpoint b (correct, cutting b and c),
			// then a (incorrect) — two questions, never touching c.
			name: "deep chain bisects",
			src: `
program chain;
var r: integer;

function c(x: integer): integer;
begin
  c := x + 1;
end;

function b(x: integer): integer;
begin
  b := c(x) * 2;
end;

function a(x: integer): integer;
begin
  a := b(x) - 1;
end;

begin
  r := a(3);
  writeln(r);
end.`,
			oracle: &debugger.ScriptedOracle{
				ByUnit: map[string]debugger.Answer{
					"a": {Verdict: debugger.Incorrect},
					"b": {Verdict: debugger.Correct},
					"c": {Verdict: debugger.Correct},
				},
			},
			wantUnit:      "a",
			wantQuestions: 2,
			wantFirst:     "b",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, _ := traceIt(t, tc.src)
			sess := debugger.New(res.Tree, tc.oracle, debugger.Options{
				Strategy: debugger.DivideAndQuery,
			})
			out, err := sess.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !out.Localized() || out.Bug.Unit.Name != tc.wantUnit {
				t.Fatalf("bug = %v, want %s\n%s", out.Bug, tc.wantUnit, transcript(out))
			}
			if out.Questions != tc.wantQuestions {
				t.Errorf("questions = %d, want %d\n%s", out.Questions, tc.wantQuestions, transcript(out))
			}
			var first string
			for _, ev := range out.Transcript {
				if ev.Kind == debugger.EvQuestion {
					first = ev.Node.Unit.Name
					break
				}
			}
			if tc.wantFirst != "" && first != tc.wantFirst {
				t.Errorf("first question went to %q, want %q\n%s", first, tc.wantFirst, transcript(out))
			}
		})
	}
}

// dqChain is main -> a -> b -> c, reused by the don't-know cases.
const dqChain = `
program chain;
var r: integer;

function c(x: integer): integer;
begin
  c := x + 1;
end;

function b(x: integer): integer;
begin
  b := c(x) * 2;
end;

function a(x: integer): integer;
begin
  a := b(x) - 1;
end;

begin
  r := a(3);
  writeln(r);
end.`

// TestDivideAndQueryDontKnowSubtreeStillSearched pins the soundness fix:
// a don't-know answer must leave the node's subtree in the suspect set.
// On the chain with b unanswerable but c incorrect, the bug in c must
// still be localized — the pre-fix engine conflated don't-know with
// correct, cut b's whole subtree, and blamed a instead.
func TestDivideAndQueryDontKnowSubtreeStillSearched(t *testing.T) {
	for _, strat := range []debugger.Strategy{debugger.DivideAndQuery, debugger.WeightedDivideAndQuery} {
		t.Run(strat.String(), func(t *testing.T) {
			res, _ := traceIt(t, dqChain)
			oracle := &debugger.ScriptedOracle{
				ByUnit: map[string]debugger.Answer{
					"a": {Verdict: debugger.Incorrect},
					"b": {Verdict: debugger.DontKnow},
					"c": {Verdict: debugger.Incorrect},
				},
			}
			sess := debugger.New(res.Tree, oracle, debugger.Options{Strategy: strat})
			out, err := sess.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !out.Localized() || out.Bug.Unit.Name != "c" {
				t.Fatalf("bug = %v, want c (inside the don't-know subtree)\n%s", out.Bug, transcript(out))
			}
		})
	}
}

// TestDivideAndQueryDontKnowResidueInconclusive: when the region cannot
// be narrowed past unanswered nodes, the search must end inconclusive —
// pinning the suspect would silently skip the bodies nobody vouched for.
// Here a is incorrect, c is correct, and b is unanswerable: the bug may
// be in a or in b, so neither may be blamed.
func TestDivideAndQueryDontKnowResidueInconclusive(t *testing.T) {
	for _, strat := range []debugger.Strategy{debugger.DivideAndQuery, debugger.WeightedDivideAndQuery} {
		t.Run(strat.String(), func(t *testing.T) {
			res, _ := traceIt(t, dqChain)
			oracle := &debugger.ScriptedOracle{
				ByUnit: map[string]debugger.Answer{
					"a": {Verdict: debugger.Incorrect},
					"b": {Verdict: debugger.DontKnow},
					"c": {Verdict: debugger.Correct},
				},
			}
			sess := debugger.New(res.Tree, oracle, debugger.Options{Strategy: strat})
			out, err := sess.Run()
			if err != nil {
				t.Fatal(err)
			}
			if out.Localized() {
				t.Fatalf("localized %v, want inconclusive (don't-know residue)\n%s", out.Bug, transcript(out))
			}
		})
	}
}

// TestDivideAndQueryAllDontKnowInconclusive: a user who can answer
// nothing must end with no localization at all — not a false blame of
// the program body (which the root assumption would otherwise pin once
// every subtree were unsoundly cut).
func TestDivideAndQueryAllDontKnowInconclusive(t *testing.T) {
	for _, strat := range []debugger.Strategy{debugger.DivideAndQuery, debugger.WeightedDivideAndQuery} {
		t.Run(strat.String(), func(t *testing.T) {
			res, _ := traceIt(t, dqChain)
			oracle := &debugger.ScriptedOracle{Default: debugger.Answer{Verdict: debugger.DontKnow}}
			sess := debugger.New(res.Tree, oracle, debugger.Options{Strategy: strat})
			out, err := sess.Run()
			if err != nil {
				t.Fatal(err)
			}
			if out.Localized() {
				t.Fatalf("localized %v, want inconclusive\n%s", out.Bug, transcript(out))
			}
			if out.Questions != 3 {
				t.Errorf("questions = %d, want 3 (each of a, b, c asked exactly once)\n%s",
					out.Questions, transcript(out))
			}
		})
	}
}

// TestWeightedDivideAndQueryCustomWeights drives the weighted selector
// with an explicit cost function: making c by far the heaviest call must
// move the first probe from the unweighted midpoint b down to c, per the
// Insa–Silva rule (minimize the worst-case remaining weight).
func TestWeightedDivideAndQueryCustomWeights(t *testing.T) {
	res, _ := traceIt(t, dqChain)
	oracle := &debugger.ScriptedOracle{
		ByUnit: map[string]debugger.Answer{
			"a": {Verdict: debugger.Incorrect},
			"b": {Verdict: debugger.Correct},
			"c": {Verdict: debugger.Correct},
		},
	}
	sess := debugger.New(res.Tree, oracle, debugger.Options{
		Strategy: debugger.WeightedDivideAndQuery,
		Weights: func(n *exectree.Node) int64 {
			if n.Unit.Name == "c" {
				return 10
			}
			return 1
		},
	})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "a" {
		t.Fatalf("bug = %v, want a\n%s", out.Bug, transcript(out))
	}
	var first string
	for _, ev := range out.Transcript {
		if ev.Kind == debugger.EvQuestion {
			first = ev.Node.Unit.Name
			break
		}
	}
	if first != "c" {
		t.Errorf("first question went to %q, want the heavyweight c\n%s", first, transcript(out))
	}
}

// TestWeightedDivideAndQueryRootFallback mirrors the all-correct plain
// case: the weighted variant must also fall back to the program body
// once every proper descendant is judged correct.
func TestWeightedDivideAndQueryRootFallback(t *testing.T) {
	res, _ := traceIt(t, dqChain)
	oracle := &debugger.ScriptedOracle{Default: debugger.Answer{Verdict: debugger.Correct}}
	sess := debugger.New(res.Tree, oracle, debugger.Options{Strategy: debugger.WeightedDivideAndQuery})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Localized() || out.Bug.Unit.Name != "chain" {
		t.Fatalf("bug = %v, want the program body chain\n%s", out.Bug, transcript(out))
	}
}
