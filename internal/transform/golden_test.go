package transform_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
	"gadt/internal/progen"
	"gadt/internal/transform"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTransformGoldenProgenGlobals pins the transformed source of a
// generated Globals-style program with loops: globals become explicit
// var parameters and every loop is extracted into a recursive loop
// unit. The mutation campaign and the figure reproductions both depend
// on this output staying byte-for-byte stable.
func TestTransformGoldenProgenGlobals(t *testing.T) {
	p := progen.Generate(progen.Config{Depth: 2, Fanout: 2, Style: progen.Globals, Loops: true})
	golden := filepath.Join("..", "..", "testdata", "progen_globals_transformed.golden")

	render := func() []byte {
		prog := parser.MustParse("progen.pas", p.Fixed)
		info, err := sem.Analyze(prog)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		res, err := transform.Apply(info)
		if err != nil {
			t.Fatalf("transform: %v", err)
		}
		var buf bytes.Buffer
		buf.WriteString(printer.Print(res.Program))
		return buf.Bytes()
	}

	got := render()
	if again := render(); !bytes.Equal(got, again) {
		t.Fatalf("transformation is not deterministic:\n--- first ---\n%s--- second ---\n%s", got, again)
	}

	// The transformed source must itself be a valid program — the
	// debugger traces it, so a print/parse round-trip failure would
	// break every campaign subject of this style.
	reparsed, err := parser.ParseProgram("transformed.pas", string(got))
	if err != nil {
		t.Fatalf("transformed output does not re-parse: %v\n%s", err, got)
	}
	if _, err := sem.Analyze(reparsed); err != nil {
		t.Fatalf("transformed output does not re-analyze: %v\n%s", err, got)
	}

	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("transformed program differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
