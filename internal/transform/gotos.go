package transform

import (
	"fmt"
	"sort"

	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
)

const (
	eqOp  = token.Eq
	neqOp = token.NotEq
)

// breakGotos removes global gotos (the paper's exit side-effects):
// every routine that may exit non-locally gets an `out` exit-condition
// parameter; each global goto becomes `exitcond := code; goto exitlab`
// with exitlab placed at the routine's end; each call site receives the
// code in a fresh temporary and either jumps to the (now local) label or
// re-raises through its own exit-condition parameter.
func (st *state) breakGotos(p *ast.Program, info *sem.Info) error {
	cg := callgraph.Build(info)
	se := sideeffect.Analyze(info, cg)

	// Escape codes, program-wide, in deterministic order.
	codes := make(map[*sem.LabelInfo]int)
	for _, r := range info.Routines {
		for _, li := range se.Of[r].SortedExits() {
			if codes[li] == 0 {
				code := len(codes) + 1
				codes[li] = code
				st.res.EscapeCodes[code] = fmt.Sprintf("label %s in %s", li.Name, li.Routine.Name)
			}
		}
	}
	if len(codes) == 0 {
		return nil // no global gotos anywhere
	}

	// Reject functions with exit effects: breaking them would require
	// expression flattening (out of scope, as are pointer side-effects
	// in the paper).
	for _, r := range info.Routines {
		if r.Kind == ast.FuncKind && len(se.Of[r].ExitTargets) > 0 {
			return fmt.Errorf("transform: function %s contains a non-local goto, which is not supported", r.Name)
		}
	}

	// Per-routine glue names.
	exitParam := make(map[*sem.Routine]string)
	exitLabel := make(map[*sem.Routine]string)
	for _, r := range info.Routines {
		if len(se.Of[r].ExitTargets) == 0 || r.IsProgram() {
			continue
		}
		exitParam[r] = st.fresh("exitcond")
		exitLabel[r] = st.freshLabel(info)
	}

	for _, r := range info.Routines {
		st.breakGotosInRoutine(r, info, se, codes, exitParam, exitLabel)
	}
	return nil
}

// freshLabel invents an unused numeric label.
func (st *state) freshLabel(info *sem.Info) string {
	used := make(map[string]bool)
	for _, r := range info.Routines {
		for name := range r.Labels {
			used[name] = true
		}
	}
	n := 9000 + st.seq
	for {
		name := fmt.Sprintf("%d", n)
		if !used[name] && !st.names[name] {
			st.names[name] = true
			return name
		}
		n++
	}
}

func (st *state) breakGotosInRoutine(r *sem.Routine, info *sem.Info, se *sideeffect.Result,
	codes map[*sem.LabelInfo]int, exitParam, exitLabel map[*sem.Routine]string) {

	b := r.Block
	intType := func(pos ast.Node) *ast.NamedType {
		return &ast.NamedType{NamePos: pos.Pos(), Name: "integer"}
	}

	// Equip the routine itself.
	hasExit := exitParam[r] != ""
	if hasExit {
		pname, lname := exitParam[r], exitLabel[r]
		r.Decl.Params = append(r.Decl.Params, &ast.Param{
			DeclPos: r.Decl.Pos(), Mode: ast.Out, Names: []string{pname}, Type: intType(r.Decl),
		})
		st.res.Added[r.Name] = append(st.res.Added[r.Name], AddedParam{Name: pname, Mode: ast.Out, Display: ast.Out, ExitCond: true})
		b.Labels = append(b.Labels, &ast.LabelDecl{DeclPos: b.Pos(), Name: lname})
		init := &ast.AssignStmt{
			Lhs: &ast.Ident{NamePos: b.Pos(), Name: pname},
			Rhs: &ast.IntLit{LitPos: b.Pos(), Value: 0},
		}
		landing := &ast.LabeledStmt{LabelPos: b.Pos(), Label: lname, Stmt: &ast.EmptyStmt{SemiPos: b.Pos()}}
		b.Body.Stmts = append(append([]ast.Stmt{init}, b.Body.Stmts...), landing)
	}

	// Rewrite gotos and call sites in the body.
	var rewrite func(s ast.Stmt) ast.Stmt
	rewriteList := func(list []ast.Stmt) []ast.Stmt {
		out := make([]ast.Stmt, 0, len(list))
		for _, c := range list {
			out = append(out, rewrite(c))
		}
		return out
	}
	rewrite = func(s ast.Stmt) ast.Stmt {
		switch s := s.(type) {
		case nil:
			return nil
		case *ast.CompoundStmt:
			s.Stmts = rewriteList(s.Stmts)
			return s
		case *ast.IfStmt:
			s.Then = rewrite(s.Then)
			s.Else = rewrite(s.Else)
			return s
		case *ast.WhileStmt:
			s.Body = rewrite(s.Body)
			return s
		case *ast.RepeatStmt:
			s.Stmts = rewriteList(s.Stmts)
			return s
		case *ast.ForStmt:
			s.Body = rewrite(s.Body)
			return s
		case *ast.CaseStmt:
			for _, arm := range s.Arms {
				arm.Body = rewrite(arm.Body)
			}
			s.Else = rewrite(s.Else)
			return s
		case *ast.LabeledStmt:
			s.Stmt = rewrite(s.Stmt)
			return s
		case *ast.GotoStmt:
			li := info.GotoTgt[s]
			if li == nil || li.Routine == r {
				return s // local goto stays
			}
			// Global goto: raise the escape code and jump to the landing
			// label.
			repl := &ast.CompoundStmt{BeginPos: s.Pos(), Stmts: []ast.Stmt{
				&ast.AssignStmt{
					Lhs: &ast.Ident{NamePos: s.Pos(), Name: exitParam[r]},
					Rhs: &ast.IntLit{LitPos: s.Pos(), Value: int64(codes[li])},
				},
				&ast.GotoStmt{GotoPos: s.Pos(), Label: exitLabel[r]},
			}}
			st.mapOrigin(repl, s)
			return repl
		case *ast.CallStmt:
			callee := info.Calls[s]
			if callee == nil || len(se.Of[callee].ExitTargets) == 0 {
				return s
			}
			// Receive the callee's exit code in a fresh temporary and
			// dispatch.
			tmp := st.fresh(callee.Name + "_exit")
			b.Vars = append(b.Vars, &ast.VarDecl{DeclPos: s.Pos(), Names: []string{tmp}, Type: intType(s)})
			call := &ast.CallStmt{CallPos: s.Pos(), Name: s.Name,
				Args: append(append([]ast.Expr{}, s.Args...), &ast.Ident{NamePos: s.Pos(), Name: tmp})}
			st.mapOrigin(call, s)
			stmts := []ast.Stmt{call}
			targets := se.Of[callee].SortedExits()
			sort.SliceStable(targets, func(i, j int) bool { return codes[targets[i]] < codes[targets[j]] })
			reRaise := false
			for _, li := range targets {
				if li.Routine == r {
					check := &ast.IfStmt{
						IfPos: s.Pos(),
						Cond: &ast.BinaryExpr{Op: eqOp,
							X: &ast.Ident{NamePos: s.Pos(), Name: tmp},
							Y: &ast.IntLit{LitPos: s.Pos(), Value: int64(codes[li])}},
						Then: &ast.GotoStmt{GotoPos: s.Pos(), Label: li.Name},
					}
					st.mapOrigin(check, s)
					stmts = append(stmts, check)
				} else {
					reRaise = true
				}
			}
			if reRaise {
				check := &ast.IfStmt{
					IfPos: s.Pos(),
					Cond: &ast.BinaryExpr{Op: neqOp,
						X: &ast.Ident{NamePos: s.Pos(), Name: tmp},
						Y: &ast.IntLit{LitPos: s.Pos(), Value: 0}},
					Then: &ast.CompoundStmt{BeginPos: s.Pos(), Stmts: []ast.Stmt{
						&ast.AssignStmt{
							Lhs: &ast.Ident{NamePos: s.Pos(), Name: exitParam[r]},
							Rhs: &ast.Ident{NamePos: s.Pos(), Name: tmp}},
						&ast.GotoStmt{GotoPos: s.Pos(), Label: exitLabel[r]},
					}},
				}
				st.mapOrigin(check, s)
				stmts = append(stmts, check)
			}
			repl := &ast.CompoundStmt{BeginPos: s.Pos(), Stmts: stmts}
			st.mapOrigin(repl, s)
			return repl
		default:
			return s
		}
	}
	b.Body.Stmts = rewriteList(b.Body.Stmts)
}

// mapOrigin records that transformed node nw derives from the (possibly
// itself transformed) node old, following old's own origin when present.
func (st *state) mapOrigin(nw, old ast.Node) {
	if o, ok := st.res.Origins[old]; ok {
		st.res.Origins[nw] = o
		return
	}
	st.res.Origins[nw] = old
}
