package transform_test

import (
	"strings"
	"testing"
	"testing/quick"

	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
	"gadt/internal/progen"
	"gadt/internal/transform"
)

// TestQuickTransformEquivalence is the central property of the
// transformation phase, checked over randomly shaped synthetic
// programs: the transformed program prints exactly what the original
// prints ("the execution semantics of the original and the transformed
// program are equivalent", Section 5.2).
func TestQuickTransformEquivalence(t *testing.T) {
	prop := func(depth, fanout uint8, globals, loops bool, bugRaw []uint8) bool {
		cfg := progen.Config{
			Depth:  int(depth%3) + 1,
			Fanout: int(fanout%3) + 1,
			Loops:  loops,
		}
		if globals {
			cfg.Style = progen.Globals
		}
		for _, b := range bugRaw {
			cfg.BugPath = append(cfg.BugPath, int(b))
		}
		p := progen.Generate(cfg)
		for _, src := range []string{p.Buggy, p.Fixed} {
			prog, err := parser.ParseProgram("q.pas", src)
			if err != nil {
				t.Logf("parse failed: %v", err)
				return false
			}
			info, err := sem.Analyze(prog)
			if err != nil {
				t.Logf("analyze failed: %v", err)
				return false
			}
			want, err := runOnce(info)
			if err != nil {
				t.Logf("original run failed: %v", err)
				return false
			}
			res, err := transform.Apply(info)
			if err != nil {
				t.Logf("transform failed: %v", err)
				return false
			}
			got, err := runOnce(res.Info)
			if err != nil {
				t.Logf("transformed run failed: %v", err)
				return false
			}
			if got != want {
				t.Logf("cfg %+v: output %q != %q", cfg, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func runOnce(info *sem.Info) (string, error) {
	var out strings.Builder
	it := interp.New(info, interp.Config{Output: &out})
	if err := it.Run(); err != nil {
		return "", err
	}
	return out.String(), nil
}

// TestQuickTransformedRoundTrip: printing a transformed program and
// reparsing it yields a program that still analyzes and prints the same.
func TestQuickTransformedRoundTrip(t *testing.T) {
	prop := func(depth, fanout uint8, globals bool) bool {
		cfg := progen.Config{Depth: int(depth%3) + 1, Fanout: int(fanout%2) + 1, Loops: true}
		if globals {
			cfg.Style = progen.Globals
		}
		p := progen.Generate(cfg)
		prog, err := parser.ParseProgram("q.pas", p.Buggy)
		if err != nil {
			return false
		}
		info, err := sem.Analyze(prog)
		if err != nil {
			return false
		}
		res, err := transform.Apply(info)
		if err != nil {
			return false
		}
		printed := printer.Print(res.Program)
		reparsed, err := parser.ParseProgram("printed.pas", printed)
		if err != nil {
			t.Logf("reparse failed: %v\n%s", err, printed)
			return false
		}
		if _, err := sem.Analyze(reparsed); err != nil {
			t.Logf("reanalyze failed: %v", err)
			return false
		}
		return printer.Print(reparsed) == printed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
