package transform

import (
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/token"
)

// extractLoops rewrites every loop in the program into a synthetic
// recursive procedure (a loop unit). A while loop
//
//	while C do B
//
// becomes
//
//	procedure r_loop; begin if C then begin B; r_loop; end; end;
//	...; r_loop;
//
// so that each loop iteration shows up as one unit invocation in the
// execution tree — the per-iteration queries of Section 6.1. For loops
// are first brought into while form with an explicit limit variable;
// repeat loops test their condition after the body. Loops whose body
// places a label are left in place (jumping into a loop is not
// supported); gotos that merely leave the loop become global gotos of
// the loop unit and are handled by the goto-breaking pass.
func (st *state) extractLoops(p *ast.Program) {
	st.extractInBlock(p.Block, p.Name)
}

func (st *state) extractInBlock(b *ast.Block, routineName string) {
	for _, r := range b.Routines {
		owner := routineName
		if _, isLoop := st.res.Units[r.Name]; !isLoop || st.res.Units[r.Name].Kind == RoutineUnit {
			owner = r.Name
		}
		st.extractInBlock(r.Block, owner)
	}
	before := len(b.Routines)
	b.Body = st.extractInStmt(b.Body, b, routineName).(*ast.CompoundStmt)
	// Newly created loop units may contain further (inner) loops.
	for i := before; i < len(b.Routines); i++ {
		st.extractInBlock(b.Routines[i].Block, b.Routines[i].Name)
	}
}

// placesLabel reports whether s contains a labeled statement.
func placesLabel(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.LabeledStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

func (st *state) extractInStmt(s ast.Stmt, b *ast.Block, routineName string) ast.Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.CompoundStmt:
		for i, c := range s.Stmts {
			s.Stmts[i] = st.extractInStmt(c, b, routineName)
		}
		return s
	case *ast.IfStmt:
		s.Then = st.extractInStmt(s.Then, b, routineName)
		s.Else = st.extractInStmt(s.Else, b, routineName)
		return s
	case *ast.CaseStmt:
		for _, arm := range s.Arms {
			arm.Body = st.extractInStmt(arm.Body, b, routineName)
		}
		s.Else = st.extractInStmt(s.Else, b, routineName)
		return s
	case *ast.LabeledStmt:
		s.Stmt = st.extractInStmt(s.Stmt, b, routineName)
		return s
	case *ast.WhileStmt:
		if placesLabel(s.Body) {
			s.Body = st.extractInStmt(s.Body, b, routineName)
			return s
		}
		return st.makeLoopUnit(s, b, routineName, func(self string) ast.Stmt {
			// if C then begin B; self; end
			return &ast.IfStmt{
				IfPos: s.Pos(),
				Cond:  s.Cond,
				Then: &ast.CompoundStmt{BeginPos: s.Pos(), Stmts: []ast.Stmt{
					s.Body,
					&ast.CallStmt{CallPos: s.Pos(), Name: self},
				}},
			}
		}, nil)
	case *ast.RepeatStmt:
		for _, c := range s.Stmts {
			if placesLabel(c) {
				for i, cs := range s.Stmts {
					s.Stmts[i] = st.extractInStmt(cs, b, routineName)
				}
				return s
			}
		}
		return st.makeLoopUnit(s, b, routineName, func(self string) ast.Stmt {
			// B; if not C then self
			body := append([]ast.Stmt{}, s.Stmts...)
			body = append(body, &ast.IfStmt{
				IfPos: s.Pos(),
				Cond:  &ast.UnaryExpr{OpPos: s.Pos(), Op: token.Not, X: s.Cond},
				Then:  &ast.CallStmt{CallPos: s.Pos(), Name: self},
			})
			return &ast.CompoundStmt{BeginPos: s.Pos(), Stmts: body}
		}, nil)
	case *ast.ForStmt:
		if placesLabel(s.Body) {
			s.Body = st.extractInStmt(s.Body, b, routineName)
			return s
		}
		// Introduce explicit limit and trip-counter variables in the
		// enclosing block. The counter is essential for equivalence: a
		// Pascal for statement fixes its trip count up front, so a body
		// that assigns the control variable must neither change the
		// iteration count nor see its assignment overwritten past the
		// loop. Driving the recursion off the user-visible variable
		// would do both (and can recurse forever when the body resets
		// it); instead the hidden counter drives the recursion and the
		// control variable is re-seeded from it at each entry — exactly
		// the interpreter's execFor discipline.
		limitName := st.fresh(s.Var.Name + "_limit")
		cntName := st.fresh(s.Var.Name + "_cnt")
		b.Vars = append(b.Vars, &ast.VarDecl{
			DeclPos: s.Pos(),
			Names:   []string{limitName, cntName},
			Type:    &ast.NamedType{NamePos: s.Pos(), Name: "integer"},
		})
		cmpOp, stepOp := token.LessEq, token.Plus
		if s.Down {
			cmpOp, stepOp = token.GreatEq, token.Minus
		}
		mkVar := func() *ast.Ident { return &ast.Ident{NamePos: s.Var.Pos(), Name: s.Var.Name} }
		mkLimit := func() *ast.Ident { return &ast.Ident{NamePos: s.Pos(), Name: limitName} }
		mkCnt := func() *ast.Ident { return &ast.Ident{NamePos: s.Pos(), Name: cntName} }
		// cnt := From; limit := Limit; i := cnt — the interpreter's
		// evaluation order (From before Limit), each exactly once, and
		// the control variable holds From even for zero iterations.
		pre := []ast.Stmt{
			&ast.AssignStmt{Lhs: mkCnt(), Rhs: s.From},
			&ast.AssignStmt{Lhs: mkLimit(), Rhs: s.Limit},
			&ast.AssignStmt{Lhs: mkVar(), Rhs: mkCnt()},
		}
		return st.makeLoopUnit(s, b, routineName, func(self string) ast.Stmt {
			// if cnt <= limit then begin i := cnt; B; cnt := cnt ± 1; self; end
			return &ast.IfStmt{
				IfPos: s.Pos(),
				Cond:  &ast.BinaryExpr{Op: cmpOp, X: mkCnt(), Y: mkLimit()},
				Then: &ast.CompoundStmt{BeginPos: s.Pos(), Stmts: []ast.Stmt{
					&ast.AssignStmt{Lhs: mkVar(), Rhs: mkCnt()},
					s.Body,
					&ast.AssignStmt{Lhs: mkCnt(), Rhs: &ast.BinaryExpr{Op: stepOp, X: mkCnt(), Y: &ast.IntLit{LitPos: s.Pos(), Value: 1}}},
					&ast.CallStmt{CallPos: s.Pos(), Name: self},
				}},
			}
		}, pre)
	}
	return s
}

// makeLoopUnit creates the synthetic recursive procedure for a loop and
// returns the replacement statement (optional pre-statements followed by
// the initial call).
func (st *state) makeLoopUnit(loop ast.Stmt, b *ast.Block, routineName string, body func(self string) ast.Stmt, pre []ast.Stmt) ast.Stmt {
	name := st.fresh(routineName + "_loop")
	proc := &ast.Routine{
		DeclPos:   loop.Pos(),
		Kind:      ast.ProcKind,
		Name:      name,
		Synthetic: true,
		Block: &ast.Block{
			BlockPos: loop.Pos(),
			Body: &ast.CompoundStmt{
				BeginPos: loop.Pos(),
				Stmts:    []ast.Stmt{body(name)},
			},
		},
	}
	b.Routines = append(b.Routines, proc)

	origLoop := loop
	if o, ok := st.res.Origins[loop]; ok {
		if os, ok := o.(ast.Stmt); ok {
			origLoop = os
		}
	}
	st.res.Origins[proc] = origLoop
	st.res.Units[name] = UnitOrigin{Kind: LoopUnit, RoutineName: rootUnitName(st.res, routineName), Loop: origLoop}

	call := &ast.CallStmt{CallPos: loop.Pos(), Name: name}
	st.res.Origins[call] = origLoop
	if len(pre) == 0 {
		return call
	}
	repl := &ast.CompoundStmt{BeginPos: loop.Pos(), Stmts: append(pre, call)}
	st.res.Origins[repl] = origLoop
	return repl
}

// rootUnitName resolves nested loop units to the original routine that
// lexically contained the outermost loop.
func rootUnitName(res *Result, name string) string {
	for {
		u, ok := res.Units[name]
		if !ok || u.Kind == RoutineUnit {
			return name
		}
		if u.RoutineName == name {
			return name
		}
		name = u.RoutineName
	}
}
