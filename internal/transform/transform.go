// Package transform implements the paper's transformation phase
// (Sections 5.1 and 6): it turns a Pascal program with global
// side-effects and global gotos into an equivalent program whose units
// (procedures, functions, and extracted loop units) communicate only
// through explicit parameters, as required by algorithmic debugging.
//
// Three passes run in order:
//
//  1. Loop extraction: every loop becomes a synthetic recursive
//     procedure (a "unit" in the paper's sense), so each iteration is a
//     unit invocation in the execution tree. A goto leaving a loop
//     thereby becomes a global goto, letting pass 2 treat the paper's
//     "goto inside a loop addressed outside the loop" uniformly.
//  2. Goto breaking: routines with exit side-effects get an `out`
//     exit-condition parameter; global gotos become an assignment of an
//     escape code plus a local goto to a fresh label at the routine end,
//     and every call site tests the code and re-raises or jumps locally
//     (the paper's second transformation example).
//  3. Globals to parameters: Banning-style side-effect analysis decides,
//     for every routine, which non-local variables it references or
//     modifies; these become `in` (value), `var` or `out` parameters,
//     transitively through call chains (the paper's first example).
//
// Instead of source-level trace augmentation (the paper's
// save_incoming/outgoing_values calls), tracing uses the interpreter's
// event sink, which is observationally equivalent; see DESIGN.md.
//
// A construct map (Origins) links every transformed node to the original
// construct so the debugger can present original code to the user
// (Section 6.1).
package transform

import (
	"fmt"

	"gadt/internal/obs"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// UnitKind distinguishes original routines from extracted loop units.
type UnitKind int

const (
	RoutineUnit UnitKind = iota
	LoopUnit
)

// UnitOrigin describes where a transformed routine came from.
type UnitOrigin struct {
	Kind UnitKind
	// RoutineName is the original routine's name (for LoopUnit, the
	// routine whose body contained the loop).
	RoutineName string
	// Loop is the original loop statement for LoopUnit.
	Loop ast.Stmt
}

// AddedParam records one parameter introduced by the transformation.
type AddedParam struct {
	Name string
	// Mode is the actual parameter mode in the transformed program.
	// Display is the logical mode for presentation: a referenced-only
	// global is logically an `in` parameter even when alias analysis
	// forces by-reference passing (a variable that is var-bound anywhere
	// may be mutated through that alias while the callee runs, so a
	// value copy would go stale — Banning's alias problem).
	Mode    ast.ParamMode
	Display ast.ParamMode
	// GlobalOf names the original non-local variable, or "" for the
	// exit-condition parameter.
	GlobalOf string
	// ExitCond marks the exit-condition parameter.
	ExitCond bool
}

// Result is the outcome of the transformation phase.
type Result struct {
	// Program is the transformed program; Info is its (re-run) semantic
	// analysis.
	Program *ast.Program
	Info    *sem.Info

	// OrigProgram/OrigInfo describe the untouched input.
	OrigProgram *ast.Program
	OrigInfo    *sem.Info

	// Origins maps transformed AST nodes to the original nodes they were
	// derived from (identity for untouched constructs, the source loop
	// for loop-unit bodies, the original goto/call for inserted glue).
	Origins ast.CloneMap

	// Units maps transformed routine names to their origin.
	Units map[string]UnitOrigin

	// Added lists parameters introduced per transformed routine name,
	// in declaration order.
	Added map[string][]AddedParam

	// EscapeCodes maps exit-condition codes to a human-readable label
	// description ("label 9 in p"), shared program-wide.
	EscapeCodes map[int]string
}

// OriginRoutine maps a transformed unit name back to the ORIGINAL
// routine it came from: loop units resolve to the routine whose body
// contained the loop, ordinary routines to themselves, and unknown
// names (no transformation record) to themselves unchanged. The
// mutation campaign uses it to compare a localized unit against the
// routine the fault was injected into.
func (res *Result) OriginRoutine(unit string) string {
	if u, ok := res.Units[unit]; ok && u.RoutineName != "" {
		return u.RoutineName
	}
	return unit
}

// OriginalStmt resolves a transformed statement to its original
// counterpart, following the construct map transitively. Returns nil
// when the statement is pure synthesis (inserted glue).
func (res *Result) OriginalStmt(s ast.Stmt) ast.Stmt {
	var n ast.Node = s
	for {
		o, ok := res.Origins[n]
		if !ok || o == n {
			break
		}
		n = o
	}
	if n == ast.Node(s) {
		return s
	}
	os, _ := n.(ast.Stmt)
	return os
}

// Stages selects which transformation passes run. The zero value runs
// nothing (identity modulo cloning); AllStages is the full pipeline.
// Passes always run in pipeline order (loops, then gotos, then globals)
// regardless of which subset is enabled — the differential harness uses
// subsets to attribute an equivalence failure to one pass.
type Stages struct {
	Loops   bool // pass 1: extract loops into recursive units
	Gotos   bool // pass 2: break global gotos
	Globals bool // pass 3: globals to parameters
}

// AllStages enables the full pipeline.
func AllStages() Stages { return Stages{Loops: true, Gotos: true, Globals: true} }

// String renders the enabled stage set, e.g. "loops+globals" or "none".
func (s Stages) String() string {
	out := ""
	add := func(on bool, name string) {
		if !on {
			return
		}
		if out != "" {
			out += "+"
		}
		out += name
	}
	add(s.Loops, "loops")
	add(s.Gotos, "gotos")
	add(s.Globals, "globals")
	if out == "" {
		return "none"
	}
	return out
}

// Apply runs the full transformation pipeline on an analyzed program.
// The input program is not modified.
func Apply(info *sem.Info) (*Result, error) {
	return ApplyStages(info, AllStages())
}

// ApplyStages runs the selected transformation passes on an analyzed
// program. The input program is not modified.
func ApplyStages(info *sem.Info, stages Stages) (*Result, error) {
	clone, cm := ast.Clone(info.Program)
	res := &Result{
		OrigProgram: info.Program,
		OrigInfo:    info,
		Origins:     cm,
		Units:       make(map[string]UnitOrigin),
		Added:       make(map[string][]AddedParam),
		EscapeCodes: make(map[int]string),
	}
	// Seed Units with the original routines.
	for _, r := range info.Routines {
		res.Units[r.Name] = UnitOrigin{Kind: RoutineUnit, RoutineName: r.Name}
	}

	st := &state{res: res, names: collectNames(clone)}

	// Pass 1: loop extraction (pure AST rewriting).
	if stages.Loops {
		st.extractLoops(clone)
	}

	// (Re-)analyze the clone: the input info describes the original AST,
	// and passes 2 and 3 must resolve symbols of the clone they rewrite.
	cur, err := sem.Analyze(clone)
	if err != nil {
		return nil, fmt.Errorf("transform: loop extraction broke the program: %w", err)
	}

	// Pass 2: break global gotos.
	if stages.Gotos {
		if err := st.breakGotos(clone, cur); err != nil {
			return nil, err
		}
		info3, err := sem.Analyze(clone)
		if err != nil {
			return nil, fmt.Errorf("transform: goto breaking broke the program: %w", err)
		}
		cur = info3
	}

	// Pass 3: globals to parameters.
	if stages.Globals {
		if err := st.globalsToParams(clone, cur); err != nil {
			return nil, err
		}
	}

	final, err := sem.Analyze(clone)
	if err != nil {
		return nil, fmt.Errorf("transform: transformed program does not re-analyze: %w", err)
	}
	res.Program = clone
	res.Info = final
	return res, nil
}

// state carries shared transformation machinery.
type state struct {
	res   *Result
	names map[string]bool // all identifiers in use, for fresh-name generation
	seq   int
}

// fresh returns an unused identifier based on base.
func (st *state) fresh(base string) string {
	name := base
	for st.names[name] {
		st.seq++
		name = fmt.Sprintf("%s_%d", base, st.seq)
	}
	st.names[name] = true
	return name
}

// collectNames gathers every identifier spelled in the program.
func collectNames(p *ast.Program) map[string]bool {
	names := map[string]bool{p.Name: true}
	ast.Inspect(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			names[n.Name] = true
		case *ast.Routine:
			names[n.Name] = true
		case *ast.VarDecl:
			for _, s := range n.Names {
				names[s] = true
			}
		case *ast.Param:
			for _, s := range n.Names {
				names[s] = true
			}
		case *ast.ConstDecl:
			names[n.Name] = true
		case *ast.TypeDecl:
			names[n.Name] = true
		case *ast.CallStmt:
			names[n.Name] = true
		case *ast.CallExpr:
			names[n.Name] = true
		case *ast.FieldExpr:
			names[n.Field] = true
		}
		return true
	})
	return names
}

// GrowthFactor reports the size ratio of the transformed program to the
// original, measured in printed source lines — the paper's Section 9
// metric ("small procedures usually grow less than a factor of two").
type GrowthFactor struct {
	OrigLines, NewLines int
	Factor              float64
}

// Stats summarizes what the transformation phase did, for the
// observability layer and reports.
type Stats struct {
	// Routines is the transformed program's unit count (original
	// routines plus extracted loop units).
	Routines int
	// RoutinesChanged counts units that gained at least one parameter.
	RoutinesChanged int
	// LoopUnits counts loop bodies extracted into synthetic units.
	LoopUnits int
	// GlobalsLifted counts parameters introduced for non-local
	// variables, summed over all units.
	GlobalsLifted int
	// GotosBroken counts distinct global-goto escape codes introduced.
	GotosBroken int
}

// Stats computes the transformation summary from the result.
func (res *Result) Stats() Stats {
	st := Stats{Routines: len(res.Units), GotosBroken: len(res.EscapeCodes)}
	for _, u := range res.Units {
		if u.Kind == LoopUnit {
			st.LoopUnits++
		}
	}
	for _, added := range res.Added {
		if len(added) == 0 {
			continue
		}
		st.RoutinesChanged++
		for _, a := range added {
			if a.GlobalOf != "" {
				st.GlobalsLifted++
			}
		}
	}
	return st
}

// RecordMetrics adds the transformation counters to a registry
// (transform.routines, transform.routines.changed, transform.loop-units,
// transform.globals-lifted, transform.gotos-broken). Nil-safe.
func (res *Result) RecordMetrics(m *obs.Registry) {
	if m == nil {
		return
	}
	st := res.Stats()
	m.Counter("transform.routines").Add(int64(st.Routines))
	m.Counter("transform.routines.changed").Add(int64(st.RoutinesChanged))
	m.Counter("transform.loop-units").Add(int64(st.LoopUnits))
	m.Counter("transform.globals-lifted").Add(int64(st.GlobalsLifted))
	m.Counter("transform.gotos-broken").Add(int64(st.GotosBroken))
}
