package transform

import (
	"fmt"
	"sort"

	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// globalEntry is one non-local variable converted to a parameter of a
// routine.
type globalEntry struct {
	v       *sem.VarSym
	mode    ast.ParamMode // actual mode in the transformed program
	display ast.ParamMode // logical mode (in/var/out) for presentation
	name    string        // parameter name inside the routine (usually v.Name)
}

// varBoundVars collects every variable that may be reachable through a
// second name while a callee runs, so a read-only use of it cannot
// safely be converted into a value copy: variables that appear as a
// var/out actual argument anywhere in the program, and every var/out
// formal parameter itself — a by-reference formal aliases whatever the
// caller passed (here the other direction of the same alias pair), and
// a value snapshot of it goes stale the moment the aliased cell is
// written through the original name.
func varBoundVars(info *sem.Info, cg *callgraph.Graph) map[*sem.VarSym]bool {
	bound := make(map[*sem.VarSym]bool)
	for _, sites := range cg.Sites {
		for _, s := range sites {
			for i, p := range s.Callee.Params {
				if p.Mode == ast.Value || i >= len(s.Args) {
					continue
				}
				if base := info.VarOf(s.Args[i]); base != nil {
					bound[base] = true
				}
			}
		}
	}
	for _, r := range info.Routines {
		for _, p := range r.Params {
			if p.IsByRef() {
				bound[p] = true
			}
		}
	}
	return bound
}

// globalsToParams converts every non-local variable reference into
// explicit parameter passing (the paper's first transformation example):
// referenced-only globals become value ("in") parameters, modified ones
// become var or out parameters, and every call site passes the variable
// through, transitively.
func (st *state) globalsToParams(p *ast.Program, info *sem.Info) error {
	cg := callgraph.Build(info)
	se := sideeffect.Analyze(info, cg)
	bound := varBoundVars(info, cg)

	// Plan the new parameters per routine.
	plan := make(map[*sem.Routine][]globalEntry)
	for _, r := range info.Routines {
		if r.IsProgram() {
			continue
		}
		eff := se.Of[r]
		if len(eff.ModGlobals) == 0 && len(eff.RefGlobals) == 0 {
			continue
		}
		taken := make(map[string]bool)
		for _, v := range r.AllVars() {
			taken[v.Name] = true
		}
		var entries []globalEntry
		add := func(v *sem.VarSym, mode, display ast.ParamMode) {
			name := v.Name
			if taken[name] {
				name = st.fresh(name + "_g")
			}
			taken[name] = true
			entries = append(entries, globalEntry{v: v, mode: mode, display: display, name: name})
		}
		var ins, vars, outs []*sem.VarSym
		for _, v := range eff.SortedRef() {
			if !eff.ModGlobals[v] {
				ins = append(ins, v)
			}
		}
		for _, v := range eff.SortedMod() {
			if eff.RefGlobals[v] {
				vars = append(vars, v)
			} else {
				outs = append(outs, v)
			}
		}
		for _, v := range ins {
			// Value copy only when no alias can mutate v during the
			// call; otherwise pass by reference but present as `in`.
			if bound[v] {
				add(v, ast.VarMode, ast.Value)
			} else {
				add(v, ast.Value, ast.Value)
			}
		}
		for _, v := range vars {
			add(v, ast.VarMode, ast.VarMode)
		}
		for _, v := range outs {
			// Out parameters still bind by reference, so may-definitions
			// (partial array updates) preserve untouched elements.
			add(v, ast.Out, ast.Out)
		}
		plan[r] = entries
	}
	if len(plan) == 0 {
		return nil
	}

	// Rewrite each routine: rename non-local references to the new
	// parameter names, then extend call sites, then append the formal
	// parameters.
	for _, r := range info.Routines {
		entries := plan[r]
		byVar := make(map[*sem.VarSym]string, len(entries))
		for _, en := range entries {
			byVar[en.v] = en.name
		}

		// Rename references to converted globals within r's own body.
		ast.Inspect(r.Block.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*sem.VarSym); ok {
					if name, hit := byVar[v]; hit && id.Name != name {
						id.Name = name
					}
				}
			}
			return true
		})

		// denote returns how variable v is spelled inside r.
		denote := func(v *sem.VarSym, pos ast.Node) ast.Expr {
			name := v.Name
			if pn, hit := byVar[v]; hit {
				name = pn
			}
			return &ast.Ident{NamePos: pos.Pos(), Name: name}
		}

		// Extend call sites in r's body.
		if err := st.extendCalls(r, info, plan, denote); err != nil {
			return err
		}

		// Append the formal parameters.
		if len(entries) > 0 {
			for _, en := range entries {
				texpr, err := typeExprOf(en.v)
				if err != nil {
					return fmt.Errorf("transform: lifting %s into a parameter of %s: %w", en.v.Name, r.Name, err)
				}
				r.Decl.Params = append(r.Decl.Params, &ast.Param{
					DeclPos: r.Decl.Pos(),
					Mode:    en.mode,
					Names:   []string{en.name},
					Type:    texpr,
				})
				st.res.Added[r.Name] = append(st.res.Added[r.Name], AddedParam{
					Name: en.name, Mode: en.mode, Display: en.display, GlobalOf: en.v.Name,
				})
			}
		}
	}
	return nil
}

// typeExprOf reconstructs a type denotation for v from its declaration.
// Type names declared in ancestors remain visible in descendants, so the
// original denotation can be reused verbatim. A variable whose
// declaration carries no reusable denotation (e.g. a function-result
// pseudo-variable, whose Decl is the *ast.Routine) cannot be lifted into
// a parameter: silently guessing a type here would miscompile the lifted
// global, so it is a hard error.
func typeExprOf(v *sem.VarSym) (ast.TypeExpr, error) {
	switch d := v.Decl.(type) {
	case *ast.VarDecl:
		return ast.CloneTypeExpr(d.Type), nil
	case *ast.Param:
		return ast.CloneTypeExpr(d.Type), nil
	}
	return nil, fmt.Errorf("variable %s has no reconstructible type denotation (declared by %T)", v.Name, v.Decl)
}

// extendCalls appends global-passing arguments to every call in r's body
// whose callee gained parameters. Parameterless function references in
// expression position are promoted to explicit call expressions.
func (st *state) extendCalls(r *sem.Routine, info *sem.Info, plan map[*sem.Routine][]globalEntry, denote func(*sem.VarSym, ast.Node) ast.Expr) error {
	var rewriteExpr func(e ast.Expr) ast.Expr
	extend := func(node ast.Node, args []ast.Expr) []ast.Expr {
		callee := info.Calls[node]
		if callee == nil {
			return args
		}
		for _, en := range plan[callee] {
			args = append(args, denote(en.v, node))
		}
		return args
	}
	rewriteExprs := func(es []ast.Expr) {
		for i, e := range es {
			es[i] = rewriteExpr(e)
		}
	}
	rewriteExpr = func(e ast.Expr) ast.Expr {
		switch e := e.(type) {
		case nil:
			return nil
		case *ast.Ident:
			// A parameterless function call gaining parameters must
			// become an explicit call expression.
			if callee := info.Calls[e]; callee != nil && len(plan[callee]) > 0 {
				ce := &ast.CallExpr{CallPos: e.Pos(), Name: e.Name}
				ce.Args = extend(e, nil)
				info.Calls[ce] = callee // keep resolution for later passes
				st.mapOrigin(ce, e)
				return ce
			}
			return e
		case *ast.BinaryExpr:
			e.X = rewriteExpr(e.X)
			e.Y = rewriteExpr(e.Y)
			return e
		case *ast.UnaryExpr:
			e.X = rewriteExpr(e.X)
			return e
		case *ast.IndexExpr:
			e.X = rewriteExpr(e.X)
			rewriteExprs(e.Indices)
			return e
		case *ast.FieldExpr:
			e.X = rewriteExpr(e.X)
			return e
		case *ast.CallExpr:
			rewriteExprs(e.Args)
			e.Args = extend(e, e.Args)
			return e
		case *ast.SetLit:
			rewriteExprs(e.Elems)
			return e
		default:
			return e
		}
	}

	var rewriteStmt func(s ast.Stmt)
	rewriteStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.CompoundStmt:
			for _, c := range s.Stmts {
				rewriteStmt(c)
			}
		case *ast.AssignStmt:
			s.Lhs = rewriteExpr(s.Lhs)
			s.Rhs = rewriteExpr(s.Rhs)
		case *ast.CallStmt:
			rewriteExprs(s.Args)
			s.Args = extend(s, s.Args)
		case *ast.IfStmt:
			s.Cond = rewriteExpr(s.Cond)
			rewriteStmt(s.Then)
			rewriteStmt(s.Else)
		case *ast.WhileStmt:
			s.Cond = rewriteExpr(s.Cond)
			rewriteStmt(s.Body)
		case *ast.RepeatStmt:
			for _, c := range s.Stmts {
				rewriteStmt(c)
			}
			s.Cond = rewriteExpr(s.Cond)
		case *ast.ForStmt:
			s.From = rewriteExpr(s.From)
			s.Limit = rewriteExpr(s.Limit)
			rewriteStmt(s.Body)
		case *ast.CaseStmt:
			s.Expr = rewriteExpr(s.Expr)
			for _, arm := range s.Arms {
				rewriteStmt(arm.Body)
			}
			rewriteStmt(s.Else)
		case *ast.LabeledStmt:
			rewriteStmt(s.Stmt)
		}
	}
	rewriteStmt(r.Block.Body)
	return nil
}

// sortedPlanRoutines is a debugging helper listing planned routines.
func sortedPlanRoutines(plan map[*sem.Routine][]globalEntry) []string {
	var out []string
	for r := range plan {
		out = append(out, fmt.Sprintf("%s(+%d)", r.Name, len(plan[r])))
	}
	sort.Strings(out)
	return out
}
