package transform_test

import (
	"strings"
	"testing"

	"gadt/internal/analysis/callgraph"
	"gadt/internal/analysis/sideeffect"
	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/printer"
	"gadt/internal/pascal/sem"
	"gadt/internal/transform"
)

func apply(t *testing.T, src string) *transform.Result {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res, err := transform.Apply(info)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return res
}

func runProgram(t *testing.T, info *sem.Info, input string) string {
	t.Helper()
	var out strings.Builder
	it := interp.New(info, interp.Config{Input: strings.NewReader(input), Output: &out})
	if err := it.Run(); err != nil {
		t.Fatalf("run: %v\nprogram:\n%s", err, printer.Print(info.Program))
	}
	return out.String()
}

// TestBehaviorPreservation is the central equivalence check: the
// transformed program must produce the same output as the original
// ("the execution semantics of the original and the transformed program
// are equivalent", Section 5.2).
func TestBehaviorPreservation(t *testing.T) {
	cases := []struct {
		name, src, input string
	}{
		{"sqrtest", paper.Sqrtest, ""},
		{"sqrtestFixed", paper.SqrtestFixed, ""},
		{"pqr", paper.PQR, ""},
		{"sliceThen", paper.SliceExample, "1 4"},
		{"sliceElse", paper.SliceExample, "3 4 9"},
		{"globals", paper.GlobalSideEffects, ""},
		{"globalGoto", paper.GlobalGoto, ""},
		{"loopGoto", paper.LoopGoto, ""},
		{"arrsum", paper.ArrsumProgram, "3 "}, // reads n only; array is zero
		{"nestedLoops", `
program t;
var i, j, s: integer;
begin
  s := 0;
  for i := 1 to 4 do
    for j := 1 to i do
      s := s + j;
  writeln(s);
end.`, ""},
		{"whileAccum", `
program t;
var n, f: integer;
begin
  read(n);
  f := 1;
  while n > 1 do begin
    f := f * n;
    n := n - 1;
  end;
  writeln(f);
end.`, "6"},
		{"repeatLoop", `
program t;
var i, s: integer;
begin
  i := 0; s := 0;
  repeat
    i := i + 1;
    s := s + i;
  until i >= 5;
  writeln(i, s);
end.`, ""},
		{"downto", `
program t;
var i, s: integer;
begin
  s := 0;
  for i := 10 downto 7 do s := s * 10 + i;
  writeln(s);
end.`, ""},
		{"globalsDeep", `
program t;
var g, acc: integer;

procedure leaf;
begin
  acc := acc + g;
end;

procedure mid;
begin
  g := g * 2;
  leaf;
end;

begin
  g := 3;
  acc := 0;
  mid;
  leaf;
  writeln(g, acc);
end.`, ""},
		{"gotoOutOfNestedLoop", `
program t;
label 9;
var i, j, hits: integer;
begin
  hits := 0;
  for i := 1 to 10 do
    for j := 1 to 10 do begin
      hits := hits + 1;
      if i * j > 12 then goto 9;
    end;
  9: writeln(i, j, hits);
end.`, ""},
		{"functionGlobals", `
program t;
var base: integer;

function scaled(x: integer): integer;
begin
  scaled := x * base;
end;

begin
  base := 7;
  writeln(scaled(6));
end.`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := parser.MustParse("t.pas", tc.src)
			info, err := sem.Analyze(prog)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			want := runProgram(t, info, tc.input)
			res, err := transform.Apply(info)
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			got := runProgram(t, res.Info, tc.input)
			if got != want {
				t.Errorf("output mismatch:\noriginal:    %q\ntransformed: %q\n--- transformed program ---\n%s",
					want, got, printer.Print(res.Program))
			}
		})
	}
}

// TestNoGlobalEffectsAfterTransform verifies the key postcondition: in
// the transformed program no routine has global side-effects or exit
// side-effects (Section 5.1).
func TestNoGlobalEffectsAfterTransform(t *testing.T) {
	for name, src := range map[string]string{
		"sqrtest": paper.Sqrtest, "pqr": paper.PQR, "globals": paper.GlobalSideEffects,
		"globalGoto": paper.GlobalGoto, "loopGoto": paper.LoopGoto, "arrsum": paper.ArrsumProgram,
	} {
		t.Run(name, func(t *testing.T) {
			res := apply(t, src)
			cg := callgraph.Build(res.Info)
			se := sideeffect.Analyze(res.Info, cg)
			for _, r := range res.Info.Routines {
				if r == res.Info.Main {
					continue
				}
				e := se.Of[r]
				if e.HasGlobalEffects() {
					t.Errorf("%s still has global effects after transform: MOD=%v REF=%v EXIT=%v\n%s",
						r.Name, e.SortedMod(), e.SortedRef(), e.SortedExits(), printer.Print(res.Program))
				}
			}
		})
	}
}

func TestGlobalsBecomeParams(t *testing.T) {
	res := apply(t, paper.GlobalSideEffects)
	out := printer.Print(res.Program)
	// p(var y) references global x (read) and z (write-only). Because x
	// is var-bound at the call p(x), the alias forces by-reference
	// passing for x (logical mode stays `in`).
	if !strings.Contains(out, "procedure p(var y: integer; var x: integer; out z: integer)") {
		t.Errorf("p's signature not extended as expected:\n%s", out)
	}
	if !strings.Contains(out, "p(x, x, z)") {
		t.Errorf("call site not extended with globals:\n%s", out)
	}
	added := res.Added["p"]
	if len(added) != 2 {
		t.Fatalf("Added[p] = %v, want 2 entries", added)
	}
	if added[0].GlobalOf != "x" || added[0].Mode != ast.VarMode || added[0].Display != ast.Value {
		t.Errorf("added[0] = %+v, want var x displayed as in", added[0])
	}
	if added[1].GlobalOf != "z" || added[1].Mode != ast.Out {
		t.Errorf("added[1] = %+v, want out z", added[1])
	}
}

func TestLoopUnitsCreated(t *testing.T) {
	res := apply(t, paper.Sqrtest)
	var loopUnits []string
	for name, u := range res.Units {
		if u.Kind == transform.LoopUnit {
			loopUnits = append(loopUnits, name)
			if u.RoutineName != "arrsum" {
				t.Errorf("loop unit %s attributed to %s, want arrsum", name, u.RoutineName)
			}
			if u.Loop == nil {
				t.Errorf("loop unit %s has no original loop", name)
			} else if _, ok := u.Loop.(*ast.ForStmt); !ok {
				t.Errorf("loop unit %s origin is %T, want *ast.ForStmt", name, u.Loop)
			}
		}
	}
	if len(loopUnits) != 1 {
		t.Fatalf("loop units = %v, want exactly 1 (arrsum's for)", loopUnits)
	}
	// The unit exists as a synthetic routine in the transformed program.
	r := res.Info.LookupRoutine(loopUnits[0])
	if r == nil || !r.Synthetic {
		t.Errorf("loop unit routine missing or not synthetic: %v", r)
	}
}

func TestGotoBreaking(t *testing.T) {
	res := apply(t, paper.GlobalGoto)
	out := printer.Print(res.Program)
	if strings.Contains(out, "goto 9") && !strings.Contains(out, "9:") {
		t.Errorf("dangling global goto remains:\n%s", out)
	}
	q := res.Info.LookupRoutine("q")
	if q == nil {
		t.Fatal("q missing after transform")
	}
	var exitParams int
	for _, a := range res.Added["q"] {
		if a.ExitCond {
			exitParams++
		}
	}
	if exitParams != 1 {
		t.Errorf("q gained %d exit params, want 1 (%v)", exitParams, res.Added["q"])
	}
	if len(res.EscapeCodes) == 0 {
		t.Error("no escape codes recorded")
	}
	for _, desc := range res.EscapeCodes {
		if !strings.Contains(desc, "label") {
			t.Errorf("escape code description = %q", desc)
		}
	}
}

func TestTransformedProgramRoundTrips(t *testing.T) {
	for name, src := range map[string]string{
		"sqrtest": paper.Sqrtest, "globalGoto": paper.GlobalGoto, "loopGoto": paper.LoopGoto,
	} {
		t.Run(name, func(t *testing.T) {
			res := apply(t, src)
			out := printer.Print(res.Program)
			reparsed, err := parser.ParseProgram("transformed.pas", out)
			if err != nil {
				t.Fatalf("transformed program does not reparse: %v\n%s", err, out)
			}
			if _, err := sem.Analyze(reparsed); err != nil {
				t.Fatalf("transformed program does not re-analyze: %v\n%s", err, out)
			}
		})
	}
}

func TestGrowthFactorUnderTwo(t *testing.T) {
	// Section 9: "Small procedures usually grow less than a factor of
	// two after transformations." Measured on the paper's own programs
	// (loop extraction included).
	for name, src := range map[string]string{
		"globals": paper.GlobalSideEffects, "pqr": paper.PQR, "globalGoto": paper.GlobalGoto,
	} {
		t.Run(name, func(t *testing.T) {
			prog := parser.MustParse("t.pas", src)
			info, err := sem.Analyze(prog)
			if err != nil {
				t.Fatal(err)
			}
			res, err := transform.Apply(info)
			if err != nil {
				t.Fatal(err)
			}
			origLines := len(strings.Split(printer.Print(prog), "\n"))
			newLines := len(strings.Split(printer.Print(res.Program), "\n"))
			factor := float64(newLines) / float64(origLines)
			t.Logf("%s: %d -> %d lines (%.2fx)", name, origLines, newLines, factor)
			if factor >= 2.0 {
				t.Errorf("growth factor %.2f >= 2 (%d -> %d lines)", factor, origLines, newLines)
			}
		})
	}
}

func TestOriginalStmtMapping(t *testing.T) {
	res := apply(t, paper.LoopGoto)
	// Every statement in the transformed program maps to an original
	// construct or is recognizable glue.
	mapped, total := 0, 0
	ast.Inspect(res.Program, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if _, isCompound := s.(*ast.CompoundStmt); isCompound {
			return true
		}
		total++
		if o := res.OriginalStmt(s); o != nil {
			// The origin must belong to the original tree or be the
			// statement itself.
			mapped++
		}
		return true
	})
	if total == 0 || mapped == 0 {
		t.Fatalf("no statements mapped (total=%d mapped=%d)", total, mapped)
	}
}

func TestUnitsSeededWithRoutines(t *testing.T) {
	res := apply(t, paper.PQR)
	for _, name := range []string{"p", "q", "r"} {
		u, ok := res.Units[name]
		if !ok || u.Kind != transform.RoutineUnit {
			t.Errorf("Units[%s] = %+v, want routine unit", name, u)
		}
	}
}

func TestIdempotentWhenNoEffects(t *testing.T) {
	// A program without globals, gotos or loops transforms to itself
	// (modulo printing).
	src := paper.PQR
	res := apply(t, src)
	if len(res.Added) != 0 {
		t.Errorf("PQR gained parameters: %v", res.Added)
	}
	for name, u := range res.Units {
		if u.Kind == transform.LoopUnit {
			t.Errorf("PQR gained loop unit %s", name)
		}
	}
}

func TestNameCollisionAvoidance(t *testing.T) {
	// The callee already has a parameter named like the global; the new
	// parameter must be renamed.
	res := apply(t, `
program t;
var g: integer;

procedure p(g: integer);
var local: integer;

  procedure inner;
  begin
    local := local + g;
  end;

begin
  local := g;
  inner;
  writeln(local);
end;

begin
  g := 5;
  p(3);
end.`)
	// inner references p's g (a value param of p) and p's local — those
	// are globals from inner's perspective.
	out := printer.Print(res.Program)
	if _, err := sem.Analyze(res.Program); err != nil {
		t.Fatalf("re-analysis failed: %v\n%s", err, out)
	}
	got := runProgram(t, res.Info, "")
	// local := g(param)=3, then inner adds p's g again: 3+3=6.
	if got != "6\n" {
		t.Errorf("output = %q, want 6", got)
	}
}

func TestFunctionWithGlobalGotoRejected(t *testing.T) {
	prog := parser.MustParse("t.pas", `
program t;
label 9;
var x: integer;

function f(n: integer): integer;
begin
  if n < 0 then goto 9;
  f := n;
end;

begin
  x := f(3);
  9: writeln(x);
end.`)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := transform.Apply(info); err == nil ||
		!strings.Contains(err.Error(), "non-local goto") {
		t.Errorf("err = %v, want unsupported-function error", err)
	}
}

func TestLoopWithPlacedLabelNotExtracted(t *testing.T) {
	// A label placed inside a loop body blocks extraction (jumping into
	// a loop is unsupported); behavior must still be preserved.
	src := `
program t;
label 3;
var i, acc: integer;
begin
  i := 0;
  acc := 0;
  while i < 4 do begin
    i := i + 1;
    3: acc := acc + i;
  end;
  writeln(acc);
end.`
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := transform.Apply(info)
	if err != nil {
		t.Fatal(err)
	}
	for name, u := range res.Units {
		if u.Kind == transform.LoopUnit {
			t.Errorf("loop with placed label was extracted as %s", name)
		}
	}
	if got := runProgram(t, res.Info, ""); got != "10\n" {
		t.Errorf("output = %q, want 10", got)
	}
}

func TestShadowedGlobalRenamed(t *testing.T) {
	// outer has a local g that shadows the program-level g; outer calls
	// leaf, which reads the program-level g. The hidden parameter for
	// the program-level g in outer must be renamed (g is taken).
	res := apply(t, `
program t;
var g: integer;

procedure leaf(var r: integer);
begin
  r := g * 10;
end;

procedure outer(var r: integer);
var g: integer;
begin
  g := 999;
  leaf(r);
  r := r + g;
end;

var result: integer;
begin
  g := 4;
  outer(result);
  writeln(result);
end.`)
	got := runProgram(t, res.Info, "")
	if got != "1039\n" { // leaf: 4*10=40... then +999 → 1039
		t.Errorf("output = %q, want 1039", got)
	}
	var renamed bool
	for _, a := range res.Added["outer"] {
		if a.GlobalOf == "g" && a.Name != "g" {
			renamed = true
		}
	}
	if !renamed {
		t.Errorf("hidden parameter for shadowed global not renamed: %v", res.Added["outer"])
	}
}

// TestResultVarLiftRejected: a function-result pseudo-variable has no
// reusable type denotation (its Decl is the *ast.Routine), so lifting
// it into a parameter must fail loudly instead of silently guessing
// `integer` — a wrong guess would miscompile the lifted global.
func TestResultVarLiftRejected(t *testing.T) {
	src := `program t;
var g: integer;
function f: integer;
  procedure seed;
  begin
    f := 3;
  end;
begin
  seed;
end;
begin
  g := f;
  writeln(g)
end.
`
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	_, err = transform.Apply(info)
	if err == nil {
		t.Fatal("transform accepted a result-variable lift")
	}
	if !strings.Contains(err.Error(), "no reconstructible type denotation") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestExtendCallsInEveryStatementForm runs the globals pass alone (so
// loops stay in place) over call sites inside repeat, for ... downto,
// and nested case arms, plus a parameterless function reference inside
// an index expression. Every call must gain the lifted-global argument
// and the transformed program must behave identically.
func TestExtendCallsInEveryStatementForm(t *testing.T) {
	src := `program extend;
var g: integer;
var arr: array [0 .. 9] of integer;
var i, j: integer;
function pick: integer;
begin
  pick := g mod 10;
end;
procedure bump;
begin
  g := g + 1;
end;
begin
  i := 0;
  g := 0;
  repeat
    bump;
    i := i + 1;
  until i >= 2;
  for j := 3 downto 1 do begin
    bump;
  end;
  case g mod 2 of
    0: begin
      case g mod 3 of
        0: bump;
      else
        bump;
      end;
    end;
  else
    bump;
  end;
  arr[pick] := 7;
  g := arr[pick] + g;
  writeln(g, ' ', i, ' ', j)
end.
`
	prog := parser.MustParse("extend.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res, err := transform.ApplyStages(info, transform.Stages{Globals: true})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}

	printed := printer.Print(res.Program)
	if got := strings.Count(printed, "bump(g)"); got != 5 {
		t.Errorf("bump calls extended %d times, want 5 (repeat, for downto, inner case arm, inner else, outer else)\n%s", got, printed)
	}
	// The parameterless function reference inside the index expression
	// must be promoted to an explicit call carrying the lifted global.
	if got := strings.Count(printed, "arr[pick(g)]"); got != 2 {
		t.Errorf("index-position pick references promoted %d times, want 2\n%s", got, printed)
	}

	want := runProgram(t, info, "")
	got := runProgram(t, res.Info, "")
	if want != got {
		t.Errorf("behavior changed: original %q, transformed %q", want, got)
	}
}
