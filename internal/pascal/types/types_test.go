package types_test

import (
	"testing"

	"gadt/internal/pascal/types"
)

func TestBasicEquality(t *testing.T) {
	if !types.Integer.Equal(types.Integer) || types.Integer.Equal(types.RealT) {
		t.Error("basic equality wrong")
	}
	other := &types.Basic{Kind: types.Int}
	if !types.Integer.Equal(other) {
		t.Error("structural equality across instances")
	}
}

func TestArrayEquality(t *testing.T) {
	a := &types.Array{Lo: 1, Hi: 10, Elem: types.Integer}
	b := &types.Array{Lo: 1, Hi: 10, Elem: types.Integer}
	c := &types.Array{Lo: 0, Hi: 10, Elem: types.Integer}
	d := &types.Array{Lo: 1, Hi: 10, Elem: types.RealT}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) || a.Equal(types.Integer) {
		t.Error("array equality wrong")
	}
	if a.Len() != 10 {
		t.Errorf("len = %d", a.Len())
	}
	if a.String() != "array [1 .. 10] of integer" {
		t.Errorf("string = %q", a)
	}
}

func TestRecordEquality(t *testing.T) {
	r1 := &types.Record{Fields: []types.Field{{Name: "x", Type: types.Integer}, {Name: "y", Type: types.RealT}}}
	r2 := &types.Record{Fields: []types.Field{{Name: "x", Type: types.Integer}, {Name: "y", Type: types.RealT}}}
	r3 := &types.Record{Fields: []types.Field{{Name: "x", Type: types.Integer}}}
	if !r1.Equal(r2) || r1.Equal(r3) {
		t.Error("record equality wrong")
	}
	if r1.Lookup("y") != types.RealT || r1.Lookup("z") != nil {
		t.Error("field lookup wrong")
	}
	if r1.String() != "record x: integer; y: real end" {
		t.Errorf("string = %q", r1)
	}
}

func TestPredicates(t *testing.T) {
	if !types.IsNumeric(types.Integer) || !types.IsNumeric(types.RealT) || types.IsNumeric(types.Boolean) {
		t.Error("IsNumeric")
	}
	if !types.IsInteger(types.Integer) || types.IsInteger(types.RealT) {
		t.Error("IsInteger")
	}
	if !types.IsBoolean(types.Boolean) || types.IsBoolean(types.String) {
		t.Error("IsBoolean")
	}
	if !types.IsOrdered(types.Integer) || !types.IsOrdered(types.String) || types.IsOrdered(types.Boolean) {
		t.Error("IsOrdered")
	}
}

func TestAssignableTo(t *testing.T) {
	if !types.AssignableTo(types.Integer, types.RealT) {
		t.Error("int → real widening missing")
	}
	if types.AssignableTo(types.RealT, types.Integer) {
		t.Error("real → int must not be assignable")
	}
	if !types.AssignableTo(types.Integer, types.Integer) {
		t.Error("identity")
	}
}

func TestArith(t *testing.T) {
	if types.Arith(types.Integer, types.Integer) != types.Integer {
		t.Error("int+int")
	}
	if types.Arith(types.Integer, types.RealT) != types.RealT {
		t.Error("int+real")
	}
	if types.Arith(types.Boolean, types.Integer) != types.Bad {
		t.Error("bool+int must be Bad")
	}
}
