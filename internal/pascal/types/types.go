// Package types defines the semantic types of the GADT Pascal subset and
// their compatibility rules.
package types

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all semantic types.
type Type interface {
	String() string
	// Equal reports structural equality.
	Equal(Type) bool
}

// BasicKind enumerates the predeclared scalar types.
type BasicKind int

const (
	Invalid BasicKind = iota
	Int
	Real
	Bool
	Str
)

// Basic is a predeclared scalar type.
type Basic struct {
	Kind BasicKind
	name string
}

// The predeclared types. Identity comparison of these pointers is valid,
// but Equal should be preferred.
var (
	Integer = &Basic{Kind: Int, name: "integer"}
	RealT   = &Basic{Kind: Real, name: "real"}
	Boolean = &Basic{Kind: Bool, name: "boolean"}
	String  = &Basic{Kind: Str, name: "string"}
	Bad     = &Basic{Kind: Invalid, name: "<invalid>"}
)

func (b *Basic) String() string { return b.name }

func (b *Basic) Equal(t Type) bool {
	o, ok := t.(*Basic)
	return ok && o.Kind == b.Kind
}

// Array is `array [Lo .. Hi] of Elem` with constant bounds.
type Array struct {
	Lo, Hi int64
	Elem   Type
}

func (a *Array) String() string {
	return fmt.Sprintf("array [%d .. %d] of %s", a.Lo, a.Hi, a.Elem)
}

func (a *Array) Equal(t Type) bool {
	o, ok := t.(*Array)
	return ok && o.Lo == a.Lo && o.Hi == a.Hi && a.Elem.Equal(o.Elem)
}

// Len returns the number of elements.
func (a *Array) Len() int64 { return a.Hi - a.Lo + 1 }

// Field is one record field.
type Field struct {
	Name string
	Type Type
}

// Record is a record type.
type Record struct {
	Fields []Field
}

func (r *Record) String() string {
	var b strings.Builder
	b.WriteString("record ")
	for i, f := range r.Fields {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %s", f.Name, f.Type)
	}
	b.WriteString(" end")
	return b.String()
}

func (r *Record) Equal(t Type) bool {
	o, ok := t.(*Record)
	if !ok || len(o.Fields) != len(r.Fields) {
		return false
	}
	for i, f := range r.Fields {
		if o.Fields[i].Name != f.Name || !o.Fields[i].Type.Equal(f.Type) {
			return false
		}
	}
	return true
}

// Lookup returns the type of the named field, or nil.
func (r *Record) Lookup(name string) Type {
	for _, f := range r.Fields {
		if f.Name == name {
			return f.Type
		}
	}
	return nil
}

// IsNumeric reports whether t is integer or real.
func IsNumeric(t Type) bool {
	b, ok := t.(*Basic)
	return ok && (b.Kind == Int || b.Kind == Real)
}

// IsInteger reports whether t is the integer type.
func IsInteger(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind == Int
}

// IsBoolean reports whether t is the boolean type.
func IsBoolean(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind == Bool
}

// IsOrdered reports whether values of t can be compared with < and >.
func IsOrdered(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind != Invalid && b.Kind != Bool
}

// AssignableTo reports whether a value of type src may be assigned to a
// target of type dst: structural equality, plus the integer→real
// widening of Pascal.
func AssignableTo(src, dst Type) bool {
	if src.Equal(dst) {
		return true
	}
	return IsInteger(src) && dst.Equal(RealT)
}

// Arith returns the result type of an arithmetic operation over x and y
// (+, -, *): integer if both are integers, real if either is real and
// both numeric, Bad otherwise.
func Arith(x, y Type) Type {
	if !IsNumeric(x) || !IsNumeric(y) {
		return Bad
	}
	if IsInteger(x) && IsInteger(y) {
		return Integer
	}
	return RealT
}
