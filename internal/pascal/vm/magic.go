package vm

import "math/bits"

// Magic-number strength reduction for division by a constant (Hacker's
// Delight, 2nd ed., §10-4). A signed 64-bit division by a fixed d >= 2
// becomes a high multiply, a shift and a sign correction — an order of
// magnitude cheaper than the hardware divide the generic opIDivRI /
// opIModRI forms pay per execution. The compiler interns one magicDiv
// per distinct divisor in Program.magics and rewrites the RI forms to
// opIDivM / opIModM referencing it.
type magicDiv struct {
	m int64 // magic multiplier (interpreted signed)
	s int32 // post-multiply shift
	d int64 // original divisor, for the mod remainder step
}

// magicFor computes the multiplier and shift for divisor d >= 2. The
// resulting quotient matches Go's truncated division for every int64
// dividend, including math.MinInt64.
func magicFor(d int64) magicDiv {
	if d < 2 {
		panic("vm: magicFor needs divisor >= 2")
	}
	const two63 = uint64(1) << 63
	ad := uint64(d)
	anc := two63 - 1 - two63%ad // absolute value of nc
	p := 63
	q1 := two63 / anc // quotient digits of 2^p / |nc|
	r1 := two63 - q1*anc
	q2 := two63 / ad // quotient digits of 2^p / d
	r2 := two63 - q2*ad
	for {
		p++
		q1 *= 2
		r1 *= 2
		if r1 >= anc {
			q1++
			r1 -= anc
		}
		q2 *= 2
		r2 *= 2
		if r2 >= ad {
			q2++
			r2 -= ad
		}
		delta := ad - r2
		if q1 >= delta && !(q1 == delta && r1 == 0) {
			break
		}
	}
	return magicDiv{m: int64(q2 + 1), s: int32(p - 64), d: d}
}

// smulh returns the high 64 bits of the signed 128-bit product a*b.
func smulh(a, b int64) int64 {
	hi, _ := bits.Mul64(uint64(a), uint64(b))
	t := int64(hi)
	if a < 0 {
		t -= b
	}
	if b < 0 {
		t -= a
	}
	return t
}

// magicQuot applies mg to dividend n: the opIDivM runtime step.
func (mg magicDiv) quot(n int64) int64 {
	q := smulh(mg.m, n)
	if mg.m < 0 {
		q += n
	}
	q >>= uint(mg.s)
	return q + int64(uint64(q)>>63) // round toward zero for negative n
}
