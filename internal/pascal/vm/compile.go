package vm

import (
	"errors"
	"fmt"
	"math"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
	"gadt/internal/pascal/types"
)

// opcode is the bytecode instruction set. Operands a/b per op:
//
//	opStep                          fuel charge at statement entry
//	opConst       a=const pool idx
//	opLoadLocal   a=slot            push slot value
//	opLoadOuter   a=slot b=hops     push via static chain
//	opStoreLocal  a=slot            pop → slot (assign semantics)
//	opStoreOuter  a=slot b=hops
//	opIncLocal    a=slot b=delta    fused i := i ± k (int fast path)
//	opAddrVar     a=slot b=hops     push whole-variable address
//	opAddrIndex                     pop index, step address into element
//	opAddrField   a=field pool idx  step address into record field
//	opLoadAddr                      pop address, push its value
//	opStoreAddr                     pop address+value, prepareStore
//	opCopyV                         deep-copy stack top (value-param composites)
//	opJump        a=target pc
//	opBrFalse     a=target pc       pop bool, branch when false
//	opBrCmpIF     a=target b=cmpOp  fused int compare + branch-if-false
//	opPop / opPopTo a=frame depth   goto unwinding, case selector drop
//	opSwap                          for-loop limit/counter ordering
//	opAddI..opGeI                   int fast-path binary ops (generic fallback)
//	opBinary      a=token.Kind      generic binary dispatch
//	opNeg/opNot                     unary ops
//	opIntChk                        for-loop bound must be integer
//	opForCheck    a=exit pc b=down  stack [limit,i]: exit-test, pops both on exit
//	opForStore*   a=slot (b=hops)   store loop counter into control var
//	opForIncr     b=down            i±1 on stack top
//	opCaseBr      a=target          pop const, on ValuesEqual pop selector+branch
//	opCall        a=proc idx b=hops
//	opWrite       a=nargs b=newline
//	opReadTok     a=typecode        read+parse one input token, push
//	opAbs..opRound                  builtin functions
//	opMakeArr     a=nelems b=array type idx (-1 = 1..n)
//	opRet
type opcode uint8

const (
	opInvalid opcode = iota
	opStep
	opConst
	opLoadLocal
	opLoadOuter
	opStoreLocal
	opStoreOuter
	opIncLocal
	opAddrVar
	opAddrIndex
	opAddrField
	opLoadAddr
	opStoreAddr
	opCopyV
	opJump
	opBrFalse
	opBrCmpIF
	opPop
	opPopTo
	opSwap
	opAddI
	opSubI
	opMulI
	opDivI
	opModI
	opSlashI
	opEqI
	opNeI
	opLtI
	opLeI
	opGtI
	opGeI
	opBinary
	opNeg
	opNot
	opIntChk
	opForCheck
	opForStoreLocal
	opForStoreOuter
	opForIncr
	opCaseBr
	opCall
	opWrite
	opReadTok
	opAbs
	opSqr
	opOdd
	opTrunc
	opRound
	opMakeArr
	opRet

	// Register tier (regcomp.go). R operands are window-relative
	// register indices, I operands are int32 immediates, K operands
	// index the iconsts pool. Compare-branches jump to a when the
	// relation holds; the six relations appear in Eq, Ne, Lt, Le, Gt,
	// Ge order in both the RR and RI blocks (regBr does opcode
	// arithmetic over them).
	opPushR     // a=reg          push IntV(reg) onto the operand stack
	opPopR      // a=reg          pop operand stack into reg (must be int)
	opForStoreR // a=reg          peek loop counter into reg
	opIMovRR    // a=dst b=src
	opIMovRI    // a=dst b=imm
	opIMovRK    // a=dst b=iconst idx
	opIAddRR    // a=dst b=s1 c=s2
	opIAddRI    // a=dst b=src c=imm
	opISubRR
	opIMulRR
	opIMulRI
	opIDivRR
	opIDivRI // c=imm, never 0
	opIModRR
	opIModRI   // c=imm, never 0
	opIDivM    // a=dst b=src c=magics idx (divisor >= 2)
	opIModM    // a=dst b=src c=magics idx (divisor >= 2)
	opIModAccM // a=acc b=src c=magics idx: acc += src mod divisor
	opINegR    // a=dst b=src
	opIAbsR    // a=dst b=src
	opIBrEqRR
	opIBrNeRR
	opIBrLtRR
	opIBrLeRR
	opIBrGtRR
	opIBrGeRR
	opIBrEqRI
	opIBrNeRI
	opIBrLtRI
	opIBrLeRI
	opIBrGtRI
	opIBrGeRI
	opIBrOdd    // a=target b=reg branch when odd
	opIBrEven   // a=target b=reg branch when even
	opCallR     // a=proc idx b=arg window base c=result disposition
	opCallF     // a=proc idx: stack-args fastcall bridge
	opCallRI    // a=proc idx b=src c=(arg window)<<16|imm16: window reg = src+imm, result to window-1
	opForLoopR  // a=body target b=counter reg (limit at b+1) c=control reg
	opForLoopRD // downto variant of opForLoopR

	// Charge-on-continue variants of the loop back-edges: when the loop
	// body starts with a plain opStep, the back-edge retargets past it
	// and charges that fuel itself — but only when the loop continues,
	// so the exiting iteration charges exactly what the interpreter
	// does. (The entry path still falls through the body's own opStep.)
	opForLoopRS
	opForLoopRDS

	// opSteppedBase starts a block mirroring [opIMovRR, opForLoopRD]:
	// op+steppedDelta has op's semantics preceded by one fuel charge.
	// emit3 fuses a statement-entry opStep into its successor when the
	// successor cannot fault on its own (so the statement position the
	// opStep carried stays the only position the fused instruction can
	// ever report). The dispatch loop gives each twin its own case that
	// charges the step and falls through into the base op's case.
	opSteppedBase
)

const steppedDelta = opSteppedBase - opIMovRR

// Fused-return and fused-call forms live above the stepped mirror
// block. The opRet* opcodes perform one register op and then return in
// a single dispatch (retFuse rewrites op+opRet pairs); the S variants
// additionally charge the statement-entry fuel the register op had
// absorbed. opCallRIS is opCallRI whose argument add carried a
// statement step: it charges the step (reporting the statement
// position from the proc's side table) before the call proper.
const (
	opRetMovRR opcode = opSteppedBase + steppedDelta + iota
	opRetMovRRS
	opRetMovRI
	opRetMovRIS
	opRetAddRR
	opRetAddRRS
	opRetAddRI
	opRetAddRIS
	opCallRIS

	// opStepped2Base starts a second mirror of [opIMovRR, opForLoopRD]:
	// op+stepped2Delta has op's semantics preceded by TWO fuel charges —
	// the routine-entry (body compound) charge, whose position lives in
	// the proc's side table, then the statement charge. Produced only by
	// entryFuse, which also moves the routine entry point past the dead
	// opStep slot.
	opStepped2Base
)

const stepped2Delta = opStepped2Base - opIMovRR

// stepFusable reports whether op may absorb a preceding opStep: register
// ops that cannot produce their own runtime error (division by a
// register and the two call forms keep their own positions).
func stepFusable(op opcode) bool {
	return op >= opIMovRR && op <= opForLoopRD &&
		op != opIDivRR && op != opIModRR &&
		op != opCallR && op != opCallF && op != opCallRI
}

// opReadTok typecodes, matching the interpreter's TypeOf dispatch.
const (
	readInt int32 = iota
	readReal
	readStr
	readBool
)

// ErrUnsupported marks a program the compiler declines to lower: its
// dynamic semantics (non-local gotos, gotos into structured statements,
// constructs sem could not resolve) cannot be reproduced exactly in
// flat bytecode. Callers fall back to the interpreter.
var ErrUnsupported = errors.New("program not vm-compilable")

type bail struct{ err error }

type constKey struct {
	k   interp.Kind
	num int64
	s   string
}

type compiler struct {
	info     *sem.Info
	prog     *Program
	procIdx  map[*sem.Routine]int32
	constIdx map[constKey]int32
	arrIdx   map[*types.Array]int32
	fieldIdx map[string]int32

	esc         *escapeInfo
	fastSet     map[*sem.Routine]bool
	iconstIdx   map[int64]int32
	magicIdxMap map[int64]int32
}

// Compile lowers every routine of an analyzed program to bytecode.
// Returns an error wrapping ErrUnsupported when the program uses a
// construct the VM does not reproduce.
//
// Fastcall candidates (fastEligible) are confirmed by construction:
// compileOnce demotes a candidate whose body turns out to need stack or
// cell operations, and compilation restarts without it. Each retry
// strictly shrinks the candidate set, so the loop terminates.
func Compile(info *sem.Info) (*Program, error) {
	if info == nil || info.Main == nil {
		return nil, fmt.Errorf("%w: no analyzed program", ErrUnsupported)
	}
	esc := analyzeEscapes(info)
	fastSet := fastEligible(info, esc)
	for {
		prog, demoted, err := compileOnce(info, esc, fastSet)
		if err != nil {
			return nil, err
		}
		if demoted != nil {
			delete(fastSet, demoted)
			continue
		}
		return prog, nil
	}
}

func compileOnce(info *sem.Info, esc *escapeInfo, fastSet map[*sem.Routine]bool) (prog *Program, demoted *sem.Routine, err error) {
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bail); ok {
				prog, err = nil, b.err
				return
			}
			if fb, ok := r.(fastBail); ok {
				prog, demoted = nil, fb.r
				return
			}
			panic(r)
		}
	}()
	c := &compiler{
		info:        info,
		prog:        &Program{info: info},
		procIdx:     make(map[*sem.Routine]int32, len(info.Routines)),
		constIdx:    make(map[constKey]int32),
		arrIdx:      make(map[*types.Array]int32),
		fieldIdx:    make(map[string]int32),
		esc:         esc,
		fastSet:     fastSet,
		iconstIdx:   make(map[int64]int32),
		magicIdxMap: make(map[int64]int32),
	}
	c.prog.procs = make([]*vproc, len(info.Routines))
	for i, r := range info.Routines {
		c.procIdx[r] = int32(i)
		p := &vproc{r: r}
		for _, prm := range r.Params {
			if prm.Mode == ast.Value {
				p.nvals++
			} else {
				p.naddrs++
			}
		}
		c.prog.procs[i] = p
	}
	for i, r := range info.Routines {
		c.compileRoutine(c.prog.procs[i], r)
		if r == info.Main {
			c.prog.main = c.prog.procs[i]
		}
	}
	if c.prog.main == nil {
		return nil, nil, fmt.Errorf("%w: program block not in routine list", ErrUnsupported)
	}
	return c.prog, nil, nil
}

func (c *compiler) unsupported(format string, args ...any) {
	panic(bail{fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))})
}

func (c *compiler) constant(v interp.Value) int32 {
	key := constKey{k: v.Kind()}
	switch v.Kind() {
	case interp.KindInt:
		key.num, _ = v.AsInt()
	case interp.KindReal:
		rv, _ := v.AsReal()
		key.num = int64(math.Float64bits(rv))
	case interp.KindBool:
		if b, _ := v.AsBool(); b {
			key.num = 1
		}
	case interp.KindStr:
		key.s, _ = v.AsStr()
	default:
		c.unsupported("non-scalar constant")
	}
	if idx, ok := c.constIdx[key]; ok {
		return idx
	}
	idx := int32(len(c.prog.consts))
	c.prog.consts = append(c.prog.consts, v)
	c.constIdx[key] = idx
	return idx
}

func (c *compiler) arrayType(t *types.Array) int32 {
	if idx, ok := c.arrIdx[t]; ok {
		return idx
	}
	idx := int32(len(c.prog.arrs))
	c.prog.arrs = append(c.prog.arrs, t)
	c.arrIdx[t] = idx
	return idx
}

func (c *compiler) field(name string) int32 {
	if idx, ok := c.fieldIdx[name]; ok {
		return idx
	}
	idx := int32(len(c.prog.fields))
	c.prog.fields = append(c.prog.fields, name)
	c.fieldIdx[name] = idx
	return idx
}

// listCtx tracks one enclosing statement list during compilation: the
// labels it places at its own level (goto targets resolvable by the
// interpreter's execList unwinding) and the operand stack depth at
// which its statements run.
type listCtx struct {
	labels map[string]bool
	depth  int
}

type gotoFix struct {
	label  string
	jumpPc int
}

// pcomp compiles one routine body.
type pcomp struct {
	c *compiler
	r *sem.Routine
	p *vproc

	depth  int // compile-time operand stack depth
	adepth int // compile-time address stack depth

	// barrier: no peephole fusion may consume instructions before this
	// pc (jump targets and statement entries land here).
	barrier int

	lists   []listCtx
	labelPc map[string]int
	pending []gotoFix

	// Register tier (regcomp.go): register assignment for this
	// routine's qualified variables, temporary-stack depth, and whether
	// the routine must lower to pure register code (fastcall).
	regOf    map[*sem.VarSym]int32
	nvarRegs int32
	rdepth   int32
	fast     bool
}

func (c *compiler) compileRoutine(p *vproc, r *sem.Routine) {
	pc := &pcomp{c: c, r: r, p: p, labelPc: make(map[string]int), regOf: make(map[*sem.VarSym]int32)}
	pc.planRegs()
	pc.fast = c.fastSet[r]
	p.fast = pc.fast
	pc.compileStmt(r.Block.Body)
	pc.emit(opRet, 0, 0, token.Pos{}, 0)
	if len(pc.pending) > 0 {
		c.unsupported("goto %s did not resolve in %s", pc.pending[0].label, r.Name)
	}
	retThread(p.code)
	retFuse(p.code)
	p.entry = entryFuse(p)
}

// retThread replaces every jump whose target is a return with the
// return itself, iterated to a fixpoint so jump chains collapse too.
// Falling off a then-arm into the routine's final opRet is the common
// producer (leaf-shaped functions pay one dispatch less per call).
func retThread(code []instr) {
	for changed := true; changed; {
		changed = false
		for i, ins := range code {
			if ins.op == opJump && code[ins.a].op == opRet {
				code[i] = instr{op: opRet}
				changed = true
			}
		}
	}
}

// retFuse rewrites a register move/add that falls through into a
// return as the equivalent one-dispatch opRet* form. The opRet slot
// itself stays behind so jumps that target the return directly remain
// valid; only straight-line execution skips it.
func retFuse(code []instr) {
	for i := 0; i+1 < len(code); i++ {
		if code[i+1].op != opRet {
			continue
		}
		switch code[i].op {
		case opIMovRR:
			code[i].op = opRetMovRR
		case opIMovRR + steppedDelta:
			code[i].op = opRetMovRRS
		case opIMovRI:
			code[i].op = opRetMovRI
		case opIMovRI + steppedDelta:
			code[i].op = opRetMovRIS
		case opIAddRR:
			code[i].op = opRetAddRR
		case opIAddRR + steppedDelta:
			code[i].op = opRetAddRRS
		case opIAddRI:
			code[i].op = opRetAddRI
		case opIAddRI + steppedDelta:
			code[i].op = opRetAddRIS
		}
	}
}

// entryFuse folds the routine-entry opStep (the body compound
// statement's fuel charge, paid once per activation) into the first
// statement's stepped instruction, producing its doubly-stepped twin,
// and returns the new entry pc past the now-dead slot 0. Bails (entry
// stays 0) unless slot 1 holds a stepped twin and no branch re-enters
// it: a back edge to the first statement expects the single-charge
// form.
func entryFuse(p *vproc) int {
	code := p.code
	if len(code) < 2 || code[0].op != opStep {
		return 0
	}
	op := code[1].op
	if op < opSteppedBase || op > opSteppedBase+(opForLoopRD-opIMovRR) {
		return 0
	}
	for _, ins := range code {
		if branchTarget(ins) == 1 {
			return 0
		}
	}
	code[1].op = op + (opStepped2Base - opSteppedBase)
	if p.pos2 == nil {
		p.pos2 = make(map[int]token.Pos)
	}
	p.pos2[1] = p.pos[0]
	return 1
}

// branchTarget returns the static jump target of ins, or -1 when ins
// cannot transfer control via its a operand.
func branchTarget(ins instr) int {
	op := ins.op
	if op >= opSteppedBase && op <= opSteppedBase+(opForLoopRD-opIMovRR) {
		op -= steppedDelta
	}
	switch op {
	case opJump, opBrFalse, opBrCmpIF, opForCheck, opCaseBr,
		opIBrEqRR, opIBrNeRR, opIBrLtRR, opIBrLeRR, opIBrGtRR, opIBrGeRR,
		opIBrEqRI, opIBrNeRI, opIBrLtRI, opIBrLeRI, opIBrGtRI, opIBrGeRI,
		opIBrOdd, opIBrEven,
		opForLoopR, opForLoopRD, opForLoopRS, opForLoopRDS:
		return int(ins.a)
	}
	return -1
}

// emit appends one instruction, tracking the operand-stack depth.
// Returns the instruction's pc.
func (p *pcomp) emit(op opcode, a, b int32, pos token.Pos, delta int) int {
	pcv := len(p.p.code)
	p.p.code = append(p.p.code, instr{op: op, a: a, b: b})
	p.p.pos = append(p.p.pos, pos)
	p.depth += delta
	if p.depth > p.p.maxStack {
		p.p.maxStack = p.depth
	}
	return pcv
}

func (p *pcomp) pushAddr() {
	p.adepth++
	if p.adepth > p.p.maxAddr {
		p.p.maxAddr = p.adepth
	}
}

// here returns the next pc and marks it as a jump target (fusion
// barrier).
func (p *pcomp) here() int {
	p.barrier = len(p.p.code)
	return len(p.p.code)
}

func (p *pcomp) patch(jumpPc, target int) {
	p.p.code[jumpPc].a = int32(target)
}

// pop removes the last n emitted instructions (peephole fusion helper).
func (p *pcomp) pop(n int) {
	p.p.code = p.p.code[:len(p.p.code)-n]
	p.p.pos = p.p.pos[:len(p.p.pos)-n]
}

func (p *pcomp) last(n int) instr {
	return p.p.code[len(p.p.code)-n]
}

// ---------------------------------------------------------------------------
// Statements

func (p *pcomp) compileStmt(s ast.Stmt) {
	if s == nil {
		return
	}
	p.here()
	stepPc := p.emit(opStep, 0, 0, s.Pos(), 0)
	switch s := s.(type) {
	case *ast.CompoundStmt:
		p.compileList(s.Stmts)

	case *ast.AssignStmt:
		if p.tryRegAssign(s) {
			return
		}
		p.compileExpr(s.Rhs)
		p.compileStore(s.Lhs, s.Pos())

	case *ast.CallStmt:
		if p.tryRegCallStmt(s) {
			return
		}
		p.compileCallStmt(s)

	case *ast.IfStmt:
		br, regOK := p.tryRegBr(s.Cond)
		if !regOK {
			p.compileExpr(s.Cond)
			br = p.emitBrFalse(s.Cond.Pos())
		}
		p.compileStmt(s.Then)
		if s.Else != nil {
			j := p.emit(opJump, -1, 0, s.Pos(), 0)
			p.patch(br, p.here())
			p.compileStmt(s.Else)
			p.patch(j, p.here())
		} else {
			p.patch(br, p.here())
		}

	case *ast.WhileStmt:
		if p.tryRegWhile(s) {
			return
		}
		cond := p.here()
		br, regOK := p.tryRegBr(s.Cond)
		if !regOK {
			p.compileExpr(s.Cond)
			br = p.emitBrFalse(s.Cond.Pos())
		}
		p.compileStmt(s.Body)
		p.emit(opJump, int32(cond), 0, s.Pos(), 0)
		p.patch(br, p.here())

	case *ast.RepeatStmt:
		body := p.here()
		p.compileList(s.Stmts)
		if br, regOK := p.tryRegBr(s.Cond); regOK {
			p.patch(br, body)
		} else {
			p.compileExpr(s.Cond)
			p.emitBrFalseTo(body, s.Cond.Pos())
		}

	case *ast.ForStmt:
		p.compileFor(s)

	case *ast.CaseStmt:
		p.compileCase(s)

	case *ast.GotoStmt:
		p.compileGoto(s)

	case *ast.LabeledStmt:
		// The label jump target is the statement's own opStep: the
		// interpreter re-enters execStmt on the LabeledStmt, charging
		// its fuel again.
		p.labelPc[s.Label] = stepPc
		p.barrier = len(p.p.code)
		kept := p.pending[:0]
		for _, g := range p.pending {
			if g.label == s.Label {
				p.patch(g.jumpPc, stepPc)
			} else {
				kept = append(kept, g)
			}
		}
		p.pending = kept
		p.compileStmt(s.Stmt)

	case *ast.EmptyStmt:
		// Fuel charge only.

	default:
		p.c.unsupported("cannot compile %T", s)
	}
}

func (p *pcomp) compileList(stmts []ast.Stmt) {
	lc := listCtx{depth: p.depth}
	for _, s := range stmts {
		if ls, ok := s.(*ast.LabeledStmt); ok {
			if lc.labels == nil {
				lc.labels = make(map[string]bool)
			}
			lc.labels[ls.Label] = true
		}
	}
	p.lists = append(p.lists, lc)
	for _, s := range stmts {
		p.compileStmt(s)
	}
	p.lists = p.lists[:len(p.lists)-1]
}

func (p *pcomp) compileGoto(s *ast.GotoStmt) {
	li := p.c.info.GotoTgt[s]
	if li == nil {
		p.c.unsupported("unresolved goto %s", s.Label)
	}
	if li.Routine != p.r {
		p.c.unsupported("non-local goto %s", s.Label)
	}
	// The interpreter unwinds enclosing statement lists until one
	// places the label at its own level; jumps into structured
	// statements never resolve. Compile only gotos whose label sits in
	// a lexically enclosing list (innermost wins, matching the dynamic
	// unwind order); reject the rest.
	idx := -1
	for i := len(p.lists) - 1; i >= 0; i-- {
		if p.lists[i].labels[s.Label] {
			idx = i
			break
		}
	}
	if idx < 0 {
		p.c.unsupported("goto %s jumps out of its statement list nest", s.Label)
	}
	if d := p.lists[idx].depth; d != p.depth {
		// Unwind operand-stack state (for-loop limit/counter pairs,
		// case selectors) pushed between the label's list and here.
		p.emit(opPopTo, int32(d), 0, s.Pos(), 0)
	}
	j := p.emit(opJump, -1, 0, s.Pos(), 0)
	if target, ok := p.labelPc[s.Label]; ok {
		p.patch(j, target)
	} else {
		p.pending = append(p.pending, gotoFix{label: s.Label, jumpPc: j})
	}
}

func (p *pcomp) compileFor(s *ast.ForStmt) {
	v, ok := p.c.info.UseOf(s.Var).(*sem.VarSym)
	if !ok {
		p.c.unsupported("for-loop control %s is not a variable", s.Var.Name)
	}
	if p.tryRegFor(s, v) {
		return
	}
	d0 := p.depth
	p.compileExpr(s.From)
	p.emit(opIntChk, 0, 0, s.From.Pos(), 0)
	p.compileExpr(s.Limit)
	p.emit(opIntChk, 0, 0, s.Limit.Pos(), 0)
	p.emit(opSwap, 0, 0, s.Pos(), 0) // [limit, from]
	p.emitForStore(v, s.Pos())
	down := int32(0)
	if s.Down {
		down = 1
	}
	check := p.here()
	fc := p.emit(opForCheck, -1, down, s.Pos(), 0)
	p.emitForStore(v, s.Pos())
	p.compileStmt(s.Body)
	p.emit(opForIncr, 0, down, s.Pos(), 0)
	p.emit(opJump, int32(check), 0, s.Pos(), 0)
	p.patch(fc, p.here())
	p.depth = d0 // exit path popped [limit, i]
}

// emitForStore stores the stack-held loop counter into the control
// variable: its register when qualified (a control var with non-
// register-computable bounds still lands here), otherwise its cell.
func (p *pcomp) emitForStore(v *sem.VarSym, pos token.Pos) {
	if r, ok := p.regOf[v]; ok {
		p.emit(opForStoreR, r, 0, pos, 0)
		return
	}
	slot, hops := p.varRef(v)
	if hops == 0 {
		p.emit(opForStoreLocal, slot, 0, pos, 0)
	} else {
		p.emit(opForStoreOuter, slot, hops, pos, 0)
	}
}

func (p *pcomp) compileCase(s *ast.CaseStmt) {
	d0 := p.depth
	p.compileExpr(s.Expr)
	// Arm constants evaluate lazily in order until one matches
	// (interpreter order); a match pops the selector and branches to
	// the arm body.
	type ref struct{ pc, arm int }
	var brs []ref
	for ai, arm := range s.Arms {
		for _, ce := range arm.Consts {
			p.compileExpr(ce)
			brs = append(brs, ref{p.emit(opCaseBr, -1, 0, ce.Pos(), -1), ai})
		}
	}
	// No arm matched: drop the selector, run else (if any).
	p.emit(opPopTo, int32(d0), 0, s.Pos(), -1)
	p.compileStmt(s.Else)
	ends := []int{p.emit(opJump, -1, 0, s.Pos(), 0)}
	// Arm bodies, each entered with the selector already popped.
	bodyPc := make([]int, len(s.Arms))
	for ai, arm := range s.Arms {
		p.depth = d0
		bodyPc[ai] = p.here()
		p.compileStmt(arm.Body)
		ends = append(ends, p.emit(opJump, -1, 0, s.Pos(), 0))
	}
	end := p.here()
	for _, b := range brs {
		p.patch(b.pc, bodyPc[b.arm])
	}
	for _, j := range ends {
		p.patch(j, end)
	}
	p.depth = d0
}

func (p *pcomp) compileCallStmt(s *ast.CallStmt) {
	if b := p.c.info.BuiltinAt(s.UID, s); b != nil {
		switch b.Code {
		case sem.BuiltinWrite, sem.BuiltinWriteln:
			p.bailFast()
			for _, a := range s.Args {
				p.compileExpr(a)
			}
			nl := int32(0)
			if b.Code == sem.BuiltinWriteln {
				nl = 1
			}
			p.emit(opWrite, int32(len(s.Args)), nl, s.Pos(), -len(s.Args))
		case sem.BuiltinRead, sem.BuiltinReadln:
			p.bailFast()
			for _, a := range s.Args {
				// Read the token first (input side effect), then
				// resolve the target designator — the interpreter's
				// order.
				p.emit(opReadTok, p.readCode(a), 0, a.Pos(), +1)
				p.compileStore(a, a.Pos())
			}
		default:
			p.c.unsupported("builtin %s cannot be called as a procedure", b.Name)
		}
		return
	}
	target := p.c.info.CallAt(s.UID, s)
	if target == nil {
		p.c.unsupported("call to unresolved routine %s", s.Name)
	}
	p.compileCall(target, s.Args, s.Pos())
	if target.Result != nil {
		// Function called as a statement: drop the result.
		p.emit(opPop, 0, 0, s.Pos(), -1)
	}
}

func (p *pcomp) readCode(a ast.Expr) int32 {
	t := p.c.info.TypeOf[a]
	switch {
	case t != nil && t.Equal(types.RealT):
		return readReal
	case t != nil && t.Equal(types.String):
		return readStr
	case t != nil && t.Equal(types.Boolean):
		return readBool
	}
	return readInt
}

// compileCall pushes arguments (value args on the operand stack,
// by-reference args on the address stack, in declaration order) and
// emits the call.
func (p *pcomp) compileCall(target *sem.Routine, args []ast.Expr, pos token.Pos) {
	p.bailFast()
	if len(args) != len(target.Params) {
		p.c.unsupported("%s expects %d arguments, got %d", target.Name, len(target.Params), len(args))
	}
	parent := target.Parent
	if parent == nil {
		p.c.unsupported("call to program block")
	}
	hops := p.r.Level - parent.Level
	if hops < 0 {
		p.c.unsupported("no enclosing frame for %s", target.Name)
	}
	if p.c.fastSet[target] {
		if p.tryRegCallPush(target, args, pos) {
			return
		}
		p.compileCallF(target, args, pos)
		return
	}
	for i, prm := range target.Params {
		a := args[i]
		if prm.Mode == ast.Value {
			p.compileExpr(a)
			// The interpreter deep-copies each value argument into the
			// callee slot before evaluating the next argument; copy at
			// push time so a later argument mutating the source (via a
			// by-reference alias) cannot leak into this one.
			switch prm.Type.(type) {
			case *types.Array, *types.Record:
				p.emit(opCopyV, 0, 0, a.Pos(), 0)
			}
		} else {
			p.compileAddr(a)
		}
	}
	idx, ok := p.c.procIdx[target]
	if !ok {
		p.c.unsupported("call to unknown routine %s", target.Name)
	}
	t := p.c.prog.procs[idx]
	delta := -t.nvals
	if target.Result != nil {
		delta++
	}
	p.adepth -= t.naddrs
	p.emit(opCall, idx, int32(hops), pos, delta)
	if p.depth > p.p.maxStack {
		p.p.maxStack = p.depth
	}
}

// compileStore assigns the stack top to the designator lhs.
func (p *pcomp) compileStore(lhs ast.Expr, pos token.Pos) {
	if id, ok := lhs.(*ast.Ident); ok {
		v, ok := p.c.info.UseOf(id).(*sem.VarSym)
		if !ok {
			p.c.unsupported("%s is not a variable", id.Name)
		}
		if r, qual := p.regOf[v]; qual {
			p.emit(opPopR, r, 0, pos, -1)
			return
		}
		slot, hops := p.varRef(v)
		if hops == 0 {
			p.emitStoreLocal(slot, pos)
		} else {
			p.emit(opStoreOuter, slot, hops, pos, -1)
		}
		return
	}
	p.compileAddr(lhs)
	p.adepth--
	p.emit(opStoreAddr, 0, 0, pos, -1)
}

// emitStoreLocal emits a local store, fusing the
// load-const-add/sub-store pattern into opIncLocal when the operand
// chain is intact (no jump target inside the window).
func (p *pcomp) emitStoreLocal(slot int32, pos token.Pos) {
	if n := len(p.p.code); n >= 3 && p.barrier <= n-3 {
		add, cst, ld := p.last(1), p.last(2), p.last(3)
		if (add.op == opAddI || add.op == opSubI) &&
			cst.op == opConst && ld.op == opLoadLocal && ld.a == slot {
			cv := p.c.prog.consts[cst.a]
			if k, ok := cv.AsInt(); ok && k >= 0 && k <= math.MaxInt32 {
				delta := int32(k)
				if add.op == opSubI {
					delta = -delta
				}
				p.pop(3)
				p.depth-- // the trio's net push
				p.emit(opIncLocal, slot, delta, pos, 0)
				return
			}
		}
	}
	p.emit(opStoreLocal, slot, 0, pos, -1)
}

// emitBrFalse emits a branch-if-false with an unresolved target,
// fusing a preceding integer comparison. Returns the branch pc for
// patching.
func (p *pcomp) emitBrFalse(pos token.Pos) int {
	if n := len(p.p.code); n >= 1 && p.barrier <= n-1 {
		if cmp := p.last(1); cmp.op >= opEqI && cmp.op <= opGeI {
			cmpPos := p.p.pos[n-1]
			p.pop(1)
			p.depth++ // revert the comparison's net -1
			return p.emit(opBrCmpIF, -1, int32(cmp.op), cmpPos, -2)
		}
	}
	return p.emit(opBrFalse, -1, 0, pos, -1)
}

// emitBrFalseTo is emitBrFalse with a known (backward) target.
func (p *pcomp) emitBrFalseTo(target int, pos token.Pos) {
	br := p.emitBrFalse(pos)
	p.patch(br, target)
}

func (p *pcomp) varRef(v *sem.VarSym) (slot, hops int32) {
	h := p.r.Level - v.Owner.Level
	if h < 0 {
		p.c.unsupported("no active frame holds %s", v.Name)
	}
	return int32(v.Slot), int32(h)
}

// compileAddr pushes the address of a designator onto the address
// stack.
func (p *pcomp) compileAddr(e ast.Expr) {
	p.bailFast()
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := p.c.info.UseOf(e).(*sem.VarSym)
		if !ok {
			p.c.unsupported("%s is not a variable", e.Name)
		}
		if _, qual := p.regOf[v]; qual {
			// Unreachable: escape analysis disqualifies any variable
			// whose address is taken.
			p.c.unsupported("internal: register variable %s used by address", v.Name)
		}
		slot, hops := p.varRef(v)
		p.emit(opAddrVar, slot, hops, e.Pos(), 0)
		p.pushAddr()
	case *ast.IndexExpr:
		p.compileAddr(e.X)
		for _, ie := range e.Indices {
			p.compileExpr(ie)
			p.emit(opAddrIndex, 0, 0, ie.Pos(), -1)
		}
	case *ast.FieldExpr:
		p.compileAddr(e.X)
		p.emit(opAddrField, p.c.field(e.Field), 0, e.Pos(), 0)
	default:
		p.c.unsupported("expression is not assignable: %T", e)
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (p *pcomp) isIntExpr(e ast.Expr) bool {
	return types.IsInteger(p.c.info.TypeOf[e])
}

func (p *pcomp) compileExpr(e ast.Expr) {
	p.bailFast()
	switch e := e.(type) {
	case *ast.IntLit:
		p.emit(opConst, p.c.constant(interp.IntV(e.Value)), 0, e.Pos(), +1)

	case *ast.RealLit:
		p.emit(opConst, p.c.constant(interp.RealV(e.Value)), 0, e.Pos(), +1)

	case *ast.StringLit:
		p.emit(opConst, p.c.constant(interp.StrV(e.Value)), 0, e.Pos(), +1)

	case *ast.Ident:
		switch sym := p.c.info.UseOf(e).(type) {
		case *sem.VarSym:
			if r, qual := p.regOf[sym]; qual {
				p.emit(opPushR, r, 0, e.Pos(), +1)
				return
			}
			slot, hops := p.varRef(sym)
			if hops == 0 {
				p.emit(opLoadLocal, slot, 0, e.Pos(), +1)
			} else {
				p.emit(opLoadOuter, slot, hops, e.Pos(), +1)
			}
			return
		case *sem.ConstSym:
			p.emit(opConst, p.c.constant(constToValue(sym.Value)), 0, e.Pos(), +1)
			return
		}
		// Parameterless function call.
		if target := p.c.info.CallAt(e.UID, e); target != nil {
			p.compileCall(target, nil, e.Pos())
			return
		}
		p.c.unsupported("unresolved identifier %s", e.Name)

	case *ast.BinaryExpr:
		p.compileExpr(e.X)
		p.compileExpr(e.Y)
		if op, ok := intFastOp(e.Op); ok && p.isIntExpr(e.X) && p.isIntExpr(e.Y) {
			delta := -1
			p.emit(op, 0, 0, e.Pos(), delta)
		} else {
			p.emit(opBinary, int32(e.Op), 0, e.Pos(), -1)
		}

	case *ast.UnaryExpr:
		p.compileExpr(e.X)
		switch e.Op {
		case token.Minus:
			p.emit(opNeg, 0, 0, e.Pos(), 0)
		case token.Plus:
			// Identity on any operand, matching the interpreter.
		case token.Not:
			p.emit(opNot, 0, 0, e.Pos(), 0)
		default:
			p.c.unsupported("unary %s", e.Op)
		}

	case *ast.IndexExpr, *ast.FieldExpr:
		p.compileAddr(e)
		p.adepth--
		p.emit(opLoadAddr, 0, 0, e.Pos(), +1)

	case *ast.CallExpr:
		if b := p.c.info.BuiltinAt(e.UID, e); b != nil {
			p.compileBuiltinFunc(b, e)
			return
		}
		target := p.c.info.CallAt(e.UID, e)
		if target == nil {
			p.c.unsupported("call to unresolved function %s", e.Name)
		}
		p.compileCall(target, e.Args, e.Pos())

	case *ast.SetLit:
		t, _ := p.c.info.TypeOf[e].(*types.Array)
		ti := int32(-1)
		if t != nil {
			ti = p.c.arrayType(t)
		}
		for _, el := range e.Elems {
			p.compileExpr(el)
		}
		p.emit(opMakeArr, int32(len(e.Elems)), ti, e.Pos(), -len(e.Elems)+1)

	default:
		p.c.unsupported("cannot compile expression %T", e)
	}
}

func (p *pcomp) compileBuiltinFunc(b *sem.Builtin, e *ast.CallExpr) {
	if len(e.Args) != 1 {
		p.c.unsupported("%s expects 1 argument", b.Name)
	}
	p.compileExpr(e.Args[0])
	var op opcode
	switch b.Code {
	case sem.BuiltinAbs:
		op = opAbs
	case sem.BuiltinSqr:
		op = opSqr
	case sem.BuiltinOdd:
		op = opOdd
	case sem.BuiltinTrunc:
		op = opTrunc
	case sem.BuiltinRound:
		op = opRound
	default:
		p.c.unsupported("builtin %s cannot be called as a function", b.Name)
	}
	p.emit(op, 0, 0, e.Pos(), 0)
}

func intFastOp(op token.Kind) (opcode, bool) {
	switch op {
	case token.Plus:
		return opAddI, true
	case token.Minus:
		return opSubI, true
	case token.Star:
		return opMulI, true
	case token.Div:
		return opDivI, true
	case token.Mod:
		return opModI, true
	case token.Slash:
		return opSlashI, true
	case token.Eq:
		return opEqI, true
	case token.NotEq:
		return opNeI, true
	case token.Less:
		return opLtI, true
	case token.LessEq:
		return opLeI, true
	case token.Greater:
		return opGtI, true
	case token.GreatEq:
		return opGeI, true
	}
	return opInvalid, false
}

func constToValue(v any) interp.Value {
	switch v := v.(type) {
	case int64:
		return interp.IntV(v)
	case float64:
		return interp.RealV(v)
	case bool:
		return interp.BoolV(v)
	case string:
		return interp.StrV(v)
	}
	return interp.IntV(0)
}
