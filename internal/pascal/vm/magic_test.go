package vm

import (
	"math"
	"math/rand"
	"testing"
)

// TestMagicDivExhaustive cross-checks the magic-multiply quotient and
// remainder against Go's native truncated division over every divisor
// the compiler would intern for small programs plus adversarial large
// ones, across edge-case and random dividends.
func TestMagicDivExhaustive(t *testing.T) {
	divisors := []int64{}
	for d := int64(2); d <= 1024; d++ {
		divisors = append(divisors, d)
	}
	divisors = append(divisors,
		1<<20-1, 1<<20, 1<<20+1,
		1<<31-1, 1<<31, 1<<31+1,
		1<<62-3, 1<<62, math.MaxInt64-1, math.MaxInt64)

	edges := []int64{
		0, 1, -1, 2, -2, 3, -3, 96, 97, 98, -96, -97, -98,
		math.MaxInt64, math.MaxInt64 - 1, math.MinInt64, math.MinInt64 + 1,
		1<<32 - 1, 1 << 32, -(1 << 32),
	}
	rng := rand.New(rand.NewSource(1))
	dividends := append([]int64{}, edges...)
	for i := 0; i < 200; i++ {
		dividends = append(dividends, rng.Int63()-rng.Int63())
	}

	for _, d := range divisors {
		mg := magicFor(d)
		for _, n := range dividends {
			if q := mg.quot(n); q != n/d {
				t.Fatalf("quot(%d / %d) = %d, want %d (m=%d s=%d)", n, d, q, n/d, mg.m, mg.s)
			}
			if r := n - mg.quot(n)*mg.d; r != n%d {
				t.Fatalf("rem(%d %% %d) = %d, want %d", n, d, n-mg.quot(n)*mg.d, n%d)
			}
		}
	}
}
