package vm_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/vm"
	"gadt/internal/progen"
	"gadt/internal/transform"
)

func analyze(t *testing.T, src string) *sem.Info {
	t.Helper()
	prog, err := parser.ParseProgram("t.pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

type runResult struct {
	out     string
	err     error
	steps   int
	globals []interp.Binding
}

func runInterp(info *sem.Info, input string, cfg interp.Config) runResult {
	var out strings.Builder
	cfg.Input = strings.NewReader(input)
	cfg.Output = &out
	it := interp.New(info, cfg)
	err := it.Run()
	return runResult{out: out.String(), err: err, steps: it.Steps(), globals: it.Globals()}
}

func runVM(t *testing.T, info *sem.Info, input string, cfg interp.Config) runResult {
	t.Helper()
	prog, err := vm.Compile(info)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	var out strings.Builder
	cfg.Input = strings.NewReader(input)
	cfg.Output = &out
	m := vm.New(prog, cfg)
	rerr := m.Run()
	return runResult{out: out.String(), err: rerr, steps: m.Steps(), globals: m.Globals()}
}

// normErr reduces a runtime error to its position-independent message,
// mirroring the differential harness's error-class comparison.
func normErr(err error) string {
	if err == nil {
		return ""
	}
	var re *interp.RuntimeError
	if errors.As(err, &re) {
		return re.Msg
	}
	return err.Error()
}

func globalsString(bs []interp.Binding) string {
	var sb strings.Builder
	for _, b := range bs {
		fmt.Fprintf(&sb, "%s=%s;", b.Name, interp.FormatValue(b.Value))
	}
	return sb.String()
}

// assertParity runs src on both backends and requires identical output,
// error message, statement count and final globals.
func assertParity(t *testing.T, src, input string, cfg interp.Config) {
	t.Helper()
	info := analyze(t, src)
	want := runInterp(info, input, cfg)
	got := runVM(t, info, input, cfg)
	if got.out != want.out {
		t.Errorf("output mismatch:\n  interp: %q\n  vm:     %q", want.out, got.out)
	}
	if normErr(got.err) != normErr(want.err) {
		t.Errorf("error mismatch:\n  interp: %v\n  vm:     %v", want.err, got.err)
	}
	if got.steps != want.steps {
		t.Errorf("steps mismatch: interp %d, vm %d", want.steps, got.steps)
	}
	if gg, wg := globalsString(got.globals), globalsString(want.globals); gg != wg {
		t.Errorf("globals mismatch:\n  interp: %s\n  vm:     %s", wg, gg)
	}
}

var parityPrograms = []struct {
	name  string
	src   string
	input string
}{
	{"arith", `
program p;
var a, b: integer; r: real;
begin
  a := 7; b := 3;
  writeln(a + b, a - b, a * b, a div b, a mod b);
  r := a / b;
  writeln(r);
  writeln(a / 2, 1.5 + a, a * 0.5, 10.0 / 4)
end.
`, ""},
	{"compare", `
program p;
var a, b: integer; s: string;
begin
  a := 2; b := 5; s := 'abc';
  writeln(a < b, a <= b, a > b, a >= b, a = b, a <> b);
  writeln(s < 'abd', s = 'abc', 1.5 < 2, 2.0 >= 2);
  writeln((a < b) and (b < 10), (a > b) or true, not (a = b))
end.
`, ""},
	{"whileloop", `
program p;
var i, s: integer;
begin
  i := 0; s := 0;
  while i < 10 do begin s := s + i; i := i + 1 end;
  writeln(s)
end.
`, ""},
	{"forloops", `
program p;
var i, s: integer;
begin
  s := 0;
  for i := 1 to 5 do s := s + i;
  writeln(s, i);
  for i := 5 downto 1 do s := s - 1;
  writeln(s, i);
  for i := 3 to 1 do s := 777;
  writeln(s, i)
end.
`, ""},
	{"repeatloop", `
program p;
var i: integer;
begin
  i := 10;
  repeat
    writeln(i);
    i := i - 3
  until i < 0
end.
`, ""},
	{"casestmt", `
program p;
var i, r: integer;
begin
  for i := 0 to 6 do begin
    case i of
      0: r := 100;
      1, 2: r := 200;
      3: ;
      4, 5: r := i * 10
    else
      r := -1
    end;
    writeln(i, r)
  end
end.
`, ""},
	{"caseNoElse", `
program p;
var i, r: integer;
begin
  r := 9;
  case 42 of
    1: r := 1;
    2: r := 2
  end;
  writeln(r)
end.
`, ""},
	{"nestedproc", `
program p;
var g: integer;
procedure outer(x: integer);
var o: integer;
  procedure inner(y: integer);
  begin
    o := o + y;
    g := g + o + x
  end;
begin
  o := 1;
  inner(10);
  inner(20)
end;
begin
  g := 0;
  outer(5);
  writeln(g)
end.
`, ""},
	{"varparams", `
program p;
var a, b: integer;
procedure swap(var x, y: integer);
var t: integer;
begin
  t := x; x := y; y := t
end;
begin
  a := 1; b := 2;
  swap(a, b);
  writeln(a, b)
end.
`, ""},
	{"functions", `
program p;
var r: integer;
function fib(n: integer): integer;
begin
  if n < 2 then fib := n
  else fib := fib(n - 1) + fib(n - 2)
end;
begin
  r := fib(15);
  writeln(r)
end.
`, ""},
	{"paramlessfunc", `
program p;
var c: integer;
function next: integer;
begin
  c := c + 1;
  next := c
end;
begin
  c := 0;
  writeln(next, next, next)
end.
`, ""},
	{"arrays", `
program p;
var a: array [1 .. 5] of integer; i, s: integer;
begin
  for i := 1 to 5 do a[i] := i * i;
  s := 0;
  for i := 1 to 5 do s := s + a[i];
  writeln(s, a[3])
end.
`, ""},
	{"arraydisplay", `
program p;
var a: array [1 .. 4] of integer; i: integer;
begin
  a := [10, 20, 30];
  for i := 1 to 4 do writeln(a[i])
end.
`, ""},
	{"arrayelemvararg", `
program p;
var a: array [1 .. 3] of integer;
procedure bump(var x: integer);
begin
  x := x + 100
end;
begin
  a[2] := 5;
  bump(a[2]);
  writeln(a[1], a[2], a[3])
end.
`, ""},
	{"arrayvalueparam", `
program p;
var a: array [1 .. 3] of integer;
procedure clobber(b: array [1 .. 3] of integer);
begin
  b[1] := 999
end;
begin
  a[1] := 1;
  clobber(a);
  writeln(a[1])
end.
`, ""},
	{"records", `
program p;
var r: record x, y: integer end;
begin
  r.x := 3;
  r.y := r.x * 2;
  writeln(r.x, r.y)
end.
`, ""},
	{"builtins", `
program p;
var i: integer; r: real;
begin
  i := -5;
  writeln(abs(i), abs(5), sqr(3), odd(3), odd(4));
  r := -2.7;
  writeln(abs(r), sqr(1.5), trunc(2.9), trunc(-2.9), round(2.5), round(-2.5), round(2.4))
end.
`, ""},
	{"readints", `
program p;
var a, b: integer; r: real; s: string; f: boolean;
begin
  read(a, b);
  read(r);
  read(s);
  read(f);
  writeln(a + b, r, s, f)
end.
`, " 3   4\n1.25\nhello\ntrue\n"},
	{"strings", `
program p;
var s, t: string;
begin
  s := 'foo';
  t := s + 'bar';
  writeln(t, s < t, s = 'foo')
end.
`, ""},
	{"gotoback", `
program p;
label 1;
var i: integer;
begin
  i := 0;
1:
  i := i + 1;
  if i < 5 then goto 1;
  writeln(i)
end.
`, ""},
	{"gotofwd", `
program p;
label 9;
var i: integer;
begin
  i := 0;
  while true do begin
    i := i + 1;
    if i > 3 then goto 9
  end;
9:
  writeln(i)
end.
`, ""},
	{"gotooutoffor", `
program p;
label 5;
var i, s: integer;
begin
  s := 0;
  for i := 1 to 100 do begin
    s := s + i;
    if i = 4 then goto 5
  end;
5:
  writeln(i, s)
end.
`, ""},
	{"divzero", `
program p;
var a, b: integer;
begin
  a := 1; b := 0;
  writeln('before');
  a := a div b;
  writeln('after')
end.
`, ""},
	{"modzero", `
program p;
var a: integer;
begin
  a := 3 mod (a - a)
end.
`, ""},
	{"slashzero", `
program p;
var r: real; z: integer;
begin
  z := 0;
  r := 1 / z
end.
`, ""},
	{"indexoob", `
program p;
var a: array [1 .. 3] of integer; i: integer;
begin
  i := 7;
  a[i] := 1
end.
`, ""},
	{"readeof", `
program p;
var a: integer;
begin
  read(a);
  read(a)
end.
`, "5"},
	{"readbadint", `
program p;
var a: integer;
begin
  read(a)
end.
`, "zebra"},
	{"intcoercereal", `
program p;
var r: real;
begin
  r := 3;
  writeln(r);
  r := r + 1;
  writeln(r)
end.
`, ""},
	{"writeempty", `
program p;
begin
  write('a');
  writeln;
  writeln('b', 'c')
end.
`, ""},
	{"negation", `
program p;
var i: integer; r: real;
begin
  i := 5;
  r := 1.5;
  writeln(-i, -r, +i, -(-i))
end.
`, ""},
	{"sqrtest", paper.Sqrtest, ""},
	{"sqrtestFixed", paper.SqrtestFixed, ""},
	{"pqr", paper.PQR, ""},
	{"sliceExample", paper.SliceExample, ""},
	{"globalSideEffects", paper.GlobalSideEffects, ""},
	{"arrsum", paper.ArrsumProgram, ""},
}

func TestParity(t *testing.T) {
	for _, tc := range parityPrograms {
		t.Run(tc.name, func(t *testing.T) {
			assertParity(t, tc.src, tc.input, interp.Config{})
		})
	}
}

// TestParityProgen runs generated random programs (gotos, reads, nested
// routines, loops of every form) on both backends, untransformed and
// fully transformed, falling back to the interpreter-only path when the
// compiler rejects a construct.
func TestParityProgen(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := progen.Random(progen.RandomConfig{Seed: seed, Gotos: seed%2 == 0, Reads: seed%3 == 0})
		t.Run(p.Name, func(t *testing.T) {
			info := analyze(t, p.Source)
			cfg := interp.Config{MaxSteps: 500_000, MaxDepth: 2000}
			want := runInterp(info, p.Input, cfg)
			prog, err := vm.Compile(info)
			if err != nil {
				if !errors.Is(err, vm.ErrUnsupported) {
					t.Fatalf("compile: %v", err)
				}
				t.Skipf("not vm-compilable: %v", err)
			}
			var out strings.Builder
			cfg.Input = strings.NewReader(p.Input)
			cfg.Output = &out
			m := vm.New(prog, cfg)
			rerr := m.Run()
			got := runResult{out: out.String(), err: rerr, steps: m.Steps(), globals: m.Globals()}
			if got.out != want.out || normErr(got.err) != normErr(want.err) ||
				got.steps != want.steps || globalsString(got.globals) != globalsString(want.globals) {
				t.Errorf("divergence on %s:\n  interp: out=%q err=%v steps=%d globals=%s\n  vm:     out=%q err=%v steps=%d globals=%s",
					p.Name, want.out, want.err, want.steps, globalsString(want.globals),
					got.out, got.err, got.steps, globalsString(got.globals))
			}
		})
	}
}

// TestParityTransformed compiles and runs fully transformed programs
// (loop units, goto elimination, global lifting) on both backends.
func TestParityTransformed(t *testing.T) {
	sources := []struct {
		name string
		src  string
	}{
		{"sqrtest", paper.Sqrtest},
		{"pqr", paper.PQR},
		{"loopGoto", paper.LoopGoto},
		{"globalGoto", paper.GlobalGoto},
	}
	for _, s := range sources {
		t.Run(s.name, func(t *testing.T) {
			info := analyze(t, s.src)
			res, err := transform.ApplyStages(info, transform.AllStages())
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			cfg := interp.Config{MaxSteps: 2_000_000, MaxDepth: 5000}
			want := runInterp(res.Info, "", cfg)
			prog, cerr := vm.Compile(res.Info)
			if cerr != nil {
				if !errors.Is(cerr, vm.ErrUnsupported) {
					t.Fatalf("compile: %v", cerr)
				}
				t.Skipf("not vm-compilable: %v", cerr)
			}
			var out strings.Builder
			cfg.Input = strings.NewReader("")
			cfg.Output = &out
			m := vm.New(prog, cfg)
			rerr := m.Run()
			if out.String() != want.out || normErr(rerr) != normErr(want.err) || m.Steps() != want.steps {
				t.Errorf("transformed divergence:\n  interp: out=%q err=%v steps=%d\n  vm:     out=%q err=%v steps=%d",
					want.out, want.err, want.steps, out.String(), rerr, m.Steps())
			}
		})
	}
}

// TestBudgetParity: fuel and depth bombs must produce the same typed
// errors (message and errors.Is class) on both backends.
func TestBudgetParity(t *testing.T) {
	fuelBomb := `
program p;
var i: integer;
begin
  i := 0;
  while true do i := i + 1
end.
`
	depthBomb := `
program p;
function f(n: integer): integer;
begin
  f := f(n + 1)
end;
begin
  writeln(f(0))
end.
`
	t.Run("fuel", func(t *testing.T) {
		cfg := interp.Config{MaxSteps: 1000}
		info := analyze(t, fuelBomb)
		want := runInterp(info, "", cfg)
		got := runVM(t, info, "", cfg)
		if !errors.Is(want.err, interp.ErrFuelExhausted) {
			t.Fatalf("interp error not fuel-classified: %v", want.err)
		}
		if !errors.Is(got.err, interp.ErrFuelExhausted) {
			t.Fatalf("vm error not fuel-classified: %v", got.err)
		}
		if normErr(got.err) != normErr(want.err) {
			t.Errorf("fuel message mismatch:\n  interp: %v\n  vm:     %v", want.err, got.err)
		}
		if got.steps != want.steps {
			t.Errorf("steps at exhaustion: interp %d, vm %d", want.steps, got.steps)
		}
	})
	t.Run("depth", func(t *testing.T) {
		cfg := interp.Config{MaxDepth: 100}
		info := analyze(t, depthBomb)
		want := runInterp(info, "", cfg)
		got := runVM(t, info, "", cfg)
		if !errors.Is(want.err, interp.ErrDepthExhausted) {
			t.Fatalf("interp error not depth-classified: %v", want.err)
		}
		if !errors.Is(got.err, interp.ErrDepthExhausted) {
			t.Fatalf("vm error not depth-classified: %v", got.err)
		}
		if normErr(got.err) != normErr(want.err) {
			t.Errorf("depth message mismatch:\n  interp: %v\n  vm:     %v", want.err, got.err)
		}
	})
}

// TestUnsupportedFallback pins the compiler's refusal cases: non-local
// gotos and jumps into structured statements must return ErrUnsupported
// rather than compile to wrong code.
func TestUnsupportedFallback(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"globalGoto", paper.GlobalGoto}, // procedure jumps to a main-block label
		{"gotoIntoLoop", `
program p;
label 3;
var i: integer;
begin
  i := 0;
  goto 3;
  while i < 10 do begin
3:
    i := i + 1
  end;
  writeln(i)
end.
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info := analyze(t, tc.src)
			_, err := vm.Compile(info)
			if err == nil {
				t.Fatal("expected ErrUnsupported, compiled fine")
			}
			if !errors.Is(err, vm.ErrUnsupported) {
				t.Fatalf("expected ErrUnsupported, got %v", err)
			}
		})
	}
}

// TestDeepRecursionErrorStack: the bounded error call stack must match
// the interpreter's shape (32 frames + summary).
func TestDeepRecursionErrorStack(t *testing.T) {
	src := `
program p;
function f(n: integer): integer;
begin
  f := f(n + 1)
end;
begin
  writeln(f(0))
end.
`
	info := analyze(t, src)
	cfg := interp.Config{MaxDepth: 200}
	got := runVM(t, info, "", cfg)
	var re *interp.RuntimeError
	if !errors.As(got.err, &re) {
		t.Fatalf("expected RuntimeError, got %v", got.err)
	}
	if len(re.Stack) != 33 {
		t.Fatalf("stack len = %d, want 32 frames + summary", len(re.Stack))
	}
	if !strings.Contains(re.Stack[32], "more frames") {
		t.Errorf("last stack entry %q should summarize the rest", re.Stack[32])
	}
}

func TestCompileCache(t *testing.T) {
	info := analyze(t, paper.PQR)
	p1, err := vm.CompileKeyed("k1", info)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := vm.CompileKeyed("k1", info)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same key should return the cached Program")
	}
	info2 := analyze(t, paper.PQR)
	p3, err := vm.CompileKeyed("", info2)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("empty key must not hit the cache")
	}
	// Unsupported programs cache their error too.
	bad := analyze(t, paper.GlobalGoto)
	if _, err := vm.CompileKeyed("k2", bad); !errors.Is(err, vm.ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
	if _, err := vm.CompileKeyed("k2", bad); !errors.Is(err, vm.ErrUnsupported) {
		t.Fatalf("cached negative entry: want ErrUnsupported, got %v", err)
	}
}
