package vm_test

import (
	"fmt"
	"strings"
	"testing"

	"gadt/internal/obs"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/vm"
)

// intLoopSrc mirrors the interpreter's zero-alloc workload: a tight
// integer loop where every statement touches only integer slots. acc
// is kept mod-bounded so the final writeln output has the same length
// at every iteration count — otherwise a longer decimal rendering
// crosses an allocator size class and shows up as a spurious +1.
func intLoopSrc(n int) string {
	return fmt.Sprintf(`program tight;
var i, acc, tmp: integer;
begin
  acc := 0;
  i := 0;
  while i < %d do
  begin
    tmp := i * 3 + acc mod 7;
    acc := (acc + tmp - i div 2) mod 10000;
    i := i + 1
  end;
  writeln(acc)
end.`, n)
}

// callLoopSrc drives the VM's call path: a nested procedure touching
// its enclosing routine's locals across the static chain, once per
// iteration. After the first call warms the frame free list, steady-
// state calls must allocate nothing.
func callLoopSrc(n int) string {
	return fmt.Sprintf(`program slots;
var i, acc: integer;
procedure outer;
var a, b: integer;
  procedure inner;
  begin
    a := a + i;
    b := b + a
  end;
begin
  a := 1;
  b := 2;
  inner;
  acc := (acc + b) mod 10000
end;
begin
  acc := 0;
  i := 0;
  while i < %d do
  begin
    outer;
    i := i + 1
  end;
  writeln(acc)
end.`, n)
}

// funcLoopSrc exercises function calls with arguments and results on
// the operand stack.
func funcLoopSrc(n int) string {
	return fmt.Sprintf(`program funcs;
var i, acc: integer;
function step(x, y: integer): integer;
begin
  step := x * 2 + y mod 5
end;
begin
  acc := 0;
  i := 0;
  while i < %d do
  begin
    acc := (acc + step(i, acc)) mod 10000;
    i := i + 1
  end;
  writeln(acc)
end.`, n)
}

// allocsForVMRun measures one compile-free run (vm.New + Run).
func allocsForVMRun(t *testing.T, src string, metrics *obs.Registry) float64 {
	t.Helper()
	info := analyze(t, src)
	prog, err := vm.Compile(info)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return testing.AllocsPerRun(10, func() {
		var out strings.Builder
		m := vm.New(prog, interp.Config{Output: &out, Metrics: metrics})
		if err := m.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
}

// assertZeroAllocsPerIteration runs the workload at two iteration
// counts; identical totals mean the fixed setup cost is all there is —
// no per-iteration allocation on the hot path.
func assertZeroAllocsPerIteration(t *testing.T, gen func(int) string, metrics *obs.Registry) {
	t.Helper()
	const n = 2000
	base := allocsForVMRun(t, gen(n), metrics)
	double := allocsForVMRun(t, gen(2*n), metrics)
	if double > base {
		t.Errorf("hot path allocates: %.0f allocs at %d iterations vs %.0f at %d (%.3f allocs/iteration, want 0)",
			double, 2*n, base, n, (double-base)/n)
	}
}

func TestVMIntLoopZeroAllocs(t *testing.T) {
	assertZeroAllocsPerIteration(t, intLoopSrc, nil)
}

func TestVMCallZeroAllocs(t *testing.T) {
	assertZeroAllocsPerIteration(t, callLoopSrc, nil)
}

func TestVMFuncCallZeroAllocs(t *testing.T) {
	assertZeroAllocsPerIteration(t, funcLoopSrc, nil)
}

func TestVMZeroAllocsWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	assertZeroAllocsPerIteration(t, intLoopSrc, reg)
	assertZeroAllocsPerIteration(t, callLoopSrc, reg)
	if reg.Counter("vm.statements").Value() == 0 {
		t.Error("instrumented runs recorded no statements")
	}
	if reg.Counter("vm.calls").Value() == 0 {
		t.Error("instrumented runs recorded no calls")
	}
}
