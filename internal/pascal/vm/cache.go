package vm

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"gadt/internal/pascal/sem"
)

// cacheEntry records one compilation outcome. Failed compilations are
// cached too (negative entries): a program that trips ErrUnsupported
// will do so every time, and callers probing the VM before falling back
// to the interpreter should not pay the compile walk twice.
type cacheEntry struct {
	prog *Program
	err  error
}

var (
	cacheMu sync.Mutex
	cache   = map[string]cacheEntry{}
)

// SourceKey derives a content-addressed cache key from program source,
// matching the serve artifact cache's hashing scheme.
func SourceKey(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// CompileKeyed compiles info, memoizing the result under key. Keys are
// expected to be content-addressed (SourceKey, or serve's artifact
// hash); the empty key bypasses the cache. The cached *Program is
// shared across callers — Programs are immutable after compilation and
// every VM gets its own frames and stacks, so concurrent reuse is safe.
func CompileKeyed(key string, info *sem.Info) (*Program, error) {
	if key == "" {
		return Compile(info)
	}
	cacheMu.Lock()
	e, ok := cache[key]
	cacheMu.Unlock()
	if ok {
		return e.prog, e.err
	}
	prog, err := Compile(info)
	cacheMu.Lock()
	// A racing compile of the same key wins ties arbitrarily; both
	// results are equivalent, so keep whichever landed first.
	if prev, ok := cache[key]; ok {
		cacheMu.Unlock()
		return prev.prog, prev.err
	}
	cache[key] = cacheEntry{prog: prog, err: err}
	cacheMu.Unlock()
	return prog, err
}
