package vm

import (
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/types"
)

// Escape analysis for the unboxed integer register tier.
//
// A variable can live in a per-activation int64 register (instead of a
// tagged-value frame cell) only when every access to it is a direct
// read or write from its own routine: up-level access from a nested
// routine and by-reference argument passing both need a real cell that
// other activations can alias. The walker below visits every routine
// body once and marks the symbols that escape; anything it cannot
// classify conservatively poisons the enclosing routine (the compiler
// would reject such a program anyway, so the only cost is a missed
// optimization on the bail-out path).
type escapeInfo struct {
	// escaped vars need a frame cell: accessed up-level, passed by
	// reference, or owned by a routine the walker could not fully
	// classify.
	escaped map[*sem.VarSym]bool
	// usesOuter marks routines that read or write state owned by an
	// enclosing routine (they need a static chain, so they can never be
	// frameless fastcall routines).
	usesOuter map[*sem.Routine]bool
}

type escWalker struct {
	info *sem.Info
	esc  *escapeInfo
	r    *sem.Routine // routine whose body is being walked
}

func analyzeEscapes(info *sem.Info) *escapeInfo {
	esc := &escapeInfo{
		escaped:   make(map[*sem.VarSym]bool),
		usesOuter: make(map[*sem.Routine]bool),
	}
	for _, r := range info.Routines {
		w := &escWalker{info: info, r: r, esc: esc}
		if r.Block != nil {
			w.stmt(r.Block.Body)
		}
	}
	return esc
}

// poison marks every variable of the current routine as escaped and the
// routine as outer-using: the walker met a node it cannot classify, so
// no register optimization applies there.
func (w *escWalker) poison() {
	for _, v := range w.r.Params {
		w.esc.escaped[v] = true
	}
	for _, v := range w.r.Locals {
		w.esc.escaped[v] = true
	}
	if w.r.Result != nil {
		w.esc.escaped[w.r.Result] = true
	}
	w.esc.usesOuter[w.r] = true
}

func (w *escWalker) useVar(id *ast.Ident) {
	if v, ok := w.info.UseOf(id).(*sem.VarSym); ok && v.Owner != w.r {
		w.esc.escaped[v] = true
		w.esc.usesOuter[w.r] = true
	}
}

func (w *escWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.CompoundStmt:
		for _, st := range s.Stmts {
			w.stmt(st)
		}
	case *ast.AssignStmt:
		w.expr(s.Lhs)
		w.expr(s.Rhs)
	case *ast.CallStmt:
		w.call(s.UID, s, s.Args)
	case *ast.IfStmt:
		w.expr(s.Cond)
		w.stmt(s.Then)
		w.stmt(s.Else)
	case *ast.WhileStmt:
		w.expr(s.Cond)
		w.stmt(s.Body)
	case *ast.RepeatStmt:
		for _, st := range s.Stmts {
			w.stmt(st)
		}
		w.expr(s.Cond)
	case *ast.ForStmt:
		w.useVar(s.Var)
		w.expr(s.From)
		w.expr(s.Limit)
		w.stmt(s.Body)
	case *ast.CaseStmt:
		w.expr(s.Expr)
		for _, arm := range s.Arms {
			for _, ce := range arm.Consts {
				w.expr(ce)
			}
			w.stmt(arm.Body)
		}
		w.stmt(s.Else)
	case *ast.GotoStmt:
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.EmptyStmt:
	default:
		w.poison()
	}
}

func (w *escWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.IntLit, *ast.RealLit, *ast.StringLit:
	case *ast.Ident:
		w.useVar(e)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		for _, ie := range e.Indices {
			w.expr(ie)
		}
	case *ast.FieldExpr:
		w.expr(e.X)
	case *ast.CallExpr:
		w.call(e.UID, e, e.Args)
	case *ast.SetLit:
		for _, el := range e.Elems {
			w.expr(el)
		}
	default:
		w.poison()
	}
}

// call visits a call's arguments and marks whole-variable arguments
// bound to by-reference parameters as escaped (the callee aliases their
// cell). Builtins take no by-reference parameters the register tier
// cares about: read/readln targets are stores, not aliases.
func (w *escWalker) call(uid int, n ast.Node, args []ast.Expr) {
	var target *sem.Routine
	if w.info.BuiltinAt(uid, n) == nil {
		target = w.info.CallAt(uid, n)
	}
	for i, a := range args {
		w.expr(a)
		if target == nil || i >= len(target.Params) {
			continue
		}
		if target.Params[i].Mode != ast.Value {
			if id, ok := a.(*ast.Ident); ok {
				if v, ok := w.info.UseOf(id).(*sem.VarSym); ok {
					w.esc.escaped[v] = true
				}
			}
		}
	}
}

// regCandidate reports whether v can live in a register of its owner's
// activation: an integer scalar, declared by r itself, never aliased.
func (esc *escapeInfo) regCandidate(r *sem.Routine, v *sem.VarSym) bool {
	if v == nil || v.Owner != r || esc.escaped[v] {
		return false
	}
	if v.Kind == sem.ParamVar && v.Mode != ast.Value {
		return false
	}
	return types.IsInteger(v.Type)
}

// fastEligible seeds the fastcall candidate set: routines whose entire
// activation is integer registers (all parameters by-value integers,
// integer or absent result, integer locals, nothing escaping, no outer
// state) can run without a frame on the contiguous register stack. The
// compiler confirms each candidate by actually lowering its body to
// pure register code; candidates whose bodies need stack or cell
// operations are demoted and recompiled normally (see Compile).
func fastEligible(info *sem.Info, esc *escapeInfo) map[*sem.Routine]bool {
	set := make(map[*sem.Routine]bool)
	for _, r := range info.Routines {
		if r == info.Main || esc.usesOuter[r] {
			continue
		}
		ok := true
		for _, v := range r.Params {
			if v.Mode != ast.Value || !esc.regCandidate(r, v) {
				ok = false
				break
			}
		}
		if r.Result != nil && !esc.regCandidate(r, r.Result) {
			ok = false
		}
		for _, v := range r.Locals {
			if !esc.regCandidate(r, v) {
				ok = false
				break
			}
		}
		if ok {
			set[r] = true
		}
	}
	return set
}
