package vm_test

import (
	"errors"
	"strings"
	"testing"

	"gadt/internal/paper"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/vm"
	"gadt/internal/progen"
)

// FuzzVMvsInterp is the backend differential fuzzer: any program that
// parses, analyzes and compiles must behave identically on the
// interpreter and the VM — same stdout, same position-stripped error
// message, same statement count, same final globals. Divergent inputs
// found here should be re-run through `pdiff -backend vm` whose
// shrinker minimizes them into testdata/diff/ for the replay
// regression test to pin.
func FuzzVMvsInterp(f *testing.F) {
	for _, src := range []string{
		paper.Sqrtest, paper.SqrtestFixed, paper.SliceExample, paper.PQR,
		paper.GlobalSideEffects, paper.LoopGoto, paper.ArrsumProgram,
	} {
		f.Add(src, "")
	}
	for seed := int64(1); seed <= 8; seed++ {
		p := progen.Random(progen.RandomConfig{Seed: seed, Gotos: seed%2 == 0, Reads: seed%3 == 0})
		f.Add(p.Source, p.Input)
	}
	f.Add("program p; var a: integer; begin read(a); writeln(a div 0) end.", "3")
	f.Add("program p; label 1; var i: integer; begin 1: i := i + 1; if i < 3 then goto 1 end.", "")
	f.Add("program p; var a: array [1 .. 3] of integer; begin a := [1, 2, 3, 4] end.", "")

	f.Fuzz(func(t *testing.T, src, input string) {
		prog, err := parser.ParseProgram("fuzz.pas", src)
		if err != nil {
			return
		}
		info, err := sem.Analyze(prog)
		if err != nil {
			return
		}
		vprog, err := vm.Compile(info)
		if err != nil {
			if errors.Is(err, vm.ErrUnsupported) {
				return // interpreter-fallback territory by design
			}
			t.Fatalf("compile failed on analyzed program: %v", err)
		}

		cfg := interp.Config{MaxSteps: 50_000, MaxDepth: 256}
		var iout strings.Builder
		icfg := cfg
		icfg.Input = strings.NewReader(input)
		icfg.Output = &iout
		it := interp.New(info, icfg)
		ierr := it.Run()

		var vout strings.Builder
		vcfg := cfg
		vcfg.Input = strings.NewReader(input)
		vcfg.Output = &vout
		m := vm.New(vprog, vcfg)
		verr := m.Run()

		if iout.String() != vout.String() {
			t.Errorf("output divergence:\n  interp: %q\n  vm:     %q", iout.String(), vout.String())
		}
		if normErr(ierr) != normErr(verr) {
			t.Errorf("error divergence:\n  interp: %v\n  vm:     %v", ierr, verr)
		}
		if it.Steps() != m.Steps() {
			t.Errorf("steps divergence: interp %d, vm %d", it.Steps(), m.Steps())
		}
		if ig, vg := globalsString(it.Globals()), globalsString(m.Globals()); ig != vg {
			t.Errorf("globals divergence:\n  interp: %s\n  vm:     %s", ig, vg)
		}
	})
}
