package vm

import (
	"math"

	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
)

// Register lowering: statements whose every operand is a
// register-qualified integer (see analyze.go) compile to three-address
// opcodes over the activation's int64 window instead of tagged-value
// stack code. Lowering is attempt-based: each try records a compile
// snapshot, emits code, and rolls back to the stack path on the first
// construct it cannot handle, so the two tiers interleave freely within
// one routine. Fastcall candidates must lower to pure register code;
// tries that fail inside one panic fastBail, demoting the routine and
// restarting compilation without it (Compile's retry loop).

// fastBail aborts compileOnce when a fastcall candidate's body needs
// stack or cell operations after all.
type fastBail struct{ r *sem.Routine }

// bailFast demotes the current routine out of the fastcall set. Called
// at the head of every stack-tier emitter: fastcall bodies may contain
// only opStep, register ops, opJump, opCallR and opRet, because they
// run with no frame and no operand-stack region of their own.
func (p *pcomp) bailFast() {
	if p.fast {
		panic(fastBail{p.r})
	}
}

// csnap is a compile-state snapshot for attempt-based lowering.
// Restoring truncates the emitted code; the nregs/maxStack high-water
// marks are deliberately left alone (over-approximation is harmless).
// The last pre-snapshot instruction is captured verbatim because step
// fusion (emit3) may replace a trailing opStep in place — a plain
// truncation would keep the mutated instruction.
type csnap struct {
	ncode   int
	barrier int
	depth   int
	rdepth  int32
	lastIns instr
	lastPos token.Pos
}

func (p *pcomp) save() csnap {
	s := csnap{ncode: len(p.p.code), barrier: p.barrier, depth: p.depth, rdepth: p.rdepth}
	if s.ncode > 0 {
		s.lastIns = p.p.code[s.ncode-1]
		s.lastPos = p.p.pos[s.ncode-1]
	}
	return s
}

func (p *pcomp) restore(s csnap) {
	p.p.code = p.p.code[:s.ncode]
	p.p.pos = p.p.pos[:s.ncode]
	if s.ncode > 0 {
		p.p.code[s.ncode-1] = s.lastIns
		p.p.pos[s.ncode-1] = s.lastPos
	}
	p.barrier = s.barrier
	p.depth = s.depth
	p.rdepth = s.rdepth
}

// talloc allocates an expression-temporary register above the variable
// registers; temporaries form a compile-time stack.
func (p *pcomp) talloc() int32 {
	r := p.nvarRegs + p.rdepth
	p.rdepth++
	if n := int(p.nvarRegs + p.rdepth); n > p.p.nregs {
		p.p.nregs = n
	}
	return r
}

func (p *pcomp) tfree(n int32) { p.rdepth -= n }

// emit3 appends one three-address instruction. No operand-stack delta:
// register code never touches the value stack.
//
// When the previous instruction is the enclosing statement's opStep
// (barrier-guarded: loop-head fuel charges are jump targets and never
// qualify) and op cannot fault, the pair fuses into one stepped
// instruction carrying the opStep's statement position, saving a
// dispatch per statement.
func (p *pcomp) emit3(op opcode, a, b, c int32, pos token.Pos) int {
	if n := len(p.p.code); stepFusable(op) && n > 0 && p.barrier <= n-1 && p.p.code[n-1].op == opStep {
		spos := p.p.pos[n-1]
		p.pop(1)
		pcv := len(p.p.code)
		p.p.code = append(p.p.code, instr{op: op + steppedDelta, a: a, b: b, c: c})
		p.p.pos = append(p.p.pos, spos)
		return pcv
	}
	pcv := len(p.p.code)
	p.p.code = append(p.p.code, instr{op: op, a: a, b: b, c: c})
	p.p.pos = append(p.p.pos, pos)
	return pcv
}

func (c *compiler) magicIdx(d int64) int32 {
	if idx, ok := c.magicIdxMap[d]; ok {
		return idx
	}
	idx := int32(len(c.prog.magics))
	c.prog.magics = append(c.prog.magics, magicFor(d))
	c.magicIdxMap[d] = idx
	return idx
}

func (c *compiler) iconst(v int64) int32 {
	if idx, ok := c.iconstIdx[v]; ok {
		return idx
	}
	idx := int32(len(c.prog.iconsts))
	c.prog.iconsts = append(c.prog.iconsts, v)
	c.iconstIdx[v] = idx
	return idx
}

// planRegs assigns registers to the routine's qualified variables:
// parameters first, then the function result, then locals — an order
// fastcall depends on (parameter i lands in register i, result at
// len(params), so a caller materializes the argument window and the
// callee runs in place).
func (p *pcomp) planRegs() {
	r := p.r
	add := func(v *sem.VarSym) {
		if !p.c.esc.regCandidate(r, v) {
			return
		}
		reg := int32(len(p.regOf))
		p.regOf[v] = reg
		p.p.regVars = append(p.p.regVars, regVar{slot: int32(v.Slot), reg: reg})
	}
	for _, v := range r.Params {
		add(v)
	}
	if r.Result != nil {
		add(r.Result)
	}
	for _, v := range r.Locals {
		add(v)
	}
	p.nvarRegs = int32(len(p.regOf))
	if int(p.nvarRegs) > p.p.nregs {
		p.p.nregs = int(p.nvarRegs)
	}
	p.p.resReg = -1
	if p.c.fastSet[r] {
		p.p.nparams = len(r.Params)
		p.p.nzero = len(p.regOf)
		if r.Result != nil {
			p.p.resReg = int32(len(r.Params))
		}
	}
}

func int32fits(v int64) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

func (p *pcomp) emitMovImm(dst int32, v int64, pos token.Pos) {
	if int32fits(v) {
		p.emit3(opIMovRI, dst, int32(v), 0, pos)
	} else {
		p.emit3(opIMovRK, dst, p.c.iconst(v), 0, pos)
	}
}

// intImm recognizes compile-time integer immediates: literals, named
// integer constants, and sign-adorned forms of either.
func (p *pcomp) intImm(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.Ident:
		if cs, ok := p.c.info.UseOf(e).(*sem.ConstSym); ok {
			if iv, ok := cs.Value.(int64); ok {
				return iv, true
			}
		}
	case *ast.UnaryExpr:
		switch e.Op {
		case token.Minus:
			if v, ok := p.intImm(e.X); ok {
				return -v, true
			}
		case token.Plus:
			return p.intImm(e.X)
		}
	}
	return 0, false
}

// regExprTo compiles an integer expression into dst, returning false
// (possibly after emitting partial code — callers hold a snapshot) when
// any piece is not register-representable.
//
// Invariant: dst is written only by the final emitted instruction, so
// compiling `s := s + f(s)` into s's own register stays sound — every
// read of dst-as-source happens before the single write.
func (p *pcomp) regExprTo(e ast.Expr, dst int32) bool {
	if !p.isIntExpr(e) {
		return false
	}
	switch e := e.(type) {
	case *ast.IntLit:
		p.emitMovImm(dst, e.Value, e.Pos())
		return true

	case *ast.Ident:
		switch sym := p.c.info.UseOf(e).(type) {
		case *sem.VarSym:
			r, ok := p.regOf[sym]
			if !ok {
				return false
			}
			if r != dst {
				p.emit3(opIMovRR, dst, r, 0, e.Pos())
			}
			return true
		case *sem.ConstSym:
			if iv, ok := sym.Value.(int64); ok {
				p.emitMovImm(dst, iv, e.Pos())
				return true
			}
			return false
		}
		// Parameterless function call.
		if target := p.c.info.CallAt(e.UID, e); target != nil {
			return p.regCall(target, nil, dst, e.Pos())
		}
		return false

	case *ast.BinaryExpr:
		return p.regBinary(e, dst)

	case *ast.UnaryExpr:
		switch e.Op {
		case token.Plus:
			return p.regExprTo(e.X, dst)
		case token.Minus:
			s, nt, ok := p.regOperand(e.X)
			if !ok {
				return false
			}
			p.emit3(opINegR, dst, s, 0, e.Pos())
			p.tfree(nt)
			return true
		}
		return false

	case *ast.CallExpr:
		if b := p.c.info.BuiltinAt(e.UID, e); b != nil {
			if len(e.Args) != 1 || !p.isIntExpr(e.Args[0]) {
				return false
			}
			// trunc/round are deliberately left to the stack tier: on an
			// already-integer operand they are identity, but proving the
			// operand integer-valued at runtime is the stack tier's job.
			switch b.Code {
			case sem.BuiltinAbs:
				s, nt, ok := p.regOperand(e.Args[0])
				if !ok {
					return false
				}
				p.emit3(opIAbsR, dst, s, 0, e.Pos())
				p.tfree(nt)
				return true
			case sem.BuiltinSqr:
				s, nt, ok := p.regOperand(e.Args[0])
				if !ok {
					return false
				}
				p.emit3(opIMulRR, dst, s, s, e.Pos())
				p.tfree(nt)
				return true
			}
			return false
		}
		if target := p.c.info.CallAt(e.UID, e); target != nil {
			return p.regCall(target, e.Args, dst, e.Pos())
		}
		return false
	}
	return false
}

// regOperand yields a register holding the expression's value: the
// variable's own register when the expression is a qualified variable,
// otherwise a fresh temporary (ntmp reports how many the caller must
// tfree after its use).
func (p *pcomp) regOperand(e ast.Expr) (reg, ntmp int32, ok bool) {
	if id, isId := e.(*ast.Ident); isId {
		if v, isVar := p.c.info.UseOf(id).(*sem.VarSym); isVar {
			if r, qual := p.regOf[v]; qual {
				return r, 0, true
			}
			return 0, 0, false
		}
	}
	t := p.talloc()
	if !p.regExprTo(e, t) {
		p.tfree(1)
		return 0, 0, false
	}
	return t, 1, true
}

func regRROp(op token.Kind) (opcode, bool) {
	switch op {
	case token.Plus:
		return opIAddRR, true
	case token.Minus:
		return opISubRR, true
	case token.Star:
		return opIMulRR, true
	case token.Div:
		return opIDivRR, true
	case token.Mod:
		return opIModRR, true
	}
	return opInvalid, false
}

func (p *pcomp) regBinary(e *ast.BinaryExpr, dst int32) bool {
	if !p.isIntExpr(e.X) || !p.isIntExpr(e.Y) {
		return false
	}
	// Immediate right operand.
	if iv, ok := p.intImm(e.Y); ok {
		switch e.Op {
		case token.Plus, token.Minus:
			k := iv
			if e.Op == token.Minus {
				k = -iv // int64 wrap matches two's-complement subtraction
			}
			if int32fits(k) {
				s, nt, ok := p.regOperand(e.X)
				if !ok {
					return false
				}
				p.emit3(opIAddRI, dst, s, int32(k), e.Pos())
				p.tfree(nt)
				return true
			}
		case token.Star:
			if int32fits(iv) {
				s, nt, ok := p.regOperand(e.X)
				if !ok {
					return false
				}
				p.emit3(opIMulRI, dst, s, int32(iv), e.Pos())
				p.tfree(nt)
				return true
			}
		case token.Div, token.Mod:
			// Divisors >= 2 become a magic-number multiply (any int64
			// magnitude — the multiplier table holds the divisor). Zero
			// immediates stay on the generic path so the division-by-zero
			// error carries the interpreter's exact shape.
			if iv >= 2 {
				op := opIDivM
				if e.Op == token.Mod {
					op = opIModM
				}
				s, nt, ok := p.regOperand(e.X)
				if !ok {
					return false
				}
				p.emit3(op, dst, s, p.c.magicIdx(iv), e.Pos())
				p.tfree(nt)
				return true
			}
			if iv != 0 && int32fits(iv) {
				op := opIDivRI
				if e.Op == token.Mod {
					op = opIModRI
				}
				s, nt, ok := p.regOperand(e.X)
				if !ok {
					return false
				}
				p.emit3(op, dst, s, int32(iv), e.Pos())
				p.tfree(nt)
				return true
			}
		}
	}
	// Immediate left operand of a commutative op (literal evaluation has
	// no side effects, so reordering is unobservable).
	if iv, ok := p.intImm(e.X); ok && int32fits(iv) && (e.Op == token.Plus || e.Op == token.Star) {
		op := opIAddRI
		if e.Op == token.Star {
			op = opIMulRI
		}
		s, nt, ok := p.regOperand(e.Y)
		if !ok {
			return false
		}
		p.emit3(op, dst, s, int32(iv), e.Pos())
		p.tfree(nt)
		return true
	}
	op, ok := regRROp(e.Op)
	if !ok {
		return false
	}
	s1, n1, ok := p.regOperand(e.X)
	if !ok {
		return false
	}
	s2, n2, ok := p.regOperand(e.Y)
	if !ok {
		p.tfree(n1)
		return false
	}
	// Remainder-accumulate fusion: `acc := acc + x mod k` (the checksum
	// shape) computes the remainder into a temporary that dies in the
	// very next instruction. Fold the add into the magic-mod, preserving
	// a fused statement charge if the mod carried one.
	if n := len(p.p.code); op == opIAddRR && dst == s1 && n2 == 1 && p.barrier < n {
		last := p.p.code[n-1]
		if (last.op == opIModM || last.op == opIModM+steppedDelta) && last.a == s2 {
			p.p.code[n-1] = instr{op: last.op + (opIModAccM - opIModM), a: dst, b: last.b, c: last.c}
			p.tfree(n1 + n2)
			return true
		}
	}
	p.emit3(op, dst, s1, s2, e.Pos())
	p.tfree(n1 + n2)
	return true
}

// relOf maps a comparison token to its index in the opIBr*R{R,I} opcode
// blocks (Eq, Ne, Lt, Le, Gt, Ge).
func relOf(op token.Kind) (int32, bool) {
	switch op {
	case token.Eq:
		return 0, true
	case token.NotEq:
		return 1, true
	case token.Less:
		return 2, true
	case token.LessEq:
		return 3, true
	case token.Greater:
		return 4, true
	case token.GreatEq:
		return 5, true
	}
	return 0, false
}

// negRel[i] is the relation index of the logical negation.
var negRel = [6]int32{1, 0, 5, 4, 3, 2}

// regBr compiles a branch taken exactly when the condition's value
// equals `when`, with an unresolved target (patch the returned pc).
// Handles integer comparisons, odd(), and not-wrapping thereof.
func (p *pcomp) regBr(e ast.Expr, when bool) (int, bool) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.Not {
			return p.regBr(e.X, !when)
		}

	case *ast.BinaryExpr:
		rel, ok := relOf(e.Op)
		if !ok || !p.isIntExpr(e.X) || !p.isIntExpr(e.Y) {
			return 0, false
		}
		if !when {
			rel = negRel[rel]
		}
		if iv, ok := p.intImm(e.Y); ok && int32fits(iv) {
			s, nt, ok := p.regOperand(e.X)
			if !ok {
				return 0, false
			}
			br := p.emit3(opIBrEqRI+opcode(rel), -1, s, int32(iv), e.Pos())
			p.tfree(nt)
			return br, true
		}
		s1, n1, ok := p.regOperand(e.X)
		if !ok {
			return 0, false
		}
		s2, n2, ok := p.regOperand(e.Y)
		if !ok {
			p.tfree(n1)
			return 0, false
		}
		br := p.emit3(opIBrEqRR+opcode(rel), -1, s1, s2, e.Pos())
		p.tfree(n1 + n2)
		return br, true

	case *ast.CallExpr:
		if b := p.c.info.BuiltinAt(e.UID, e); b != nil && b.Code == sem.BuiltinOdd &&
			len(e.Args) == 1 && p.isIntExpr(e.Args[0]) {
			s, nt, ok := p.regOperand(e.Args[0])
			if !ok {
				return 0, false
			}
			op := opIBrEven
			if when {
				op = opIBrOdd
			}
			br := p.emit3(op, -1, s, 0, e.Pos())
			p.tfree(nt)
			return br, true
		}
	}
	return 0, false
}

// tryRegBr is the statement-level entry: branch-when-false with
// rollback, mirroring emitBrFalse's contract.
func (p *pcomp) tryRegBr(e ast.Expr) (int, bool) {
	snap := p.save()
	br, ok := p.regBr(e, false)
	if !ok {
		p.restore(snap)
		return 0, false
	}
	return br, true
}

// tryRegWhile rotates a while loop whose condition lowers to exactly
// one compare-branch over in-place operands: the entry test fuses with
// the statement's opStep, and the back edge re-evaluates the condition
// itself — branching to the body when it still holds — so a steady
// iteration pays one conditional branch instead of a test plus an
// unconditional jump back to it. The single-instruction restriction
// keeps re-emission sound: a condition that materializes temporaries
// would duplicate that code, and one containing calls would double
// their observable effects (fuel, depth, call metrics). Fuel accounting
// is unchanged — the condition itself never charged per iteration, and
// a trailing empty-statement opStep absorbed by either branch keeps its
// per-execution charge and position.
func (p *pcomp) tryRegWhile(s *ast.WhileStmt) bool {
	snap := p.save()
	br, ok := p.regBr(s.Cond, false)
	if !ok || br > snap.ncode || br+1 != len(p.p.code) {
		p.restore(snap)
		return false
	}
	body := p.here()
	p.compileStmt(s.Body)
	back, ok := p.regBr(s.Cond, true)
	if !ok {
		// The same condition lowered a moment ago; it cannot fail now.
		panic("vm: while condition failed to re-lower")
	}
	p.patch(back, body)
	p.patch(br, p.here())
	return true
}

// tryRegAssign lowers `v := intexpr` for a register-qualified v.
func (p *pcomp) tryRegAssign(s *ast.AssignStmt) bool {
	id, ok := s.Lhs.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := p.c.info.UseOf(id).(*sem.VarSym)
	if !ok {
		return false
	}
	dst, ok := p.regOf[v]
	if !ok {
		return false
	}
	snap := p.save()
	if !p.regExprTo(s.Rhs, dst) {
		p.restore(snap)
		return false
	}
	return true
}

const (
	// regCallPush as regCall's dst requests the result on the operand
	// stack instead of a register.
	regCallPush = -2
	// callPushRes is opCallR's c operand for that disposition.
	callPushRes = int32(-1)
)

// regCall emits a register-to-register fastcall: arguments materialize
// in consecutive temporaries that become the callee's register window
// in place (parameter i of the callee IS caller register argBase+i).
// The result disposition rides in the instruction's c operand and is
// applied by opRet when the callee returns: 0 discards the result,
// k+1 copies it into caller register k, callPushRes pushes it onto the
// operand stack. On false the caller restores its snapshot
// (temporaries and any partial code roll back).
func (p *pcomp) regCall(target *sem.Routine, args []ast.Expr, dst int32, pos token.Pos) bool {
	if !p.c.fastSet[target] || len(args) != len(target.Params) {
		return false
	}
	idx, ok := p.c.procIdx[target]
	if !ok {
		return false
	}
	argBase := p.nvarRegs + p.rdepth
	n := int32(len(args))
	for _, a := range args {
		t := p.talloc()
		if !p.regExprTo(a, t) {
			return false
		}
	}
	res := int32(0)
	if target.Result != nil {
		if dst >= 0 {
			res = dst + 1
		} else if dst == regCallPush {
			res = callPushRes
		}
	}
	callPc := p.emit3(opCallR, idx, argBase, res, pos)
	// Argument-add fusion: a one-argument call whose argument just
	// materialized as an unstepped add-immediate (`f(x - 1)`, the
	// recursion shape) and whose result lands right below the argument
	// window folds into one instruction. The add cannot fault and the
	// fused slot keeps the call position, so depth-exhaustion errors
	// still point at the call; a stepped add keeps its own slot (its
	// statement position must survive for fuel errors).
	if res == argBase && n == 1 && p.barrier < callPc && argBase < 1<<14 {
		if prev := p.p.code[callPc-1]; (prev.op == opIAddRI || prev.op == opIAddRI+steppedDelta) &&
			prev.a == argBase && prev.c >= -(1<<15) && prev.c < 1<<15 {
			// A stepped add carried its statement's fuel charge: the fused
			// opCallRIS keeps charging it, with the statement position in
			// the side table (the main table keeps the call position for
			// depth errors).
			op, stmtPos := opCallRI, token.Pos{}
			if prev.op != opIAddRI {
				op, stmtPos = opCallRIS, p.p.pos[callPc-1]
			}
			p.pop(2)
			fusedPc := len(p.p.code)
			p.p.code = append(p.p.code, instr{
				op: op, a: idx, b: prev.b,
				c: argBase<<16 | int32(uint32(uint16(prev.c))),
			})
			p.p.pos = append(p.p.pos, pos)
			if op == opCallRIS {
				if p.p.pos2 == nil {
					p.p.pos2 = make(map[int]token.Pos)
				}
				p.p.pos2[fusedPc] = stmtPos
			}
		}
	}
	if res == callPushRes {
		p.depth++
		if p.depth > p.p.maxStack {
			p.p.maxStack = p.depth
		}
	}
	p.tfree(n)
	return true
}

// tryRegCallStmt lowers a procedure-statement call to a fastcall
// routine (result, if any, simply ignored in its register).
func (p *pcomp) tryRegCallStmt(s *ast.CallStmt) bool {
	if p.c.info.BuiltinAt(s.UID, s) != nil {
		return false
	}
	target := p.c.info.CallAt(s.UID, s)
	if target == nil {
		return false
	}
	snap := p.save()
	if !p.regCall(target, s.Args, -1, s.Pos()) {
		p.restore(snap)
		return false
	}
	return true
}

// tryRegCallPush calls a fastcall routine from stack-expression context
// with register-computed arguments, pushing the result (if any) onto
// the operand stack on return.
func (p *pcomp) tryRegCallPush(target *sem.Routine, args []ast.Expr, pos token.Pos) bool {
	snap := p.save()
	if !p.regCall(target, args, regCallPush, pos) {
		p.restore(snap)
		return false
	}
	return true
}

// compileCallF is the stack→fastcall bridge: arguments evaluate on the
// operand stack (any expression shape), the call pops them into a fresh
// register window.
func (p *pcomp) compileCallF(target *sem.Routine, args []ast.Expr, pos token.Pos) {
	p.bailFast()
	idx, ok := p.c.procIdx[target]
	if !ok {
		p.c.unsupported("call to unknown routine %s", target.Name)
	}
	for _, a := range args {
		p.compileExpr(a)
	}
	delta := -len(args)
	if target.Result != nil {
		delta++
	}
	p.emit(opCallF, idx, 0, pos, delta)
}

// tryRegFor lowers a for loop whose control variable is register-
// qualified and whose bounds are register-computable. The hidden
// counter and limit live in temporaries; the control variable is
// stored before the first check and at each loop-head, exactly the
// stack form's store points, so its value after zero-trip, normal exit
// and body writes matches the interpreter.
func (p *pcomp) tryRegFor(s *ast.ForStmt, v *sem.VarSym) bool {
	vr, ok := p.regOf[v]
	if !ok {
		return false
	}
	snap := p.save()
	ti := p.talloc()
	tl := p.talloc()
	if !p.regExprTo(s.From, ti) || !p.regExprTo(s.Limit, tl) {
		p.restore(snap)
		return false
	}
	p.emit3(opIMovRR, vr, ti, 0, s.Pos())
	exitOp, loopOp := opIBrGtRR, opForLoopR
	if s.Down {
		exitOp, loopOp = opIBrLtRR, opForLoopRD
	}
	br := p.emit3(exitOp, -1, ti, tl, s.Pos())
	body := p.here()
	p.compileStmt(s.Body)
	// Fused back-edge: advance the counter, test against the limit one
	// register up, store the control variable and jump — the stack
	// form's incr/check/store trio in one dispatch. The entry check
	// above covers the first iteration (the control variable is already
	// stored), so the loop body is entered with identical state either
	// way.
	lp := p.emit3(loopOp, int32(body), ti, vr, s.Pos())
	// Forward fusion: when the body opens with a plain fuel charge, the
	// back-edge jumps past it and charges on continue itself (the
	// charge-on-continue variant), carrying the body statement's
	// position for the fuel error. The entry path still runs the
	// body's own opStep, so every iteration charges exactly once.
	if p.p.code[lp].op == loopOp && p.p.code[body].op == opStep {
		sOp := opForLoopRS
		if loopOp == opForLoopRD {
			sOp = opForLoopRDS
		}
		p.p.code[lp] = instr{op: sOp, a: int32(body + 1), b: ti, c: vr}
		p.p.pos[lp] = p.p.pos[body]
	}
	p.patch(br, p.here())
	p.tfree(2)
	return true
}
