// Package vm executes sem-analyzed Pascal programs on a flat bytecode
// machine instead of walking the AST.
//
// The compiler (compile.go) lowers each routine body to a dense
// instruction stream over the interpreter's 32-byte tagged
// interp.Value: slot-addressed locals reuse the layout pass
// (sem.FrameLayout), scalar literals and named constants live in a
// shared constant pool, and binary operators whose operand types are
// statically integer get dedicated fast-path opcodes (plus fused
// compare-and-branch and increment forms from a peephole pass). The VM
// (this file) is a classic switch-dispatch loop over a shared operand
// stack, with activation frames recycled through a free list so
// steady-state calls allocate nothing.
//
// On top of the stack tier sits an unboxed integer register tier
// (regcomp.go): an escape analysis (analyze.go) finds integer scalars
// that are only ever read and written directly by their own routine and
// assigns them int64 registers in a per-activation window on a shared
// register stack. Statements whose every operand lives in registers
// lower to three-address opcodes (opIAddRR, opIBrLtRI, ...) that touch
// no tagged values at all; the window is loaded from the frame cells at
// activation entry and flushed back on every exit (success and error),
// so cell-level observers (Globals, result slots, error-state diffing)
// see exactly the interpreter's values. Routines whose entire
// activation fits in registers — by-value integer parameters, integer
// or absent result, integer locals, no escapes, no outer access —
// additionally run frameless ("fastcall", opCallR): no vframe, no
// tagged stores, just a fresh register window above the caller's.
//
// Semantics are the interpreter's, bit for bit: fuel is charged exactly
// once per statement entry (opStep mirrors Interp.execStmt), the call
// depth budget is checked at call sites (opCall, opCallR, opCallF
// alike), and both exhaustions produce the same messages with
// interp.ErrFuelExhausted / interp.ErrDepthExhausted as their Cause, so
// campaign classification and gadt-serve's 422 mapping behave
// identically on either backend. Error call stacks come from an
// explicit activation chain (fastcall activations have no frame to
// walk) with the interpreter's truncation format. Runtime fault
// messages (division by zero, index bounds, kind mismatches, read
// failures) reproduce the interpreter's formatting verbatim; only
// source positions may differ on a few impossible-for-sem-valid-
// programs paths, and the differential harness strips positions before
// comparing.
//
// The VM is untraced by design: it has no event sink, no location
// bookkeeping and no call snapshots. Traced runs (execution-tree
// construction, slicing) stay on the interpreter; Compile rejects the
// few constructs whose dynamic semantics it cannot reproduce exactly
// (non-local gotos, gotos into structured statements) with
// ErrUnsupported so callers fall back to the interpreter.
package vm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gadt/internal/obs"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
	"gadt/internal/pascal/types"
)

// instr is one bytecode instruction. Operand meaning depends on op; a
// parallel position table on the proc (indexed by pc) carries source
// positions, consulted only on error paths. c is used only by the
// three-address register opcodes.
type instr struct {
	op      opcode
	a, b, c int32
}

// regVar links a frame slot to its register within the routine's
// window, for the entry load and the exit flush.
type regVar struct {
	slot int32
	reg  int32
}

// vproc is one compiled routine body.
type vproc struct {
	r    *sem.Routine
	code []instr
	pos  []token.Pos // parallel to code
	// pos2 carries the second source position of doubly-fused
	// instructions (opCallRIS: the statement position of the absorbed
	// opStep, while pos keeps the call position). Error paths only.
	pos2 map[int]token.Pos
	// Operand/address stack high-water marks, for preallocation.
	maxStack int
	maxAddr  int
	// Parameter split: how many value arguments arrive on the operand
	// stack and how many by-reference arguments on the address stack.
	nvals  int
	naddrs int

	// Register tier: window size (variables + expression temporaries)
	// and the slot↔register pairs loaded/flushed at activation
	// boundaries.
	nregs   int
	regVars []regVar
	// Fastcall (frameless) routines only: parameter count (= registers
	// 0..nparams-1, filled by the caller), the end of the
	// zero-initialized region (result + locals), and the result
	// register (-1 when none).
	fast    bool
	nparams int
	nzero   int
	resReg  int32

	// entry is the first executed pc (1 when entryFuse folded the
	// body-entry opStep into the first statement, else 0).
	entry int
}

// Program is a compiled program: every routine of one sem.Info lowered
// to bytecode plus the shared pools. A Program is immutable after
// Compile and safe for concurrent VMs.
type Program struct {
	info    *sem.Info
	consts  []interp.Value
	iconsts []int64    // register-tier constants outside the imm32 range
	magics  []magicDiv // interned constant-division multipliers
	arrs    []*types.Array
	fields  []string
	procs   []*vproc
	main    *vproc
}

// Info returns the analysis the program was compiled from.
func (p *Program) Info() *sem.Info { return p.info }

// vcell is one variable cell. By-reference parameters alias the
// caller's cell; partial (array-element / record-field) reference
// arguments get a forwarding cell with a deferred writeback, exactly
// like the interpreter.
type vcell struct {
	val interp.Value
}

type writeback struct {
	dst *interp.Value
	src *vcell
}

// addrRef is one entry on the address stack: a storage slot plus the
// owning whole-variable cell when the slot IS the whole variable (used
// to alias by-reference parameters; nil for interior slots).
type addrRef struct {
	ptr  *interp.Value
	cell *vcell
}

// fframe is one suspended fastcall caller: the resume state for opRet
// plus the callee result disposition — push register pushRes onto the
// caller's operand stack (-1 for none), or copy the callee result into
// caller register movDst (-1 for none).
type fframe struct {
	p       *vproc
	pc      int
	rbase   int
	pushRes int32
	movDst  int32
}

// vframe is one activation. Storage mirrors interp.frame: a dense slot
// vector whose cells live contiguously in storage, with by-reference
// parameter slots repointed at the caller's cells.
type vframe struct {
	p       *vproc
	static  *vframe
	caller  *vframe
	level   int
	slots   []*vcell
	storage []vcell
	wbs     []writeback
	next    *vframe
}

const (
	defaultMaxSteps = 5_000_000
	defaultMaxDepth = 10_000
)

// VM executes one compiled program. A VM is single-use: construct with
// New, call Run once, then read Globals/Steps.
type VM struct {
	prog *Program

	in  *bufio.Reader
	out io.Writer

	steps    int
	maxSteps int
	depth    int
	maxDepth int
	depthMax int
	calls    int64

	stack []interp.Value
	addrs []addrRef

	// Register stack: every activation's window is iregs[rb:rb+nregs),
	// itop is the first free register. Grown on demand; windows are
	// re-sliced after any call that may have grown it.
	iregs []int64
	itop  int

	// chain is the live activation chain (innermost last), used to build
	// error call stacks: fastcall activations have no frame to walk.
	chain []*vproc

	// fstack holds suspended fastcall callers: fastcall activations run
	// inside their caller's dispatch loop (opCallR/opCallF push, opRet
	// pops), so a Pascal call costs no Go call. run unwinds any frames
	// its loop invocation pushed when an error propagates.
	fstack []fframe

	mainFrame *vframe
	free      *vframe

	wbuf []byte // reusable write/writeln line buffer

	mStatements *obs.Counter
	mCalls      *obs.Counter
	mDepthMax   *obs.Gauge
}

// New prepares a VM for one run of a compiled program. The
// interpreter's Config is reused for the budgets and I/O; cfg.Sink is
// ignored (the VM is untraced — route traced runs to the interpreter).
func New(p *Program, cfg interp.Config) *VM {
	m := &VM{prog: p, out: cfg.Output}
	if cfg.Input != nil {
		m.in = bufio.NewReader(cfg.Input)
	}
	if m.out == nil {
		m.out = io.Discard
	}
	m.maxSteps = cfg.MaxSteps
	if m.maxSteps <= 0 {
		m.maxSteps = defaultMaxSteps
	}
	m.maxDepth = cfg.MaxDepth
	if m.maxDepth <= 0 {
		m.maxDepth = defaultMaxDepth
	}
	if reg := cfg.Metrics; reg != nil {
		m.mStatements = reg.Counter("vm.statements")
		m.mCalls = reg.Counter("vm.calls")
		m.mDepthMax = reg.Gauge("vm.depth.max")
	}
	return m
}

func (m *VM) recordMetrics() {
	if m.mStatements == nil {
		return
	}
	m.mStatements.Add(int64(m.steps))
	m.mCalls.Add(m.calls)
	m.mDepthMax.SetMax(int64(m.depthMax))
}

// Run executes the program block to completion or error.
func (m *VM) Run() error {
	defer m.recordMetrics()
	// Size the fastcall and register stacks up front so the hot paths
	// never re-grow them mid-run (append's capacity check still runs,
	// but the copy never happens for typical depths).
	if cap(m.fstack) == 0 {
		m.fstack = make([]fframe, 0, 256)
	}
	if cap(m.iregs) == 0 {
		m.iregs = make([]int64, 4096)
	}
	main := m.prog.main
	mf := m.newFrame(main, nil, nil)
	m.mainFrame = mf
	for _, v := range main.r.Frame.Vars {
		mf.storage[v.Slot].val = interp.ZeroValue(v.Type)
	}
	m.calls++
	return m.exec(mf, 0, 0)
}

// Steps reports the number of statements executed so far.
func (m *VM) Steps() int { return m.steps }

// Globals snapshots the program-level variables after a run, in
// declaration order, mirroring Interp.Globals.
func (m *VM) Globals() []interp.Binding {
	f := m.mainFrame
	if f == nil {
		return nil
	}
	var out []interp.Binding
	for _, v := range m.prog.info.Main.Locals {
		if v.Slot >= len(f.slots) {
			continue
		}
		c := f.slots[v.Slot]
		out = append(out, interp.Binding{Name: v.Name, Value: interp.CopyValue(c.val), Sym: v})
	}
	return out
}

// ---------------------------------------------------------------------------
// Frames

func (m *VM) newFrame(p *vproc, static, caller *vframe) *vframe {
	n := len(p.r.Frame.Vars)
	f := m.free
	if f != nil {
		m.free = f.next
		f.next = nil
	} else {
		f = &vframe{}
	}
	f.p, f.static, f.caller, f.level = p, static, caller, p.r.Level
	if cap(f.storage) < n {
		f.storage = make([]vcell, n)
		f.slots = make([]*vcell, n)
	} else {
		f.storage = f.storage[:n]
		f.slots = f.slots[:n]
	}
	for i := 0; i < n; i++ {
		f.slots[i] = &f.storage[i]
	}
	f.wbs = f.wbs[:0]
	return f
}

func (m *VM) freeFrame(f *vframe) {
	f.p, f.static, f.caller = nil, nil, nil
	f.next = m.free
	m.free = f
}

// runWB propagates deferred partial-slot writebacks, innermost-
// registered last, matching the interpreter's defer (LIFO) order. Runs
// on every exit path, including errors.
func (f *vframe) runWB() {
	for i := len(f.wbs) - 1; i >= 0; i-- {
		*f.wbs[i].dst = f.wbs[i].src.val
	}
}

const maxErrStack = 32

// callStack renders the live activation chain innermost-first, with the
// interpreter's truncation format past maxErrStack frames. Framed
// activations come from m.chain; fastcall activations — which pay no
// bookkeeping on the hot path — are decoded from the suspended-frame
// stack: the instruction before each saved resume pc is the call that
// entered the activation, so its a operand names the callee. Every
// suspended fastcall frame belongs to the innermost dispatch loop
// (framed opcodes only execute with no fastcall frames outstanding),
// so the fast segment always sits above the framed chain.
func (m *VM) callStack() []string {
	nc := len(m.chain)
	n := nc + len(m.fstack)
	if n == 0 {
		return nil
	}
	stack := make([]string, 0, maxErrStack)
	for i := n - 1; i >= 0; i-- {
		if len(stack) == maxErrStack {
			stack = append(stack, fmt.Sprintf("... (%d more frames)", i+1))
			break
		}
		if i >= nc {
			fr := m.fstack[i-nc]
			call := fr.p.code[fr.pc-1]
			stack = append(stack, m.prog.procs[call.a].r.Name)
		} else {
			stack = append(stack, m.chain[i].r.Name)
		}
	}
	return stack
}

func (m *VM) errf(pos token.Pos, format string, args ...any) error {
	return &interp.RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...), Stack: m.callStack()}
}

func (m *VM) ensure(vals, ads int) {
	if vals > len(m.stack) {
		n := 2 * len(m.stack)
		if n < vals {
			n = vals
		}
		if n < 64 {
			n = 64
		}
		ns := make([]interp.Value, n)
		copy(ns, m.stack)
		m.stack = ns
	}
	if ads > len(m.addrs) {
		n := 2 * len(m.addrs)
		if n < ads {
			n = ads
		}
		if n < 16 {
			n = 16
		}
		na := make([]addrRef, n)
		copy(na, m.addrs)
		m.addrs = na
	}
}

func (m *VM) growIRegs(need int) {
	n := 2 * len(m.iregs)
	if n < need {
		n = need
	}
	if n < 128 {
		n = 128
	}
	ns := make([]int64, n)
	copy(ns, m.iregs)
	m.iregs = ns
}

// ---------------------------------------------------------------------------
// Execution

// exec runs one framed activation. base/abase are the frame's operand
// and address stack bases; argument passing happens in the caller's
// region directly below base. One Go frame per Pascal activation.
//
// Register variables are loaded from their cells at entry and flushed
// back on every exit — including errors, so Globals and result slots
// always reflect the values the interpreter would have stored.
func (m *VM) exec(f *vframe, base, abase int) error {
	p := f.p
	m.ensure(base+p.maxStack, abase+p.maxAddr)
	rb := m.itop
	if p.nregs > 0 {
		m.itop = rb + p.nregs
		if m.itop > len(m.iregs) {
			m.growIRegs(m.itop)
		}
		regs := m.iregs[rb:]
		for _, rv := range p.regVars {
			if iv, ok := f.slots[rv.slot].val.AsInt(); ok {
				regs[rv.reg] = iv
			} else {
				regs[rv.reg] = 0
			}
		}
	}
	m.chain = append(m.chain, p)
	err := m.run(f, p, base, abase, rb)
	m.chain = m.chain[:len(m.chain)-1]
	if p.nregs > 0 {
		regs := m.iregs[rb:]
		for _, rv := range p.regVars {
			f.slots[rv.slot].val = interp.IntV(regs[rv.reg])
		}
		m.itop = rb
	}
	return err
}

// run executes one framed activation's dispatch loop and, on error,
// unwinds whatever fastcall frames that loop invocation had pushed
// (the error's call stack already rendered them — errf decodes live
// fastcall activations straight from m.fstack).
func (m *VM) run(f *vframe, p *vproc, base, abase, rbase int) error {
	mark := len(m.fstack)
	err := m.loop(f, p, base, abase, rbase, mark)
	if err != nil && len(m.fstack) > mark {
		m.depth -= len(m.fstack) - mark
		m.fstack = m.fstack[:mark]
	}
	return err
}

// fuelErr builds the step-budget-exhausted error the interpreter
// produces, anchored at the charging statement's position.
func (m *VM) fuelErr(pos token.Pos) error {
	err := m.errf(pos, "step budget exhausted (%d statements); possible infinite loop", m.maxSteps)
	err.(*interp.RuntimeError).Cause = interp.ErrFuelExhausted
	return err
}

// loop is the dispatch loop for one framed activation plus every
// fastcall activation it (transitively) enters: opCallR/opCallF
// suspend the caller on m.fstack and switch p/code/rbase in place, so
// a fastcall costs no Go call frame. Fastcall code touches only the
// register window at rbase — never the operand stack, the address
// stack or f — so sp/ap/stk/ads stay valid across the switch.
func (m *VM) loop(f *vframe, p *vproc, base, abase, rbase, mark int) error {
	stk, ads := m.stack, m.addrs
	regs := m.iregs[rbase:]
	code := p.code
	consts := m.prog.consts
	magics := m.prog.magics
	procs := m.prog.procs
	maxSteps := m.maxSteps
	sp, ap := base, abase
	pc := p.entry
	for {
		ins := code[pc]
		pc++
		switch ins.op {
		case opStep:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}

		case opConst:
			stk[sp] = consts[ins.a]
			sp++

		case opLoadLocal:
			stk[sp] = f.slots[ins.a].val
			sp++

		case opLoadOuter:
			g := f
			for d := ins.b; d > 0; d-- {
				g = g.static
			}
			stk[sp] = g.slots[ins.a].val
			sp++

		case opStoreLocal:
			sp--
			if err := m.storeCell(f.slots[ins.a], stk[sp], p.pos[pc-1]); err != nil {
				return err
			}

		case opStoreOuter:
			g := f
			for d := ins.b; d > 0; d-- {
				g = g.static
			}
			sp--
			if err := m.storeCell(g.slots[ins.a], stk[sp], p.pos[pc-1]); err != nil {
				return err
			}

		case opIncLocal:
			c := f.slots[ins.a]
			if iv, ok := c.val.AsInt(); ok {
				c.val = interp.IntV(iv + int64(ins.b))
			} else {
				// Static type said integer but the cell holds something
				// else: recompute through the generic path so behavior
				// (including the error text) matches the interpreter.
				op, rhs := token.Plus, int64(ins.b)
				if rhs < 0 {
					op, rhs = token.Minus, -rhs
				}
				v, err := m.binary(p.pos[pc-1], op, c.val, interp.IntV(rhs))
				if err != nil {
					return err
				}
				if err := m.storeCell(c, v, p.pos[pc-1]); err != nil {
					return err
				}
			}

		case opAddrVar:
			g := f
			for d := ins.b; d > 0; d-- {
				g = g.static
			}
			c := g.slots[ins.a]
			ads[ap] = addrRef{ptr: &c.val, cell: c}
			ap++

		case opAddrIndex:
			sp--
			iv, ok := stk[sp].AsInt()
			if !ok {
				return m.errf(p.pos[pc-1], "integer expected, have %s", interp.FormatValue(stk[sp]))
			}
			e := &ads[ap-1]
			arr, ok := e.ptr.AsArray()
			if !ok {
				return m.errf(p.pos[pc-1], "indexing non-array value")
			}
			elem, err := arr.At(iv)
			if err != nil {
				return m.errf(p.pos[pc-1], "%v", err)
			}
			e.ptr, e.cell = elem, nil

		case opAddrField:
			e := &ads[ap-1]
			rec, ok := e.ptr.AsRecord()
			if !ok {
				return m.errf(p.pos[pc-1], "selecting field of non-record value")
			}
			fa, err := rec.FieldAddr(m.prog.fields[ins.a])
			if err != nil {
				return m.errf(p.pos[pc-1], "%v", err)
			}
			e.ptr, e.cell = fa, nil

		case opLoadAddr:
			ap--
			stk[sp] = *ads[ap].ptr
			sp++

		case opStoreAddr:
			ap--
			sp--
			stored, err := m.prepareStore(ads[ap].ptr, stk[sp], p.pos[pc-1])
			if err != nil {
				return err
			}
			*ads[ap].ptr = stored

		case opCopyV:
			stk[sp-1] = interp.CopyValue(stk[sp-1])

		case opJump:
			pc = int(ins.a)

		case opBrFalse:
			sp--
			b, ok := stk[sp].AsBool()
			if !ok {
				return m.errf(p.pos[pc-1], "boolean expected, have %s", interp.FormatValue(stk[sp]))
			}
			if !b {
				pc = int(ins.a)
			}

		case opBrCmpIF:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			sp -= 2
			if xok && yok {
				var r bool
				switch opcode(ins.b) {
				case opEqI:
					r = xi == yi
				case opNeI:
					r = xi != yi
				case opLtI:
					r = xi < yi
				case opLeI:
					r = xi <= yi
				case opGtI:
					r = xi > yi
				default:
					r = xi >= yi
				}
				if !r {
					pc = int(ins.a)
				}
			} else {
				v, err := m.binary(p.pos[pc-1], cmpToken(opcode(ins.b)), stk[sp], stk[sp+1])
				if err != nil {
					return err
				}
				b, ok := v.AsBool()
				if !ok {
					return m.errf(p.pos[pc-1], "boolean expected, have %s", interp.FormatValue(v))
				}
				if !b {
					pc = int(ins.a)
				}
			}

		case opPop:
			sp--

		case opPopTo:
			sp = base + int(ins.a)

		case opSwap:
			stk[sp-1], stk[sp-2] = stk[sp-2], stk[sp-1]

		case opAddI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.IntV(xi + yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.Plus, stk, &sp); err != nil {
				return err
			}

		case opSubI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.IntV(xi - yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.Minus, stk, &sp); err != nil {
				return err
			}

		case opMulI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.IntV(xi * yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.Star, stk, &sp); err != nil {
				return err
			}

		case opDivI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				if yi == 0 {
					return m.errf(p.pos[pc-1], "division by zero")
				}
				sp--
				stk[sp-1] = interp.IntV(xi / yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.Div, stk, &sp); err != nil {
				return err
			}

		case opModI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				if yi == 0 {
					return m.errf(p.pos[pc-1], "division by zero")
				}
				sp--
				stk[sp-1] = interp.IntV(xi % yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.Mod, stk, &sp); err != nil {
				return err
			}

		case opSlashI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				if yi == 0 {
					return m.errf(p.pos[pc-1], "division by zero")
				}
				sp--
				stk[sp-1] = interp.RealV(float64(xi) / float64(yi))
			} else if err := m.slowBinary(p.pos[pc-1], token.Slash, stk, &sp); err != nil {
				return err
			}

		case opEqI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.BoolV(xi == yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.Eq, stk, &sp); err != nil {
				return err
			}

		case opNeI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.BoolV(xi != yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.NotEq, stk, &sp); err != nil {
				return err
			}

		case opLtI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.BoolV(xi < yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.Less, stk, &sp); err != nil {
				return err
			}

		case opLeI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.BoolV(xi <= yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.LessEq, stk, &sp); err != nil {
				return err
			}

		case opGtI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.BoolV(xi > yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.Greater, stk, &sp); err != nil {
				return err
			}

		case opGeI:
			xi, xok := stk[sp-2].AsInt()
			yi, yok := stk[sp-1].AsInt()
			if xok && yok {
				sp--
				stk[sp-1] = interp.BoolV(xi >= yi)
			} else if err := m.slowBinary(p.pos[pc-1], token.GreatEq, stk, &sp); err != nil {
				return err
			}

		case opBinary:
			v, err := m.binary(p.pos[pc-1], token.Kind(ins.a), stk[sp-2], stk[sp-1])
			if err != nil {
				return err
			}
			sp--
			stk[sp-1] = v

		case opNeg:
			v := stk[sp-1]
			if iv, ok := v.AsInt(); ok {
				stk[sp-1] = interp.IntV(-iv)
			} else if rv, ok := v.AsReal(); ok {
				stk[sp-1] = interp.RealV(-rv)
			} else {
				return m.errf(p.pos[pc-1], "invalid unary operand %s", interp.FormatValue(v))
			}

		case opNot:
			if b, ok := stk[sp-1].AsBool(); ok {
				stk[sp-1] = interp.BoolV(!b)
			} else {
				return m.errf(p.pos[pc-1], "invalid unary operand %s", interp.FormatValue(stk[sp-1]))
			}

		case opIntChk:
			if stk[sp-1].Kind() != interp.KindInt {
				return m.errf(p.pos[pc-1], "integer expected, have %s", interp.FormatValue(stk[sp-1]))
			}

		case opForCheck:
			iv, _ := stk[sp-1].AsInt()
			lim, _ := stk[sp-2].AsInt()
			down := ins.b != 0
			if down && iv < lim || !down && iv > lim {
				sp -= 2
				pc = int(ins.a)
			}

		case opForStoreLocal:
			f.slots[ins.a].val = stk[sp-1]

		case opForStoreOuter:
			g := f
			for d := ins.b; d > 0; d-- {
				g = g.static
			}
			g.slots[ins.a].val = stk[sp-1]

		case opForStoreR:
			iv, _ := stk[sp-1].AsInt()
			regs[ins.a] = iv

		case opForIncr:
			iv, _ := stk[sp-1].AsInt()
			if ins.b != 0 {
				iv--
			} else {
				iv++
			}
			stk[sp-1] = interp.IntV(iv)

		case opCaseBr:
			sp--
			if interp.ValuesEqual(stk[sp-1], stk[sp]) {
				sp--
				pc = int(ins.a)
			}

		case opCall:
			t := procs[ins.a]
			if m.depth >= m.maxDepth {
				err := m.errf(p.pos[pc-1], "call depth budget exhausted (%d); runaway recursion?", m.maxDepth)
				err.(*interp.RuntimeError).Cause = interp.ErrDepthExhausted
				return err
			}
			st := f
			for d := ins.b; d > 0; d-- {
				st = st.static
			}
			nf := m.newFrame(t, st, f)
			m.calls++
			sp -= t.nvals
			ap -= t.naddrs
			if err := m.bind(nf, t, sp, ap, p.pos[pc-1]); err != nil {
				nf.runWB()
				m.freeFrame(nf)
				return err
			}
			m.depth++
			if m.depth > m.depthMax {
				m.depthMax = m.depth
			}
			err := m.exec(nf, sp, ap)
			m.depth--
			nf.runWB()
			var res interp.Value
			hasRes := t.r.Result != nil
			if hasRes {
				res = nf.slots[t.r.Result.Slot].val
			}
			m.freeFrame(nf)
			if err != nil {
				return err
			}
			// The callee may have grown the shared stacks.
			stk, ads = m.stack, m.addrs
			regs = m.iregs[rbase:]
			if hasRes {
				stk[sp] = res
				sp++
			}

		case opPushR:
			stk[sp] = interp.IntV(regs[ins.a])
			sp++

		case opPopR:
			sp--
			iv, ok := stk[sp].AsInt()
			if !ok {
				return m.errf(p.pos[pc-1], "integer expected, have %s", interp.FormatValue(stk[sp]))
			}
			regs[ins.a] = iv

		case opIMovRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIMovRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIMovRR:
			regs[ins.a] = regs[ins.b]

		case opIMovRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIMovRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIMovRI:
			regs[ins.a] = int64(ins.b)

		case opIMovRK + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIMovRK + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIMovRK:
			regs[ins.a] = m.prog.iconsts[ins.b]

		case opIAddRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIAddRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIAddRR:
			regs[ins.a] = regs[ins.b] + regs[ins.c]

		case opIAddRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIAddRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIAddRI:
			regs[ins.a] = regs[ins.b] + int64(ins.c)

		case opISubRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opISubRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opISubRR:
			regs[ins.a] = regs[ins.b] - regs[ins.c]

		case opIMulRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIMulRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIMulRR:
			regs[ins.a] = regs[ins.b] * regs[ins.c]

		case opIMulRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIMulRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIMulRI:
			regs[ins.a] = regs[ins.b] * int64(ins.c)

		case opIDivRR:
			d := regs[ins.c]
			if d == 0 {
				return m.errf(p.pos[pc-1], "division by zero")
			}
			regs[ins.a] = regs[ins.b] / d

		case opIDivRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIDivRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIDivRI:
			// The compiler never emits a zero immediate divisor.
			regs[ins.a] = regs[ins.b] / int64(ins.c)

		case opIModRR:
			d := regs[ins.c]
			if d == 0 {
				return m.errf(p.pos[pc-1], "division by zero")
			}
			regs[ins.a] = regs[ins.b] % d

		case opIModRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIModRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIModRI:
			regs[ins.a] = regs[ins.b] % int64(ins.c)

		case opIDivM + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIDivM + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIDivM:
			regs[ins.a] = magics[ins.c].quot(regs[ins.b])

		case opIModM + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIModM + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIModM:
			mg := magics[ins.c]
			n := regs[ins.b]
			regs[ins.a] = n - mg.quot(n)*mg.d

		case opIModAccM + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIModAccM + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIModAccM:
			mg := magics[ins.c]
			n := regs[ins.b]
			regs[ins.a] += n - mg.quot(n)*mg.d

		case opINegR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opINegR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opINegR:
			regs[ins.a] = -regs[ins.b]

		case opIAbsR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIAbsR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIAbsR:
			v := regs[ins.b]
			if v < 0 {
				v = -v
			}
			regs[ins.a] = v

		case opIBrEqRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrEqRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrEqRR:
			if regs[ins.b] == regs[ins.c] {
				pc = int(ins.a)
			}

		case opIBrNeRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrNeRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrNeRR:
			if regs[ins.b] != regs[ins.c] {
				pc = int(ins.a)
			}

		case opIBrLtRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrLtRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrLtRR:
			if regs[ins.b] < regs[ins.c] {
				pc = int(ins.a)
			}

		case opIBrLeRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrLeRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrLeRR:
			if regs[ins.b] <= regs[ins.c] {
				pc = int(ins.a)
			}

		case opIBrGtRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrGtRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrGtRR:
			if regs[ins.b] > regs[ins.c] {
				pc = int(ins.a)
			}

		case opIBrGeRR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrGeRR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrGeRR:
			if regs[ins.b] >= regs[ins.c] {
				pc = int(ins.a)
			}

		case opIBrEqRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrEqRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrEqRI:
			if regs[ins.b] == int64(ins.c) {
				pc = int(ins.a)
			}

		case opIBrNeRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrNeRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrNeRI:
			if regs[ins.b] != int64(ins.c) {
				pc = int(ins.a)
			}

		case opIBrLtRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrLtRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrLtRI:
			if regs[ins.b] < int64(ins.c) {
				pc = int(ins.a)
			}

		case opIBrLeRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrLeRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrLeRI:
			if regs[ins.b] <= int64(ins.c) {
				pc = int(ins.a)
			}

		case opIBrGtRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrGtRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrGtRI:
			if regs[ins.b] > int64(ins.c) {
				pc = int(ins.a)
			}

		case opIBrGeRI + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrGeRI + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrGeRI:
			if regs[ins.b] >= int64(ins.c) {
				pc = int(ins.a)
			}

		case opIBrOdd + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrOdd + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrOdd:
			if regs[ins.b]%2 != 0 {
				pc = int(ins.a)
			}

		case opIBrEven + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opIBrEven + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opIBrEven:
			if regs[ins.b]%2 == 0 {
				pc = int(ins.a)
			}

		case opForLoopR + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opForLoopR + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opForLoopR:
			ti := regs[ins.b] + 1
			regs[ins.b] = ti
			if ti <= regs[ins.b+1] {
				regs[ins.c] = ti
				pc = int(ins.a)
			}

		case opForLoopRD + stepped2Delta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opForLoopRD + steppedDelta:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opForLoopRD:
			ti := regs[ins.b] - 1
			regs[ins.b] = ti
			if ti >= regs[ins.b+1] {
				regs[ins.c] = ti
				pc = int(ins.a)
			}

		case opForLoopRS:
			// Charge-on-continue back-edge: the body's entry fuel charge
			// fused into the loop instruction, paid only when another
			// iteration actually starts (the exiting pass charges
			// nothing, exactly like falling out of the loop head).
			ti := regs[ins.b] + 1
			regs[ins.b] = ti
			if ti <= regs[ins.b+1] {
				regs[ins.c] = ti
				m.steps++
				if m.steps > maxSteps {
					return m.fuelErr(p.pos[pc-1])
				}
				pc = int(ins.a)
			}

		case opForLoopRDS:
			ti := regs[ins.b] - 1
			regs[ins.b] = ti
			if ti >= regs[ins.b+1] {
				regs[ins.c] = ti
				m.steps++
				if m.steps > maxSteps {
					return m.fuelErr(p.pos[pc-1])
				}
				pc = int(ins.a)
			}

		case opCallR:
			// Register-to-register fastcall, run in this loop: suspend
			// the caller on fstack and enter the callee's code with its
			// window starting at the argument registers the caller just
			// materialized.
			t := procs[ins.a]
			if m.depth >= m.maxDepth {
				err := m.errf(p.pos[pc-1], "call depth budget exhausted (%d); runaway recursion?", m.maxDepth)
				err.(*interp.RuntimeError).Cause = interp.ErrDepthExhausted
				return err
			}
			cb := rbase + int(ins.b)
			if need := cb + t.nregs; need > len(m.iregs) {
				m.growIRegs(need)
			}
			m.calls++
			m.depth++
			if m.depth > m.depthMax {
				m.depthMax = m.depth
			}
			pushRes, movDst := int32(-1), int32(-1)
			if ins.c > 0 {
				movDst = ins.c - 1
			} else if ins.c == callPushRes {
				pushRes = t.resReg
			}
			m.fstack = append(m.fstack, fframe{p: p, pc: pc, rbase: rbase, pushRes: pushRes, movDst: movDst})
			p, code = t, t.code
			rbase = cb
			regs = m.iregs[rbase:]
			for i := t.nparams; i < t.nzero; i++ {
				regs[i] = 0
			}
			pc = t.entry

		case opCallRIS:
			// opCallRI whose argument add carried the statement's fuel
			// charge: pay it first, reporting the statement position the
			// original opStep held (side table), then fall into the call.
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos2[pc-1])
			}
			fallthrough
		case opCallRI:
			// Fused argument add + fastcall: window reg = regs[b] + imm16,
			// callee result into the register just below the window.
			t := procs[ins.a]
			if m.depth >= m.maxDepth {
				err := m.errf(p.pos[pc-1], "call depth budget exhausted (%d); runaway recursion?", m.maxDepth)
				err.(*interp.RuntimeError).Cause = interp.ErrDepthExhausted
				return err
			}
			ab := int(uint32(ins.c) >> 16)
			cb := rbase + ab
			if need := cb + t.nregs; need > len(m.iregs) {
				m.growIRegs(need)
				regs = m.iregs[rbase:]
			}
			m.iregs[cb] = regs[ins.b] + int64(int16(uint16(ins.c)))
			m.calls++
			m.depth++
			if m.depth > m.depthMax {
				m.depthMax = m.depth
			}
			m.fstack = append(m.fstack, fframe{p: p, pc: pc, rbase: rbase, pushRes: -1, movDst: int32(ab) - 1})
			p, code = t, t.code
			rbase = cb
			regs = m.iregs[rbase:]
			for i := t.nparams; i < t.nzero; i++ {
				regs[i] = 0
			}
			pc = t.entry

		case opCallF:
			// Stack→register bridge: call a fastcall routine with
			// arguments computed on the operand stack. Runs in this loop
			// like opCallR; the suspended frame records the result
			// register to push on return. Only framed code emits opCallF,
			// so m.itop is this activation's window top and the callee
			// window sits above every live register.
			t := procs[ins.a]
			if m.depth >= m.maxDepth {
				err := m.errf(p.pos[pc-1], "call depth budget exhausted (%d); runaway recursion?", m.maxDepth)
				err.(*interp.RuntimeError).Cause = interp.ErrDepthExhausted
				return err
			}
			cb := m.itop
			if need := cb + t.nregs; need > len(m.iregs) {
				m.growIRegs(need)
			}
			sp -= t.nparams
			for i := 0; i < t.nparams; i++ {
				iv, ok := stk[sp+i].AsInt()
				if !ok {
					return m.errf(p.pos[pc-1], "integer expected, have %s", interp.FormatValue(stk[sp+i]))
				}
				m.iregs[cb+i] = iv
			}
			m.calls++
			m.depth++
			if m.depth > m.depthMax {
				m.depthMax = m.depth
			}
			m.fstack = append(m.fstack, fframe{p: p, pc: pc, rbase: rbase, pushRes: t.resReg, movDst: -1})
			p, code = t, t.code
			rbase = cb
			regs = m.iregs[rbase:]
			for i := t.nparams; i < t.nzero; i++ {
				regs[i] = 0
			}
			pc = t.entry

		case opWrite:
			n := int(ins.a)
			buf := m.wbuf[:0]
			for i := sp - n; i < sp; i++ {
				if i > sp-n {
					buf = append(buf, ' ')
				}
				if s, ok := stk[i].AsStr(); ok {
					buf = append(buf, s...) // no quotes on program output
				} else {
					buf = append(buf, interp.FormatValue(stk[i])...)
				}
			}
			if ins.b != 0 {
				buf = append(buf, '\n')
			}
			m.wbuf = buf
			sp -= n
			if _, err := m.out.Write(buf); err != nil {
				return m.errf(p.pos[pc-1], "write failed: %v", err)
			}

		case opReadTok:
			tok, err := m.readToken()
			if err != nil {
				return m.errf(p.pos[pc-1], "read: %v", err)
			}
			var v interp.Value
			switch ins.a {
			case readReal:
				fv, perr := strconv.ParseFloat(tok, 64)
				if perr != nil {
					return m.errf(p.pos[pc-1], "read: %q is not a real", tok)
				}
				v = interp.RealV(fv)
			case readStr:
				v = interp.StrV(tok)
			case readBool:
				switch strings.ToLower(tok) {
				case "true":
					v = interp.BoolV(true)
				case "false":
					v = interp.BoolV(false)
				default:
					return m.errf(p.pos[pc-1], "read: %q is not a boolean", tok)
				}
			default:
				n, perr := strconv.ParseInt(tok, 10, 64)
				if perr != nil {
					return m.errf(p.pos[pc-1], "read: %q is not an integer", tok)
				}
				v = interp.IntV(n)
			}
			stk[sp] = v
			sp++

		case opAbs:
			v := stk[sp-1]
			if iv, ok := v.AsInt(); ok {
				if iv < 0 {
					stk[sp-1] = interp.IntV(-iv)
				}
			} else if rv, ok := v.AsReal(); ok {
				if rv < 0 {
					stk[sp-1] = interp.RealV(-rv)
				}
			} else {
				return m.errf(p.pos[pc-1], "invalid argument to abs")
			}

		case opSqr:
			v := stk[sp-1]
			if iv, ok := v.AsInt(); ok {
				stk[sp-1] = interp.IntV(iv * iv)
			} else if rv, ok := v.AsReal(); ok {
				stk[sp-1] = interp.RealV(rv * rv)
			} else {
				return m.errf(p.pos[pc-1], "invalid argument to sqr")
			}

		case opOdd:
			if iv, ok := stk[sp-1].AsInt(); ok {
				stk[sp-1] = interp.BoolV(iv%2 != 0)
			} else {
				return m.errf(p.pos[pc-1], "invalid argument to odd")
			}

		case opTrunc:
			v := stk[sp-1]
			if _, ok := v.AsInt(); ok {
				// already integer
			} else if rv, ok := v.AsReal(); ok {
				stk[sp-1] = interp.IntV(int64(rv))
			} else {
				return m.errf(p.pos[pc-1], "invalid argument to trunc")
			}

		case opRound:
			v := stk[sp-1]
			if _, ok := v.AsInt(); ok {
				// already integer
			} else if rv, ok := v.AsReal(); ok {
				if rv >= 0 {
					stk[sp-1] = interp.IntV(int64(rv + 0.5))
				} else {
					stk[sp-1] = interp.IntV(int64(rv - 0.5))
				}
			} else {
				return m.errf(p.pos[pc-1], "invalid argument to round")
			}

		case opMakeArr:
			n := int(ins.a)
			var arr *interp.ArrayVal
			if ins.b >= 0 {
				arr = interp.NewArray(m.prog.arrs[ins.b])
			} else {
				arr = &interp.ArrayVal{Lo: 1, Hi: int64(n), Elems: make([]interp.Value, n)}
			}
			for i := 0; i < n; i++ {
				if i >= len(arr.Elems) {
					return m.errf(p.pos[pc-1], "array display longer than target array")
				}
				arr.Elems[i] = interp.CopyValue(stk[sp-n+i])
			}
			sp -= n
			stk[sp] = interp.ArrV(arr)
			sp++

		case opRet:
			goto retpath

		// Fused op-then-return forms (retFuse): the register op's
		// effect, then the shared return path, one dispatch total. The S
		// variants first pay the statement-entry fuel charge the
		// register op had absorbed.
		case opRetMovRRS:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opRetMovRR:
			regs[ins.a] = regs[ins.b]
			goto retpath

		case opRetMovRIS:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opRetMovRI:
			regs[ins.a] = int64(ins.b)
			goto retpath

		case opRetAddRRS:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opRetAddRR:
			regs[ins.a] = regs[ins.b] + regs[ins.c]
			goto retpath

		case opRetAddRIS:
			m.steps++
			if m.steps > maxSteps {
				return m.fuelErr(p.pos[pc-1])
			}
			fallthrough
		case opRetAddRI:
			regs[ins.a] = regs[ins.b] + int64(ins.c)
			goto retpath

		default:
			return m.errf(p.pos[pc-1], "vm: bad opcode %d", ins.op)
		}
		continue

	retpath:
		if len(m.fstack) == mark {
			return nil
		}
		// Fastcall return: resume the suspended caller. rbase is still
		// the callee's window while the bridge result (if any) is read
		// out.
		fr := m.fstack[len(m.fstack)-1]
		m.fstack = m.fstack[:len(m.fstack)-1]
		m.depth--
		if fr.pushRes >= 0 {
			stk[sp] = interp.IntV(m.iregs[rbase+int(fr.pushRes)])
			sp++
		}
		if fr.movDst >= 0 {
			m.iregs[fr.rbase+int(fr.movDst)] = m.iregs[rbase+int(p.resReg)]
		}
		p, pc, rbase = fr.p, fr.pc, fr.rbase
		code = p.code
		regs = m.iregs[rbase:]
	}
}

// bind populates a callee frame from the argument regions the caller
// left on the shared stacks (value args at stack[vbase:], by-reference
// args at addrs[abase:]). Mirrors Interp.call's binding loop; composite
// value arguments were already privatized by opCopyV at push time, so
// the bind itself is copy-free.
func (m *VM) bind(nf *vframe, t *vproc, vbase, abase int, pos token.Pos) error {
	stk, ads := m.stack, m.addrs
	vi, ai := vbase, abase
	for _, prm := range t.r.Params {
		if prm.Mode == ast.Value {
			av := stk[vi]
			vi++
			// Array displays adapt to the parameter's array type.
			if at, ok := prm.Type.(*types.Array); ok {
				if src, ok2 := av.AsArray(); ok2 && (src.Lo != at.Lo || src.Hi != at.Hi) {
					adapted := interp.NewArray(at)
					if len(src.Elems) > len(adapted.Elems) {
						return m.errf(pos, "array argument of %d elements does not fit %s", len(src.Elems), at)
					}
					for j, e := range src.Elems {
						adapted.Elems[j] = interp.CopyValue(e)
					}
					av = interp.ArrV(adapted)
				}
			}
			nf.slots[prm.Slot].val = av
			continue
		}
		ar := ads[ai]
		ai++
		if ar.cell != nil {
			// Whole-variable reference argument: alias the cell.
			nf.slots[prm.Slot] = ar.cell
		} else {
			// Element/field slot: forwarding cell + deferred writeback.
			b := &vcell{val: *ar.ptr}
			nf.slots[prm.Slot] = b
			nf.wbs = append(nf.wbs, writeback{dst: ar.ptr, src: b})
		}
	}
	for _, v := range t.r.Locals {
		nf.storage[v.Slot].val = interp.ZeroValue(v.Type)
	}
	if res := t.r.Result; res != nil {
		nf.slots[res.Slot].val = interp.ZeroValue(res.Type)
	}
	return nil
}

// storeCell assigns val to a whole-variable cell with the
// interpreter's scalar fast path and prepareStore fallback.
func (m *VM) storeCell(c *vcell, val interp.Value, pos token.Pos) error {
	k := val.Kind()
	if c.val.Kind() == k && k <= interp.KindStr {
		c.val = val
		return nil
	}
	stored, err := m.prepareStore(&c.val, val, pos)
	if err != nil {
		return err
	}
	c.val = stored
	return nil
}

// prepareStore mirrors Interp.prepareStore: int→real coercion, array
// display refitting, deep copies for composites.
func (m *VM) prepareStore(dst *interp.Value, val interp.Value, pos token.Pos) (interp.Value, error) {
	if dst.Kind() == interp.KindReal && val.Kind() == interp.KindInt {
		iv, _ := val.AsInt()
		return interp.RealV(float64(iv)), nil
	}
	if val.Kind() == interp.KindArray {
		if target, ok := dst.AsArray(); ok {
			src, _ := val.AsArray()
			if src.Lo != target.Lo || src.Hi != target.Hi {
				if len(src.Elems) > len(target.Elems) {
					return interp.Undef, m.errf(pos, "array value of %d elements does not fit target of %d", len(src.Elems), len(target.Elems))
				}
				fresh := &interp.ArrayVal{Lo: target.Lo, Hi: target.Hi, Elems: make([]interp.Value, len(target.Elems))}
				for i := range fresh.Elems {
					if i < len(src.Elems) {
						fresh.Elems[i] = interp.CopyValue(src.Elems[i])
					} else {
						fresh.Elems[i] = zeroLike(target.Elems[i])
					}
				}
				return interp.ArrV(fresh), nil
			}
		}
	}
	return interp.CopyValue(val), nil
}

func zeroLike(v interp.Value) interp.Value {
	switch v.Kind() {
	case interp.KindReal:
		return interp.RealV(0)
	case interp.KindBool:
		return interp.BoolV(false)
	case interp.KindStr:
		return interp.StrV("")
	case interp.KindArray, interp.KindRecord:
		return interp.CopyValue(v) // keep shape; contents already zeroed at alloc
	}
	return interp.IntV(0)
}

// slowBinary is the shared non-int fallback of the integer fast-path
// opcodes: recompute through the generic dispatcher (exactly the
// interpreter's evalBinary order) and replace the two operands with the
// result.
func (m *VM) slowBinary(pos token.Pos, op token.Kind, stk []interp.Value, sp *int) error {
	v, err := m.binary(pos, op, stk[*sp-2], stk[*sp-1])
	if err != nil {
		return err
	}
	*sp--
	stk[*sp-1] = v
	return nil
}

func cmpToken(op opcode) token.Kind {
	switch op {
	case opEqI:
		return token.Eq
	case opNeI:
		return token.NotEq
	case opLtI:
		return token.Less
	case opLeI:
		return token.LessEq
	case opGtI:
		return token.Greater
	}
	return token.GreatEq
}

func vNumeric(v interp.Value) (float64, bool) {
	if iv, ok := v.AsInt(); ok {
		return float64(iv), true
	}
	if rv, ok := v.AsReal(); ok {
		return rv, true
	}
	return 0, false
}

// binary replicates Interp.evalBinary (minus operand evaluation):
// integer fast path, boolean connectives, arithmetic with real
// promotion and string concatenation, equality via ValuesEqual,
// ordering with the same error messages.
func (m *VM) binary(pos token.Pos, op token.Kind, x, y interp.Value) (interp.Value, error) {
	xi, xint := x.AsInt()
	yi, yint := y.AsInt()
	if xint && yint {
		switch op {
		case token.Plus:
			return interp.IntV(xi + yi), nil
		case token.Minus:
			return interp.IntV(xi - yi), nil
		case token.Star:
			return interp.IntV(xi * yi), nil
		case token.Div:
			if yi == 0 {
				return interp.Undef, m.errf(pos, "division by zero")
			}
			return interp.IntV(xi / yi), nil
		case token.Mod:
			if yi == 0 {
				return interp.Undef, m.errf(pos, "division by zero")
			}
			return interp.IntV(xi % yi), nil
		case token.Slash:
			if yi == 0 {
				return interp.Undef, m.errf(pos, "division by zero")
			}
			return interp.RealV(float64(xi) / float64(yi)), nil
		case token.Eq:
			return interp.BoolV(xi == yi), nil
		case token.NotEq:
			return interp.BoolV(xi != yi), nil
		case token.Less:
			return interp.BoolV(xi < yi), nil
		case token.LessEq:
			return interp.BoolV(xi <= yi), nil
		case token.Greater:
			return interp.BoolV(xi > yi), nil
		case token.GreatEq:
			return interp.BoolV(xi >= yi), nil
		}
	}
	switch op {
	case token.And:
		if xb, ok := x.AsBool(); ok {
			if yb, ok := y.AsBool(); ok {
				return interp.BoolV(xb && yb), nil
			}
		}
	case token.Or:
		if xb, ok := x.AsBool(); ok {
			if yb, ok := y.AsBool(); ok {
				return interp.BoolV(xb || yb), nil
			}
		}
	case token.Plus, token.Minus, token.Star, token.Slash:
		return m.arith(pos, op, x, y)
	case token.Div, token.Mod:
		// int-int handled by the fast path above; anything else falls
		// through to the invalid-operands error.
	case token.Eq:
		return interp.BoolV(interp.ValuesEqual(x, y)), nil
	case token.NotEq:
		return interp.BoolV(!interp.ValuesEqual(x, y)), nil
	case token.Less, token.LessEq, token.Greater, token.GreatEq:
		return m.compare(pos, op, x, y)
	}
	return interp.Undef, m.errf(pos, "invalid operands %s %s %s", interp.FormatValue(x), op, interp.FormatValue(y))
}

func (m *VM) arith(pos token.Pos, op token.Kind, x, y interp.Value) (interp.Value, error) {
	xf, xnum := vNumeric(x)
	yf, ynum := vNumeric(y)
	if xnum && ynum {
		switch op {
		case token.Plus:
			return interp.RealV(xf + yf), nil
		case token.Minus:
			return interp.RealV(xf - yf), nil
		case token.Star:
			return interp.RealV(xf * yf), nil
		case token.Slash:
			if yf == 0 {
				return interp.Undef, m.errf(pos, "division by zero")
			}
			return interp.RealV(xf / yf), nil
		}
	}
	// String concatenation with + (common Pascal dialect extension).
	if xs, ok := x.AsStr(); ok {
		if ys, ok := y.AsStr(); ok && op == token.Plus {
			return interp.StrV(xs + ys), nil
		}
	}
	return interp.Undef, m.errf(pos, "invalid operands %s %s %s", interp.FormatValue(x), op, interp.FormatValue(y))
}

func (m *VM) compare(pos token.Pos, op token.Kind, x, y interp.Value) (interp.Value, error) {
	if xs, ok := x.AsStr(); ok {
		if ys, ok := y.AsStr(); ok {
			switch op {
			case token.Less:
				return interp.BoolV(xs < ys), nil
			case token.LessEq:
				return interp.BoolV(xs <= ys), nil
			case token.Greater:
				return interp.BoolV(xs > ys), nil
			case token.GreatEq:
				return interp.BoolV(xs >= ys), nil
			}
		}
	}
	xf, xnum := vNumeric(x)
	yf, ynum := vNumeric(y)
	if xnum && ynum {
		switch op {
		case token.Less:
			return interp.BoolV(xf < yf), nil
		case token.LessEq:
			return interp.BoolV(xf <= yf), nil
		case token.Greater:
			return interp.BoolV(xf > yf), nil
		case token.GreatEq:
			return interp.BoolV(xf >= yf), nil
		}
	}
	return interp.Undef, m.errf(pos, "cannot order %s against %s", interp.FormatValue(x), interp.FormatValue(y))
}

func (m *VM) readToken() (string, error) {
	if m.in == nil {
		return "", fmt.Errorf("no input available")
	}
	var b strings.Builder
	// Skip whitespace.
	for {
		ch, err := m.in.ReadByte()
		if err != nil {
			return "", fmt.Errorf("end of input")
		}
		if ch == ' ' || ch == '\n' || ch == '\t' || ch == '\r' {
			continue
		}
		b.WriteByte(ch)
		break
	}
	for {
		ch, err := m.in.ReadByte()
		if err != nil {
			break
		}
		if ch == ' ' || ch == '\n' || ch == '\t' || ch == '\r' {
			break
		}
		b.WriteByte(ch)
	}
	return b.String(), nil
}
