// Package lexer implements the scanner for the GADT Pascal subset.
//
// Pascal is case-insensitive: keywords and identifiers are normalized to
// lower case (the original spelling of identifiers is not preserved,
// matching classic Pascal implementations). Comments come in the two
// classic forms, (* ... *) and { ... }, which do not nest, plus the
// Turbo Pascal line form // ... that runs to end of line.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"gadt/internal/pascal/token"
)

// Error is a lexical error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans an input buffer into tokens.
type Lexer struct {
	src  string
	file string

	off  int // byte offset of next rune
	line int
	col  int

	errs []*Error
}

// New returns a Lexer over src. file is used in positions and errors.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	ch := l.src[l.off]
	l.off++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }
func isLetter(ch byte) bool {
	return ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch == '_'
}
func isIdentChar(ch byte) bool { return isLetter(ch) || isDigit(ch) }

func (l *Lexer) skipSpaceAndComments() {
	for {
		switch ch := l.peek(); {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '{':
			pos := l.pos()
			l.advance()
			for l.peek() != '}' {
				if l.off >= len(l.src) {
					l.errorf(pos, "unterminated comment")
					return
				}
				l.advance()
			}
			l.advance() // '}'
		case ch == '/' && l.peek2() == '/':
			// Turbo Pascal style line comment, runs to end of line. Used
			// by the lint layer's `// lint:ignore P00x` suppressions.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '(' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					l.errorf(pos, "unterminated comment")
					return
				}
				if l.peek() == '*' && l.peek2() == ')' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token. At end of input it returns an
// EOF token; scanning past EOF keeps returning EOF.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	ch := l.peek()
	switch {
	case ch == 0:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isLetter(ch):
		return l.scanIdent(pos)
	case isDigit(ch):
		return l.scanNumber(pos)
	case ch == '\'':
		return l.scanString(pos)
	}
	l.advance()
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: pos} }
	switch ch {
	case '+':
		return mk(token.Plus)
	case '-':
		return mk(token.Minus)
	case '*':
		return mk(token.Star)
	case '/':
		return mk(token.Slash)
	case '=':
		return mk(token.Eq)
	case '^':
		return mk(token.Caret)
	case '(':
		return mk(token.LParen)
	case ')':
		return mk(token.RParen)
	case '[':
		return mk(token.LBracket)
	case ']':
		return mk(token.RBracket)
	case ',':
		return mk(token.Comma)
	case ';':
		return mk(token.Semi)
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return mk(token.LessEq)
		case '>':
			l.advance()
			return mk(token.NotEq)
		}
		return mk(token.Less)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.GreatEq)
		}
		return mk(token.Greater)
	case ':':
		if l.peek() == '=' {
			l.advance()
			return mk(token.Assign)
		}
		return mk(token.Colon)
	case '.':
		if l.peek() == '.' {
			l.advance()
			return mk(token.DotDot)
		}
		return mk(token.Period)
	}
	l.errorf(pos, "illegal character %q", string(rune(ch)))
	return token.Token{Kind: token.Illegal, Lit: string(rune(ch)), Pos: pos}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for isIdentChar(l.peek()) {
		l.advance()
	}
	lit := strings.ToLower(l.src[start:l.off])
	kind := token.Lookup(lit)
	if kind != token.Ident {
		return token.Token{Kind: kind, Pos: pos}
	}
	return token.Token{Kind: token.Ident, Lit: lit, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	for isDigit(l.peek()) {
		l.advance()
	}
	isReal := false
	// A '.' starts a fraction only if followed by a digit ('..' is a range).
	if l.peek() == '.' && isDigit(l.peek2()) {
		isReal = true
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if ch := l.peek(); ch == 'e' || ch == 'E' {
		// Exponent: e[+|-]digits.
		save := l.off
		mark := *l
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isReal = true
			for isDigit(l.peek()) {
				l.advance()
			}
		} else {
			*l = mark
			_ = save
		}
	}
	lit := l.src[start:l.off]
	if isReal {
		if _, err := strconv.ParseFloat(lit, 64); err != nil {
			l.errorf(pos, "malformed real literal %q", lit)
			return token.Token{Kind: token.Illegal, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.RealLit, Lit: lit, Pos: pos}
	}
	if _, err := strconv.ParseInt(lit, 10, 64); err != nil {
		l.errorf(pos, "integer literal %q out of range", lit)
		return token.Token{Kind: token.Illegal, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IntLit, Lit: lit, Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.Illegal, Lit: b.String(), Pos: pos}
		}
		ch := l.advance()
		if ch == '\'' {
			if l.peek() == '\'' { // '' escapes a quote
				l.advance()
				b.WriteByte('\'')
				continue
			}
			break
		}
		b.WriteByte(ch)
	}
	return token.Token{Kind: token.StringLit, Lit: b.String(), Pos: pos}
}

// ScanAll scans the whole input and returns all tokens up to and
// including EOF. Convenient for tests.
func ScanAll(file, src string) ([]token.Token, []*Error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, l.Errors()
}
