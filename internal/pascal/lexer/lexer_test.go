package lexer_test

import (
	"testing"

	"gadt/internal/pascal/lexer"
	"gadt/internal/pascal/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanBasics(t *testing.T) {
	src := `begin x := x + 1; end.`
	toks, errs := lexer.ScanAll("t.pas", src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.Begin, token.Ident, token.Assign, token.Ident, token.Plus,
		token.IntLit, token.Semi, token.End, token.Period, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	toks, errs := lexer.ScanAll("t.pas", "BEGIN Begin bEgIn WhIlE")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{token.Begin, token.Begin, token.Begin, token.While, token.EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestIdentNormalization(t *testing.T) {
	toks, _ := lexer.ScanAll("t.pas", "ArrSum ARRSUM arrsum")
	for i := 0; i < 3; i++ {
		if toks[i].Kind != token.Ident || toks[i].Lit != "arrsum" {
			t.Errorf("token %d = %v(%q), want Ident(arrsum)", i, toks[i].Kind, toks[i].Lit)
		}
	}
}

func TestComments(t *testing.T) {
	src := "x (* brace { inside *) y { paren (* inside } z"
	toks, errs := lexer.ScanAll("t.pas", src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(toks) != 4 { // x y z EOF
		t.Fatalf("got %d tokens (%v), want 4", len(toks), toks)
	}
}

func TestUnterminatedComment(t *testing.T) {
	_, errs := lexer.ScanAll("t.pas", "x (* never closed")
	if len(errs) == 0 {
		t.Fatal("expected unterminated-comment error")
	}
	_, errs = lexer.ScanAll("t.pas", "x { never closed")
	if len(errs) == 0 {
		t.Fatal("expected unterminated-comment error")
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
		lit  string
	}{
		{"42", token.IntLit, "42"},
		{"0", token.IntLit, "0"},
		{"3.14", token.RealLit, "3.14"},
		{"1e5", token.RealLit, "1e5"},
		{"2.5e-3", token.RealLit, "2.5e-3"},
		{"1E+2", token.RealLit, "1E+2"},
	}
	for _, tc := range cases {
		toks, errs := lexer.ScanAll("t.pas", tc.src)
		if len(errs) > 0 {
			t.Errorf("%q: errors %v", tc.src, errs)
			continue
		}
		if toks[0].Kind != tc.kind || toks[0].Lit != tc.lit {
			t.Errorf("%q = %v(%q), want %v(%q)", tc.src, toks[0].Kind, toks[0].Lit, tc.kind, tc.lit)
		}
	}
}

func TestDotDotVsReal(t *testing.T) {
	toks, errs := lexer.ScanAll("t.pas", "1..10")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{token.IntLit, token.DotDot, token.IntLit, token.EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("tokens = %v, want int .. int", toks)
		}
	}
}

func TestEIdentAfterNumber(t *testing.T) {
	// "1e" with no exponent digits: must scan as IntLit then Ident.
	toks, errs := lexer.ScanAll("t.pas", "1 exp")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != token.IntLit || toks[1].Kind != token.Ident {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestStrings(t *testing.T) {
	toks, errs := lexer.ScanAll("t.pas", "'hello' 'it''s' ''")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []string{"hello", "it's", ""}
	for i, w := range want {
		if toks[i].Kind != token.StringLit || toks[i].Lit != w {
			t.Errorf("string %d = %v(%q), want %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := lexer.ScanAll("t.pas", "'oops")
	if len(errs) == 0 {
		t.Fatal("expected unterminated-string error")
	}
	_, errs = lexer.ScanAll("t.pas", "'line\nbreak'")
	if len(errs) == 0 {
		t.Fatal("expected unterminated-string error on newline")
	}
}

func TestOperators(t *testing.T) {
	src := "+ - * / = <> < <= > >= := ( ) [ ] , ; : . .. ^"
	toks, errs := lexer.ScanAll("t.pas", src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.Plus, token.Minus, token.Star, token.Slash, token.Eq,
		token.NotEq, token.Less, token.LessEq, token.Greater, token.GreatEq,
		token.Assign, token.LParen, token.RParen, token.LBracket,
		token.RBracket, token.Comma, token.Semi, token.Colon, token.Period,
		token.DotDot, token.Caret, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	src := "x\n  y := 3"
	toks, _ := lexer.ScanAll("f.pas", src)
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("x at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("y at %v, want 2:3", toks[1].Pos)
	}
	if toks[1].Pos.File != "f.pas" {
		t.Errorf("file = %q, want f.pas", toks[1].Pos.File)
	}
}

func TestIllegalChar(t *testing.T) {
	toks, errs := lexer.ScanAll("t.pas", "x ? y")
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly 1", errs)
	}
	if toks[1].Kind != token.Illegal {
		t.Errorf("token 1 = %v, want Illegal", toks[1])
	}
}

func TestEOFIdempotent(t *testing.T) {
	l := lexer.New("t.pas", "")
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next() #%d = %v, want EOF", i, tok)
		}
	}
}

func TestLineComments(t *testing.T) {
	src := "x := 1; // lint:ignore P003 trailing comment\n// full-line comment\ny := 2 // unterminated by newline is fine at EOF"
	toks, errs := lexer.ScanAll("t.pas", src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.Ident, token.Assign, token.IntLit, token.Semi,
		token.Ident, token.Assign, token.IntLit, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	// A single slash is still the division operator.
	toks, errs = lexer.ScanAll("t.pas", "a / b")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[1].Kind != token.Slash {
		t.Errorf("middle token = %v, want /", toks[1].Kind)
	}
}
