package lexer_test

import (
	"os"
	"path/filepath"
	"testing"

	"gadt/internal/pascal/lexer"
	"gadt/internal/pascal/token"
)

// seedCorpus feeds every checked-in Pascal program to the fuzzer so it
// starts from realistic inputs rather than raw bytes.
func seedCorpus(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "..", "testdata", "*.pas"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no testdata/*.pas seeds found")
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("")
	f.Add("program p; begin end.")
	f.Add("{ unterminated comment")
	f.Add("'unterminated string")
	f.Add("1e999 $ @ 0x")
}

// FuzzLexer asserts the scanner never panics or loops forever, and that
// every token and lexical error carries a sane source position: lines
// start at 1 and never move backwards, columns start at 1.
func FuzzLexer(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		l := lexer.New("fuzz.pas", src)
		// A scanner that cannot emit at least one token per input byte
		// (plus EOF) is stuck; bound the loop so a non-advancing bug
		// fails fast instead of hanging the fuzzer.
		budget := len(src) + 2
		prevLine := 1
		for i := 0; ; i++ {
			if i > budget {
				t.Fatalf("scanner emitted more than %d tokens for %d bytes", budget, len(src))
			}
			tok := l.Next()
			if tok.Pos.Line < 1 || tok.Pos.Col < 1 {
				t.Fatalf("token %s at non-positive position %v", tok.Kind, tok.Pos)
			}
			if tok.Pos.Line < prevLine {
				t.Fatalf("token %s position went backwards: line %d after line %d", tok.Kind, tok.Pos.Line, prevLine)
			}
			prevLine = tok.Pos.Line
			if tok.Kind == token.EOF {
				break
			}
		}
		for _, e := range l.Errors() {
			if e.Pos.Line < 1 || e.Pos.Col < 1 {
				t.Fatalf("lexical error %q at non-positive position %v", e.Msg, e.Pos)
			}
		}
	})
}
