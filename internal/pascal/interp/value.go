// Package interp is a tree-walking interpreter for the GADT Pascal
// subset with instrumentation hooks.
//
// The interpreter is the substrate of the paper's tracing phase
// (Section 5.2): an EventSink receives call enter/exit events carrying
// deep-copied parameter snapshots, plus location-level read/write events
// that the dynamic slicer turns into a dynamic dependence graph.
package interp

import (
	"fmt"
	"sort"
	"strings"

	"gadt/internal/pascal/types"
)

// Value is a runtime value: int64, float64, bool, string, *ArrayVal or
// *RecordVal. Scalar values are immutable; composite values are mutated
// in place and must be deep-copied when snapshotted.
type Value any

// ArrayVal is an array value with the bounds of its type.
type ArrayVal struct {
	Lo, Hi int64
	Elems  []Value
}

// NewArray allocates an array of the given type with zero elements.
func NewArray(t *types.Array) *ArrayVal {
	a := &ArrayVal{Lo: t.Lo, Hi: t.Hi, Elems: make([]Value, t.Len())}
	for i := range a.Elems {
		a.Elems[i] = ZeroValue(t.Elem)
	}
	return a
}

// At returns the address of the element for source index i (checked).
func (a *ArrayVal) At(i int64) (*Value, error) {
	if i < a.Lo || i > a.Hi {
		return nil, fmt.Errorf("index %d out of bounds [%d .. %d]", i, a.Lo, a.Hi)
	}
	return &a.Elems[i-a.Lo], nil
}

func (a *ArrayVal) String() string { return FormatValue(a) }

// RecordVal is a record value; field order follows the record type.
type RecordVal struct {
	Names  []string
	Fields []Value
}

// NewRecord allocates a record of the given type with zero fields.
func NewRecord(t *types.Record) *RecordVal {
	r := &RecordVal{Names: make([]string, len(t.Fields)), Fields: make([]Value, len(t.Fields))}
	for i, f := range t.Fields {
		r.Names[i] = f.Name
		r.Fields[i] = ZeroValue(f.Type)
	}
	return r
}

// FieldAddr returns the address of the named field.
func (r *RecordVal) FieldAddr(name string) (*Value, error) {
	for i, n := range r.Names {
		if n == name {
			return &r.Fields[i], nil
		}
	}
	return nil, fmt.Errorf("record has no field %s", name)
}

func (r *RecordVal) String() string { return FormatValue(r) }

// ZeroValue returns the zero value of a semantic type (Pascal leaves
// variables undefined; zero-initialization keeps runs deterministic,
// like many safe Pascal implementations).
func ZeroValue(t types.Type) Value {
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind {
		case types.Int:
			return int64(0)
		case types.Real:
			return float64(0)
		case types.Bool:
			return false
		case types.Str:
			return ""
		}
	case *types.Array:
		return NewArray(t)
	case *types.Record:
		return NewRecord(t)
	}
	return int64(0)
}

// CopyValue deep-copies a value.
func CopyValue(v Value) Value {
	switch v := v.(type) {
	case *ArrayVal:
		c := &ArrayVal{Lo: v.Lo, Hi: v.Hi, Elems: make([]Value, len(v.Elems))}
		for i, e := range v.Elems {
			c.Elems[i] = CopyValue(e)
		}
		return c
	case *RecordVal:
		c := &RecordVal{Names: append([]string(nil), v.Names...), Fields: make([]Value, len(v.Fields))}
		for i, e := range v.Fields {
			c.Fields[i] = CopyValue(e)
		}
		return c
	default:
		return v
	}
}

// ValuesEqual compares two values structurally, widening integers to
// reals when mixed.
func ValuesEqual(a, b Value) bool {
	switch a := a.(type) {
	case int64:
		switch b := b.(type) {
		case int64:
			return a == b
		case float64:
			return float64(a) == b
		}
		return false
	case float64:
		switch b := b.(type) {
		case int64:
			return a == float64(b)
		case float64:
			return a == b
		}
		return false
	case bool:
		bb, ok := b.(bool)
		return ok && a == bb
	case string:
		bs, ok := b.(string)
		return ok && a == bs
	case *ArrayVal:
		ba, ok := b.(*ArrayVal)
		if !ok || ba.Lo != a.Lo || ba.Hi != a.Hi {
			return false
		}
		for i := range a.Elems {
			if !ValuesEqual(a.Elems[i], ba.Elems[i]) {
				return false
			}
		}
		return true
	case *RecordVal:
		br, ok := b.(*RecordVal)
		if !ok || len(br.Fields) != len(a.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Names[i] != br.Names[i] || !ValuesEqual(a.Fields[i], br.Fields[i]) {
				return false
			}
		}
		return true
	}
	return a == b
}

// FormatValue renders a value the way the debugger presents it to the
// user: `[1, 2]` for arrays (trailing zero elements of large arrays are
// elided as `, ...`), `(f: v, ...)` for records.
func FormatValue(v Value) string {
	switch v := v.(type) {
	case nil:
		return "<undef>"
	case int64:
		return fmt.Sprintf("%d", v)
	case float64:
		s := fmt.Sprintf("%g", v)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case bool:
		if v {
			return "true"
		}
		return "false"
	case string:
		return fmt.Sprintf("'%s'", v)
	case *ArrayVal:
		// Elide the maximal all-zero tail to keep queries readable: the
		// paper prints sqrtest's 10-element parameter array as [1, 2].
		n := len(v.Elems)
		for n > 0 && isZeroScalar(v.Elems[n-1]) {
			n--
		}
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			parts = append(parts, FormatValue(v.Elems[i]))
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *RecordVal:
		parts := make([]string, len(v.Fields))
		for i := range v.Fields {
			parts[i] = fmt.Sprintf("%s: %s", v.Names[i], FormatValue(v.Fields[i]))
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	return fmt.Sprintf("%v", v)
}

func isZeroScalar(v Value) bool {
	switch v := v.(type) {
	case int64:
		return v == 0
	case float64:
		return v == 0
	case bool:
		return !v
	case string:
		return v == ""
	}
	return false
}

// SortedNames returns map keys in sorted order (printing helper).
func SortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
