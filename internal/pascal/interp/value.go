// Package interp is a tree-walking interpreter for the GADT Pascal
// subset with instrumentation hooks.
//
// The interpreter is the substrate of the paper's tracing phase
// (Section 5.2): an EventSink receives call enter/exit events carrying
// deep-copied parameter snapshots, plus location-level read/write events
// that the dynamic slicer turns into a dynamic dependence graph.
package interp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gadt/internal/pascal/types"
)

// Kind discriminates the payload of a Value.
type Kind uint8

const (
	KindUndef Kind = iota // zero Value; "no value" (procedure results)
	KindInt
	KindReal
	KindBool
	KindStr
	KindArray
	KindRecord
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "integer"
	case KindReal:
		return "real"
	case KindBool:
		return "boolean"
	case KindStr:
		return "string"
	case KindArray:
		return "array"
	case KindRecord:
		return "record"
	}
	return "undefined"
}

// Value is a runtime value in unboxed form: a small tagged struct whose
// scalar payloads (integer, boolean, real) live in the num field, so
// scalar assignment, arithmetic and comparison allocate nothing. Strings,
// arrays and records escape to the heap behind agg. Keeping the struct at
// three words (32 bytes) matters: every expression evaluation returns a
// Value by value, and the copy cost is on the interpreter's hottest path.
//
// The zero Value is KindUndef ("no value"). Scalar values are immutable;
// composite values are mutated in place and must be deep-copied when
// snapshotted.
type Value struct {
	kind Kind
	num  int64 // KindInt payload; KindBool 0/1; KindReal float bits
	agg  any   // string, *ArrayVal or *RecordVal
}

// Undef is the "no value" Value (same as the zero Value).
var Undef = Value{}

// IntV returns an integer value.
func IntV(i int64) Value { return Value{kind: KindInt, num: i} }

// RealV returns a real value.
func RealV(f float64) Value { return Value{kind: KindReal, num: int64(math.Float64bits(f))} }

// BoolV returns a boolean value.
func BoolV(b bool) Value {
	if b {
		return Value{kind: KindBool, num: 1}
	}
	return Value{kind: KindBool}
}

// StrV returns a string value.
func StrV(s string) Value { return Value{kind: KindStr, agg: s} }

// ArrV wraps an array value.
func ArrV(a *ArrayVal) Value { return Value{kind: KindArray, agg: a} }

// RecV wraps a record value.
func RecV(r *RecordVal) Value { return Value{kind: KindRecord, agg: r} }

// MakeValue converts a Go scalar or composite (int, int64, float64,
// bool, string, *ArrayVal, *RecordVal) into a Value; any other input
// yields Undef. Convenience for tests and table-driven callers.
func MakeValue(x any) Value {
	switch x := x.(type) {
	case Value:
		return x
	case int:
		return IntV(int64(x))
	case int64:
		return IntV(x)
	case float64:
		return RealV(x)
	case bool:
		return BoolV(x)
	case string:
		return StrV(x)
	case *ArrayVal:
		return ArrV(x)
	case *RecordVal:
		return RecV(x)
	}
	return Undef
}

// Kind reports the value's kind tag.
func (v Value) Kind() Kind { return v.kind }

// IsUndef reports whether v carries no value.
func (v Value) IsUndef() bool { return v.kind == KindUndef }

// IsScalar reports whether v is an integer, real, boolean or string.
func (v Value) IsScalar() bool {
	return v.kind == KindInt || v.kind == KindReal || v.kind == KindBool || v.kind == KindStr
}

// AsInt returns the integer payload, when v is an integer.
func (v Value) AsInt() (int64, bool) { return v.num, v.kind == KindInt }

// AsReal returns the real payload, when v is a real (no int widening).
func (v Value) AsReal() (float64, bool) {
	return math.Float64frombits(uint64(v.num)), v.kind == KindReal
}

// AsBool returns the boolean payload, when v is a boolean.
func (v Value) AsBool() (bool, bool) { return v.num != 0, v.kind == KindBool }

// AsStr returns the string payload, when v is a string.
func (v Value) AsStr() (string, bool) {
	if v.kind != KindStr {
		return "", false
	}
	return v.agg.(string), true
}

// AsArray returns the array payload, when v is an array.
func (v Value) AsArray() (*ArrayVal, bool) {
	a, ok := v.agg.(*ArrayVal)
	return a, ok && v.kind == KindArray
}

// AsRecord returns the record payload, when v is a record.
func (v Value) AsRecord() (*RecordVal, bool) {
	r, ok := v.agg.(*RecordVal)
	return r, ok && v.kind == KindRecord
}

// unchecked accessors for post-kind-check hot paths.
func (v Value) intv() int64     { return v.num }
func (v Value) realv() float64  { return math.Float64frombits(uint64(v.num)) }
func (v Value) boolv() bool     { return v.num != 0 }
func (v Value) strv() string    { return v.agg.(string) }
func (v Value) arr() *ArrayVal  { return v.agg.(*ArrayVal) }
func (v Value) rec() *RecordVal { return v.agg.(*RecordVal) }
func (v Value) numeric() bool   { return v.kind == KindInt || v.kind == KindReal }
func (v Value) asFloat() float64 { // numeric() callers only
	if v.kind == KindInt {
		return float64(v.num)
	}
	return v.realv()
}

// ArrayVal is an array value with the bounds of its type.
type ArrayVal struct {
	Lo, Hi int64
	Elems  []Value
}

// NewArray allocates an array of the given type with zero elements.
func NewArray(t *types.Array) *ArrayVal {
	a := &ArrayVal{Lo: t.Lo, Hi: t.Hi, Elems: make([]Value, t.Len())}
	zero := ZeroValue(t.Elem)
	if zero.kind == KindArray || zero.kind == KindRecord {
		a.Elems[0] = zero
		for i := 1; i < len(a.Elems); i++ {
			a.Elems[i] = CopyValue(zero)
		}
	} else {
		for i := range a.Elems {
			a.Elems[i] = zero
		}
	}
	return a
}

// At returns the address of the element for source index i (checked).
func (a *ArrayVal) At(i int64) (*Value, error) {
	if i < a.Lo || i > a.Hi {
		return nil, fmt.Errorf("index %d out of bounds [%d .. %d]", i, a.Lo, a.Hi)
	}
	return &a.Elems[i-a.Lo], nil
}

func (a *ArrayVal) String() string { return FormatValue(ArrV(a)) }

// RecordVal is a record value; field order follows the record type.
type RecordVal struct {
	Names  []string
	Fields []Value
}

// NewRecord allocates a record of the given type with zero fields.
func NewRecord(t *types.Record) *RecordVal {
	r := &RecordVal{Names: make([]string, len(t.Fields)), Fields: make([]Value, len(t.Fields))}
	for i, f := range t.Fields {
		r.Names[i] = f.Name
		r.Fields[i] = ZeroValue(f.Type)
	}
	return r
}

// FieldAddr returns the address of the named field.
func (r *RecordVal) FieldAddr(name string) (*Value, error) {
	for i, n := range r.Names {
		if n == name {
			return &r.Fields[i], nil
		}
	}
	return nil, fmt.Errorf("record has no field %s", name)
}

func (r *RecordVal) String() string { return FormatValue(RecV(r)) }

// ZeroValue returns the zero value of a semantic type (Pascal leaves
// variables undefined; zero-initialization keeps runs deterministic,
// like many safe Pascal implementations).
func ZeroValue(t types.Type) Value {
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind {
		case types.Int:
			return IntV(0)
		case types.Real:
			return RealV(0)
		case types.Bool:
			return BoolV(false)
		case types.Str:
			return StrV("")
		}
	case *types.Array:
		return ArrV(NewArray(t))
	case *types.Record:
		return RecV(NewRecord(t))
	}
	return IntV(0)
}

// CopyValue deep-copies a value. Scalars copy by value (free); arrays
// and records are cloned.
func CopyValue(v Value) Value {
	switch v.kind {
	case KindArray:
		src := v.arr()
		c := &ArrayVal{Lo: src.Lo, Hi: src.Hi, Elems: make([]Value, len(src.Elems))}
		for i, e := range src.Elems {
			c.Elems[i] = CopyValue(e)
		}
		return ArrV(c)
	case KindRecord:
		src := v.rec()
		c := &RecordVal{Names: append([]string(nil), src.Names...), Fields: make([]Value, len(src.Fields))}
		for i, e := range src.Fields {
			c.Fields[i] = CopyValue(e)
		}
		return RecV(c)
	default:
		return v
	}
}

// ValuesEqual compares two values structurally, widening integers to
// reals when mixed.
func ValuesEqual(a, b Value) bool {
	switch a.kind {
	case KindInt:
		switch b.kind {
		case KindInt:
			return a.num == b.num
		case KindReal:
			return float64(a.num) == b.realv()
		}
		return false
	case KindReal:
		switch b.kind {
		case KindInt:
			return a.realv() == float64(b.num)
		case KindReal:
			return a.realv() == b.realv()
		}
		return false
	case KindBool:
		return b.kind == KindBool && a.num == b.num
	case KindStr:
		return b.kind == KindStr && a.strv() == b.strv()
	case KindArray:
		ba, ok := b.AsArray()
		aa := a.arr()
		if !ok || ba.Lo != aa.Lo || ba.Hi != aa.Hi {
			return false
		}
		for i := range aa.Elems {
			if !ValuesEqual(aa.Elems[i], ba.Elems[i]) {
				return false
			}
		}
		return true
	case KindRecord:
		br, ok := b.AsRecord()
		ar := a.rec()
		if !ok || len(br.Fields) != len(ar.Fields) {
			return false
		}
		for i := range ar.Fields {
			if ar.Names[i] != br.Names[i] || !ValuesEqual(ar.Fields[i], br.Fields[i]) {
				return false
			}
		}
		return true
	}
	return b.kind == KindUndef
}

// FormatValue renders a value the way the debugger presents it to the
// user: `[1, 2]` for arrays (trailing zero elements of large arrays are
// elided as `, ...`), `(f: v, ...)` for records.
func FormatValue(v Value) string {
	switch v.kind {
	case KindUndef:
		return "<undef>"
	case KindInt:
		return fmt.Sprintf("%d", v.num)
	case KindReal:
		s := fmt.Sprintf("%g", v.realv())
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case KindBool:
		if v.boolv() {
			return "true"
		}
		return "false"
	case KindStr:
		return fmt.Sprintf("'%s'", v.strv())
	case KindArray:
		// Elide the maximal all-zero tail to keep queries readable: the
		// paper prints sqrtest's 10-element parameter array as [1, 2].
		a := v.arr()
		n := len(a.Elems)
		for n > 0 && isZeroScalar(a.Elems[n-1]) {
			n--
		}
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			parts = append(parts, FormatValue(a.Elems[i]))
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindRecord:
		r := v.rec()
		parts := make([]string, len(r.Fields))
		for i := range r.Fields {
			parts[i] = fmt.Sprintf("%s: %s", r.Names[i], FormatValue(r.Fields[i]))
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	return fmt.Sprintf("<%s>", v.kind)
}

func isZeroScalar(v Value) bool {
	switch v.kind {
	case KindInt:
		return v.num == 0
	case KindReal:
		return v.realv() == 0
	case KindBool:
		return !v.boolv()
	case KindStr:
		return v.strv() == ""
	}
	return false
}

// SortedNames returns map keys in sorted order (printing helper).
func SortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
