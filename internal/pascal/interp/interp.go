package interp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gadt/internal/obs"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
	"gadt/internal/pascal/token"
	"gadt/internal/pascal/types"
)

// Loc is a unique identifier for a memory location (one per variable
// cell; arrays and records are single locations, the granularity at
// which the paper's slicing treats composite variables).
type Loc int64

// Binding is one named value in a call snapshot.
type Binding struct {
	Name  string
	Mode  ast.ParamMode
	Value Value // deep copy taken at snapshot time
	Sym   *sem.VarSym
}

func (b Binding) String() string { return fmt.Sprintf("%s: %s", b.Name, FormatValue(b.Value)) }

// CallInfo describes one routine invocation for the event sink. The same
// CallInfo pointer is passed to EnterCall and ExitCall; Outs and Result
// are populated at exit.
type CallInfo struct {
	ID       int64
	Routine  *sem.Routine
	CallSite ast.Node // *ast.CallStmt, *ast.CallExpr, *ast.Ident, or nil for the program block
	Depth    int

	Ins  []Binding // value snapshot of every parameter at entry
	Outs []Binding // snapshot of var/out parameters at exit

	Result Value // function result, Undef for procedures

	// ArgLocs holds the location of each argument that is a variable
	// designator (zero otherwise), in parameter order; ParamLocs holds
	// the location bound to each formal. For var/out parameters these
	// coincide.
	ArgLocs   []Loc
	ParamLocs []Loc
	ResultLoc Loc
}

// EventSink receives execution events. Implementations must not retain
// the Value snapshots' composite internals across mutation points; all
// snapshot values are deep copies, so retaining the Binding is safe.
type EventSink interface {
	EnterCall(c *CallInfo)
	ExitCall(c *CallInfo)
	Read(loc Loc, v *sem.VarSym)
	Write(loc Loc, v *sem.VarSym)
	Stmt(s ast.Stmt, r *sem.Routine)
}

// MultiSink fans events out to several sinks in order.
type MultiSink []EventSink

func (m MultiSink) EnterCall(c *CallInfo) {
	for _, s := range m {
		s.EnterCall(c)
	}
}
func (m MultiSink) ExitCall(c *CallInfo) {
	for _, s := range m {
		s.ExitCall(c)
	}
}
func (m MultiSink) Read(l Loc, v *sem.VarSym) {
	for _, s := range m {
		s.Read(l, v)
	}
}
func (m MultiSink) Write(l Loc, v *sem.VarSym) {
	for _, s := range m {
		s.Write(l, v)
	}
}
func (m MultiSink) Stmt(st ast.Stmt, r *sem.Routine) {
	for _, s := range m {
		s.Stmt(st, r)
	}
}

var _ EventSink = MultiSink{}

// NopSink is an EventSink that ignores all events.
type NopSink struct{}

func (NopSink) EnterCall(*CallInfo)         {}
func (NopSink) ExitCall(*CallInfo)          {}
func (NopSink) Read(Loc, *sem.VarSym)       {}
func (NopSink) Write(Loc, *sem.VarSym)      {}
func (NopSink) Stmt(ast.Stmt, *sem.Routine) {}

var _ EventSink = NopSink{}

// ErrFuelExhausted marks step-budget (fuel) exhaustion: the program
// executed Config.MaxSteps statements without terminating. Callers that
// run untrusted or generated programs (the mutation campaign, fuzzing)
// match it with errors.Is to separate "probably an infinite loop" from
// genuine runtime faults.
var ErrFuelExhausted = errors.New("step budget exhausted")

// ErrDepthExhausted marks call-depth budget exhaustion. Transformed
// programs express loops as recursive loop units, so a planted infinite
// loop usually trips this limit rather than the statement budget;
// campaign classification treats both as non-termination.
var ErrDepthExhausted = errors.New("call depth budget exhausted")

// RuntimeError is an error raised during execution, with the source
// position of the failing construct and the active call stack.
type RuntimeError struct {
	Pos   token.Pos
	Msg   string
	Stack []string
	// Cause, when non-nil, is a sentinel classifying the failure
	// (currently only ErrFuelExhausted); exposed via Unwrap.
	Cause error
}

func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

// Unwrap exposes the classifying sentinel for errors.Is.
func (e *RuntimeError) Unwrap() error { return e.Cause }

// Config controls resource limits and I/O of a run.
type Config struct {
	Input  io.Reader // program input for read/readln; nil means empty
	Output io.Writer // program output for write/writeln; nil discards

	MaxSteps int // statement budget; <= 0 means the 5e6 default
	MaxDepth int // call depth budget; <= 0 means the 10000 default

	Sink EventSink // nil means NopSink

	// Metrics, when non-nil, receives the run's execution counters
	// (interp.statements, interp.calls, interp.depth.max) when Run or
	// CallUnit returns.
	Metrics *obs.Registry
}

const (
	defaultMaxSteps = 5_000_000
	defaultMaxDepth = 10_000
)

// Interp executes an analyzed program.
type Interp struct {
	info *sem.Info
	cfg  Config

	in   *bufio.Reader
	out  io.Writer
	sink EventSink
	// trace is false when the sink is a NopSink: the hot path then skips
	// event dispatch and call-snapshot construction entirely.
	trace bool

	steps    int
	depth    int
	maxDepth int
	calls    int64
	nextID   int64
	nextLoc  Loc

	// flushedSteps/flushedCalls mark what recordMetrics already exported.
	flushedSteps int
	flushedCalls int64

	// Instrument handles resolved once in New: recordMetrics touches no
	// registry lock and allocates nothing, so instrumented runs keep the
	// interpreter's zero-alloc guarantee. All nil when cfg.Metrics is nil.
	mStatements *obs.Counter
	mCalls      *obs.Counter
	mDepthMax   *obs.Gauge

	frame *frame // current frame

	// free is the head of the frame free list. Completed activations
	// return their frame (slot vector and cell storage included) here,
	// so call-heavy programs reuse a handful of allocations instead of
	// churning the garbage collector.
	free *frame
}

type cell struct {
	loc Loc
	val Value
}

// frame is one routine activation. Variable storage is a dense slot
// vector laid out by the layout pass (sem.Routine.Frame): slots[i]
// addresses the cell of the variable with Slot == i. Owned cells live
// contiguously in storage; by-reference parameter slots are repointed at
// the caller's cells instead.
type frame struct {
	routine *sem.Routine
	static  *frame // frame of the lexically enclosing routine
	caller  *frame // dynamic link, for error stack capture
	level   int    // == routine.Level (static-chain walk counter)
	slots   []*cell
	storage []cell
	next    *frame // free-list link
}

// control models non-local transfer: nil for normal completion, or a
// pending goto that unwinds until its label is found.
type control struct {
	label  string
	target *sem.Routine
}

// New prepares an interpreter for an analyzed program.
func New(info *sem.Info, cfg Config) *Interp {
	it := &Interp{info: info, cfg: cfg, sink: cfg.Sink}
	if it.sink == nil {
		it.sink = NopSink{}
	}
	if _, nop := it.sink.(NopSink); !nop {
		it.trace = true
	}
	if cfg.Input != nil {
		it.in = bufio.NewReader(cfg.Input)
	}
	it.out = cfg.Output
	if it.out == nil {
		it.out = io.Discard
	}
	if it.cfg.MaxSteps <= 0 {
		it.cfg.MaxSteps = defaultMaxSteps
	}
	if it.cfg.MaxDepth <= 0 {
		it.cfg.MaxDepth = defaultMaxDepth
	}
	if m := cfg.Metrics; m != nil {
		it.mStatements = m.Counter("interp.statements")
		it.mCalls = m.Counter("interp.calls")
		it.mDepthMax = m.Gauge("interp.depth.max")
	}
	return it
}

// recordMetrics flushes the counters accumulated since the previous
// flush into the configured registry (a no-op when none is configured).
// Deltas keep repeated CallUnit invocations on one interpreter from
// double-counting; the depth gauge is a high-water mark.
func (it *Interp) recordMetrics() {
	if it.mStatements == nil {
		return
	}
	it.mStatements.Add(int64(it.steps - it.flushedSteps))
	it.mCalls.Add(it.calls - it.flushedCalls)
	it.mDepthMax.SetMax(int64(it.maxDepth))
	it.flushedSteps, it.flushedCalls = it.steps, it.calls
}

// ---------------------------------------------------------------------------
// Frames

// newFrame acquires a frame for r (recycled from the free list when
// possible) with every slot pointing at the frame's own storage under a
// fresh location. Cell values start Undef; callers zero-initialize the
// slots they own (parameters are bound explicitly, so their zero init
// would be wasted work).
func (it *Interp) newFrame(r *sem.Routine, static, caller *frame) *frame {
	n := len(r.Frame.Vars)
	f := it.free
	if f != nil {
		it.free = f.next
		f.next = nil
	} else {
		f = &frame{}
	}
	f.routine, f.static, f.caller, f.level = r, static, caller, r.Level
	if cap(f.storage) < n {
		f.storage = make([]cell, n)
		f.slots = make([]*cell, n)
	} else {
		f.storage = f.storage[:n]
		f.slots = f.slots[:n]
	}
	for i := 0; i < n; i++ {
		it.nextLoc++
		f.storage[i] = cell{loc: it.nextLoc}
		f.slots[i] = &f.storage[i]
	}
	return f
}

// freeFrame returns a completed activation to the free list. The caller
// must guarantee no live pointers into the frame's storage remain (all
// sink snapshots are deep copies; results are copied out by value).
func (it *Interp) freeFrame(f *frame) {
	f.routine, f.static, f.caller = nil, nil, nil
	f.next = it.free
	it.free = f
}

// zeroSlot installs the zero value of v's type in the frame's own cell.
func (f *frame) zeroSlot(v *sem.VarSym) {
	f.storage[v.Slot].val = ZeroValue(v.Type)
}

// Run executes the program from the start of the program block. The
// program block itself is reported as call ID 0 to the sink.
func (it *Interp) Run() error {
	defer it.recordMetrics()
	main := it.info.Main
	it.frame = it.newFrame(main, nil, nil)
	for _, v := range main.Frame.Vars {
		it.frame.zeroSlot(v)
	}
	it.calls++
	var ci *CallInfo
	if it.trace {
		ci = &CallInfo{ID: it.nextID, Routine: main, Depth: 0}
		it.nextID++
		it.sink.EnterCall(ci)
	}
	ctrl, err := it.execStmt(it.frame.routine.Block.Body)
	if it.trace {
		it.sink.ExitCall(ci)
	}
	if err != nil {
		return err
	}
	if ctrl != nil {
		return &RuntimeError{Msg: fmt.Sprintf("goto %s did not reach its label (jump into a structured statement is not supported)", ctrl.label)}
	}
	return nil
}

// maxErrStack bounds how many frame names an error captures; deeper
// stacks are summarized. Capture cost on the error path is thus O(depth)
// pointer hops but O(1) allocations, and the hot path never pays it.
const maxErrStack = 32

// callStack captures the dynamic call stack (innermost first), bounded
// to maxErrStack named frames plus a summary line for the rest.
func (it *Interp) callStack() []string {
	if it.frame == nil {
		return nil
	}
	stack := make([]string, 0, maxErrStack)
	n := 0
	for f := it.frame; f != nil; f = f.caller {
		if n == maxErrStack {
			rest := 0
			for ; f != nil; f = f.caller {
				rest++
			}
			stack = append(stack, fmt.Sprintf("... (%d more frames)", rest))
			break
		}
		stack = append(stack, f.routine.Name)
		n++
	}
	return stack
}

func (it *Interp) errorf(pos token.Pos, format string, args ...any) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...), Stack: it.callStack()}
}

// cellOf resolves v's cell without constructing an error: it walks the
// static chain exactly (current level − owner level) links and indexes
// the owner frame's slot vector directly. Returns nil when no active
// frame holds v (probe paths swallow that silently; lookupCell wraps it
// in a RuntimeError).
func (it *Interp) cellOf(v *sem.VarSym) *cell {
	f := it.frame
	if f == nil {
		return nil
	}
	owner := v.Owner
	for d := f.level - owner.Level; d > 0; d-- {
		f = f.static
		if f == nil {
			return nil
		}
	}
	if f.routine != owner || v.Slot >= len(f.slots) {
		return nil
	}
	return f.slots[v.Slot]
}

// lookupCell finds the cell of v on the static chain, as a checked
// operation that reports a runtime error when v is not in scope.
func (it *Interp) lookupCell(v *sem.VarSym, pos token.Pos) (*cell, error) {
	if c := it.cellOf(v); c != nil {
		return c, nil
	}
	return nil, it.errorf(pos, "no active frame holds %s", v.Name)
}

// Peek returns the current value of v, resolved on the active static
// chain, without raising an error when no frame holds it. Read-only
// observation hook: EventSink clients (the absint soundness harness)
// compare concrete values against static predictions mid-run.
func (it *Interp) Peek(v *sem.VarSym) (Value, bool) {
	if c := it.cellOf(v); c != nil {
		return c.val, true
	}
	return Value{}, false
}

// ---------------------------------------------------------------------------
// Statements

func (it *Interp) execStmt(s ast.Stmt) (*control, error) {
	if s == nil {
		return nil, nil
	}
	it.steps++
	if it.steps > it.cfg.MaxSteps {
		err := it.errorf(s.Pos(), "step budget exhausted (%d statements); possible infinite loop", it.cfg.MaxSteps)
		err.(*RuntimeError).Cause = ErrFuelExhausted
		return nil, err
	}
	if it.trace {
		it.sink.Stmt(s, it.frame.routine)
	}
	switch s := s.(type) {
	case *ast.CompoundStmt:
		return it.execList(s.Stmts)
	case *ast.AssignStmt:
		return nil, it.execAssign(s)
	case *ast.CallStmt:
		return it.execCallStmt(s)
	case *ast.IfStmt:
		cond, err := it.evalBool(s.Cond)
		if err != nil {
			return nil, err
		}
		if cond {
			return it.execStmt(s.Then)
		}
		return it.execStmt(s.Else)
	case *ast.WhileStmt:
		for {
			cond, err := it.evalBool(s.Cond)
			if err != nil {
				return nil, err
			}
			if !cond {
				return nil, nil
			}
			ctrl, err := it.execStmt(s.Body)
			if ctrl != nil || err != nil {
				return ctrl, err
			}
		}
	case *ast.RepeatStmt:
		for {
			ctrl, err := it.execList(s.Stmts)
			if ctrl != nil || err != nil {
				return ctrl, err
			}
			cond, err := it.evalBool(s.Cond)
			if err != nil {
				return nil, err
			}
			if cond {
				return nil, nil
			}
		}
	case *ast.ForStmt:
		return it.execFor(s)
	case *ast.CaseStmt:
		return it.execCase(s)
	case *ast.GotoStmt:
		li := it.info.GotoTgt[s]
		if li == nil {
			return nil, it.errorf(s.Pos(), "unresolved goto %s", s.Label)
		}
		return &control{label: s.Label, target: li.Routine}, nil
	case *ast.LabeledStmt:
		return it.execStmt(s.Stmt)
	case *ast.EmptyStmt:
		return nil, nil
	}
	return nil, it.errorf(s.Pos(), "cannot execute %T", s)
}

// execList runs a statement list, resolving pending gotos whose label is
// placed at this level (possibly jumping backward or forward).
func (it *Interp) execList(stmts []ast.Stmt) (*control, error) {
	i := 0
	for i < len(stmts) {
		ctrl, err := it.execStmt(stmts[i])
		if err != nil {
			return nil, err
		}
		if ctrl == nil {
			i++
			continue
		}
		// A goto is pending: does this list place the label, and is the
		// label owned by the routine we are currently in?
		if ctrl.target != it.frame.routine {
			return ctrl, nil // unwind further (global goto)
		}
		found := -1
		for j, c := range stmts {
			if ls, ok := c.(*ast.LabeledStmt); ok && ls.Label == ctrl.label {
				found = j
				break
			}
		}
		if found < 0 {
			return ctrl, nil // unwind to an outer list of the same routine
		}
		i = found
	}
	return nil, nil
}

func (it *Interp) execAssign(s *ast.AssignStmt) error {
	val, err := it.evalExpr(s.Rhs)
	if err != nil {
		return err
	}
	return it.assignTo(s.Lhs, val, s.Pos())
}

// assignTo stores val into the designator lhs, firing Write (and, for
// partial updates of composites, Read) events on the base variable.
func (it *Interp) assignTo(lhs ast.Expr, val Value, pos token.Pos) error {
	// Whole-variable scalar store: resolve the cell directly, no
	// partial-update bookkeeping.
	if id, ok := lhs.(*ast.Ident); ok {
		v, ok := it.info.UseOf(id).(*sem.VarSym)
		if !ok {
			return it.errorf(id.Pos(), "%s is not a variable", id.Name)
		}
		c := it.cellOf(v)
		if c == nil {
			return it.errorf(id.Pos(), "no active frame holds %s", v.Name)
		}
		if c.val.kind == val.kind && val.kind <= KindStr {
			c.val = val
		} else {
			stored, err := it.prepareStore(&c.val, val, pos)
			if err != nil {
				return err
			}
			c.val = stored
		}
		if it.trace {
			it.sink.Write(c.loc, v)
		}
		return nil
	}
	addr, base, partial, err := it.lvalue(lhs)
	if err != nil {
		return err
	}
	val, err = it.prepareStore(addr, val, pos)
	if err != nil {
		return err
	}
	if partial && it.trace {
		// Partial update: the new whole-variable value also depends on
		// the old one.
		it.sink.Read(base.loc, it.baseVar(lhs))
	}
	*addr = val
	if it.trace {
		it.sink.Write(base.loc, it.baseVar(lhs))
	}
	return nil
}

// prepareStore adapts val for storage into the slot at dst: integers
// coerce into real targets, array displays are refitted to the target's
// bounds, and composite values are deep-copied so the slot never aliases
// the source.
func (it *Interp) prepareStore(dst *Value, val Value, pos token.Pos) (Value, error) {
	if dst.kind == KindReal && val.kind == KindInt {
		return RealV(float64(val.num)), nil
	}
	if val.kind == KindArray {
		// Array display into array target: fill from the low bound.
		if target, ok := dst.AsArray(); ok {
			src := val.arr()
			if src.Lo != target.Lo || src.Hi != target.Hi {
				if int64(len(src.Elems)) > int64(len(target.Elems)) {
					return Undef, it.errorf(pos, "array value of %d elements does not fit target of %d", len(src.Elems), len(target.Elems))
				}
				fresh := &ArrayVal{Lo: target.Lo, Hi: target.Hi, Elems: make([]Value, len(target.Elems))}
				for i := range fresh.Elems {
					if i < len(src.Elems) {
						fresh.Elems[i] = CopyValue(src.Elems[i])
					} else {
						fresh.Elems[i] = zeroLike(target.Elems[i])
					}
				}
				return ArrV(fresh), nil
			}
		}
	}
	return CopyValue(val), nil
}

func zeroLike(v Value) Value {
	switch v.kind {
	case KindReal:
		return RealV(0)
	case KindBool:
		return BoolV(false)
	case KindStr:
		return StrV("")
	case KindArray, KindRecord:
		return CopyValue(v) // keep shape; contents already zeroed at alloc
	}
	return IntV(0)
}

func (it *Interp) baseVar(e ast.Expr) *sem.VarSym {
	return it.info.VarOf(e)
}

// lvalue resolves a designator to the address of its storage slot, the
// base cell (whole-variable location for events) and whether the slot is
// a proper part of the base (partial update).
func (it *Interp) lvalue(e ast.Expr) (addr *Value, base *cell, partial bool, err error) {
	switch e := e.(type) {
	case *ast.Ident:
		sym := it.info.UseOf(e)
		v, ok := sym.(*sem.VarSym)
		if !ok {
			return nil, nil, false, it.errorf(e.Pos(), "%s is not a variable", e.Name)
		}
		c, err := it.lookupCell(v, e.Pos())
		if err != nil {
			return nil, nil, false, err
		}
		return &c.val, c, false, nil
	case *ast.IndexExpr:
		addr, base, _, err := it.lvalue(e.X)
		if err != nil {
			return nil, nil, false, err
		}
		for _, ie := range e.Indices {
			iv, err := it.evalInt(ie)
			if err != nil {
				return nil, nil, false, err
			}
			arr, ok := addr.AsArray()
			if !ok {
				return nil, nil, false, it.errorf(e.Pos(), "indexing non-array value")
			}
			addr, err = arr.At(iv)
			if err != nil {
				return nil, nil, false, it.errorf(ie.Pos(), "%v", err)
			}
		}
		return addr, base, true, nil
	case *ast.FieldExpr:
		addr, base, _, err := it.lvalue(e.X)
		if err != nil {
			return nil, nil, false, err
		}
		rec, ok := addr.AsRecord()
		if !ok {
			return nil, nil, false, it.errorf(e.Pos(), "selecting field of non-record value")
		}
		fa, ferr := rec.FieldAddr(e.Field)
		if ferr != nil {
			return nil, nil, false, it.errorf(e.Pos(), "%v", ferr)
		}
		return fa, base, true, nil
	}
	return nil, nil, false, it.errorf(e.Pos(), "expression is not assignable")
}

func (it *Interp) execFor(s *ast.ForStmt) (*control, error) {
	from, err := it.evalInt(s.From)
	if err != nil {
		return nil, err
	}
	limit, err := it.evalInt(s.Limit)
	if err != nil {
		return nil, err
	}
	// The control variable is a whole scalar variable (sem checks this),
	// so its cell is resolved once and written directly per iteration.
	var lc *cell
	var lv *sem.VarSym
	if v, ok := it.info.UseOf(s.Var).(*sem.VarSym); ok {
		lv = v
		lc = it.cellOf(v)
	}
	setVar := func(i int64) error {
		if lc != nil {
			lc.val = IntV(i)
			if it.trace {
				it.sink.Write(lc.loc, lv)
			}
			return nil
		}
		return it.assignTo(s.Var, IntV(i), s.Pos())
	}
	if err := setVar(from); err != nil {
		return nil, err
	}
	for i := from; ; {
		if s.Down && i < limit || !s.Down && i > limit {
			return nil, nil
		}
		if err := setVar(i); err != nil {
			return nil, err
		}
		ctrl, err := it.execStmt(s.Body)
		if ctrl != nil || err != nil {
			return ctrl, err
		}
		if s.Down {
			i--
		} else {
			i++
		}
	}
}

func (it *Interp) execCase(s *ast.CaseStmt) (*control, error) {
	sel, err := it.evalExpr(s.Expr)
	if err != nil {
		return nil, err
	}
	for _, arm := range s.Arms {
		for _, ce := range arm.Consts {
			cv, err := it.evalExpr(ce)
			if err != nil {
				return nil, err
			}
			if ValuesEqual(sel, cv) {
				return it.execStmt(arm.Body)
			}
		}
	}
	if s.Else != nil {
		return it.execStmt(s.Else)
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// Calls

func (it *Interp) execCallStmt(s *ast.CallStmt) (*control, error) {
	if b := it.info.BuiltinAt(s.UID, s); b != nil {
		return nil, it.execBuiltinProc(b, s)
	}
	target := it.info.CallAt(s.UID, s)
	if target == nil {
		return nil, it.errorf(s.Pos(), "call to unresolved routine %s", s.Name)
	}
	_, ctrl, err := it.call(target, s, s.Args, s.Pos())
	return ctrl, err
}

// call invokes a user routine and returns its result value (functions),
// a pending goto control (global gotos unwinding through the call) and
// an error.
func (it *Interp) call(target *sem.Routine, site ast.Node, args []ast.Expr, pos token.Pos) (Value, *control, error) {
	if it.depth >= it.cfg.MaxDepth {
		err := it.errorf(pos, "call depth budget exhausted (%d); runaway recursion?", it.cfg.MaxDepth)
		err.(*RuntimeError).Cause = ErrDepthExhausted
		return Undef, nil, err
	}
	if len(args) != len(target.Params) {
		return Undef, nil, it.errorf(pos, "%s expects %d arguments, got %d", target.Name, len(target.Params), len(args))
	}

	// Locate the static link: the active frame of the routine lexically
	// enclosing the target, reached by walking exactly
	// (current level − parent level) static links.
	static := it.frame
	if parent := target.Parent; parent != nil {
		for d := static.level - parent.Level; d > 0 && static != nil; d-- {
			static = static.static
		}
		if static == nil || static.routine != parent {
			return Undef, nil, it.errorf(pos, "no enclosing frame for %s", target.Name)
		}
	} else {
		return Undef, nil, it.errorf(pos, "no enclosing frame for %s", target.Name)
	}

	nf := it.newFrame(target, static, it.frame)
	it.calls++
	var ci *CallInfo
	if it.trace {
		ci = &CallInfo{
			ID:        it.nextID,
			Routine:   target,
			CallSite:  site,
			Depth:     it.depth + 1,
			ArgLocs:   make([]Loc, len(args)),
			ParamLocs: make([]Loc, len(target.Params)),
		}
		it.nextID++
	}

	// Bind parameters (argument evaluation happens in the caller frame).
	for i, p := range target.Params {
		a := args[i]
		if p.Mode == ast.Value {
			av, err := it.evalExpr(a)
			if err != nil {
				it.freeFrame(nf)
				return Undef, nil, err
			}
			// Array displays adapt to the parameter's array type.
			if at, ok := p.Type.(*types.Array); ok {
				if src, ok := av.AsArray(); ok && (src.Lo != at.Lo || src.Hi != at.Hi) {
					adapted := NewArray(at)
					if int64(len(src.Elems)) > int64(len(adapted.Elems)) {
						it.freeFrame(nf)
						return Undef, nil, it.errorf(a.Pos(), "array argument of %d elements does not fit %s", len(src.Elems), at)
					}
					for j, e := range src.Elems {
						adapted.Elems[j] = CopyValue(e)
					}
					av = ArrV(adapted)
				}
			}
			c := nf.slots[p.Slot]
			c.val = CopyValue(av)
			if ci != nil {
				ci.Ins = append(ci.Ins, Binding{Name: p.Name, Mode: p.Mode, Value: CopyValue(av), Sym: p})
				if bv := it.info.VarOf(a); bv != nil {
					if bc := it.cellOf(bv); bc != nil {
						ci.ArgLocs[i] = bc.loc
					}
				}
				ci.ParamLocs[i] = c.loc
			}
			continue
		}
		// var / out: bind the formal to the argument's base cell. The
		// argument must be a whole-variable designator for aliasing to
		// be sound at our location granularity; element designators
		// alias the whole base variable (conservative, documented).
		addr, base, partialSlot, err := it.lvalue(a)
		if err != nil {
			it.freeFrame(nf)
			return Undef, nil, err
		}
		if partialSlot {
			// Alias the element slot but account events to the base.
			// Formals alias *addr via a forwarding cell; the deferred
			// writeback propagates the final value to the element.
			bound := &cell{loc: base.loc, val: *addr}
			nf.slots[p.Slot] = bound
			defer func(slot *Value, c *cell) { *slot = c.val }(addr, bound)
		} else {
			nf.slots[p.Slot] = base
		}
		if ci != nil {
			ci.Ins = append(ci.Ins, Binding{Name: p.Name, Mode: p.Mode, Value: CopyValue(*addr), Sym: p})
			ci.ArgLocs[i] = base.loc
			ci.ParamLocs[i] = base.loc
		}
	}

	// Locals and function result.
	for _, v := range target.Locals {
		nf.zeroSlot(v)
	}
	var resultCell *cell
	if target.Result != nil {
		resultCell = nf.slots[target.Result.Slot]
		resultCell.val = ZeroValue(target.Result.Type)
		if ci != nil {
			ci.ResultLoc = resultCell.loc
		}
	}

	// Execute the body.
	prev := it.frame
	it.frame = nf
	it.depth++
	if it.depth > it.maxDepth {
		it.maxDepth = it.depth
	}
	if ci != nil {
		it.sink.EnterCall(ci)
	}

	ctrl, err := it.execStmt(target.Block.Body)

	// A pending goto that targets this routine but was not resolved by
	// any list is an error (jump into structure).
	if err == nil && ctrl != nil && ctrl.target == target {
		err = it.errorf(pos, "goto %s in %s did not reach its label", ctrl.label, target.Name)
		ctrl = nil
	}

	if ci != nil {
		// Snapshot outputs.
		for _, p := range target.Params {
			if p.Mode == ast.Value {
				continue
			}
			c := nf.slots[p.Slot]
			ci.Outs = append(ci.Outs, Binding{Name: p.Name, Mode: p.Mode, Value: CopyValue(c.val), Sym: p})
		}
		if resultCell != nil {
			ci.Result = CopyValue(resultCell.val)
		}
		it.sink.ExitCall(ci)
	}
	it.depth--
	it.frame = prev
	var result Value
	var resultLoc Loc
	if resultCell != nil {
		result = resultCell.val
		resultLoc = resultCell.loc
	}
	it.freeFrame(nf)
	if err != nil {
		return Undef, nil, err
	}
	if resultCell != nil && it.trace {
		it.sink.Read(resultLoc, target.Result)
	}
	return result, ctrl, nil
}

// ---------------------------------------------------------------------------
// Builtins

func (it *Interp) execBuiltinProc(b *sem.Builtin, s *ast.CallStmt) error {
	switch b.Code {
	case sem.BuiltinWrite, sem.BuiltinWriteln:
		var parts []string
		for _, a := range s.Args {
			v, err := it.evalExpr(a)
			if err != nil {
				return err
			}
			parts = append(parts, formatForOutput(v))
		}
		line := strings.Join(parts, " ")
		if b.Code == sem.BuiltinWriteln {
			line += "\n"
		}
		if _, err := io.WriteString(it.out, line); err != nil {
			return it.errorf(s.Pos(), "write failed: %v", err)
		}
		return nil
	case sem.BuiltinRead, sem.BuiltinReadln:
		for _, a := range s.Args {
			tok, err := it.readToken()
			if err != nil {
				return it.errorf(a.Pos(), "read: %v", err)
			}
			t := it.info.TypeOf[a]
			var v Value
			switch {
			case t != nil && t.Equal(types.RealT):
				f, perr := strconv.ParseFloat(tok, 64)
				if perr != nil {
					return it.errorf(a.Pos(), "read: %q is not a real", tok)
				}
				v = RealV(f)
			case t != nil && t.Equal(types.String):
				v = StrV(tok)
			case t != nil && t.Equal(types.Boolean):
				switch strings.ToLower(tok) {
				case "true":
					v = BoolV(true)
				case "false":
					v = BoolV(false)
				default:
					return it.errorf(a.Pos(), "read: %q is not a boolean", tok)
				}
			default:
				n, perr := strconv.ParseInt(tok, 10, 64)
				if perr != nil {
					return it.errorf(a.Pos(), "read: %q is not an integer", tok)
				}
				v = IntV(n)
			}
			if err := it.assignTo(a, v, a.Pos()); err != nil {
				return err
			}
		}
		return nil
	}
	return it.errorf(s.Pos(), "builtin %s cannot be called as a procedure", b.Name)
}

func formatForOutput(v Value) string {
	if s, ok := v.AsStr(); ok {
		return s // no quotes on program output
	}
	return FormatValue(v)
}

func (it *Interp) readToken() (string, error) {
	if it.in == nil {
		return "", fmt.Errorf("no input available")
	}
	var b strings.Builder
	// Skip whitespace.
	for {
		ch, err := it.in.ReadByte()
		if err != nil {
			return "", fmt.Errorf("end of input")
		}
		if ch == ' ' || ch == '\n' || ch == '\t' || ch == '\r' {
			continue
		}
		b.WriteByte(ch)
		break
	}
	for {
		ch, err := it.in.ReadByte()
		if err != nil {
			break
		}
		if ch == ' ' || ch == '\n' || ch == '\t' || ch == '\r' {
			break
		}
		b.WriteByte(ch)
	}
	return b.String(), nil
}

func (it *Interp) evalBuiltinFunc(b *sem.Builtin, e *ast.CallExpr) (Value, error) {
	if len(e.Args) != 1 {
		return Undef, it.errorf(e.Pos(), "%s expects 1 argument", b.Name)
	}
	v, err := it.evalExpr(e.Args[0])
	if err != nil {
		return Undef, err
	}
	switch b.Code {
	case sem.BuiltinAbs:
		switch v.kind {
		case KindInt:
			if v.num < 0 {
				return IntV(-v.num), nil
			}
			return v, nil
		case KindReal:
			if f := v.realv(); f < 0 {
				return RealV(-f), nil
			}
			return v, nil
		}
	case sem.BuiltinSqr:
		switch v.kind {
		case KindInt:
			return IntV(v.num * v.num), nil
		case KindReal:
			f := v.realv()
			return RealV(f * f), nil
		}
	case sem.BuiltinOdd:
		if v.kind == KindInt {
			return BoolV(v.num%2 != 0), nil
		}
	case sem.BuiltinTrunc:
		switch v.kind {
		case KindInt:
			return v, nil
		case KindReal:
			return IntV(int64(v.realv())), nil
		}
	case sem.BuiltinRound:
		switch v.kind {
		case KindInt:
			return v, nil
		case KindReal:
			f := v.realv()
			if f >= 0 {
				return IntV(int64(f + 0.5)), nil
			}
			return IntV(int64(f - 0.5)), nil
		}
	}
	return Undef, it.errorf(e.Pos(), "invalid argument to %s", b.Name)
}

// ---------------------------------------------------------------------------
// Expressions

func (it *Interp) evalBool(e ast.Expr) (bool, error) {
	v, err := it.evalExpr(e)
	if err != nil {
		return false, err
	}
	if v.kind != KindBool {
		return false, it.errorf(e.Pos(), "boolean expected, have %s", FormatValue(v))
	}
	return v.boolv(), nil
}

func (it *Interp) evalInt(e ast.Expr) (int64, error) {
	v, err := it.evalExpr(e)
	if err != nil {
		return 0, err
	}
	if v.kind != KindInt {
		return 0, it.errorf(e.Pos(), "integer expected, have %s", FormatValue(v))
	}
	return v.num, nil
}

func (it *Interp) evalExpr(e ast.Expr) (Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return IntV(e.Value), nil
	case *ast.RealLit:
		return RealV(e.Value), nil
	case *ast.StringLit:
		return StrV(e.Value), nil
	case *ast.Ident:
		switch sym := it.info.UseOf(e).(type) {
		case *sem.VarSym:
			c, err := it.lookupCell(sym, e.Pos())
			if err != nil {
				return Undef, err
			}
			if it.trace {
				it.sink.Read(c.loc, sym)
			}
			return c.val, nil
		case *sem.ConstSym:
			return constToValue(sym.Value), nil
		}
		// Parameterless function call.
		if target := it.info.CallAt(e.UID, e); target != nil {
			v, ctrl, err := it.call(target, e, nil, e.Pos())
			if err != nil {
				return Undef, err
			}
			if ctrl != nil {
				return Undef, it.errorf(e.Pos(), "goto %s escaped function %s", ctrl.label, target.Name)
			}
			return v, nil
		}
		return Undef, it.errorf(e.Pos(), "unresolved identifier %s", e.Name)
	case *ast.BinaryExpr:
		return it.evalBinary(e)
	case *ast.UnaryExpr:
		v, err := it.evalExpr(e.X)
		if err != nil {
			return Undef, err
		}
		switch e.Op {
		case token.Minus:
			switch v.kind {
			case KindInt:
				return IntV(-v.num), nil
			case KindReal:
				return RealV(-v.realv()), nil
			}
		case token.Plus:
			return v, nil
		case token.Not:
			if v.kind == KindBool {
				return BoolV(!v.boolv()), nil
			}
		}
		return Undef, it.errorf(e.Pos(), "invalid unary operand %s", FormatValue(v))
	case *ast.IndexExpr:
		addr, base, _, err := it.lvalue(e)
		if err != nil {
			return Undef, err
		}
		if it.trace {
			it.sink.Read(base.loc, it.baseVar(e))
		}
		return *addr, nil
	case *ast.FieldExpr:
		addr, base, _, err := it.lvalue(e)
		if err != nil {
			return Undef, err
		}
		if it.trace {
			it.sink.Read(base.loc, it.baseVar(e))
		}
		return *addr, nil
	case *ast.CallExpr:
		if b := it.info.BuiltinAt(e.UID, e); b != nil {
			return it.evalBuiltinFunc(b, e)
		}
		target := it.info.CallAt(e.UID, e)
		if target == nil {
			return Undef, it.errorf(e.Pos(), "call to unresolved function %s", e.Name)
		}
		v, ctrl, err := it.call(target, e, e.Args, e.Pos())
		if err != nil {
			return Undef, err
		}
		if ctrl != nil {
			return Undef, it.errorf(e.Pos(), "goto %s escaped function %s", ctrl.label, target.Name)
		}
		return v, nil
	case *ast.SetLit:
		t, _ := it.info.TypeOf[e].(*types.Array)
		var arr *ArrayVal
		if t != nil {
			arr = NewArray(t)
		} else {
			arr = &ArrayVal{Lo: 1, Hi: int64(len(e.Elems)), Elems: make([]Value, len(e.Elems))}
		}
		for i, el := range e.Elems {
			v, err := it.evalExpr(el)
			if err != nil {
				return Undef, err
			}
			if i >= len(arr.Elems) {
				return Undef, it.errorf(el.Pos(), "array display longer than target array")
			}
			arr.Elems[i] = CopyValue(v)
		}
		return ArrV(arr), nil
	}
	return Undef, it.errorf(e.Pos(), "cannot evaluate %T", e)
}

func constToValue(v any) Value {
	switch v := v.(type) {
	case int64:
		return IntV(v)
	case float64:
		return RealV(v)
	case bool:
		return BoolV(v)
	case string:
		return StrV(v)
	}
	return IntV(0)
}

func (it *Interp) evalBinary(e *ast.BinaryExpr) (Value, error) {
	x, err := it.evalExpr(e.X)
	if err != nil {
		return Undef, err
	}
	// No short-circuit: ISO Pascal leaves evaluation order unspecified;
	// classic compilers evaluate both operands, and the paper's subject
	// programs rely on nothing else.
	y, err := it.evalExpr(e.Y)
	if err != nil {
		return Undef, err
	}
	// Integer-integer fast path: the overwhelmingly common case in the
	// paper's subject programs; dispatch inline without re-checking kinds
	// per operator or copying operands into helper calls.
	if x.kind == KindInt && y.kind == KindInt {
		a, b := x.num, y.num
		switch e.Op {
		case token.Plus:
			return IntV(a + b), nil
		case token.Minus:
			return IntV(a - b), nil
		case token.Star:
			return IntV(a * b), nil
		case token.Div:
			if b == 0 {
				return Undef, it.errorf(e.Pos(), "division by zero")
			}
			return IntV(a / b), nil
		case token.Mod:
			if b == 0 {
				return Undef, it.errorf(e.Pos(), "division by zero")
			}
			return IntV(a % b), nil
		case token.Slash:
			if b == 0 {
				return Undef, it.errorf(e.Pos(), "division by zero")
			}
			return RealV(float64(a) / float64(b)), nil
		case token.Eq:
			return BoolV(a == b), nil
		case token.NotEq:
			return BoolV(a != b), nil
		case token.Less:
			return BoolV(a < b), nil
		case token.LessEq:
			return BoolV(a <= b), nil
		case token.Greater:
			return BoolV(a > b), nil
		case token.GreatEq:
			return BoolV(a >= b), nil
		}
	}
	switch e.Op {
	case token.And:
		if x.kind == KindBool && y.kind == KindBool {
			return BoolV(x.boolv() && y.boolv()), nil
		}
	case token.Or:
		if x.kind == KindBool && y.kind == KindBool {
			return BoolV(x.boolv() || y.boolv()), nil
		}
	case token.Plus, token.Minus, token.Star, token.Slash:
		return it.arith(e, x, y)
	case token.Div, token.Mod:
		if x.kind == KindInt && y.kind == KindInt {
			if y.num == 0 {
				return Undef, it.errorf(e.Pos(), "division by zero")
			}
			if e.Op == token.Div {
				return IntV(x.num / y.num), nil
			}
			return IntV(x.num % y.num), nil
		}
	case token.Eq:
		return BoolV(ValuesEqual(x, y)), nil
	case token.NotEq:
		return BoolV(!ValuesEqual(x, y)), nil
	case token.Less, token.LessEq, token.Greater, token.GreatEq:
		return it.compare(e, x, y)
	}
	return Undef, it.errorf(e.Pos(), "invalid operands %s %s %s", FormatValue(x), e.Op, FormatValue(y))
}

func (it *Interp) arith(e *ast.BinaryExpr, x, y Value) (Value, error) {
	if x.kind == KindInt && y.kind == KindInt {
		switch e.Op {
		case token.Plus:
			return IntV(x.num + y.num), nil
		case token.Minus:
			return IntV(x.num - y.num), nil
		case token.Star:
			return IntV(x.num * y.num), nil
		case token.Slash:
			if y.num == 0 {
				return Undef, it.errorf(e.Pos(), "division by zero")
			}
			return RealV(float64(x.num) / float64(y.num)), nil
		}
	}
	if x.numeric() && y.numeric() {
		xf, yf := x.asFloat(), y.asFloat()
		switch e.Op {
		case token.Plus:
			return RealV(xf + yf), nil
		case token.Minus:
			return RealV(xf - yf), nil
		case token.Star:
			return RealV(xf * yf), nil
		case token.Slash:
			if yf == 0 {
				return Undef, it.errorf(e.Pos(), "division by zero")
			}
			return RealV(xf / yf), nil
		}
	}
	// String concatenation with + (common Pascal dialect extension).
	if x.kind == KindStr && y.kind == KindStr && e.Op == token.Plus {
		return StrV(x.strv() + y.strv()), nil
	}
	return Undef, it.errorf(e.Pos(), "invalid operands %s %s %s", FormatValue(x), e.Op, FormatValue(y))
}

func (it *Interp) compare(e *ast.BinaryExpr, x, y Value) (Value, error) {
	if x.kind == KindStr && y.kind == KindStr {
		xs, ys := x.strv(), y.strv()
		switch e.Op {
		case token.Less:
			return BoolV(xs < ys), nil
		case token.LessEq:
			return BoolV(xs <= ys), nil
		case token.Greater:
			return BoolV(xs > ys), nil
		case token.GreatEq:
			return BoolV(xs >= ys), nil
		}
	}
	if x.kind == KindInt && y.kind == KindInt {
		switch e.Op {
		case token.Less:
			return BoolV(x.num < y.num), nil
		case token.LessEq:
			return BoolV(x.num <= y.num), nil
		case token.Greater:
			return BoolV(x.num > y.num), nil
		case token.GreatEq:
			return BoolV(x.num >= y.num), nil
		}
	}
	if x.numeric() && y.numeric() {
		xf, yf := x.asFloat(), y.asFloat()
		switch e.Op {
		case token.Less:
			return BoolV(xf < yf), nil
		case token.LessEq:
			return BoolV(xf <= yf), nil
		case token.Greater:
			return BoolV(xf > yf), nil
		case token.GreatEq:
			return BoolV(xf >= yf), nil
		}
	}
	return Undef, it.errorf(e.Pos(), "cannot order %s against %s", FormatValue(x), FormatValue(y))
}

// Steps reports the number of statements executed so far.
func (it *Interp) Steps() int { return it.steps }

// Globals snapshots the program-level variables after (or during) a run,
// in declaration order. The differential harness compares these
// snapshots across transformation pipelines: the transformation phase
// may add fresh program-level variables but must not change the final
// value of any original one. Values are deep copies.
func (it *Interp) Globals() []Binding {
	main := it.info.Main
	f := it.frame
	for f != nil && f.routine != main {
		f = f.static
	}
	if f == nil {
		return nil
	}
	var out []Binding
	for _, v := range main.Locals {
		if v.Slot >= len(f.slots) {
			continue
		}
		c := f.slots[v.Slot]
		out = append(out, Binding{Name: v.Name, Value: CopyValue(c.val), Sym: v})
	}
	return out
}
