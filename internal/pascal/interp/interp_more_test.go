package interp_test

import (
	"strings"
	"testing"
)

func TestReadBooleanAndString(t *testing.T) {
	got := runOut(t, `
program t;
var b: boolean; s: string; r: real;
begin
  read(b, s, r);
  writeln(b, s, r);
end.`, "TRUE hello 2.5")
	if got != "true hello 2.5\n" {
		t.Errorf("output = %q", got)
	}
}

func TestWriteVsWriteln(t *testing.T) {
	got := runOut(t, `
program t;
begin
  write('a');
  write('b');
  writeln('c');
  writeln('d');
end.`, "")
	if got != "abc\nd\n" { // spaces only between args of one call
		t.Errorf("output = %q", got)
	}
}

func TestNestedFunctionResultViaOuterScope(t *testing.T) {
	// Assignment to the enclosing function's name from a nested routine
	// sets the outer result (classic Pascal).
	got := runOut(t, `
program t;
var x: integer;
function outer(n: integer): integer;
  procedure setres;
  begin
    outer := n * 10;
  end;
begin
  setres;
end;
begin
  x := outer(7);
  writeln(x);
end.`, "")
	if got != "70\n" {
		t.Errorf("output = %q, want 70", got)
	}
}

func TestMultiDimensionalArrays(t *testing.T) {
	got := runOut(t, `
program t;
type mat = array [1 .. 2] of array [1 .. 2] of integer;
var m: mat;
begin
  m[1][1] := 1;
  m[1, 2] := 2;
  m[2][1] := 3;
  m[2, 2] := 4;
  writeln(m[1][1] + m[1, 2] + m[2, 1] + m[2][2]);
end.`, "")
	if got != "10\n" {
		t.Errorf("output = %q", got)
	}
}

func TestRecordInArray(t *testing.T) {
	got := runOut(t, `
program t;
type
  point = record x, y: integer end;
  points = array [1 .. 2] of point;
var
  ps: points;
begin
  ps[1].x := 10;
  ps[2].y := 20;
  writeln(ps[1].x + ps[2].y, ps[1].y);
end.`, "")
	if got != "30 0\n" {
		t.Errorf("output = %q", got)
	}
}

func TestWholeArrayAssignmentCopies(t *testing.T) {
	got := runOut(t, `
program t;
type arr = array [1 .. 2] of integer;
var a, b: arr;
begin
  a[1] := 7;
  b := a;
  a[1] := 9;
  writeln(b[1], a[1]);
end.`, "")
	if got != "7 9\n" {
		t.Errorf("output = %q (array assignment must deep-copy)", got)
	}
}

func TestGotoOutOfIfIntoSameList(t *testing.T) {
	got := runOut(t, `
program t;
label 5;
var x: integer;
begin
  x := 1;
  if x = 1 then goto 5;
  x := 99;
  5: writeln(x);
end.`, "")
	if got != "1\n" {
		t.Errorf("output = %q", got)
	}
}

func TestCaseNoMatchNoElse(t *testing.T) {
	got := runOut(t, `
program t;
var x, y: integer;
begin
  x := 42;
  y := 7;
  case x of
    1: y := 1;
  end;
  writeln(y);
end.`, "")
	if got != "7\n" {
		t.Errorf("output = %q (unmatched case must fall through)", got)
	}
}

func TestStringComparisonOps(t *testing.T) {
	got := runOut(t, `
program t;
begin
  writeln('abc' = 'abc', 'abc' <> 'abd', 'abc' <= 'abd', 'b' >= 'a');
end.`, "")
	if got != "true true true true\n" {
		t.Errorf("output = %q", got)
	}
}

func TestMixedIntRealComparison(t *testing.T) {
	got := runOut(t, `
program t;
var r: real;
begin
  r := 2.5;
  writeln(r > 2, 2 = 2.0, r <= 3);
end.`, "")
	if got != "true true true\n" {
		t.Errorf("output = %q", got)
	}
}

func TestVarParamRecordField(t *testing.T) {
	got := runOut(t, `
program t;
type point = record x, y: integer end;
var p: point;
procedure set10(var n: integer);
begin
  n := 10;
end;
begin
  set10(p.x);
  writeln(p.x, p.y);
end.`, "")
	if got != "10 0\n" {
		t.Errorf("output = %q", got)
	}
}

func TestSlashAlwaysReal(t *testing.T) {
	got := runOut(t, `
program t;
var r: real;
begin
  r := 6 / 3;
  writeln(r);
end.`, "")
	if got != "2.0\n" {
		t.Errorf("output = %q (/ yields real)", got)
	}
}

func TestDeepRecursionWithinBudget(t *testing.T) {
	got := runOut(t, `
program t;
function depth(n: integer): integer;
begin
  if n = 0 then depth := 0 else depth := 1 + depth(n - 1);
end;
begin
  writeln(depth(500));
end.`, "")
	if got != "500\n" {
		t.Errorf("output = %q", got)
	}
}

func TestRuntimeErrorHasStack(t *testing.T) {
	_, err := tryRun(t, `
program t;
procedure inner;
var x: integer;
begin
  x := 1 div 0;
end;
procedure outer;
begin
  inner;
end;
begin
  outer;
end.`, "", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestNegativeDivMod(t *testing.T) {
	// Go semantics: -7 div 2 = -3, -7 mod 2 = -1 (truncated division,
	// like most Pascal implementations).
	got := runOut(t, `
program t;
begin
  writeln(-7 div 2, -7 mod 2, 7 div -2, 7 mod -2);
end.`, "")
	if got != "-3 -1 -3 1\n" {
		t.Errorf("output = %q", got)
	}
}

func TestUnaryPlusMinus(t *testing.T) {
	got := runOut(t, `
program t;
var x: integer; r: real;
begin
  x := -5;
  r := -2.5;
  writeln(-x, +x, -r);
end.`, "")
	if got != "5 -5 2.5\n" {
		t.Errorf("output = %q", got)
	}
}

func TestBooleanOperators(t *testing.T) {
	got := runOut(t, `
program t;
var a, b: boolean;
begin
  a := true;
  b := false;
  writeln(a and b, a or b, not a, not b);
end.`, "")
	if got != "false true false true\n" {
		t.Errorf("output = %q", got)
	}
}
