package interp

import (
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/sem"
)

// CallUnit invokes a single routine with the given argument values,
// outside any program run: lexical ancestor frames are fabricated with
// zero-initialized slots so that name resolution works. This supports
// the debugger's intended-semantics oracle, which re-executes a unit of
// a reference implementation on a recorded call's inputs. It is only
// meaningful for routines that do not read their enclosing scopes (in
// particular, any routine of a transformed program).
//
// An Undef argument leaves the parameter at its type's zero value.
//
// The returned CallInfo carries the input snapshot, the var/out outputs
// and the function result, exactly as a traced call would.
func (it *Interp) CallUnit(target *sem.Routine, args []Value) (*CallInfo, error) {
	if len(args) != len(target.Params) {
		return nil, &RuntimeError{Msg: "CallUnit: argument count mismatch"}
	}
	// Fabricate the static chain root → target.Parent.
	var chain []*sem.Routine
	for r := target.Parent; r != nil; r = r.Parent {
		chain = append([]*sem.Routine{r}, chain...)
	}
	var f *frame
	frames := make([]*frame, 0, len(chain)+1)
	for _, r := range chain {
		nf := it.newFrame(r, f, f)
		for _, v := range r.Frame.Vars {
			nf.zeroSlot(v)
		}
		frames = append(frames, nf)
		f = nf
	}

	nf := it.newFrame(target, f, f)
	frames = append(frames, nf)
	ci := &CallInfo{
		ID:        it.nextID,
		Routine:   target,
		Depth:     1,
		ArgLocs:   make([]Loc, len(args)),
		ParamLocs: make([]Loc, len(args)),
	}
	it.nextID++
	it.calls++
	for i, p := range target.Params {
		c := nf.slots[p.Slot]
		if args[i].IsUndef() {
			c.val = ZeroValue(p.Type)
		} else {
			c.val = CopyValue(args[i])
		}
		ci.ParamLocs[i] = c.loc
		ci.Ins = append(ci.Ins, Binding{Name: p.Name, Mode: p.Mode, Value: CopyValue(c.val), Sym: p})
	}
	for _, v := range target.Locals {
		nf.zeroSlot(v)
	}
	var resultCell *cell
	if target.Result != nil {
		resultCell = nf.slots[target.Result.Slot]
		resultCell.val = ZeroValue(target.Result.Type)
		ci.ResultLoc = resultCell.loc
	}

	prev, prevDepth := it.frame, it.depth
	it.frame, it.depth = nf, 1
	if it.depth > it.maxDepth {
		it.maxDepth = it.depth
	}
	defer it.recordMetrics()
	it.sink.EnterCall(ci)
	ctrl, err := it.execStmt(target.Block.Body)
	for _, p := range target.Params {
		if p.Mode == ast.Value {
			continue
		}
		ci.Outs = append(ci.Outs, Binding{Name: p.Name, Mode: p.Mode, Value: CopyValue(nf.slots[p.Slot].val), Sym: p})
	}
	if resultCell != nil {
		ci.Result = CopyValue(resultCell.val)
	}
	it.sink.ExitCall(ci)
	it.frame, it.depth = prev, prevDepth
	for i := len(frames) - 1; i >= 0; i-- {
		it.freeFrame(frames[i])
	}
	if err != nil {
		return ci, err
	}
	if ctrl != nil {
		return ci, &RuntimeError{Msg: "CallUnit: goto escaped the unit"}
	}
	return ci, nil
}
