package interp_test

import (
	"fmt"
	"strings"
	"testing"

	"gadt/internal/obs"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

// intLoopSrc is a tight integer-assignment loop: every statement in the
// body only touches integer slots, so a full iteration must allocate
// nothing under the unboxed value representation.
func intLoopSrc(n int) string {
	return fmt.Sprintf(`program tight;
var i, acc, tmp: integer;
begin
  acc := 0;
  i := 0;
  while i < %d do
  begin
    tmp := i * 3 + acc mod 7;
    acc := acc + tmp - i div 2;
    i := i + 1
  end;
  writeln(acc)
end.`, n)
}

// slotAccessSrc exercises slot access across the static chain: a nested
// procedure reads and writes its enclosing routine's locals, called once
// per loop iteration. After the first call warms the frame free list,
// iterations must allocate nothing.
func slotAccessSrc(n int) string {
	return fmt.Sprintf(`program slots;
var i, acc: integer;
procedure outer;
var a, b: integer;
  procedure inner;
  begin
    a := a + i;
    b := b + a
  end;
begin
  a := 1;
  b := 2;
  inner;
  acc := acc + b
end;
begin
  acc := 0;
  i := 0;
  while i < %d do
  begin
    outer;
    i := i + 1
  end;
  writeln(acc)
end.`, n)
}

// allocsForRun measures one full analyze-free run (interp.New + Run) of
// the given program; metrics, when non-nil, attaches the observability
// registry to every run.
func allocsForRun(t *testing.T, src string, metrics *obs.Registry) float64 {
	t.Helper()
	prog, err := parser.ParseProgram("t.pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return testing.AllocsPerRun(10, func() {
		var out strings.Builder
		it := interp.New(info, interp.Config{Output: &out, Metrics: metrics})
		if err := it.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
}

// assertZeroAllocsPerIteration runs the program at two iteration counts
// and requires the per-run allocation totals to be identical: the fixed
// setup cost (interpreter, frames, output) cancels out, so any
// difference is a per-iteration allocation on the hot path.
func assertZeroAllocsPerIteration(t *testing.T, gen func(int) string, metrics *obs.Registry) {
	t.Helper()
	const n = 2000
	base := allocsForRun(t, gen(n), metrics)
	double := allocsForRun(t, gen(2*n), metrics)
	if double > base {
		t.Errorf("hot path allocates: %.0f allocs at %d iterations vs %.0f at %d (%.3f allocs/iteration, want 0)",
			double, 2*n, base, n, (double-base)/n)
	}
}

func TestIntLoopZeroAllocs(t *testing.T) {
	assertZeroAllocsPerIteration(t, intLoopSrc, nil)
}

func TestSlotAccessZeroAllocs(t *testing.T) {
	assertZeroAllocsPerIteration(t, slotAccessSrc, nil)
}

// TestZeroAllocsWithMetrics re-runs the zero-alloc checks with the
// observability registry attached: instrument handles are resolved once
// in New and the flush is delta-based, so instrumentation must not put
// allocations (or registry lock traffic) on the per-iteration hot path.
func TestZeroAllocsWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	assertZeroAllocsPerIteration(t, intLoopSrc, reg)
	assertZeroAllocsPerIteration(t, slotAccessSrc, reg)
	if reg.Counter("interp.statements").Value() == 0 {
		t.Error("instrumented runs recorded no statements")
	}
	if reg.Counter("interp.calls").Value() == 0 {
		t.Error("instrumented runs recorded no calls")
	}
}

// TestOutputOrderOnError pins down the error-path contract the buffered
// CLIs rely on: everything the program wrote before a runtime error has
// already reached the output writer, in statement order, when Run
// returns the error.
func TestOutputOrderOnError(t *testing.T) {
	src := `program boom;
var i: integer;
begin
  write(1);
  writeln(2);
  write(3);
  i := 0;
  writeln(5 div i);
  writeln(99)
end.`
	out, err := tryRun(t, src, "", nil)
	if err == nil {
		t.Fatal("expected a division-by-zero runtime error")
	}
	if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("error = %v, want division by zero", err)
	}
	if want := "12\n3"; out != want {
		t.Errorf("output before the error = %q, want %q (writes must be delivered in order up to the failing statement)", out, want)
	}
}

// TestDeepRecursionErrorStack checks that the call stack attached to a
// depth-exhaustion error is bounded: 32 named frames plus one summary
// line, regardless of how deep the recursion went.
func TestDeepRecursionErrorStack(t *testing.T) {
	src := `program deep;
procedure r(n: integer);
begin
  r(n + 1)
end;
begin
  r(0)
end.`
	prog, err := parser.ParseProgram("t.pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	const depth = 5000
	it := interp.New(info, interp.Config{MaxDepth: depth})
	runErr := it.Run()
	if runErr == nil {
		t.Fatal("expected a depth-exhaustion error")
	}
	re, ok := runErr.(*interp.RuntimeError)
	if !ok {
		t.Fatalf("error is %T, want *interp.RuntimeError", runErr)
	}
	if len(re.Stack) == 0 || len(re.Stack) > 33 {
		t.Fatalf("error stack has %d entries, want 1..33 (32 frames + summary)", len(re.Stack))
	}
	last := re.Stack[len(re.Stack)-1]
	if !strings.Contains(last, "more frames") {
		t.Errorf("deep stack not summarized: last entry = %q, want \"... (N more frames)\"", last)
	}
	for _, fr := range re.Stack[:len(re.Stack)-1] {
		if fr != "r" && fr != "deep" {
			t.Errorf("unexpected frame name %q in error stack", fr)
		}
	}
}
