package interp_test

import (
	"errors"
	"strings"
	"testing"

	"gadt/internal/paper"
	"gadt/internal/pascal/ast"
	"gadt/internal/pascal/interp"
	"gadt/internal/pascal/parser"
	"gadt/internal/pascal/sem"
)

func tryRun(t *testing.T, src, input string, sink interp.EventSink) (string, error) {
	t.Helper()
	prog, err := parser.ParseProgram("t.pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var out strings.Builder
	it := interp.New(info, interp.Config{Input: strings.NewReader(input), Output: &out, Sink: sink})
	runErr := it.Run()
	return out.String(), runErr
}

func runOut(t *testing.T, src, input string) string {
	t.Helper()
	prog := parser.MustParse("t.pas", src)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var out strings.Builder
	it := interp.New(info, interp.Config{Input: strings.NewReader(input), Output: &out})
	if err := it.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

func TestSqrtestOutput(t *testing.T) {
	if got := runOut(t, paper.Sqrtest, ""); got != "false\n" {
		t.Errorf("sqrtest output = %q, want false (the planted bug makes the check fail)", got)
	}
	if got := runOut(t, paper.SqrtestFixed, ""); got != "true\n" {
		t.Errorf("fixed sqrtest output = %q, want true", got)
	}
}

func TestPQROutput(t *testing.T) {
	// q: b = 5*2 = 10; buggy r: d = 7-1 = 6 (correct would be 8).
	if got := runOut(t, paper.PQR, ""); got != "10 6\n" {
		t.Errorf("pqr output = %q, want %q", got, "10 6\n")
	}
}

func TestSliceExampleBothBranches(t *testing.T) {
	if got := runOut(t, paper.SliceExample, "1 4"); got != "5 0\n" {
		t.Errorf("x<=1 branch: output = %q, want %q", got, "5 0\n")
	}
	if got := runOut(t, paper.SliceExample, "3 4 9"); got != "0 12\n" {
		t.Errorf("else branch: output = %q, want %q", got, "0 12\n")
	}
}

func TestGlobalGoto(t *testing.T) {
	// q adds 5, goto 9 skips the +100 and +1000, label 9 adds 1 → 6;
	// goto 8 skips v := -1.
	if got := runOut(t, paper.GlobalGoto, ""); got != "6\n6\n" {
		t.Errorf("output = %q, want %q", got, "6\n6\n")
	}
}

func TestLoopGoto(t *testing.T) {
	if got := runOut(t, paper.LoopGoto, ""); got != "5 15\n" {
		t.Errorf("output = %q, want %q", got, "5 15\n")
	}
}

func TestBackwardGoto(t *testing.T) {
	got := runOut(t, `
program t;
label 1;
var i: integer;
begin
  i := 0;
  1: i := i + 1;
  if i < 3 then goto 1;
  writeln(i);
end.`, "")
	if got != "3\n" {
		t.Errorf("output = %q, want 3", got)
	}
}

func TestRecursion(t *testing.T) {
	got := runOut(t, `
program t;
var x: integer;
function fact(n: integer): integer;
begin
  if n <= 1 then fact := 1
  else fact := n * fact(n - 1);
end;
begin
  x := fact(6);
  writeln(x);
end.`, "")
	if got != "720\n" {
		t.Errorf("fact(6) = %q, want 720", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	got := runOut(t, `
program t;
function isodd(n: integer): boolean;
function iseven(n: integer): boolean;
begin
  if n = 0 then iseven := true else iseven := isodd(n - 1);
end;
begin
  if n = 0 then isodd := false else isodd := iseven(n - 1);
end;
begin
  writeln(isodd(7), isodd(10));
end.`, "")
	if got != "true false\n" {
		t.Errorf("output = %q, want %q", got, "true false\n")
	}
}

func TestVarParamAliasing(t *testing.T) {
	got := runOut(t, `
program t;
var x: integer;
procedure bump(var n: integer);
begin
  n := n + 1;
end;
begin
  x := 41;
  bump(x);
  writeln(x);
end.`, "")
	if got != "42\n" {
		t.Errorf("output = %q, want 42", got)
	}
}

func TestVarParamArrayElement(t *testing.T) {
	got := runOut(t, `
program t;
type arr = array [1 .. 3] of integer;
var a: arr;
procedure setit(var n: integer);
begin
  n := 99;
end;
begin
  a[2] := 1;
  setit(a[2]);
  writeln(a[1], a[2], a[3]);
end.`, "")
	if got != "0 99 0\n" {
		t.Errorf("output = %q, want %q", got, "0 99 0\n")
	}
}

func TestValueParamIsCopied(t *testing.T) {
	got := runOut(t, `
program t;
type arr = array [1 .. 2] of integer;
var a: arr;
procedure clobber(b: arr);
begin
  b[1] := 777;
end;
begin
  a[1] := 1;
  clobber(a);
  writeln(a[1]);
end.`, "")
	if got != "1\n" {
		t.Errorf("output = %q: value array parameter leaked mutation", got)
	}
}

func TestNestedScopeAccess(t *testing.T) {
	got := runOut(t, `
program t;
var g: integer;
procedure outer;
var m: integer;
  procedure inner;
  begin
    m := m + g;
  end;
begin
  m := 5;
  inner;
  writeln(m);
end;
begin
  g := 10;
  outer;
end.`, "")
	if got != "15\n" {
		t.Errorf("output = %q, want 15", got)
	}
}

func TestForDownto(t *testing.T) {
	got := runOut(t, `
program t;
var i, s: integer;
begin
  s := 0;
  for i := 5 downto 2 do s := s * 10 + i;
  writeln(s);
end.`, "")
	if got != "5432\n" {
		t.Errorf("output = %q, want 5432", got)
	}
}

func TestForEmptyRange(t *testing.T) {
	got := runOut(t, `
program t;
var i, s: integer;
begin
  s := 0;
  for i := 3 to 2 do s := s + 1;
  writeln(s);
end.`, "")
	if got != "0\n" {
		t.Errorf("output = %q, want 0 (empty for range must not execute)", got)
	}
}

func TestRepeatRunsAtLeastOnce(t *testing.T) {
	got := runOut(t, `
program t;
var i: integer;
begin
  i := 10;
  repeat
    i := i + 1;
  until true;
  writeln(i);
end.`, "")
	if got != "11\n" {
		t.Errorf("output = %q, want 11", got)
	}
}

func TestCaseDispatch(t *testing.T) {
	src := `
program t;
var x, y: integer;
begin
  read(x);
  case x of
    1: y := 10;
    2, 3: y := 20;
  else y := -1;
  end;
  writeln(y);
end.`
	for input, want := range map[string]string{"1": "10\n", "2": "20\n", "3": "20\n", "9": "-1\n"} {
		if got := runOut(t, src, input); got != want {
			t.Errorf("case %s: output = %q, want %q", input, got, want)
		}
	}
}

func TestRealArithmetic(t *testing.T) {
	got := runOut(t, `
program t;
var r: real;
begin
  r := 7 / 2;
  writeln(r);
  r := 1.5 + 2;
  writeln(r);
  writeln(trunc(3.9), round(3.9), round(-3.9));
end.`, "")
	want := "3.5\n3.5\n3 4 -4\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestBuiltinFunctions(t *testing.T) {
	got := runOut(t, `
program t;
begin
  writeln(abs(-5), abs(5), sqr(4), odd(3), odd(4));
end.`, "")
	if got != "5 5 16 true false\n" {
		t.Errorf("output = %q", got)
	}
}

func TestRecords(t *testing.T) {
	got := runOut(t, `
program t;
type point = record x, y: integer end;
var p, q: point;
begin
  p.x := 3;
  p.y := 4;
  q := p;
  q.x := 99;
  writeln(p.x, q.x, q.y);
end.`, "")
	if got != "3 99 4\n" {
		t.Errorf("output = %q, want %q (record assignment must copy)", got, "3 99 4\n")
	}
}

func TestStringOps(t *testing.T) {
	got := runOut(t, `
program t;
var s: string;
begin
  s := 'foo' + 'bar';
  writeln(s, 'x' < 'y');
end.`, "")
	if got != "foobar true\n" {
		t.Errorf("output = %q", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, input, want string
	}{
		{"divZero", `program t; var x: integer; begin x := 1 div 0; end.`, "", "division by zero"},
		{"modZero", `program t; var x: integer; begin x := 1 mod 0; end.`, "", "division by zero"},
		{"indexLow", `program t; type a = array [1 .. 3] of integer; var v: a; var x: integer; begin x := v[0]; end.`, "", "out of bounds"},
		{"indexHigh", `program t; type a = array [1 .. 3] of integer; var v: a; begin v[4] := 0; end.`, "", "out of bounds"},
		{"readEmpty", `program t; var x: integer; begin read(x); end.`, "", "end of input"},
		{"readNonInt", `program t; var x: integer; begin read(x); end.`, "zork", "not an integer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tryRun(t, tc.src, tc.input, nil)
			if err == nil {
				t.Fatalf("expected runtime error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	prog := parser.MustParse("t.pas", `program t; var x: integer; begin while true do x := x + 1; end.`)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(info, interp.Config{MaxSteps: 1000})
	err = it.Run()
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("err = %v, want step budget error", err)
	}
}

// TestFuelExhaustedTyped pins the fault-injection contract: a program
// that never terminates halts with an error matching ErrFuelExhausted
// (so the mutation campaign can classify it) instead of hanging, and
// genuine runtime faults do NOT match the sentinel.
func TestFuelExhaustedTyped(t *testing.T) {
	prog := parser.MustParse("t.pas", `program t; var x: integer; begin while true do x := x + 1; end.`)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	err = interp.New(info, interp.Config{MaxSteps: 500}).Run()
	if !errors.Is(err, interp.ErrFuelExhausted) {
		t.Fatalf("err = %v, want errors.Is(err, ErrFuelExhausted)", err)
	}
	var rte *interp.RuntimeError
	if !errors.As(err, &rte) || !rte.Pos.IsValid() {
		t.Errorf("fuel error should be a positioned RuntimeError, got %#v", err)
	}

	crash := parser.MustParse("t.pas", `program t; var x: integer; begin x := 1 div 0; end.`)
	info2, err := sem.Analyze(crash)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.New(info2, interp.Config{MaxSteps: 500}).Run(); errors.Is(err, interp.ErrFuelExhausted) {
		t.Errorf("division by zero must not match ErrFuelExhausted: %v", err)
	}
}

func TestRunawayRecursionBudget(t *testing.T) {
	prog := parser.MustParse("t.pas", `
program t;
function f(n: integer): integer;
begin
  f := f(n + 1);
end;
var x: integer;
begin
  x := f(0);
end.`)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(info, interp.Config{MaxDepth: 50})
	err = it.Run()
	if err == nil || !strings.Contains(err.Error(), "depth budget") {
		t.Errorf("err = %v, want depth budget error", err)
	}
}

// recordingSink captures call events for inspection.
type recordingSink struct {
	interp.NopSink
	enters []*interp.CallInfo
	exits  []*interp.CallInfo
}

func (r *recordingSink) EnterCall(c *interp.CallInfo) { r.enters = append(r.enters, c) }
func (r *recordingSink) ExitCall(c *interp.CallInfo)  { r.exits = append(r.exits, c) }

func TestCallEvents(t *testing.T) {
	prog := parser.MustParse("t.pas", paper.Sqrtest)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	it := interp.New(info, interp.Config{Sink: sink})
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.enters) != len(sink.exits) {
		t.Fatalf("enters %d != exits %d", len(sink.enters), len(sink.exits))
	}
	// Program block + 13 calls (sqrtest, arrsum, computs, comput1,
	// partialsums, sum1, increment, sum2, decrement, add, comput2,
	// square, test) = 14.
	if len(sink.enters) != 14 {
		for _, c := range sink.enters {
			t.Logf("call: %s", c.Routine.Name)
		}
		t.Fatalf("call count = %d, want 14", len(sink.enters))
	}

	var arrsum *interp.CallInfo
	for _, c := range sink.enters {
		if c.Routine.Name == "arrsum" {
			arrsum = c
		}
	}
	if arrsum == nil {
		t.Fatal("no arrsum call observed")
	}
	if len(arrsum.Ins) != 3 {
		t.Fatalf("arrsum ins = %v", arrsum.Ins)
	}
	if got := interp.FormatValue(arrsum.Ins[0].Value); got != "[1, 2]" {
		t.Errorf("arrsum a = %s, want [1, 2]", got)
	}
	if got := interp.FormatValue(arrsum.Ins[1].Value); got != "2" {
		t.Errorf("arrsum n = %s, want 2", got)
	}
	if len(arrsum.Outs) != 1 || interp.FormatValue(arrsum.Outs[0].Value) != "3" {
		t.Errorf("arrsum outs = %v, want b: 3", arrsum.Outs)
	}

	var dec *interp.CallInfo
	for _, c := range sink.exits {
		if c.Routine.Name == "decrement" {
			dec = c
		}
	}
	if dec == nil {
		t.Fatal("no decrement call observed")
	}
	if got := interp.FormatValue(dec.Result); got != "4" {
		t.Errorf("decrement result = %s, want 4 (buggy)", got)
	}
	if dec.CallSite == nil {
		t.Error("decrement call site not recorded")
	}
	if _, ok := dec.CallSite.(*ast.CallExpr); !ok {
		t.Errorf("decrement call site = %T, want *ast.CallExpr", dec.CallSite)
	}
}

func TestSnapshotsAreDeepCopies(t *testing.T) {
	prog := parser.MustParse("t.pas", `
program t;
type arr = array [1 .. 2] of integer;
var a: arr;
procedure p(x: arr);
begin
  x[1] := 0;
end;
begin
  a[1] := 7;
  p(a);
  a[1] := 8;
end.`)
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	it := interp.New(info, interp.Config{Sink: sink})
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	var p *interp.CallInfo
	for _, c := range sink.enters {
		if c.Routine.Name == "p" {
			p = c
		}
	}
	if p == nil {
		t.Fatal("p not called")
	}
	// The snapshot must still show the value at call time (7), not the
	// later mutation (8) or the callee's clobber (0).
	if got := interp.FormatValue(p.Ins[0].Value); got != "[7, 0]" && got != "[7]" {
		t.Errorf("snapshot = %s, want [7] at call time", got)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    interp.Value
		want string
	}{
		{interp.IntV(42), "42"},
		{interp.RealV(3.5), "3.5"},
		{interp.RealV(2.0), "2.0"},
		{interp.BoolV(true), "true"},
		{interp.BoolV(false), "false"},
		{interp.StrV("hi"), "'hi'"},
		{interp.ArrV(&interp.ArrayVal{Lo: 1, Hi: 3, Elems: []interp.Value{interp.IntV(1), interp.IntV(2), interp.IntV(0)}}), "[1, 2]"},
		{interp.ArrV(&interp.ArrayVal{Lo: 1, Hi: 2, Elems: []interp.Value{interp.IntV(0), interp.IntV(0)}}), "[]"},
		{interp.RecV(&interp.RecordVal{Names: []string{"x"}, Fields: []interp.Value{interp.IntV(1)}}), "(x: 1)"},
	}
	for _, tc := range cases {
		if got := interp.FormatValue(tc.v); got != tc.want {
			t.Errorf("FormatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestWidthExactArrayPrint(t *testing.T) {
	out := runOut(t, `
program t;
type arr = array [1 .. 2] of integer;
var a: arr;
begin
  a[1] := 1;
  a[2] := 2;
  writeln(a);
end.`, "")
	if out != "[1, 2]\n" {
		t.Errorf("output = %q, want [1, 2]", out)
	}
}
