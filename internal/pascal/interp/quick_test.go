package interp_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gadt/internal/pascal/interp"
)

// randomValue builds an arbitrary runtime value of bounded depth.
func randomValue(r *rand.Rand, depth int) interp.Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return interp.IntV(r.Int63n(2000) - 1000)
		case 1:
			return interp.RealV(float64(r.Int63n(100)) / 4)
		case 2:
			return interp.BoolV(r.Intn(2) == 0)
		default:
			return interp.StrV(string(rune('a' + r.Intn(26))))
		}
	}
	switch r.Intn(6) {
	case 0:
		n := r.Intn(5) + 1
		a := &interp.ArrayVal{Lo: 1, Hi: int64(n), Elems: make([]interp.Value, n)}
		for i := range a.Elems {
			a.Elems[i] = randomValue(r, depth-1)
		}
		return interp.ArrV(a)
	case 1:
		n := r.Intn(3) + 1
		rec := &interp.RecordVal{Names: make([]string, n), Fields: make([]interp.Value, n)}
		for i := range rec.Fields {
			rec.Names[i] = string(rune('f' + i))
			rec.Fields[i] = randomValue(r, depth-1)
		}
		return interp.RecV(rec)
	default:
		return randomValue(r, 0)
	}
}

type valueBox struct{ V interp.Value }

// Generate implements quick.Generator.
func (valueBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueBox{V: randomValue(r, 3)})
}

func TestQuickValuesEqualReflexive(t *testing.T) {
	prop := func(b valueBox) bool {
		return interp.ValuesEqual(b.V, b.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCopyValueEqual(t *testing.T) {
	prop := func(b valueBox) bool {
		c := interp.CopyValue(b.V)
		return interp.ValuesEqual(b.V, c) && interp.ValuesEqual(c, b.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCopyValueIsDeep(t *testing.T) {
	prop := func(b valueBox) bool {
		c := interp.CopyValue(b.V)
		// Mutating every leaf of the copy must never affect the original.
		clobber(c)
		switch b.V.Kind() {
		case interp.KindArray, interp.KindRecord:
			orig := interp.CopyValue(b.V) // fresh snapshot of the original
			return interp.ValuesEqual(b.V, orig)
		default:
			return true // scalars are immutable
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func clobber(v interp.Value) {
	if a, ok := v.AsArray(); ok {
		for i := range a.Elems {
			switch a.Elems[i].Kind() {
			case interp.KindArray, interp.KindRecord:
				clobber(a.Elems[i])
			default:
				a.Elems[i] = interp.IntV(987654)
			}
		}
	}
	if r, ok := v.AsRecord(); ok {
		for i := range r.Fields {
			switch r.Fields[i].Kind() {
			case interp.KindArray, interp.KindRecord:
				clobber(r.Fields[i])
			default:
				r.Fields[i] = interp.IntV(987654)
			}
		}
	}
}

func TestQuickFormatValueTotal(t *testing.T) {
	// FormatValue never panics and never returns the empty string.
	prop := func(b valueBox) bool {
		return interp.FormatValue(b.V) != ""
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValuesEqualSymmetric(t *testing.T) {
	prop := func(a, b valueBox) bool {
		return interp.ValuesEqual(a.V, b.V) == interp.ValuesEqual(b.V, a.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntRealEquality(t *testing.T) {
	prop := func(n int32) bool {
		return interp.ValuesEqual(interp.IntV(int64(n)), interp.RealV(float64(n))) &&
			interp.ValuesEqual(interp.RealV(float64(n)), interp.IntV(int64(n)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
